// Codegen: reproduce the paper's Listings 1-5 on a freshly trained tree,
// then emit the same forest in the integer-only table-driven form. The
// example trains a small forest on the EEG eye-state stand-in (which
// yields both positive and negative split values), emits the naive C
// realization (Listing 1), the FLInt C realization (Listings 2 and 4),
// the direct ARMv8 assembly (Listing 5), and finally the ModeTable
// realization — the runtime's compact fused arena as static data plus a
// fixed walk loop — with a code-bytes versus table-bytes comparison
// showing where each shape's budget goes.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"flint"
)

func main() {
	log.SetFlags(0)

	data, err := flint.GenerateDataset("eye", 600, 11)
	if err != nil {
		log.Fatal(err)
	}
	forest, err := flint.Train(data, flint.TrainConfig{NumTrees: 1, MaxDepth: 3, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	sections := []struct {
		title string
		opts  flint.CodegenOptions
	}{
		{"Listing 1 — standard if-else tree in C", flint.CodegenOptions{
			Language: flint.LangC, Variant: flint.VariantFloat}},
		{"Listings 2/4 — FLInt if-else tree in C", flint.CodegenOptions{
			Language: flint.LangC, Variant: flint.VariantFLInt}},
		{"FLInt if-else tree in C with CAGS branch swapping", flint.CodegenOptions{
			Language: flint.LangC, Variant: flint.VariantFLInt, CAGS: true}},
		{"Listing 5 — FLInt ARMv8 assembly (hand immediates)", flint.CodegenOptions{
			Language: flint.LangARMv8, Variant: flint.VariantFLInt, Flavor: flint.FlavorHand}},
		{"FLInt x86-64 assembly", flint.CodegenOptions{
			Language: flint.LangX86, Variant: flint.VariantFLInt, Flavor: flint.FlavorHand}},
		{"ModeTable — the compact fused arena as integer-only C", flint.CodegenOptions{
			Language: flint.LangC, Mode: flint.ModeTable}},
	}
	var ifElseC, tableC bytes.Buffer
	for _, s := range sections {
		fmt.Printf("// ======== %s ========\n", s.title)
		if err := flint.GenerateCode(os.Stdout, forest, s.opts); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		// Keep the two C realizations for the size comparison below.
		switch {
		case s.opts.Mode == flint.ModeTable:
			flint.GenerateCode(&tableC, forest, s.opts)
		case s.opts.Language == flint.LangC && s.opts.Variant == flint.VariantFLInt && !s.opts.CAGS:
			flint.GenerateCode(&ifElseC, forest, s.opts)
		}
	}

	// Where the bytes live: if-else trees are code (they grow with depth
	// and node count), the table form is a fixed loop over static data
	// (the model costs ~8 bytes per node regardless of shape).
	eng, err := flint.NewFlatEngineVariant(forest, flint.FlatCompact)
	if err != nil {
		log.Fatal(err)
	}
	model, err := eng.ExportCompact()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("// ======== Size comparison: code bytes vs table bytes ========")
	fmt.Printf("// if-else FLInt C source: %5d bytes (all of it code; grows with the forest)\n", ifElseC.Len())
	fmt.Printf("// table C source:         %5d bytes, of which static tables: %d bytes\n", tableC.Len(), model.TableBytes())
	fmt.Printf("// table data footprint:   %d nodes x 8 B + %d cut keys x 4 B + maps = %d bytes\n",
		len(model.Nodes64), len(model.Cuts), model.TableBytes())
}
