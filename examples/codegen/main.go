// Codegen: reproduce the paper's Listings 1-5 on a freshly trained tree.
// The example trains a small forest on the EEG eye-state stand-in (which
// yields both positive and negative split values), then emits the naive
// C realization (Listing 1), the FLInt C realization (Listings 2 and 4),
// and the direct ARMv8 assembly (Listing 5).
package main

import (
	"fmt"
	"log"
	"os"

	"flint"
)

func main() {
	log.SetFlags(0)

	data, err := flint.GenerateDataset("eye", 600, 11)
	if err != nil {
		log.Fatal(err)
	}
	forest, err := flint.Train(data, flint.TrainConfig{NumTrees: 1, MaxDepth: 3, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	sections := []struct {
		title string
		opts  flint.CodegenOptions
	}{
		{"Listing 1 — standard if-else tree in C", flint.CodegenOptions{
			Language: flint.LangC, Variant: flint.VariantFloat}},
		{"Listings 2/4 — FLInt if-else tree in C", flint.CodegenOptions{
			Language: flint.LangC, Variant: flint.VariantFLInt}},
		{"FLInt if-else tree in C with CAGS branch swapping", flint.CodegenOptions{
			Language: flint.LangC, Variant: flint.VariantFLInt, CAGS: true}},
		{"Listing 5 — FLInt ARMv8 assembly (hand immediates)", flint.CodegenOptions{
			Language: flint.LangARMv8, Variant: flint.VariantFLInt, Flavor: flint.FlavorHand}},
		{"FLInt x86-64 assembly", flint.CodegenOptions{
			Language: flint.LangX86, Variant: flint.VariantFLInt, Flavor: flint.FlavorHand}},
	}
	for _, s := range sections {
		fmt.Printf("// ======== %s ========\n", s.title)
		if err := flint.GenerateCode(os.Stdout, forest, s.opts); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
