// Command batchserve demonstrates the serving configuration of the
// forest-arena engine: one FlatEngine compiled from a CAGS-reordered
// forest, one persistent Batcher held for the process lifetime, and a
// reused output slice, so the steady state classifies request batches
// with zero allocations.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"flint"
)

func main() {
	data, err := flint.GenerateDataset("magic", 4000, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, test := data.Split(0.75, 1)
	forest, err := flint.Train(train, flint.TrainConfig{NumTrees: 30, MaxDepth: 20, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	grouped, err := flint.Reorder(forest) // keep CAGS locality inside the arena
	if err != nil {
		log.Fatal(err)
	}
	engine, err := flint.NewFlatEngine(grouped)
	if err != nil {
		log.Fatal(err)
	}

	workers := runtime.GOMAXPROCS(0)
	batcher := flint.NewBatcher(engine, workers)
	defer batcher.Close()

	// Serve the test set as a stream of fixed-size request batches,
	// reusing one output slice across requests.
	const batchSize = 256
	out := make([]int32, batchSize)
	correct, total := 0, 0
	start := time.Now()
	for lo := 0; lo < len(test.Features); lo += batchSize {
		hi := lo + batchSize
		if hi > len(test.Features) {
			hi = len(test.Features)
		}
		out = batcher.Predict(test.Features[lo:hi], out)
		for i, class := range out[:hi-lo] {
			if class == test.Labels[lo+i] {
				correct++
			}
			total++
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("served %d rows in %v (%.0f rows/s, %d workers)\n",
		total, elapsed, float64(total)/elapsed.Seconds(), workers)
	fmt.Printf("accuracy %.3f\n", float64(correct)/float64(total))

	// The arena engine agrees with the reference forest row by row.
	for i, x := range test.Features[:10] {
		if got, want := engine.Predict(x), forest.Predict(x); got != want {
			log.Fatalf("row %d: arena %d != reference %d", i, got, want)
		}
	}
	fmt.Println("arena predictions match the reference forest")
}
