// Command batchserve demonstrates the serving configuration of the
// forest-arena engine on the registry API: the batch kernel calibrated
// once at startup, one engine per arena layout (16-byte FLInt and, when
// the forest fits it, the quantized 8-byte compact SoA) compiled from a
// CAGS-reordered forest, and one ServedModel — engine, Batcher worker
// pool, traffic reservoir and calibration record as a single unit —
// registered in a ModelRegistry for the process lifetime. Predictions
// reuse one output slice, so the steady state classifies request
// batches with zero allocations; concurrent Predict calls interleave
// over the model's shared pool.
//
// It also walks the adaptive serving lifecycle end to end:
//
//	serve → reservoir sample → Recalibrate → SaveCalibration
//	                                              │
//	Swap in a fresh model → LoadCalibration → serve ┘  (warm start)
//
// The model samples served rows into a fixed-capacity reservoir as a
// side effect of Predict (allocation-free; Vitter's Algorithm R over a
// stride-decimated view of the stream). Recalibrate re-times the
// interleave width on that sample — real traffic, not synthetic
// approximations — and installs the winner atomically, so it is safe
// while requests are in flight; call it periodically in a real server.
// SaveCalibration persists gates + width + sample stamped with the
// model's registry name, and the restart is a registry hot swap: the
// replacement model builds off-line, Swap flips the slot's pointer and
// drains the old model without dropping traffic, and LoadCalibration
// warm-starts the replacement from the record (fingerprint- and
// name-checked) instead of re-paying any calibration ladder. See
// cmd/flintserve for the same registry behind a network front-end.
package main

import (
	"bytes"
	"fmt"
	"log"
	"runtime"
	"time"

	"flint"
)

func main() {
	data, err := flint.GenerateDataset("magic", 4000, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, test := data.Split(0.75, 1)
	forest, err := flint.Train(train, flint.TrainConfig{NumTrees: 30, MaxDepth: 20, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	grouped, err := flint.Reorder(forest) // keep CAGS locality inside the arena
	if err != nil {
		log.Fatal(err)
	}

	// Measure, once, the arena sizes past which the 2/4/8-way
	// interleaved walks win on this host — one threshold set per arena
	// layout, because the compact arena's quantization overhead shifts
	// its crossovers; engines built afterwards pick their width from
	// the result.
	// The SIMD kernel only competes where the host runs it natively;
	// everywhere else the scalar kernels carry the load and pinned simd
	// modes fall back to a portable form.
	if isa := flint.DetectedISA(); isa != "" {
		fmt.Printf("vector ISA: %s (simd kernel competes in calibration)\n", isa)
	} else {
		fmt.Println("vector ISA: none (scalar kernels only)")
	}

	gates := flint.Calibrate(0)
	fmt.Printf("calibrated interleave gates (bytes): flint x2>=%d x4>=%d x8>=%d | compact x2>=%d x4>=%d x8>=%d\n",
		gates.Min2, gates.Min4, gates.Min8,
		gates.CompactMin2, gates.CompactMin4, gates.CompactMin8)

	// Prefer the 8-byte compact arena when the forest fits its
	// encoding; it halves the cache footprint at identical predictions.
	variant := flint.FlatFLInt
	if ok, reason := flint.Compactable(grouped); ok {
		variant = flint.FlatCompact
	} else {
		fmt.Printf("compact arena unavailable: %s\n", reason)
	}
	engine, err := flint.NewFlatEngineVariant(grouped, variant)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s arena: %d nodes, %d bytes (%.1f B/node), %d/%d split-on features, x%d interleave\n",
		engine.Name(), engine.ArenaNodes(), engine.ArenaBytes(),
		float64(engine.ArenaBytes())/float64(engine.ArenaNodes()),
		engine.PrunedFeatures(), engine.NumFeatures(), engine.Interleave())

	// Sharpen the width — and, on the compact arena, the walk kernel
	// (branchy, fused, and simd where the ISA runs it) — on this exact
	// arena using real rows: sampled production traffic walks the
	// trained branches the host-wide synthetic ladder can only
	// approximate. Here the training set stands in for a traffic
	// sample. The winning (width, kernel) pair installs as one atomic
	// unit.
	width := engine.CalibrateInterleaveRows(train.Features, 0)
	fmt.Printf("row-calibrated mode: x%d interleave, %s kernel\n", width, engine.Kernel())

	workers := runtime.GOMAXPROCS(0)
	// A ServedModel owns the Batcher (reservoir sampling on by default;
	// NewServedModelSampled tunes capacity/stride) and registers under
	// its serving name. Registry lookups, stats, persistence and the
	// hot swap below all key on that name.
	registry := flint.NewModelRegistry()
	defer registry.Close()
	if err := registry.Register(flint.NewServedModel("magic", engine, workers)); err != nil {
		log.Fatal(err)
	}

	// Malformed requests fail in the caller as ordinary errors — the
	// registry Predict path reports a short row instead of panicking, so
	// a network front-end turns it into a 400, not a dead worker.
	if _, err := registry.Predict("magic", [][]float32{{1, 2, 3}}, nil); err != nil {
		fmt.Printf("short row rejected in the caller: %v\n", err)
	}

	// Serve the test set as a stream of fixed-size request batches,
	// reusing one output slice across requests. The model samples the
	// served rows into its reservoir as a side effect.
	const batchSize = 256
	out := make([]int32, batchSize)
	correct, total := 0, 0
	start := time.Now()
	for lo := 0; lo < len(test.Features); lo += batchSize {
		hi := lo + batchSize
		if hi > len(test.Features) {
			hi = len(test.Features)
		}
		out, err = registry.Predict("magic", test.Features[lo:hi], out)
		if err != nil {
			log.Fatal(err)
		}
		for i, class := range out[:hi-lo] {
			if class == test.Labels[lo+i] {
				correct++
			}
			total++
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("served %d rows in %v (%.0f rows/s, %d workers)\n",
		total, elapsed, float64(total)/elapsed.Seconds(), workers)
	fmt.Printf("accuracy %.3f\n", float64(correct)/float64(total))

	// Periodic online recalibration: re-time the interleave width on the
	// reservoir's sample of real served traffic. Safe while other
	// goroutines keep calling Predict — the winner installs atomically.
	model, _ := registry.Get("magic")
	st := model.Stats()
	rw := model.Recalibrate(0)
	fmt.Printf("recalibrated on %d reservoir rows (of %d served): x%d interleave\n", st.SampleRows, st.SampleSeen, rw)

	// Persist the measured calibration — gates, width and the traffic
	// sample, stamped with the model's registry name so it can never be
	// mistaken for another model's record — so the next deployment
	// warm-starts from evidence. A file in a real deployment; a buffer
	// here.
	var record bytes.Buffer
	if err := registry.SaveCalibration("magic", &record); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted calibration record (%d bytes)\n", record.Len())

	// "Restart" as a hot swap: compile the arena again into a fresh
	// model off-line, flip it into the slot — Swap drains the old model
	// after the pointer flip, so concurrent Predict calls never drop —
	// and warm-start it from the record. LoadCalibration validates the
	// model stamp and the arena fingerprint (a record measured on a
	// different forest, variant or registered model is rejected),
	// installs the width, seeds the new reservoir with the persisted
	// rows, and re-arms drift detection when the record carries a
	// policy — recalibration keeps working on real traffic from the
	// first second. Installing the record's gate table is a separate,
	// explicit step because it is only valid on the hardware it was
	// measured on (this process, here).
	engine2, err := flint.NewFlatEngineVariant(grouped, variant)
	if err != nil {
		log.Fatal(err)
	}
	if err := registry.Swap("magic", flint.NewServedModel("magic", engine2, workers)); err != nil {
		log.Fatal(err)
	}
	rec, err := registry.LoadCalibration("magic", &record)
	if err != nil {
		log.Fatal(err)
	}
	flint.SetInterleaveGates(rec.Gates)
	fmt.Printf("hot swap + warm start: x%d interleave, %s kernel from persisted record, reservoir seeded with %d rows\n",
		engine2.Interleave(), engine2.Kernel(), len(rec.Rows))

	// The arena engine agrees with the reference forest row by row,
	// before and after the swap.
	for i, x := range test.Features[:10] {
		want := forest.Predict(x)
		if got := engine.Predict(x); got != want {
			log.Fatalf("row %d: arena %d != reference %d", i, got, want)
		}
		if got := engine2.Predict(x); got != want {
			log.Fatalf("row %d: swapped-in arena %d != reference %d", i, got, want)
		}
	}
	fmt.Println("arena predictions match the reference forest")
}
