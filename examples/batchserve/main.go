// Command batchserve demonstrates the serving configuration of the
// forest-arena engine: the batch kernel calibrated once at startup, one
// engine per arena layout (16-byte FLInt and, when the forest fits it,
// the quantized 8-byte compact SoA) compiled from a CAGS-reordered
// forest, one persistent Batcher held for the process lifetime, and a
// reused output slice, so the steady state classifies request batches
// with zero allocations. Concurrent Predict calls interleave over the
// shared pool, so one Batcher serves many request goroutines.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"flint"
)

func main() {
	data, err := flint.GenerateDataset("magic", 4000, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, test := data.Split(0.75, 1)
	forest, err := flint.Train(train, flint.TrainConfig{NumTrees: 30, MaxDepth: 20, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	grouped, err := flint.Reorder(forest) // keep CAGS locality inside the arena
	if err != nil {
		log.Fatal(err)
	}

	// Measure, once, the arena sizes past which the 2/4/8-way
	// interleaved walks win on this host — one threshold set per arena
	// layout, because the compact arena's quantization overhead shifts
	// its crossovers; engines built afterwards pick their width from
	// the result.
	gates := flint.Calibrate(0)
	fmt.Printf("calibrated interleave gates (bytes): flint x2>=%d x4>=%d x8>=%d | compact x2>=%d x4>=%d x8>=%d\n",
		gates.Min2, gates.Min4, gates.Min8,
		gates.CompactMin2, gates.CompactMin4, gates.CompactMin8)

	// Prefer the 8-byte compact arena when the forest fits its
	// encoding; it halves the cache footprint at identical predictions.
	variant := flint.FlatFLInt
	if ok, reason := flint.Compactable(grouped); ok {
		variant = flint.FlatCompact
	} else {
		fmt.Printf("compact arena unavailable: %s\n", reason)
	}
	engine, err := flint.NewFlatEngineVariant(grouped, variant)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s arena: %d nodes, %d bytes (%.1f B/node), %d/%d split-on features, x%d interleave\n",
		engine.Name(), engine.ArenaNodes(), engine.ArenaBytes(),
		float64(engine.ArenaBytes())/float64(engine.ArenaNodes()),
		engine.PrunedFeatures(), engine.NumFeatures(), engine.Interleave())

	// Sharpen the width on this exact arena using real rows: sampled
	// production traffic walks the trained branches the host-wide
	// synthetic ladder can only approximate. Here the training set
	// stands in for a traffic sample.
	width := engine.CalibrateInterleaveRows(train.Features, 0)
	fmt.Printf("row-calibrated interleave: x%d\n", width)

	workers := runtime.GOMAXPROCS(0)
	batcher := flint.NewBatcher(engine, workers)
	defer batcher.Close()

	// Serve the test set as a stream of fixed-size request batches,
	// reusing one output slice across requests.
	const batchSize = 256
	out := make([]int32, batchSize)
	correct, total := 0, 0
	start := time.Now()
	for lo := 0; lo < len(test.Features); lo += batchSize {
		hi := lo + batchSize
		if hi > len(test.Features) {
			hi = len(test.Features)
		}
		out = batcher.Predict(test.Features[lo:hi], out)
		for i, class := range out[:hi-lo] {
			if class == test.Labels[lo+i] {
				correct++
			}
			total++
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("served %d rows in %v (%.0f rows/s, %d workers)\n",
		total, elapsed, float64(total)/elapsed.Seconds(), workers)
	fmt.Printf("accuracy %.3f\n", float64(correct)/float64(total))

	// The arena engine agrees with the reference forest row by row.
	for i, x := range test.Features[:10] {
		if got, want := engine.Predict(x), forest.Predict(x); got != want {
			log.Fatalf("row %d: arena %d != reference %d", i, got, want)
		}
	}
	fmt.Println("arena predictions match the reference forest")
}
