// Embedded: the paper's Section I motivation. On a device without a
// floating point unit, a float-based random forest runs every comparison
// through software float routines; FLInt replaces each with one integer
// comparison at identical predictions.
//
// The headline path here is the integer-only table form: the compact
// fused arena (8 bytes per node, quantized cut tables, shift-select
// walk) that ModeTable codegen emits as static C data for flashing onto
// an MCU. The example runs that form against the soft-float baseline
// and the if-else FLInt engine on the sensorless drive diagnosis
// workload (48 features, 11 fault classes), the kind of model an
// FPU-less motor controller would run, and reports the flashable table
// footprint alongside the speedups.
package main

import (
	"fmt"
	"log"
	"time"

	"flint"
)

func main() {
	log.SetFlags(0)

	data, err := flint.GenerateDataset("sensorless", 3000, 7)
	if err != nil {
		log.Fatal(err)
	}
	train, test := data.Split(0.75, 7)
	forest, err := flint.Train(train, flint.TrainConfig{NumTrees: 10, MaxDepth: 12, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Headline: the integer-only table form. This is the same build
	// product ModeTable codegen serializes to C — quantized per-feature
	// cut tables plus a 64-bit node arena walked with shift-selected
	// int16 offsets. No floats anywhere past feature encoding.
	table, err := flint.NewFlatEngineVariant(forest, flint.FlatCompact)
	if err != nil {
		log.Fatal(err)
	}
	// The no-FPU baseline: IEEE comparison in software (what libgcc's
	// __lesf2 does on a Cortex-M0).
	soft, err := flint.NewSoftFloatEngine(forest)
	if err != nil {
		log.Fatal(err)
	}
	// If-else FLInt: one integer comparison per node, sign resolved
	// offline — the paper's Listing 2/4 shape.
	fl, err := flint.NewFLIntEngine(forest)
	if err != nil {
		log.Fatal(err)
	}

	mismatches := 0
	for _, x := range test.Features {
		p := table.Predict(x)
		if soft.Predict(x) != p || fl.Predict(x) != p {
			mismatches++
		}
	}
	fmt.Printf("fault-classification accuracy: %.3f (%d classes)\n",
		flint.Accuracy(table, test.Features, test.Labels), forest.NumClasses)
	fmt.Printf("prediction mismatches across soft-float / if-else FLInt / table: %d\n", mismatches)

	if model, err := table.ExportCompact(); err == nil {
		fmt.Printf("flashable table footprint: %d bytes (%d nodes x 8 B + %d cut keys + maps)\n",
			model.TableBytes(), len(model.Nodes64), len(model.Cuts))
	}

	timeEngine := func(name string, predict func([]float32) int32) time.Duration {
		var sink int32
		start := time.Now()
		for rep := 0; rep < 30; rep++ {
			for _, x := range test.Features {
				sink += predict(x)
			}
		}
		d := time.Since(start) / time.Duration(30*test.Len())
		fmt.Printf("%-10s %8v per inference (sink %d)\n", name, d, sink%2)
		return d
	}
	st := timeEngine("softfloat", soft.Predict)
	it := timeEngine("flint", fl.Predict)
	tt := timeEngine("table", table.Predict)
	fmt.Printf("speedup over software floats: if-else FLInt %.2fx, table form %.2fx\n",
		float64(st)/float64(it), float64(st)/float64(tt))
	fmt.Println()
	fmt.Println("The table form pays a per-row quantization cost that the if-else")
	fmt.Println("trees do not, so single-row host timings undersell it; its wins are")
	fmt.Println("the fixed few-KB data footprint above and that on FPU-less silicon")
	fmt.Println("every soft-float comparison is a library call of dozens of")
	fmt.Println("instructions while the table walk is a handful of integer ops over")
	fmt.Println("static data (see `flintgen -mode table` for the C to flash, and")
	fmt.Println("`flintsim -machine embedded-nofpu` for the simulated cycle counts).")
}
