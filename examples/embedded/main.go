// Embedded: the paper's Section I motivation. On a device without a
// floating point unit, a float-based random forest runs every comparison
// through software float routines; FLInt replaces each with one integer
// comparison at identical predictions.
//
// This example compares the soft-float execution path against FLInt on
// the sensorless drive diagnosis workload (48 features, 11 fault
// classes), the kind of model an FPU-less motor controller would run.
package main

import (
	"fmt"
	"log"
	"time"

	"flint"
)

func main() {
	log.SetFlags(0)

	data, err := flint.GenerateDataset("sensorless", 3000, 7)
	if err != nil {
		log.Fatal(err)
	}
	train, test := data.Split(0.75, 7)
	forest, err := flint.Train(train, flint.TrainConfig{NumTrees: 10, MaxDepth: 12, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// The no-FPU baseline: IEEE comparison in software (what libgcc's
	// __lesf2 does on a Cortex-M0).
	soft, err := flint.NewSoftFloatEngine(forest)
	if err != nil {
		log.Fatal(err)
	}
	// FLInt: one integer comparison per node, sign resolved offline.
	fl, err := flint.NewFLIntEngine(forest)
	if err != nil {
		log.Fatal(err)
	}

	mismatches := 0
	for _, x := range test.Features {
		if soft.Predict(x) != fl.Predict(x) {
			mismatches++
		}
	}
	fmt.Printf("fault-classification accuracy: %.3f (%d classes)\n",
		flint.Accuracy(fl, test.Features, test.Labels), forest.NumClasses)
	fmt.Printf("prediction mismatches between soft-float and FLInt: %d\n", mismatches)

	timeEngine := func(name string, predict func([]float32) int32) time.Duration {
		var sink int32
		start := time.Now()
		for rep := 0; rep < 30; rep++ {
			for _, x := range test.Features {
				sink += predict(x)
			}
		}
		d := time.Since(start) / time.Duration(30*test.Len())
		fmt.Printf("%-10s %8v per inference (sink %d)\n", name, d, sink%2)
		return d
	}
	st := timeEngine("softfloat", soft.Predict)
	it := timeEngine("flint", fl.Predict)
	fmt.Printf("FLInt speedup over software floats: %.2fx\n", float64(st)/float64(it))
	fmt.Println()
	fmt.Println("On real FPU-less silicon the gap widens further: every soft-float")
	fmt.Println("comparison is a library call of dozens of instructions, while the")
	fmt.Println("FLInt comparison is a single cmp against an immediate (see")
	fmt.Println("`flintsim -machine embedded-nofpu` for the simulated cycle counts).")
}
