// Quickstart: train a random forest on a synthetic workload and run
// inference through the FLInt engine, verifying that predictions are
// identical to hardware float traversal and measuring the speed of both.
package main

import (
	"fmt"
	"log"
	"time"

	"flint"
)

func main() {
	log.SetFlags(0)

	// 1. Data: the MAGIC gamma telescope stand-in (10 float features,
	//    2 classes), split 75/25 as in the paper.
	data, err := flint.GenerateDataset("magic", 4000, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, test := data.Split(0.75, 1)

	// 2. Train a 20-tree forest of depth <= 10.
	forest, err := flint.Train(train, flint.TrainConfig{NumTrees: 20, MaxDepth: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d trees, %d nodes, max depth %d\n",
		len(forest.Trees), forest.NumNodes(), forest.MaxDepth())

	// 3. Compile both engines from the same model.
	floatEngine, err := flint.NewFloatEngine(forest)
	if err != nil {
		log.Fatal(err)
	}
	flintEngine, err := flint.NewFLIntEngine(forest)
	if err != nil {
		log.Fatal(err)
	}

	// 4. FLInt never changes a prediction (Section III of the paper).
	for i, x := range test.Features {
		if floatEngine.Predict(x) != flintEngine.Predict(x) {
			log.Fatalf("prediction mismatch at row %d — this must never happen", i)
		}
	}
	fmt.Printf("predictions identical on all %d test rows\n", test.Len())
	fmt.Printf("test accuracy: %.3f\n", flint.Accuracy(flintEngine, test.Features, test.Labels))

	// 5. Time both engines over the test set. Feature vectors are
	//    reinterpreted once up front: in the paper's C realization the
	//    reinterpretation is a free pointer cast (Listing 2), so it is
	//    not part of the per-inference cost.
	encoded := make([][]int32, test.Len())
	for i, x := range test.Features {
		encoded[i] = flint.EncodeFeatures32(nil, x)
	}
	timeEngine := func(name string, pass func() int32) time.Duration {
		start := time.Now()
		var sink int32
		for rep := 0; rep < 50; rep++ {
			sink += pass()
		}
		d := time.Since(start) / time.Duration(50*test.Len())
		fmt.Printf("%-12s %8v per inference (sink %d)\n", name, d, sink%2)
		return d
	}
	ft := timeEngine("float", func() (s int32) {
		for _, x := range test.Features {
			s += floatEngine.Predict(x)
		}
		return s
	})
	it := timeEngine("flint", func() (s int32) {
		for _, xi := range encoded {
			s += flintEngine.PredictEncoded(xi)
		}
		return s
	})
	fmt.Printf("normalized FLInt time: %.2fx\n", float64(it)/float64(ft))
	fmt.Println()
	fmt.Println("Note: these interpreted engines isolate the comparison kernel only.")
	fmt.Println("The paper's full speedups come from compiled if-else trees, where")
	fmt.Println("split constants become instruction-stream immediates — reproduce")
	fmt.Println("them with `flintbench -backends cc,sim`.")
}
