// Sensordrift: an end-to-end workload on the gas sensor array drift
// stand-in (128 features, 6 gas classes). Chemical sensors age, so a
// model trained on early acquisition batches degrades on later ones —
// the property that gives the original UCI dataset its name.
//
// The example trains on the first acquisition period, evaluates on
// successive later periods to expose the drift, and runs all inference
// through the CAGS-grouped FLInt engine — the paper's fastest
// configuration (Table II).
package main

import (
	"fmt"
	"log"

	"flint"
)

func main() {
	log.SetFlags(0)

	const rows = 6000
	data, err := flint.GenerateDataset("gas", rows, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Rows are generated in acquisition order: train on the first third.
	cut := rows / 3
	train := &flint.Dataset{
		Name:       "gas-early",
		Features:   data.Features[:cut],
		Labels:     data.Labels[:cut],
		NumClasses: data.NumClasses,
	}
	forest, err := flint.Train(train, flint.TrainConfig{NumTrees: 15, MaxDepth: 10, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// CAGS grouping (hot-path node layout) + FLInt comparisons.
	grouped, err := flint.Reorder(forest)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := flint.NewFLIntEngine(grouped)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained on batch 1 (%d rows), %d nodes\n", cut, forest.NumNodes())
	fmt.Println("accuracy per acquisition batch (sensor drift degrades later batches):")
	const batches = 4
	batchSize := (rows - cut) / batches
	prev := -1.0
	for b := 0; b < batches; b++ {
		lo := cut + b*batchSize
		hi := lo + batchSize
		acc := flint.Accuracy(engine, data.Features[lo:hi], data.Labels[lo:hi])
		trend := ""
		if prev >= 0 && acc < prev {
			trend = "  (drifted)"
		}
		fmt.Printf("  batch %d (rows %5d..%5d): %.3f%s\n", b+2, lo, hi, acc, trend)
		prev = acc
	}

	// Retraining on recent data recovers the accuracy — the standard
	// drift mitigation.
	recent := &flint.Dataset{
		Name:       "gas-recent",
		Features:   data.Features[rows-cut:],
		Labels:     data.Labels[rows-cut:],
		NumClasses: data.NumClasses,
	}
	retrained, err := flint.Train(recent, flint.TrainConfig{NumTrees: 15, MaxDepth: 10, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	rg, err := flint.Reorder(retrained)
	if err != nil {
		log.Fatal(err)
	}
	re, err := flint.NewFLIntEngine(rg)
	if err != nil {
		log.Fatal(err)
	}
	lastLo := cut + (batches-1)*batchSize
	fmt.Printf("after retraining on recent rows: batch %d accuracy %.3f\n",
		batches+1, flint.Accuracy(re, data.Features[lastLo:lastLo+batchSize], data.Labels[lastLo:lastLo+batchSize]))
}
