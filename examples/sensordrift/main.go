// Sensordrift: an end-to-end workload on the gas sensor array drift
// stand-in (128 features, 6 gas classes). Chemical sensors age, so a
// model trained on early acquisition batches degrades on later ones —
// the property that gives the original UCI dataset its name.
//
// The example trains on the first acquisition period, then serves the
// later periods through a drift-armed Batcher: the detector compares
// the live traffic reservoir against the calibration baseline on the
// engine's quantized split ranks, and when the distribution shifts it
// recalibrates the serving mode automatically — the closed loop the
// package doc's "Drift-aware serving" section describes. Accuracy per
// batch is printed alongside, exposing the model-level drift the
// detector is reacting to, and a final retrain on recent rows shows the
// mitigation the recalibration trigger would hand off to.
package main

import (
	"fmt"
	"log"
	"time"

	"flint"
)

func main() {
	log.SetFlags(0)

	const rows = 6000
	data, err := flint.GenerateDataset("gas", rows, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Rows are generated in acquisition order: train on the first third.
	cut := rows / 3
	train := &flint.Dataset{
		Name:       "gas-early",
		Features:   data.Features[:cut],
		Labels:     data.Labels[:cut],
		NumClasses: data.NumClasses,
	}
	forest, err := flint.Train(train, flint.TrainConfig{NumTrees: 15, MaxDepth: 10, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// CAGS grouping (hot-path node layout) + the compact serving arena.
	grouped, err := flint.Reorder(forest)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := flint.NewFlatEngineVariant(grouped, flint.FlatCompact)
	if err != nil {
		log.Fatal(err)
	}

	// Serve through a Batcher armed with drift detection. The baseline
	// is the training distribution; a huge CheckEvery keeps the
	// background cadence out of the way so the explicit CheckDrift calls
	// below make the example's output deterministic (a deployment would
	// leave the cadence in charge and never call CheckDrift by hand).
	pool := flint.NewBatcherSampled(engine, 0, 0, 512, 1)
	defer pool.Close()
	if err := pool.EnableDriftDetection(flint.DriftConfig{
		CheckEvery: 1 << 40,
		Budget:     25 * time.Millisecond,
		Cooldown:   time.Microsecond,
	}, train.Features); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained on batch 1 (%d rows), %d nodes, serving via %v/x%d\n",
		cut, forest.NumNodes(), engine.Kernel(), engine.Interleave())
	fmt.Println("serving later acquisition batches (sensor drift degrades accuracy; PSI distance tracks the shift):")
	const batches = 4
	batchSize := (rows - cut) / batches
	out := make([]int32, batchSize)
	prevTriggers := uint64(0)
	for b := 0; b < batches; b++ {
		lo := cut + b*batchSize
		hi := lo + batchSize
		out = pool.Predict(data.Features[lo:hi], out)
		correct := 0
		for i, y := range out {
			if y == data.Labels[lo+i] {
				correct++
			}
		}
		st := pool.CheckDrift()
		note := ""
		if st.Triggers > prevTriggers {
			note = fmt.Sprintf("  -> drift trigger #%d: recalibrated to %v/x%d on sampled traffic (source %q)",
				st.Triggers, engine.Kernel(), engine.Interleave(), engine.CalibrationSource())
			prevTriggers = st.Triggers
		}
		fmt.Printf("  batch %d (rows %5d..%5d): accuracy %.3f, drift distance %.3f%s\n",
			b+2, lo, hi, float64(correct)/float64(hi-lo), st.Distance, note)
	}
	st := pool.DriftStats()
	fmt.Printf("detector: %d checks, %d triggers, %d suppressed, baseline %d rows\n",
		st.Checks, st.Triggers, st.Suppressed, st.BaselineRows)

	// Recalibration re-times the serving mode on the shifted traffic;
	// recovering accuracy needs the other half of the loop — retraining
	// on recent data, the standard drift mitigation.
	recent := &flint.Dataset{
		Name:       "gas-recent",
		Features:   data.Features[rows-cut:],
		Labels:     data.Labels[rows-cut:],
		NumClasses: data.NumClasses,
	}
	retrained, err := flint.Train(recent, flint.TrainConfig{NumTrees: 15, MaxDepth: 10, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	rg, err := flint.Reorder(retrained)
	if err != nil {
		log.Fatal(err)
	}
	re, err := flint.NewFLIntEngine(rg)
	if err != nil {
		log.Fatal(err)
	}
	lastLo := cut + (batches-1)*batchSize
	fmt.Printf("after retraining on recent rows: batch %d accuracy %.3f\n",
		batches+1, flint.Accuracy(re, data.Features[lastLo:lastLo+batchSize], data.Labels[lastLo:lastLo+batchSize]))
}
