// Command flintbench regenerates the FLInt paper's evaluation: the
// normalized execution time sweep of Figure 3, the geometric mean
// summaries of Tables II and III, the C-vs-assembly comparison of
// Figure 4 and the Table I machine inventory.
//
// Backends:
//
//	interp — interpreted engines timed on this host
//	cc     — generated C compiled with the system compiler and timed on
//	         this host (the paper's actual toolchain)
//	sim    — generated ARMv8 assembly on the four simulated Table I
//	         machine profiles
//
// Examples:
//
//	flintbench -machines
//	flintbench -grid quick -backends interp,cc
//	flintbench -grid quick -backends sim -csv out/
//	flintbench -batchjson BENCH_batch.json
//	flintbench -batchjson BENCH_fused.json -kernel fused
//	flintbench -batchjson BENCH_simd.json -kernel simd
//	flintbench -laddermd BENCH_batch.json
//	flintbench -trenddiff old/BENCH_batch.json BENCH_batch.json
//	flintbench -trendhistory run4.json run3.json run2.json run1.json BENCH_batch.json
//	flintbench -emit out/ -emitdataset magic
//
// -emit trains a forest on one workload and dumps every C and Go
// realization codegen can produce for it — the branchy if-else FLInt
// form and the integer-only table-driven form (ModeTable: static cut
// tables + fused node words + the branch-free walk) — into the given
// directory, printing a code-size versus table-size comparison.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"flint/internal/asmsim"
	"flint/internal/bench"
	"flint/internal/cart"
	"flint/internal/codegen"
	"flint/internal/dataset"
	"flint/internal/treeexec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flintbench: ")

	var (
		grid      = flag.String("grid", "quick", "sweep grid: tiny|quick|paper")
		backends  = flag.String("backends", "interp", "comma-separated: interp|cc|sim|sim:<machine>")
		rows      = flag.Int("rows", 0, "override dataset rows (0 = grid default)")
		csvDir    = flag.String("csv", "", "write raw and series CSVs into this directory")
		machines  = flag.Bool("machines", false, "print the Table I machine profiles and exit")
		verbose   = flag.Bool("v", false, "log every measured grid point")
		batchJSON = flag.String("batchjson", "", "run the short batch-throughput bench (rows/s per arena variant per workload), write JSON to this path and exit")
		batchRows = flag.Int("batchrows", 0, "dataset rows for -batchjson, -audit and -servebench (0 = 1200)")
		auditJSON = flag.String("audit", "", "run the adversarial robustness audit (decision-path attack flip rate vs perturbation budget per workload), write JSON to this path and exit")
		serveJSON = flag.String("servebench", "", "run the HTTP serving bench (coalesced rows/s + p50/p99 latency per workload through internal/serve, every response verified against in-process Predict), write JSON to this path and exit")
		auditRows = flag.Int("auditrows", 0, "test rows attacked per workload for -audit (0 = 150)")
		kernel    = flag.String("kernel", "auto", "compact walk kernel for -batchjson: auto lets calibration pick, branchy|fused|simd-quant|simd pins it for A/B runs (the choice lands in the report's kernel column; the simd kernels run the portable fallback where the host ISA lacks them)")
		printISA  = flag.Bool("printisa", false, "print the vector ISA the SIMD kernels run natively on this host (treeexec.DetectedISA; \"none\" where only the portable fallback exists) and exit — CI uses it to decide whether the simd differential tests were required to execute")
		laddermd  = flag.Bool("laddermd", false, "render a BENCH_batch.json report's per-candidate calibration ladders as a GitHub-markdown table (usage: flintbench -laddermd BENCH_batch.json) for the CI job summary and exit")
		trenddiff = flag.Bool("trenddiff", false, "diff two BENCH_batch.json reports (usage: flintbench -trenddiff old.json new.json), print per-(workload, variant) rows/s deltas and exit")
		trendhist = flag.Bool("trendhistory", false, "walk a chronological sequence of BENCH_batch.json reports (usage: flintbench -trendhistory oldest.json ... newest.json), print each (workload, variant) cell's rows/s trajectory and exit")
		gatesFile = flag.String("gates", "", "persist host-wide interleave gates: load and install the gate table from this JSON file when it exists, otherwise calibrate this host and write it")
		emitDir   = flag.String("emit", "", "dump generated C/Go sources (if-else and integer-only table realizations) for a trained workload into this directory and exit")
		emitDS    = flag.String("emitdataset", "magic", "workload to train for -emit (eye|gas|magic|sensorless|wine)")
	)
	flag.Parse()

	if *gatesFile != "" {
		if err := loadOrCalibrateGates(*gatesFile); err != nil {
			log.Fatal(err)
		}
	}

	if *printISA {
		if isa := treeexec.DetectedISA(); isa != "" {
			fmt.Println(isa)
		} else {
			fmt.Println("none")
		}
		return
	}

	if *machines {
		printMachines()
		return
	}

	if *emitDir != "" {
		if err := runEmit(*emitDir, *emitDS); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *laddermd {
		if flag.NArg() != 1 {
			log.Fatal("usage: flintbench -laddermd BENCH_batch.json")
		}
		if err := runLadderMarkdown(flag.Arg(0)); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *trenddiff {
		if flag.NArg() != 2 {
			log.Fatal("usage: flintbench -trenddiff old.json new.json")
		}
		if err := runTrendDiff(flag.Arg(0), flag.Arg(1)); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *trendhist {
		if flag.NArg() < 2 {
			log.Fatal("usage: flintbench -trendhistory oldest.json [...] newest.json (at least two reports)")
		}
		if err := runTrendHistory(flag.Args()); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *batchJSON != "" {
		if err := runBatchBench(*batchJSON, *batchRows, *kernel); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *auditJSON != "" {
		if err := runRobustAudit(*auditJSON, *batchRows, *auditRows); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *serveJSON != "" {
		if err := runServeBench(*serveJSON, *batchRows); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg, err := gridConfig(*grid)
	if err != nil {
		log.Fatal(err)
	}
	if *rows > 0 {
		cfg.Rows = *rows
	}
	bks, withASM, err := buildBackends(*backends)
	if err != nil {
		log.Fatal(err)
	}

	progress := os.Stderr
	if !*verbose {
		progress = nil
	}
	res, err := bench.RunSweep(cfg, bks, progress)
	if err != nil {
		log.Fatal(err)
	}

	series := bench.Figure3(res, bench.ImplNaive)
	fmt.Println("=== Figure 3: normalized execution time vs maximal tree depth ===")
	mainSeries := filterSeries(series, bench.ImplNaive, bench.ImplCAGS, bench.ImplFLInt, bench.ImplCAGSFLInt)
	if err := bench.WriteFigure3(os.Stdout, mainSeries); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Table II: average (geometric mean) normalized execution time ===")
	rowsII := bench.Table(res, bench.ImplNaive,
		[]bench.Impl{bench.ImplCAGS, bench.ImplFLInt, bench.ImplCAGSFLInt})
	if err := bench.WriteTable(os.Stdout, "Table II", rowsII); err != nil {
		log.Fatal(err)
	}

	// Extension row (cc backend only): the table-driven integer-only
	// realization (codegen ModeTable — the compact fused arena as static
	// tables plus a fixed walk loop), timed next to the if-else forms.
	if rowsTable := bench.Table(res, bench.ImplNaive,
		[]bench.Impl{bench.ImplTableC}); len(rowsTable) > 0 {
		fmt.Println("=== Extension: table-driven integer-only C (compact fused arena) ===")
		if err := bench.WriteTable(os.Stdout, "Table codegen", rowsTable); err != nil {
			log.Fatal(err)
		}
	}

	// Extension rows (interp backend only): the forest-arena engine,
	// single-row, through the row-blocked batch kernel, and over the
	// quantized 8-byte compact arena, normalized against the same naive
	// baseline.
	if rowsArena := bench.Table(res, bench.ImplNaive,
		[]bench.Impl{bench.ImplFlat, bench.ImplFlatBatch, bench.ImplFlatCompact, bench.ImplFlatFused}); len(rowsArena) > 0 {
		fmt.Println("=== Extension: forest-arena engine ===")
		if err := bench.WriteTable(os.Stdout, "Arena", rowsArena); err != nil {
			log.Fatal(err)
		}
		printArenaFootprint(cfg)
	}

	if withASM {
		fmt.Println("=== Figure 4: FLInt C vs FLInt ASM (simulated machines) ===")
		fig4 := filterSeries(series, bench.ImplNaive, bench.ImplFLInt, bench.ImplFLIntASM)
		if err := bench.WriteFigure3(os.Stdout, fig4); err != nil {
			log.Fatal(err)
		}
		fmt.Println("=== Table III: average normalized time, assembly implementation ===")
		rowsIII := bench.Table(res, bench.ImplNaive, []bench.Impl{bench.ImplFLIntASM})
		if err := bench.WriteTable(os.Stdout, "Table III", rowsIII); err != nil {
			log.Fatal(err)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := writeFile(filepath.Join(*csvDir, "cells.csv"), func(w io.Writer) error {
			return bench.WriteCSV(w, res)
		}); err != nil {
			log.Fatal(err)
		}
		if err := writeFile(filepath.Join(*csvDir, "figure3.csv"), func(w io.Writer) error {
			return bench.WriteSeriesCSV(w, series)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s and %s\n",
			filepath.Join(*csvDir, "cells.csv"), filepath.Join(*csvDir, "figure3.csv"))
	}
}

// writeFile creates path, streams write into it and propagates the
// Close error: on a full disk the final flush is where truncated output
// surfaces, and the previous deferred Close silently swallowed it —
// leaving CI artifacts (cells.csv, BENCH_batch.json) cut short with a
// success exit code.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("writing %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("closing %s: %w", path, cerr)
	}
	return nil
}

// runEmit implements -emit: train a forest on the named workload and
// dump the generated sources for both realization shapes — if-else
// FLInt (code grows with the forest) and the integer-only table form
// (fixed walk loop, model as static data) — in C and Go. The closing
// line compares the two budgets: emitted if-else source versus the
// table form's data footprint. Forests past the compact encoding skip
// the table files with the reason instead of failing the dump.
func runEmit(dir, dsName string) error {
	full, err := dataset.Generate(dsName, 1200, 1)
	if err != nil {
		return err
	}
	train, _ := full.Split(0.75, 1)
	forest, err := cart.TrainForest(train, cart.Config{NumTrees: 10, MaxDepth: 10, Seed: 1})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	specs := []struct {
		file string
		opts codegen.Options
	}{
		{dsName + "_ifelse.c", codegen.Options{Language: codegen.LangC, Variant: codegen.VariantFLInt}},
		{dsName + "_table.c", codegen.Options{Language: codegen.LangC, Mode: codegen.ModeTable}},
		{dsName + "_ifelse.go", codegen.Options{Language: codegen.LangGo, Variant: codegen.VariantFLInt}},
		{dsName + "_table.go", codegen.Options{Language: codegen.LangGo, Mode: codegen.ModeTable}},
	}
	sizes := make(map[string]int, len(specs))
	for _, s := range specs {
		var buf bytes.Buffer
		if err := codegen.Forest(&buf, forest, s.opts); err != nil {
			var nce *codegen.NotCompactableError
			if errors.As(err, &nce) {
				fmt.Fprintf(os.Stderr, "skipping %s: %v\n", s.file, err)
				continue
			}
			return err
		}
		path := filepath.Join(dir, s.file)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return err
		}
		sizes[s.file] = buf.Len()
		fmt.Printf("wrote %s (%d bytes)\n", path, buf.Len())
	}
	if e, err := treeexec.NewFlat(forest, treeexec.FlatCompact); err == nil && e.Variant() == treeexec.FlatCompact {
		if m, err := e.ExportCompact(); err == nil {
			fmt.Printf("table data footprint: %d bytes (if-else C source: %d bytes)\n",
				m.TableBytes(), sizes[dsName+"_ifelse.c"])
		}
	}
	return nil
}

// loadOrCalibrateGates implements -gates: a deployment's warm-start
// path for the host-wide interleave gate table. An existing file is
// loaded and installed (no calibration cost); a missing one triggers
// one Calibrate pass whose result is persisted for the next run.
func loadOrCalibrateGates(path string) error {
	f, err := os.Open(path)
	switch {
	case err == nil:
		g, rerr := treeexec.ReadGatesJSON(f)
		f.Close()
		if rerr != nil {
			return fmt.Errorf("reading %s: %w", path, rerr)
		}
		treeexec.SetInterleaveGates(g)
		fmt.Fprintf(os.Stderr, "installed interleave gates from %s\n", path)
		return nil
	case os.IsNotExist(err):
		g := treeexec.Calibrate(0)
		if werr := writeFile(path, func(w io.Writer) error {
			return treeexec.WriteGatesJSON(w, g)
		}); werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "calibrated this host and wrote gates to %s\n", path)
		return nil
	default:
		return err
	}
}

func gridConfig(name string) (bench.SweepConfig, error) {
	switch name {
	case "paper":
		return bench.PaperGrid(), nil
	case "quick":
		return bench.QuickGrid(), nil
	case "tiny":
		return bench.SweepConfig{
			Datasets:   []string{"magic", "wine"},
			TreeCounts: []int{1, 5},
			Depths:     []int{1, 5, 10, 20},
			Rows:       600,
			Seed:       1,
		}, nil
	}
	return bench.SweepConfig{}, fmt.Errorf("unknown grid %q (tiny|quick|paper)", name)
}

func buildBackends(spec string) ([]bench.Backend, bool, error) {
	var out []bench.Backend
	withASM := false
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		switch {
		case name == "interp":
			out = append(out, &bench.InterpBackend{WithExtensions: true})
		case name == "cc":
			cc := &bench.CCBackend{}
			if !cc.Available() {
				return nil, false, fmt.Errorf("cc backend requested but no C compiler found")
			}
			out = append(out, cc)
		case name == "sim":
			for _, m := range asmsim.TableI() {
				out = append(out, &bench.SimBackend{Machine: m, WithASM: true})
			}
			withASM = true
		case strings.HasPrefix(name, "sim:"):
			m, ok := asmsim.MachineByName(strings.TrimPrefix(name, "sim:"))
			if !ok {
				return nil, false, fmt.Errorf("unknown machine %q", strings.TrimPrefix(name, "sim:"))
			}
			out = append(out, &bench.SimBackend{Machine: m, WithASM: true})
			withASM = true
		case name == "":
		default:
			return nil, false, fmt.Errorf("unknown backend %q", name)
		}
	}
	if len(out) == 0 {
		return nil, false, fmt.Errorf("no backends selected")
	}
	return out, withASM, nil
}

func filterSeries(series []bench.Series, impls ...bench.Impl) []bench.Series {
	keep := map[bench.Impl]bool{}
	for _, im := range impls {
		keep[im] = true
	}
	var out []bench.Series
	for _, s := range series {
		if keep[s.Impl] {
			out = append(out, s)
		}
	}
	return out
}

// runBatchBench runs the short batch-throughput measurement and writes
// the BENCH_batch.json document: rows/s per arena variant per workload,
// with the arena footprints (bytes/node) that motivate the compact
// layout. Intended for CI trend tracking; numbers are wall-clock and
// noisy, so nothing here fails on a slow run.
func runBatchBench(path string, rows int, kernel string) error {
	rep, err := bench.BatchBench{Rows: rows, Kernel: kernel}.Run()
	if err != nil {
		return err
	}
	if isa := treeexec.DetectedISA(); isa != "" {
		fmt.Printf("vector ISA: %s\n", isa)
	} else {
		fmt.Printf("vector ISA: none (simd kernel runs the portable fallback)\n")
	}
	// The Close error matters here: BENCH_batch.json is the CI trend
	// artifact, and a full disk surfacing only at the final flush used
	// to truncate it silently.
	if err := writeFile(path, func(w io.Writer) error {
		return bench.WriteBatchBenchJSON(w, rep)
	}); err != nil {
		return err
	}
	for _, r := range rep.Results {
		switch {
		case r.PrunedFeatures > 0:
			fmt.Printf("%-12s %-13s %12.0f rows/s  %8d nodes  %4.1f B/node  x%d %s (%s)  %d/%d split-on features\n",
				r.Dataset, r.Variant, r.RowsPerSec, r.ArenaNodes, r.BytesPerNode, r.Interleave, r.Kernel, r.CalibSource,
				r.PrunedFeatures, r.NumFeatures)
		case r.ArenaNodes > 0:
			fmt.Printf("%-12s %-13s %12.0f rows/s  %8d nodes  %4.1f B/node  x%d %s (%s)\n",
				r.Dataset, r.Variant, r.RowsPerSec, r.ArenaNodes, r.BytesPerNode, r.Interleave, r.Kernel, r.CalibSource)
		default:
			fmt.Printf("%-12s %-13s %12.0f rows/s\n", r.Dataset, r.Variant, r.RowsPerSec)
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// runServeBench measures the HTTP front-end — cross-request coalescing
// through internal/serve over a registry-backed model per workload —
// and writes BENCH_serve.json. Every response is verified against the
// in-process engine before any number is reported, so this doubles as
// the wire-correctness smoke the CI serve job runs.
func runServeBench(path string, rows int) error {
	rep, err := bench.ServeBench{Rows: rows}.Run()
	if err != nil {
		return err
	}
	if err := writeFile(path, func(w io.Writer) error {
		return bench.WriteServeBenchJSON(w, rep)
	}); err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Printf("%-12s %-13s %12.0f rows/s %9.0f req/s  p50 %6.2fms  p99 %6.2fms  %5.1f rows/batch  %d verified\n",
			r.Dataset, r.Variant, r.RowsPerSec, r.RequestsPerSec, r.P50Ms, r.P99Ms, r.CoalesceFill, r.Verified)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// runRobustAudit runs the per-workload adversarial robustness audit
// (decision-path attack, internal/robust) and writes BENCH_robust.json.
// Report-only: the flip-rate curve characterizes the trained models'
// boundary geometry, not the engine's performance, so nothing here
// gates.
func runRobustAudit(path string, rows, auditRows int) error {
	rep, err := bench.RobustBench{Rows: rows, AuditRows: auditRows}.Run()
	if err != nil {
		return err
	}
	if err := writeFile(path, func(w io.Writer) error {
		return bench.WriteRobustBenchJSON(w, rep)
	}); err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Printf("%-12s %8d nodes  %3d rows audited  %3d flipped  mean cost %.4f\n",
			r.Dataset, r.ArenaNodes, r.Report.Rows, r.Report.Flipped, r.Report.MeanCost)
		for i, b := range r.Report.Budgets {
			fmt.Printf("               budget %6.3f: flip rate %.3f\n", b, r.Report.FlipRate[i])
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// runLadderMarkdown reads a BENCH_batch.json report and prints its
// per-candidate calibration ladders as one markdown table — the CI job
// summary's view of every (width, kernel, refill) mode's measured
// rows/s, winners starred, so losing kernels' trajectories stay
// visible across PRs.
func runLadderMarkdown(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := bench.ReadBatchBenchJSON(f)
	if err != nil {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	return bench.WriteLadderMarkdown(os.Stdout, rep)
}

// runTrendDiff aligns two BENCH_batch.json reports (typically the
// previous CI run's artifact against this run's) and prints the
// per-(workload, variant) rows/s deltas. Report-only: throughput on
// shared runners is noisy, so nothing here exits non-zero on a
// regression — the table exists to make trends visible, not to gate.
func runTrendDiff(oldPath, newPath string) error {
	read := func(path string) (*bench.BatchBenchReport, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return bench.ReadBatchBenchJSON(f)
	}
	oldRep, err := read(oldPath)
	if err != nil {
		return fmt.Errorf("reading %s: %w", oldPath, err)
	}
	newRep, err := read(newPath)
	if err != nil {
		return fmt.Errorf("reading %s: %w", newPath, err)
	}
	fmt.Printf("batch throughput trend: %s -> %s\n", oldPath, newPath)
	return bench.WriteTrendDiff(os.Stdout, bench.TrendDiff(oldRep, newRep))
}

// runTrendHistory aligns a chronological sequence of BENCH_batch.json
// reports (oldest first; typically the last few CI artifacts plus this
// run's) and prints each (workload, variant) cell's rows/s trajectory,
// so drift too slow for any single run-over-run diff is visible.
// Report-only, like the diff: nothing exits non-zero on a regression.
func runTrendHistory(paths []string) error {
	reps := make([]*bench.BatchBenchReport, len(paths))
	labels := make([]string, len(paths))
	for i, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		rep, err := bench.ReadBatchBenchJSON(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", path, err)
		}
		reps[i] = rep
		// Short column headers: run-1 is the newest preceding run,
		// run-N the oldest; the final report is this run's.
		labels[i] = fmt.Sprintf("run-%d", len(paths)-1-i)
		if i == len(paths)-1 {
			labels[i] = "current"
		}
	}
	fmt.Printf("batch throughput trajectory over %d runs (oldest first):\n", len(paths))
	for i, path := range paths {
		fmt.Printf("  %s = %s\n", labels[i], path)
	}
	return bench.WriteTrendHistory(os.Stdout, labels, bench.TrendHistory(reps))
}

// printArenaFootprint trains one representative ensemble and prints the
// per-node storage cost of each arena layout, making the footprint
// claim behind the compact variant's timings visible next to them.
func printArenaFootprint(cfg bench.SweepConfig) {
	rows, trees, depth := cfg.Rows, 0, 0
	if rows <= 0 {
		rows = 1200
	}
	for _, t := range cfg.TreeCounts {
		if t > trees && t <= 20 {
			trees = t
		}
	}
	if trees == 0 {
		trees = 10
	}
	for _, d := range cfg.Depths {
		if d > depth && d <= 15 {
			depth = d
		}
	}
	if depth == 0 {
		depth = 10
	}
	ds := cfg.Datasets[0]
	full, err := dataset.Generate(ds, rows, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, _ := full.Split(0.75, 1)
	forest, err := cart.TrainForest(train, cart.Config{NumTrees: trees, MaxDepth: depth, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- Arena footprint (%s, %d trees, depth %d) ---\n", ds, trees, depth)
	for _, v := range []treeexec.FlatVariant{treeexec.FlatFLInt, treeexec.FlatCompact} {
		e, err := treeexec.NewFlat(forest, v)
		if err != nil {
			log.Fatal(err)
		}
		nodes, bytes := e.ArenaNodes(), e.ArenaBytes()
		fmt.Printf("%-13s %8d nodes %10d bytes  %4.1f B/node\n",
			e.Name(), nodes, bytes, float64(bytes)/float64(nodes))
	}
	if ok, reason := treeexec.Compactable(forest); !ok {
		fmt.Printf("(compact fallback: %s)\n", reason)
	}
}

// printMachines renders the Table I stand-ins.
func printMachines() {
	fmt.Println("Machine profiles standing in for the paper's Table I:")
	fmt.Printf("%-16s %-52s %6s %6s %6s %6s\n", "name", "stands in for", "fcmp", "mispr", "L1I", "L1D")
	for _, m := range asmsim.Machines() {
		fmt.Printf("%-16s %-52s %6d %6d %5dK %5dK\n",
			m.Name, m.Description, m.FPCompareCycles, m.MispredictPenalty,
			m.ICache.SizeBytes>>10, m.DCache.SizeBytes>>10)
	}
}
