package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flint/internal/bench"
	"flint/internal/treeexec"
)

func TestGridConfig(t *testing.T) {
	for _, name := range []string{"tiny", "quick", "paper"} {
		cfg, err := gridConfig(name)
		if err != nil {
			t.Errorf("gridConfig(%s): %v", name, err)
		}
		if len(cfg.Depths) == 0 {
			t.Errorf("gridConfig(%s): empty depth axis", name)
		}
	}
	if _, err := gridConfig("huge"); err == nil {
		t.Error("unknown grid accepted")
	}
	paper, _ := gridConfig("paper")
	if len(paper.TreeCounts) != 9 || len(paper.Depths) != 7 || len(paper.Datasets) != 5 {
		t.Errorf("paper grid does not match Section V-A: %+v", paper)
	}
}

func TestBuildBackends(t *testing.T) {
	bks, asm, err := buildBackends("interp")
	if err != nil || len(bks) != 1 || asm {
		t.Errorf("interp: %v %v %v", bks, asm, err)
	}
	bks, asm, err = buildBackends("sim")
	if err != nil || len(bks) != 4 || !asm {
		t.Errorf("sim: got %d backends, asm=%v, err=%v", len(bks), asm, err)
	}
	bks, asm, err = buildBackends("sim:armv8-server,interp")
	if err != nil || len(bks) != 2 || !asm {
		t.Errorf("mixed: got %d backends, asm=%v, err=%v", len(bks), asm, err)
	}
	if _, _, err := buildBackends("sim:pdp11"); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, _, err := buildBackends("fpga"); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, _, err := buildBackends(""); err == nil {
		t.Error("empty backend list accepted")
	}
}

func TestFilterSeries(t *testing.T) {
	in := []bench.Series{
		{Impl: bench.ImplNaive}, {Impl: bench.ImplFLInt},
		{Impl: bench.ImplSoftFloat}, {Impl: bench.ImplFLIntASM},
	}
	out := filterSeries(in, bench.ImplNaive, bench.ImplFLIntASM)
	if len(out) != 2 || out[0].Impl != bench.ImplNaive || out[1].Impl != bench.ImplFLIntASM {
		t.Errorf("filterSeries = %+v", out)
	}
	if len(filterSeries(in)) != 0 {
		t.Error("empty filter must drop everything")
	}
}

func TestRunTrendDiff(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *bench.BatchBenchReport) string {
		t.Helper()
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := bench.WriteBatchBenchJSON(f, rep); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", &bench.BatchBenchReport{Results: []bench.BatchBenchRow{
		{Dataset: "magic", Variant: "flat-compact", RowsPerSec: 100},
	}})
	newPath := write("new.json", &bench.BatchBenchReport{Results: []bench.BatchBenchRow{
		{Dataset: "magic", Variant: "flat-compact", RowsPerSec: 110},
	}})
	if err := runTrendDiff(oldPath, newPath); err != nil {
		t.Errorf("runTrendDiff: %v", err)
	}
	if err := runTrendDiff(oldPath, filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing new report accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTrendDiff(bad, newPath); err == nil {
		t.Error("malformed old report accepted")
	}
}

// TestRunTrendHistory smoke-tests the -trendhistory walk: a
// chronological report sequence renders, and a missing or malformed
// report in the sequence errors instead of printing a partial table.
func TestRunTrendHistory(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i, rps := range []float64{100, 105, 120} {
		path := filepath.Join(dir, []string{"a.json", "b.json", "c.json"}[i])
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		err = bench.WriteBatchBenchJSON(f, &bench.BatchBenchReport{Results: []bench.BatchBenchRow{
			{Dataset: "magic", Variant: "flat-compact", RowsPerSec: rps, Kernel: "fused"},
		}})
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	if err := runTrendHistory(paths); err != nil {
		t.Errorf("runTrendHistory: %v", err)
	}
	if err := runTrendHistory(append(paths, filepath.Join(dir, "missing.json"))); err == nil {
		t.Error("missing report accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTrendHistory([]string{bad, paths[0]}); err == nil {
		t.Error("malformed report accepted")
	}
}

// TestRunEmit covers the -emit dump: all four realizations land in the
// target directory (if-else and table, C and Go), the table files carry
// integer-only content, and an unknown workload errors.
func TestRunEmit(t *testing.T) {
	dir := t.TempDir()
	if err := runEmit(dir, "magic"); err != nil {
		t.Fatalf("runEmit: %v", err)
	}
	for _, name := range []string{"magic_ifelse.c", "magic_table.c", "magic_ifelse.go", "magic_table.go"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("-emit did not write %s: %v", name, err)
		}
		if len(b) == 0 {
			t.Errorf("%s is empty", name)
		}
		if strings.Contains(name, "table") && !strings.Contains(string(b), "table). DO NOT EDIT") {
			t.Errorf("%s is not table-mode output", name)
		}
	}
	if err := runEmit(t.TempDir(), "mnist"); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestLoadOrCalibrateGates covers the -gates warm-start path: a missing
// file triggers calibration and persists a loadable table, an existing
// file installs without recalibrating, and a corrupt file errors
// instead of silently running with default gates.
func TestLoadOrCalibrateGates(t *testing.T) {
	defer treeexec.SetInterleaveGates(treeexec.DefaultInterleaveGates())
	dir := t.TempDir()
	path := filepath.Join(dir, "gates.json")
	if err := loadOrCalibrateGates(path); err != nil {
		t.Fatalf("calibrate-and-write: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("gates file not written: %v", err)
	}
	g, err := treeexec.ReadGatesJSON(f)
	f.Close()
	if err != nil {
		t.Fatalf("written gates unreadable: %v", err)
	}

	// Second run: the file exists and must be installed as-is.
	treeexec.SetInterleaveGates(treeexec.DefaultInterleaveGates())
	if err := loadOrCalibrateGates(path); err != nil {
		t.Fatalf("load existing: %v", err)
	}
	if got := treeexec.CurrentInterleaveGates(); got != g {
		t.Errorf("installed gates %+v, want persisted %+v", got, g)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loadOrCalibrateGates(bad); err == nil {
		t.Error("corrupt gates file accepted")
	}
}
