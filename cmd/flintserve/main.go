// Command flintserve is the network front-end over the model registry:
// it builds a set of ServedModels from a manifest (or a default
// manifest over the built-in workloads), registers them, and serves
// them over HTTP with cross-request batching, admission control and
// per-model metrics (see internal/serve for the endpoints).
//
// Hot reload: SIGHUP or POST /v1/reload rebuilds every manifest model
// off-line and installs each through ModelRegistry.Swap — the pointer
// flips, the old model drains, and not one in-flight request is
// dropped. Models removed from the manifest are unregistered; new ones
// are added.
//
// A manifest is JSON:
//
//	{"models": [
//	  {"name": "magic", "dataset": "magic", "rows": 4000, "trees": 30,
//	   "depth": 20, "seed": 1, "variant": "auto",
//	   "calibration": "magic.calib.json", "drift": true}
//	]}
//
// Without -manifest, one model per -datasets entry is built with the
// -rows/-trees/-depth/-seed defaults.
//
// -selfcheck replaces serving with the CI smoke path: start on a
// loopback port, fire concurrent single-row and batch requests at every
// model over real HTTP, verify each response bit-for-bit against the
// in-process engine, exercise one hot reload mid-traffic, and exit
// non-zero on any mismatch.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"flint/internal/cags"
	"flint/internal/cart"
	"flint/internal/dataset"
	"flint/internal/serve"
	"flint/internal/treeexec"
)

// ModelSpec describes one served model: the synthetic workload and
// forest shape to build, the arena variant, and optional warm-start
// state.
type ModelSpec struct {
	Name    string `json:"name"`
	Dataset string `json:"dataset"`
	Rows    int    `json:"rows,omitempty"`
	Trees   int    `json:"trees,omitempty"`
	Depth   int    `json:"depth,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	// Variant selects the arena: "auto" (default — compact when the
	// forest fits its encoding, else flint), "compact", "flint",
	// "float32" or "precoded".
	Variant string `json:"variant,omitempty"`
	// Calibration optionally names a persisted CalibrationRecord to
	// warm-start from (loaded through the registry, so cross-model
	// mix-ups are rejected). A missing file is logged, not fatal.
	Calibration string `json:"calibration,omitempty"`
	// Drift arms drift detection with the default policy (unless the
	// calibration record already re-armed one).
	Drift bool `json:"drift,omitempty"`
}

// Manifest is the -manifest document.
type Manifest struct {
	Models []ModelSpec `json:"models"`
}

type buildDefaults struct {
	rows, trees, depth int
	seed               int64
}

func (s ModelSpec) withDefaults(d buildDefaults) ModelSpec {
	if s.Dataset == "" {
		s.Dataset = s.Name
	}
	if s.Name == "" {
		s.Name = s.Dataset
	}
	if s.Rows <= 0 {
		s.Rows = d.rows
	}
	if s.Trees <= 0 {
		s.Trees = d.trees
	}
	if s.Depth <= 0 {
		s.Depth = d.depth
	}
	if s.Seed == 0 {
		s.Seed = d.seed
	}
	if s.Variant == "" {
		s.Variant = "auto"
	}
	return s
}

func loadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m Manifest
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	if len(m.Models) == 0 {
		return nil, fmt.Errorf("manifest %s: no models", path)
	}
	return &m, nil
}

// defaultManifest builds one spec per named dataset.
func defaultManifest(datasets string) (*Manifest, error) {
	names := strings.Split(datasets, ",")
	m := &Manifest{}
	known := dataset.Names()
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, k := range known {
			if k == n {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown dataset %q (have %s)", n, strings.Join(known, ", "))
		}
		m.Models = append(m.Models, ModelSpec{Name: n, Dataset: n})
	}
	if len(m.Models) == 0 {
		return nil, errors.New("-datasets selected no models")
	}
	return m, nil
}

// buildModel trains, compiles and calibrates one ServedModel off-line;
// the returned rows are the workload's test-set features (the traffic
// the selfcheck and drift baseline use). Deterministic per spec: the
// same spec always yields a bit-identical model, which is what makes a
// hot reload answer-preserving when the manifest has not changed.
func buildModel(spec ModelSpec, workers int) (*treeexec.ServedModel, [][]float32, error) {
	full, err := dataset.Generate(spec.Dataset, spec.Rows, spec.Seed)
	if err != nil {
		return nil, nil, err
	}
	train, test := full.Split(0.75, spec.Seed)
	forest, err := cart.TrainForest(train, cart.Config{
		NumTrees: spec.Trees, MaxDepth: spec.Depth, Seed: spec.Seed,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("training %s: %w", spec.Name, err)
	}
	forest, err = cags.ReorderForest(forest)
	if err != nil {
		return nil, nil, err
	}

	var variant treeexec.FlatVariant
	switch spec.Variant {
	case "auto":
		variant = treeexec.FlatFLInt
		if ok, _ := treeexec.Compactable(forest); ok {
			variant = treeexec.FlatCompact
		}
	case "compact":
		variant = treeexec.FlatCompact
	case "flint":
		variant = treeexec.FlatFLInt
	case "float32":
		variant = treeexec.FlatFloat32
	case "precoded":
		variant = treeexec.FlatPrecoded
	default:
		return nil, nil, fmt.Errorf("model %s: unknown variant %q", spec.Name, spec.Variant)
	}
	e, err := treeexec.NewFlat(forest, variant)
	if err != nil {
		return nil, nil, err
	}
	// Calibrate the (width, kernel) mode on training rows — the best
	// stand-in for traffic before any has been served. A warm start
	// (Calibration below) overwrites this with the persisted mode.
	e.CalibrateInterleaveRows(train.Features, 0)
	m := treeexec.NewServedModel(spec.Name, e, workers, 0)
	if spec.Drift {
		if err := m.EnableDriftDetection(treeexec.DriftConfig{}, train.Features); err != nil {
			m.Close()
			return nil, nil, fmt.Errorf("model %s: arming drift detection: %w", spec.Name, err)
		}
	}
	return m, test.Features, nil
}

// installModels builds every manifest model off-line and installs each
// into the registry — Register for new names, Swap for existing ones —
// then unregisters models the manifest no longer lists. This is both
// the startup path and the SIGHUP / POST /v1/reload path; a build
// failure mid-reload leaves the previous models serving.
func installModels(reg *treeexec.ModelRegistry, mf *Manifest, d buildDefaults, workers int) error {
	want := make(map[string]bool, len(mf.Models))
	for _, raw := range mf.Models {
		spec := raw.withDefaults(d)
		if want[spec.Name] {
			return fmt.Errorf("manifest lists model %q twice", spec.Name)
		}
		want[spec.Name] = true
		m, _, err := buildModel(spec, workers)
		if err != nil {
			return err
		}
		if _, registered := reg.Get(spec.Name); registered {
			if err := reg.Swap(spec.Name, m); err != nil {
				m.Close()
				return err
			}
			log.Printf("model %q: hot-swapped (%s, %d nodes)", spec.Name, m.Engine().Name(), m.Engine().ArenaNodes())
		} else {
			if err := reg.Register(m); err != nil {
				m.Close()
				return err
			}
			log.Printf("model %q: registered (%s, %d nodes, x%d %s)", spec.Name,
				m.Engine().Name(), m.Engine().ArenaNodes(), m.Engine().Interleave(), m.Engine().Kernel())
		}
		if spec.Calibration != "" {
			if err := warmStartFromFile(reg, spec.Name, spec.Calibration); err != nil {
				log.Printf("model %q: warm start from %s skipped: %v", spec.Name, spec.Calibration, err)
			} else {
				log.Printf("model %q: warm-started from %s", spec.Name, spec.Calibration)
			}
		}
	}
	for _, name := range reg.Names() {
		if !want[name] {
			if err := reg.Remove(name); err != nil {
				return err
			}
			log.Printf("model %q: removed (no longer in manifest)", name)
		}
	}
	return nil
}

func warmStartFromFile(reg *treeexec.ModelRegistry, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = reg.LoadCalibration(name, f)
	return err
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		manifest = flag.String("manifest", "", "model-set manifest (JSON); empty builds -datasets with the defaults below")
		datasets = flag.String("datasets", strings.Join(dataset.Names(), ","), "comma-separated workloads for the default manifest")
		rows     = flag.Int("rows", 4000, "default synthetic dataset size per model")
		trees    = flag.Int("trees", 30, "default trees per model")
		depth    = flag.Int("depth", 20, "default max depth per model")
		seed     = flag.Int64("seed", 1, "default train/generate seed per model")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "Batcher workers per model")
		maxRows  = flag.Int("maxrows", 0, "coalescing cap: rows per batch (0: serve default)")
		maxDelay = flag.Duration("maxdelay", 0, "coalescing latency budget (0: serve default)")
		maxQueue = flag.Int("maxqueue", 0, "admission bound: queued requests per model (0: serve default)")

		selfcheck     = flag.Bool("selfcheck", false, "smoke mode: serve on loopback, fire concurrent requests, verify against in-process Predict, exit")
		selfcheckReqs = flag.Int("selfcheckreqs", 64, "requests per model in -selfcheck")
	)
	flag.Parse()

	d := buildDefaults{rows: *rows, trees: *trees, depth: *depth, seed: *seed}
	var mf *Manifest
	var err error
	if *manifest != "" {
		mf, err = loadManifest(*manifest)
	} else {
		mf, err = defaultManifest(*datasets)
	}
	if err != nil {
		log.Fatal(err)
	}
	cfg := serve.Config{MaxBatchRows: *maxRows, MaxDelay: *maxDelay, MaxQueue: *maxQueue}

	if *selfcheck {
		if err := runSelfCheck(mf, d, cfg, *workers, *selfcheckReqs); err != nil {
			log.Fatalf("selfcheck FAILED: %v", err)
		}
		log.Println("selfcheck passed")
		return
	}

	reg := treeexec.NewModelRegistry()
	if err := installModels(reg, mf, d, *workers); err != nil {
		log.Fatal(err)
	}
	srv := serve.New(reg, cfg)
	var reloadMu sync.Mutex
	reload := func() error {
		reloadMu.Lock()
		defer reloadMu.Unlock()
		if *manifest != "" {
			fresh, err := loadManifest(*manifest)
			if err != nil {
				return err
			}
			mf = fresh
		}
		return installModels(reg, mf, d, *workers)
	}
	srv.SetReload(reload)

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			log.Println("SIGHUP: reloading models")
			if err := reload(); err != nil {
				log.Printf("reload failed (previous models keep serving): %v", err)
			}
		}
	}()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		log.Println("shutting down")
		_ = httpSrv.Close()
	}()
	log.Printf("serving %d models on %s", len(reg.Names()), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	srv.Close()
	reg.Close()
}

// runSelfCheck is the CI smoke: build the manifest's models, serve them
// on a loopback port, fire concurrent single-row and batch requests at
// every model over real HTTP, compare each answer bit-for-bit with the
// in-process engine, and exercise one hot reload mid-traffic (same
// manifest — deterministic builds mean answers must not change).
func runSelfCheck(mf *Manifest, d buildDefaults, cfg serve.Config, workers, reqs int) error {
	reg := treeexec.NewModelRegistry()
	defer reg.Close()
	if err := installModels(reg, mf, d, workers); err != nil {
		return err
	}

	// In-process references, computed before any serving.
	type target struct {
		name string
		rows [][]float32
		want []int32
	}
	var targets []target
	for _, raw := range mf.Models {
		spec := raw.withDefaults(d)
		m, rows, err := buildModel(spec, workers) // same spec → same forest → same answers
		if err != nil {
			return err
		}
		want := m.Engine().PredictBatch(rows, nil, 1, 0)
		m.Close()
		targets = append(targets, target{name: spec.Name, rows: rows, want: want})
	}

	srv := serve.New(reg, cfg)
	defer srv.Close()
	srv.SetReload(func() error { return installModels(reg, mf, d, workers) })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	var failures atomic.Uint64
	firstErr := make(chan error, 1)
	fail := func(err error) {
		failures.Add(1)
		select {
		case firstErr <- err:
		default:
		}
	}
	var wg sync.WaitGroup
	const concurrency = 8
	for _, tg := range targets {
		for g := 0; g < concurrency; g++ {
			wg.Add(1)
			go func(tg target, g int) {
				defer wg.Done()
				for i := g; i < reqs; i += concurrency {
					lo := (i * 7) % len(tg.rows)
					var body, expectKind string
					var expect []int32
					if i%2 == 0 {
						row, _ := json.Marshal(tg.rows[lo])
						body, expectKind = fmt.Sprintf(`{"row":%s}`, row), "single"
						expect = tg.want[lo : lo+1]
					} else {
						hi := lo + 16
						if hi > len(tg.rows) {
							hi = len(tg.rows)
						}
						rows, _ := json.Marshal(tg.rows[lo:hi])
						body, expectKind = fmt.Sprintf(`{"rows":%s}`, rows), "batch"
						expect = tg.want[lo:hi]
					}
					resp, err := http.Post(base+"/v1/models/"+tg.name+":predict", "application/json", strings.NewReader(body))
					if err != nil {
						fail(fmt.Errorf("%s %s request: %w", tg.name, expectKind, err))
						return
					}
					var pr struct {
						Classes []int32 `json:"classes"`
					}
					err = json.NewDecoder(resp.Body).Decode(&pr)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK {
						fail(fmt.Errorf("%s %s request: status %d, decode err %v", tg.name, expectKind, resp.StatusCode, err))
						return
					}
					if len(pr.Classes) != len(expect) {
						fail(fmt.Errorf("%s: %d classes, want %d", tg.name, len(pr.Classes), len(expect)))
						return
					}
					for j := range expect {
						if pr.Classes[j] != expect[j] {
							fail(fmt.Errorf("%s row %d: HTTP answer %d != in-process %d", tg.name, lo+j, pr.Classes[j], expect[j]))
							return
						}
					}
				}
			}(tg, g)
		}
	}

	// One hot reload while the request storm runs: Swap under traffic.
	reloadDone := make(chan error, 1)
	go func() {
		time.Sleep(10 * time.Millisecond)
		resp, err := http.Post(base+"/v1/reload", "", nil)
		if err != nil {
			reloadDone <- err
			return
		}
		raw, _ := json.Marshal(resp.StatusCode)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			reloadDone <- fmt.Errorf("reload status %s", raw)
			return
		}
		reloadDone <- nil
	}()
	wg.Wait()
	if err := <-reloadDone; err != nil {
		return fmt.Errorf("hot reload under traffic: %w", err)
	}
	if n := failures.Load(); n > 0 {
		return fmt.Errorf("%d request failures; first: %v", n, <-firstErr)
	}

	// The status surface answered through the same storm.
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, tg := range targets {
		if !bytes.Contains(buf.Bytes(), []byte(fmt.Sprintf("%q", tg.name))) {
			return fmt.Errorf("GET /v1/models does not list %q: %s", tg.name, buf.String())
		}
	}
	log.Printf("selfcheck: %d models × %d requests verified against in-process Predict (1 hot reload mid-traffic)",
		len(targets), reqs)
	return nil
}
