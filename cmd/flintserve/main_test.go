package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flint/internal/serve"
	"flint/internal/treeexec"
)

var quick = buildDefaults{rows: 400, trees: 5, depth: 7, seed: 9}

// TestManifestDefaults pins spec defaulting: name/dataset mirror each
// other, zero shapes inherit the command-line defaults.
func TestManifestDefaults(t *testing.T) {
	s := ModelSpec{Name: "magic"}.withDefaults(quick)
	if s.Dataset != "magic" || s.Rows != 400 || s.Trees != 5 || s.Depth != 7 || s.Seed != 9 || s.Variant != "auto" {
		t.Fatalf("defaulted spec = %+v", s)
	}
	s = ModelSpec{Dataset: "wine", Trees: 3}.withDefaults(quick)
	if s.Name != "wine" || s.Trees != 3 {
		t.Fatalf("dataset-only spec = %+v", s)
	}
}

// TestLoadManifest pins the strict-JSON manifest contract.
func TestLoadManifest(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"models":[{"name":"a","dataset":"magic"},{"name":"b","dataset":"wine","drift":true}]}`), 0o644)
	m, err := loadManifest(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Models) != 2 || m.Models[1].Drift != true {
		t.Fatalf("manifest = %+v", m)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"models":[{"name":"a","unknown_field":1}]}`), 0o644)
	if _, err := loadManifest(bad); err == nil {
		t.Fatal("unknown manifest field accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"models":[]}`), 0o644)
	if _, err := loadManifest(empty); err == nil {
		t.Fatal("empty manifest accepted")
	}
}

// TestDefaultManifest pins the -datasets path.
func TestDefaultManifest(t *testing.T) {
	m, err := defaultManifest("magic, wine")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Models) != 2 || m.Models[0].Name != "magic" || m.Models[1].Name != "wine" {
		t.Fatalf("default manifest = %+v", m)
	}
	if _, err := defaultManifest("nosuch"); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("unknown dataset error = %v", err)
	}
}

// TestInstallModelsReloadSemantics pins the reload algebra: a second
// install over the same manifest swaps in place, a shrunk manifest
// removes the vanished model, and the whole pass is answer-preserving
// for deterministic specs.
func TestInstallModelsReloadSemantics(t *testing.T) {
	reg := treeexec.NewModelRegistry()
	defer reg.Close()
	mf := &Manifest{Models: []ModelSpec{{Name: "magic"}, {Name: "wine"}}}
	if err := installModels(reg, mf, quick, 2); err != nil {
		t.Fatal(err)
	}
	if got := reg.Names(); len(got) != 2 {
		t.Fatalf("Names after install = %v", got)
	}
	first, _ := reg.Get("magic")

	if err := installModels(reg, mf, quick, 2); err != nil {
		t.Fatal(err)
	}
	second, _ := reg.Get("magic")
	if first == second {
		t.Fatal("reload did not swap in a fresh model")
	}
	if !first.Retired() {
		t.Fatal("reload did not drain the previous model")
	}

	mf.Models = mf.Models[:1] // drop wine
	if err := installModels(reg, mf, quick, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("wine"); ok {
		t.Fatal("model removed from manifest still registered")
	}

	dup := &Manifest{Models: []ModelSpec{{Name: "magic"}, {Name: "magic"}}}
	if err := installModels(reg, dup, quick, 2); err == nil {
		t.Fatal("duplicate manifest names accepted")
	}
}

// TestSelfCheckSmoke runs the CI smoke path in-process on two small
// workloads: concurrent single-row and batch requests over real HTTP,
// verified against in-process Predict, with one hot reload mid-storm.
func TestSelfCheckSmoke(t *testing.T) {
	mf := &Manifest{Models: []ModelSpec{{Name: "magic"}, {Name: "wine", Drift: true}}}
	if err := runSelfCheck(mf, quick, serve.Config{}, 2, 16); err != nil {
		t.Fatal(err)
	}
}

// TestBuildModelVariants pins the variant switch, including the
// rejection path.
func TestBuildModelVariants(t *testing.T) {
	for _, v := range []string{"auto", "compact", "flint", "float32", "precoded"} {
		m, rows, err := buildModel(ModelSpec{Name: "magic", Variant: v}.withDefaults(quick), 1)
		if err != nil {
			t.Fatalf("variant %s: %v", v, err)
		}
		if len(rows) == 0 {
			t.Fatalf("variant %s: no test rows", v)
		}
		m.Close()
	}
	if _, _, err := buildModel(ModelSpec{Name: "magic", Variant: "nosuch"}.withDefaults(quick), 1); err == nil {
		t.Fatal("unknown variant accepted")
	}
}
