// Command flintsim trains a forest, generates ARMv8 assembly for it and
// executes the result on one of the simulated machine profiles, printing
// per-inference cycles and the micro-architectural counter breakdown.
// It is the inspection tool behind the sim backend of flintbench.
//
// Example:
//
//	flintsim -dataset magic -trees 10 -depth 10 -machine armv8-server \
//	         -variant flint -flavor hand
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math"

	"flint/internal/asmsim"
	"flint/internal/cart"
	"flint/internal/codegen"
	"flint/internal/dataset"
	"flint/internal/isa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flintsim: ")

	var (
		dsName  = flag.String("dataset", "magic", "workload (eye|gas|magic|sensorless|wine)")
		rows    = flag.Int("rows", 800, "synthetic dataset rows")
		seed    = flag.Int64("seed", 1, "dataset and training seed")
		trees   = flag.Int("trees", 5, "ensemble size")
		depth   = flag.Int("depth", 8, "maximal tree depth")
		machine = flag.String("machine", "x86-server", "machine profile (see flintbench -machines)")
		variant = flag.String("variant", "flint", "comparison variant: float|flint")
		flavor  = flag.String("flavor", "hand", "constant flavor: hand|cc")
		useCAGS = flag.Bool("cags", false, "apply CAGS branch swapping")
		maxRows = flag.Int("inferences", 200, "test rows to simulate")
	)
	flag.Parse()

	m, ok := asmsim.MachineByName(*machine)
	if !ok {
		log.Fatalf("unknown machine %q", *machine)
	}
	opts := codegen.Options{Language: codegen.LangARMv8, CAGS: *useCAGS}
	switch *variant {
	case "float":
		opts.Variant = codegen.VariantFloat
	case "flint":
		opts.Variant = codegen.VariantFLInt
	default:
		log.Fatalf("unknown variant %q", *variant)
	}
	switch *flavor {
	case "hand":
		opts.Flavor = codegen.FlavorHand
	case "cc":
		opts.Flavor = codegen.FlavorCC
	default:
		log.Fatalf("unknown flavor %q", *flavor)
	}

	d, err := dataset.Generate(*dsName, *rows, *seed)
	if err != nil {
		log.Fatal(err)
	}
	train, test := d.Split(0.75, *seed)
	forest, err := cart.TrainForest(train, cart.Config{
		NumTrees: *trees, MaxDepth: *depth, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	var buf bytes.Buffer
	if err := codegen.Forest(&buf, forest, opts); err != nil {
		log.Fatal(err)
	}
	prog, err := isa.Parse(buf.String())
	if err != nil {
		log.Fatal(err)
	}
	sim, err := asmsim.New(prog, m)
	if err != nil {
		log.Fatal(err)
	}

	n := *maxRows
	if n > test.Len() {
		n = test.Len()
	}
	var total uint64
	correct := 0
	for i := 0; i < n; i++ {
		x := test.Features[i]
		bits := make([]uint32, len(x))
		for j, v := range x {
			bits[j] = math.Float32bits(v)
		}
		cls, cycles, err := sim.RunForest("forest", len(forest.Trees), forest.NumClasses, bits)
		if err != nil {
			log.Fatal(err)
		}
		if cls == test.Labels[i] {
			correct++
		}
		if want := forest.Predict(x); cls != want {
			log.Fatalf("simulated prediction %d differs from reference %d at row %d", cls, want, i)
		}
		total += cycles
	}

	st := sim.Stats()
	fmt.Printf("machine        %s (%s)\n", m.Name, m.Description)
	fmt.Printf("program        %s/%s cags=%v: %d instructions, %d trees\n",
		opts.Variant, opts.Flavor, *useCAGS, len(prog.Instrs), len(forest.Trees))
	fmt.Printf("inferences     %d (accuracy %.3f)\n", n, float64(correct)/float64(n))
	fmt.Printf("cycles/inf     %.1f\n", float64(total)/float64(n))
	fmt.Printf("instructions   %d (%.1f per inference)\n", st.Instructions, float64(st.Instructions)/float64(n))
	fmt.Printf("loads          %d   d-cache misses %d\n", st.Loads, st.DCacheMisses)
	fmt.Printf("i-cache misses %d\n", st.ICacheMisses)
	fmt.Printf("branches       %d taken %d mispredicted %d\n", st.Branches, st.Taken, st.Mispredicts)
	fmt.Printf("fp compares    %d   soft-float ops %d\n", st.FPCompares, st.SoftFloatOps)
}
