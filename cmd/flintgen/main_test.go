package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flint/internal/codegen"
	"flint/internal/generated"
)

func TestParseOptions(t *testing.T) {
	cases := []struct {
		lang, mode, variant, flavor string
		cags                        bool
		ok                          bool
		want                        codegen.Options
	}{
		{"c", "ifelse", "flint", "hand", false, true,
			codegen.Options{Language: codegen.LangC, Variant: codegen.VariantFLInt}},
		{"go", "ifelse", "float", "hand", true, true,
			codegen.Options{Language: codegen.LangGo, Variant: codegen.VariantFloat, CAGS: true}},
		{"armv8", "ifelse", "flint", "cc", false, true,
			codegen.Options{Language: codegen.LangARMv8, Variant: codegen.VariantFLInt, Flavor: codegen.FlavorCC}},
		{"arm", "ifelse", "flint", "hand", false, true,
			codegen.Options{Language: codegen.LangARMv8, Variant: codegen.VariantFLInt}},
		{"x86", "ifelse", "float", "cc", false, true,
			codegen.Options{Language: codegen.LangX86, Variant: codegen.VariantFloat, Flavor: codegen.FlavorCC}},
		{"c", "table", "flint", "hand", false, true,
			codegen.Options{Language: codegen.LangC, Mode: codegen.ModeTable, Variant: codegen.VariantFLInt}},
		{"go", "table", "flint", "hand", false, true,
			codegen.Options{Language: codegen.LangGo, Mode: codegen.ModeTable, Variant: codegen.VariantFLInt}},
		{"cobol", "ifelse", "flint", "hand", false, false, codegen.Options{}},
		{"c", "branchless", "flint", "hand", false, false, codegen.Options{}},
		{"c", "ifelse", "double", "hand", false, false, codegen.Options{}},
		{"c", "ifelse", "flint", "inline", false, false, codegen.Options{}},
	}
	for _, c := range cases {
		got, err := parseOptions(c.lang, c.mode, c.variant, c.flavor, c.cags, "p")
		if c.ok && err != nil {
			t.Errorf("parseOptions(%s,%s,%s,%s): %v", c.lang, c.mode, c.variant, c.flavor, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("parseOptions(%s,%s,%s,%s): expected error", c.lang, c.mode, c.variant, c.flavor)
			}
			continue
		}
		c.want.Prefix = "p"
		if got != c.want {
			t.Errorf("parseOptions(%s,%s,%s,%s) = %+v, want %+v", c.lang, c.mode, c.variant, c.flavor, got, c.want)
		}
	}
}

func TestObtainForestTrains(t *testing.T) {
	f, err := obtainForest("", "wine", 200, 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Trees) != 2 || f.MaxDepth() > 4 {
		t.Errorf("trained forest shape wrong: %d trees, depth %d", len(f.Trees), f.MaxDepth())
	}
}

func TestObtainForestLoadsJSON(t *testing.T) {
	f, err := obtainForest("", "wine", 150, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "forest.json")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteJSON(out); err != nil {
		t.Fatal(err)
	}
	out.Close()
	back, err := obtainForest(path, "", 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != f.NumNodes() {
		t.Error("JSON round trip changed the forest")
	}
	if _, err := obtainForest(filepath.Join(dir, "missing.json"), "", 0, 0, 0, 0); err == nil {
		t.Error("missing model file accepted")
	}
}

// TestPregenIsInSync regenerates the manifest into a temp directory and
// compares against the checked-in files, catching stale generation.
func TestPregenIsInSync(t *testing.T) {
	dir := t.TempDir()
	if err := runPregen(dir); err != nil {
		t.Fatal(err)
	}
	for _, spec := range generated.PregenSpecs {
		for _, variant := range []string{"float", "flint"} {
			name := "gen_" + spec.Name + "_" + variant + ".go"
			fresh, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			checked, err := os.ReadFile(filepath.Join("..", "..", "internal", "generated", name))
			if err != nil {
				t.Fatalf("%s: checked-in file missing (run flintgen -pregen): %v", name, err)
			}
			if !strings.Contains(string(checked), "DO NOT EDIT") {
				t.Errorf("%s: missing generated-code marker", name)
			}
			if string(fresh) != string(checked) {
				t.Errorf("%s is stale; run `go run ./cmd/flintgen -pregen`", name)
			}
		}
	}
}
