// Command flintgen turns trained random forests into source code: the
// arch-forest role in the FLInt paper's toolchain. It can train a forest
// on one of the synthetic evaluation workloads (or load one from JSON)
// and emit C (Listings 1-4), Go, ARMv8 assembly (Listing 5) or x86-64
// assembly, in the float or FLInt comparison variant, optionally with
// CAGS branch swapping.
//
// Examples:
//
//	flintgen -dataset magic -trees 5 -depth 8 -lang c -variant flint
//	flintgen -dataset magic -lang c -mode table   # integer-only table form
//	flintgen -model forest.json -lang armv8 -variant flint -flavor hand
//	flintgen -pregen        # regenerate internal/generated
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"flint/internal/cags"
	"flint/internal/cart"
	"flint/internal/codegen"
	"flint/internal/dataset"
	"flint/internal/generated"
	"flint/internal/rf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flintgen: ")

	var (
		dsName  = flag.String("dataset", "magic", "workload to train on (eye|gas|magic|sensorless|wine)")
		rows    = flag.Int("rows", 1000, "synthetic dataset rows (0 = UCI-equivalent full size)")
		seed    = flag.Int64("seed", 1, "dataset and training seed")
		trees   = flag.Int("trees", 5, "ensemble size")
		depth   = flag.Int("depth", 8, "maximal tree depth (0 = unlimited)")
		model   = flag.String("model", "", "load forest from JSON instead of training")
		lang    = flag.String("lang", "c", "output language: c|go|armv8|x86")
		mode    = flag.String("mode", "ifelse", "realization shape: ifelse|table (table: the integer-only compact fused arena as static data + walk loop; c/go only)")
		variant = flag.String("variant", "flint", "comparison variant: float|flint (ignored by -mode table)")
		flavor  = flag.String("flavor", "hand", "assembly constant flavor: hand|cc")
		useCAGS = flag.Bool("cags", false, "apply CAGS branch swapping")
		double  = flag.Bool("double", false, "emit double precision trees (c/go)")
		native  = flag.Bool("native", false, "emit native trees (node arrays + loop; c only)")
		prefix  = flag.String("prefix", "forest", "emitted function name prefix")
		out     = flag.String("o", "", "output file (default stdout)")
		pregen  = flag.Bool("pregen", false, "regenerate internal/generated from its manifest")
		dir     = flag.String("pregen-dir", "internal/generated", "output directory for -pregen")
	)
	flag.Parse()

	if *pregen {
		if err := runPregen(*dir); err != nil {
			log.Fatal(err)
		}
		return
	}

	forest, err := obtainForest(*model, *dsName, *rows, *seed, *trees, *depth)
	if err != nil {
		log.Fatal(err)
	}
	opts, err := parseOptions(*lang, *mode, *variant, *flavor, *useCAGS, *prefix)
	if err != nil {
		log.Fatal(err)
	}
	opts.Double = *double
	opts.Native = *native
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := codegen.Forest(w, forest, opts); err != nil {
		log.Fatal(err)
	}
}

// obtainForest loads a JSON model or trains one.
func obtainForest(model, dsName string, rows int, seed int64, trees, depth int) (*rf.Forest, error) {
	if model != "" {
		f, err := os.Open(model)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rf.ReadJSON(f)
	}
	d, err := dataset.Generate(dsName, rows, seed)
	if err != nil {
		return nil, err
	}
	return cart.TrainForest(d, cart.Config{NumTrees: trees, MaxDepth: depth, Seed: seed})
}

func parseOptions(lang, mode, variant, flavor string, useCAGS bool, prefix string) (codegen.Options, error) {
	opts := codegen.Options{CAGS: useCAGS, Prefix: prefix}
	switch lang {
	case "c":
		opts.Language = codegen.LangC
	case "go":
		opts.Language = codegen.LangGo
	case "armv8", "arm":
		opts.Language = codegen.LangARMv8
	case "x86", "x86-64":
		opts.Language = codegen.LangX86
	default:
		return opts, fmt.Errorf("unknown language %q", lang)
	}
	switch mode {
	case "ifelse", "":
		opts.Mode = codegen.ModeIfElse
	case "table":
		opts.Mode = codegen.ModeTable
	default:
		return opts, fmt.Errorf("unknown mode %q (ifelse|table)", mode)
	}
	switch variant {
	case "float":
		opts.Variant = codegen.VariantFloat
	case "flint":
		opts.Variant = codegen.VariantFLInt
	default:
		return opts, fmt.Errorf("unknown variant %q", variant)
	}
	switch flavor {
	case "hand":
		opts.Flavor = codegen.FlavorHand
	case "cc":
		opts.Flavor = codegen.FlavorCC
	default:
		return opts, fmt.Errorf("unknown flavor %q", flavor)
	}
	return opts, nil
}

// runPregen regenerates every manifest entry of internal/generated as Go
// sources (one file per variant), in the shape the package's registry
// expects.
func runPregen(dir string) error {
	for _, spec := range generated.PregenSpecs {
		d, err := dataset.Generate(spec.Dataset, spec.Rows, spec.Seed)
		if err != nil {
			return err
		}
		forest, err := cart.TrainForest(d, cart.Config{
			NumTrees: spec.Trees, MaxDepth: spec.Depth, Seed: spec.Seed,
		})
		if err != nil {
			return err
		}
		if _, err := cags.ReorderForest(forest); err != nil {
			return err // sanity: the forest must be CAGS-compatible
		}
		for _, variant := range []codegen.Variant{codegen.VariantFloat, codegen.VariantFLInt} {
			var buf bytes.Buffer
			err := codegen.Forest(&buf, forest, codegen.Options{
				Language:   codegen.LangGo,
				Variant:    variant,
				CAGS:       spec.CAGS,
				Prefix:     spec.Name + "_" + variant.String(),
				GoPackage:  "generated",
				GoRegister: spec.Name,
			})
			if err != nil {
				return err
			}
			path := filepath.Join(dir, fmt.Sprintf("gen_%s_%s.go", spec.Name, variant))
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, buf.Len())
		}
	}
	return nil
}
