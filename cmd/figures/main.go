// Command figures emits the data series behind the paper's standalone
// figures.
//
// Figure 2 plots the signed integer interpretation SI(B) against the
// floating point interpretation FP(B) for 32-bit vectors B: increasing on
// the non-negative half, decreasing on the negative half. The command
// samples the curve densely and writes CSV suitable for any plotting
// tool.
//
// Example:
//
//	figures -fig 2 -points 4096 > figure2.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"math/big"

	"flint/internal/ieee754"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	var (
		fig    = flag.Int("fig", 2, "figure number (only 2 is standalone)")
		points = flag.Int("points", 4096, "samples per half of the bit space")
	)
	flag.Parse()

	if *fig != 2 {
		log.Fatalf("figure %d is produced by flintbench; only -fig 2 is standalone", *fig)
	}
	if err := writeFigure2(*points); err != nil {
		log.Fatal(err)
	}
}

func writeFigure2(points int) error {
	f := ieee754.Binary32
	fmt.Println("bits,si,fp")
	emit := func(b uint64) {
		if f.IsNaN(b) {
			return
		}
		fmt.Printf("0x%08x,%d,%s\n", b, f.SI(b), formatBig(f.FP(b)))
	}
	// Non-negative half: 0 .. +Inf (0x7F800000).
	step := uint64(0x7F80_0000) / uint64(points)
	if step == 0 {
		step = 1
	}
	for b := uint64(0); b <= 0x7F80_0000; b += step {
		emit(b)
	}
	// Negative half: -0 (0x80000000) .. -Inf (0xFF800000).
	for b := uint64(0x8000_0000); b <= 0xFF80_0000; b += step {
		emit(b)
	}
	return nil
}

func formatBig(v *big.Float) string {
	if v.IsInf() {
		if v.Signbit() {
			return "-inf"
		}
		return "+inf"
	}
	return v.Text('g', 9)
}
