// Command flintdata synthesizes the evaluation workloads (the stand-ins
// for the paper's five UCI datasets) and writes them as CSV.
//
// Examples:
//
//	flintdata -dataset magic -rows 2000 > magic.csv
//	flintdata -all -rows 0 -dir data/   # full-size, all five workloads
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"flint/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flintdata: ")

	var (
		name = flag.String("dataset", "magic", "workload (eye|gas|magic|sensorless|wine)")
		rows = flag.Int("rows", 1000, "rows to synthesize (0 = UCI-equivalent full size)")
		seed = flag.Int64("seed", 1, "generator seed")
		all  = flag.Bool("all", false, "generate all five workloads")
		dir  = flag.String("dir", "", "output directory for -all (default current)")
	)
	flag.Parse()

	if *all {
		for _, n := range dataset.Names() {
			d, err := dataset.Generate(n, *rows, *seed)
			if err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*dir, n+".csv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := dataset.WriteCSV(f, d); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d rows, %d features, %d classes)\n",
				path, d.Len(), d.NumFeatures(), d.NumClasses)
		}
		return
	}

	d, err := dataset.Generate(*name, *rows, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.WriteCSV(os.Stdout, d); err != nil {
		log.Fatal(err)
	}
}
