// Benchmarks regenerating the FLInt paper's evaluation artifacts, one
// family per table/figure (see DESIGN.md's experiment index), plus the
// ablation benches A1-A4. The full normalized tables are produced by
// cmd/flintbench; these testing.B benches expose the same measurements
// as per-configuration numbers under `go test -bench`.
//
// Conventions: host wall-clock benches report ns/op per single forest
// inference; simulator benches additionally report the modeled
// cycles/inf metric, which is the number the paper's figures are about.
package flint_test

import (
	"bytes"
	"fmt"
	"math"
	mrand "math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"flint"
	"flint/internal/asmsim"
	"flint/internal/bench"
	"flint/internal/cags"
	"flint/internal/cart"
	"flint/internal/codegen"
	"flint/internal/core"
	"flint/internal/dataset"
	"flint/internal/generated"
	"flint/internal/isa"
	"flint/internal/rf"
	"flint/internal/treeexec"
)

// benchDataset/forest caches keep training out of the measured loops.
type forestKey struct {
	ds           string
	trees, depth int
}

var (
	benchMu      sync.Mutex
	benchData    = map[string]*dataset.Dataset{}
	benchForests = map[forestKey]*rf.Forest{}
)

func getData(b *testing.B, name string) *dataset.Dataset {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if d, ok := benchData[name]; ok {
		return d
	}
	d, err := dataset.Generate(name, 1500, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchData[name] = d
	return d
}

func getForest(b *testing.B, ds string, trees, depth int) (*rf.Forest, *dataset.Dataset) {
	b.Helper()
	d := getData(b, ds)
	benchMu.Lock()
	defer benchMu.Unlock()
	k := forestKey{ds, trees, depth}
	if f, ok := benchForests[k]; ok {
		return f, d
	}
	f, err := cart.TrainForest(d, cart.Config{NumTrees: trees, MaxDepth: depth, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	benchForests[k] = f
	return f, d
}

func encodeAll(d *dataset.Dataset) [][]int32 {
	out := make([][]int32, d.Len())
	for i, x := range d.Features {
		out[i] = core.EncodeFeatures32(nil, x)
	}
	return out
}

// ---- E3/E4: Figure 3 and Table II (host, interpreted engines) ----

// BenchmarkFig3 sweeps the paper's depth axis for the four
// implementations of Figure 3 on the magic workload with a 10-tree
// ensemble. ns/op is one forest inference.
func BenchmarkFig3(b *testing.B) {
	depths := []int{1, 5, 10, 15, 20, 30, 50}
	for _, depth := range depths {
		forest, d := getForest(b, "magic", 10, depth)
		grouped, err := cags.ReorderForest(forest)
		if err != nil {
			b.Fatal(err)
		}
		encoded := encodeAll(d)

		naive, err := treeexec.NewFloat32(forest)
		if err != nil {
			b.Fatal(err)
		}
		cagsEng, err := treeexec.NewFloat32(grouped)
		if err != nil {
			b.Fatal(err)
		}
		fl, err := treeexec.NewFLInt(forest)
		if err != nil {
			b.Fatal(err)
		}
		cagsFl, err := treeexec.NewFLInt(grouped)
		if err != nil {
			b.Fatal(err)
		}

		b.Run(fmt.Sprintf("naive/d%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			var sink int32
			for i := 0; i < b.N; i++ {
				sink += naive.Predict(d.Features[i%d.Len()])
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("cags/d%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			var sink int32
			for i := 0; i < b.N; i++ {
				sink += cagsEng.Predict(d.Features[i%d.Len()])
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("flint/d%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			var sink int32
			for i := 0; i < b.N; i++ {
				sink += fl.PredictEncoded(encoded[i%len(encoded)])
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("cags-flint/d%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			var sink int32
			for i := 0; i < b.N; i++ {
				sink += cagsFl.PredictEncoded(encoded[i%len(encoded)])
			}
			_ = sink
		})
	}
}

// BenchmarkTable2 measures the deep-tree configuration (D>=20) the
// paper's Table II isolates, on every workload.
func BenchmarkTable2(b *testing.B) {
	for _, ds := range dataset.Names() {
		forest, d := getForest(b, ds, 10, 20)
		grouped, err := cags.ReorderForest(forest)
		if err != nil {
			b.Fatal(err)
		}
		encoded := encodeAll(d)
		naive, err := treeexec.NewFloat32(forest)
		if err != nil {
			b.Fatal(err)
		}
		cagsFl, err := treeexec.NewFLInt(grouped)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(ds+"/naive", func(b *testing.B) {
			b.ReportAllocs()
			var sink int32
			for i := 0; i < b.N; i++ {
				sink += naive.Predict(d.Features[i%d.Len()])
			}
			_ = sink
		})
		b.Run(ds+"/cags-flint", func(b *testing.B) {
			b.ReportAllocs()
			var sink int32
			for i := 0; i < b.N; i++ {
				sink += cagsFl.PredictEncoded(encoded[i%len(encoded)])
			}
			_ = sink
		})
	}
}

// ---- E3 simulated: Figure 3 on the Table I machine stand-ins ----

// simUnderTest builds a simulator for one (variant, flavor, cags)
// configuration.
func simUnderTest(b *testing.B, f *rf.Forest, m asmsim.Machine, v codegen.Variant, fl codegen.Flavor, swap bool) *asmsim.Simulator {
	b.Helper()
	var buf bytes.Buffer
	if err := codegen.Forest(&buf, f, codegen.Options{
		Language: codegen.LangARMv8, Variant: v, Flavor: fl, CAGS: swap,
	}); err != nil {
		b.Fatal(err)
	}
	prog, err := isa.Parse(buf.String())
	if err != nil {
		b.Fatal(err)
	}
	sim, err := asmsim.New(prog, m)
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

func runSimBench(b *testing.B, sim *asmsim.Simulator, f *rf.Forest, d *dataset.Dataset, rows [][]uint32) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, c, err := sim.RunForest("forest", len(f.Trees), f.NumClasses, rows[i%len(rows)])
		if err != nil {
			b.Fatal(err)
		}
		cycles += c
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/inf")
}

func bitRows(d *dataset.Dataset, n int) [][]uint32 {
	if n > d.Len() {
		n = d.Len()
	}
	out := make([][]uint32, n)
	for i := 0; i < n; i++ {
		out[i] = make([]uint32, len(d.Features[i]))
		for j, v := range d.Features[i] {
			out[i][j] = math.Float32bits(v)
		}
	}
	return out
}

// BenchmarkFig3Simulated runs the four Figure 3 implementations on every
// Table I machine profile (depth 20, 5 trees). The paper-relevant number
// is the cycles/inf metric.
func BenchmarkFig3Simulated(b *testing.B) {
	forest, d := getForest(b, "magic", 5, 20)
	rows := bitRows(d, 64)
	configs := []struct {
		name string
		v    codegen.Variant
		fl   codegen.Flavor
		swap bool
	}{
		{"naive", codegen.VariantFloat, codegen.FlavorCC, false},
		{"cags", codegen.VariantFloat, codegen.FlavorCC, true},
		{"flint", codegen.VariantFLInt, codegen.FlavorCC, false},
		{"cags-flint", codegen.VariantFLInt, codegen.FlavorCC, true},
	}
	for _, m := range asmsim.TableI() {
		for _, cfg := range configs {
			sim := simUnderTest(b, forest, m, cfg.v, cfg.fl, cfg.swap)
			b.Run(m.Name+"/"+cfg.name, func(b *testing.B) {
				runSimBench(b, sim, forest, d, rows)
			})
		}
	}
}

// ---- E5/E6: Figure 4 and Table III (C realization vs direct assembly) ----

// BenchmarkFig4CvsASM compares the compiled-C-style FLInt realization
// (constants in data memory) against the direct assembly realization
// (movz/movk immediates) on the x86-server profile across the depth axis.
func BenchmarkFig4CvsASM(b *testing.B) {
	m, _ := asmsim.MachineByName("x86-server")
	for _, depth := range []int{5, 10, 20, 30, 50} {
		forest, d := getForest(b, "magic", 5, depth)
		rows := bitRows(d, 64)
		naive := simUnderTest(b, forest, m, codegen.VariantFloat, codegen.FlavorCC, false)
		cImpl := simUnderTest(b, forest, m, codegen.VariantFLInt, codegen.FlavorCC, false)
		asmImpl := simUnderTest(b, forest, m, codegen.VariantFLInt, codegen.FlavorHand, false)
		b.Run(fmt.Sprintf("naive/d%d", depth), func(b *testing.B) { runSimBench(b, naive, forest, d, rows) })
		b.Run(fmt.Sprintf("flint-c/d%d", depth), func(b *testing.B) { runSimBench(b, cImpl, forest, d, rows) })
		b.Run(fmt.Sprintf("flint-asm/d%d", depth), func(b *testing.B) { runSimBench(b, asmImpl, forest, d, rows) })
	}
}

// BenchmarkTable3FLIntASM measures the direct assembly realization on
// all four machine profiles at the deep-tree setting of Table III.
func BenchmarkTable3FLIntASM(b *testing.B) {
	forest, d := getForest(b, "magic", 5, 20)
	rows := bitRows(d, 64)
	for _, m := range asmsim.TableI() {
		naive := simUnderTest(b, forest, m, codegen.VariantFloat, codegen.FlavorCC, false)
		asmImpl := simUnderTest(b, forest, m, codegen.VariantFLInt, codegen.FlavorHand, false)
		b.Run(m.Name+"/naive", func(b *testing.B) { runSimBench(b, naive, forest, d, rows) })
		b.Run(m.Name+"/flint-asm", func(b *testing.B) { runSimBench(b, asmImpl, forest, d, rows) })
	}
}

// ---- E9: no-FPU motivation ----

// BenchmarkNoFPU compares soft-float traversal (the FPU-less baseline)
// against FLInt on the host, and on the embedded machine profile.
func BenchmarkNoFPU(b *testing.B) {
	forest, d := getForest(b, "sensorless", 10, 12)
	encoded := encodeAll(d)
	soft, err := treeexec.NewSoftFloat(forest)
	if err != nil {
		b.Fatal(err)
	}
	fl, err := treeexec.NewFLInt(forest)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("softfloat", func(b *testing.B) {
		b.ReportAllocs()
		var sink int32
		for i := 0; i < b.N; i++ {
			sink += soft.PredictEncoded(encoded[i%len(encoded)])
		}
		_ = sink
	})
	b.Run("flint", func(b *testing.B) {
		b.ReportAllocs()
		var sink int32
		for i := 0; i < b.N; i++ {
			sink += fl.PredictEncoded(encoded[i%len(encoded)])
		}
		_ = sink
	})
	m, _ := asmsim.MachineByName("embedded-nofpu")
	rows := bitRows(d, 32)
	floatSim := simUnderTest(b, forest, m, codegen.VariantFloat, codegen.FlavorCC, false)
	flintSim := simUnderTest(b, forest, m, codegen.VariantFLInt, codegen.FlavorHand, false)
	b.Run("sim-embedded/float", func(b *testing.B) { runSimBench(b, floatSim, forest, d, rows) })
	b.Run("sim-embedded/flint", func(b *testing.B) { runSimBench(b, flintSim, forest, d, rows) })
}

// ---- Compiled trees (pre-generated Go, the arch-forest analog) ----

// BenchmarkGeneratedTrees measures the checked-in compiled if-else
// forests: split constants are immediates in the instruction stream,
// the mechanism the paper exploits.
func BenchmarkGeneratedTrees(b *testing.B) {
	d := getData(b, "magic")
	encoded := encodeAll(d)
	for _, name := range []string{"magic_d5", "magic_d10", "magic_d10_cags", "magic_d15"} {
		e, ok := generated.Lookup(name)
		if !ok {
			b.Fatalf("missing generated forest %s", name)
		}
		b.Run(name+"/float", func(b *testing.B) {
			b.ReportAllocs()
			var sink int32
			for i := 0; i < b.N; i++ {
				sink += e.Float(d.Features[i%d.Len()])
			}
			_ = sink
		})
		b.Run(name+"/flint", func(b *testing.B) {
			b.ReportAllocs()
			var sink int32
			for i := 0; i < b.N; i++ {
				sink += e.FLInt(encoded[i%len(encoded)])
			}
			_ = sink
		})
	}
}

// ---- Ablations (DESIGN.md A1-A4) ----

// BenchmarkAblationCompareForms (A1): the three proved operator forms
// against the hardware comparison, on a fixed pseudo-random operand
// stream.
func BenchmarkAblationCompareForms(b *testing.B) {
	const n = 4096
	xs := make([]int32, n)
	ys := make([]int32, n)
	fx := make([]float32, n)
	fy := make([]float32, n)
	state := uint32(0x9E3779B9)
	next := func() uint32 {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return state
	}
	for i := 0; i < n; i++ {
		a, c := next(), next()
		// Clear the NaN exponent pattern to stay in domain.
		if a&0x7F80_0000 == 0x7F80_0000 {
			a &^= 0x0080_0000
		}
		if c&0x7F80_0000 == 0x7F80_0000 {
			c &^= 0x0080_0000
		}
		xs[i], ys[i] = int32(a), int32(c)
		fx[i], fy[i] = math.Float32frombits(a), math.Float32frombits(c)
	}
	b.Run("hardware", func(b *testing.B) {
		var t int
		for i := 0; i < b.N; i++ {
			if fx[i%n] >= fy[i%n] {
				t++
			}
		}
		_ = t
	})
	b.Run("xor-theorem1", func(b *testing.B) {
		var t int
		for i := 0; i < b.N; i++ {
			if core.GEBits32(xs[i%n], ys[i%n]) {
				t++
			}
		}
		_ = t
	})
	b.Run("swap-theorem2", func(b *testing.B) {
		var t int
		for i := 0; i < b.N; i++ {
			if core.GEBits32Swap(xs[i%n], ys[i%n]) {
				t++
			}
		}
		_ = t
	})
	b.Run("total-order", func(b *testing.B) {
		var t int
		for i := 0; i < b.N; i++ {
			if core.GEBits32TotalOrder(xs[i%n], ys[i%n]) {
				t++
			}
		}
		_ = t
	})
}

// BenchmarkAblationEngineForms (A2): per-node sign branch vs general XOR
// operator vs per-load total-order transform vs per-vector precoding.
func BenchmarkAblationEngineForms(b *testing.B) {
	forest, d := getForest(b, "magic", 10, 15)
	encoded := encodeAll(d)
	keys := make([][]uint32, d.Len())
	for i, x := range d.Features {
		keys[i] = core.PrecodeFeatures32(nil, x)
	}
	fl, err := treeexec.NewFLInt(forest)
	if err != nil {
		b.Fatal(err)
	}
	xor, err := treeexec.NewFLIntXor(forest)
	if err != nil {
		b.Fatal(err)
	}
	to, err := treeexec.NewTotalOrder(forest)
	if err != nil {
		b.Fatal(err)
	}
	pre, err := treeexec.NewPrecoded(forest)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("flint", func(b *testing.B) {
		b.ReportAllocs()
		var sink int32
		for i := 0; i < b.N; i++ {
			sink += fl.PredictEncoded(encoded[i%len(encoded)])
		}
		_ = sink
	})
	b.Run("flint-xor", func(b *testing.B) {
		b.ReportAllocs()
		var sink int32
		for i := 0; i < b.N; i++ {
			sink += xor.PredictEncoded(encoded[i%len(encoded)])
		}
		_ = sink
	})
	b.Run("total-order", func(b *testing.B) {
		b.ReportAllocs()
		var sink int32
		for i := 0; i < b.N; i++ {
			sink += to.PredictEncoded(encoded[i%len(encoded)])
		}
		_ = sink
	})
	b.Run("precoded", func(b *testing.B) {
		b.ReportAllocs()
		var sink int32
		for i := 0; i < b.N; i++ {
			sink += pre.PredictPrecoded(keys[i%len(keys)])
		}
		_ = sink
	})
}

// BenchmarkAblationCAGS (A3): original layout vs grouped layout for both
// comparison kernels (interpreted: the grouping half), plus the
// generated-code swap half via the pre-generated magic entries.
func BenchmarkAblationCAGS(b *testing.B) {
	forest, d := getForest(b, "gas", 10, 15)
	grouped, err := cags.ReorderForest(forest)
	if err != nil {
		b.Fatal(err)
	}
	encoded := encodeAll(d)
	plainF, err := treeexec.NewFLInt(forest)
	if err != nil {
		b.Fatal(err)
	}
	groupF, err := treeexec.NewFLInt(grouped)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("flint/original-layout", func(b *testing.B) {
		b.ReportAllocs()
		var sink int32
		for i := 0; i < b.N; i++ {
			sink += plainF.PredictEncoded(encoded[i%len(encoded)])
		}
		_ = sink
	})
	b.Run("flint/grouped-layout", func(b *testing.B) {
		b.ReportAllocs()
		var sink int32
		for i := 0; i < b.N; i++ {
			sink += groupF.PredictEncoded(encoded[i%len(encoded)])
		}
		_ = sink
	})
}

// BenchmarkAblationWidth (A4): float32 vs float64 FLInt traversal.
func BenchmarkAblationWidth(b *testing.B) {
	forest, d := getForest(b, "wine", 10, 12)
	encoded := encodeAll(d)
	wide := make([][]int64, d.Len())
	for i, x := range d.Features {
		w := make([]float64, len(x))
		for j, v := range x {
			w[j] = float64(v)
		}
		wide[i] = core.EncodeFeatures64(nil, w)
	}
	fl32, err := treeexec.NewFLInt(forest)
	if err != nil {
		b.Fatal(err)
	}
	fl64, err := treeexec.NewFLInt64(forest)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("flint32", func(b *testing.B) {
		b.ReportAllocs()
		var sink int32
		for i := 0; i < b.N; i++ {
			sink += fl32.PredictEncoded(encoded[i%len(encoded)])
		}
		_ = sink
	})
	b.Run("flint64", func(b *testing.B) {
		b.ReportAllocs()
		var sink int32
		for i := 0; i < b.N; i++ {
			sink += fl64.PredictEncoded(wide[i%len(wide)])
		}
		_ = sink
	})
}

// ---- E1: the interpretation machinery behind Figure 2 ----

// BenchmarkFig2Interpretation measures the exact bit-level
// interpretation used to draw Figure 2 (not a paper table; included for
// completeness of the harness).
func BenchmarkFig2Interpretation(b *testing.B) {
	f := flint.Forest{} // silence unused-import pruning of the facade
	_ = f
	b.Run("SI", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += iee754SI(uint64(uint32(i)))
		}
		_ = sink
	})
}

func iee754SI(b uint64) int64 { return int64(int32(uint32(b))) }

// ---- Batch serving: per-row vs row-blocked arena kernel ----

// BenchmarkBatchThroughput measures whole-batch classification as
// rows/sec on the two highest-volume workloads, contrasting the per-row
// Batch over the per-tree FLInt engine with the row-blocked arena
// kernel (ephemeral workers, and the persistent zero-alloc Batcher) at
// matched worker counts, for both the 16-byte FLInt arena and the
// 8-byte compact SoA arena at every interleave width (x1/x2/x4/x8
// cursor walks). -benchmem makes the steady-state allocation claim
// measurable: the Batcher rows must report 0 allocs/op.
func BenchmarkBatchThroughput(b *testing.B) {
	workerCounts := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 {
		workerCounts = append(workerCounts, n)
	}
	for _, ds := range []string{"magic", "sensorless"} {
		// Serving-scale ensembles: deep trees, arena past the L2 sweet
		// spot, where memory layout decides throughput.
		forest, d := getForest(b, ds, 30, 20)
		rows := d.Features
		perTree, err := treeexec.NewFLInt(forest)
		if err != nil {
			b.Fatal(err)
		}
		flat, err := treeexec.NewFlat(forest, treeexec.FlatFLInt)
		if err != nil {
			b.Fatal(err)
		}
		compact, err := treeexec.NewFlat(forest, treeexec.FlatCompact)
		if err != nil {
			b.Fatal(err)
		}
		if compact.Variant() != treeexec.FlatCompact {
			b.Fatalf("compact fell back to %v", compact.Variant())
		}
		reportRows := func(b *testing.B) {
			b.ReportMetric(float64(len(rows))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		}
		for _, w := range workerCounts {
			w := w
			b.Run(fmt.Sprintf("%s/per-row/w%d", ds, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := treeexec.Batch(perTree, rows, w); err != nil {
						b.Fatal(err)
					}
				}
				reportRows(b)
			})
			for _, arena := range []struct {
				tag    string
				e      *treeexec.FlatForestEngine
				k      treeexec.Kernel
				widths []int
			}{
				{"blocked", flat, treeexec.KernelBranchy, nil},
				{"compact", compact, treeexec.KernelBranchy, nil},
				{"compact-fused", compact, treeexec.KernelFused, nil},
				{"compact-simd", compact, treeexec.KernelSIMD, nil},
				// The dual-group walk exists only at width 16; the hybrid
				// quantizer-only kernel shares the scalar fused widths.
				{"compact-simd16", compact, treeexec.KernelSIMD, []int{16}},
				{"compact-simdquant", compact, treeexec.KernelSIMDQuant, []int{4, 8}},
			} {
				arena := arena
				// Forced interleave widths and kernels expose the
				// 2/4/8-way walks and the kernel gaps individually;
				// serving code normally leaves the calibrated gate in
				// charge. (SetKernel is a no-op on the AoS arena, which
				// has no fused or SIMD form; compact-simd runs the
				// portable fallback on hosts without the vector ISA.)
				widths := arena.widths
				if widths == nil {
					widths = []int{1, 2, 4, 8}
				}
				for _, width := range widths {
					width := width
					b.Run(fmt.Sprintf("%s/%s/x%d/w%d", ds, arena.tag, width, w), func(b *testing.B) {
						arena.e.SetInterleave(width)
						arena.e.SetKernel(arena.k)
						b.ReportAllocs()
						out := make([]int32, len(rows))
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							out = arena.e.PredictBatch(rows, out, w, 0)
						}
						reportRows(b)
					})
				}
			}
			for _, arena := range []struct {
				tag string
				e   *treeexec.FlatForestEngine
			}{{"batcher", flat}, {"batcher-compact", compact}} {
				arena := arena
				b.Run(fmt.Sprintf("%s/%s/w%d", ds, arena.tag, w), func(b *testing.B) {
					arena.e.SetKernel(treeexec.KernelAuto) // clear the A/B pin
					arena.e.CalibrateInterleave(20 * time.Millisecond)
					pool := treeexec.NewBatcher(arena.e, w, 0)
					defer pool.Close()
					out := make([]int32, len(rows))
					pool.Predict(rows, out) // warm up the pool
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						out = pool.Predict(rows, out)
					}
					reportRows(b)
				})
			}
		}
	}

	// Mispredict-hostile workload: a random roughly-balanced forest with
	// depth-20 paths, uniform split thresholds and uniform rows, so
	// every node comparison is close to a coin flip no predictor can
	// learn — the regime the branchy walk pays a pipeline flush per
	// level in and the fused walk converts into data dependencies. The
	// trained workloads above have skewed, learnable branches that mute
	// this gap; this one makes the branchy-vs-fused trade visible
	// in-tree.
	hostile := randomBalancedForest(24, 20, 7)
	hostileRows := uniformRows(512, hostile.NumFeatures, 8)
	hflat, err := treeexec.NewFlat(hostile, treeexec.FlatFLInt)
	if err != nil {
		b.Fatal(err)
	}
	hcompact, err := treeexec.NewFlat(hostile, treeexec.FlatCompact)
	if err != nil {
		b.Fatal(err)
	}
	if hcompact.Variant() != treeexec.FlatCompact {
		b.Fatalf("hostile forest fell back to %v", hcompact.Variant())
	}
	reportHostileRows := func(b *testing.B) {
		b.ReportMetric(float64(len(hostileRows))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	}
	for _, arena := range []struct {
		tag    string
		e      *treeexec.FlatForestEngine
		k      treeexec.Kernel
		widths []int
	}{
		{"blocked", hflat, treeexec.KernelBranchy, nil},
		{"compact", hcompact, treeexec.KernelBranchy, nil},
		{"compact-fused", hcompact, treeexec.KernelFused, nil},
		{"compact-simd", hcompact, treeexec.KernelSIMD, nil},
		{"compact-simd16", hcompact, treeexec.KernelSIMD, []int{16}},
		{"compact-simdquant", hcompact, treeexec.KernelSIMDQuant, []int{4, 8}},
	} {
		arena := arena
		widths := arena.widths
		if widths == nil {
			widths = []int{1, 2, 4, 8}
		}
		for _, width := range widths {
			width := width
			b.Run(fmt.Sprintf("hostile/%s/x%d/w1", arena.tag, width), func(b *testing.B) {
				arena.e.SetInterleave(width)
				arena.e.SetKernel(arena.k)
				b.ReportAllocs()
				out := make([]int32, len(hostileRows))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out = arena.e.PredictBatch(hostileRows, out, 1, 0)
				}
				reportHostileRows(b)
			})
		}
	}

	// Adversarially-generated workload: the decision-path attack
	// (internal/robust) perturbs trained magic rows until they sit
	// exactly on — or one float past — the thresholds their original
	// walk brushed closest. Unlike the synthetic hostile forest above,
	// this keeps the trained arena and measures the trained workload's
	// own worst case: tie-heavy comparisons with the least learnable
	// branch history the real decision boundary admits.
	advForest, advData := getForest(b, "magic", 30, 20)
	advCompact, err := treeexec.NewFlat(advForest, treeexec.FlatCompact)
	if err != nil {
		b.Fatal(err)
	}
	if advCompact.Variant() != treeexec.FlatCompact {
		b.Fatalf("magic forest fell back to %v", advCompact.Variant())
	}
	advFlat, err := treeexec.NewFlat(advForest, treeexec.FlatFLInt)
	if err != nil {
		b.Fatal(err)
	}
	advRows := flint.AdversarialRows(advCompact, advData.Features[:512], flint.AttackConfig{})
	reportAdvRows := func(b *testing.B) {
		b.ReportMetric(float64(len(advRows))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	}
	for _, arena := range []struct {
		tag    string
		e      *treeexec.FlatForestEngine
		k      treeexec.Kernel
		widths []int
	}{
		{"blocked", advFlat, treeexec.KernelBranchy, nil},
		{"compact", advCompact, treeexec.KernelBranchy, nil},
		{"compact-fused", advCompact, treeexec.KernelFused, nil},
		{"compact-simd", advCompact, treeexec.KernelSIMD, nil},
		{"compact-simd16", advCompact, treeexec.KernelSIMD, []int{16}},
		{"compact-simdquant", advCompact, treeexec.KernelSIMDQuant, []int{4, 8}},
	} {
		arena := arena
		widths := arena.widths
		if widths == nil {
			widths = []int{1, 2, 4, 8}
		}
		for _, width := range widths {
			width := width
			b.Run(fmt.Sprintf("adversarial/magic/%s/x%d/w1", arena.tag, width), func(b *testing.B) {
				arena.e.SetInterleave(width)
				arena.e.SetKernel(arena.k)
				b.ReportAllocs()
				out := make([]int32, len(advRows))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out = arena.e.PredictBatch(advRows, out, 1, 0)
				}
				reportAdvRows(b)
			})
		}
	}
}

// randomBalancedForest grows a forest for the mispredict-hostile bench:
// roughly balanced random trees (a dense top, then leaves with fixed
// probability, paths capped at maxDepth) whose split thresholds are
// uniform in [0, 1) over random features — against uniform rows every
// comparison is ~50/50, the branch pattern pure noise.
func randomBalancedForest(trees, maxDepth int, seed int64) *rf.Forest {
	const numFeatures = 16
	const numClasses = 4
	rng := mrand.New(mrand.NewSource(seed))
	out := make([]rf.Tree, trees)
	for t := range out {
		var nodes []rf.Node
		var grow func(d int) int32
		grow = func(d int) int32 {
			me := int32(len(nodes))
			if d >= maxDepth || (d > 4 && rng.Float64() < 0.35) {
				nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(rng.Intn(numClasses))})
				return me
			}
			nodes = append(nodes, rf.Node{
				Feature: int32(rng.Intn(numFeatures)),
				Split:   rng.Float32(),
			})
			l := grow(d + 1)
			r := grow(d + 1)
			nodes[me].Left, nodes[me].Right = l, r
			return me
		}
		grow(0)
		out[t] = rf.Tree{Nodes: nodes}
	}
	return &rf.Forest{NumFeatures: numFeatures, NumClasses: numClasses, Trees: out}
}

// uniformRows synthesizes n feature vectors uniform in [0, 1) — the
// distribution randomBalancedForest's thresholds are drawn from.
func uniformRows(n, numFeatures int, seed int64) [][]float32 {
	rng := mrand.New(mrand.NewSource(seed))
	rows := make([][]float32, n)
	for i := range rows {
		r := make([]float32, numFeatures)
		for j := range r {
			r[j] = rng.Float32()
		}
		rows[i] = r
	}
	return rows
}

// TestBenchInfraSanity keeps the sweep entry points compiling and honest:
// a tiny sweep through the public harness must succeed.
func TestBenchInfraSanity(t *testing.T) {
	cfg := bench.SweepConfig{
		Datasets:   []string{"wine"},
		TreeCounts: []int{2},
		Depths:     []int{3},
		Rows:       200,
		Seed:       1,
	}
	m, _ := asmsim.MachineByName("x86-desktop")
	res, err := bench.RunSweep(cfg, []bench.Backend{
		&bench.InterpBackend{},
		&bench.SimBackend{Machine: m, MaxRows: 16},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 {
		t.Fatal("empty sweep")
	}
}
