// Package flint is a Go implementation of FLInt — full-precision IEEE 754
// floating point comparison using only two's-complement integer and logic
// operations — together with the complete random forest inference stack
// the FLInt paper (Hakert, Chen, Chen; DATE 2024) builds and evaluates it
// in: a CART trainer, interpreted and code-generated if-else tree
// execution engines, the cache-aware grouping-and-swapping optimization
// of Chen et al., C/Go/ARMv8/x86-64 code generators, a soft-float
// baseline and an ARMv8-subset cost-model simulator.
//
// This package is the public facade: it re-exports the library's
// user-facing types and functions from the internal packages. A typical
// workflow:
//
//	data, _ := flint.GenerateDataset("magic", 2000, 1)
//	train, test := data.Split(0.75, 1)
//	forest, _ := flint.Train(train, flint.TrainConfig{NumTrees: 20, MaxDepth: 10})
//	engine, _ := flint.NewFLIntEngine(forest)
//	class := engine.Predict(test.Features[0])
//
// The comparison operator itself is available directly:
//
//	flint.GE32(a, b)                 // a >= b via integer operations
//	sp := flint.MustEncodeSplit32(s) // offline split encoding
//	sp.LE(flint.FeatureBits32(x))    // x <= s, one integer comparison
//
// # Choosing an execution engine: the three arena layouts
//
// Three memory layouts execute a trained forest, each the right tool at
// a different scale:
//
//   - Per-tree engines (NewFLIntEngine, NewFloatEngine, ...): one node
//     slice per tree, 16-byte nodes with explicit leaves. The layout the
//     paper's figures measure. Best for single-row latency on small
//     ensembles and for the ablation variants (XOR, total-order,
//     precoded, soft-float, float64).
//
//   - Flat AoS arena (NewFlatEngine, FlatFLInt/FlatFloat32/
//     FlatPrecoded): every inner node of every tree in one contiguous
//     array of 16-byte nodes, leaves folded into negative child indices
//     (^class), per-tree root offsets. Halves the traversed footprint
//     versus per-tree engines and feeds the row-blocked batch kernel,
//     which walks groups of 2/4/8 rows with interleaved register-
//     resident cursors once the arena outgrows the cache (runtime-
//     calibrated gates; see Calibrate). Best general-purpose serving
//     engine.
//
//   - Compact SoA arena (FlatCompact): 8 bytes per node split across
//     parallel uint16 key / uint16 feature / packed int32 child slices.
//     Split values are reduced — exactly, via per-feature total-order
//     ranking — to 16-bit keys, and each interleaved group of rows is
//     quantized by binary search before the walk. The cut tables are
//     feature-pruned: only the columns the forest actually splits on
//     are searched (and only the split-on count is bounded by the
//     encoding, so wide sparse-split inputs compact fine). Predictions
//     are bit-identical to FlatFLInt. Halves the arena footprint again,
//     so roughly twice the forest fits in the same cache; it wins on
//     big ensembles at batch scale. Forests exceeding the narrow
//     encoding (per-feature distinct splits, per-tree size, classes,
//     split-on features — probe with Compactable) gracefully fall back
//     to the FLInt arena.
//
// Batch work should go through PredictBatch (ephemeral workers) or a
// persistent Batcher (zero-alloc steady state; concurrent Predict calls
// interleave block-by-block over the shared pool).
//
// # Calibrating the interleaved batch kernel
//
// On arenas past the cache comfort zone the batch kernel walks 2, 4 or
// 8 rows with register-resident cursors so the core overlaps their node
// fetches. Where those crossovers sit depends on the host (cache sizes,
// load-queue depth) and on the arena layout — the compact arena's
// quantization overhead and denser packing shift them — so the gate
// table (InterleaveGates) keeps one threshold set per interleaving
// layout and engines pick their width from it at construction:
//
//   - Calibrate(budget) measures a synthetic arena ladder for both the
//     FLInt and compact layouts once per process and installs per-
//     variant gates for engines built afterwards.
//   - engine.CalibrateInterleave(budget) times the engine's own arena,
//     on rows synthesized from its own split tables — every calibration
//     input spans the trained comparison range, so the measured walks
//     branch both ways like production traffic.
//   - engine.CalibrateInterleaveRows(rows, budget) is the most accurate
//     tool: pass sampled production rows and the engine times exactly
//     the branch and fetch patterns it will serve. Prefer this when
//     request traffic is at hand (the synthetic rows approximate range,
//     not distribution).
//
// # Kernel selection: the four-kernel family on the compact arena
//
// The compact arena has four walk kernels producing bit-identical
// predictions, ordered by how much of the walk they vectorize. The
// branchy kernel executes one data-dependent branch per cursor per tree
// level (plus three slice loads per node); on deep trained forests
// those branches are near 50/50 and the mispredict flushes dominate.
// The fused kernel loads each node as a single pre-packed 64-bit word
// (key | feature | children) and computes the child index
// arithmetically — the same control-to-data-dependency conversion FLInt
// performs on the comparison, applied to the child select — so a walk
// mispredicts once per chain (the loop exit) instead of once per level,
// at the price of a longer serial dependency per step. Its quantizer is
// a branchless binary search.
//
// The two SIMD kernels split the fused walk at its memory boundary. The
// walk has two phases with opposite vector economics: quantization
// (binary-search each feature value against its cut table) is lockstep
// halving with no gathers on its critical path and one cut segment
// shared by the whole group — it vectorizes cleanly — while the tree
// walk itself needs one node-word gather per lane per level, and a
// gather's latency is the latency of its slowest lane. KernelSIMDQuant
// takes only the clean half: the 8-lane vector quantizer feeds the
// scalar fused cascade, so it inherits the fused walk's gather-free
// inner loop and wins wherever quantization (cost scaling with
// features) is a large share of the row. KernelSIMD vectorizes both
// phases: 8 cursors' node words and 8 quantized keys per gather, the
// branch-free child select in vector registers. At width 16 it walks
// two independent 8-lane groups software-pipelined — group A's gathers
// issue, then group B's field-extract/compare/select executes while
// A's loads are in flight, and vice versa — so every gather round-trip
// overlaps a full level of independent ALU work, and a calibrated
// lane-compaction threshold returns the walk to the driver when
// occupancy drops, which retires finished lanes' votes and refills them
// from the pending (tree, row) queue instead of walking a nearly-empty
// group to its deepest lane. Which kernel wins is a host and workload
// property, so the kernel is a calibrated dimension exactly like the
// interleave width:
//
//   - At construction, engines pick the kernel from the gate table's
//     CompactFusedMin/CompactSIMDQuantMin/CompactSIMDMin byte
//     thresholds (zero — every older table — keeps the kernel off;
//     Calibrate measures them, and more aggressive kernels' gates
//     outrank less aggressive ones where both apply; CompactSIMD16Min
//     gates the dual-group width within the SIMD kernel).
//   - Every calibration pass (CalibrateInterleave,
//     CalibrateInterleaveRows, Batcher.Recalibrate) times each
//     interleave width under every competing kernel — plus the width-16
//     dual-group walk with lane compaction off and on — and installs
//     the winning (width, kernel, compaction) triple as one atomic
//     unit, so recalibrating under live Batcher traffic can never mix a
//     width measured under one kernel with another.
//   - engine.SetKernel forces and pins a kernel (subsequent calibration
//     then times widths under it alone) — the A/B switch behind
//     flintbench's -kernel flag; engine.Kernel reports the current one.
//   - Persistence round-trips the triple: SaveCalibration records the
//     kernel and compaction threshold next to the width, LoadCalibration
//     restores them (records written before the kernel axis existed
//     load as branchy — the only kernel those deployments ever ran).
//
// ISA gating and the portable fallback: DetectedISA reports the vector
// instruction set the SIMD kernels run natively here ("avx2", or ""
// where there is none — non-amd64 builds, the noasm build tag, or
// amd64 hosts without AVX2). Calibration only competes the SIMD
// kernels where DetectedISA is non-empty; elsewhere it never
// volunteers them, and a persisted "simd" or "simd-quant" calibration
// record loads as branchy (a width-16 record narrows to 8) with
// CalibrationSource reporting "persisted-degraded". Pinning KernelSIMD
// or KernelSIMDQuant by hand still works on every host — they run
// portable lane-parallel Go forms with identical predictions (the
// differential-test contract), they just stop being fast — so A/B
// tooling behaves the same everywhere.
//
// # The adaptive serving lifecycle: reservoir → recalibrate → persist
//
// A serving deployment does not need to gather those production rows by
// hand. Every Batcher keeps a reservoir sample of the traffic it serves
// (Vitter's Algorithm R over a stride-decimated view of the stream;
// storage is pre-allocated, so the zero-alloc steady state survives):
//
//   - batcher.Recalibrate(budget) re-times the engine's interleave
//     width on the sampled rows and installs the winner atomically, so
//     it is safe to call periodically while Predict traffic is in
//     flight — the width follows the distribution actually served.
//   - engine.SaveCalibration(w, batcher.SampleSnapshot()) persists the
//     measured gate table, the engine's width and the sampled rows as
//     JSON. On the next start, engine.LoadCalibration(r) validates the
//     record against the engine's arena fingerprint and restores the
//     width; SetInterleaveGates(rec.Gates) additionally installs the
//     persisted gate table when the record came from this same hardware
//     (left explicit so a foreign or pre-calibration record cannot
//     silently clobber gates the process already measured); and
//     batcher.SeedSample(rec.Rows) re-arms the reservoir with the
//     previous deployment's traffic, so a restart (or a hardware move,
//     after one Recalibrate) never falls back to synthetic
//     approximations. See examples/batchserve for the whole loop.
//
// # Drift-aware serving: detect distribution shift, recalibrate automatically
//
// The reservoir → Recalibrate loop above still needs something to decide
// when to recalibrate. A Batcher can make that call itself: arm it with
// EnableDriftDetection and it compares the live traffic reservoir
// against the calibration baseline on a served-row cadence — per-feature
// histograms over the engine's own quantized split ranks, scored with a
// population-stability-index distance — and when the distance crosses
// the configured threshold it runs the Recalibrate path on its own,
// installing the re-timed (width, kernel) mode through the same atomic
// gate every manual recalibration uses:
//
//	b := flint.NewBatcher(engine, 0)
//	defer b.Close()
//	b.EnableDriftDetection(flint.DriftConfig{}, calibrationRows)
//	...            // serve; a shifted distribution triggers recalibration
//	b.DriftStats() // distance trajectory, trigger/suppression counters
//
// The Predict hot path pays one atomic load and counter bump per batch —
// the zero-alloc steady state is untouched — while histogram scoring and
// the triggered recalibration run on a dedicated watcher goroutine.
// After any trigger the baseline rebases to the traffic just timed
// (manual Recalibrate rebases it too), so the detector tracks the newest
// accepted distribution instead of re-firing on the same shift, and a
// cooldown suppresses trigger storms while a shift is still settling
// (suppressed checks are counted, not lost). Batcher.SaveCalibration
// persists the armed DriftConfig inside the calibration record, so the
// next deployment restores detection together with the width, kernel and
// seeded reservoir. See examples/sensordrift for the loop closing on the
// gas workload's drifting batches.
//
// # Model registry and network serving
//
// One engine wired to one Batcher is the in-process special case of the
// registry-backed serving stack. A ServedModel owns the whole per-model
// serving state — engine, Batcher, traffic reservoir, drift detector,
// calibration record — with a documented lifecycle (build →
// calibrate-or-load → serve → recalibrate → save → drain/close) and an
// error-returning Predict (a malformed row or a retired model comes
// back as an error a front-end can map to a status code, never a
// panic). A ModelRegistry serves many ServedModels side by side, keyed
// by name, and hot-swaps them: Registry.Swap(name, newModel) flips an
// atomic pointer and drains the old model — in-flight predictions
// complete, the worker pool and drift watcher stop — while
// Registry.Predict retries the flip invisibly, so a model upgrade
// drops zero requests. Calibration persistence routes through the
// registry too (Registry.SaveCalibration stamps the model name;
// Registry.LoadCalibration rejects a record that belongs to a
// different registered model, even when two arenas share a
// fingerprint).
//
//	reg := flint.NewModelRegistry()
//	reg.Register(flint.NewServedModel("magic", engine, 0))
//	out, err := reg.Predict("magic", rows, nil)
//	...
//	reg.Swap("magic", rebuiltModel) // zero dropped requests
//
// The network boundary is the serve layer (NewServer): an HTTP/JSON
// front-end (POST /v1/models/{name}:predict) that coalesces single-row
// and batch requests from many connections into Batcher-sized blocks
// under a latency budget (cross-request batching), applies per-model
// admission control (bounded queue, 429 on overflow), and reports
// per-model counters, latency quantiles and drift state on GET
// /v1/models and /metrics. cmd/flintserve wraps it into a binary:
// manifest-driven model sets, SIGHUP or POST /v1/reload hot reload
// through Swap, and a -selfcheck smoke mode CI runs against all five
// workloads. flintbench -servebench measures the wire path (rows/s,
// p50/p99) as BENCH_serve.json next to BENCH_batch.json.
//
// # Decision paths and robustness auditing
//
// FlatEngine.DecisionPath traces the exact per-tree comparison sequence
// behind a prediction — node, feature, threshold (and its quantized rank
// on the compact arena), direction — bit-consistent with Predict across
// every kernel and interleave width. On top of it, the robustness audit
// attacks rows the way an adversary would (greedy minimal threshold
// crossings in FLInt total order): RobustnessAudit reports the flip rate
// as a function of perturbation budget, AdversarialRow/AdversarialRows
// produce boundary-hugging worst-case serving workloads, and flintbench
// -audit emits the per-workload report CI archives as BENCH_robust.json.
//
// # Code generation: if-else listings and the integer-only table form
//
// GenerateCode emits a trained forest as source code, in one of two
// realization shapes (CodegenOptions.Mode):
//
//   - ModeIfElse (the default) — the paper's Listings 1-4: every tree
//     as nested branches in C or Go (plus ARMv8 and x86-64 assembly),
//     with float comparisons (VariantFloat) or the offline-encoded
//     integer comparisons (VariantFLInt), optional CAGS branch swapping
//     and double precision. Code size grows with the node count and
//     each node costs one comparison against an inline constant. Wins
//     on small forests whose hot paths fit the instruction cache, and
//     it is the only shape with assembly backends.
//
//   - ModeTable — the serving runtime's compact fused arena
//     (FlatCompact) as emittable source: static per-feature cut tables,
//     one uint64 word per node, a branchless binary-search quantizer
//     and the (key - rank) >> 31 shift-select walk loop. Integer-only
//     end to end — no float comparison, no FPU — and code size is
//     constant per forest: the model lives in data memory at ~8 bytes
//     per node (CompactModel.TableBytes reports the exact footprint),
//     the natural shape for flash-constrained FPU-less targets and for
//     forests deep enough that if-else code outgrows the instruction
//     cache. Supported for C and Go; predictions are bit-identical to
//     the FlatCompact engine (the Go form takes EncodeFeatures32
//     input). Forests exceeding the compact encoding return a
//     *CodegenNotCompactableError — probe Compactable first.
//
// flintbench -emit dumps both shapes for a trained workload side by
// side, and the cc bench backend times the table-driven C next to the
// if-else realizations. The tables themselves are available
// programmatically via FlatEngine.ExportCompact.
//
// Malformed input fails fast on every batch entry: rows whose length is
// not the engine's NumFeatures panic in the caller's goroutine
// (Batcher.Predict, PredictBatch) or return an error (Batch,
// BatchFloat) instead of killing the process from inside a worker.
package flint

import (
	"io"
	"time"

	"flint/internal/cags"
	"flint/internal/cart"
	"flint/internal/codegen"
	"flint/internal/core"
	"flint/internal/dataset"
	"flint/internal/flintsort"
	"flint/internal/ieee754"
	"flint/internal/rf"
	"flint/internal/robust"
	"flint/internal/serve"
	"flint/internal/softfloat"
	"flint/internal/treeexec"
)

// ---- The FLInt operator (the paper's primary contribution) ----

// GE32 reports x >= y for float32 operands using only integer and logic
// operations (Theorem 1 of the paper). See internal/core for the domain
// discussion: NaN is excluded, and -0.0 orders below +0.0.
func GE32(x, y float32) bool { return core.GE32(x, y) }

// LE32 reports x <= y via integer operations.
func LE32(x, y float32) bool { return core.LE32(x, y) }

// GT32 reports x > y via integer operations.
func GT32(x, y float32) bool { return core.GT32(x, y) }

// LT32 reports x < y via integer operations.
func LT32(x, y float32) bool { return core.LT32(x, y) }

// GE64 reports x >= y for float64 operands via integer operations.
func GE64(x, y float64) bool { return core.GE64(x, y) }

// LE64 reports x <= y via integer operations.
func LE64(x, y float64) bool { return core.LE64(x, y) }

// Compare32 orders x against y (-1, 0, +1) in FLInt's total order.
func Compare32(x, y float32) int { return core.Compare32(x, y) }

// Compare64 orders x against y (-1, 0, +1) in FLInt's total order.
func Compare64(x, y float64) int { return core.Compare64(x, y) }

// Split32 is a decision tree split value encoded offline for single-
// comparison FLInt evaluation (Section IV-B of the paper).
type Split32 = core.Split32

// Split64 is the float64 counterpart of Split32.
type Split64 = core.Split64

// EncodeSplit32 encodes a split value, rejecting NaN.
func EncodeSplit32(s float32) (Split32, error) { return core.EncodeSplit32(s) }

// MustEncodeSplit32 encodes a split value, panicking on NaN.
func MustEncodeSplit32(s float32) Split32 { return core.MustEncodeSplit32(s) }

// EncodeSplit64 encodes a float64 split value, rejecting NaN.
func EncodeSplit64(s float64) (Split64, error) { return core.EncodeSplit64(s) }

// MustEncodeSplit64 encodes a float64 split value, panicking on NaN.
func MustEncodeSplit64(s float64) Split64 { return core.MustEncodeSplit64(s) }

// FeatureBits32 reinterprets a float32 feature as the signed integer the
// split predicates consume (the `(int*)` cast of Listing 2).
func FeatureBits32(x float32) int32 { return ieee754.SI32(x) }

// FeatureBits64 reinterprets a float64 feature as a signed integer.
func FeatureBits64(x float64) int64 { return ieee754.SI64(x) }

// EncodeFeatures32 reinterprets a feature vector into dst.
func EncodeFeatures32(dst []int32, src []float32) []int32 {
	return core.EncodeFeatures32(dst, src)
}

// SoftLE32 is the software IEEE `<=` used on FPU-less devices, provided
// as the baseline FLInt replaces (package softfloat).
func SoftLE32(a, b float32) bool { return softfloat.LEFloat32(a, b) }

// ---- Model, data and training ----

// Forest is a trained random forest over float32 features.
type Forest = rf.Forest

// Tree is a single decision tree.
type Tree = rf.Tree

// Node is one decision tree node.
type Node = rf.Node

// Predictor classifies float32 feature vectors.
type Predictor = rf.Predictor

// Dataset is an in-memory classification dataset.
type Dataset = dataset.Dataset

// TrainConfig configures random forest training (scikit-learn-like
// defaults; see internal/cart).
type TrainConfig = cart.Config

// GenerateDataset synthesizes one of the paper's five evaluation
// workloads ("eye", "gas", "magic", "sensorless", "wine"); rows <= 0
// selects the full UCI-equivalent size.
func GenerateDataset(name string, rows int, seed int64) (*Dataset, error) {
	return dataset.Generate(name, rows, seed)
}

// DatasetNames returns the workload names in the paper's order.
func DatasetNames() []string { return dataset.Names() }

// Train trains a random forest.
func Train(d *Dataset, cfg TrainConfig) (*Forest, error) { return cart.TrainForest(d, cfg) }

// TrainTree trains a single deterministic CART tree.
func TrainTree(d *Dataset, maxDepth int, seed int64) (*Tree, error) {
	return cart.TrainTree(d, maxDepth, seed)
}

// ReadForestJSON loads a forest serialized with Forest.WriteJSON.
func ReadForestJSON(r io.Reader) (*Forest, error) { return rf.ReadJSON(r) }

// Accuracy returns the fraction of correct predictions.
func Accuracy(p Predictor, x [][]float32, y []int32) float64 { return rf.Accuracy(p, x, y) }

// ---- Execution engines ----

// Float32Engine executes a forest with hardware float comparisons.
type Float32Engine = treeexec.Float32Engine

// FLIntEngine executes a forest with offline-resolved FLInt comparisons.
type FLIntEngine = treeexec.FLIntEngine

// PrecodedEngine executes a forest in total-order key space (one
// transformation per feature vector, one unsigned compare per node).
type PrecodedEngine = treeexec.PrecodedEngine

// SoftFloatEngine executes a forest with software float comparisons,
// modeling an FPU-less device.
type SoftFloatEngine = treeexec.SoftFloatEngine

// NewFloatEngine compiles a forest for hardware float traversal.
func NewFloatEngine(f *Forest) (*Float32Engine, error) { return treeexec.NewFloat32(f) }

// NewFLIntEngine compiles a forest for FLInt traversal.
func NewFLIntEngine(f *Forest) (*FLIntEngine, error) { return treeexec.NewFLInt(f) }

// NewPrecodedEngine compiles a forest for precoded traversal.
func NewPrecodedEngine(f *Forest) (*PrecodedEngine, error) { return treeexec.NewPrecoded(f) }

// NewSoftFloatEngine compiles a forest for soft-float traversal.
func NewSoftFloatEngine(f *Forest) (*SoftFloatEngine, error) { return treeexec.NewSoftFloat(f) }

// ---- Forest-arena execution (batch serving) ----

// FlatEngine executes a forest out of one contiguous node arena with
// per-tree root offsets and branch-free leaf decoding (leaves are
// negative child indices carrying the complemented class). It is the
// engine of choice for batch and serving workloads: PredictBatch and
// Batcher walk blocks of rows in lock-step through each tree so arena
// node fetches amortize across the block.
type FlatEngine = treeexec.FlatForestEngine

// FlatVariant selects the comparison kernel a FlatEngine is compiled
// for (FLInt, hardware float, total-order precoded, or the quantized
// compact SoA arena).
type FlatVariant = treeexec.FlatVariant

// The arena comparison variants.
const (
	FlatFLInt    = treeexec.FlatFLInt
	FlatFloat32  = treeexec.FlatFloat32
	FlatPrecoded = treeexec.FlatPrecoded
	FlatCompact  = treeexec.FlatCompact
)

// InterleaveGates are the arena-size thresholds (bytes) from which the
// batch kernel walks 2, 4 and 8 rows at once, one threshold set per
// interleaving arena layout (the 16-byte AoS arenas read Min2/Min4/
// Min8, the compact SoA arena reads CompactMin2/CompactMin4/
// CompactMin8); see Calibrate.
type InterleaveGates = treeexec.InterleaveGates

// Kernel selects how the compact arena's batch kernel resolves each
// node's child: KernelBranchy compares and branches per level,
// KernelFused loads the node as one pre-packed word and computes the
// child branch-free, KernelSIMDQuant vectorizes only the quantizer (the
// gather-free half of the walk) and runs the fused cascade scalar, and
// KernelSIMD runs the branch-free step 8 lanes per instruction in
// vector registers where the host ISA allows — two software-pipelined
// 8-lane groups with lane compaction at interleave width 16 (see the
// package doc's kernel-selection section). All produce bit-identical
// predictions; calibration picks the fastest alongside the interleave
// width, and FlatEngine.SetKernel pins a choice for A/B measurement.
type Kernel = treeexec.Kernel

// The compact walk kernels, plus the KernelAuto sentinel that clears a
// SetKernel pin (handing the choice back to calibration).
const (
	KernelBranchy   = treeexec.KernelBranchy
	KernelFused     = treeexec.KernelFused
	KernelSIMDQuant = treeexec.KernelSIMDQuant
	KernelSIMD      = treeexec.KernelSIMD
	KernelAuto      = treeexec.KernelAuto
)

// ParseKernel maps a kernel name ("branchy", "fused", "simd-quant",
// "simd", or the legacy empty string meaning branchy) to its constant.
func ParseKernel(name string) (Kernel, error) { return treeexec.ParseKernel(name) }

// DetectedISA reports the vector instruction set the SIMD kernels
// execute natively on this host ("avx2"), or "" where only their
// portable fallbacks are available and calibration therefore never
// selects them.
func DetectedISA() string { return treeexec.DetectedISA() }

// Compactable reports whether a forest fits the compact SoA arena's
// 8-byte node encoding; when it does not, reason names the limit
// exceeded and NewFlatEngineVariant(f, FlatCompact) will fall back to
// the 32-bit FLInt arena.
func Compactable(f *Forest) (ok bool, reason string) { return treeexec.Compactable(f) }

// Calibrate measures, on this host and for each interleaving arena
// layout, the arena sizes past which the batch kernel's 2/4/8-way
// interleaved walks win, and installs the per-variant thresholds for
// engines constructed afterwards. Call it once at process start
// (budget <= 0 selects ~200ms). Individual engines can self-tune
// instead via FlatEngine.CalibrateInterleave, or — most accurately —
// on sampled production rows via FlatEngine.CalibrateInterleaveRows.
func Calibrate(budget time.Duration) InterleaveGates { return treeexec.Calibrate(budget) }

// CurrentInterleaveGates returns the gate table newly constructed
// engines will read: the last Calibrate (or SetInterleaveGates) result,
// or the static defaults.
func CurrentInterleaveGates() InterleaveGates { return treeexec.CurrentInterleaveGates() }

// SetInterleaveGates installs a gate table for subsequently constructed
// engines — for deployments that ship thresholds measured offline
// instead of spending Calibrate's startup budget.
func SetInterleaveGates(g InterleaveGates) { treeexec.SetInterleaveGates(g) }

// Batcher is a persistent worker pool over a FlatEngine: goroutines and
// per-worker scratch are allocated once, so steady-state batch
// prediction with a reused output slice allocates nothing. It also
// samples the traffic it serves into a fixed-capacity reservoir
// (allocation-free on the Predict path) feeding Recalibrate — re-timing
// the engine's interleave width on measured rows, safely while traffic
// is in flight — and SampleSnapshot, whose rows SaveCalibration can
// persist for the next deployment's warm start.
type Batcher = treeexec.Batcher

// ArenaFingerprint identifies the compiled arena a calibration record
// was measured on (variant, node count, feature and class counts);
// LoadCalibration rejects records whose fingerprint does not match the
// loading engine.
type ArenaFingerprint = treeexec.ArenaFingerprint

// CalibrationRecord is the persisted calibration state of one engine —
// arena fingerprint, host gate table, chosen interleave width and
// optionally sampled traffic rows — written by FlatEngine.
// SaveCalibration and restored by FlatEngine.LoadCalibration.
type CalibrationRecord = treeexec.CalibrationRecord

// WriteGatesJSON persists a host-wide interleave gate table alone (no
// engine fingerprint), e.g. a Calibrate result measured offline.
func WriteGatesJSON(w io.Writer, g InterleaveGates) error { return treeexec.WriteGatesJSON(w, g) }

// ReadGatesJSON reads a gate table written by WriteGatesJSON; install
// it with SetInterleaveGates.
func ReadGatesJSON(r io.Reader) (InterleaveGates, error) { return treeexec.ReadGatesJSON(r) }

// NewFlatEngine compiles a forest into a single-arena FLInt engine. To
// keep the CAGS cache benefit inside the arena, pass a Reorder-ed
// forest. Other comparison kernels: NewFlatEngineVariant.
func NewFlatEngine(f *Forest) (*FlatEngine, error) {
	return treeexec.NewFlat(f, treeexec.FlatFLInt)
}

// NewFlatEngineVariant compiles a forest into a single-arena engine for
// the given comparison variant.
func NewFlatEngineVariant(f *Forest, v FlatVariant) (*FlatEngine, error) {
	return treeexec.NewFlat(f, v)
}

// PredictBatch classifies all rows with the engine's row-blocked kernel
// on up to workers goroutines (0 selects GOMAXPROCS). For steady-state
// serving without per-call goroutine spawning, use NewBatcher.
func PredictBatch(e *FlatEngine, rows [][]float32, workers int) []int32 {
	return e.PredictBatch(rows, nil, workers, 0)
}

// NewBatcher starts a persistent worker pool of the given size over the
// engine (0 selects GOMAXPROCS), with traffic-reservoir sampling
// enabled at the default capacity and stride. Close it when done.
func NewBatcher(e *FlatEngine, workers int) *Batcher {
	return treeexec.NewBatcher(e, workers, 0)
}

// NewBatcherSampled is NewBatcher with the row-block size and the
// reservoir parameters explicit: block is the rows-per-work-unit of the
// pool (<= 0 selects the default, like NewBatcher), capacity rows are
// held in the traffic reservoir (negative disables sampling, zero
// selects the default) and one served row in every stride is considered
// for admission (<= 0 selects the default).
func NewBatcherSampled(e *FlatEngine, workers, block, capacity, stride int) *Batcher {
	return treeexec.NewBatcherSampled(e, workers, block, capacity, stride)
}

// ---- Model registry and network serving ----

// ServedModel is one model's complete serving state — engine, Batcher,
// traffic reservoir, drift detector, calibration record — as a single
// swappable unit with an error-returning Predict. See the "Model
// registry and network serving" section of the package documentation.
type ServedModel = treeexec.ServedModel

// ModelRegistry serves a set of ServedModels by name and hot-swaps
// them without dropping requests (Swap flips an atomic pointer and
// drains the old model; Predict retries across the flip).
type ModelRegistry = treeexec.ModelRegistry

// ModelStats is a point-in-time snapshot of one served model's engine
// mode, counters and drift state (ServedModel.Stats, Registry.Stats).
type ModelStats = treeexec.ModelStats

// ErrModelRetired is returned by ServedModel.Predict after Close (or a
// registry Swap) retired the model; ModelRegistry.Predict absorbs it by
// retrying against the replacement.
var ErrModelRetired = treeexec.ErrModelRetired

// NewModelRegistry returns an empty model registry.
func NewModelRegistry() *ModelRegistry { return treeexec.NewModelRegistry() }

// NewServedModel wraps an engine as a registry-servable model with a
// default-sampled Batcher of the given pool size (0 selects
// GOMAXPROCS).
func NewServedModel(name string, e *FlatEngine, workers int) *ServedModel {
	return treeexec.NewServedModel(name, e, workers, 0)
}

// NewServedModelSampled is NewServedModel with the Batcher's row-block
// size and reservoir parameters explicit (NewBatcherSampled semantics).
func NewServedModelSampled(name string, e *FlatEngine, workers, block, capacity, stride int) *ServedModel {
	return treeexec.NewServedModelSampled(name, e, workers, block, capacity, stride)
}

// Server is the HTTP/JSON front-end over a ModelRegistry: cross-request
// batching under a latency budget, per-model admission control and
// metrics. Mount Server.Handler on an http.Server; see cmd/flintserve
// for the packaged binary.
type Server = serve.Server

// ServeConfig tunes the front-end (coalescing row cap, latency budget,
// admission queue bound); the zero value selects the defaults.
type ServeConfig = serve.Config

// NewServer builds the HTTP front-end over a registry.
func NewServer(reg *ModelRegistry, cfg ServeConfig) *Server { return serve.New(reg, cfg) }

// ---- Drift detection and decision-path robustness auditing ----

// DriftConfig parameterizes a Batcher's drift detector (check cadence,
// PSI trigger threshold, recalibration cooldown, evidence floor,
// histogram bins, recalibration budget); the zero value selects the
// defaults. Arm it with Batcher.EnableDriftDetection.
type DriftConfig = treeexec.DriftConfig

// DriftStats is a snapshot of a Batcher's drift detector: the latest
// PSI distance, check/trigger/suppression counters and timestamps. Read
// it with Batcher.DriftStats; Batcher.CheckDrift forces a synchronous
// check.
type DriftStats = treeexec.DriftStats

// PathStep is one comparison on a row's decision path, as traced by
// FlatEngine.DecisionPath: the tree and arena node, the feature and
// threshold compared (with the compact arena's quantized rank), and the
// direction taken. The trace is bit-consistent with Predict on every
// kernel and interleave width.
type PathStep = treeexec.PathStep

// AttackConfig parameterizes the decision-path attack (iteration cap,
// normalized perturbation budget, per-feature cost scale); the zero
// value selects the defaults.
type AttackConfig = robust.Config

// AttackResult is the outcome of attacking one row: the perturbed copy,
// whether the prediction flipped, and the normalized cost and number of
// threshold crossings spent.
type AttackResult = robust.Result

// RobustnessReport is a robustness audit over a row set: the attack's
// flip rate as a function of perturbation budget.
type RobustnessReport = robust.Report

// AdversarialRow attacks one row with the greedy decision-path attack:
// it returns a minimally perturbed copy (each changed feature lands
// exactly on a trained threshold or its immediate float successor in
// FLInt total order) whose prediction flips when the search succeeds
// within the configured caps. The input row is not modified.
func AdversarialRow(e *FlatEngine, x []float32, cfg AttackConfig) AttackResult {
	return robust.Perturb(e, x, cfg)
}

// AdversarialRows attacks every row and returns the perturbed copies —
// a boundary-hugging worst-case serving workload for benchmarks and
// differential tests.
func AdversarialRows(e *FlatEngine, rows [][]float32, cfg AttackConfig) [][]float32 {
	return robust.AdversarialRows(e, rows, cfg)
}

// RobustnessAudit attacks every row and reports the flip-rate curve
// over the budget ladder (nil selects the default ladder; budgets read
// as fractions of the rows' per-feature value spread unless cfg.Scale
// overrides the normalization).
func RobustnessAudit(e *FlatEngine, rows [][]float32, budgets []float64, cfg AttackConfig) RobustnessReport {
	return robust.Audit(e, rows, budgets, cfg)
}

// ---- CAGS (Chen et al. [6]) ----

// Reorder applies the grouping half of CAGS: it permutes every tree's
// node array into hot-path preorder using the branch probabilities
// collected during training.
func Reorder(f *Forest) (*Forest, error) { return cags.ReorderForest(f) }

// ---- Code generation ----

// CodegenOptions configures source emission.
type CodegenOptions = codegen.Options

// CodegenNotCompactableError reports a ModeTable request for a forest
// that exceeds the compact encoding; its Reason names the limit.
type CodegenNotCompactableError = codegen.NotCompactableError

// CompactModel is the compact fused arena as an exported value — the
// tables ModeTable emits and FlatEngine.ExportCompact returns.
type CompactModel = treeexec.CompactModel

// Code generation languages, realization modes, comparison variants and
// assembly constant flavors (re-exported from internal/codegen).
const (
	LangC        = codegen.LangC
	LangGo       = codegen.LangGo
	LangARMv8    = codegen.LangARMv8
	LangX86      = codegen.LangX86
	ModeIfElse   = codegen.ModeIfElse
	ModeTable    = codegen.ModeTable
	VariantFloat = codegen.VariantFloat
	VariantFLInt = codegen.VariantFLInt
	FlavorHand   = codegen.FlavorHand
	FlavorCC     = codegen.FlavorCC
)

// GenerateCode writes a forest as source code in the configured
// language/variant (Listings 1-5 of the paper).
func GenerateCode(w io.Writer, f *Forest, opts CodegenOptions) error {
	return codegen.Forest(w, f, opts)
}

// ---- Beyond trees: comparison-free sorting (the paper's future work) ----

// SortFloat32s sorts x ascending in IEEE 754 totalOrder without
// executing a single floating point comparison (package flintsort): the
// FLInt future-work direction of applying the operator to other
// comparison-heavy applications.
func SortFloat32s(x []float32) { flintsort.Sort32(x) }

// SortFloat64s is SortFloat32s for float64 slices.
func SortFloat64s(x []float64) { flintsort.Sort64(x) }

// SearchFloat32s returns the smallest index i in totalOrder-sorted x
// with x[i] >= v, using integer comparisons only.
func SearchFloat32s(x []float32, v float32) int { return flintsort.Search32(x, v) }
