package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"flint/internal/cart"
	"flint/internal/dataset"
	"flint/internal/robust"
	"flint/internal/treeexec"
)

// RobustBench runs the decision-path adversarial audit (internal/robust)
// per workload — the BENCH_robust.json artifact CI uploads next to
// BENCH_batch.json. It reports how much of each workload's test
// distribution the attack can flip as a function of perturbation
// budget: a robustness trajectory of the trained configurations, not a
// performance gate. Report-only by design — flip rates depend on the
// synthetic data generators and training hyperparameters, so deltas
// across PRs flag modelling changes to investigate rather than failures.
type RobustBench struct {
	// Rows is the synthetic dataset size (train + test); <= 0 selects
	// 1200, matching BatchBench's quick-grid size.
	Rows int
	// Trees and Depth shape the trained ensemble; <= 0 selects 20 / 12.
	Trees, Depth int
	// AuditRows caps how many test rows are attacked per workload;
	// <= 0 selects 150 (the audit walks the full forest per attack
	// iteration, so it is the expensive half of the artifact).
	AuditRows int
	// MaxIter caps attack iterations per row; <= 0 selects the robust
	// package default.
	MaxIter int
	// Budgets is the flip-rate ladder; nil selects robust.DefaultBudgets.
	Budgets []float64
	// Seed drives dataset synthesis and training; 0 selects 1.
	Seed int64
}

// RobustBenchRow is one workload's audit outcome.
type RobustBenchRow struct {
	Dataset string `json:"dataset"`
	// ArenaNodes sizes the audited compact engine, tying a flip-rate
	// shift to a structural change in the trained forest.
	ArenaNodes int           `json:"arena_nodes"`
	Report     robust.Report `json:"report"`
}

// RobustBenchReport is the BENCH_robust.json document.
type RobustBenchReport struct {
	Config struct {
		Rows, Trees, Depth, AuditRows, MaxIter int
	} `json:"config"`
	Results []RobustBenchRow `json:"results"`
}

func (c RobustBench) withDefaults() RobustBench {
	if c.Rows <= 0 {
		c.Rows = 1200
	}
	if c.Trees <= 0 {
		c.Trees = 20
	}
	if c.Depth <= 0 {
		c.Depth = 12
	}
	if c.AuditRows <= 0 {
		c.AuditRows = 150
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Run trains one forest per workload (the same configuration BatchBench
// times) and audits the compact serving engine against the test rows.
func (c RobustBench) Run() (*RobustBenchReport, error) {
	c = c.withDefaults()
	rep := &RobustBenchReport{}
	rep.Config.Rows = c.Rows
	rep.Config.Trees = c.Trees
	rep.Config.Depth = c.Depth
	rep.Config.AuditRows = c.AuditRows
	rep.Config.MaxIter = c.MaxIter
	for _, ds := range dataset.Names() {
		full, err := dataset.Generate(ds, c.Rows, c.Seed)
		if err != nil {
			return nil, err
		}
		train, test := full.Split(0.75, c.Seed)
		forest, err := cart.TrainForest(train, cart.Config{
			NumTrees: c.Trees, MaxDepth: c.Depth, Seed: c.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: training %s: %w", ds, err)
		}
		e, err := treeexec.NewFlat(forest, treeexec.FlatCompact)
		if err != nil {
			return nil, err
		}
		rows := test.Features
		if len(rows) > c.AuditRows {
			rows = rows[:c.AuditRows]
		}
		if len(rows) == 0 {
			return nil, fmt.Errorf("bench: empty test set for %s", ds)
		}
		rep.Results = append(rep.Results, RobustBenchRow{
			Dataset:    ds,
			ArenaNodes: e.ArenaNodes(),
			Report:     robust.Audit(e, rows, c.Budgets, robust.Config{MaxIter: c.MaxIter}),
		})
	}
	return rep, nil
}

// WriteRobustBenchJSON writes the report as indented JSON.
func WriteRobustBenchJSON(w io.Writer, rep *RobustBenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
