package bench

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trend diffing closes the loop on the BENCH_batch.json artifacts CI
// uploads every run: two consecutive reports, aligned cell-by-cell,
// become a per-(workload, variant) rows/s delta table. The numbers are
// wall-clock on shared runners, so the diff is report-only context for
// reviewers — consumers must not gate on it.

// TrendDelta is one aligned (workload, variant) cell of a trend diff.
// Presence is tracked explicitly in HasOld/HasNew: a measured 0 rows/s
// (a failed or degenerate measurement that still produced a cell) is a
// different fact from a cell that does not exist in that report, and
// conflating them used to mislabel real zero measurements as
// "(new)"/"(dropped)".
type TrendDelta struct {
	Dataset string
	Variant string
	Old     float64 // rows/s in the older report (0 when absent or measured 0)
	New     float64 // rows/s in the newer report (0 when absent or measured 0)
	HasOld  bool    // the older report contains this cell
	HasNew  bool    // the newer report contains this cell
}

// Pct returns the relative throughput change in percent, valid only
// when both sides are present and the old side is non-zero.
func (d TrendDelta) Pct() float64 {
	return (d.New - d.Old) / d.Old * 100
}

// ReadBatchBenchJSON parses a BENCH_batch.json document written by
// WriteBatchBenchJSON.
func ReadBatchBenchJSON(r io.Reader) (*BatchBenchReport, error) {
	var rep BatchBenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: malformed batch report: %w", err)
	}
	return &rep, nil
}

// TrendDiff aligns two batch reports by (dataset, variant): cells of
// the newer report keep its ordering, cells present only in the older
// report are appended in its ordering. Duplicate cells within one
// report keep the first occurrence.
func TrendDiff(oldRep, newRep *BatchBenchReport) []TrendDelta {
	type key struct{ ds, v string }
	oldBy := make(map[key]float64, len(oldRep.Results))
	for _, r := range oldRep.Results {
		k := key{r.Dataset, r.Variant}
		if _, ok := oldBy[k]; !ok {
			oldBy[k] = r.RowsPerSec
		}
	}
	var out []TrendDelta
	seen := make(map[key]bool, len(newRep.Results))
	for _, r := range newRep.Results {
		k := key{r.Dataset, r.Variant}
		if seen[k] {
			continue
		}
		seen[k] = true
		d := TrendDelta{
			Dataset: r.Dataset, Variant: r.Variant,
			New: r.RowsPerSec, HasNew: true,
		}
		if old, ok := oldBy[k]; ok {
			d.Old, d.HasOld = old, true
		}
		out = append(out, d)
	}
	for _, r := range oldRep.Results {
		k := key{r.Dataset, r.Variant}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, TrendDelta{
			Dataset: r.Dataset, Variant: r.Variant,
			Old: r.RowsPerSec, HasOld: true,
		})
	}
	return out
}

// WriteTrendDiff renders a trend diff as an aligned text table. Cells
// missing on one side are marked (new) or (dropped) instead of carrying
// a meaningless percentage; a measured 0 rows/s is printed as the
// number it is (with no percentage when the old side is 0, where the
// relative change is undefined), not mislabeled as a missing cell.
func WriteTrendDiff(w io.Writer, deltas []TrendDelta) error {
	if _, err := fmt.Fprintf(w, "%-12s %-13s %14s %14s %9s\n",
		"dataset", "variant", "old rows/s", "new rows/s", "delta"); err != nil {
		return err
	}
	for _, d := range deltas {
		var err error
		switch {
		case !d.HasOld && !d.HasNew:
			_, err = fmt.Fprintf(w, "%-12s %-13s %14s %14s %9s\n",
				d.Dataset, d.Variant, "-", "-", "-")
		case !d.HasOld:
			_, err = fmt.Fprintf(w, "%-12s %-13s %14s %14.0f %9s\n",
				d.Dataset, d.Variant, "-", d.New, "(new)")
		case !d.HasNew:
			_, err = fmt.Fprintf(w, "%-12s %-13s %14.0f %14s %9s\n",
				d.Dataset, d.Variant, d.Old, "-", "(dropped)")
		case d.Old == 0:
			_, err = fmt.Fprintf(w, "%-12s %-13s %14.0f %14.0f %9s\n",
				d.Dataset, d.Variant, d.Old, d.New, "-")
		default:
			_, err = fmt.Fprintf(w, "%-12s %-13s %14.0f %14.0f %+8.1f%%\n",
				d.Dataset, d.Variant, d.Old, d.New, d.Pct())
		}
		if err != nil {
			return err
		}
	}
	return nil
}
