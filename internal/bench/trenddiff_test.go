package bench

import (
	"bytes"
	"strings"
	"testing"
)

func trendReport(rows ...BatchBenchRow) *BatchBenchReport {
	return &BatchBenchReport{Results: rows}
}

func TestTrendDiffAlignment(t *testing.T) {
	oldRep := trendReport(
		BatchBenchRow{Dataset: "magic", Variant: "flat-flint", RowsPerSec: 50000},
		BatchBenchRow{Dataset: "magic", Variant: "flat-compact", RowsPerSec: 60000},
		BatchBenchRow{Dataset: "wine", Variant: "flint", RowsPerSec: 1000},
	)
	newRep := trendReport(
		BatchBenchRow{Dataset: "magic", Variant: "flat-flint", RowsPerSec: 55000},
		BatchBenchRow{Dataset: "magic", Variant: "flat-compact", RowsPerSec: 54000},
		BatchBenchRow{Dataset: "eye", Variant: "flat-compact", RowsPerSec: 42000},
	)
	deltas := TrendDiff(oldRep, newRep)
	if len(deltas) != 4 {
		t.Fatalf("%d deltas, want 4: %+v", len(deltas), deltas)
	}
	// New-report order first, then old-only cells.
	if deltas[0].Dataset != "magic" || deltas[0].Variant != "flat-flint" ||
		deltas[0].Old != 50000 || deltas[0].New != 55000 {
		t.Errorf("delta[0] = %+v", deltas[0])
	}
	if got := deltas[0].Pct(); got < 9.9 || got > 10.1 {
		t.Errorf("delta[0].Pct() = %v, want ~10", got)
	}
	if got := deltas[1].Pct(); got > -9.9 || got < -10.1 {
		t.Errorf("delta[1].Pct() = %v, want ~-10", got)
	}
	if deltas[2].Dataset != "eye" || deltas[2].Old != 0 || deltas[2].New != 42000 {
		t.Errorf("new-only cell = %+v", deltas[2])
	}
	if deltas[3].Dataset != "wine" || deltas[3].Old != 1000 || deltas[3].New != 0 {
		t.Errorf("dropped cell = %+v", deltas[3])
	}

	var buf bytes.Buffer
	if err := WriteTrendDiff(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"+10.0%", "-10.0%", "(new)", "(dropped)", "dataset"} {
		if !strings.Contains(out, want) {
			t.Errorf("trend table missing %q:\n%s", want, out)
		}
	}
}

func TestReadBatchBenchJSONRoundTrip(t *testing.T) {
	rep := trendReport(BatchBenchRow{
		Dataset: "gas", Variant: "flat-compact", RowsPerSec: 12345,
		ArenaNodes: 10, ArenaBytes: 160, PrunedFeatures: 37, NumFeatures: 128,
	})
	rep.Config.Rows = 600
	var buf bytes.Buffer
	if err := WriteBatchBenchJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBatchBenchJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || back.Results[0] != rep.Results[0] || back.Config.Rows != 600 {
		t.Errorf("round trip = %+v", back)
	}
	if _, err := ReadBatchBenchJSON(strings.NewReader("{not json")); err == nil {
		t.Error("malformed report accepted")
	}
}
