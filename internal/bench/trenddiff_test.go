package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"flint/internal/treeexec"
)

func trendReport(rows ...BatchBenchRow) *BatchBenchReport {
	return &BatchBenchReport{Results: rows}
}

func TestTrendDiffAlignment(t *testing.T) {
	oldRep := trendReport(
		BatchBenchRow{Dataset: "magic", Variant: "flat-flint", RowsPerSec: 50000},
		BatchBenchRow{Dataset: "magic", Variant: "flat-compact", RowsPerSec: 60000},
		BatchBenchRow{Dataset: "wine", Variant: "flint", RowsPerSec: 1000},
	)
	newRep := trendReport(
		BatchBenchRow{Dataset: "magic", Variant: "flat-flint", RowsPerSec: 55000},
		BatchBenchRow{Dataset: "magic", Variant: "flat-compact", RowsPerSec: 54000},
		BatchBenchRow{Dataset: "eye", Variant: "flat-compact", RowsPerSec: 42000},
	)
	deltas := TrendDiff(oldRep, newRep)
	if len(deltas) != 4 {
		t.Fatalf("%d deltas, want 4: %+v", len(deltas), deltas)
	}
	// New-report order first, then old-only cells.
	if deltas[0].Dataset != "magic" || deltas[0].Variant != "flat-flint" ||
		deltas[0].Old != 50000 || deltas[0].New != 55000 {
		t.Errorf("delta[0] = %+v", deltas[0])
	}
	if got := deltas[0].Pct(); got < 9.9 || got > 10.1 {
		t.Errorf("delta[0].Pct() = %v, want ~10", got)
	}
	if got := deltas[1].Pct(); got > -9.9 || got < -10.1 {
		t.Errorf("delta[1].Pct() = %v, want ~-10", got)
	}
	if deltas[2].Dataset != "eye" || deltas[2].HasOld || !deltas[2].HasNew || deltas[2].New != 42000 {
		t.Errorf("new-only cell = %+v", deltas[2])
	}
	if deltas[3].Dataset != "wine" || !deltas[3].HasOld || deltas[3].HasNew || deltas[3].Old != 1000 {
		t.Errorf("dropped cell = %+v", deltas[3])
	}
	if !deltas[0].HasOld || !deltas[0].HasNew {
		t.Errorf("both-sides cell lost presence: %+v", deltas[0])
	}

	var buf bytes.Buffer
	if err := WriteTrendDiff(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"+10.0%", "-10.0%", "(new)", "(dropped)", "dataset"} {
		if !strings.Contains(out, want) {
			t.Errorf("trend table missing %q:\n%s", want, out)
		}
	}
}

// TestTrendDiffZeroMeasurements pins the presence fix: a cell that
// measured 0 rows/s exists in its report and must render as the number
// 0 — not be conflated with an absent cell and mislabeled "(new)" or
// "(dropped)".
func TestTrendDiffZeroMeasurements(t *testing.T) {
	for _, tc := range []struct {
		name     string
		oldRows  []BatchBenchRow
		newRows  []BatchBenchRow
		want     TrendDelta
		wantMark string // substring expected in the rendered row
		banMarks []string
	}{
		{
			name:     "zero in new report is not (dropped)",
			oldRows:  []BatchBenchRow{{Dataset: "magic", Variant: "flint", RowsPerSec: 5000}},
			newRows:  []BatchBenchRow{{Dataset: "magic", Variant: "flint", RowsPerSec: 0}},
			want:     TrendDelta{Dataset: "magic", Variant: "flint", Old: 5000, New: 0, HasOld: true, HasNew: true},
			wantMark: "-100.0%",
			banMarks: []string{"(dropped)", "(new)"},
		},
		{
			name:     "zero in old report is not (new)",
			oldRows:  []BatchBenchRow{{Dataset: "magic", Variant: "flint", RowsPerSec: 0}},
			newRows:  []BatchBenchRow{{Dataset: "magic", Variant: "flint", RowsPerSec: 5000}},
			want:     TrendDelta{Dataset: "magic", Variant: "flint", Old: 0, New: 5000, HasOld: true, HasNew: true},
			wantMark: "5000",
			banMarks: []string{"(new)", "(dropped)", "%"},
		},
		{
			name:     "zero on both sides renders both zeros",
			oldRows:  []BatchBenchRow{{Dataset: "magic", Variant: "flint", RowsPerSec: 0}},
			newRows:  []BatchBenchRow{{Dataset: "magic", Variant: "flint", RowsPerSec: 0}},
			want:     TrendDelta{Dataset: "magic", Variant: "flint", HasOld: true, HasNew: true},
			wantMark: "0",
			banMarks: []string{"(new)", "(dropped)", "%"},
		},
		{
			name:     "absent cell still marked (new)",
			oldRows:  nil,
			newRows:  []BatchBenchRow{{Dataset: "magic", Variant: "flint", RowsPerSec: 0}},
			want:     TrendDelta{Dataset: "magic", Variant: "flint", HasNew: true},
			wantMark: "(new)",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			deltas := TrendDiff(trendReport(tc.oldRows...), trendReport(tc.newRows...))
			if len(deltas) != 1 {
				t.Fatalf("%d deltas, want 1", len(deltas))
			}
			if deltas[0] != tc.want {
				t.Errorf("delta = %+v, want %+v", deltas[0], tc.want)
			}
			var buf bytes.Buffer
			if err := WriteTrendDiff(&buf, deltas); err != nil {
				t.Fatal(err)
			}
			body := strings.SplitN(buf.String(), "\n", 2)[1] // skip the header
			if !strings.Contains(body, tc.wantMark) {
				t.Errorf("rendered row missing %q:\n%s", tc.wantMark, body)
			}
			for _, ban := range tc.banMarks {
				if strings.Contains(body, ban) {
					t.Errorf("rendered row wrongly contains %q:\n%s", ban, body)
				}
			}
		})
	}
}

func TestReadBatchBenchJSONRoundTrip(t *testing.T) {
	rep := trendReport(BatchBenchRow{
		Dataset: "gas", Variant: "flat-compact", RowsPerSec: 12345,
		ArenaNodes: 10, ArenaBytes: 160, PrunedFeatures: 37, NumFeatures: 128,
		Ladder: []treeexec.ModeTiming{
			{Width: 8, Kernel: "fused", RowsPerSec: 12345, Winner: true},
			{Width: 16, Kernel: "simd", Refill: 6, RowsPerSec: 9000},
		},
	})
	rep.Config.Rows = 600
	var buf bytes.Buffer
	if err := WriteBatchBenchJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBatchBenchJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || !reflect.DeepEqual(back.Results[0], rep.Results[0]) || back.Config.Rows != 600 {
		t.Errorf("round trip = %+v", back)
	}
	if _, err := ReadBatchBenchJSON(strings.NewReader("{not json")); err == nil {
		t.Error("malformed report accepted")
	}
}
