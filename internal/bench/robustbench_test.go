package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"flint/internal/dataset"
)

// TestRobustBenchRun runs the CI robustness-audit harness at a tiny
// configuration and checks the report's shape: one audited row per
// workload, flip-rate curves over the budget ladder, and a JSON
// round-trip of the artifact.
func TestRobustBenchRun(t *testing.T) {
	rep, err := RobustBench{
		Rows: 300, Trees: 6, Depth: 8, AuditRows: 20, MaxIter: 40,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Results), len(dataset.Names()); got != want {
		t.Fatalf("%d result rows, want %d", got, want)
	}
	if rep.Config.AuditRows != 20 || rep.Config.MaxIter != 40 {
		t.Fatalf("config not echoed: %+v", rep.Config)
	}
	anyFlip := false
	for _, r := range rep.Results {
		if r.ArenaNodes <= 0 {
			t.Errorf("%s: arena nodes %d", r.Dataset, r.ArenaNodes)
		}
		if r.Report.Rows != 20 {
			t.Errorf("%s: audited %d rows, want 20", r.Dataset, r.Report.Rows)
		}
		if len(r.Report.Budgets) != len(r.Report.FlipRate) {
			t.Errorf("%s: %d budgets, %d flip rates", r.Dataset, len(r.Report.Budgets), len(r.Report.FlipRate))
		}
		prev := -1.0
		for i, fr := range r.Report.FlipRate {
			if fr < prev {
				t.Errorf("%s: flip rate not monotone at budget %v", r.Dataset, r.Report.Budgets[i])
			}
			prev = fr
		}
		if r.Report.Flipped > 0 {
			anyFlip = true
		}
	}
	if !anyFlip {
		t.Error("audit flipped nothing on any workload; the artifact is vacuous")
	}

	var buf bytes.Buffer
	if err := WriteRobustBenchJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back RobustBenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) || back.Results[0].Dataset != rep.Results[0].Dataset {
		t.Fatalf("JSON round-trip mismatch: %+v", back.Results)
	}
}
