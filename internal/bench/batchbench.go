package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"flint/internal/cart"
	"flint/internal/dataset"
	"flint/internal/treeexec"
)

// BatchBench measures whole-batch serving throughput (rows/s) for the
// arena engines on every workload — the per-PR perf trajectory the CI
// workflow records as BENCH_batch.json. It is deliberately small: one
// trained configuration per dataset, a fixed serial-vs-pool worker
// split, and wall-clock timings subject to host noise, so consumers
// must treat run-over-run deltas as indicative, not as a gate.
type BatchBench struct {
	// Rows is the synthetic dataset size (train + test); <= 0 selects
	// 1200 (the quick-grid size).
	Rows int
	// Trees and Depth shape the trained ensemble; <= 0 selects 20 / 12.
	Trees, Depth int
	// Workers is the Batcher pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// MinDuration is the minimum measured wall time per variant;
	// <= 0 selects 50ms.
	MinDuration time.Duration
	// Seed drives dataset synthesis and training; 0 selects 1.
	Seed int64
	// Kernel forces the compact walk kernel for A/B runs: "branchy",
	// "fused", "simd-quant" or "simd" pins it (the interleave width is
	// then calibrated under that kernel alone), "" or "auto" lets
	// calibration pick the (width, kernel) pair.
	Kernel string
}

// BatchBenchRow is one measured (workload, variant) cell.
type BatchBenchRow struct {
	Dataset    string  `json:"dataset"`
	Variant    string  `json:"variant"`
	RowsPerSec float64 `json:"rows_per_sec"`
	// ArenaNodes/ArenaBytes/BytesPerNode describe the engine footprint
	// (0 for the per-tree baseline, which has no single arena).
	ArenaNodes   int     `json:"arena_nodes,omitempty"`
	ArenaBytes   int     `json:"arena_bytes,omitempty"`
	BytesPerNode float64 `json:"bytes_per_node,omitempty"`
	// Interleave is the batch kernel's cursor count (arena variants).
	Interleave int `json:"interleave,omitempty"`
	// Kernel is the walk kernel the row was measured with ("branchy",
	// "fused", "simd-quant" or "simd") — chosen by calibration, or pinned
	// by an A/B run's BatchBench.Kernel. Arena variants only.
	Kernel string `json:"kernel,omitempty"`
	// ISA is the vector instruction set the SIMD kernel runs natively on
	// the measuring host (treeexec.DetectedISA, e.g. "avx2"; empty where
	// only the portable fallback exists). Recorded on every arena row —
	// not just simd ones — so cross-host rows/s trajectories in the CI
	// trend history stay interpretable. Arena variants only.
	ISA string `json:"isa,omitempty"`
	// PrunedFeatures is the number of features the forest actually
	// splits on — the compact arena's per-row quantization cost (one
	// binary search each); NumFeatures is the input dimensionality it
	// was pruned from. Recorded for the compact variant only.
	PrunedFeatures int `json:"pruned_features,omitempty"`
	NumFeatures    int `json:"num_features,omitempty"`
	// CalibSource records where the engine's interleave width came from
	// ("rows" for sampled traffic — the reservoir-backed serving path —
	// "synthetic" for split-table rows, "persisted" for a loaded record,
	// "manual" for a SetInterleave override, "default" for the
	// construction-time gates), so a recorded width can be traced to its
	// evidence. Arena variants only.
	CalibSource string `json:"calib_source,omitempty"`
	// Ladder is the full per-candidate calibration timing table — rows/s
	// for every (width, kernel, refill) mode the ladder measured, winner
	// flagged — so losing kernels' trajectories stay visible across PRs
	// instead of disappearing behind the winner's gate. Arena variants
	// only; absent on rows recorded before it existed.
	Ladder []treeexec.ModeTiming `json:"ladder,omitempty"`
}

// BatchBenchReport is the BENCH_batch.json document.
type BatchBenchReport struct {
	Config struct {
		Rows, Trees, Depth, Workers int
		GOMAXPROCS                  int
	} `json:"config"`
	// Gates is the host-wide per-variant interleave gate table measured
	// at the start of the run (each engine still self-calibrates on its
	// own arena before timing; the table contextualizes the recorded
	// Interleave widths).
	Gates   treeexec.InterleaveGates `json:"gates"`
	Results []BatchBenchRow          `json:"results"`
}

func (c BatchBench) withDefaults() BatchBench {
	if c.Rows <= 0 {
		c.Rows = 1200
	}
	if c.Trees <= 0 {
		c.Trees = 20
	}
	if c.Depth <= 0 {
		c.Depth = 12
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MinDuration <= 0 {
		c.MinDuration = 50 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// timeRows measures rows/s for fn, which classifies the whole test set
// once per call and returns the row count. An fn error aborts the
// measurement and is returned to the caller like every other error path
// in Run — never panicked across the timing loop.
func (c BatchBench) timeRows(fn func() (int, error)) (float64, error) {
	n, err := fn() // warm up
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	total := 0
	start := time.Now()
	elapsed := time.Duration(0)
	for elapsed < c.MinDuration {
		n, err := fn()
		if err != nil {
			return 0, err
		}
		total += n
		elapsed = time.Since(start)
	}
	return float64(total) / elapsed.Seconds(), nil
}

// Run trains one forest per workload and measures batch throughput for
// the per-tree FLInt baseline (per-row goroutine batch) and the flat
// and compact arenas (persistent Batcher). Each arena engine self-
// calibrates its interleave width — and, on the compact arena, its
// walk kernel, unless c.Kernel pins one — on its own arena before
// timing, so the recorded Interleave/Kernel fields reflect this host,
// not the static default gates.
func (c BatchBench) Run() (*BatchBenchReport, error) {
	c = c.withDefaults()
	forceKernel := treeexec.KernelBranchy
	forced := false
	switch c.Kernel {
	case "", "auto":
	default:
		k, err := treeexec.ParseKernel(c.Kernel)
		if err != nil {
			return nil, err
		}
		forceKernel, forced = k, true
	}
	rep := &BatchBenchReport{}
	rep.Config.Rows = c.Rows
	rep.Config.Trees = c.Trees
	rep.Config.Depth = c.Depth
	rep.Config.Workers = c.Workers
	rep.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	// Measure the per-variant gate table for the report, then restore
	// whatever the process had: a short-budget ladder is noisy, and a
	// bench run must not leave noise gates installed for engines the
	// embedding process constructs later. (The engines measured below
	// self-calibrate on the real test rows, so they never read this
	// table anyway.)
	prev := treeexec.CurrentInterleaveGates()
	rep.Gates = treeexec.Calibrate(4 * c.MinDuration)
	treeexec.SetInterleaveGates(prev)
	for _, ds := range dataset.Names() {
		full, err := dataset.Generate(ds, c.Rows, c.Seed)
		if err != nil {
			return nil, err
		}
		train, test := full.Split(0.75, c.Seed)
		forest, err := cart.TrainForest(train, cart.Config{
			NumTrees: c.Trees, MaxDepth: c.Depth, Seed: c.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: training %s: %w", ds, err)
		}
		rows := test.Features
		if len(rows) == 0 {
			return nil, fmt.Errorf("bench: empty test set for %s", ds)
		}

		perTree, err := treeexec.NewFLInt(forest)
		if err != nil {
			return nil, err
		}
		rps, err := c.timeRows(func() (int, error) {
			if _, err := treeexec.Batch(perTree, rows, c.Workers); err != nil {
				return 0, fmt.Errorf("bench: %s per-tree batch: %w", ds, err)
			}
			return len(rows), nil
		})
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, BatchBenchRow{
			Dataset: ds, Variant: "flint", RowsPerSec: rps,
		})

		for _, v := range []treeexec.FlatVariant{treeexec.FlatFLInt, treeexec.FlatCompact} {
			e, err := treeexec.NewFlat(forest, v)
			if err != nil {
				return nil, err
			}
			if forced {
				// Pin before calibrating: the width is then timed under
				// the forced kernel, which is the pair an A/B run wants.
				e.SetKernel(forceKernel)
			}
			// 4x the per-variant budget: the compact slate is up to 18
			// candidates (four kernels x four widths plus the width-16
			// walk's compaction pair), and the report's whole point is
			// the full ladder — a starved budget drops exactly the
			// trailing (newest) candidates from the record.
			_, ladder := e.CalibrateInterleaveRowsLadder(rows, 4*c.MinDuration)
			pool := treeexec.NewBatcher(e, c.Workers, 0)
			out := make([]int32, len(rows))
			rps, err := c.timeRows(func() (int, error) {
				out = pool.Predict(rows, out)
				return len(rows), nil
			})
			pool.Close()
			if err != nil {
				return nil, err
			}
			nodes := e.ArenaNodes()
			bytes := e.ArenaBytes()
			row := BatchBenchRow{
				Dataset: ds, Variant: e.Name(), RowsPerSec: rps,
				ArenaNodes: nodes, ArenaBytes: bytes,
				Interleave:  e.Interleave(),
				Kernel:      e.Kernel().String(),
				ISA:         treeexec.DetectedISA(),
				CalibSource: e.CalibrationSource(),
				Ladder:      ladder,
			}
			if nodes > 0 {
				row.BytesPerNode = float64(bytes) / float64(nodes)
			}
			if e.Variant() == treeexec.FlatCompact {
				row.PrunedFeatures = e.PrunedFeatures()
				row.NumFeatures = e.NumFeatures()
			}
			rep.Results = append(rep.Results, row)
		}
	}
	return rep, nil
}

// WriteBatchBenchJSON writes the report as indented JSON.
func WriteBatchBenchJSON(w io.Writer, rep *BatchBenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
