package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"flint/internal/asmsim"
)

func tinyConfig() SweepConfig {
	return SweepConfig{
		Datasets:   []string{"magic", "wine"},
		TreeCounts: []int{1, 3},
		Depths:     []int{2, 5},
		Rows:       240,
		Seed:       3,
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", g)
	}
	if g := GeoMean([]float64{1, 1, 1}); g != 1 {
		t.Errorf("GeoMean(1,1,1) = %v", g)
	}
	if g := GeoMean([]float64{0.5}); g != 0.5 {
		t.Errorf("GeoMean(0.5) = %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean(empty) must panic")
		}
	}()
	GeoMean(nil)
}

func TestVariance(t *testing.T) {
	if v := Variance([]float64{1, 1, 1}); v != 0 {
		t.Errorf("Variance constant = %v", v)
	}
	if v := Variance([]float64{1, 3}); math.Abs(v-1) > 1e-12 {
		t.Errorf("Variance(1,3) = %v, want 1", v)
	}
	if v := Variance(nil); v != 0 {
		t.Errorf("Variance(nil) = %v", v)
	}
}

func TestNormalized(t *testing.T) {
	r := &Results{Cells: []Cell{
		{Backend: "b", Dataset: "d", Trees: 1, MaxDepth: 5, Impl: ImplNaive, Cost: 10},
		{Backend: "b", Dataset: "d", Trees: 1, MaxDepth: 5, Impl: ImplFLInt, Cost: 7},
		{Backend: "b", Dataset: "d", Trees: 1, MaxDepth: 5, Impl: ImplCAGS, Cost: 9},
		// A grid point with no baseline must be dropped.
		{Backend: "b", Dataset: "d", Trees: 2, MaxDepth: 5, Impl: ImplFLInt, Cost: 5},
	}}
	norm := r.Normalized(ImplNaive)
	if len(norm) != 3 {
		t.Fatalf("normalized %d cells, want 3", len(norm))
	}
	for _, c := range norm {
		switch c.Impl {
		case ImplNaive:
			if c.Cost != 1 {
				t.Errorf("naive normalized to %v", c.Cost)
			}
		case ImplFLInt:
			if math.Abs(c.Cost-0.7) > 1e-12 {
				t.Errorf("flint normalized to %v", c.Cost)
			}
		case ImplCAGS:
			if math.Abs(c.Cost-0.9) > 1e-12 {
				t.Errorf("cags normalized to %v", c.Cost)
			}
		}
	}
}

func TestFigure3AndTableAggregation(t *testing.T) {
	r := &Results{}
	// Two datasets, two depths; flint always at 0.8, naive at 1.0.
	for _, ds := range []string{"a", "b"} {
		for _, d := range []int{5, 20} {
			r.Cells = append(r.Cells,
				Cell{Backend: "x", Dataset: ds, Trees: 1, MaxDepth: d, Impl: ImplNaive, Cost: 100},
				Cell{Backend: "x", Dataset: ds, Trees: 1, MaxDepth: d, Impl: ImplFLInt, Cost: 80},
			)
		}
	}
	series := Figure3(r, ImplNaive)
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2", len(series))
	}
	for _, s := range series {
		if len(s.Depths) != 2 || s.Depths[0] != 5 || s.Depths[1] != 20 {
			t.Errorf("series depths = %v", s.Depths)
		}
		want := 1.0
		if s.Impl == ImplFLInt {
			want = 0.8
		}
		for i, m := range s.Mean {
			if math.Abs(m-want) > 1e-9 {
				t.Errorf("series %s depth %d mean = %v, want %v", s.Impl, s.Depths[i], m, want)
			}
		}
	}
	rows := Table(r, ImplNaive, []Impl{ImplFLInt})
	if len(rows) != 1 {
		t.Fatalf("got %d table rows", len(rows))
	}
	if math.Abs(rows[0].Overall-0.8) > 1e-9 || math.Abs(rows[0].Deep-0.8) > 1e-9 {
		t.Errorf("table row = %+v", rows[0])
	}
}

func TestRunSweepInterp(t *testing.T) {
	backend := &InterpBackend{MinDuration: time.Millisecond, WithExtensions: true}
	res, err := RunSweep(tinyConfig(), []Backend{backend}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets x 2 tree counts x 2 depths x 10 impls (the 6 per-tree
	// engines plus the flat-arena single-row, blocked-batch,
	// compact-arena and fused-kernel entries).
	if want := 2 * 2 * 2 * 10; len(res.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		if c.Cost <= 0 {
			t.Errorf("non-positive cost in %+v", c)
		}
	}
	// The softfloat baseline must be slower than flint in the aggregate
	// (individual tiny-tree cells are dominated by fixed overheads and
	// timing noise, so only the geometric mean is asserted).
	rows := Table(res, ImplFLInt, []Impl{ImplSoftFloat})
	if len(rows) != 1 {
		t.Fatalf("got %d table rows", len(rows))
	}
	if rows[0].Overall <= 1 {
		t.Errorf("softfloat geomean %.3f relative to flint, want > 1", rows[0].Overall)
	}
}

func TestRunSweepSim(t *testing.T) {
	m, _ := asmsim.MachineByName("x86-server")
	backend := &SimBackend{Machine: m, MaxRows: 24, WithASM: true}
	var progress bytes.Buffer
	res, err := RunSweep(tinyConfig(), []Backend{backend}, &progress)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2 * 5; len(res.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(res.Cells), want)
	}
	if !strings.Contains(progress.String(), "sim:x86-server") {
		t.Error("progress log missing backend name")
	}
	// Reproduction of the paper's ordering on the simulated machine:
	// flint <= naive and cags-flint <= cags for the geometric mean.
	rows := Table(res, ImplNaive, []Impl{ImplCAGS, ImplFLInt, ImplCAGSFLInt, ImplFLIntASM})
	if len(rows) != 4 {
		t.Fatalf("got %d table rows", len(rows))
	}
	byImpl := map[Impl]TableRow{}
	for _, r := range rows {
		byImpl[r.Impl] = r
	}
	if byImpl[ImplFLInt].Overall >= 1.0 {
		t.Errorf("flint overall %.3f, want < 1", byImpl[ImplFLInt].Overall)
	}
	if byImpl[ImplCAGSFLInt].Overall >= byImpl[ImplCAGS].Overall {
		t.Errorf("cags-flint (%.3f) not better than cags (%.3f)",
			byImpl[ImplCAGSFLInt].Overall, byImpl[ImplCAGS].Overall)
	}
}

func TestRunSweepCC(t *testing.T) {
	backend := &CCBackend{}
	if !backend.Available() {
		t.Skip("no C compiler available")
	}
	cfg := SweepConfig{
		Datasets:   []string{"magic"},
		TreeCounts: []int{2},
		Depths:     []int{4},
		Rows:       200,
		Seed:       5,
	}
	res, err := RunSweep(cfg, []Backend{backend}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Four if-else realizations plus the table-driven form (the trained
	// forest fits the compact encoding, so its row must be measured).
	if len(res.Cells) != 5 {
		t.Fatalf("got %d cells, want 5", len(res.Cells))
	}
	seenTable := false
	for _, c := range res.Cells {
		if c.Cost <= 0 {
			t.Errorf("non-positive cost: %+v", c)
		}
		if c.Impl == ImplTableC {
			seenTable = true
		}
	}
	if !seenTable {
		t.Error("cc sweep produced no measured row for the table-driven realization")
	}
}

func TestFormatters(t *testing.T) {
	r := &Results{Cells: []Cell{
		{Backend: "x", Dataset: "d", Trees: 1, MaxDepth: 5, Impl: ImplNaive, Cost: 10},
		{Backend: "x", Dataset: "d", Trees: 1, MaxDepth: 5, Impl: ImplFLInt, Cost: 8},
		{Backend: "x", Dataset: "d", Trees: 1, MaxDepth: 20, Impl: ImplNaive, Cost: 10},
		{Backend: "x", Dataset: "d", Trees: 1, MaxDepth: 20, Impl: ImplFLInt, Cost: 7},
	}}
	series := Figure3(r, ImplNaive)
	var fig bytes.Buffer
	if err := WriteFigure3(&fig, series); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"depth", "flint", "0.800", "0.700"} {
		if !strings.Contains(fig.String(), want) {
			t.Errorf("figure output missing %q\n%s", want, fig.String())
		}
	}
	var tab bytes.Buffer
	if err := WriteTable(&tab, "Table II", Table(r, ImplNaive, []Impl{ImplFLInt})); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table II", "flint", "0.75x", "0.70x"} {
		if !strings.Contains(tab.String(), want) {
			t.Errorf("table output missing %q\n%s", want, tab.String())
		}
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "x,d,1,5,naive,10") {
		t.Errorf("CSV output wrong:\n%s", csv.String())
	}
	var scsv bytes.Buffer
	if err := WriteSeriesCSV(&scsv, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scsv.String(), "x,flint,5,0.8") {
		t.Errorf("series CSV output wrong:\n%s", scsv.String())
	}
}

func TestPaperAndQuickGrids(t *testing.T) {
	p := PaperGrid()
	if len(p.Datasets) != 5 || len(p.TreeCounts) != 9 || len(p.Depths) != 7 {
		t.Errorf("PaperGrid shape wrong: %+v", p)
	}
	q := QuickGrid()
	if len(q.Depths) != 7 {
		t.Errorf("QuickGrid must keep the paper's depth axis: %+v", q)
	}
	d := SweepConfig{}.withDefaults()
	if len(d.Datasets) == 0 || d.Seed == 0 {
		t.Error("withDefaults incomplete")
	}
}
