package bench

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"flint/internal/cctool"
	"flint/internal/codegen"
	"flint/internal/treeexec"
)

// CCBackend reproduces the paper's actual toolchain: it generates the
// four C implementations of Section V-A (naive, CAGS, FLInt,
// CAGS+FLInt), compiles them with the system C compiler at -O2 and times
// the binary on the host. Costs are nanoseconds per inference.
//
// The CAGS implementations apply the branch-swapping half of Chen et
// al.'s optimization at code generation time; see EXPERIMENTS.md for the
// scope note on grouping.
type CCBackend struct {
	// CC is the compiler command. Default "cc".
	CC string
	// MaxRows caps the number of test rows embedded in the binary.
	// Default 128.
	MaxRows int
	// TargetVisits controls the repetition count: repetitions are chosen
	// so that roughly TargetVisits node visits are executed per
	// implementation. Default 2e7.
	TargetVisits float64
	// WorkDir keeps intermediate files when set (for debugging);
	// otherwise a temporary directory is used and removed.
	WorkDir string
}

// Name implements Backend.
func (b *CCBackend) Name() string { return "cc" }

func (b *CCBackend) cc() string {
	if b.CC != "" {
		return b.CC
	}
	if p, ok := cctool.Path(); ok {
		return p
	}
	return "cc"
}

// Available reports whether a C compiler can be found: the explicitly
// configured CC if set, otherwise whatever internal/cctool detects.
func (b *CCBackend) Available() bool {
	if b.CC != "" {
		_, err := exec.LookPath(b.CC)
		return err == nil
	}
	_, ok := cctool.Path()
	return ok
}

// Measure implements Backend.
func (b *CCBackend) Measure(w *Workload) (map[Impl]float64, error) {
	maxRows := b.MaxRows
	if maxRows <= 0 {
		maxRows = 128
	}
	rows := w.Test.Features
	if len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("bench: empty test set")
	}
	target := b.TargetVisits
	if target <= 0 {
		target = 2e7
	}
	visitsPerInference := float64(w.Trees * (w.MaxDepth + 1))
	reps := int(target / (visitsPerInference * float64(len(rows))))
	if reps < 3 {
		reps = 3
	}
	if reps > 100000 {
		reps = 100000
	}

	type ccImpl struct {
		impl    Impl
		prefix  string
		variant codegen.Variant
		cags    bool
		mode    codegen.Mode
	}
	impls := []ccImpl{
		{ImplNaive, "naive", codegen.VariantFloat, false, codegen.ModeIfElse},
		{ImplCAGS, "cags", codegen.VariantFloat, true, codegen.ModeIfElse},
		{ImplFLInt, "flint", codegen.VariantFLInt, false, codegen.ModeIfElse},
		{ImplCAGSFLInt, "cagsflint", codegen.VariantFLInt, true, codegen.ModeIfElse},
	}
	// The table-driven integer-only realization rides along whenever the
	// forest fits the compact encoding, so its row lands next to the
	// if-else realizations in every cc sweep.
	if ok, _ := treeexec.Compactable(w.Forest); ok {
		impls = append(impls, ccImpl{ImplTableC, "table", codegen.VariantFLInt, false, codegen.ModeTable})
	}

	var src bytes.Buffer
	src.WriteString("#include <stdio.h>\n#include <time.h>\n\n")
	for _, im := range impls {
		err := codegen.Forest(&src, w.Forest, codegen.Options{
			Language: codegen.LangC, Variant: im.variant, CAGS: im.cags, Mode: im.mode, Prefix: im.prefix,
		})
		if err != nil {
			return nil, err
		}
		src.WriteString("\n")
	}
	fmt.Fprintf(&src, "static const unsigned int data[%d][%d] = {\n", len(rows), len(rows[0]))
	for _, row := range rows {
		src.WriteString("\t{")
		for j, v := range row {
			if j > 0 {
				src.WriteString(", ")
			}
			fmt.Fprintf(&src, "0x%08xu", math.Float32bits(v))
		}
		src.WriteString("},\n")
	}
	src.WriteString("};\n\n")
	src.WriteString(`static long long now_ns(void) {
	struct timespec ts;
	clock_gettime(CLOCK_MONOTONIC, &ts);
	return ts.tv_sec * 1000000000LL + ts.tv_nsec;
}

typedef int (*pred_fn)(const float *);

int main(void) {
`)
	fmt.Fprintf(&src, "\tstatic const pred_fn fns[%d] = {", len(impls))
	for i, im := range impls {
		if i > 0 {
			src.WriteString(", ")
		}
		src.WriteString(im.prefix + "_predict")
	}
	src.WriteString("};\n")
	fmt.Fprintf(&src, "\tstatic const char *names[%d] = {", len(impls))
	for i, im := range impls {
		if i > 0 {
			src.WriteString(", ")
		}
		fmt.Fprintf(&src, "%q", string(im.impl))
	}
	src.WriteString("};\n")
	fmt.Fprintf(&src, `	volatile long long sink = 0;
	const int reps = %d, nrows = %d;
	for (int f = 0; f < %d; f++) {
		/* warm-up pass */
		for (int i = 0; i < nrows; i++) sink += fns[f]((const float *)data[i]);
		long long t0 = now_ns();
		for (int r = 0; r < reps; r++)
			for (int i = 0; i < nrows; i++)
				sink += fns[f]((const float *)data[i]);
		long long t1 = now_ns();
		printf("%%s=%%.4f\n", names[f], (double)(t1 - t0) / ((double)reps * nrows));
	}
	return sink == -1;
}
`, reps, len(rows), len(impls))

	dir := b.WorkDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "flintbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	cPath := filepath.Join(dir, fmt.Sprintf("%s_t%d_d%d.c", w.Dataset, w.Trees, w.MaxDepth))
	binPath := strings.TrimSuffix(cPath, ".c")
	if err := os.WriteFile(cPath, src.Bytes(), 0o644); err != nil {
		return nil, err
	}
	if out, err := exec.Command(b.cc(), "-O2", "-o", binPath, cPath).CombinedOutput(); err != nil {
		return nil, fmt.Errorf("bench: %s failed: %v\n%s", b.cc(), err, out)
	}
	out, err := exec.Command(binPath).Output()
	if err != nil {
		return nil, fmt.Errorf("bench: compiled benchmark failed: %v", err)
	}

	costs := make(map[Impl]float64, len(impls))
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		name, val, ok := strings.Cut(strings.TrimSpace(line), "=")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bench: parsing %q: %w", line, err)
		}
		costs[Impl(name)] = v
	}
	for _, im := range impls {
		if _, ok := costs[im.impl]; !ok {
			return nil, fmt.Errorf("bench: compiled benchmark produced no result for %s", im.impl)
		}
	}
	return costs, nil
}
