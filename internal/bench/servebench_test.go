package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestServeBenchRuns is a correctness smoke for the serving benchmark:
// a quick configuration must produce one verified row per workload with
// coherent counters, and the JSON document must round-trip.
func TestServeBenchRuns(t *testing.T) {
	rep, err := ServeBench{
		Rows: 400, Trees: 5, Depth: 7, Workers: 2, Clients: 4,
		MinDuration: 30 * time.Millisecond, Seed: 9,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range rep.Results {
		if r.Verified == 0 || r.Requests == 0 || r.RowsServed == 0 {
			t.Fatalf("%s: empty measurement: %+v", r.Dataset, r)
		}
		if r.RowsPerSec <= 0 || r.P99Ms <= 0 {
			t.Fatalf("%s: missing derived numbers: %+v", r.Dataset, r)
		}
		if r.CoalescedBatches > r.Requests {
			t.Fatalf("%s: more batches than requests (%d > %d) — coalescing backwards", r.Dataset, r.CoalescedBatches, r.Requests)
		}
	}
	var buf bytes.Buffer
	if err := WriteServeBenchJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back ServeBenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("JSON round-trip lost rows: %d != %d", len(back.Results), len(rep.Results))
	}
}
