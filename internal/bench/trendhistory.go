package bench

import (
	"fmt"
	"io"
)

// Trend history generalizes the two-report diff to a walk over the last
// N BENCH_batch.json artifacts: one row per (workload, variant) cell,
// one column per run, oldest first, so slow drift that no single
// run-over-run delta exposes is visible as a trajectory. Like the diff
// it is report-only context — wall-clock numbers from shared runners
// must never gate.

// TrendSeries is one (workload, variant) cell's rows/s trajectory
// across a chronological report sequence. Presence is explicit per run,
// for the same reason TrendDelta tracks it: a measured 0 is not a
// missing cell.
type TrendSeries struct {
	Dataset string
	Variant string
	Rows    []float64 // rows/s per report, oldest first
	Has     []bool    // whether each report contains this cell
}

// Trend returns the overall relative change in percent between the
// oldest and newest present points, and whether at least two points
// exist to compare (the oldest also being non-zero).
func (s TrendSeries) Trend() (pct float64, ok bool) {
	first, last := -1, -1
	for i, h := range s.Has {
		if !h {
			continue
		}
		if first < 0 {
			first = i
		}
		last = i
	}
	if first < 0 || first == last || s.Rows[first] == 0 {
		return 0, false
	}
	return (s.Rows[last] - s.Rows[first]) / s.Rows[first] * 100, true
}

// TrendHistory aligns a chronological sequence of batch reports (oldest
// first) by (dataset, variant). Cell ordering follows the newest report
// that mentions each cell pair, scanning newest to oldest, so current
// cells lead and long-dropped ones trail. Duplicate cells within one
// report keep the first occurrence, like TrendDiff.
func TrendHistory(reps []*BatchBenchReport) []TrendSeries {
	type key struct{ ds, v string }
	index := make(map[key]int)
	var out []TrendSeries
	for ri := len(reps) - 1; ri >= 0; ri-- {
		for _, r := range reps[ri].Results {
			k := key{r.Dataset, r.Variant}
			si, ok := index[k]
			if !ok {
				si = len(out)
				index[k] = si
				out = append(out, TrendSeries{
					Dataset: r.Dataset, Variant: r.Variant,
					Rows: make([]float64, len(reps)),
					Has:  make([]bool, len(reps)),
				})
			}
			if !out[si].Has[ri] {
				out[si].Rows[ri], out[si].Has[ri] = r.RowsPerSec, true
			}
		}
	}
	return out
}

// WriteTrendHistory renders a trajectory table: one rows/s column per
// label (chronological, oldest first; labels index the reports handed
// to TrendHistory) and a trailing overall percentage where it is
// defined. Absent cells print as "-".
func WriteTrendHistory(w io.Writer, labels []string, series []TrendSeries) error {
	if _, err := fmt.Fprintf(w, "%-12s %-13s", "dataset", "variant"); err != nil {
		return err
	}
	for _, l := range labels {
		if _, err := fmt.Fprintf(w, " %12s", l); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, " %9s\n", "trend"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "%-12s %-13s", s.Dataset, s.Variant); err != nil {
			return err
		}
		for i := range labels {
			var err error
			if i < len(s.Has) && s.Has[i] {
				_, err = fmt.Fprintf(w, " %12.0f", s.Rows[i])
			} else {
				_, err = fmt.Fprintf(w, " %12s", "-")
			}
			if err != nil {
				return err
			}
		}
		var err error
		if pct, ok := s.Trend(); ok {
			_, err = fmt.Fprintf(w, " %+8.1f%%\n", pct)
		} else {
			_, err = fmt.Fprintf(w, " %9s\n", "-")
		}
		if err != nil {
			return err
		}
	}
	return nil
}
