package bench

import (
	"fmt"
	"io"
	"strings"
)

// Trend history generalizes the two-report diff to a walk over the last
// N BENCH_batch.json artifacts: one row per (workload, variant) cell,
// one column per run, oldest first, so slow drift that no single
// run-over-run delta exposes is visible as a trajectory. Like the diff
// it is report-only context — wall-clock numbers from shared runners
// must never gate.

// TrendSeries is one (workload, variant) cell's rows/s trajectory
// across a chronological report sequence. Presence is explicit per run,
// for the same reason TrendDelta tracks it: a measured 0 is not a
// missing cell.
type TrendSeries struct {
	Dataset string
	Variant string
	Rows    []float64 // rows/s per report, oldest first
	Has     []bool    // whether each report contains this cell
}

// Trend returns the overall relative change in percent between the
// oldest and newest present points, and whether at least two points
// exist to compare (the oldest also being non-zero).
func (s TrendSeries) Trend() (pct float64, ok bool) {
	first, last := -1, -1
	for i, h := range s.Has {
		if !h {
			continue
		}
		if first < 0 {
			first = i
		}
		last = i
	}
	if first < 0 || first == last || s.Rows[first] == 0 {
		return 0, false
	}
	return (s.Rows[last] - s.Rows[first]) / s.Rows[first] * 100, true
}

// sparkRunes are the eight block heights a sparkline quantizes into.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the trajectory as one rune per report: block
// heights min-max scaled within this series (each cell's drift is its
// own story — absolute rows/s differ by orders of magnitude across
// variants), '·' for runs the cell is absent from, and the middle
// block for a flat series, which has no range to scale into.
func (s TrendSeries) Sparkline() string {
	min, max := 0.0, 0.0
	seen := false
	for i, h := range s.Has {
		if !h {
			continue
		}
		if !seen || s.Rows[i] < min {
			min = s.Rows[i]
		}
		if !seen || s.Rows[i] > max {
			max = s.Rows[i]
		}
		seen = true
	}
	var b strings.Builder
	for i, h := range s.Has {
		switch {
		case !h:
			b.WriteRune('·')
		case max == min:
			b.WriteRune(sparkRunes[len(sparkRunes)/2])
		default:
			idx := int((s.Rows[i]-min)/(max-min)*float64(len(sparkRunes)-1) + 0.5)
			b.WriteRune(sparkRunes[idx])
		}
	}
	return b.String()
}

// TrendHistory aligns a chronological sequence of batch reports (oldest
// first) by (dataset, variant). Cell ordering follows the newest report
// that mentions each cell pair, scanning newest to oldest, so current
// cells lead and long-dropped ones trail. Duplicate cells within one
// report keep the first occurrence, like TrendDiff.
func TrendHistory(reps []*BatchBenchReport) []TrendSeries {
	type key struct{ ds, v string }
	index := make(map[key]int)
	var out []TrendSeries
	for ri := len(reps) - 1; ri >= 0; ri-- {
		for _, r := range reps[ri].Results {
			k := key{r.Dataset, r.Variant}
			si, ok := index[k]
			if !ok {
				si = len(out)
				index[k] = si
				out = append(out, TrendSeries{
					Dataset: r.Dataset, Variant: r.Variant,
					Rows: make([]float64, len(reps)),
					Has:  make([]bool, len(reps)),
				})
			}
			if !out[si].Has[ri] {
				out[si].Rows[ri], out[si].Has[ri] = r.RowsPerSec, true
			}
		}
	}
	return out
}

// maxTrendCols caps the numeric rows/s columns WriteTrendHistory prints
// — beyond it the oldest runs collapse into a "..." column. The
// sparkline always spans the full history, so a long artifact walk
// stays one readable line per cell rather than a 30-column table.
const maxTrendCols = 6

// WriteTrendHistory renders a trajectory table: one rows/s column per
// label (chronological, oldest first; labels index the reports handed
// to TrendHistory), a trailing overall percentage where it is defined,
// and a per-cell sparkline over the full history. When the history is
// longer than maxTrendCols, numeric columns cover only the newest runs
// (the sparkline still shows all of them). Absent cells print as "-"
// in the columns and '·' in the sparkline.
func WriteTrendHistory(w io.Writer, labels []string, series []TrendSeries) error {
	start := 0
	if len(labels) > maxTrendCols {
		start = len(labels) - maxTrendCols
	}
	if _, err := fmt.Fprintf(w, "%-12s %-13s", "dataset", "variant"); err != nil {
		return err
	}
	if start > 0 {
		if _, err := fmt.Fprintf(w, " %12s", "..."); err != nil {
			return err
		}
	}
	for _, l := range labels[start:] {
		if _, err := fmt.Fprintf(w, " %12s", l); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, " %9s  %s\n", "trend", "history"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "%-12s %-13s", s.Dataset, s.Variant); err != nil {
			return err
		}
		if start > 0 {
			if _, err := fmt.Fprintf(w, " %12s", "..."); err != nil {
				return err
			}
		}
		for i := start; i < len(labels); i++ {
			var err error
			if i < len(s.Has) && s.Has[i] {
				_, err = fmt.Fprintf(w, " %12.0f", s.Rows[i])
			} else {
				_, err = fmt.Fprintf(w, " %12s", "-")
			}
			if err != nil {
				return err
			}
		}
		var err error
		if pct, ok := s.Trend(); ok {
			_, err = fmt.Fprintf(w, " %+8.1f%%", pct)
		} else {
			_, err = fmt.Fprintf(w, " %9s", "-")
		}
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %s\n", s.Sparkline()); err != nil {
			return err
		}
	}
	return nil
}
