package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"flint/internal/dataset"
	"flint/internal/treeexec"
)

// TestBatchBenchRun runs the CI throughput harness at a tiny
// configuration and checks the report's shape: every workload measured
// for every variant, positive rates, and the compact arena's footprint
// advantage visible in bytes/node.
func TestBatchBenchRun(t *testing.T) {
	// Big enough that node storage dominates the per-feature cut tables
	// in the compact footprint (tiny forests amortize the tables over
	// too few nodes for the bytes/node assertion below).
	rep, err := BatchBench{
		Rows: 500, Trees: 10, Depth: 9, Workers: 2,
		MinDuration: 2 * time.Millisecond,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantVariants := []string{"flint", "flat-flint", "flat-compact"}
	if got, want := len(rep.Results), len(dataset.Names())*len(wantVariants); got != want {
		t.Fatalf("%d result rows, want %d", got, want)
	}
	perDS := map[string]map[string]BatchBenchRow{}
	for _, r := range rep.Results {
		if r.RowsPerSec <= 0 {
			t.Errorf("%s/%s: rows/s = %v", r.Dataset, r.Variant, r.RowsPerSec)
		}
		if perDS[r.Dataset] == nil {
			perDS[r.Dataset] = map[string]BatchBenchRow{}
		}
		perDS[r.Dataset][r.Variant] = r
	}
	for _, ds := range dataset.Names() {
		for _, v := range wantVariants {
			if _, ok := perDS[ds][v]; !ok {
				t.Errorf("missing %s/%s", ds, v)
			}
		}
		flat, compact := perDS[ds]["flat-flint"], perDS[ds]["flat-compact"]
		if flat.BytesPerNode != 16 {
			t.Errorf("%s: flat bytes/node = %v, want 16", ds, flat.BytesPerNode)
		}
		// 8 B/node plus the amortized cut tables: strictly below the
		// AoS arena on any non-degenerate forest.
		if compact.BytesPerNode <= 0 || compact.BytesPerNode >= 16 {
			t.Errorf("%s: compact bytes/node = %v, want in (0,16)", ds, compact.BytesPerNode)
		}
		if compact.Interleave == 0 {
			t.Errorf("%s: compact interleave unset", ds)
		}
		// The compact row records its quantization cost: how many of the
		// input columns the forest actually splits on.
		if compact.PrunedFeatures <= 0 || compact.NumFeatures <= 0 ||
			compact.PrunedFeatures > compact.NumFeatures {
			t.Errorf("%s: compact pruned/total features = %d/%d",
				ds, compact.PrunedFeatures, compact.NumFeatures)
		}
		if flat.PrunedFeatures != 0 {
			t.Errorf("%s: flat row carries pruned features %d", ds, flat.PrunedFeatures)
		}
		// Every arena row records the kernel it was measured with; the
		// AoS arena has no fused form, so its row is always branchy.
		if flat.Kernel != "branchy" {
			t.Errorf("%s: flat kernel = %q, want branchy", ds, flat.Kernel)
		}
		switch compact.Kernel {
		case "branchy", "fused", "simd-quant", "simd":
		default:
			t.Errorf("%s: compact kernel = %q", ds, compact.Kernel)
		}
		// The compact row carries the full calibration ladder — losing
		// candidates included, exactly one flagged winner — while the
		// per-tree baseline (which never calibrates) carries none.
		if len(compact.Ladder) == 0 {
			t.Errorf("%s: compact row has no calibration ladder", ds)
		}
		winners := 0
		for _, mt := range compact.Ladder {
			if mt.RowsPerSec <= 0 {
				t.Errorf("%s: ladder entry %+v has non-positive rows/s", ds, mt)
			}
			if mt.Winner {
				winners++
			}
		}
		if len(compact.Ladder) > 0 && winners != 1 {
			t.Errorf("%s: ladder has %d winners, want 1", ds, winners)
		}
		if base, ok := perDS[ds]["flint"]; ok && len(base.Ladder) != 0 {
			t.Errorf("%s: per-tree baseline row carries a ladder", ds)
		}
	}
	// The report carries the measured per-variant gate table (monotone
	// per set, as Calibrate guarantees).
	g := rep.Gates
	if g == (treeexec.InterleaveGates{}) {
		t.Error("report gates are zero-valued")
	}
	if g.Min2 > g.Min4 || g.Min4 > g.Min8 ||
		g.CompactMin2 > g.CompactMin4 || g.CompactMin4 > g.CompactMin8 {
		t.Errorf("report gates not monotone: %+v", g)
	}

	var buf bytes.Buffer
	if err := WriteBatchBenchJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back BatchBenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Errorf("round trip lost rows: %d vs %d", len(back.Results), len(rep.Results))
	}
}

// TestBatchBenchForcedKernel pins the A/B switch: a forced kernel lands
// in every compact row of the report (the AoS rows stay branchy — they
// have no fused form), and an unknown kernel name errors out instead of
// silently measuring the default.
func TestBatchBenchForcedKernel(t *testing.T) {
	for _, kernel := range []string{"branchy", "fused", "simd-quant", "simd"} {
		rep, err := BatchBench{
			Rows: 300, Trees: 4, Depth: 6, Workers: 1,
			MinDuration: time.Millisecond, Kernel: kernel,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Results {
			switch r.Variant {
			case "flat-compact":
				if r.Kernel != kernel {
					t.Errorf("%s/%s: kernel = %q, want forced %q", r.Dataset, r.Variant, r.Kernel, kernel)
				}
				if r.ISA != treeexec.DetectedISA() {
					t.Errorf("%s/%s: isa = %q, want %q", r.Dataset, r.Variant, r.ISA, treeexec.DetectedISA())
				}
				// A pinned kernel restricts the whole ladder to that
				// kernel's candidates: the width is timed under the pair
				// an A/B run asked for.
				for _, mt := range r.Ladder {
					if mt.Kernel != kernel {
						t.Errorf("%s/%s: forced %q but ladder times %q", r.Dataset, r.Variant, kernel, mt.Kernel)
					}
				}
			case "flat-flint":
				if r.Kernel != "branchy" {
					t.Errorf("%s/%s: kernel = %q, want branchy", r.Dataset, r.Variant, r.Kernel)
				}
			}
		}
	}
	if _, err := (BatchBench{
		Rows: 300, Trees: 4, Depth: 6, MinDuration: time.Millisecond, Kernel: "turbo",
	}).Run(); err == nil {
		t.Error("unknown kernel name accepted")
	}
}

// TestTimeRowsPropagatesError pins the timing loop's error contract: a
// failing measurement function surfaces as a returned error — from the
// warm-up call and from mid-loop — never as a panic.
func TestTimeRowsPropagatesError(t *testing.T) {
	c := BatchBench{MinDuration: time.Millisecond}.withDefaults()
	sentinel := errors.New("batch failed")
	if _, err := c.timeRows(func() (int, error) { return 0, sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("warm-up error = %v, want sentinel", err)
	}
	calls := 0
	if _, err := c.timeRows(func() (int, error) {
		calls++
		if calls > 1 {
			return 0, sentinel
		}
		return 5, nil
	}); !errors.Is(err, sentinel) {
		t.Errorf("mid-loop error = %v, want sentinel", err)
	}
	// A zero-row warm-up short-circuits without error.
	if rps, err := c.timeRows(func() (int, error) { return 0, nil }); err != nil || rps != 0 {
		t.Errorf("zero-row measurement = %v, %v", rps, err)
	}
}
