package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"flint/internal/dataset"
)

// TestBatchBenchRun runs the CI throughput harness at a tiny
// configuration and checks the report's shape: every workload measured
// for every variant, positive rates, and the compact arena's footprint
// advantage visible in bytes/node.
func TestBatchBenchRun(t *testing.T) {
	// Big enough that node storage dominates the per-feature cut tables
	// in the compact footprint (tiny forests amortize the tables over
	// too few nodes for the bytes/node assertion below).
	rep, err := BatchBench{
		Rows: 500, Trees: 10, Depth: 9, Workers: 2,
		MinDuration: 2 * time.Millisecond,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantVariants := []string{"flint", "flat-flint", "flat-compact"}
	if got, want := len(rep.Results), len(dataset.Names())*len(wantVariants); got != want {
		t.Fatalf("%d result rows, want %d", got, want)
	}
	perDS := map[string]map[string]BatchBenchRow{}
	for _, r := range rep.Results {
		if r.RowsPerSec <= 0 {
			t.Errorf("%s/%s: rows/s = %v", r.Dataset, r.Variant, r.RowsPerSec)
		}
		if perDS[r.Dataset] == nil {
			perDS[r.Dataset] = map[string]BatchBenchRow{}
		}
		perDS[r.Dataset][r.Variant] = r
	}
	for _, ds := range dataset.Names() {
		for _, v := range wantVariants {
			if _, ok := perDS[ds][v]; !ok {
				t.Errorf("missing %s/%s", ds, v)
			}
		}
		flat, compact := perDS[ds]["flat-flint"], perDS[ds]["flat-compact"]
		if flat.BytesPerNode != 16 {
			t.Errorf("%s: flat bytes/node = %v, want 16", ds, flat.BytesPerNode)
		}
		// 8 B/node plus the amortized cut tables: strictly below the
		// AoS arena on any non-degenerate forest.
		if compact.BytesPerNode <= 0 || compact.BytesPerNode >= 16 {
			t.Errorf("%s: compact bytes/node = %v, want in (0,16)", ds, compact.BytesPerNode)
		}
		if compact.Interleave == 0 {
			t.Errorf("%s: compact interleave unset", ds)
		}
	}

	var buf bytes.Buffer
	if err := WriteBatchBenchJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back BatchBenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Errorf("round trip lost rows: %d vs %d", len(back.Results), len(rep.Results))
	}
}
