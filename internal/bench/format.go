package bench

import (
	"fmt"
	"io"
	"sort"
)

// WriteFigure3 renders the depth series as the paper's Figure 3: one
// block per backend, one column per implementation, normalized geometric
// mean (and variance) per maximal depth.
func WriteFigure3(w io.Writer, series []Series) error {
	byBackend := map[string][]Series{}
	var backends []string
	for _, s := range series {
		if _, ok := byBackend[s.Backend]; !ok {
			backends = append(backends, s.Backend)
		}
		byBackend[s.Backend] = append(byBackend[s.Backend], s)
	}
	sort.Strings(backends)
	for _, b := range backends {
		ss := byBackend[b]
		if _, err := fmt.Fprintf(w, "Normalized execution time vs maximal tree depth — %s\n", b); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s", "depth")
		for _, s := range ss {
			fmt.Fprintf(w, "%14s", s.Impl)
		}
		fmt.Fprintln(w)
		depths := ss[0].Depths
		for di, d := range depths {
			fmt.Fprintf(w, "%-8d", d)
			for _, s := range ss {
				val, varc := lookupDepth(s, d)
				if val == 0 && di >= len(s.Depths) {
					fmt.Fprintf(w, "%14s", "-")
					continue
				}
				fmt.Fprintf(w, "  %.3f(±%.3f)", val, varc)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func lookupDepth(s Series, d int) (mean, variance float64) {
	for i, sd := range s.Depths {
		if sd == d {
			return s.Mean[i], s.Variance[i]
		}
	}
	return 0, 0
}

// WriteTable renders Table II / Table III rows: per backend, the overall
// geometric-mean normalized time and the deep-tree (D>=20) mean.
func WriteTable(w io.Writer, title string, rows []TableRow) error {
	if _, err := fmt.Fprintf(w, "%s\n%-16s %-12s %10s %12s\n", title, "backend", "impl", "overall", "depth>=20"); err != nil {
		return err
	}
	for _, r := range rows {
		deep := "-"
		if r.Deep > 0 {
			deep = fmt.Sprintf("%.2fx", r.Deep)
		}
		if _, err := fmt.Fprintf(w, "%-16s %-12s %9.2fx %12s\n", r.Backend, r.Impl, r.Overall, deep); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV dumps raw cells for external plotting.
func WriteCSV(w io.Writer, r *Results) error {
	if _, err := fmt.Fprintln(w, "backend,dataset,trees,max_depth,impl,cost"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%s,%g\n",
			c.Backend, c.Dataset, c.Trees, c.MaxDepth, c.Impl, c.Cost); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesCSV dumps Figure 3 series for external plotting.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprintln(w, "backend,impl,depth,geomean,variance"); err != nil {
		return err
	}
	for _, s := range series {
		for i := range s.Depths {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%g,%g\n",
				s.Backend, s.Impl, s.Depths[i], s.Mean[i], s.Variance[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
