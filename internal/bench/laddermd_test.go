package bench

import (
	"bytes"
	"strings"
	"testing"

	"flint/internal/treeexec"
)

// TestWriteLadderMarkdown pins the job-summary table's shape: one row
// per ladder candidate with the winner starred, refill rendered only
// where the candidate has one, ladder-less rows contributing nothing,
// and a ladder-less report degrading to a note rather than a header
// with no body.
func TestWriteLadderMarkdown(t *testing.T) {
	rep := trendReport(
		BatchBenchRow{Dataset: "magic", Variant: "flint", RowsPerSec: 100},
		BatchBenchRow{
			Dataset: "magic", Variant: "flat-compact", RowsPerSec: 900,
			Ladder: []treeexec.ModeTiming{
				{Width: 8, Kernel: "fused", RowsPerSec: 900, Winner: true},
				{Width: 16, Kernel: "simd", Refill: 6, RowsPerSec: 450},
			},
		},
	)
	var buf bytes.Buffer
	if err := WriteLadderMarkdown(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"| workload | variant | mode | rows/s | winner |",
		"| magic | flat-compact | x8 fused | 900 | ★ |",
		"| magic | flat-compact | x16 simd refill=6 | 450 |  |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "★"); got != 1 {
		t.Errorf("%d winners starred, want 1:\n%s", got, out)
	}
	if strings.Contains(out, "| magic | flint |") {
		t.Errorf("ladder-less baseline row rendered:\n%s", out)
	}

	buf.Reset()
	if err := WriteLadderMarkdown(&buf, trendReport(
		BatchBenchRow{Dataset: "wine", Variant: "flat-compact", RowsPerSec: 1},
	)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no calibration ladders") {
		t.Errorf("ladder-less report did not degrade to the note:\n%s", buf.String())
	}
}
