package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func histReport(cells ...BatchBenchRow) *BatchBenchReport {
	rep := &BatchBenchReport{}
	rep.Results = cells
	return rep
}

// TestTrendHistoryAlignment covers the trajectory alignment: cells
// present in every run, a cell appearing mid-history, a dropped cell,
// a measured zero (present, not missing), and duplicate cells keeping
// the first occurrence.
func TestTrendHistoryAlignment(t *testing.T) {
	reps := []*BatchBenchReport{
		histReport(
			BatchBenchRow{Dataset: "magic", Variant: "flat-flint", RowsPerSec: 100},
			BatchBenchRow{Dataset: "magic", Variant: "old-only", RowsPerSec: 7},
		),
		histReport(
			BatchBenchRow{Dataset: "magic", Variant: "flat-flint", RowsPerSec: 110},
			BatchBenchRow{Dataset: "magic", Variant: "flat-compact", RowsPerSec: 0}, // measured zero
		),
		histReport(
			BatchBenchRow{Dataset: "magic", Variant: "flat-flint", RowsPerSec: 120},
			BatchBenchRow{Dataset: "magic", Variant: "flat-flint", RowsPerSec: 999}, // duplicate, ignored
			BatchBenchRow{Dataset: "magic", Variant: "flat-compact", RowsPerSec: 80},
		),
	}
	series := TrendHistory(reps)
	byVariant := map[string]TrendSeries{}
	for _, s := range series {
		byVariant[s.Variant] = s
	}
	if len(series) != 3 {
		t.Fatalf("%d series, want 3: %+v", len(series), series)
	}

	ff := byVariant["flat-flint"]
	if ff.Rows[0] != 100 || ff.Rows[1] != 110 || ff.Rows[2] != 120 {
		t.Errorf("flat-flint trajectory = %v (duplicate must keep first occurrence)", ff.Rows)
	}
	if pct, ok := ff.Trend(); !ok || pct != 20 {
		t.Errorf("flat-flint trend = (%v, %v), want (+20%%, true)", pct, ok)
	}

	fc := byVariant["flat-compact"]
	if fc.Has[0] || !fc.Has[1] || !fc.Has[2] {
		t.Errorf("flat-compact presence = %v, want absent/present/present", fc.Has)
	}
	if fc.Rows[1] != 0 || fc.Rows[2] != 80 {
		t.Errorf("flat-compact trajectory = %v", fc.Rows)
	}
	// The first present point measured 0: no defined relative trend.
	if _, ok := fc.Trend(); ok {
		t.Error("trend defined over a zero-valued first point")
	}

	old := byVariant["old-only"]
	if !old.Has[0] || old.Has[1] || old.Has[2] {
		t.Errorf("old-only presence = %v, want present/absent/absent", old.Has)
	}
	if _, ok := old.Trend(); ok {
		t.Error("trend defined over a single point")
	}
	// Current cells lead, long-dropped ones trail.
	if series[len(series)-1].Variant != "old-only" {
		t.Errorf("dropped cell not trailing: %+v", series)
	}

	var buf bytes.Buffer
	if err := WriteTrendHistory(&buf, []string{"run-2", "run-1", "current"}, series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"run-2", "run-1", "current", "trend", "+20.0%", "flat-compact", "old-only"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// The measured zero renders as a number, the absent cell as "-".
	fcLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "flat-compact") {
			fcLine = line
		}
	}
	if !strings.Contains(fcLine, "-") || !strings.Contains(fcLine, "0") {
		t.Errorf("flat-compact line = %q, want an absent marker and a measured 0", fcLine)
	}
}

// TestTrendSparkline covers the sparkline rendering: min-max scaling
// within a series, absent runs as middots, a flat series as the middle
// block, and — for histories longer than the numeric-column cap — the
// collapsed "..." column with a sparkline still spanning every run.
func TestTrendSparkline(t *testing.T) {
	s := TrendSeries{
		Rows: []float64{100, 0, 150, 200},
		Has:  []bool{true, false, true, true},
	}
	if got := s.Sparkline(); got != "▁·▅█" {
		t.Errorf("sparkline = %q, want %q", got, "▁·▅█")
	}
	flat := TrendSeries{Rows: []float64{50, 50}, Has: []bool{true, true}}
	if got := flat.Sparkline(); got != "▅▅" {
		t.Errorf("flat sparkline = %q, want %q", got, "▅▅")
	}
	empty := TrendSeries{Rows: make([]float64, 3), Has: make([]bool, 3)}
	if got := empty.Sparkline(); got != "···" {
		t.Errorf("empty sparkline = %q, want %q", got, "···")
	}

	// A 9-run history: numeric columns collapse to the newest
	// maxTrendCols, the sparkline keeps the full ramp.
	reps := make([]*BatchBenchReport, 9)
	labels := make([]string, 9)
	for i := range reps {
		reps[i] = histReport(BatchBenchRow{Dataset: "magic", Variant: "flat-flint", RowsPerSec: float64(100 + i)})
		labels[i] = fmt.Sprintf("run-%d", 8-i)
	}
	labels[8] = "current"
	var buf bytes.Buffer
	if err := WriteTrendHistory(&buf, labels, TrendHistory(reps)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "...") {
		t.Error("long history missing the collapsed-columns marker")
	}
	if strings.Contains(out, "run-8") || !strings.Contains(out, "current") {
		t.Errorf("column window wrong:\n%s", out)
	}
	if !strings.Contains(out, "▁▂▃▄▅▅▆▇█") {
		t.Errorf("sparkline does not span the full history:\n%s", out)
	}
	if !strings.Contains(out, "history") {
		t.Errorf("missing sparkline column header:\n%s", out)
	}
}
