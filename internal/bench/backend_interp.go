package bench

import (
	"fmt"
	"time"

	"flint/internal/core"
	"flint/internal/rf"
	"flint/internal/treeexec"
)

// InterpBackend measures the interpreted treeexec engines with host
// wall-clock time. The CAGS implementations run on the grouped
// (probability-preordered) node layout, which is the memory-layout half
// of Chen et al.'s optimization — the half that applies to native trees.
type InterpBackend struct {
	// MinDuration is the minimum measured wall time per implementation;
	// passes over the test set repeat until it is reached. Default 10ms.
	MinDuration time.Duration
	// WithExtensions adds the softfloat baseline, the precoded
	// extension and the forest-arena (flat-flint / flat-batch)
	// measurements to the paper's four core implementations.
	WithExtensions bool
}

// Name implements Backend.
func (b *InterpBackend) Name() string { return "interp" }

func (b *InterpBackend) minDuration() time.Duration {
	if b.MinDuration <= 0 {
		return 10 * time.Millisecond
	}
	return b.MinDuration
}

// timeInference measures ns per inference for fn, which must run one full
// pass over the test set and return the number of inferences performed.
func (b *InterpBackend) timeInference(fn func() int) float64 {
	// Warm-up pass: faults, caches, branch predictors.
	n := fn()
	if n == 0 {
		return 0
	}
	var total int
	start := time.Now()
	elapsed := time.Duration(0)
	for elapsed < b.minDuration() {
		total += fn()
		elapsed = time.Since(start)
	}
	return float64(elapsed.Nanoseconds()) / float64(total)
}

// Measure implements Backend.
func (b *InterpBackend) Measure(w *Workload) (map[Impl]float64, error) {
	naive, err := treeexec.NewFloat32(w.Forest)
	if err != nil {
		return nil, err
	}
	cagsEng, err := treeexec.NewFloat32(w.CAGSForest)
	if err != nil {
		return nil, err
	}
	flint, err := treeexec.NewFLInt(w.Forest)
	if err != nil {
		return nil, err
	}
	cagsFlint, err := treeexec.NewFLInt(w.CAGSForest)
	if err != nil {
		return nil, err
	}

	rows := w.Test.Features
	if len(rows) == 0 {
		return nil, fmt.Errorf("bench: empty test set")
	}
	// Pre-encode once: the reinterpretation is a zero-cost pointer cast
	// in the paper's C realization (Listing 2), so its cost is excluded
	// here too.
	encoded := make([][]int32, len(rows))
	for i, x := range rows {
		encoded[i] = core.EncodeFeatures32(nil, x)
	}

	var sink int32
	out := map[Impl]float64{
		ImplNaive: b.timeInference(func() int {
			for _, x := range rows {
				sink += naive.Predict(x)
			}
			return len(rows)
		}),
		ImplCAGS: b.timeInference(func() int {
			for _, x := range rows {
				sink += cagsEng.Predict(x)
			}
			return len(rows)
		}),
		ImplFLInt: b.timeInference(func() int {
			for _, xi := range encoded {
				sink += flint.PredictEncoded(xi)
			}
			return len(rows)
		}),
		ImplCAGSFLInt: b.timeInference(func() int {
			for _, xi := range encoded {
				sink += cagsFlint.PredictEncoded(xi)
			}
			return len(rows)
		}),
	}

	if b.WithExtensions {
		soft, err := treeexec.NewSoftFloat(w.Forest)
		if err != nil {
			return nil, err
		}
		pre, err := treeexec.NewPrecoded(w.CAGSForest)
		if err != nil {
			return nil, err
		}
		keys := make([][]uint32, len(rows))
		for i, x := range rows {
			keys[i] = core.PrecodeFeatures32(nil, x)
		}
		out[ImplSoftFloat] = b.timeInference(func() int {
			for _, xi := range encoded {
				sink += soft.PredictEncoded(xi)
			}
			return len(rows)
		})
		out[ImplPrecoded] = b.timeInference(func() int {
			for _, k := range keys {
				sink += pre.PredictPrecoded(k)
			}
			return len(rows)
		})
	}
	if b.WithExtensions {
		// The forest-arena engine: single-row traversal over the
		// contiguous arena (the layout effect alone), and the blocked
		// batch kernel. One worker and the serial block path: this
		// isolates the kernel (arena layout + blocked row loop, encode
		// included) from worker-pool dispatch, which belongs to
		// throughput benchmarks, not to a per-inference cost sweep.
		flat, err := treeexec.NewFlat(w.CAGSForest, treeexec.FlatFLInt)
		if err != nil {
			return nil, err
		}
		out[ImplFlat] = b.timeInference(func() int {
			for _, xi := range encoded {
				sink += flat.PredictEncoded(xi)
			}
			return len(rows)
		})
		batchOut := make([]int32, len(rows))
		out[ImplFlatBatch] = b.timeInference(func() int {
			batchOut = flat.PredictBatch(rows, batchOut, 1, 0)
			sink += batchOut[0]
			return len(rows)
		})
		// The quantized SoA arena through the same serial blocked
		// kernel: the layout/footprint effect against ImplFlatBatch.
		// Forests beyond the compact limits fall back inside NewFlat
		// and are skipped here, not failed.
		compact, err := treeexec.NewFlat(w.CAGSForest, treeexec.FlatCompact)
		if err != nil {
			return nil, err
		}
		if compact.Variant() == treeexec.FlatCompact {
			// Pin the kernel for both compact cells: construction-time
			// gates may have installed fused (CompactFusedMin), which
			// would turn this A/B into fused-vs-fused.
			compact.SetKernel(treeexec.KernelBranchy)
			out[ImplFlatCompact] = b.timeInference(func() int {
				batchOut = compact.PredictBatch(rows, batchOut, 1, 0)
				sink += batchOut[0]
				return len(rows)
			})
			// The same arena through the branch-free fused-node kernel:
			// the mispredict-vs-dependency trade against ImplFlatCompact,
			// isolated on the serial blocked path. SetKernel pins it so
			// nothing recalibrates the kernel away mid-measurement.
			compact.SetKernel(treeexec.KernelFused)
			out[ImplFlatFused] = b.timeInference(func() int {
				batchOut = compact.PredictBatch(rows, batchOut, 1, 0)
				sink += batchOut[0]
				return len(rows)
			})
		}
	}

	if sink == -1 {
		return nil, fmt.Errorf("bench: impossible sink value") // keep sink alive
	}
	var _ rf.Predictor = naive
	return out, nil
}
