package bench

import (
	"fmt"
	"io"
)

// WriteLadderMarkdown renders every calibration ladder in a
// BENCH_batch.json report as one GitHub-flavored markdown table — the
// per-candidate (width, kernel, refill) timings next to the winner each
// engine installed — for the CI job summary, where losing kernels'
// rows/s stay visible beside the sparkline trends instead of vanishing
// behind the winner's gate. Reports whose rows carry no ladders (older
// artifacts, per-tree baseline rows) produce a one-line note instead of
// an empty table.
func WriteLadderMarkdown(w io.Writer, rep *BatchBenchReport) error {
	any := false
	for _, r := range rep.Results {
		if len(r.Ladder) > 0 {
			any = true
			break
		}
	}
	if !any {
		_, err := fmt.Fprintln(w, "_no calibration ladders recorded in this report_")
		return err
	}
	if _, err := fmt.Fprintln(w, "| workload | variant | mode | rows/s | winner |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---:|:---:|"); err != nil {
		return err
	}
	for _, r := range rep.Results {
		for _, mt := range r.Ladder {
			mode := fmt.Sprintf("x%d %s", mt.Width, mt.Kernel)
			if mt.Refill != 0 {
				mode = fmt.Sprintf("%s refill=%d", mode, mt.Refill)
			}
			mark := ""
			if mt.Winner {
				mark = "★"
			}
			if _, err := fmt.Fprintf(w, "| %s | %s | %s | %.0f | %s |\n",
				r.Dataset, r.Variant, mode, mt.RowsPerSec, mark); err != nil {
				return err
			}
		}
	}
	return nil
}
