// Package bench regenerates the FLInt paper's evaluation (Section V):
// the parameter sweep over datasets, ensemble sizes and maximal tree
// depths, the normalized execution time aggregation (geometric mean and
// variance across datasets and ensemble sizes, Figure 3 / Tables II-III),
// and the output formatting.
//
// Three measurement backends share one sweep driver:
//
//   - InterpBackend times the interpreted treeexec engines on the host.
//   - CCBackend generates the paper's C implementations, compiles them
//     with the system C compiler at -O2 and times the binaries — the
//     closest reproduction of the paper's actual toolchain.
//   - SimBackend executes generated ARMv8 assembly on the asmsim cost
//     models, providing the Table I machine axis this environment lacks.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"flint/internal/cags"
	"flint/internal/cart"
	"flint/internal/dataset"
	"flint/internal/rf"
)

// Impl names one measured implementation, matching the paper's legends.
type Impl string

// The implementations of the paper's evaluation. Naive is the baseline
// every other implementation is normalized against.
const (
	ImplNaive       Impl = "naive"        // standard if-else tree, float compares
	ImplCAGS        Impl = "cags"         // cache-aware grouping and swapping [6]
	ImplFLInt       Impl = "flint"        // FLInt C realization
	ImplCAGSFLInt   Impl = "cags-flint"   // CAGS with FLInt integrated
	ImplFLIntASM    Impl = "flint-asm"    // direct assembly FLInt (Fig. 4, Table III)
	ImplSoftFloat   Impl = "softfloat"    // software float baseline (E9)
	ImplPrecoded    Impl = "precoded"     // key-space precoding extension
	ImplFlat        Impl = "flat-flint"   // single-arena forest, FLInt compares
	ImplFlatBatch   Impl = "flat-batch"   // arena + row-blocked batch kernel
	ImplFlatCompact Impl = "flat-compact" // quantized 8-byte SoA arena, blocked kernel
	ImplFlatFused   Impl = "flat-fused"   // compact arena, branch-free fused-node kernel
	ImplTableC      Impl = "table-c"      // codegen ModeTable: compact arena as compiled C

)

// SweepConfig selects the grid of Section V-A.
type SweepConfig struct {
	// Datasets defaults to the paper's five workloads.
	Datasets []string
	// TreeCounts defaults to {1,5,10,15,20,30,50,80,100}.
	TreeCounts []int
	// Depths defaults to {1,5,10,15,20,30,50}.
	Depths []int
	// Rows is the synthetic dataset size; 0 selects the UCI-equivalent
	// full size. Benchmark presets use smaller sizes to keep training
	// tractable.
	Rows int
	// Seed drives dataset synthesis and training.
	Seed int64
}

// PaperGrid is the full grid of Section V-A.
func PaperGrid() SweepConfig {
	return SweepConfig{
		Datasets:   dataset.Names(),
		TreeCounts: []int{1, 5, 10, 15, 20, 30, 50, 80, 100},
		Depths:     []int{1, 5, 10, 15, 20, 30, 50},
		Seed:       1,
	}
}

// QuickGrid is a reduced grid with the same depth axis, suitable for
// minutes-scale runs.
func QuickGrid() SweepConfig {
	return SweepConfig{
		Datasets:   dataset.Names(),
		TreeCounts: []int{1, 5, 10},
		Depths:     []int{1, 5, 10, 15, 20, 30, 50},
		Rows:       1200,
		Seed:       1,
	}
}

func (c SweepConfig) withDefaults() SweepConfig {
	if len(c.Datasets) == 0 {
		c.Datasets = dataset.Names()
	}
	if len(c.TreeCounts) == 0 {
		c.TreeCounts = []int{1, 5, 10, 15, 20, 30, 50, 80, 100}
	}
	if len(c.Depths) == 0 {
		c.Depths = []int{1, 5, 10, 15, 20, 30, 50}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Workload is one trained configuration handed to a backend: the plain
// forest, its CAGS-reordered counterpart and the held-out test rows.
type Workload struct {
	Dataset  string
	Trees    int
	MaxDepth int
	Forest   *rf.Forest
	// CAGSForest is the grouped (probability-preordered) forest; the
	// swapping half of CAGS is applied by the backends' code generation.
	CAGSForest *rf.Forest
	Test       *dataset.Dataset
}

// Backend measures one workload and returns the cost per inference
// (nanoseconds for host backends, cycles for simulators) per
// implementation. Implementations may differ per backend.
type Backend interface {
	// Name labels the backend ("interp", "cc", "sim:x86-server", ...).
	Name() string
	// Measure returns per-implementation cost for the workload.
	Measure(w *Workload) (map[Impl]float64, error)
}

// Cell is one measured grid point.
type Cell struct {
	Backend  string
	Dataset  string
	Trees    int
	MaxDepth int
	Impl     Impl
	// Cost is the per-inference cost in the backend's unit.
	Cost float64
}

// Results collects sweep measurements.
type Results struct {
	Cells []Cell
}

// RunSweep trains and measures the whole grid, reporting progress to
// progress (may be nil).
func RunSweep(cfg SweepConfig, backends []Backend, progress io.Writer) (*Results, error) {
	cfg = cfg.withDefaults()
	logf := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format, args...)
		}
	}
	res := &Results{}
	for _, ds := range cfg.Datasets {
		full, err := dataset.Generate(ds, cfg.Rows, cfg.Seed)
		if err != nil {
			return nil, err
		}
		train, test := full.Split(0.75, cfg.Seed) // the paper's 75/25 split
		for _, trees := range cfg.TreeCounts {
			for _, depth := range cfg.Depths {
				forest, err := cart.TrainForest(train, cart.Config{
					NumTrees: trees, MaxDepth: depth, Seed: cfg.Seed,
				})
				if err != nil {
					return nil, fmt.Errorf("bench: training %s t=%d d=%d: %w", ds, trees, depth, err)
				}
				grouped, err := cags.ReorderForest(forest)
				if err != nil {
					return nil, err
				}
				w := &Workload{
					Dataset: ds, Trees: trees, MaxDepth: depth,
					Forest: forest, CAGSForest: grouped, Test: test,
				}
				for _, b := range backends {
					costs, err := b.Measure(w)
					if err != nil {
						return nil, fmt.Errorf("bench: %s on %s t=%d d=%d: %w", b.Name(), ds, trees, depth, err)
					}
					for impl, cost := range costs {
						res.Cells = append(res.Cells, Cell{
							Backend: b.Name(), Dataset: ds, Trees: trees,
							MaxDepth: depth, Impl: impl, Cost: cost,
						})
					}
					logf("%s %s t=%d d=%d: %v\n", b.Name(), ds, trees, depth, formatCosts(costs))
				}
			}
		}
	}
	return res, nil
}

func formatCosts(costs map[Impl]float64) string {
	keys := make([]string, 0, len(costs))
	for k := range costs {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%.1f", k, costs[Impl(k)])
	}
	return out
}

// Normalized returns, for every (backend, dataset, trees, depth, impl)
// cell, the cost divided by the baseline implementation's cost at the
// same grid point. Cells without a baseline are skipped.
func (r *Results) Normalized(baseline Impl) []Cell {
	type key struct {
		backend, ds string
		trees, d    int
	}
	base := make(map[key]float64)
	for _, c := range r.Cells {
		if c.Impl == baseline {
			base[key{c.Backend, c.Dataset, c.Trees, c.MaxDepth}] = c.Cost
		}
	}
	var out []Cell
	for _, c := range r.Cells {
		b, ok := base[key{c.Backend, c.Dataset, c.Trees, c.MaxDepth}]
		if !ok || b <= 0 {
			continue
		}
		c.Cost /= b
		out = append(out, c)
	}
	return out
}

// GeoMean returns the geometric mean of vs; it panics on empty input and
// ignores non-positive entries (which cannot arise from valid timings).
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		panic("bench: GeoMean of empty slice")
	}
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Variance returns the population variance of vs.
func Variance(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range vs {
		mean += v
	}
	mean /= float64(len(vs))
	acc := 0.0
	for _, v := range vs {
		acc += (v - mean) * (v - mean)
	}
	return acc / float64(len(vs))
}

// Series is one curve of Figure 3: normalized time versus maximal depth
// for one implementation on one backend, aggregated (geometric mean)
// across datasets and ensemble sizes, with the per-point variance the
// paper also reports.
type Series struct {
	Backend  string
	Impl     Impl
	Depths   []int
	Mean     []float64
	Variance []float64
}

// Figure3 aggregates normalized results into per-implementation,
// per-backend depth series (the curves of the paper's Figure 3).
func Figure3(r *Results, baseline Impl) []Series {
	norm := r.Normalized(baseline)
	type key struct {
		backend string
		impl    Impl
		depth   int
	}
	buckets := make(map[key][]float64)
	backends := map[string]bool{}
	impls := map[Impl]bool{}
	depthSet := map[int]bool{}
	for _, c := range norm {
		buckets[key{c.Backend, c.Impl, c.MaxDepth}] = append(buckets[key{c.Backend, c.Impl, c.MaxDepth}], c.Cost)
		backends[c.Backend] = true
		impls[c.Impl] = true
		depthSet[c.MaxDepth] = true
	}
	var depths []int
	for d := range depthSet {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	var backendNames []string
	for b := range backends {
		backendNames = append(backendNames, b)
	}
	sort.Strings(backendNames)
	var implNames []string
	for i := range impls {
		implNames = append(implNames, string(i))
	}
	sort.Strings(implNames)

	var out []Series
	for _, b := range backendNames {
		for _, im := range implNames {
			s := Series{Backend: b, Impl: Impl(im)}
			for _, d := range depths {
				vs := buckets[key{b, Impl(im), d}]
				if len(vs) == 0 {
					continue
				}
				s.Depths = append(s.Depths, d)
				s.Mean = append(s.Mean, GeoMean(vs))
				s.Variance = append(s.Variance, Variance(vs))
			}
			if len(s.Depths) > 0 {
				out = append(out, s)
			}
		}
	}
	return out
}

// TableRow is one row of Table II / Table III: the overall geometric mean
// of the normalized execution time and the mean restricted to deep trees
// (maximal depth >= 20), per backend and implementation.
type TableRow struct {
	Backend string
	Impl    Impl
	Overall float64
	Deep    float64 // configurations with MaxDepth >= 20
}

// Table aggregates normalized results in the shape of Tables II and III.
// Only the requested implementations are included, in the given order.
func Table(r *Results, baseline Impl, impls []Impl) []TableRow {
	norm := r.Normalized(baseline)
	type key struct {
		backend string
		impl    Impl
	}
	all := make(map[key][]float64)
	deep := make(map[key][]float64)
	backends := map[string]bool{}
	for _, c := range norm {
		k := key{c.Backend, c.Impl}
		all[k] = append(all[k], c.Cost)
		if c.MaxDepth >= 20 {
			deep[k] = append(deep[k], c.Cost)
		}
		backends[c.Backend] = true
	}
	var backendNames []string
	for b := range backends {
		backendNames = append(backendNames, b)
	}
	sort.Strings(backendNames)
	var out []TableRow
	for _, b := range backendNames {
		for _, im := range impls {
			k := key{b, im}
			if len(all[k]) == 0 {
				continue
			}
			row := TableRow{Backend: b, Impl: im, Overall: GeoMean(all[k])}
			if len(deep[k]) > 0 {
				row.Deep = GeoMean(deep[k])
			}
			out = append(out, row)
		}
	}
	return out
}
