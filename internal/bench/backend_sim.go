package bench

import (
	"bytes"
	"fmt"
	"math"

	"flint/internal/asmsim"
	"flint/internal/codegen"
	"flint/internal/isa"
	"flint/internal/rf"
)

// SimBackend measures generated ARMv8 assembly on an asmsim machine
// profile, the stand-in for the paper's four physical systems. Costs are
// cycles per inference.
//
// Implementation mapping (see DESIGN.md):
//
//   - naive      — float comparisons, compiled-C constant flavor
//   - cags       — naive plus branch swapping (hot path falls through)
//   - flint      — FLInt C realization: integer compares, compiled-C flavor
//   - cags-flint — flint plus branch swapping
//   - flint-asm  — the paper's direct assembly: movz/movk immediates
type SimBackend struct {
	// Machine is the cost model profile.
	Machine asmsim.Machine
	// MaxRows caps the number of test rows executed per implementation
	// (simulation is O(rows x nodes)). Default 128.
	MaxRows int
	// WithASM adds the flint-asm implementation (Figure 4 / Table III).
	WithASM bool
}

// Name implements Backend.
func (b *SimBackend) Name() string { return "sim:" + b.Machine.Name }

type simImpl struct {
	impl    Impl
	variant codegen.Variant
	flavor  codegen.Flavor
	cags    bool
}

// Measure implements Backend.
func (b *SimBackend) Measure(w *Workload) (map[Impl]float64, error) {
	impls := []simImpl{
		{ImplNaive, codegen.VariantFloat, codegen.FlavorCC, false},
		{ImplCAGS, codegen.VariantFloat, codegen.FlavorCC, true},
		{ImplFLInt, codegen.VariantFLInt, codegen.FlavorCC, false},
		{ImplCAGSFLInt, codegen.VariantFLInt, codegen.FlavorCC, true},
	}
	if b.WithASM {
		impls = append(impls, simImpl{ImplFLIntASM, codegen.VariantFLInt, codegen.FlavorHand, false})
	}
	maxRows := b.MaxRows
	if maxRows <= 0 {
		maxRows = 128
	}
	rows := w.Test.Features
	if len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("bench: empty test set")
	}
	bits := make([][]uint32, len(rows))
	for i, x := range rows {
		bits[i] = make([]uint32, len(x))
		for j, v := range x {
			bits[i][j] = math.Float32bits(v)
		}
	}

	out := make(map[Impl]float64, len(impls))
	for _, im := range impls {
		var buf bytes.Buffer
		err := codegen.Forest(&buf, w.Forest, codegen.Options{
			Language: codegen.LangARMv8,
			Variant:  im.variant,
			Flavor:   im.flavor,
			CAGS:     im.cags,
		})
		if err != nil {
			return nil, err
		}
		prog, err := isa.Parse(buf.String())
		if err != nil {
			return nil, err
		}
		sim, err := asmsim.New(prog, b.Machine)
		if err != nil {
			return nil, err
		}
		// Warm pass (caches, predictor), then the measured pass: the
		// paper measures steady-state repeated inference.
		for _, x := range bits {
			if _, _, err := b.runChecked(sim, w, x); err != nil {
				return nil, err
			}
		}
		var total uint64
		for i, x := range bits {
			cls, cycles, err := b.runChecked(sim, w, x)
			if err != nil {
				return nil, err
			}
			if want := w.Forest.Predict(rows[i]); cls != want {
				return nil, fmt.Errorf("bench: %s/%s predicts %d, reference %d (row %d)",
					b.Name(), im.impl, cls, want, i)
			}
			total += cycles
		}
		out[im.impl] = float64(total) / float64(len(bits))
	}
	return out, nil
}

func (b *SimBackend) runChecked(sim *asmsim.Simulator, w *Workload, x []uint32) (int32, uint64, error) {
	return sim.RunForest("forest", len(w.Forest.Trees), w.Forest.NumClasses, x)
}

var _ rf.Predictor = (*rf.Forest)(nil)
