package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flint/internal/cart"
	"flint/internal/dataset"
	"flint/internal/serve"
	"flint/internal/treeexec"
)

// ServeBench measures end-to-end HTTP serving throughput and latency —
// the network front-end's cross-request coalescing over the registry,
// not the bare kernels BatchBench times — on every workload. Requests
// mix single rows and small batches from concurrent clients, and every
// response is verified bit-for-bit against the in-process engine, so a
// run that reports numbers has also proven the wire path correct. The
// CI workflow records the result as BENCH_serve.json next to
// BENCH_batch.json; wall-clock numbers on shared runners are indicative
// only and nothing gates on them.
type ServeBench struct {
	// Rows is the synthetic dataset size (train + test); <= 0 selects 1200.
	Rows int
	// Trees and Depth shape the trained ensemble; <= 0 selects 20 / 12.
	Trees, Depth int
	// Workers is each model's Batcher pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Clients is the number of concurrent HTTP requesters; <= 0 selects 8.
	Clients int
	// MinDuration is the measured wall time per workload; <= 0 selects 300ms.
	MinDuration time.Duration
	// Seed drives dataset synthesis and training; 0 selects 1.
	Seed int64
	// BatchRows is the row count batch-shaped requests carry; <= 0
	// selects 16. Odd-numbered requests are single rows regardless.
	BatchRows int
	// MaxDelay is the server's coalescing budget; <= 0 selects 500µs —
	// tighter than the serving default so a bench run is latency-honest.
	MaxDelay time.Duration
}

// ServeBenchRow is one workload's measured serving profile.
type ServeBenchRow struct {
	Dataset          string  `json:"dataset"`
	Variant          string  `json:"variant"`
	RowsPerSec       float64 `json:"rows_per_sec"`
	RequestsPerSec   float64 `json:"requests_per_sec"`
	P50Ms            float64 `json:"latency_p50_ms"`
	P99Ms            float64 `json:"latency_p99_ms"`
	Requests         uint64  `json:"requests"`
	RowsServed       uint64  `json:"rows_served"`
	CoalescedBatches uint64  `json:"coalesced_batches"`
	CoalesceFill     float64 `json:"coalesce_rows_per_batch"`
	Verified         uint64  `json:"verified"` // responses checked against in-process Predict (all of them)
}

// ServeBenchReport is the BENCH_serve.json document.
type ServeBenchReport struct {
	Config struct {
		Rows, Trees, Depth, Workers, Clients, BatchRows int
		GOMAXPROCS                                      int
		MaxDelayMs                                      float64
	} `json:"config"`
	Results []ServeBenchRow `json:"results"`
}

func (c ServeBench) withDefaults() ServeBench {
	if c.Rows <= 0 {
		c.Rows = 1200
	}
	if c.Trees <= 0 {
		c.Trees = 20
	}
	if c.Depth <= 0 {
		c.Depth = 12
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.MinDuration <= 0 {
		c.MinDuration = 300 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BatchRows <= 0 {
		c.BatchRows = 16
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 500 * time.Microsecond
	}
	return c
}

// Run serves every workload through a real HTTP stack (httptest server,
// keep-alive client connections) and measures rows/s, requests/s and
// latency quantiles under the concurrent single-row + batch mix. Every
// response is compared against the in-process engine's answer; any
// mismatch fails the run.
func (c ServeBench) Run() (*ServeBenchReport, error) {
	c = c.withDefaults()
	rep := &ServeBenchReport{}
	rep.Config.Rows = c.Rows
	rep.Config.Trees = c.Trees
	rep.Config.Depth = c.Depth
	rep.Config.Workers = c.Workers
	rep.Config.Clients = c.Clients
	rep.Config.BatchRows = c.BatchRows
	rep.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Config.MaxDelayMs = float64(c.MaxDelay) / float64(time.Millisecond)

	for _, ds := range dataset.Names() {
		row, err := c.runWorkload(ds)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, *row)
	}
	return rep, nil
}

func (c ServeBench) runWorkload(ds string) (*ServeBenchRow, error) {
	full, err := dataset.Generate(ds, c.Rows, c.Seed)
	if err != nil {
		return nil, err
	}
	train, test := full.Split(0.75, c.Seed)
	forest, err := cart.TrainForest(train, cart.Config{NumTrees: c.Trees, MaxDepth: c.Depth, Seed: c.Seed})
	if err != nil {
		return nil, fmt.Errorf("bench: training %s: %w", ds, err)
	}
	variant := treeexec.FlatFLInt
	if ok, _ := treeexec.Compactable(forest); ok {
		variant = treeexec.FlatCompact
	}
	e, err := treeexec.NewFlat(forest, variant)
	if err != nil {
		return nil, err
	}
	rows := test.Features
	if len(rows) == 0 {
		return nil, fmt.Errorf("bench: empty test set for %s", ds)
	}
	e.CalibrateInterleaveRows(rows, 50*time.Millisecond)
	want := e.PredictBatch(rows, nil, 1, 0)

	reg := treeexec.NewModelRegistry()
	defer reg.Close()
	if err := reg.Register(treeexec.NewServedModel(ds, e, c.Workers, 0)); err != nil {
		return nil, err
	}
	s := serve.New(reg, serve.Config{MaxDelay: c.MaxDelay, MaxQueue: 4096})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	url := ts.URL + "/v1/models/" + ds + ":predict"

	// Pre-marshal request bodies so the measured loop times the serve
	// path, not the client's JSON encoder.
	type shot struct {
		body   []byte
		expect []int32
	}
	shots := make([]shot, 0, 2*len(rows))
	for i := range rows {
		b, err := json.Marshal(struct {
			Row []float32 `json:"row"`
		}{rows[i]})
		if err != nil {
			return nil, err
		}
		shots = append(shots, shot{body: b, expect: want[i : i+1]})
		if i%2 == 0 {
			hi := i + c.BatchRows
			if hi > len(rows) {
				hi = len(rows)
			}
			b, err := json.Marshal(struct {
				Rows [][]float32 `json:"rows"`
			}{rows[i:hi]})
			if err != nil {
				return nil, err
			}
			shots = append(shots, shot{body: b, expect: want[i:hi]})
		}
	}

	var stopFlag atomic.Bool
	var verified atomic.Uint64
	errc := make(chan error, 1)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
		stopFlag.Store(true)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < c.Clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * 31; !stopFlag.Load(); i++ {
				sh := shots[i%len(shots)]
				resp, err := client.Post(url, "application/json", bytes.NewReader(sh.body))
				if err != nil {
					fail(fmt.Errorf("bench: %s: %w", ds, err))
					return
				}
				var pr struct {
					Classes []int32 `json:"classes"`
				}
				err = json.NewDecoder(resp.Body).Decode(&pr)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("bench: %s: status %d, err %v", ds, resp.StatusCode, err))
					return
				}
				if len(pr.Classes) != len(sh.expect) {
					fail(fmt.Errorf("bench: %s: %d classes, want %d", ds, len(pr.Classes), len(sh.expect)))
					return
				}
				for j := range sh.expect {
					if pr.Classes[j] != sh.expect[j] {
						fail(fmt.Errorf("bench: %s: served answer %d != in-process %d", ds, pr.Classes[j], sh.expect[j]))
						return
					}
				}
				verified.Add(1)
			}
		}(g)
	}
	time.Sleep(c.MinDuration)
	stopFlag.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return nil, err
	default:
	}

	st := s.Status()[0]
	row := &ServeBenchRow{
		Dataset:          ds,
		Variant:          e.Name(),
		RowsPerSec:       float64(st.CoalescedRows) / elapsed.Seconds(),
		RequestsPerSec:   float64(st.Requests) / elapsed.Seconds(),
		P50Ms:            st.LatencyP50Ms,
		P99Ms:            st.LatencyP99Ms,
		Requests:         st.Requests,
		RowsServed:       st.CoalescedRows,
		CoalescedBatches: st.CoalescedBatches,
		CoalesceFill:     st.CoalesceFill,
		Verified:         verified.Load(),
	}
	return row, nil
}

// WriteServeBenchJSON writes the report as indented JSON.
func WriteServeBenchJSON(w io.Writer, rep *ServeBenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
