package softfloat

import (
	"math"
	"testing"
	"testing/quick"
)

var values32 = []float32{
	0, float32(math.Copysign(0, -1)), 1, -1, 0.5, -0.5,
	math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
	math.MaxFloat32, -math.MaxFloat32,
	float32(math.Inf(1)), float32(math.Inf(-1)),
	float32(math.NaN()), 3.5, -3.5, 1e-40, -1e-40,
}

var values64 = []float64{
	0, math.Copysign(0, -1), 1, -1, math.Pi, -math.Pi,
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.MaxFloat64, -math.MaxFloat64,
	math.Inf(1), math.Inf(-1), math.NaN(), 1e-310, -1e-310,
}

func hw3way32(a, b float32) Result {
	switch {
	case a != a || b != b:
		return Unordered
	case a < b:
		return Less
	case a > b:
		return Greater
	default:
		return Equal
	}
}

func hw3way64(a, b float64) Result {
	switch {
	case a != a || b != b:
		return Unordered
	case a < b:
		return Less
	case a > b:
		return Greater
	default:
		return Equal
	}
}

func TestCmp32AgainstHardware(t *testing.T) {
	for _, a := range values32 {
		for _, b := range values32 {
			want := hw3way32(a, b)
			got := Cmp32(math.Float32bits(a), math.Float32bits(b))
			if got != want {
				t.Errorf("Cmp32(%v,%v) = %v, hardware says %v", a, b, got, want)
			}
		}
	}
}

func TestCmp64AgainstHardware(t *testing.T) {
	for _, a := range values64 {
		for _, b := range values64 {
			want := hw3way64(a, b)
			got := Cmp64(math.Float64bits(a), math.Float64bits(b))
			if got != want {
				t.Errorf("Cmp64(%v,%v) = %v, hardware says %v", a, b, got, want)
			}
		}
	}
}

func TestCmp32Quick(t *testing.T) {
	err := quick.Check(func(a, b float32) bool {
		return Cmp32(math.Float32bits(a), math.Float32bits(b)) == hw3way32(a, b)
	}, &quick.Config{MaxCount: 50000})
	if err != nil {
		t.Error(err)
	}
}

func TestCmp64Quick(t *testing.T) {
	err := quick.Check(func(a, b float64) bool {
		return Cmp64(math.Float64bits(a), math.Float64bits(b)) == hw3way64(a, b)
	}, &quick.Config{MaxCount: 50000})
	if err != nil {
		t.Error(err)
	}
}

func TestPredicates32(t *testing.T) {
	for _, a := range values32 {
		for _, b := range values32 {
			ab, bb := math.Float32bits(a), math.Float32bits(b)
			if LE32(ab, bb) != (a <= b) {
				t.Errorf("LE32(%v,%v) != hardware", a, b)
			}
			if LT32(ab, bb) != (a < b) {
				t.Errorf("LT32(%v,%v) != hardware", a, b)
			}
			if GE32(ab, bb) != (a >= b) {
				t.Errorf("GE32(%v,%v) != hardware", a, b)
			}
			if GT32(ab, bb) != (a > b) {
				t.Errorf("GT32(%v,%v) != hardware", a, b)
			}
			if EQ32(ab, bb) != (a == b) {
				t.Errorf("EQ32(%v,%v) != hardware", a, b)
			}
		}
	}
}

func TestPredicates64(t *testing.T) {
	for _, a := range values64 {
		for _, b := range values64 {
			ab, bb := math.Float64bits(a), math.Float64bits(b)
			if LE64(ab, bb) != (a <= b) {
				t.Errorf("LE64(%v,%v) != hardware", a, b)
			}
			if LT64(ab, bb) != (a < b) {
				t.Errorf("LT64(%v,%v) != hardware", a, b)
			}
			if GE64(ab, bb) != (a >= b) {
				t.Errorf("GE64(%v,%v) != hardware", a, b)
			}
			if GT64(ab, bb) != (a > b) {
				t.Errorf("GT64(%v,%v) != hardware", a, b)
			}
			if EQ64(ab, bb) != (a == b) {
				t.Errorf("EQ64(%v,%v) != hardware", a, b)
			}
		}
	}
}

func TestFloatConvenience(t *testing.T) {
	if !LEFloat32(1, 2) || LEFloat32(2, 1) || !LEFloat32(2, 2) {
		t.Error("LEFloat32 broken")
	}
	if !LEFloat64(-2, -1) || LEFloat64(-1, -2) {
		t.Error("LEFloat64 broken")
	}
	if LEFloat32(float32(math.NaN()), 1) || LEFloat64(1, math.NaN()) {
		t.Error("NaN must be unordered")
	}
}

func TestZeroEquality(t *testing.T) {
	nz32 := math.Float32bits(float32(math.Copysign(0, -1)))
	pz32 := math.Float32bits(0)
	if Cmp32(nz32, pz32) != Equal || Cmp32(pz32, nz32) != Equal {
		t.Error("IEEE requires -0 == +0 (this is where softfloat and FLInt semantics differ)")
	}
	nz64 := math.Float64bits(math.Copysign(0, -1))
	pz64 := math.Float64bits(0)
	if Cmp64(nz64, pz64) != Equal {
		t.Error("IEEE requires -0 == +0 for binary64")
	}
}

func TestResultString(t *testing.T) {
	cases := map[Result]string{
		Less: "less", Equal: "equal", Greater: "greater",
		Unordered: "unordered", Result(42): "invalid",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Result(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestNaNPatterns(t *testing.T) {
	// All NaN encodings (quiet/signaling, any payload, either sign) must
	// be detected.
	nans := []uint32{0x7F800001, 0x7FC00000, 0x7FFFFFFF, 0xFF800001, 0xFFC00000, 0xFFFFFFFF}
	for _, n := range nans {
		if !isNaN32(n) {
			t.Errorf("%#x not detected as NaN", n)
		}
		if Cmp32(n, math.Float32bits(1)) != Unordered {
			t.Errorf("Cmp32(%#x, 1) ordered", n)
		}
	}
	infs := []uint32{0x7F800000, 0xFF800000}
	for _, i := range infs {
		if isNaN32(i) {
			t.Errorf("%#x (infinity) misdetected as NaN", i)
		}
	}
	if !isNaN64(0x7FF0000000000001) || isNaN64(0x7FF0000000000000) {
		t.Error("isNaN64 boundary broken")
	}
}
