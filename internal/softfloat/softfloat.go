// Package softfloat implements IEEE 754 floating point comparison in
// software, the way compiler support libraries (libgcc's __lesf2 /
// compiler-rt's comparison intrinsics) realize it on devices without a
// hardware floating point unit.
//
// This is the substrate the FLInt paper's embedded motivation refers to:
// when no FPU is present (or it is powered down to save energy), every
// float comparison in a naive random forest lowers to a call into
// routines like these. The package is the cost baseline experiment E9
// measures FLInt against, and the asmsim FPU-disabled machine model
// charges soft-float latencies taken from this code's operation count.
//
// Unlike package core, these routines implement strict IEEE semantics:
// -0.0 equals +0.0 and every comparison involving NaN is unordered.
package softfloat

import "math"

// Result is the outcome of a three-way soft-float comparison.
type Result int

// Comparison outcomes. Unordered is returned when at least one operand
// is NaN.
const (
	Less Result = iota - 1
	Equal
	Greater
	Unordered
)

// String returns the lower-case name of the result.
func (r Result) String() string {
	switch r {
	case Less:
		return "less"
	case Equal:
		return "equal"
	case Greater:
		return "greater"
	case Unordered:
		return "unordered"
	}
	return "invalid"
}

const (
	sign32 = uint32(1) << 31
	mag32  = sign32 - 1
	expM32 = uint32(0xFF) << 23

	sign64 = uint64(1) << 63
	mag64  = sign64 - 1
	expM64 = uint64(0x7FF) << 52
)

// isNaN32 reports whether the binary32 pattern encodes NaN: maximal
// exponent with a non-zero mantissa.
func isNaN32(a uint32) bool { return a&mag32 > expM32 }

// isNaN64 is isNaN32 for binary64 patterns.
func isNaN64(a uint64) bool { return a&mag64 > expM64 }

// Cmp32 compares two binary32 bit patterns with IEEE semantics,
// mirroring the structure of libgcc's __cmpsf2: NaN screening, the
// equal-zeros case, sign discrimination, then magnitude comparison with
// the order inverted for negative operands.
func Cmp32(a, b uint32) Result {
	if isNaN32(a) || isNaN32(b) {
		return Unordered
	}
	ma, mb := a&mag32, b&mag32
	if ma == 0 && mb == 0 {
		return Equal // +0 == -0
	}
	sa, sb := a&sign32 != 0, b&sign32 != 0
	switch {
	case sa != sb:
		if sa {
			return Less
		}
		return Greater
	case ma == mb:
		return Equal
	case (ma < mb) != sa:
		return Less
	default:
		return Greater
	}
}

// Cmp64 is Cmp32 for binary64 patterns.
func Cmp64(a, b uint64) Result {
	if isNaN64(a) || isNaN64(b) {
		return Unordered
	}
	ma, mb := a&mag64, b&mag64
	if ma == 0 && mb == 0 {
		return Equal
	}
	sa, sb := a&sign64 != 0, b&sign64 != 0
	switch {
	case sa != sb:
		if sa {
			return Less
		}
		return Greater
	case ma == mb:
		return Equal
	case (ma < mb) != sa:
		return Less
	default:
		return Greater
	}
}

// LE32 reports a <= b with IEEE semantics (false when unordered). This is
// the predicate a naive if-else tree calls once per visited node on an
// FPU-less target.
func LE32(a, b uint32) bool { r := Cmp32(a, b); return r == Less || r == Equal }

// LT32 reports a < b with IEEE semantics.
func LT32(a, b uint32) bool { return Cmp32(a, b) == Less }

// GE32 reports a >= b with IEEE semantics.
func GE32(a, b uint32) bool { r := Cmp32(a, b); return r == Greater || r == Equal }

// GT32 reports a > b with IEEE semantics.
func GT32(a, b uint32) bool { return Cmp32(a, b) == Greater }

// EQ32 reports a == b with IEEE semantics.
func EQ32(a, b uint32) bool { return Cmp32(a, b) == Equal }

// LE64 reports a <= b with IEEE semantics.
func LE64(a, b uint64) bool { r := Cmp64(a, b); return r == Less || r == Equal }

// LT64 reports a < b with IEEE semantics.
func LT64(a, b uint64) bool { return Cmp64(a, b) == Less }

// GE64 reports a >= b with IEEE semantics.
func GE64(a, b uint64) bool { r := Cmp64(a, b); return r == Greater || r == Equal }

// GT64 reports a > b with IEEE semantics.
func GT64(a, b uint64) bool { return Cmp64(a, b) == Greater }

// EQ64 reports a == b with IEEE semantics.
func EQ64(a, b uint64) bool { return Cmp64(a, b) == Equal }

// LEFloat32 is LE32 on float32 values, for callers that have not already
// reinterpreted their operands.
func LEFloat32(a, b float32) bool { return LE32(math.Float32bits(a), math.Float32bits(b)) }

// LEFloat64 is LE64 on float64 values.
func LEFloat64(a, b float64) bool { return LE64(math.Float64bits(a), math.Float64bits(b)) }
