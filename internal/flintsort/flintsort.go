// Package flintsort applies the FLInt idea beyond tree inference — the
// paper's future-work direction of integrating the operator "into other
// applications, which heavily rely on floating point comparisons".
//
// Sorting is the canonical such application. The package sorts float
// slices by reinterpreting each value once into the totally-ordered
// unsigned key space of ieee754.TotalOrderKey32/64 and then running a
// byte-wise LSD radix sort: no floating point comparison (in fact, no
// comparison at all) is executed. The resulting order is exactly the
// IEEE 754-2008 totalOrder predicate:
//
//	-NaN < -Inf < finite negatives < -0.0 < +0.0 < finite positives < +Inf < +NaN
//
// which coincides with ordinary `<` on non-NaN data and gives NaN a
// deterministic position instead of the undefined behaviour float NaNs
// cause in comparison sorts.
package flintsort

import (
	"math"

	"flint/internal/ieee754"
)

// Sort32 sorts x in ascending IEEE totalOrder using integer operations
// only. It allocates one scratch slice of len(x).
func Sort32(x []float32) {
	if len(x) < 2 {
		return
	}
	keys := make([]uint32, len(x))
	for i, v := range x {
		keys[i] = ieee754.TotalOrderKey32(math.Float32bits(v))
	}
	radix32(keys)
	for i, k := range keys {
		x[i] = math.Float32frombits(fromKey32(k))
	}
}

// Sort64 sorts x in ascending IEEE totalOrder using integer operations
// only. It allocates one scratch slice of len(x).
func Sort64(x []float64) {
	if len(x) < 2 {
		return
	}
	keys := make([]uint64, len(x))
	for i, v := range x {
		keys[i] = ieee754.TotalOrderKey64(math.Float64bits(v))
	}
	radix64(keys)
	for i, k := range keys {
		x[i] = math.Float64frombits(fromKey64(k))
	}
}

// fromKey32 inverts ieee754.TotalOrderKey32.
func fromKey32(k uint32) uint32 {
	if k&0x8000_0000 != 0 {
		return k &^ 0x8000_0000 // was non-negative: clear the flipped sign
	}
	return ^k // was negative: undo full inversion
}

// fromKey64 inverts ieee754.TotalOrderKey64.
func fromKey64(k uint64) uint64 {
	if k&0x8000_0000_0000_0000 != 0 {
		return k &^ 0x8000_0000_0000_0000
	}
	return ^k
}

// radix32 sorts keys ascending with a 4-pass byte-wise LSD radix sort.
func radix32(keys []uint32) {
	buf := make([]uint32, len(keys))
	src, dst := keys, buf
	for shift := uint(0); shift < 32; shift += 8 {
		var count [256]int
		for _, k := range src {
			count[(k>>shift)&0xFF]++
		}
		pos := 0
		for b := 0; b < 256; b++ {
			c := count[b]
			count[b] = pos
			pos += c
		}
		for _, k := range src {
			b := (k >> shift) & 0xFF
			dst[count[b]] = k
			count[b]++
		}
		src, dst = dst, src
	}
	// 4 passes: src ends up pointing at the original slice again.
	_ = dst
}

// radix64 sorts keys ascending with an 8-pass byte-wise LSD radix sort.
func radix64(keys []uint64) {
	buf := make([]uint64, len(keys))
	src, dst := keys, buf
	for shift := uint(0); shift < 64; shift += 8 {
		var count [256]int
		for _, k := range src {
			count[(k>>shift)&0xFF]++
		}
		pos := 0
		for b := 0; b < 256; b++ {
			c := count[b]
			count[b] = pos
			pos += c
		}
		for _, k := range src {
			b := (k >> shift) & 0xFF
			dst[count[b]] = k
			count[b]++
		}
		src, dst = dst, src
	}
	_ = dst
}

// IsSorted32 reports whether x is ascending in IEEE totalOrder, checked
// with integer comparisons only.
func IsSorted32(x []float32) bool {
	for i := 1; i < len(x); i++ {
		a := ieee754.TotalOrderKey32(math.Float32bits(x[i-1]))
		b := ieee754.TotalOrderKey32(math.Float32bits(x[i]))
		if a > b {
			return false
		}
	}
	return true
}

// IsSorted64 is IsSorted32 for float64 slices.
func IsSorted64(x []float64) bool {
	for i := 1; i < len(x); i++ {
		a := ieee754.TotalOrderKey64(math.Float64bits(x[i-1]))
		b := ieee754.TotalOrderKey64(math.Float64bits(x[i]))
		if a > b {
			return false
		}
	}
	return true
}

// Search32 returns the smallest index i in the totalOrder-sorted slice x
// with x[i] >= v (in totalOrder), using integer comparisons only; it
// returns len(x) if no such element exists.
func Search32(x []float32, v float32) int {
	key := ieee754.TotalOrderKey32(math.Float32bits(v))
	lo, hi := 0, len(x)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ieee754.TotalOrderKey32(math.Float32bits(x[mid])) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
