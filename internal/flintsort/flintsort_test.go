package flintsort

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSort32MatchesComparisonSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		a := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64()) * float32(math.Pow(10, float64(rng.Intn(10)-5)))
		}
		b := append([]float32(nil), a...)
		Sort32(a)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: position %d: %v != %v", trial, i, a[i], b[i])
			}
		}
		if !IsSorted32(a) {
			t.Fatal("IsSorted32 disagrees")
		}
	}
}

func TestSort64MatchesComparisonSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
		}
		b := append([]float64(nil), a...)
		Sort64(a)
		sort.Float64s(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: position %d: %v != %v", trial, i, a[i], b[i])
			}
		}
		if !IsSorted64(a) {
			t.Fatal("IsSorted64 disagrees")
		}
	}
}

func TestSortTotalOrderSpecials(t *testing.T) {
	negNaN := math.Float32frombits(0xFFC0_0000)
	posNaN := float32(math.NaN())
	x := []float32{
		posNaN, float32(math.Inf(1)), 1, 0,
		float32(math.Copysign(0, -1)), -1, float32(math.Inf(-1)), negNaN,
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
	}
	Sort32(x)
	// Expected IEEE totalOrder: -NaN, -Inf, -1, -tiny, -0, +0, +tiny, 1, +Inf, +NaN.
	if math.Float32bits(x[0])>>31 != 1 || x[0] == x[0] {
		// x[0] must be the negative NaN: sign bit set and NaN.
		if !(x[0] != x[0] && math.Signbit(float64(x[0]))) {
			t.Fatalf("x[0] = %v (bits %#x), want -NaN", x[0], math.Float32bits(x[0]))
		}
	}
	if !math.IsInf(float64(x[1]), -1) {
		t.Fatalf("x[1] = %v, want -Inf", x[1])
	}
	if x[2] != -1 || x[3] != -math.SmallestNonzeroFloat32 {
		t.Fatalf("negative finites misordered: %v %v", x[2], x[3])
	}
	if !(x[4] == 0 && math.Signbit(float64(x[4]))) {
		t.Fatalf("x[4] = %v, want -0", x[4])
	}
	if !(x[5] == 0 && !math.Signbit(float64(x[5]))) {
		t.Fatalf("x[5] = %v, want +0", x[5])
	}
	if x[6] != math.SmallestNonzeroFloat32 || x[7] != 1 {
		t.Fatalf("positive finites misordered: %v %v", x[6], x[7])
	}
	if !math.IsInf(float64(x[8]), 1) {
		t.Fatalf("x[8] = %v, want +Inf", x[8])
	}
	if !(x[9] != x[9] && !math.Signbit(float64(x[9]))) {
		t.Fatalf("x[9] = %v, want +NaN", x[9])
	}
}

func TestSortQuick(t *testing.T) {
	err := quick.Check(func(x []float32) bool {
		Sort32(x)
		return IsSorted32(x)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
	err = quick.Check(func(x []float64) bool {
		Sort64(x)
		return IsSorted64(x)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestSortPreservesMultiset(t *testing.T) {
	err := quick.Check(func(x []float32) bool {
		before := map[uint32]int{}
		for _, v := range x {
			before[math.Float32bits(v)]++
		}
		Sort32(x)
		after := map[uint32]int{}
		for _, v := range x {
			after[math.Float32bits(v)]++
		}
		if len(before) != len(after) {
			return false
		}
		for k, c := range before {
			if after[k] != c {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestSortEdgeSizes(t *testing.T) {
	Sort32(nil)
	Sort32([]float32{})
	one := []float32{3}
	Sort32(one)
	if one[0] != 3 {
		t.Error("single element changed")
	}
	two := []float32{2, 1}
	Sort32(two)
	if two[0] != 1 || two[1] != 2 {
		t.Errorf("two elements: %v", two)
	}
	Sort64(nil)
	d := []float64{5, -5}
	Sort64(d)
	if d[0] != -5 {
		t.Errorf("Sort64 two elements: %v", d)
	}
}

func TestIsSortedDetectsDisorder(t *testing.T) {
	if IsSorted32([]float32{2, 1}) {
		t.Error("IsSorted32 missed disorder")
	}
	if IsSorted64([]float64{2, 1}) {
		t.Error("IsSorted64 missed disorder")
	}
	if !IsSorted32(nil) || !IsSorted64(nil) {
		t.Error("empty slices are sorted")
	}
	// -0 before +0 is sorted in totalOrder; the reverse is not.
	if !IsSorted32([]float32{float32(math.Copysign(0, -1)), 0}) {
		t.Error("-0,+0 should be sorted")
	}
	if IsSorted32([]float32{0, float32(math.Copysign(0, -1))}) {
		t.Error("+0,-0 should not be sorted in totalOrder")
	}
}

func TestSearch32(t *testing.T) {
	x := []float32{-3, -1, -0.5, 0, 0.5, 1, 3}
	Sort32(x)
	for i, v := range x {
		if got := Search32(x, v); got != i {
			t.Errorf("Search32(%v) = %d, want %d", v, got, i)
		}
	}
	if got := Search32(x, -10); got != 0 {
		t.Errorf("Search32(-10) = %d", got)
	}
	if got := Search32(x, 10); got != len(x) {
		t.Errorf("Search32(10) = %d", got)
	}
	if got := Search32(x, 0.25); got != 4 {
		t.Errorf("Search32(0.25) = %d, want 4 (index of 0.5)", got)
	}
	// Property: Search32 equals sort.Search with float comparison.
	err := quick.Check(func(raw []float32, v float32) bool {
		if v != v {
			return true
		}
		var clean []float32
		for _, r := range raw {
			if r == r {
				clean = append(clean, r)
			}
		}
		Sort32(clean)
		want := sort.Search(len(clean), func(i int) bool {
			// totalOrder >= for non-NaN data with -0/+0 tie handling.
			if clean[i] == v {
				ki := math.Float32bits(clean[i])
				kv := math.Float32bits(v)
				return ki == kv || (ki>>31 <= kv>>31)
			}
			return clean[i] > v
		})
		return Search32(clean, v) == want
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}
