// Package isa models the ARMv8 instruction subset emitted by the
// flint code generator for if-else trees (codegen.LangARMv8, the paper's
// Listing 5) and parses that assembly text into an executable program
// representation for the asmsim simulator.
//
// The subset is exactly what tree inference needs:
//
//	ldrsw x<d>, [x0, #<off>]      load feature word, sign-extended
//	ldr   s<d>, [x0, #<off>]      load feature word into an FP register
//	ldr   w<d>, =<imm32>          literal-pool load (compiled-C flavor)
//	ldr   s<d>, =<imm32>          literal-pool load into an FP register
//	movz  w<d>, #<imm16>          materialize low half
//	movk  w<d>, #<imm16>, lsl #16 materialize high half
//	fmov  s<d>, w<n>              move GP to FP register
//	eor   x<d>, x<n>, #<imm>      sign-bit flip (Listing 4/5)
//	cmp   w<n>, w<m>              integer compare
//	fcmp  s<n>, s<m>              float compare
//	b.gt / b.le <label>           conditional branches
//	mov   w0, #<imm>              leaf class
//	ret                           return
//
// Programs consist of global functions (one per tree) and local labels.
package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Op enumerates the modeled operations.
type Op int

// Operations of the modeled ARMv8 subset.
const (
	OpLdrFeature  Op = iota // ldrsw xD, [x0, #off]  (GP feature load)
	OpLdrFeatureF           // ldr sD, [x0, #off]    (FP feature load)
	OpLdrLit                // ldr wD, =imm          (literal-pool load)
	OpLdrLitF               // ldr sD, =imm          (literal-pool FP load)
	OpMovz                  // movz wD, #imm
	OpMovk                  // movk wD, #imm, lsl #16
	OpFmov                  // fmov sD, wN
	OpEor                   // eor xD, xN, #imm
	OpCmp                   // cmp wN, wM
	OpFcmp                  // fcmp sN, sM
	OpBgt                   // b.gt label
	OpBle                   // b.le label
	OpMovImm                // mov w0, #imm
	OpRet                   // ret
)

// String returns the assembly mnemonic.
func (o Op) String() string {
	switch o {
	case OpLdrFeature:
		return "ldrsw"
	case OpLdrFeatureF, OpLdrLit, OpLdrLitF:
		return "ldr"
	case OpMovz:
		return "movz"
	case OpMovk:
		return "movk"
	case OpFmov:
		return "fmov"
	case OpEor:
		return "eor"
	case OpCmp:
		return "cmp"
	case OpFcmp:
		return "fcmp"
	case OpBgt:
		return "b.gt"
	case OpBle:
		return "b.le"
	case OpMovImm:
		return "mov"
	case OpRet:
		return "ret"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Instr is one decoded instruction.
type Instr struct {
	Op     Op
	Rd     int    // destination register number
	Rn     int    // first source register number
	Rm     int    // second source register number
	Imm    uint64 // immediate operand
	Target int    // resolved branch target (instruction index)
	Label  string // unresolved branch label (kept for diagnostics)
}

// Program is a parsed translation unit.
type Program struct {
	// Instrs is the flat instruction stream; addresses are indices.
	Instrs []Instr
	// Funcs maps global function names to entry indices.
	Funcs map[string]int
}

// NumFuncs returns the number of global functions.
func (p *Program) NumFuncs() int { return len(p.Funcs) }

// Parse decodes assembly text produced by the flint ARMv8 emitter.
func Parse(src string) (*Program, error) {
	p := &Program{Funcs: make(map[string]int)}
	labels := make(map[string]int)
	type patch struct {
		instr int
		label string
		line  int
	}
	var patches []patch

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, ".text") ||
			strings.HasPrefix(line, ".global") {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if strings.HasPrefix(name, ".L") {
				labels[name] = len(p.Instrs)
			} else {
				p.Funcs[name] = len(p.Instrs)
			}
			continue
		}
		instr, targetLabel, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
		if targetLabel != "" {
			patches = append(patches, patch{len(p.Instrs), targetLabel, lineNo + 1})
		}
		p.Instrs = append(p.Instrs, instr)
	}
	for _, pt := range patches {
		tgt, ok := labels[pt.label]
		if !ok {
			return nil, fmt.Errorf("isa: line %d: undefined label %q", pt.line, pt.label)
		}
		p.Instrs[pt.instr].Target = tgt
	}
	if len(p.Funcs) == 0 {
		return nil, fmt.Errorf("isa: no global functions found")
	}
	return p, nil
}

// reg parses a register operand like "x1", "w2" or "s0", returning its
// number.
func reg(tok string) (int, error) {
	tok = strings.TrimSuffix(strings.TrimSpace(tok), ",")
	if len(tok) < 2 {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	switch tok[0] {
	case 'x', 'w', 's':
		n, err := strconv.Atoi(tok[1:])
		if err != nil || n < 0 || n > 31 {
			return 0, fmt.Errorf("bad register %q", tok)
		}
		return n, nil
	}
	return 0, fmt.Errorf("bad register %q", tok)
}

// imm parses an immediate operand like "#0x3087", "#12" or "=0x41213087".
func imm(tok string) (uint64, error) {
	tok = strings.TrimSuffix(strings.TrimSpace(tok), ",")
	tok = strings.TrimPrefix(tok, "#")
	tok = strings.TrimPrefix(tok, "=")
	v, err := strconv.ParseUint(tok, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", tok)
	}
	return v, nil
}

// parseInstr decodes one instruction line. For branches it returns the
// unresolved target label.
func parseInstr(line string) (Instr, string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Instr{}, "", fmt.Errorf("empty instruction")
	}
	mnemonic, ops := fields[0], fields[1:]
	join := strings.Join(ops, " ")
	switch mnemonic {
	case "ret":
		return Instr{Op: OpRet}, "", nil

	case "ldrsw", "ldr":
		if len(ops) < 2 {
			return Instr{}, "", fmt.Errorf("ldr needs 2 operands: %q", line)
		}
		rd, err := reg(ops[0])
		if err != nil {
			return Instr{}, "", err
		}
		isFP := strings.HasPrefix(strings.TrimSpace(ops[0]), "s")
		if strings.HasPrefix(ops[1], "=") {
			v, err := imm(ops[1])
			if err != nil {
				return Instr{}, "", err
			}
			op := OpLdrLit
			if isFP {
				op = OpLdrLitF
			}
			return Instr{Op: op, Rd: rd, Imm: v}, "", nil
		}
		// [x0, #off]
		inner := strings.TrimSuffix(strings.TrimPrefix(join[strings.Index(join, "["):], "["), "]")
		parts := strings.Split(inner, ",")
		if len(parts) != 2 {
			return Instr{}, "", fmt.Errorf("bad address %q", line)
		}
		base, err := reg(parts[0])
		if err != nil {
			return Instr{}, "", err
		}
		if base != 0 {
			return Instr{}, "", fmt.Errorf("only [x0, #off] addressing is modeled: %q", line)
		}
		off, err := imm(parts[1])
		if err != nil {
			return Instr{}, "", err
		}
		op := OpLdrFeature
		if mnemonic == "ldr" && isFP {
			op = OpLdrFeatureF
		} else if mnemonic == "ldr" {
			return Instr{}, "", fmt.Errorf("integer ldr from memory not in subset (use ldrsw): %q", line)
		}
		return Instr{Op: op, Rd: rd, Imm: off}, "", nil

	case "movz", "movk":
		if len(ops) < 2 {
			return Instr{}, "", fmt.Errorf("%s needs operands: %q", mnemonic, line)
		}
		rd, err := reg(ops[0])
		if err != nil {
			return Instr{}, "", err
		}
		v, err := imm(ops[1])
		if err != nil {
			return Instr{}, "", err
		}
		op := OpMovz
		if mnemonic == "movk" {
			op = OpMovk
			if !strings.Contains(join, "lsl #16") {
				return Instr{}, "", fmt.Errorf("movk requires lsl #16 in this subset: %q", line)
			}
		}
		return Instr{Op: op, Rd: rd, Imm: v}, "", nil

	case "fmov":
		rd, err := reg(ops[0])
		if err != nil {
			return Instr{}, "", err
		}
		rn, err := reg(ops[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: OpFmov, Rd: rd, Rn: rn}, "", nil

	case "eor":
		if len(ops) != 3 {
			return Instr{}, "", fmt.Errorf("eor needs 3 operands: %q", line)
		}
		rd, err := reg(ops[0])
		if err != nil {
			return Instr{}, "", err
		}
		rn, err := reg(ops[1])
		if err != nil {
			return Instr{}, "", err
		}
		v, err := imm(ops[2])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: OpEor, Rd: rd, Rn: rn, Imm: v}, "", nil

	case "cmp", "fcmp":
		rn, err := reg(ops[0])
		if err != nil {
			return Instr{}, "", err
		}
		rm, err := reg(ops[1])
		if err != nil {
			return Instr{}, "", err
		}
		op := OpCmp
		if mnemonic == "fcmp" {
			op = OpFcmp
		}
		return Instr{Op: op, Rn: rn, Rm: rm}, "", nil

	case "b.gt", "b.le":
		op := OpBgt
		if mnemonic == "b.le" {
			op = OpBle
		}
		return Instr{Op: op, Label: ops[0]}, ops[0], nil

	case "mov":
		rd, err := reg(ops[0])
		if err != nil {
			return Instr{}, "", err
		}
		v, err := imm(ops[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: OpMovImm, Rd: rd, Imm: v}, "", nil
	}
	return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
}
