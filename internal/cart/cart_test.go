package cart

import (
	"math"
	"testing"

	"flint/internal/dataset"
	"flint/internal/rf"
)

// xorDataset is a small nonlinear problem a depth-2 tree solves exactly:
// label = (x0 > 0) XOR (x1 > 0).
func xorDataset(n int) *dataset.Dataset {
	d := &dataset.Dataset{Name: "xor", NumClasses: 2}
	vals := []float32{-2, -1.5, -1, -0.5, 0.5, 1, 1.5, 2}
	for i := 0; i < n; i++ {
		x0 := vals[i%len(vals)]
		x1 := vals[(i*3+1)%len(vals)]
		label := int32(0)
		if (x0 > 0) != (x1 > 0) {
			label = 1
		}
		d.Features = append(d.Features, []float32{x0, x1})
		d.Labels = append(d.Labels, label)
	}
	return d
}

func TestTrainTreeSolvesXOR(t *testing.T) {
	d := xorDataset(64)
	tree, err := TrainTree(d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range d.Features {
		if got := tree.Predict(x); got != d.Labels[i] {
			t.Fatalf("tree mispredicts row %d: got %d want %d", i, got, d.Labels[i])
		}
	}
	if depth := tree.Depth(); depth < 2 {
		t.Errorf("XOR needs depth >= 2, got %d", depth)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	d, err := dataset.Generate("magic", 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxDepth := range []int{1, 2, 5, 10} {
		f, err := TrainForest(d, Config{NumTrees: 3, MaxDepth: maxDepth, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if got := f.MaxDepth(); got > maxDepth {
			t.Errorf("MaxDepth=%d: trained depth %d", maxDepth, got)
		}
		// Depth-1 trees are stumps with exactly one split.
		if maxDepth == 1 {
			for _, tr := range f.Trees {
				if len(tr.Nodes) > 3 {
					t.Errorf("depth-1 tree has %d nodes", len(tr.Nodes))
				}
			}
		}
	}
}

func TestForestValidatesAndIsDeterministic(t *testing.T) {
	d, err := dataset.Generate("wine", 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{NumTrees: 5, MaxDepth: 8, Seed: 42}
	a, err := TrainForest(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("forest invalid: %v", err)
	}
	b, err := TrainForest(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("same seed produced different forests: %d vs %d nodes", a.NumNodes(), b.NumNodes())
	}
	for ti := range a.Trees {
		for ni := range a.Trees[ti].Nodes {
			if a.Trees[ti].Nodes[ni] != b.Trees[ti].Nodes[ni] {
				t.Fatalf("tree %d node %d differs", ti, ni)
			}
		}
	}
	c, err := TrainForest(d, Config{NumTrees: 5, MaxDepth: 8, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() == c.NumNodes() {
		same := true
		for ti := range a.Trees {
			for ni := range a.Trees[ti].Nodes {
				if a.Trees[ti].Nodes[ni] != c.Trees[ti].Nodes[ni] {
					same = false
				}
			}
		}
		if same {
			t.Error("different seeds produced identical forests")
		}
	}
}

func TestForestBeatsChance(t *testing.T) {
	for _, name := range dataset.Names() {
		d, err := dataset.Generate(name, 800, 11)
		if err != nil {
			t.Fatal(err)
		}
		train, test := d.Split(0.75, 1)
		f, err := TrainForest(train, Config{NumTrees: 10, MaxDepth: 12, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		acc := rf.Accuracy(f, test.Features, test.Labels)
		chance := 1.0 / float64(d.NumClasses)
		if acc < chance+0.15 {
			t.Errorf("%s: forest accuracy %.3f too close to chance %.3f", name, acc, chance)
		}
	}
}

func TestDeeperForestsGrow(t *testing.T) {
	// The depth sweep of Figure 3 only makes sense if raising the depth
	// cap actually yields deeper trees until the data is exhausted.
	d, err := dataset.Generate("gas", 600, 2)
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := TrainForest(d, Config{NumTrees: 2, MaxDepth: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := TrainForest(d, Config{NumTrees: 2, MaxDepth: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if deep.NumNodes() <= shallow.NumNodes() {
		t.Errorf("deeper cap did not grow the forest: %d vs %d nodes",
			deep.NumNodes(), shallow.NumNodes())
	}
}

func TestLeftFractionsRecorded(t *testing.T) {
	d, err := dataset.Generate("magic", 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainForest(d, Config{NumTrees: 2, MaxDepth: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	inner, nontrivial := 0, 0
	for _, tr := range f.Trees {
		for _, n := range tr.Nodes {
			if n.IsLeaf() {
				continue
			}
			inner++
			if n.LeftFraction <= 0 || n.LeftFraction >= 1 {
				t.Fatalf("inner node has degenerate LeftFraction %v", n.LeftFraction)
			}
			if n.LeftFraction != 0.5 {
				nontrivial++
			}
		}
	}
	if inner == 0 {
		t.Fatal("no inner nodes trained")
	}
	if nontrivial == 0 {
		t.Error("all branch probabilities are exactly 0.5; CAGS would be a no-op")
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	d := xorDataset(64)
	f, err := TrainForest(d, Config{
		NumTrees: 1, MinSamplesLeaf: 10, DisableBootstrap: true, MaxFeatures: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Count samples reaching each leaf; none may hold fewer than 10.
	counts := make(map[int32]int)
	tr := f.Trees[0]
	for _, x := range d.Features {
		i := int32(0)
		for !tr.Nodes[i].IsLeaf() {
			if x[tr.Nodes[i].Feature] <= tr.Nodes[i].Split {
				i = tr.Nodes[i].Left
			} else {
				i = tr.Nodes[i].Right
			}
		}
		counts[i]++
	}
	for leaf, c := range counts {
		if c < 10 {
			t.Errorf("leaf %d holds %d samples, want >= 10", leaf, c)
		}
	}
}

func TestConstantFeaturesYieldLeaf(t *testing.T) {
	d := &dataset.Dataset{Name: "const", NumClasses: 2}
	for i := 0; i < 20; i++ {
		d.Features = append(d.Features, []float32{1.5, -2.5})
		d.Labels = append(d.Labels, int32(i%2))
	}
	tree, err := TrainTree(d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Nodes) != 1 || !tree.Nodes[0].IsLeaf() {
		t.Fatalf("constant features must produce a single leaf, got %d nodes", len(tree.Nodes))
	}
}

func TestPureNodeStops(t *testing.T) {
	d := &dataset.Dataset{Name: "pure", NumClasses: 2}
	for i := 0; i < 20; i++ {
		d.Features = append(d.Features, []float32{float32(i)})
		d.Labels = append(d.Labels, 0)
	}
	tree, err := TrainTree(d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Nodes) != 1 {
		t.Fatalf("pure dataset must produce a single leaf, got %d nodes", len(tree.Nodes))
	}
	if tree.Nodes[0].Class != 0 {
		t.Error("wrong leaf class")
	}
}

func TestMidpoint(t *testing.T) {
	if m := midpoint(1, 2); m != 1.5 {
		t.Errorf("midpoint(1,2) = %v", m)
	}
	// Adjacent float32 values: the midpoint would round to b, so the rule
	// must fall back to a.
	a := float32(1)
	b := math.Nextafter32(a, 2)
	if m := midpoint(a, b); m != a {
		t.Errorf("midpoint of adjacent floats = %v, want %v", m, a)
	}
	if m := midpoint(-2, -1); m != -1.5 {
		t.Errorf("midpoint(-2,-1) = %v", m)
	}
	// Large magnitudes must not overflow to +Inf.
	if m := midpoint(math.MaxFloat32, math.MaxFloat32); m != math.MaxFloat32 {
		t.Errorf("midpoint(max,max) = %v", m)
	}
}

func TestSplitsSeparateTrainingData(t *testing.T) {
	// Every trained split must route at least one training sample to each
	// side — the property midpoint() exists to protect.
	d, err := dataset.Generate("eye", 400, 13)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainForest(d, Config{NumTrees: 3, MaxDepth: 10, Seed: 2, DisableBootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range f.Trees {
		tr := &f.Trees[ti]
		for ni, n := range tr.Nodes {
			if n.IsLeaf() {
				continue
			}
			if n.LeftFraction <= 0 || n.LeftFraction >= 1 {
				t.Errorf("tree %d node %d: split does not separate (fraction %v)", ti, ni, n.LeftFraction)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	d := xorDataset(16)
	bad := []Config{
		{NumTrees: -1},
		{MaxDepth: -2},
		{MinSamplesSplit: 1},
		{MinSamplesLeaf: -1},
	}
	for i, cfg := range bad {
		if _, err := TrainForest(d, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := TrainForest(&dataset.Dataset{Name: "empty", NumClasses: 2}, Config{}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestMaxFeaturesAll(t *testing.T) {
	d := xorDataset(64)
	f, err := TrainForest(d, Config{NumTrees: 1, MaxFeatures: -1, DisableBootstrap: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rf.Accuracy(f, d.Features, d.Labels) != 1 {
		t.Error("full-feature tree should fit XOR exactly")
	}
	// MaxFeatures beyond the dimensionality clamps.
	f2, err := TrainForest(d, Config{NumTrees: 1, MaxFeatures: 99, DisableBootstrap: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rf.Accuracy(f2, d.Features, d.Labels) != 1 {
		t.Error("clamped MaxFeatures should behave like all features")
	}
}

func TestGiniMass(t *testing.T) {
	if g := giniMass([]int64{5, 5}, 10); math.Abs(g-5) > 1e-12 {
		t.Errorf("giniMass balanced = %v, want 5 (0.5 * 10)", g)
	}
	if g := giniMass([]int64{10, 0}, 10); g != 0 {
		t.Errorf("giniMass pure = %v, want 0", g)
	}
	if g := giniMass(nil, 0); g != 0 {
		t.Errorf("giniMass empty = %v", g)
	}
}
