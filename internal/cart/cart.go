// Package cart trains random forests of CART decision trees, replacing
// the scikit-learn training step of the paper's evaluation (Section V-A).
//
// The trainer mirrors scikit-learn's RandomForestClassifier defaults where
// they matter for this reproduction: Gini impurity, bootstrap resampling,
// sqrt(features) candidate features per node, midpoint split thresholds
// stored as float32, and a maximal tree depth that counts edges (so the
// paper's "maximal depth 1" is a single split). Hyper-parameter tuning is
// explicitly out of the paper's scope, and out of this package's too.
//
// During construction the trainer records, for every inner node, the
// empirical fraction of training samples that take the left branch. This
// is the branch-probability information the CAGS optimization of Chen et
// al. consumes (package cags).
package cart

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flint/internal/dataset"
	"flint/internal/rf"
)

// Config controls forest training. The zero value requests the defaults
// documented on each field.
type Config struct {
	// NumTrees is the ensemble size. Default 10.
	NumTrees int
	// MaxDepth limits the number of edges on any root-to-leaf path.
	// 0 means unlimited.
	MaxDepth int
	// MinSamplesSplit is the smallest node size that may still be
	// split. Default 2.
	MinSamplesSplit int
	// MinSamplesLeaf is the smallest sample count a child may receive.
	// Default 1.
	MinSamplesLeaf int
	// MaxFeatures is the number of candidate features examined per
	// node. 0 selects round(sqrt(NumFeatures)), scikit-learn's
	// classifier default. Negative selects all features.
	MaxFeatures int
	// DisableBootstrap trains every tree on the full training set
	// instead of a bootstrap resample.
	DisableBootstrap bool
	// Seed makes training deterministic. Trees t derives its private
	// stream from Seed and t.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.NumTrees == 0 {
		c.NumTrees = 10
	}
	if c.MinSamplesSplit == 0 {
		c.MinSamplesSplit = 2
	}
	if c.MinSamplesLeaf == 0 {
		c.MinSamplesLeaf = 1
	}
	return c
}

func (c Config) validate() error {
	if c.NumTrees < 1 {
		return fmt.Errorf("cart: NumTrees = %d, want >= 1", c.NumTrees)
	}
	if c.MaxDepth < 0 {
		return fmt.Errorf("cart: MaxDepth = %d, want >= 0", c.MaxDepth)
	}
	if c.MinSamplesSplit < 2 {
		return fmt.Errorf("cart: MinSamplesSplit = %d, want >= 2", c.MinSamplesSplit)
	}
	if c.MinSamplesLeaf < 1 {
		return fmt.Errorf("cart: MinSamplesLeaf = %d, want >= 1", c.MinSamplesLeaf)
	}
	return nil
}

// TrainForest trains a random forest on the dataset.
func TrainForest(d *dataset.Dataset, cfg Config) (*rf.Forest, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("cart: cannot train on empty dataset %s", d.Name)
	}
	nf := d.NumFeatures()
	maxFeat := cfg.MaxFeatures
	switch {
	case maxFeat == 0:
		maxFeat = int(math.Round(math.Sqrt(float64(nf))))
		if maxFeat < 1 {
			maxFeat = 1
		}
	case maxFeat < 0 || maxFeat > nf:
		maxFeat = nf
	}

	forest := &rf.Forest{
		NumFeatures: nf,
		NumClasses:  d.NumClasses,
		Trees:       make([]rf.Tree, cfg.NumTrees),
	}
	for t := 0; t < cfg.NumTrees; t++ {
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(t)))
		idx := make([]int, d.Len())
		if cfg.DisableBootstrap {
			for i := range idx {
				idx[i] = i
			}
		} else {
			for i := range idx {
				idx[i] = rng.Intn(d.Len())
			}
		}
		b := &builder{
			data:     d,
			cfg:      cfg,
			maxFeat:  maxFeat,
			rng:      rng,
			features: make([]int, nf),
			classBuf: make([]int64, d.NumClasses),
		}
		for i := range b.features {
			b.features[i] = i
		}
		b.grow(idx, 0)
		forest.Trees[t] = rf.Tree{Nodes: b.nodes}
	}
	if err := forest.Validate(); err != nil {
		return nil, fmt.Errorf("cart: trained forest fails validation: %w", err)
	}
	return forest, nil
}

// TrainTree trains a single deterministic decision tree on the full
// dataset without bootstrap or feature subsampling — the classic CART
// setting, useful for tests and the code generation examples.
func TrainTree(d *dataset.Dataset, maxDepth int, seed int64) (*rf.Tree, error) {
	f, err := TrainForest(d, Config{
		NumTrees:         1,
		MaxDepth:         maxDepth,
		MaxFeatures:      -1,
		DisableBootstrap: true,
		Seed:             seed,
	})
	if err != nil {
		return nil, err
	}
	return &f.Trees[0], nil
}

// builder grows one tree.
type builder struct {
	data     *dataset.Dataset
	cfg      Config
	maxFeat  int
	rng      *rand.Rand
	nodes    []rf.Node
	features []int   // identity permutation, partially shuffled per node
	classBuf []int64 // scratch class histogram
}

// grow appends the subtree for the samples in idx and returns its root's
// node index.
func (b *builder) grow(idx []int, depth int) int32 {
	hist := b.classHist(idx)
	if len(idx) < b.cfg.MinSamplesSplit ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) ||
		isPure(hist) {
		return b.leaf(hist)
	}
	feat, split, ok := b.bestSplit(idx, hist)
	if !ok {
		return b.leaf(hist)
	}
	left, right := partition(b.data, idx, feat, split)
	if len(left) < b.cfg.MinSamplesLeaf || len(right) < b.cfg.MinSamplesLeaf {
		return b.leaf(hist)
	}
	me := int32(len(b.nodes))
	b.nodes = append(b.nodes, rf.Node{
		Feature:      int32(feat),
		Split:        split,
		LeftFraction: float64(len(left)) / float64(len(idx)),
	})
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.nodes[me].Left = l
	b.nodes[me].Right = r
	return me
}

func (b *builder) leaf(hist []int64) int32 {
	best := 0
	for c := 1; c < len(hist); c++ {
		if hist[c] > hist[best] {
			best = c
		}
	}
	me := int32(len(b.nodes))
	b.nodes = append(b.nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(best)})
	return me
}

func (b *builder) classHist(idx []int) []int64 {
	hist := make([]int64, b.data.NumClasses)
	for _, i := range idx {
		hist[b.data.Labels[i]]++
	}
	return hist
}

func isPure(hist []int64) bool {
	nonzero := 0
	for _, c := range hist {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

// gini returns n * (1 - sum_c p_c^2) scaled by n, i.e. the impurity mass,
// so weighted sums across children need no division.
func giniMass(hist []int64, n int64) float64 {
	if n == 0 {
		return 0
	}
	sumSq := 0.0
	for _, c := range hist {
		sumSq += float64(c) * float64(c)
	}
	return float64(n) - sumSq/float64(n)
}

// splitCandidate is a sortable (value, label) pair.
type splitCandidate struct {
	v float32
	y int32
}

// bestSplit scans maxFeat randomly chosen features for the Gini-optimal
// split of the samples in idx. It returns ok=false when no feature admits
// a separating threshold (all candidate features constant).
func (b *builder) bestSplit(idx []int, hist []int64) (feat int, split float32, ok bool) {
	n := int64(len(idx))
	parent := giniMass(hist, n)
	bestGain := 1e-12
	cand := make([]splitCandidate, len(idx))

	// Partial Fisher-Yates over the feature identity permutation gives a
	// uniform random subset of maxFeat features.
	nf := len(b.features)
	for i := 0; i < b.maxFeat && i < nf; i++ {
		j := i + b.rng.Intn(nf-i)
		b.features[i], b.features[j] = b.features[j], b.features[i]
	}

	for fi := 0; fi < b.maxFeat && fi < nf; fi++ {
		f := b.features[fi]
		for i, s := range idx {
			cand[i] = splitCandidate{v: b.data.Features[s][f], y: b.data.Labels[s]}
		}
		sort.Slice(cand, func(i, j int) bool { return cand[i].v < cand[j].v })
		if cand[0].v == cand[len(cand)-1].v {
			continue // constant feature
		}
		left := b.classBuf
		for c := range left {
			left[c] = 0
		}
		var nl int64
		for i := 0; i < len(cand)-1; i++ {
			left[cand[i].y]++
			nl++
			if cand[i].v == cand[i+1].v {
				continue
			}
			// right histogram = hist - left, impurity mass via sums.
			sumSqL, sumSqR := 0.0, 0.0
			for c := range left {
				l := float64(left[c])
				r := float64(hist[c] - left[c])
				sumSqL += l * l
				sumSqR += r * r
			}
			nr := n - nl
			child := (float64(nl) - sumSqL/float64(nl)) + (float64(nr) - sumSqR/float64(nr))
			gain := parent - child
			if gain > bestGain {
				bestGain = gain
				feat = f
				split = midpoint(cand[i].v, cand[i+1].v)
				ok = true
			}
		}
	}
	return feat, split, ok
}

// midpoint returns a float32 threshold strictly separating a < b:
// (a+b)/2, falling back to a when rounding lands on b (scikit-learn's
// rule, which keeps `x <= threshold` a true partition).
func midpoint(a, b float32) float32 {
	m := float32((float64(a) + float64(b)) / 2)
	if m >= b { // float32 rounding collapsed the midpoint onto b
		m = a
	}
	return m
}

// partition splits idx by the predicate x[feat] <= split, preserving
// relative order.
func partition(d *dataset.Dataset, idx []int, feat int, split float32) (left, right []int) {
	for _, s := range idx {
		if d.Features[s][feat] <= split {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}
	return left, right
}
