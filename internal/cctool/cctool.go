// Package cctool centralizes host C compiler detection for everything
// that compiles generated code: the cc bench backend and the gcc-backed
// differential tests. One probe, one skip message — instead of each
// caller growing its own LookPath loop with slightly different wording.
package cctool

import "os/exec"

// candidates is the PATH probe order: prefer gcc (the toolchain the
// paper benchmarks and CI installs), fall back to the system cc alias.
var candidates = [...]string{"gcc", "cc"}

// SkipMessage is the single sentence cc-backed tests and benches use
// when no compiler is found, so every skip in a test log reads the same.
const SkipMessage = "no C compiler available (install gcc to run compiled-code differentials)"

// Path returns the first C compiler found on PATH (gcc preferred, cc
// fallback) and whether one was found at all.
func Path() (string, bool) {
	for _, cc := range candidates {
		if p, err := exec.LookPath(cc); err == nil {
			return p, true
		}
	}
	return "", false
}
