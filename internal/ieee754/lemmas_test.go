package ieee754

// This file verifies the formal claims of Section III of the FLInt paper
// against the exact interpretations in this package. Every lemma is
// checked exhaustively on Mini8 (all 256x256 bit-vector pairs), over all
// single values of Binary16, and on structured plus pseudo-random pairs of
// Binary32/Binary64. NaN patterns are excluded exactly as the paper's
// Section III-A excludes them.

import (
	"math/rand"
	"testing"
)

// pairSource yields non-NaN bit-pattern pairs for a format: exhaustive for
// Mini8, structured+random otherwise.
func pairSource(t *testing.T, f Format, fn func(x, y uint64)) {
	t.Helper()
	if f.Bits() <= 8 {
		for _, x := range f.AllBits() {
			if f.IsNaN(x) {
				continue
			}
			for _, y := range f.AllBits() {
				if f.IsNaN(y) {
					continue
				}
				fn(x, y)
			}
		}
		return
	}
	interesting := []uint64{
		0,
		f.SignMask(),        // -0
		1, f.SignMask() | 1, // smallest denormals
		f.MantMask(), f.SignMask() | f.MantMask(), // largest denormals
		f.Pack(0, 1, 0), f.Pack(1, 1, 0), // smallest normals
		f.Pack(0, uint64(f.Bias()), 0), f.Pack(1, uint64(f.Bias()), 0), // ±1
		f.Pack(0, (1<<f.ExpBits())-2, f.MantMask()), // +max
		f.Pack(1, (1<<f.ExpBits())-2, f.MantMask()), // -max
		f.Pack(0, (1<<f.ExpBits())-1, 0),            // +inf
		f.Pack(1, (1<<f.ExpBits())-1, 0),            // -inf
	}
	rng := rand.New(rand.NewSource(0x7157))
	var pool []uint64
	pool = append(pool, interesting...)
	for len(pool) < 160 {
		b := rng.Uint64() & f.Mask()
		if !f.IsNaN(b) {
			pool = append(pool, b)
		}
	}
	for _, x := range pool {
		for _, y := range pool {
			fn(x, y)
		}
	}
}

var lemmaFormats = []Format{Mini8, Binary16, BFloat16, Binary32, Binary64}

// Lemma 1: FP(X) = FP(Y) <=> X = Y <=> SI(X) = SI(Y), under the paper's
// bijective semantics (-0 != +0).
func TestLemma1Equality(t *testing.T) {
	for _, f := range lemmaFormats {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			pairSource(t, f, func(x, y uint64) {
				fpEq := f.CompareFP(x, y) == 0
				bitEq := x == y
				siEq := f.SI(x) == f.SI(y)
				if fpEq != bitEq || bitEq != siEq {
					t.Fatalf("Lemma 1 violated at x=%#x y=%#x: fpEq=%v bitEq=%v siEq=%v",
						x, y, fpEq, bitEq, siEq)
				}
			})
		})
	}
}

// Lemma 2: with equal sign bits, |FP(X)| > |FP(Y)| <=> SI(X) > SI(Y).
func TestLemma2AbsoluteOrder(t *testing.T) {
	for _, f := range lemmaFormats {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			pairSource(t, f, func(x, y uint64) {
				if f.SignBit(x) != f.SignBit(y) {
					return
				}
				absGreater := f.CompareFP(f.Abs(x), f.Abs(y)) > 0
				siGreater := f.SI(x) > f.SI(y)
				// For negative sign bits, larger SI means larger |FP|
				// as well (the mantissa/exponent fields grow together);
				// the lemma is stated for both signs jointly.
				if absGreater != siGreater {
					t.Fatalf("Lemma 2 violated at x=%#x y=%#x: |FP| greater=%v, SI greater=%v",
						x, y, absGreater, siGreater)
				}
			})
		})
	}
}

// Lemma 3: both sign bits 0: FP(X) > FP(Y) <=> SI(X) > SI(Y).
func TestLemma3PositiveOrder(t *testing.T) {
	for _, f := range lemmaFormats {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			pairSource(t, f, func(x, y uint64) {
				if f.SignBit(x) || f.SignBit(y) {
					return
				}
				if (f.CompareFP(x, y) > 0) != (f.SI(x) > f.SI(y)) {
					t.Fatalf("Lemma 3 violated at x=%#x y=%#x", x, y)
				}
			})
		})
	}
}

// Lemma 4: both sign bits 1: FP(X) >= FP(Y) <=> SI(X) <= SI(Y).
func TestLemma4NegativeOrder(t *testing.T) {
	for _, f := range lemmaFormats {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			pairSource(t, f, func(x, y uint64) {
				if !f.SignBit(x) || !f.SignBit(y) {
					return
				}
				if (f.CompareFP(x, y) >= 0) != (f.SI(x) <= f.SI(y)) {
					t.Fatalf("Lemma 4 violated at x=%#x y=%#x", x, y)
				}
			})
		})
	}
}

// Lemma 5: different sign bits: FP(X) > FP(Y) <=> SI(X) > SI(Y).
func TestLemma5MixedSigns(t *testing.T) {
	for _, f := range lemmaFormats {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			pairSource(t, f, func(x, y uint64) {
				if f.SignBit(x) == f.SignBit(y) {
					return
				}
				if (f.CompareFP(x, y) > 0) != (f.SI(x) > f.SI(y)) {
					t.Fatalf("Lemma 5 violated at x=%#x y=%#x", x, y)
				}
			})
		})
	}
}

// Lemma 6: both sign bits 1: FP(X) > FP(Y) <=> SI(X) < SI(Y)
// (the strict version obtained from Lemma 4 via Lemma 1).
func TestLemma6NegativeStrictOrder(t *testing.T) {
	for _, f := range lemmaFormats {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			pairSource(t, f, func(x, y uint64) {
				if !f.SignBit(x) || !f.SignBit(y) {
					return
				}
				if (f.CompareFP(x, y) > 0) != (f.SI(x) < f.SI(y)) {
					t.Fatalf("Lemma 6 violated at x=%#x y=%#x", x, y)
				}
			})
		})
	}
}

// Corollary 1: FP(X) >= FP(Y) is SI(X) < SI(Y) when both are negative and
// unequal, otherwise SI(X) >= SI(Y).
func TestCorollary1(t *testing.T) {
	for _, f := range lemmaFormats {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			pairSource(t, f, func(x, y uint64) {
				want := f.CompareFP(x, y) >= 0
				var got bool
				bothNeg := f.SI(x) < 0 && f.SI(y) < 0
				if bothNeg && f.SI(x) != f.SI(y) {
					got = f.SI(x) < f.SI(y)
				} else {
					got = f.SI(x) >= f.SI(y)
				}
				if got != want {
					t.Fatalf("Corollary 1 violated at x=%#x y=%#x: got %v want %v",
						x, y, got, want)
				}
			})
		})
	}
}

// Figure 2 of the paper plots FP(B) against SI(B) for all 32-bit vectors:
// the curve is strictly increasing on the non-negative half and strictly
// decreasing on the negative half. Verify the shape on a dense sweep.
func TestFigure2Shape(t *testing.T) {
	f := Binary32
	// Ascending SI through the positive patterns (0 .. 0x7F7FFFFF).
	prev := uint64(0)
	for b := uint64(0x10_0000); b <= 0x7F7F_FFFF; b += 0x10_0000 {
		if f.CompareFP(prev, b) >= 0 {
			t.Fatalf("positive half not increasing at %#x", b)
		}
		prev = b
	}
	// Ascending SI through the negative patterns means descending FP:
	// SI(0xFFFFFFFF)=-1 is the largest negative SI and encodes the
	// negative value closest to... -NaN actually; stay below -inf range.
	prev = 0xFF7F_FFFF // -MaxFloat32, SI = small
	for b := uint64(0xFF6F_FFFF); b >= 0x8010_0000; b -= 0x10_0000 {
		// b decreasing => SI decreasing => FP must increase... careful:
		// for negative patterns, larger UI = more negative FP. We walk
		// UI downward, so FP must increase.
		if f.CompareFP(b, prev) <= 0 {
			t.Fatalf("negative half shape broken at %#x", b)
		}
		prev = b
	}
}
