// Package ieee754 models binary floating point formats at the bit level.
//
// It implements Definitions 1-4 of the FLInt paper (Hakert, Chen, Chen;
// DATE 2024): the interpretation of a k-bit vector as an unsigned integer
// UI(B), as a two's-complement signed integer SI(B), and as a binary
// floating point number FP(B) with a sign bit, a biased exponent and a
// mantissa with an implicit leading one (denormalized numbers and the two
// zeros included).
//
// The package supports arbitrary formats with 1 <= exponent bits <= 15 and
// 1 <= mantissa bits <= 62 (total width <= 64), which covers IEEE 754
// binary16/binary32/binary64 as instances, as well as tiny formats such as
// an 8-bit minifloat on which the paper's lemmata can be verified
// exhaustively. Interpretations are exact: FP(B) is returned as a
// *big.Float with sufficient precision, never as a rounded float64.
package ieee754

import (
	"fmt"
	"math/big"
)

// Format describes a binary floating point format: one sign bit, Exp biased
// exponent bits and Mant mantissa bits, packed into k = 1+Exp+Mant bits
// (Definition 3 of the paper). The zero value is not a valid format; use
// NewFormat or one of the predefined formats.
type Format struct {
	exp  uint // exponent bits (j in the paper)
	mant uint // mantissa bits (x in the paper)
}

// Predefined instances of Format. Binary32 and Binary64 are the IEEE
// 754-1985 single and double precision formats the paper targets;
// Binary16 is half precision; Mini8 is a 1-4-3 minifloat small enough to
// enumerate exhaustively in tests; BFloat16 is the truncated-mantissa
// variant common in ML accelerators.
var (
	Mini8    = Format{exp: 4, mant: 3}
	Binary16 = Format{exp: 5, mant: 10}
	BFloat16 = Format{exp: 8, mant: 7}
	Binary32 = Format{exp: 8, mant: 23}
	Binary64 = Format{exp: 11, mant: 52}
)

// NewFormat returns a Format with the given exponent and mantissa widths.
// It returns an error unless 1 <= exp <= 15, 1 <= mant <= 62 and the total
// width 1+exp+mant is at most 64.
func NewFormat(exp, mant uint) (Format, error) {
	if exp < 1 || exp > 15 {
		return Format{}, fmt.Errorf("ieee754: exponent width %d out of range [1,15]", exp)
	}
	if mant < 1 || mant > 62 {
		return Format{}, fmt.Errorf("ieee754: mantissa width %d out of range [1,62]", mant)
	}
	if 1+exp+mant > 64 {
		return Format{}, fmt.Errorf("ieee754: total width %d exceeds 64 bits", 1+exp+mant)
	}
	return Format{exp: exp, mant: mant}, nil
}

// Bits returns the total width k of the format in bits.
func (f Format) Bits() uint { return 1 + f.exp + f.mant }

// ExpBits returns the number of exponent bits (j in the paper).
func (f Format) ExpBits() uint { return f.exp }

// MantBits returns the number of mantissa bits (x in the paper).
func (f Format) MantBits() uint { return f.mant }

// Bias returns the exponent bias 2^(j-1)-1 (Definition 3).
func (f Format) Bias() int { return int(uint64(1)<<(f.exp-1)) - 1 }

// Mask returns the k-bit mask covering all valid bit positions.
func (f Format) Mask() uint64 {
	k := f.Bits()
	if k == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << k) - 1
}

// SignMask returns the mask selecting the sign bit b_{k-1}.
func (f Format) SignMask() uint64 { return uint64(1) << (f.Bits() - 1) }

// ExpMask returns the mask selecting the exponent field within the bit
// vector (bits k-2 down to mant).
func (f Format) ExpMask() uint64 {
	return ((uint64(1) << f.exp) - 1) << f.mant
}

// MantMask returns the mask selecting the mantissa field (bits mant-1..0).
func (f Format) MantMask() uint64 { return (uint64(1) << f.mant) - 1 }

// Valid reports whether b fits in the format, i.e. has no bits set above
// position k-1.
func (f Format) Valid(b uint64) bool { return b&^f.Mask() == 0 }

// String returns a short description such as "binary32(e8,m23)".
func (f Format) String() string {
	switch f {
	case Binary32:
		return "binary32(e8,m23)"
	case Binary64:
		return "binary64(e11,m52)"
	case Binary16:
		return "binary16(e5,m10)"
	case BFloat16:
		return "bfloat16(e8,m7)"
	case Mini8:
		return "mini8(e4,m3)"
	}
	return fmt.Sprintf("float%d(e%d,m%d)", f.Bits(), f.exp, f.mant)
}

// Fields splits a bit vector into its sign, biased exponent and mantissa
// fields (Definition 3, Figure 1).
func (f Format) Fields(b uint64) (sign uint64, exp uint64, mant uint64) {
	b &= f.Mask()
	sign = b >> (f.Bits() - 1)
	exp = (b & f.ExpMask()) >> f.mant
	mant = b & f.MantMask()
	return sign, exp, mant
}

// Pack assembles a bit vector from its fields; the inverse of Fields.
// Field values are masked to their widths.
func (f Format) Pack(sign, exp, mant uint64) uint64 {
	return (sign&1)<<(f.Bits()-1) |
		(exp&((uint64(1)<<f.exp)-1))<<f.mant |
		mant&f.MantMask()
}

// UI returns the unsigned integer interpretation UI(B) (Definition 2).
func (f Format) UI(b uint64) uint64 { return b & f.Mask() }

// SI returns the two's-complement signed integer interpretation SI(B)
// (Definition 2): the value of the k-bit vector with the most significant
// bit weighted -2^(k-1).
func (f Format) SI(b uint64) int64 {
	b &= f.Mask()
	k := f.Bits()
	if k == 64 {
		return int64(b)
	}
	if b&f.SignMask() != 0 {
		return int64(b) - int64(uint64(1)<<k)
	}
	return int64(b)
}

// FromSI returns the k-bit vector whose signed interpretation is v. It is
// the inverse of SI for values representable in k bits; out-of-range
// values are truncated modulo 2^k.
func (f Format) FromSI(v int64) uint64 { return uint64(v) & f.Mask() }

// Class is the IEEE 754 class of a bit pattern.
type Class int

// Classes of floating point bit patterns. Zero covers both +0.0 and -0.0.
const (
	ClassZero Class = iota
	ClassDenormal
	ClassNormal
	ClassInf
	ClassNaN
)

// String returns the lower-case class name.
func (c Class) String() string {
	switch c {
	case ClassZero:
		return "zero"
	case ClassDenormal:
		return "denormal"
	case ClassNormal:
		return "normal"
	case ClassInf:
		return "inf"
	case ClassNaN:
		return "nan"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classify returns the class of b within the format.
func (f Format) Classify(b uint64) Class {
	_, exp, mant := f.Fields(b)
	maxExp := (uint64(1) << f.exp) - 1
	switch {
	case exp == 0 && mant == 0:
		return ClassZero
	case exp == 0:
		return ClassDenormal
	case exp == maxExp && mant == 0:
		return ClassInf
	case exp == maxExp:
		return ClassNaN
	default:
		return ClassNormal
	}
}

// IsNaN reports whether b encodes a not-a-number value.
func (f Format) IsNaN(b uint64) bool { return f.Classify(b) == ClassNaN }

// IsFinite reports whether b encodes a finite value (zero, denormal or
// normal).
func (f Format) IsFinite(b uint64) bool {
	c := f.Classify(b)
	return c == ClassZero || c == ClassDenormal || c == ClassNormal
}

// SignBit reports whether the sign bit of b is set.
func (f Format) SignBit(b uint64) bool { return b&f.SignMask() != 0 }

// Neg returns b with its sign bit flipped: the encoding of -FP(B). This is
// the "multiply with -1" of Theorem 2, realized as a single XOR.
func (f Format) Neg(b uint64) uint64 { return (b ^ f.SignMask()) & f.Mask() }

// Abs returns b with its sign bit cleared: the encoding of |FP(B)|
// (Definition 4).
func (f Format) Abs(b uint64) uint64 { return b &^ f.SignMask() & f.Mask() }

// fpPrec is the big.Float precision used for exact interpretations. The
// largest exactly-representable magnitude needs mant+1 significand bits;
// 256 covers every format this package accepts with a wide margin.
const fpPrec = 256

// FP returns the floating point interpretation FP(B) as an exact
// *big.Float (Definition 3 for normal numbers, the denormalized
// interpretation for exp == 0). Infinities are returned as big.Float
// infinities. FP must not be called on NaN patterns; use IsNaN first.
// Following the paper, FP(-0) is returned as a negative zero, which
// big.Float distinguishes from +0 via Signbit.
func (f Format) FP(b uint64) *big.Float {
	sign, exp, mant := f.Fields(b)
	if f.IsNaN(b) {
		panic(fmt.Sprintf("ieee754: FP called on NaN pattern %#x in %v", b, f))
	}
	v := new(big.Float).SetPrec(fpPrec)
	if f.Classify(b) == ClassInf {
		v.SetInf(sign == 1)
		return v
	}
	// significand = mant (plus implicit 1 << mantBits for normal numbers),
	// scaled by 2^(E - bias - mantBits), with E = 1 for denormals.
	sig := new(big.Int).SetUint64(mant)
	e := int(exp)
	if exp == 0 {
		e = 1 // denormalized: exponent reads as 1-bias, no implicit one
	} else {
		sig.SetBit(sig, int(f.mant), 1)
	}
	v.SetInt(sig)
	v.SetMantExp(v, e-f.Bias()-int(f.mant))
	if sign == 1 {
		v.Neg(v)
	}
	return v
}

// CompareFP compares the floating point interpretations of x and y using
// the paper's semantics: total order on the extended reals with
// -0.0 < +0.0 (footnote 1 / Definition 4 discussion). It returns -1, 0 or
// +1. It must not be called on NaN patterns.
func (f Format) CompareFP(x, y uint64) int {
	fx, fy := f.FP(x), f.FP(y)
	if c := fx.Cmp(fy); c != 0 {
		return c
	}
	// big.Float.Cmp treats -0 == +0; the paper orders -0 < +0.
	sx, sy := fx.Signbit(), fy.Signbit()
	switch {
	case sx == sy:
		return 0
	case sx: // x is -0, y is +0
		return -1
	default:
		return 1
	}
}

// CompareIEEE compares the floating point interpretations of x and y with
// strict IEEE 754 semantics, i.e. -0.0 == +0.0. It returns -1, 0 or +1 and
// must not be called on NaN patterns.
func (f Format) CompareIEEE(x, y uint64) int {
	return f.FP(x).Cmp(f.FP(y))
}

// CompareSI compares the signed integer interpretations of x and y,
// returning -1, 0 or +1.
func (f Format) CompareSI(x, y uint64) int {
	sx, sy := f.SI(x), f.SI(y)
	switch {
	case sx < sy:
		return -1
	case sx > sy:
		return 1
	default:
		return 0
	}
}

// AllBits returns every valid bit pattern of the format in ascending
// unsigned order. It panics for formats wider than 24 bits, where the
// enumeration would be impractically large.
func (f Format) AllBits() []uint64 {
	if f.Bits() > 24 {
		panic(fmt.Sprintf("ieee754: AllBits on %v would enumerate 2^%d patterns", f, f.Bits()))
	}
	n := uint64(1) << f.Bits()
	out := make([]uint64, n)
	for i := uint64(0); i < n; i++ {
		out[i] = i
	}
	return out
}
