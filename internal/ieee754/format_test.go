package ieee754

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestNewFormat(t *testing.T) {
	cases := []struct {
		exp, mant uint
		ok        bool
	}{
		{8, 23, true},
		{11, 52, true},
		{5, 10, true},
		{4, 3, true},
		{1, 1, true},
		{15, 48, true},
		{0, 3, false},  // no exponent bits
		{16, 3, false}, // exponent too wide
		{8, 0, false},  // no mantissa bits
		{8, 63, false}, // mantissa too wide
		{15, 62, false},
		{12, 52, false}, // 65 bits total
	}
	for _, c := range cases {
		f, err := NewFormat(c.exp, c.mant)
		if c.ok && err != nil {
			t.Errorf("NewFormat(%d,%d): unexpected error %v", c.exp, c.mant, err)
		}
		if !c.ok && err == nil {
			t.Errorf("NewFormat(%d,%d): expected error, got %v", c.exp, c.mant, f)
		}
		if c.ok && f.Bits() != 1+c.exp+c.mant {
			t.Errorf("NewFormat(%d,%d).Bits() = %d", c.exp, c.mant, f.Bits())
		}
	}
}

func TestPredefinedFormats(t *testing.T) {
	if Binary32.Bits() != 32 || Binary32.Bias() != 127 {
		t.Errorf("Binary32: bits=%d bias=%d", Binary32.Bits(), Binary32.Bias())
	}
	if Binary64.Bits() != 64 || Binary64.Bias() != 1023 {
		t.Errorf("Binary64: bits=%d bias=%d", Binary64.Bits(), Binary64.Bias())
	}
	if Binary16.Bits() != 16 || Binary16.Bias() != 15 {
		t.Errorf("Binary16: bits=%d bias=%d", Binary16.Bits(), Binary16.Bias())
	}
	if Mini8.Bits() != 8 || Mini8.Bias() != 7 {
		t.Errorf("Mini8: bits=%d bias=%d", Mini8.Bits(), Mini8.Bias())
	}
	if BFloat16.Bits() != 16 || BFloat16.Bias() != 127 {
		t.Errorf("BFloat16: bits=%d bias=%d", BFloat16.Bits(), BFloat16.Bias())
	}
}

func TestMasks(t *testing.T) {
	if Binary32.Mask() != 0xFFFF_FFFF {
		t.Errorf("Binary32.Mask() = %#x", Binary32.Mask())
	}
	if Binary64.Mask() != ^uint64(0) {
		t.Errorf("Binary64.Mask() = %#x", Binary64.Mask())
	}
	if Binary32.SignMask() != 0x8000_0000 {
		t.Errorf("Binary32.SignMask() = %#x", Binary32.SignMask())
	}
	if Binary32.ExpMask() != 0x7F80_0000 {
		t.Errorf("Binary32.ExpMask() = %#x", Binary32.ExpMask())
	}
	if Binary32.MantMask() != 0x007F_FFFF {
		t.Errorf("Binary32.MantMask() = %#x", Binary32.MantMask())
	}
	if Mini8.Mask() != 0xFF || Mini8.SignMask() != 0x80 || Mini8.ExpMask() != 0x78 || Mini8.MantMask() != 0x07 {
		t.Errorf("Mini8 masks: %#x %#x %#x %#x", Mini8.Mask(), Mini8.SignMask(), Mini8.ExpMask(), Mini8.MantMask())
	}
}

func TestFieldsPackRoundTrip(t *testing.T) {
	for _, f := range []Format{Mini8, Binary16, Binary32, BFloat16} {
		mask := f.Mask()
		step := uint64(1)
		if f.Bits() > 16 {
			step = 65537 // sparse sweep for wide formats
		}
		for b := uint64(0); b <= mask; b += step {
			s, e, m := f.Fields(b)
			if got := f.Pack(s, e, m); got != b {
				t.Fatalf("%v: Pack(Fields(%#x)) = %#x", f, b, got)
			}
			if b == mask {
				break
			}
		}
	}
}

func TestSIMatchesDefinition2(t *testing.T) {
	// SI over Mini8 must equal the textbook two's complement value.
	for b := uint64(0); b < 256; b++ {
		want := int64(b)
		if b >= 128 {
			want = int64(b) - 256
		}
		if got := Mini8.SI(b); got != want {
			t.Fatalf("Mini8.SI(%#x) = %d, want %d", b, got, want)
		}
		if back := Mini8.FromSI(want); back != b {
			t.Fatalf("Mini8.FromSI(%d) = %#x, want %#x", want, back, b)
		}
	}
}

func TestSI32MatchesFormat(t *testing.T) {
	err := quick.Check(func(v float32) bool {
		if math.IsNaN(float64(v)) {
			return true
		}
		return int64(SI32(v)) == Binary32.SI(Bits32(v))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSI64MatchesFormat(t *testing.T) {
	err := quick.Check(func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		return SI64(v) == Binary64.SI(Bits64(v))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		f    Format
		b    uint64
		want Class
	}{
		{Binary32, Bits32(0), ClassZero},
		{Binary32, Bits32(float32(math.Copysign(0, -1))), ClassZero},
		{Binary32, Bits32(1.5), ClassNormal},
		{Binary32, Bits32(-1.5), ClassNormal},
		{Binary32, Bits32(math.SmallestNonzeroFloat32), ClassDenormal},
		{Binary32, Bits32(float32(math.Inf(1))), ClassInf},
		{Binary32, Bits32(float32(math.Inf(-1))), ClassInf},
		{Binary32, Bits32(float32(math.NaN())), ClassNaN},
		{Binary64, Bits64(0), ClassZero},
		{Binary64, Bits64(math.SmallestNonzeroFloat64), ClassDenormal},
		{Binary64, Bits64(math.MaxFloat64), ClassNormal},
		{Binary64, Bits64(math.Inf(-1)), ClassInf},
		{Binary64, Bits64(math.NaN()), ClassNaN},
		{Mini8, 0x00, ClassZero},
		{Mini8, 0x80, ClassZero},     // -0
		{Mini8, 0x01, ClassDenormal}, // smallest denormal
		{Mini8, 0x07, ClassDenormal}, // largest denormal
		{Mini8, 0x08, ClassNormal},   // smallest normal
		{Mini8, 0x77, ClassNormal},   // largest normal
		{Mini8, 0x78, ClassInf},
		{Mini8, 0xF8, ClassInf},
		{Mini8, 0x79, ClassNaN},
		{Mini8, 0xFF, ClassNaN},
	}
	for _, c := range cases {
		if got := c.f.Classify(c.b); got != c.want {
			t.Errorf("%v.Classify(%#x) = %v, want %v", c.f, c.b, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassZero: "zero", ClassDenormal: "denormal", ClassNormal: "normal",
		ClassInf: "inf", ClassNaN: "nan", Class(42): "Class(42)",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("Class.String() = %q, want %q", got, want)
		}
	}
}

// fpViaHardware interprets a binary32 pattern with the Go runtime's float
// hardware and returns it as a big.Float, for cross-checking Format.FP.
func fpViaHardware(b uint64) *big.Float {
	// SetFloat64 preserves the sign of zero, so -0 round-trips.
	return new(big.Float).SetPrec(fpPrec).SetFloat64(float64(Float32(b)))
}

func TestFPMatchesHardwareBinary32(t *testing.T) {
	// Structured sweep: every exponent with several mantissas, both signs.
	for exp := uint64(0); exp < 256; exp++ {
		for _, mant := range []uint64{0, 1, 0x2AAAAA, 0x555555, 0x7FFFFF} {
			for _, sign := range []uint64{0, 1} {
				b := Binary32.Pack(sign, exp, mant)
				if Binary32.IsNaN(b) {
					continue
				}
				got := Binary32.FP(b)
				want := fpViaHardware(b)
				if got.Cmp(want) != 0 || got.Signbit() != want.Signbit() {
					t.Fatalf("FP(%#x) = %v, hardware says %v", b, got, want)
				}
			}
		}
	}
}

func TestFPMatchesHardwareBinary64(t *testing.T) {
	values := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5, math.Pi, -math.Pi,
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), 1e300, -1e-300, 2.2250738585072014e-308,
	}
	for _, v := range values {
		b := Bits64(v)
		got := Binary64.FP(b)
		if math.IsInf(v, 0) {
			if !got.IsInf() || got.Signbit() != math.Signbit(v) {
				t.Errorf("FP(bits(%v)) = %v", v, got)
			}
			continue
		}
		want := new(big.Float).SetPrec(fpPrec).SetFloat64(v)
		if got.Cmp(want) != 0 {
			t.Errorf("FP(bits(%v)) = %v, want %v", v, got, want)
		}
	}
}

func TestFPPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FP(NaN) did not panic")
		}
	}()
	Binary32.FP(Bits32(float32(math.NaN())))
}

func TestFPDenormalMini8(t *testing.T) {
	// Mini8 denormals: value = mant * 2^(1-bias-mantBits) = mant * 2^-9.
	for mant := uint64(1); mant < 8; mant++ {
		b := Mini8.Pack(0, 0, mant)
		want := new(big.Float).SetPrec(fpPrec).SetInt64(int64(mant))
		want.SetMantExp(want, -9) // mant * 2^(1-bias-mantBits) = mant * 2^-9
		if got := Mini8.FP(b); got.Cmp(want) != 0 {
			t.Errorf("Mini8.FP(%#x) = %v, want %v", b, got, want)
		}
	}
	// Smallest normal is 2^(1-bias) = 2^-6 = 0.015625.
	small := Mini8.FP(0x08)
	if v, _ := small.Float64(); v != 0.015625 {
		t.Errorf("Mini8 smallest normal = %v, want 0.015625", v)
	}
	// Largest normal: exp=0b1110, mant=0b111 => 2^7 * 1.875 = 240.
	large := Mini8.FP(0x77)
	if v, _ := large.Float64(); v != 240 {
		t.Errorf("Mini8 largest normal = %v, want 240", v)
	}
}

func TestNegAbs(t *testing.T) {
	for _, f := range []Format{Mini8, Binary16, Binary32, Binary64} {
		one := f.Pack(0, uint64(f.Bias()), 0)
		if f.Neg(f.Neg(one)) != one {
			t.Errorf("%v: Neg not involutive", f)
		}
		if !f.SignBit(f.Neg(one)) || f.SignBit(one) {
			t.Errorf("%v: sign handling broken", f)
		}
		if f.Abs(f.Neg(one)) != one {
			t.Errorf("%v: Abs(Neg(x)) != x", f)
		}
	}
}

func TestCompareFPZeroSemantics(t *testing.T) {
	negZero := Bits32(float32(math.Copysign(0, -1)))
	posZero := Bits32(0)
	if got := Binary32.CompareFP(negZero, posZero); got != -1 {
		t.Errorf("paper semantics: CompareFP(-0,+0) = %d, want -1", got)
	}
	if got := Binary32.CompareIEEE(negZero, posZero); got != 0 {
		t.Errorf("IEEE semantics: CompareIEEE(-0,+0) = %d, want 0", got)
	}
	if got := Binary32.CompareFP(posZero, negZero); got != 1 {
		t.Errorf("paper semantics: CompareFP(+0,-0) = %d, want 1", got)
	}
	if got := Binary32.CompareFP(posZero, posZero); got != 0 {
		t.Errorf("CompareFP(+0,+0) = %d", got)
	}
	if got := Binary32.CompareFP(negZero, negZero); got != 0 {
		t.Errorf("CompareFP(-0,-0) = %d", got)
	}
}

func TestCompareFPMatchesHardware(t *testing.T) {
	err := quick.Check(func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		got := Binary32.CompareIEEE(Bits32(a), Bits32(b))
		switch {
		case a < b:
			return got == -1
		case a > b:
			return got == 1
		default:
			return got == 0
		}
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Error(err)
	}
}

func TestCompareSI(t *testing.T) {
	if Binary32.CompareSI(Bits32(1), Bits32(2)) != -1 {
		t.Error("CompareSI(1,2) != -1")
	}
	if Binary32.CompareSI(Bits32(2), Bits32(1)) != 1 {
		t.Error("CompareSI(2,1) != 1")
	}
	if Binary32.CompareSI(Bits32(2), Bits32(2)) != 0 {
		t.Error("CompareSI(2,2) != 0")
	}
	// Negative floats have negative SI.
	if Binary32.SI(Bits32(-1)) >= 0 {
		t.Error("SI(bits(-1)) should be negative")
	}
}

func TestAllBits(t *testing.T) {
	bits := Mini8.AllBits()
	if len(bits) != 256 {
		t.Fatalf("Mini8.AllBits() has %d entries", len(bits))
	}
	for i, b := range bits {
		if b != uint64(i) {
			t.Fatalf("AllBits[%d] = %#x", i, b)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("AllBits on binary32 did not panic")
		}
	}()
	Binary32.AllBits()
}

func TestTotalOrderKey32(t *testing.T) {
	// Key order must equal the paper's float order (-0 < +0) on a sweep of
	// interesting values plus random patterns.
	patterns := []uint32{
		0x0000_0000, 0x8000_0000, // +0, -0
		0x0000_0001, 0x8000_0001, // smallest denormals
		0x3F80_0000, 0xBF80_0000, // ±1
		0x7F7F_FFFF, 0xFF7F_FFFF, // ±MaxFloat32
		0x7F80_0000, 0xFF80_0000, // ±Inf
		0x4121_3087, // 10.074347 from Listing 2
		0xC03B_DDDE, // -2.935417 from Listing 3
	}
	for _, x := range patterns {
		for _, y := range patterns {
			want := Binary32.CompareFP(uint64(x), uint64(y))
			kx, ky := TotalOrderKey32(x), TotalOrderKey32(y)
			got := 0
			if kx < ky {
				got = -1
			} else if kx > ky {
				got = 1
			}
			if got != want {
				t.Errorf("TotalOrderKey32 order(%#x,%#x) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestTotalOrderKey64(t *testing.T) {
	err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka, kb := TotalOrderKey64(Bits64(a)), TotalOrderKey64(Bits64(b))
		if a < b {
			return ka < kb
		}
		if a > b {
			return ka > kb
		}
		// a == b: either identical bits or the ±0 pair.
		if Bits64(a) == Bits64(b) {
			return ka == kb
		}
		return (ka < kb) == math.Signbit(a)
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Error(err)
	}
}

func TestFloatBitsRoundTrip(t *testing.T) {
	err := quick.Check(func(v float32) bool {
		if math.IsNaN(float64(v)) {
			return true
		}
		return Float32(Bits32(v)) == v && FromSI32(SI32(v)) == v
	}, nil)
	if err != nil {
		t.Error(err)
	}
	err = quick.Check(func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		return Float64(Bits64(v)) == v && FromSI64(SI64(v)) == v
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFormatString(t *testing.T) {
	cases := map[Format]string{
		Binary32: "binary32(e8,m23)",
		Binary64: "binary64(e11,m52)",
		Binary16: "binary16(e5,m10)",
		BFloat16: "bfloat16(e8,m7)",
		Mini8:    "mini8(e4,m3)",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	odd, _ := NewFormat(6, 9)
	if got := odd.String(); got != "float16(e6,m9)" {
		t.Errorf("String() = %q", got)
	}
}

func TestValid(t *testing.T) {
	if !Mini8.Valid(0xFF) || Mini8.Valid(0x100) {
		t.Error("Mini8.Valid broken")
	}
	if !Binary64.Valid(^uint64(0)) {
		t.Error("Binary64.Valid(^0) should hold")
	}
}

func TestFromTotalOrderKeyRoundTrip(t *testing.T) {
	patterns := []uint32{
		0x0000_0000, 0x8000_0000, // +0, -0
		0x0000_0001, 0x8000_0001, // smallest denormals
		0x3F80_0000, 0xBF80_0000, // ±1
		0x7F7F_FFFF, 0xFF7F_FFFF, // ±MaxFloat32
		0x7F80_0000, 0xFF80_0000, // ±Inf
		0x4121_3087, 0xC03B_DDDE,
	}
	for _, b := range patterns {
		if got := FromTotalOrderKey32(TotalOrderKey32(b)); got != b {
			t.Errorf("FromTotalOrderKey32(TotalOrderKey32(%#x)) = %#x", b, got)
		}
	}
	err := quick.Check(func(b uint32) bool {
		return FromTotalOrderKey32(TotalOrderKey32(b)) == b &&
			TotalOrderKey32(FromTotalOrderKey32(b)) == b
	}, nil)
	if err != nil {
		t.Error(err)
	}
	err = quick.Check(func(b uint64) bool {
		return FromTotalOrderKey64(TotalOrderKey64(b)) == b &&
			TotalOrderKey64(FromTotalOrderKey64(b)) == b
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
