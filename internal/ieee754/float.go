package ieee754

import "math"

// Bits32 returns the IEEE 754 binary32 bit pattern of v, widened to uint64
// so it can be used with the Binary32 Format.
func Bits32(v float32) uint64 { return uint64(math.Float32bits(v)) }

// Float32 returns the float32 whose binary32 bit pattern is the low 32
// bits of b.
func Float32(b uint64) float32 { return math.Float32frombits(uint32(b)) }

// Bits64 returns the IEEE 754 binary64 bit pattern of v.
func Bits64(v float64) uint64 { return math.Float64bits(v) }

// Float64 returns the float64 whose binary64 bit pattern is b.
func Float64(b uint64) float64 { return math.Float64frombits(b) }

// SI32 returns the two's-complement signed integer interpretation of the
// bit pattern of v, i.e. SI(B) for B = bits32(v). This is the
// reinterpretation `*(int32*)&v` from Listing 2 of the paper.
func SI32(v float32) int32 { return int32(math.Float32bits(v)) }

// SI64 returns the signed integer interpretation of the bit pattern of v.
func SI64(v float64) int64 { return int64(math.Float64bits(v)) }

// FromSI32 returns the float32 whose bit pattern has signed interpretation s.
func FromSI32(s int32) float32 { return math.Float32frombits(uint32(s)) }

// FromSI64 returns the float64 whose bit pattern has signed interpretation s.
func FromSI64(s int64) float64 { return math.Float64frombits(uint64(s)) }

// TotalOrderKey32 maps a binary32 bit pattern to a uint32 whose unsigned
// order equals the paper's floating point order (with -0 < +0): positive
// patterns have their sign bit set, negative patterns are bitwise
// inverted. This is the classic radix-sort float key; the FLInt paper
// avoids it at runtime by resolving signs offline, and the treeexec
// package benchmarks both choices (ablation A2).
func TotalOrderKey32(b uint32) uint32 {
	mask := uint32(int32(b)>>31) | 0x8000_0000
	return b ^ mask
}

// TotalOrderKey64 is TotalOrderKey32 for binary64 patterns.
func TotalOrderKey64(b uint64) uint64 {
	mask := uint64(int64(b)>>63) | 0x8000_0000_0000_0000
	return b ^ mask
}

// FromTotalOrderKey32 inverts TotalOrderKey32, recovering the binary32
// bit pattern whose total-order key is k. Keys with the top bit set came
// from non-negative patterns (the key is the pattern with the sign bit
// flipped on); keys with the top bit clear came from negative patterns
// (the key is the pattern bitwise inverted).
func FromTotalOrderKey32(k uint32) uint32 {
	if k&0x8000_0000 != 0 {
		return k ^ 0x8000_0000
	}
	return ^k
}

// FromTotalOrderKey64 is FromTotalOrderKey32 for binary64 keys.
func FromTotalOrderKey64(k uint64) uint64 {
	if k&0x8000_0000_0000_0000 != 0 {
		return k ^ 0x8000_0000_0000_0000
	}
	return ^k
}
