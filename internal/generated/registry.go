// Package generated holds if-else tree forests emitted ahead of time by
// `flintgen -pregen` — the Go analog of the paper's compiled C trees.
// Checking the generated sources into the repository lets `go test
// -bench` exercise genuinely compiled trees (split constants as
// immediates in the instruction stream) without a build-time generation
// step, exactly as the arch-forest toolchain ships generated sources.
//
// The handwritten files of this package are this registry and the
// manifest; everything else is generated output of internal/codegen and
// is regenerated verbatim by `go run ./cmd/flintgen -pregen`.
package generated

import "sort"

// Entry is one pre-generated forest: the float realization (Listing 1)
// and the FLInt realization (Listing 2/4) of the same trained model.
type Entry struct {
	// NumFeatures and NumClasses describe the model's feature space.
	NumFeatures int
	NumClasses  int
	// Float is the hardware-float predictor; nil until its file is
	// generated.
	Float func(x []float32) int32
	// FLInt is the integer-compare predictor over reinterpreted
	// features; nil until its file is generated.
	FLInt func(x []int32) int32
}

var registry = map[string]Entry{}

// register merges an entry under name; the float and FLInt variants of
// the same forest live in separate generated files and register
// themselves independently.
func register(name string, e Entry) {
	cur := registry[name]
	if cur.NumFeatures == 0 {
		cur.NumFeatures = e.NumFeatures
		cur.NumClasses = e.NumClasses
	}
	if e.Float != nil {
		cur.Float = e.Float
	}
	if e.FLInt != nil {
		cur.FLInt = e.FLInt
	}
	registry[name] = cur
}

// Lookup returns the entry registered under name.
func Lookup(name string) (Entry, bool) {
	e, ok := registry[name]
	return e, ok
}

// Names returns all registered forest names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
