package generated

import (
	"testing"

	"flint/internal/cart"
	"flint/internal/core"
	"flint/internal/dataset"
)

// TestManifestComplete checks every manifest entry produced both
// realizations and registered consistent metadata.
func TestManifestComplete(t *testing.T) {
	if len(PregenSpecs) == 0 {
		t.Fatal("empty manifest")
	}
	for _, spec := range PregenSpecs {
		e, ok := Lookup(spec.Name)
		if !ok {
			t.Errorf("%s: not registered (run `go run ./cmd/flintgen -pregen`)", spec.Name)
			continue
		}
		if e.Float == nil || e.FLInt == nil {
			t.Errorf("%s: missing realization (float=%v flint=%v)", spec.Name, e.Float != nil, e.FLInt != nil)
		}
		ds, err := dataset.LookupSpec(spec.Dataset)
		if err != nil {
			t.Fatal(err)
		}
		if e.NumFeatures != ds.NumFeatures || e.NumClasses != ds.NumClasses {
			t.Errorf("%s: registered shape %dx%d, dataset says %dx%d",
				spec.Name, e.NumFeatures, e.NumClasses, ds.NumFeatures, ds.NumClasses)
		}
	}
	if len(Names()) != len(PregenSpecs) {
		t.Errorf("registry has %d names, manifest %d", len(Names()), len(PregenSpecs))
	}
	if _, ok := Lookup("no-such-forest"); ok {
		t.Error("Lookup invented an entry")
	}
	if _, ok := LookupSpec("no-such-forest"); ok {
		t.Error("LookupSpec invented an entry")
	}
}

// TestGeneratedCodeMatchesRetrainedModel retrains the exact model behind
// every shipped forest (generation is deterministic in the manifest
// parameters) and verifies both generated realizations prediction for
// prediction — the compiled-Go version of the paper's accuracy-unchanged
// claim.
func TestGeneratedCodeMatchesRetrainedModel(t *testing.T) {
	for _, spec := range PregenSpecs {
		e, ok := Lookup(spec.Name)
		if !ok || e.Float == nil || e.FLInt == nil {
			t.Fatalf("%s: registry incomplete", spec.Name)
		}
		d, err := dataset.Generate(spec.Dataset, spec.Rows, spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		forest, err := cart.TrainForest(d, cart.Config{
			NumTrees: spec.Trees, MaxDepth: spec.Depth, Seed: spec.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var xi []int32
		for i, x := range d.Features {
			want := forest.Predict(x)
			if got := e.Float(x); got != want {
				t.Fatalf("%s: float realization predicts %d at row %d, reference %d",
					spec.Name, got, i, want)
			}
			xi = core.EncodeFeatures32(xi, x)
			if got := e.FLInt(xi); got != want {
				t.Fatalf("%s: FLInt realization predicts %d at row %d, reference %d",
					spec.Name, got, i, want)
			}
		}
	}
}

// TestCAGSVariantSemanticsPreserved: the swapped emission of the CAGS
// entry must agree with its unswapped sibling.
func TestCAGSVariantSemanticsPreserved(t *testing.T) {
	plain, ok1 := Lookup("magic_d10")
	swapped, ok2 := Lookup("magic_d10_cags")
	if !ok1 || !ok2 {
		t.Skip("magic entries not generated")
	}
	d, err := dataset.Generate("magic", 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	var xi []int32
	for i, x := range d.Features {
		if plain.Float(x) != swapped.Float(x) {
			t.Fatalf("row %d: float CAGS emission diverges", i)
		}
		xi = core.EncodeFeatures32(xi, x)
		if plain.FLInt(xi) != swapped.FLInt(xi) {
			t.Fatalf("row %d: FLInt CAGS emission diverges", i)
		}
	}
}
