package generated

// Spec describes one pre-generated forest: enough information for
// `flintgen -pregen` to emit it and for the package tests to retrain the
// identical model and verify the generated code prediction for
// prediction.
type Spec struct {
	// Name is the registry key and source file stem.
	Name string
	// Dataset is the synthetic workload (see internal/dataset).
	Dataset string
	// Rows, Seed, Trees and Depth parameterize dataset synthesis and
	// training; generation is fully deterministic in them.
	Rows  int
	Seed  int64
	Trees int
	Depth int
	// CAGS applies branch swapping at emission time.
	CAGS bool
}

// PregenSpecs lists the shipped forests: shallow and deep trees for
// three workloads, plus CAGS-swapped deep variants used by the ablation
// benchmarks. Sizes are chosen so the generated sources stay reviewable.
var PregenSpecs = []Spec{
	{Name: "eye_d5", Dataset: "eye", Rows: 500, Seed: 41, Trees: 3, Depth: 5},
	{Name: "eye_d10", Dataset: "eye", Rows: 500, Seed: 41, Trees: 3, Depth: 10},
	{Name: "eye_d10_cags", Dataset: "eye", Rows: 500, Seed: 41, Trees: 3, Depth: 10, CAGS: true},
	{Name: "gas_d8", Dataset: "gas", Rows: 500, Seed: 44, Trees: 3, Depth: 8},
	{Name: "magic_d5", Dataset: "magic", Rows: 500, Seed: 42, Trees: 3, Depth: 5},
	{Name: "magic_d10", Dataset: "magic", Rows: 500, Seed: 42, Trees: 3, Depth: 10},
	{Name: "magic_d10_cags", Dataset: "magic", Rows: 500, Seed: 42, Trees: 3, Depth: 10, CAGS: true},
	{Name: "magic_d15", Dataset: "magic", Rows: 800, Seed: 42, Trees: 5, Depth: 15},
	{Name: "sensorless_d8", Dataset: "sensorless", Rows: 600, Seed: 45, Trees: 3, Depth: 8},
	{Name: "wine_d5", Dataset: "wine", Rows: 500, Seed: 43, Trees: 3, Depth: 5},
	{Name: "wine_d10", Dataset: "wine", Rows: 500, Seed: 43, Trees: 3, Depth: 10},
	{Name: "wine_d10_cags", Dataset: "wine", Rows: 500, Seed: 43, Trees: 3, Depth: 10, CAGS: true},
}

// LookupSpec returns the manifest entry for name.
func LookupSpec(name string) (Spec, bool) {
	for _, s := range PregenSpecs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
