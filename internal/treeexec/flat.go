package treeexec

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"flint/internal/core"
	"flint/internal/ieee754"
	"flint/internal/rf"
)

// FlatVariant selects the comparison kernel an arena is compiled for.
// The variant is fixed at compile time because it determines how split
// keys are encoded into the arena nodes.
type FlatVariant int

const (
	// FlatFLInt stores offline sign-resolved FLInt keys: one signed or
	// unsigned integer compare per node (the paper's Section IV-B).
	FlatFLInt FlatVariant = iota
	// FlatFloat32 stores raw float bit patterns and compares with the
	// hardware float unit — the naive baseline over the arena layout.
	FlatFloat32
	// FlatPrecoded stores total-order keys: one unsigned compare per
	// node against a per-vector precoded input (the key-space precoding
	// extension).
	FlatPrecoded
)

// String names the variant in benchmark output.
func (v FlatVariant) String() string {
	switch v {
	case FlatFLInt:
		return "flat-flint"
	case FlatFloat32:
		return "flat-float32"
	case FlatPrecoded:
		return "flat-precoded"
	}
	return fmt.Sprintf("flat-variant(%d)", int(v))
}

// FlatForestEngine executes a forest out of one contiguous node arena:
// every inner node of every tree lives in a single backing array, trees
// are addressed by per-tree root offsets, and leaves are not stored at
// all — a child index c < 0 encodes the leaf class as ^c. The hot loop
// is therefore load → compare → select with no per-node leaf branch:
//
//	for i >= 0 { n := &arena[i]; i = pick(n.left, n.right) }
//	class = ^i
//
// Within each tree the compiler preserves the relative order of the
// source tree's inner nodes, so a forest permuted by cags.ReorderForest
// keeps its hot-path-preorder locality inside the arena.
//
// The engine is immutable after construction and safe for concurrent
// use. Single rows go through Predict/PredictEncoded/PredictPrecoded;
// many rows should go through PredictBatch or a persistent Batcher: the
// rows of a block run back-to-back over the arena with per-worker
// scratch, and on arenas past the L2 comfort zone the FLInt kernel
// walks rows in interleaved pairs so the core overlaps their node
// fetches.
type FlatForestEngine struct {
	arena   []node  // inner nodes of all trees, contiguous
	roots   []int32 // per-tree entry: arena index, or ^class for leaf-only trees
	variant FlatVariant

	numClasses  int
	numFeatures int
	// pairMin is the arena size (nodes) from which the batch kernel
	// switches to the paired walk; pairMinArenaNodes by default,
	// overridden in white-box tests to force either path.
	pairMin int
}

// NewFlat compiles a validated forest into a single-arena engine for the
// given comparison variant. The forest's node ordering (original or
// CAGS-reordered) is preserved tree by tree.
func NewFlat(f *rf.Forest, v FlatVariant) (*FlatForestEngine, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	var enc func(split float32) int32
	switch v {
	case FlatFLInt:
		enc = func(s float32) int32 { return core.MustEncodeSplit32(s).Key }
	case FlatFloat32:
		enc = ieee754.SI32
	case FlatPrecoded:
		enc = func(s float32) int32 { return int32(core.PrecodeSplit32(s)) }
	default:
		return nil, fmt.Errorf("treeexec: unknown flat variant %d", int(v))
	}

	inner := 0
	for i := range f.Trees {
		inner += len(f.Trees[i].Nodes) - f.Trees[i].NumLeaves()
	}
	if inner > math.MaxInt32 {
		return nil, fmt.Errorf("treeexec: forest has %d inner nodes, arena indices overflow int32", inner)
	}
	e := &FlatForestEngine{
		arena:       make([]node, 0, inner),
		roots:       make([]int32, len(f.Trees)),
		variant:     v,
		numClasses:  f.NumClasses,
		numFeatures: f.NumFeatures,
		pairMin:     pairMinArenaNodes,
	}
	// remap is reused per tree: old node index -> arena index for inner
	// nodes, ^class for leaves.
	var remap []int32
	for ti := range f.Trees {
		src := f.Trees[ti].Nodes
		if cap(remap) < len(src) {
			remap = make([]int32, len(src))
		}
		remap = remap[:len(src)]
		base := int32(len(e.arena))
		next := base
		for i, n := range src {
			if n.IsLeaf() {
				remap[i] = ^n.Class
				continue
			}
			if !core.ValidFeature32(n.Split) {
				return nil, fmt.Errorf("treeexec: tree %d node %d has NaN split", ti, i)
			}
			remap[i] = next
			next++
		}
		e.roots[ti] = remap[0]
		for _, n := range src {
			if n.IsLeaf() {
				continue
			}
			e.arena = append(e.arena, node{
				feature: n.Feature,
				key:     enc(n.Split),
				left:    remap[n.Left],
				right:   remap[n.Right],
			})
		}
	}
	return e, nil
}

// Name identifies the engine in benchmark output.
func (e *FlatForestEngine) Name() string { return e.variant.String() }

// NumClasses returns the number of prediction classes.
func (e *FlatForestEngine) NumClasses() int { return e.numClasses }

// NumFeatures returns the input dimensionality.
func (e *FlatForestEngine) NumFeatures() int { return e.numFeatures }

// classifyFLInt walks one tree from root over sign-resolved FLInt keys.
func (e *FlatForestEngine) classifyFLInt(xi []int32, i int32) int32 {
	arena := e.arena
	for i >= 0 {
		n := &arena[i]
		v := xi[n.feature]
		var le bool
		if n.key >= 0 {
			le = v <= n.key
		} else {
			le = uint32(v) >= uint32(n.key)
		}
		if le {
			i = n.left
		} else {
			i = n.right
		}
	}
	return ^i
}

// classifyFloat walks one tree comparing reinterpreted hardware floats.
func (e *FlatForestEngine) classifyFloat(xi []int32, i int32) int32 {
	arena := e.arena
	for i >= 0 {
		n := &arena[i]
		if ieee754.FromSI32(xi[n.feature]) <= ieee754.FromSI32(n.key) {
			i = n.left
		} else {
			i = n.right
		}
	}
	return ^i
}

// classifyTotalOrder walks one tree over total-order keys, transforming
// each raw bit pattern at load time (the unamortized precoded form).
func (e *FlatForestEngine) classifyTotalOrder(xi []int32, i int32) int32 {
	arena := e.arena
	for i >= 0 {
		n := &arena[i]
		if ieee754.TotalOrderKey32(uint32(xi[n.feature])) <= uint32(n.key) {
			i = n.left
		} else {
			i = n.right
		}
	}
	return ^i
}

// classifyPrecoded walks one tree over a precoded key vector.
func (e *FlatForestEngine) classifyPrecoded(keys []uint32, i int32) int32 {
	arena := e.arena
	for i >= 0 {
		n := &arena[i]
		if keys[n.feature] <= uint32(n.key) {
			i = n.left
		} else {
			i = n.right
		}
	}
	return ^i
}

// classify2FLInt walks one tree for two rows at once. The two traversal
// chains are independent, so the out-of-order core overlaps their node
// fetches (2-way memory-level parallelism) — the lock-step payoff of the
// blocked kernel, with all per-lane state in registers. When the chains
// diverge in depth the leftover row finishes in a single-chain loop.
func (e *FlatForestEngine) classify2FLInt(x0, x1 []int32, root int32) (int32, int32) {
	arena := e.arena
	i0, i1 := root, root
	for i0 >= 0 && i1 >= 0 {
		n0 := &arena[i0]
		n1 := &arena[i1]
		v0 := x0[n0.feature]
		v1 := x1[n1.feature]
		var le0, le1 bool
		if n0.key >= 0 {
			le0 = v0 <= n0.key
		} else {
			le0 = uint32(v0) >= uint32(n0.key)
		}
		if n1.key >= 0 {
			le1 = v1 <= n1.key
		} else {
			le1 = uint32(v1) >= uint32(n1.key)
		}
		if le0 {
			i0 = n0.left
		} else {
			i0 = n0.right
		}
		if le1 {
			i1 = n1.left
		} else {
			i1 = n1.right
		}
	}
	if i0 >= 0 {
		return e.classifyFLInt(x0, i0), ^i1
	}
	if i1 >= 0 {
		return ^i0, e.classifyFLInt(x1, i1)
	}
	return ^i0, ^i1
}

// voteEncoded tallies every tree's class for a raw bit-pattern vector
// into counts (length numClasses, zeroed by the caller). The variant
// switch is hoisted out of the per-tree loop.
func (e *FlatForestEngine) voteEncoded(xi []int32, counts []int32) {
	switch e.variant {
	case FlatFLInt:
		for _, root := range e.roots {
			counts[e.classifyFLInt(xi, root)]++
		}
	case FlatFloat32:
		for _, root := range e.roots {
			counts[e.classifyFloat(xi, root)]++
		}
	default:
		for _, root := range e.roots {
			counts[e.classifyTotalOrder(xi, root)]++
		}
	}
}

// PredictEncoded returns the majority-vote class for a raw bit-pattern
// vector (core.EncodeFeatures32 output). It is valid for every variant:
// the precoded arena transforms each load into key space, matching the
// total-order engine's semantics.
func (e *FlatForestEngine) PredictEncoded(xi []int32) int32 {
	var stack [maxStackClasses]int32
	counts := voteSlice(&stack, e.numClasses)
	e.voteEncoded(xi, counts)
	return rf.Argmax(counts)
}

// PredictPrecoded returns the majority-vote class for a precoded key
// vector (core.PrecodeFeatures32 output). Only meaningful for the
// FlatPrecoded variant, whose arena stores total-order keys.
func (e *FlatForestEngine) PredictPrecoded(keys []uint32) int32 {
	var stack [maxStackClasses]int32
	counts := voteSlice(&stack, e.numClasses)
	for _, root := range e.roots {
		counts[e.classifyPrecoded(keys, root)]++
	}
	return rf.Argmax(counts)
}

// Predict encodes x for the engine's variant and classifies it,
// satisfying rf.Predictor.
func (e *FlatForestEngine) Predict(x []float32) int32 {
	if e.variant == FlatPrecoded {
		return e.PredictPrecoded(core.PrecodeFeatures32(make([]uint32, 0, 64), x))
	}
	return e.PredictEncoded(core.EncodeFeatures32(make([]int32, 0, 64), x))
}

// pairMinArenaNodes gates the paired FLInt walk: past ~1MB of nodes the
// arena stops fitting in a per-core L2 and traversal becomes fetch-
// latency-bound, which the 2-way interleaved walk hides (measured 1.8x
// over the per-row engines at 16MB arenas, 20% at 2MB); below it the
// walks are IPC-bound and the simple per-row loop is cheaper.
const pairMinArenaNodes = 1 << 16

// DefaultBlockRows is the default row-block size B of the batch kernel:
// blocks of B rows advance in lock-step through each tree, so every node
// fetched from the arena is reused up to B times while it is cache-hot.
const DefaultBlockRows = 16

// flatScratch is the per-worker working set of the batch kernel: one
// row's encode buffer and one vote-count tally, allocated once at pool
// construction so the steady state allocates nothing.
type flatScratch struct {
	enc   []int32  // numFeatures raw bit patterns
	keys  []uint32 // numFeatures precoded keys (FlatPrecoded only)
	votes []int32  // numClasses vote counts
}

func (e *FlatForestEngine) newScratch() *flatScratch {
	// Two of each: the FLInt kernel walks rows in pairs.
	s := &flatScratch{votes: make([]int32, 2*e.numClasses)}
	if e.variant == FlatPrecoded {
		s.keys = make([]uint32, e.numFeatures)
	} else {
		s.enc = make([]int32, 2*e.numFeatures)
	}
	return s
}

// predictBlock classifies one block of rows into out, reusing s. The
// rows of a block run back-to-back through the whole arena, so the
// forest's hot set — halved by the leaf-free encoding relative to the
// per-tree engines — is reused across the block while cache-resident.
//
// The kernel is deliberately row-major: a tree-major "lock-step" order
// (all rows through one tree before the next) and a level-synchronous
// lane variant were both measured slower on commodity x86, because the
// per-walk bookkeeping they add outweighs the node-fetch reuse the
// leaf-free arena already provides. See ROADMAP for the SIMD/lock-step
// follow-on.
func (e *FlatForestEngine) predictBlock(rows [][]float32, out []int32, s *flatScratch) {
	nf := e.numFeatures
	nc := e.numClasses
	if e.variant == FlatPrecoded {
		for b, x := range rows {
			keys := core.PrecodeFeatures32(s.keys[:0], x)
			votes := s.votes[:nc]
			for i := range votes {
				votes[i] = 0
			}
			for _, root := range e.roots {
				votes[e.classifyPrecoded(keys, root)]++
			}
			out[b] = rf.Argmax(votes)
		}
		return
	}
	if e.variant == FlatFLInt && len(e.arena) >= e.pairMin {
		b := 0
		for ; b+1 < len(rows); b += 2 {
			enc0 := core.EncodeFeatures32(s.enc[0:0:nf], rows[b])
			enc1 := core.EncodeFeatures32(s.enc[nf:nf:2*nf], rows[b+1])
			var st0, st1 [maxStackClasses]int32
			var v0, v1 []int32
			if nc <= maxStackClasses {
				v0, v1 = st0[:nc], st1[:nc]
			} else {
				v0, v1 = s.votes[:nc], s.votes[nc:2*nc]
				for i := range v0 {
					v0[i], v1[i] = 0, 0
				}
			}
			for _, root := range e.roots {
				c0, c1 := e.classify2FLInt(enc0, enc1, root)
				v0[c0]++
				v1[c1]++
			}
			out[b] = rf.Argmax(v0)
			out[b+1] = rf.Argmax(v1)
		}
		if b < len(rows) {
			out[b] = e.predictOneInto(core.EncodeFeatures32(s.enc[0:0:nf], rows[b]), s)
		}
		return
	}
	for b, x := range rows {
		out[b] = e.predictOneInto(core.EncodeFeatures32(s.enc[0:0:nf], x), s)
	}
}

// predictOneInto classifies one encoded row using stack vote counts when
// they fit and the scratch tally otherwise, so the block kernel stays
// allocation-free for any class count.
func (e *FlatForestEngine) predictOneInto(xi []int32, s *flatScratch) int32 {
	if e.numClasses <= maxStackClasses {
		return e.PredictEncoded(xi)
	}
	votes := s.votes[:e.numClasses]
	for i := range votes {
		votes[i] = 0
	}
	e.voteEncoded(xi, votes)
	return rf.Argmax(votes)
}

// PredictBatch classifies all rows with the blocked kernel, spawning up
// to workers goroutines for this call (0 selects GOMAXPROCS) that claim
// blocks of block rows (0 selects DefaultBlockRows) from a shared
// cursor. The result is written into out when it has sufficient
// capacity; otherwise a new slice is allocated. For steady-state serving
// without per-call worker spawning, use a Batcher.
func (e *FlatForestEngine) PredictBatch(rows [][]float32, out []int32, workers, block int) []int32 {
	if cap(out) < len(rows) {
		out = make([]int32, len(rows))
	}
	out = out[:len(rows)]
	if len(rows) == 0 {
		return out
	}
	if block <= 0 {
		block = DefaultBlockRows
	}
	blocks := (len(rows) + block - 1) / block
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > blocks {
		workers = blocks
	}
	if workers == 1 {
		s := e.newScratch()
		for lo := 0; lo < len(rows); lo += block {
			hi := lo + block
			if hi > len(rows) {
				hi = len(rows)
			}
			e.predictBlock(rows[lo:hi], out[lo:hi], s)
		}
		return out
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.newScratch()
			for {
				bi := int(cursor.Add(1)) - 1
				if bi >= blocks {
					return
				}
				lo := bi * block
				hi := lo + block
				if hi > len(rows) {
					hi = len(rows)
				}
				e.predictBlock(rows[lo:hi], out[lo:hi], s)
			}
		}()
	}
	wg.Wait()
	return out
}

// batchJob is one block of work handed to a Batcher worker: the rows to
// classify and the output sub-slice to fill.
type batchJob struct {
	rows [][]float32
	out  []int32
}

// Batcher drives a FlatForestEngine with a persistent worker pool: the
// goroutines and their scratch buffers (encode buffer + vote counts) are
// allocated once at construction, so repeated Predict calls with a
// caller-reused output slice allocate nothing. This is the serving
// configuration: keep one Batcher per engine for the process lifetime
// and feed it request batches.
type Batcher struct {
	e       *FlatForestEngine
	block   int
	workers int
	jobs    chan batchJob

	mu sync.Mutex // serializes Predict: one in-flight batch at a time
	wg sync.WaitGroup
}

// NewBatcher starts a pool of workers goroutines (0 selects GOMAXPROCS)
// processing blocks of block rows (0 selects DefaultBlockRows). Close
// releases the pool.
func NewBatcher(e *FlatForestEngine, workers, block int) *Batcher {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if block <= 0 {
		block = DefaultBlockRows
	}
	b := &Batcher{
		e:       e,
		block:   block,
		workers: workers,
		jobs:    make(chan batchJob, workers*4),
	}
	for w := 0; w < workers; w++ {
		go func() {
			s := e.newScratch()
			for job := range b.jobs {
				e.predictBlock(job.rows, job.out, s)
				b.wg.Done()
			}
		}()
	}
	return b
}

// Workers returns the pool size.
func (b *Batcher) Workers() int { return b.workers }

// Predict classifies all rows, writing into out when it has sufficient
// capacity (otherwise allocating a result slice). Concurrent calls are
// serialized; calling after Close panics.
func (b *Batcher) Predict(rows [][]float32, out []int32) []int32 {
	if cap(out) < len(rows) {
		out = make([]int32, len(rows))
	}
	out = out[:len(rows)]
	if len(rows) == 0 {
		return out
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	blocks := (len(rows) + b.block - 1) / b.block
	b.wg.Add(blocks)
	for lo := 0; lo < len(rows); lo += b.block {
		hi := lo + b.block
		if hi > len(rows) {
			hi = len(rows)
		}
		b.jobs <- batchJob{rows: rows[lo:hi], out: out[lo:hi]}
	}
	b.wg.Wait()
	return out
}

// Close shuts the worker pool down. The Batcher must be idle.
func (b *Batcher) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	close(b.jobs)
}
