package treeexec

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flint/internal/core"
	"flint/internal/ieee754"
	"flint/internal/rf"
)

// FlatVariant selects the comparison kernel an arena is compiled for.
// The variant is fixed at compile time because it determines how split
// keys are encoded into the arena nodes.
type FlatVariant int

const (
	// FlatFLInt stores offline sign-resolved FLInt keys: one signed or
	// unsigned integer compare per node (the paper's Section IV-B).
	FlatFLInt FlatVariant = iota
	// FlatFloat32 stores raw float bit patterns and compares with the
	// hardware float unit — the naive baseline over the arena layout.
	FlatFloat32
	// FlatPrecoded stores total-order keys: one unsigned compare per
	// node against a per-vector precoded input (the key-space precoding
	// extension).
	FlatPrecoded
	// FlatCompact stores the forest as the quantized structure-of-arrays
	// arena: 8 bytes per node split across parallel uint16 key, uint16
	// feature and packed int32 child slices, with split values reduced
	// to exact per-feature total-order ranks (see flat_compact.go).
	// Forests exceeding the narrow encoding's limits fall back to the
	// FlatFLInt arena; probe with Compactable.
	FlatCompact
)

// String names the variant in benchmark output.
func (v FlatVariant) String() string {
	switch v {
	case FlatFLInt:
		return "flat-flint"
	case FlatFloat32:
		return "flat-float32"
	case FlatPrecoded:
		return "flat-precoded"
	case FlatCompact:
		return "flat-compact"
	}
	return fmt.Sprintf("flat-variant(%d)", int(v))
}

// FlatForestEngine executes a forest out of one contiguous node arena:
// every inner node of every tree lives in a single backing array, trees
// are addressed by per-tree root offsets, and leaves are not stored at
// all — a child index c < 0 encodes the leaf class as ^c. The hot loop
// is therefore load → compare → select with no per-node leaf branch:
//
//	for i >= 0 { n := &arena[i]; i = pick(n.left, n.right) }
//	class = ^i
//
// Within each tree the compiler preserves the relative order of the
// source tree's inner nodes, so a forest permuted by cags.ReorderForest
// keeps its hot-path-preorder locality inside the arena.
//
// The engine is immutable after construction apart from the interleave
// width knob (SetInterleave/CalibrateInterleave, to be set before
// serving starts) and safe for concurrent use. Single rows go through
// Predict/PredictEncoded/PredictPrecoded; many rows should go through
// PredictBatch or a persistent Batcher: the rows of a block run
// back-to-back over the arena with per-worker scratch, and on arenas
// past the cache comfort zone the FLInt and compact kernels walk rows
// in interleaved groups of 2, 4 or 8 register-resident cursors so the
// core overlaps their node fetches (see flat_interleave.go for the
// runtime-calibrated gates).
type FlatForestEngine struct {
	arena   []node  // inner nodes of all trees, contiguous (AoS variants)
	roots   []int32 // per-tree entry: arena index (tree base for compact), or ^class for leaf-only trees
	variant FlatVariant

	// Compact SoA arena (FlatCompact only): parallel 8-byte nodes plus
	// the feature-pruned quantization tables. Cut tables exist only for
	// the numPruned features the forest actually splits on; feats16 and
	// the quantized rank lanes are indexed by the dense pruned
	// renumbering, prunedOrig maps it back to input columns. See
	// flat_compact.go.
	keys16     []uint16 // per-node split rank in the feature's cut table
	feats16    []uint16 // per-node pruned feature index
	kids       []int32  // packed child/leaf word: low int16 left, high int16 right
	nodes64    []uint64 // same nodes fused: key16 | feat16<<16 | kids32<<32, one load per walk step
	cuts       []uint32 // flattened pruned-feature sorted distinct split keys (total order)
	cutLo      []int32  // numPruned+1 offsets into cuts
	prunedOrig []int32  // pruned feature index -> original input column
	numPruned  int      // features the forest splits on (== len(prunedOrig))

	numClasses  int
	numFeatures int
	// mode packs the batch kernel's cursor count (1, 2, 4, 8 — or 16
	// for the dual-group SIMD walk; low byte) together with the compact
	// walk kernel (branchy, fused, simd-quant or simd; next byte) and
	// the width-16 walk's lane compaction threshold (third byte, 0 =
	// kernel default), selected at construction from the calibrated
	// gates and the arena footprint; SetInterleave/SetKernel and the
	// calibration passes override it. It is one atomic word because
	// recalibration (Batcher.Recalibrate on sampled traffic, or an
	// explicit CalibrateInterleaveRows) may install a new tuple while
	// Batcher workers are mid-batch: every mode produces identical
	// predictions, so a worker racing the store merely finishes its
	// block at the old tuple — and because the tuple travels in one
	// word, a worker can never observe a width measured under one kernel
	// combined with the other.
	mode atomic.Int32
	// kernelPin, when non-zero, pins calibration to one kernel
	// (SetKernel): 1 = branchy, 2 = fused, 3 = simd-quant, 4 = simd.
	kernelPin atomic.Int32
	// calibSource records where the current mode came from (see the
	// calibSource* constants); CalibrationSource decodes it for reports.
	calibSource atomic.Int32
}

// NewFlat compiles a validated forest into a single-arena engine for the
// given comparison variant. The forest's node ordering (original or
// CAGS-reordered) is preserved tree by tree. A FlatCompact request for a
// forest exceeding the compact encoding's limits (see Compactable)
// gracefully falls back to the 32-bit FlatFLInt arena; check Variant()
// or probe Compactable to learn which representation was built.
func NewFlat(f *rf.Forest, v FlatVariant) (*FlatForestEngine, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if v == FlatCompact {
		if cuts, _ := compactProbe(f); cuts == nil {
			v = FlatFLInt
		} else {
			e := &FlatForestEngine{
				variant:     FlatCompact,
				numClasses:  f.NumClasses,
				numFeatures: f.NumFeatures,
			}
			if err := e.buildCompact(f, cuts); err != nil {
				return nil, err
			}
			g := CurrentInterleaveGates()
			w, k := g.modeFor(e.variant, e.ArenaBytes())
			e.mode.Store(packMode(w, k))
			return e, nil
		}
	}
	var enc func(split float32) int32
	switch v {
	case FlatFLInt:
		enc = func(s float32) int32 { return core.MustEncodeSplit32(s).Key }
	case FlatFloat32:
		enc = ieee754.SI32
	case FlatPrecoded:
		enc = func(s float32) int32 { return int32(core.PrecodeSplit32(s)) }
	default:
		return nil, fmt.Errorf("treeexec: unknown flat variant %d", int(v))
	}

	inner := 0
	for i := range f.Trees {
		inner += len(f.Trees[i].Nodes) - f.Trees[i].NumLeaves()
	}
	if inner > math.MaxInt32 {
		return nil, fmt.Errorf("treeexec: forest has %d inner nodes, arena indices overflow int32", inner)
	}
	e := &FlatForestEngine{
		arena:       make([]node, 0, inner),
		roots:       make([]int32, len(f.Trees)),
		variant:     v,
		numClasses:  f.NumClasses,
		numFeatures: f.NumFeatures,
	}
	// remap is reused per tree: old node index -> arena index for inner
	// nodes, ^class for leaves.
	var remap []int32
	for ti := range f.Trees {
		src := f.Trees[ti].Nodes
		if cap(remap) < len(src) {
			remap = make([]int32, len(src))
		}
		remap = remap[:len(src)]
		base := int32(len(e.arena))
		next := base
		for i, n := range src {
			if n.IsLeaf() {
				remap[i] = ^n.Class
				continue
			}
			if !core.ValidFeature32(n.Split) {
				return nil, fmt.Errorf("treeexec: tree %d node %d has NaN split", ti, i)
			}
			remap[i] = next
			next++
		}
		e.roots[ti] = remap[0]
		for _, n := range src {
			if n.IsLeaf() {
				continue
			}
			e.arena = append(e.arena, node{
				feature: n.Feature,
				key:     enc(n.Split),
				left:    remap[n.Left],
				right:   remap[n.Right],
			})
		}
	}
	e.mode.Store(packMode(CurrentInterleaveGates().widthFor(e.variant, e.ArenaBytes()), KernelBranchy))
	return e, nil
}

// Name identifies the engine in benchmark output.
func (e *FlatForestEngine) Name() string { return e.variant.String() }

// Variant returns the comparison kernel the arena was actually compiled
// for — after a FlatCompact fallback this is FlatFLInt.
func (e *FlatForestEngine) Variant() FlatVariant { return e.variant }

// NumClasses returns the number of prediction classes.
func (e *FlatForestEngine) NumClasses() int { return e.numClasses }

// NumFeatures returns the input dimensionality.
func (e *FlatForestEngine) NumFeatures() int { return e.numFeatures }

// PrunedFeatures returns the number of features the compiled forest
// actually splits on — the per-row quantization cost of the compact
// arena (one binary search each). For non-compact variants, which keep
// no cut tables, it returns NumFeatures.
func (e *FlatForestEngine) PrunedFeatures() int {
	if e.variant == FlatCompact {
		return e.numPruned
	}
	return e.numFeatures
}

// classifyFLInt walks one tree from root over sign-resolved FLInt keys.
func (e *FlatForestEngine) classifyFLInt(xi []int32, i int32) int32 {
	arena := e.arena
	for i >= 0 {
		n := &arena[i]
		v := xi[n.feature]
		var le bool
		if n.key >= 0 {
			le = v <= n.key
		} else {
			le = uint32(v) >= uint32(n.key)
		}
		if le {
			i = n.left
		} else {
			i = n.right
		}
	}
	return ^i
}

// classifyFloat walks one tree comparing reinterpreted hardware floats.
func (e *FlatForestEngine) classifyFloat(xi []int32, i int32) int32 {
	arena := e.arena
	for i >= 0 {
		n := &arena[i]
		if ieee754.FromSI32(xi[n.feature]) <= ieee754.FromSI32(n.key) {
			i = n.left
		} else {
			i = n.right
		}
	}
	return ^i
}

// classifyTotalOrder walks one tree over total-order keys, transforming
// each raw bit pattern at load time (the unamortized precoded form).
func (e *FlatForestEngine) classifyTotalOrder(xi []int32, i int32) int32 {
	arena := e.arena
	for i >= 0 {
		n := &arena[i]
		if ieee754.TotalOrderKey32(uint32(xi[n.feature])) <= uint32(n.key) {
			i = n.left
		} else {
			i = n.right
		}
	}
	return ^i
}

// classifyPrecoded walks one tree over a precoded key vector.
func (e *FlatForestEngine) classifyPrecoded(keys []uint32, i int32) int32 {
	arena := e.arena
	for i >= 0 {
		n := &arena[i]
		if keys[n.feature] <= uint32(n.key) {
			i = n.left
		} else {
			i = n.right
		}
	}
	return ^i
}

// classify2FLInt walks one tree for two rows at once. The two traversal
// chains are independent, so the out-of-order core overlaps their node
// fetches (2-way memory-level parallelism) — the lock-step payoff of the
// blocked kernel, with all per-lane state in registers. When the chains
// diverge in depth the leftover row finishes in a single-chain loop.
func (e *FlatForestEngine) classify2FLInt(x0, x1 []int32, root int32) (int32, int32) {
	arena := e.arena
	i0, i1 := root, root
	for i0 >= 0 && i1 >= 0 {
		n0 := &arena[i0]
		n1 := &arena[i1]
		v0 := x0[n0.feature]
		v1 := x1[n1.feature]
		var le0, le1 bool
		if n0.key >= 0 {
			le0 = v0 <= n0.key
		} else {
			le0 = uint32(v0) >= uint32(n0.key)
		}
		if n1.key >= 0 {
			le1 = v1 <= n1.key
		} else {
			le1 = uint32(v1) >= uint32(n1.key)
		}
		if le0 {
			i0 = n0.left
		} else {
			i0 = n0.right
		}
		if le1 {
			i1 = n1.left
		} else {
			i1 = n1.right
		}
	}
	if i0 >= 0 {
		return e.classifyFLInt(x0, i0), ^i1
	}
	if i1 >= 0 {
		return ^i0, e.classifyFLInt(x1, i1)
	}
	return ^i0, ^i1
}

// voteEncoded tallies every tree's class for a raw bit-pattern vector
// into counts (length numClasses, zeroed by the caller). The variant
// switch is hoisted out of the per-tree loop.
func (e *FlatForestEngine) voteEncoded(xi []int32, counts []int32) {
	switch e.variant {
	case FlatFLInt:
		for _, root := range e.roots {
			counts[e.classifyFLInt(xi, root)]++
		}
	case FlatFloat32:
		for _, root := range e.roots {
			counts[e.classifyFloat(xi, root)]++
		}
	case FlatCompact:
		var stack [maxStackQuantizedFeatures]uint16
		var q []uint16
		if e.numPruned <= maxStackQuantizedFeatures {
			q = stack[:e.numPruned]
		} else {
			q = make([]uint16, e.numPruned)
		}
		e.quantizeBits(q, xi)
		// A single row offers the SIMD kernel no group to vectorize, so
		// simd mode serves one-row calls through the scalar fused form —
		// the same branch-free step, bit-identical predictions.
		if modeKernel(e.mode.Load()) != KernelBranchy {
			for _, root := range e.roots {
				counts[e.classifyCompactFused(q, root)]++
			}
			break
		}
		for _, root := range e.roots {
			counts[e.classifyCompact(q, root)]++
		}
	default:
		for _, root := range e.roots {
			counts[e.classifyTotalOrder(xi, root)]++
		}
	}
}

// maxStackQuantizedFeatures bounds the stack buffer the single-row
// compact path quantizes into; forests splitting on more features
// allocate (the bound is on the pruned count, not the input width).
// Batch paths always use engine scratch and stay allocation-free.
const maxStackQuantizedFeatures = 64

// PredictEncoded returns the majority-vote class for a raw bit-pattern
// vector (core.EncodeFeatures32 output). It is valid for every variant:
// the precoded arena transforms each load into key space, matching the
// total-order engine's semantics.
func (e *FlatForestEngine) PredictEncoded(xi []int32) int32 {
	var stack [maxStackClasses]int32
	counts := voteSlice(&stack, e.numClasses)
	e.voteEncoded(xi, counts)
	return rf.Argmax(counts)
}

// PredictPrecoded returns the majority-vote class for a precoded key
// vector (core.PrecodeFeatures32 output). Exact for the FlatPrecoded
// variant (whose arena stores total-order keys) and for FlatCompact
// (which quantizes the keys into its rank space); other variants store
// keys the precoded input cannot be compared against and would walk
// garbage.
func (e *FlatForestEngine) PredictPrecoded(keys []uint32) int32 {
	var stack [maxStackClasses]int32
	counts := voteSlice(&stack, e.numClasses)
	if e.variant == FlatCompact {
		var qstack [maxStackQuantizedFeatures]uint16
		var q []uint16
		if e.numPruned <= maxStackQuantizedFeatures {
			q = qstack[:e.numPruned]
		} else {
			q = make([]uint16, e.numPruned)
		}
		// As in voteEncoded, simd mode's single-row path runs the scalar
		// fused form: no group, no vector, identical predictions.
		if modeKernel(e.mode.Load()) != KernelBranchy {
			e.quantizeKeysFused(q, keys)
			for _, root := range e.roots {
				counts[e.classifyCompactFused(q, root)]++
			}
			return rf.Argmax(counts)
		}
		e.quantizeKeys(q, keys)
		for _, root := range e.roots {
			counts[e.classifyCompact(q, root)]++
		}
		return rf.Argmax(counts)
	}
	for _, root := range e.roots {
		counts[e.classifyPrecoded(keys, root)]++
	}
	return rf.Argmax(counts)
}

// Predict encodes x for the engine's variant and classifies it,
// satisfying rf.Predictor.
func (e *FlatForestEngine) Predict(x []float32) int32 {
	if e.variant == FlatPrecoded {
		return e.PredictPrecoded(core.PrecodeFeatures32(make([]uint32, 0, 64), x))
	}
	return e.PredictEncoded(core.EncodeFeatures32(make([]int32, 0, 64), x))
}

// pairMinArenaNodes is the PR 1 static gate for the paired FLInt walk:
// past ~1MB of nodes the arena stops fitting in a per-core L2 and
// traversal becomes fetch-latency-bound, which the 2-way interleaved
// walk hides (measured 1.8x over the per-row engines at 16MB arenas,
// 20% at 2MB); below it the walks are IPC-bound and the simple per-row
// loop is cheaper. It survives only as the uncalibrated default for
// InterleaveGates.Min2 — run Calibrate to replace all the gates with
// crossovers measured on the actual host.
const pairMinArenaNodes = 1 << 16

// DefaultBlockRows is the default row-block size B of the batch kernel:
// blocks of B rows advance in lock-step through each tree, so every node
// fetched from the arena is reused up to B times while it is cache-hot.
const DefaultBlockRows = 16

// flatScratch is the per-worker working set of the batch kernel: encode
// or quantize buffers for one interleaved group of rows and the group's
// vote-count tallies, allocated once at pool construction so the steady
// state allocates nothing. Buffers are sized for the widest interleave
// the variant supports (8-way scalar, 16-lane dual-group SIMD on the
// compact arena) so a later SetInterleave/CalibrateInterleave never
// forces a reallocation.
type flatScratch struct {
	enc   []int32  // 8*numFeatures raw bit patterns (FLInt/Float32)
	keys  []uint32 // numFeatures precoded keys (FlatPrecoded only)
	q     []uint16 // 16*numPruned quantized ranks + pad (FlatCompact only)
	votes []int32  // vote counts (spilled when classes > maxStackClasses)
}

func (e *FlatForestEngine) newScratch() *flatScratch {
	s := &flatScratch{}
	switch e.variant {
	case FlatPrecoded:
		s.votes = make([]int32, 8*e.numClasses)
		s.keys = make([]uint32, e.numFeatures)
	case FlatCompact:
		// 16 rank lanes for the dual-group SIMD walk (the scalar kernels
		// use the first 8), plus two padding elements past the last
		// lane: the SIMD kernel's key gathers load 32 bits per 16-bit
		// rank, so the last lane's last element would otherwise read
		// past the allocation. TestSIMDScratchOverreadPad places a
		// buffer of exactly this size flush against an unmapped guard
		// page, so silently shrinking the pad faults the test.
		s.votes = make([]int32, 16*e.numClasses)
		s.q = make([]uint16, 16*e.numPruned+2)
	default:
		s.votes = make([]int32, 8*e.numClasses)
		s.enc = make([]int32, 8*e.numFeatures)
	}
	return s
}

// predictBlock classifies one block of rows into out, reusing s. The
// rows of a block run back-to-back through the whole arena, so the
// forest's hot set — halved by the leaf-free encoding relative to the
// per-tree engines — is reused across the block while cache-resident.
//
// The kernel is deliberately row-major: a tree-major "lock-step" order
// (all rows through one tree before the next) and a level-synchronous
// lane variant were both measured slower on commodity x86, because the
// per-walk bookkeeping they add outweighs the node-fetch reuse the
// leaf-free arena already provides. See ROADMAP for the SIMD/lock-step
// follow-on.
func (e *FlatForestEngine) predictBlock(rows [][]float32, out []int32, s *flatScratch) {
	m := e.mode.Load()
	e.predictBlockMode(rows, out, s, modeWidth(m), modeKernel(m), modeRefill(m))
}

// predictBlockWidth is predictBlockMode with the kernel-default lane
// compaction policy — the form differential tests exercise, since the
// compaction threshold changes scheduling, never answers.
func (e *FlatForestEngine) predictBlockWidth(rows [][]float32, out []int32, s *flatScratch, width int, k Kernel) {
	e.predictBlockMode(rows, out, s, width, k, 0)
}

// predictBlockMode is predictBlock at an explicit interleave width,
// kernel and compaction threshold, bypassing the engine's atomic mode
// field. It exists so calibration (timeModes) can time every candidate
// mode without mutating shared engine state while Batcher workers are
// in flight; the serving path loads the atomic once per block and
// funnels through here.
func (e *FlatForestEngine) predictBlockMode(rows [][]float32, out []int32, s *flatScratch, width int, k Kernel, refill int32) {
	nf := e.numFeatures
	nc := e.numClasses
	switch {
	case e.variant == FlatPrecoded:
		for b, x := range rows {
			keys := core.PrecodeFeatures32(s.keys[:0], x)
			votes := s.votes[:nc]
			for i := range votes {
				votes[i] = 0
			}
			for _, root := range e.roots {
				votes[e.classifyPrecoded(keys, root)]++
			}
			out[b] = rf.Argmax(votes)
		}
	case e.variant == FlatCompact && k == KernelSIMD && width >= simdWidth16:
		e.predictBlockCompactSIMD16(rows, out, s, refill)
	case e.variant == FlatCompact && k == KernelSIMD:
		e.predictBlockCompactSIMD(rows, out, s, width)
	case e.variant == FlatCompact && k == KernelSIMDQuant:
		e.predictBlockCompactSIMDQuant(rows, out, s, width)
	case e.variant == FlatCompact && k == KernelFused:
		e.predictBlockCompactFused(rows, out, s, width)
	case e.variant == FlatCompact:
		e.predictBlockCompact(rows, out, s, width)
	case e.variant == FlatFLInt && width >= 2:
		e.predictBlockFLIntWide(rows, out, s, width)
	default:
		for b, x := range rows {
			out[b] = e.predictOneInto(core.EncodeFeatures32(s.enc[0:0:nf], x), s)
		}
	}
}

// predictOneInto classifies one encoded row using stack vote counts when
// they fit and the scratch tally otherwise, so the block kernel stays
// allocation-free for any class count.
func (e *FlatForestEngine) predictOneInto(xi []int32, s *flatScratch) int32 {
	if e.numClasses <= maxStackClasses {
		return e.PredictEncoded(xi)
	}
	votes := s.votes[:e.numClasses]
	for i := range votes {
		votes[i] = 0
	}
	e.voteEncoded(xi, votes)
	return rf.Argmax(votes)
}

// normBlock returns the effective row-block size for a requested value:
// zero or negative selects DefaultBlockRows. It is the single clamping
// point every batch entry (PredictBatch, NewBatcher, Batch, BatchFloat)
// funnels through.
func normBlock(block int) int {
	if block <= 0 {
		return DefaultBlockRows
	}
	return block
}

// normWorkers returns the effective worker count for a requested value:
// zero or negative selects runtime.GOMAXPROCS(0), and the result never
// exceeds jobs (the available parallel units), with a floor of 1. Like
// normBlock it is the single clamping point for all batch entries.
func normWorkers(workers, jobs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// checkRows panics when any row's length differs from the engine's
// feature width (the shared rowWidthError loop, surfaced as a panic).
// Every batch entry calls it in the caller's goroutine, where the panic
// is recoverable and carries the offending index — the same fail-fast
// pattern as the nil-engine guards. Without it a short row would index
// out of range inside a worker goroutine, which no caller can recover,
// killing the whole process.
func (e *FlatForestEngine) checkRows(entry string, rows [][]float32) {
	if err := rowWidthError(e.numFeatures, rows); err != nil {
		panic(fmt.Sprintf("treeexec: %s: %v", entry, err))
	}
}

// PredictBatch classifies all rows with the blocked kernel, spawning up
// to workers goroutines for this call that claim blocks of block rows
// from a shared cursor. Zero or negative workers selects GOMAXPROCS,
// zero or negative block selects DefaultBlockRows, and the worker count
// is capped at the number of blocks. The result is written into out
// when it has sufficient capacity; otherwise a new slice is allocated.
// For steady-state serving without per-call worker spawning, use a
// Batcher. Calling on a nil engine, or with a row whose length is not
// NumFeatures, panics immediately in the caller's goroutine (a clear
// error instead of an unrecoverable panic inside a spawned worker).
func (e *FlatForestEngine) PredictBatch(rows [][]float32, out []int32, workers, block int) []int32 {
	if isNilEngine(e) {
		panic("treeexec: PredictBatch on nil engine")
	}
	e.checkRows("PredictBatch", rows)
	if cap(out) < len(rows) {
		out = make([]int32, len(rows))
	}
	out = out[:len(rows)]
	if len(rows) == 0 {
		return out
	}
	block = normBlock(block)
	blocks := (len(rows) + block - 1) / block
	workers = normWorkers(workers, blocks)
	if workers == 1 {
		s := e.newScratch()
		for lo := 0; lo < len(rows); lo += block {
			hi := lo + block
			if hi > len(rows) {
				hi = len(rows)
			}
			e.predictBlock(rows[lo:hi], out[lo:hi], s)
		}
		return out
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.newScratch()
			for {
				bi := int(cursor.Add(1)) - 1
				if bi >= blocks {
					return
				}
				lo := bi * block
				hi := lo + block
				if hi > len(rows) {
					hi = len(rows)
				}
				e.predictBlock(rows[lo:hi], out[lo:hi], s)
			}
		}()
	}
	wg.Wait()
	return out
}

// batchJob is one block of work handed to a Batcher worker: the rows to
// classify, the output sub-slice to fill, and the issuing call's
// completion token to signal.
type batchJob struct {
	rows [][]float32
	out  []int32
	done *sync.WaitGroup
}

// Batcher drives a FlatForestEngine with a persistent worker pool: the
// goroutines and their scratch buffers (encode buffer + vote counts) are
// allocated once at construction, so repeated Predict calls with a
// caller-reused output slice allocate nothing. This is the serving
// configuration: keep one Batcher per engine for the process lifetime
// and feed it request batches.
//
// Predict is safe for concurrent use and independent calls interleave:
// each call carries its own completion token (drawn from a pool, so the
// steady state stays allocation-free), and the shared workers drain
// blocks from every in-flight call as they arrive instead of serializing
// whole batches behind a lock.
//
// Unless disabled at construction, the Batcher also maintains a
// reservoir sample of the rows it serves (pre-allocated storage, one
// atomic add per call plus a short mutex on every sampled row, so the
// zero-alloc steady state is preserved). The sample feeds Recalibrate —
// re-timing the engine's interleave width on measured traffic instead
// of synthetic rows — and SampleSnapshot, whose rows SaveCalibration
// can persist so the next deployment warm-starts from real traffic.
type Batcher struct {
	e       *FlatForestEngine
	block   int
	workers int
	sample  *rowReservoir // nil when sampling is disabled
	jobs    chan batchJob

	// drift holds the armed drift detector (EnableDriftDetection), or
	// nil. An atomic pointer so the Predict path reads it with one load
	// and arming mid-serve is race-free.
	drift atomic.Pointer[driftDetector]

	// tokens recycles per-call completion WaitGroups so concurrent
	// Predict calls track their own blocks without allocating. A
	// buffered channel rather than a sync.Pool: the pool is emptied on
	// every GC cycle, which would cost one allocation per post-GC call
	// and break the deterministic zero-alloc steady state.
	tokens chan *sync.WaitGroup
	// closeMu lets Predict calls proceed concurrently (read side) while
	// Close (write side) waits out in-flight calls before closing jobs.
	closeMu sync.RWMutex
	closed  bool
}

// DefaultReservoirRows is the traffic-reservoir capacity NewBatcher
// enables: enough rows for a stable interleave timing block (see
// minTimingRows) at a few hundred KB of storage for typical feature
// counts.
const DefaultReservoirRows = 256

// DefaultSampleStride is the decimation NewBatcher applies to reservoir
// sampling: one served row in every DefaultSampleStride is considered
// for admission, bounding the sampling cost (and its mutex) to a small
// fraction of the Predict path.
const DefaultSampleStride = 32

// NewBatcher starts a pool of workers goroutines processing blocks of
// block rows, with traffic-reservoir sampling enabled at the default
// capacity and stride. Zero or negative workers selects GOMAXPROCS,
// zero or negative block selects DefaultBlockRows (the same clamping as
// PredictBatch). Close releases the pool.
//
// A nil engine panics here, in the caller's goroutine, where it can be
// recovered — without the guard the constructor would hand back a
// working-looking Batcher whose workers die unrecoverably on their
// first scratch allocation.
func NewBatcher(e *FlatForestEngine, workers, block int) *Batcher {
	return NewBatcherSampled(e, workers, block, DefaultReservoirRows, DefaultSampleStride)
}

// NewBatcherSampled is NewBatcher with explicit reservoir parameters:
// capacity is the sample size held (negative disables sampling
// entirely; zero selects DefaultReservoirRows) and stride the
// decimation (one served row in every stride is considered; <= 0
// selects DefaultSampleStride). Reservoir storage is allocated here,
// once, so sampling keeps the steady state at zero allocations per op.
func NewBatcherSampled(e *FlatForestEngine, workers, block, capacity, stride int) *Batcher {
	if isNilEngine(e) {
		panic("treeexec: NewBatcher on nil engine")
	}
	workers = normWorkers(workers, int(^uint(0)>>1))
	b := &Batcher{
		e:       e,
		block:   normBlock(block),
		workers: workers,
		jobs:    make(chan batchJob, workers*4),
		tokens:  make(chan *sync.WaitGroup, 4*workers),
	}
	if capacity >= 0 {
		if capacity == 0 {
			capacity = DefaultReservoirRows
		}
		if stride <= 0 {
			stride = DefaultSampleStride
		}
		b.sample = newRowReservoir(capacity, e.numFeatures, uint64(stride))
	}
	for w := 0; w < workers; w++ {
		go func() {
			s := e.newScratch()
			for job := range b.jobs {
				e.predictBlock(job.rows, job.out, s)
				job.done.Done()
			}
		}()
	}
	return b
}

// Workers returns the pool size.
func (b *Batcher) Workers() int { return b.workers }

// Predict classifies all rows, writing into out when it has sufficient
// capacity (otherwise allocating a result slice). Concurrent calls are
// safe and interleave block-by-block over the shared worker pool;
// calling after Close panics — for every batch shape, including the
// empty one, so a misuse surfaces on the first call rather than the
// first non-empty one. A row whose length is not the engine's
// NumFeatures panics here, in the caller's goroutine, where it is
// recoverable — previously it killed the process from inside a worker.
func (b *Batcher) Predict(rows [][]float32, out []int32) []int32 {
	b.closeMu.RLock()
	defer b.closeMu.RUnlock()
	if b.closed {
		panic("treeexec: Batcher.Predict called after Close")
	}
	b.e.checkRows("Batcher.Predict", rows)
	if cap(out) < len(rows) {
		out = make([]int32, len(rows))
	}
	out = out[:len(rows)]
	if len(rows) == 0 {
		return out
	}
	b.sample.observe(rows)
	if d := b.drift.Load(); d != nil {
		d.offer(b.sample.seen.Load())
	}
	var done *sync.WaitGroup
	select {
	case done = <-b.tokens:
	default:
		done = new(sync.WaitGroup)
	}
	blocks := (len(rows) + b.block - 1) / b.block
	done.Add(blocks)
	for lo := 0; lo < len(rows); lo += b.block {
		hi := lo + b.block
		if hi > len(rows) {
			hi = len(rows)
		}
		b.jobs <- batchJob{rows: rows[lo:hi], out: out[lo:hi], done: done}
	}
	done.Wait()
	select {
	case b.tokens <- done:
	default: // more than 4*workers callers in flight; let it be collected
	}
	return out
}

// Close shuts the worker pool down after in-flight Predict calls drain.
// The drift-watcher goroutine (EnableDriftDetection) is stopped first
// and Close waits for it to exit, so no goroutine armed on this Batcher
// survives the call — the guarantee a ModelRegistry swap's drain path
// relies on.
func (b *Batcher) Close() {
	b.closeMu.Lock()
	defer b.closeMu.Unlock()
	if !b.closed {
		b.closed = true
		if d := b.drift.Load(); d != nil {
			// Stop the watcher before the pool: a drift-triggered
			// recalibration that races Close then completes against a
			// still-live engine instead of a dying pool.
			close(d.stop)
			<-d.done
		}
		close(b.jobs)
	}
}

// Engine returns the engine the pool serves — e.g. to persist its
// calibration alongside a SampleSnapshot.
func (b *Batcher) Engine() *FlatForestEngine { return b.e }

// SampleStats reports the traffic reservoir's fill level and the total
// rows observed on the Predict path ((0, 0) when sampling is disabled).
func (b *Batcher) SampleStats() (sampled int, seen uint64) { return b.sample.stats() }

// SampleSnapshot returns a copy of the reservoir's current rows — a
// uniform sample of served traffic — or nil when sampling is disabled
// or nothing has been served. Safe to call while Predict traffic flows;
// the snapshot allocates, so keep it off the per-request path.
func (b *Batcher) SampleSnapshot() [][]float32 { return b.sample.snapshot() }

// SeedSample pre-populates the traffic reservoir, typically with the
// Rows of a persisted CalibrationRecord, so a freshly started Batcher
// can Recalibrate on the previous deployment's measured traffic before
// its own sample fills. Rows of the wrong width are skipped; the number
// accepted is returned (0 when sampling is disabled).
func (b *Batcher) SeedSample(rows [][]float32) int { return b.sample.seedRows(rows) }

// Recalibrate re-times the engine's interleave width on the reservoir's
// sampled traffic (falling back to rows synthesized from the engine's
// split tables while the reservoir is empty or sampling is disabled)
// and installs the winner, returning it. The whole pass costs roughly
// budget wall time (<= 0 selects the CalibrateInterleaveRows default).
//
// It is safe while Predict traffic is in flight: candidate widths are
// timed through an explicit-width kernel without touching shared engine
// state, and the winner lands in one atomic store — workers racing the
// store finish their current block at the old width and pick up the new
// one on the next. Call it periodically (or after traffic shifts) to
// keep the width matched to the distribution actually served — or arm
// EnableDriftDetection to have the Batcher call it for you when the
// served distribution measurably moves.
//
// When a drift detector is armed, the sample this pass timed becomes
// its new baseline: drift is henceforth measured against the
// distribution the current mode was actually chosen on.
func (b *Batcher) Recalibrate(budget time.Duration) int {
	rows := b.sample.snapshot()
	w := b.e.CalibrateInterleaveRows(rows, budget)
	if d := b.drift.Load(); d != nil {
		d.rebase(rows)
	}
	return w
}
