package treeexec

import (
	"fmt"

	"flint/internal/core"
	"flint/internal/ieee754"
	"flint/internal/rf"
)

// node64 is the flattened node for the double precision engines
// (ablation A4): 24 bytes per node.
type node64 struct {
	key     int64
	feature int32
	left    int32
	right   int32
	_       int32 // padding for predictable layout
}

// tree64 is a flattened double precision tree.
type tree64 struct {
	nodes []node64
}

func compileForest64(f *rf.Forest, enc func(split float64) int64) ([]tree64, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	trees := make([]tree64, len(f.Trees))
	for ti := range f.Trees {
		src := f.Trees[ti].Nodes
		dst := make([]node64, len(src))
		for i, n := range src {
			if n.IsLeaf() {
				dst[i] = node64{feature: rf.LeafFeature, left: n.Class}
				continue
			}
			if !core.ValidFeature32(n.Split) {
				return nil, fmt.Errorf("treeexec: tree %d node %d has NaN split", ti, i)
			}
			dst[i] = node64{
				feature: n.Feature,
				key:     enc(float64(n.Split)),
				left:    n.Left,
				right:   n.Right,
			}
		}
		trees[ti] = tree64{nodes: dst}
	}
	return trees, nil
}

// Float64Engine executes the forest over float64 feature vectors with
// hardware double comparisons.
type Float64Engine struct {
	trees      []tree64
	numClasses int
	numFeat    int
}

// NumFeatures returns the input dimensionality the engine was compiled
// for.
func (e *Float64Engine) NumFeatures() int { return e.numFeat }

// NewFloat64 compiles a forest into a Float64Engine. Split values widen
// exactly from float32 to float64, so predictions agree with the float32
// engines for widened inputs.
func NewFloat64(f *rf.Forest) (*Float64Engine, error) {
	trees, err := compileForest64(f, ieee754.SI64)
	if err != nil {
		return nil, err
	}
	return &Float64Engine{trees: trees, numClasses: f.NumClasses, numFeat: f.NumFeatures}, nil
}

// PredictTree64 returns tree t's class for a float64 feature vector.
func (e *Float64Engine) PredictTree64(t int, x []float64) int32 {
	nodes := e.trees[t].nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.feature < 0 {
			return n.left
		}
		if x[n.feature] <= ieee754.FromSI64(n.key) {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Predict64 returns the majority-vote class for a float64 vector.
func (e *Float64Engine) Predict64(x []float64) int32 {
	var stack [maxStackClasses]int32
	counts := voteSlice(&stack, e.numClasses)
	for t := range e.trees {
		counts[e.PredictTree64(t, x)]++
	}
	return rf.Argmax(counts)
}

// Predict widens x to float64 and classifies it, satisfying rf.Predictor.
func (e *Float64Engine) Predict(x []float32) int32 {
	wide := make([]float64, len(x))
	for i, v := range x {
		wide[i] = float64(v)
	}
	return e.Predict64(wide)
}

// Name identifies the engine in benchmark output.
func (e *Float64Engine) Name() string { return "float64" }

// FLInt64Engine is the offline-resolved FLInt engine for float64 vectors.
type FLInt64Engine struct {
	trees      []tree64
	numClasses int
	numFeat    int
}

// NumFeatures returns the input dimensionality the engine was compiled
// for.
func (e *FLInt64Engine) NumFeatures() int { return e.numFeat }

// NewFLInt64 compiles a forest into a FLInt64Engine.
func NewFLInt64(f *rf.Forest) (*FLInt64Engine, error) {
	trees, err := compileForest64(f, func(s float64) int64 { return core.MustEncodeSplit64(s).Key })
	if err != nil {
		return nil, err
	}
	return &FLInt64Engine{trees: trees, numClasses: f.NumClasses, numFeat: f.NumFeatures}, nil
}

// PredictTreeEncoded returns tree t's class for a pre-encoded vector
// (core.EncodeFeatures64).
func (e *FLInt64Engine) PredictTreeEncoded(t int, xi []int64) int32 {
	nodes := e.trees[t].nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.feature < 0 {
			return n.left
		}
		v := xi[n.feature]
		var le bool
		if n.key >= 0 {
			le = v <= n.key
		} else {
			le = uint64(v) >= uint64(n.key)
		}
		if le {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// PredictEncoded returns the majority-vote class for a pre-encoded vector.
func (e *FLInt64Engine) PredictEncoded(xi []int64) int32 {
	var stack [maxStackClasses]int32
	counts := voteSlice(&stack, e.numClasses)
	for t := range e.trees {
		counts[e.PredictTreeEncoded(t, xi)]++
	}
	return rf.Argmax(counts)
}

// Predict64 encodes x and classifies it.
func (e *FLInt64Engine) Predict64(x []float64) int32 {
	return e.PredictEncoded(core.EncodeFeatures64(make([]int64, 0, 64), x))
}

// Predict widens x to float64, encodes and classifies it.
func (e *FLInt64Engine) Predict(x []float32) int32 {
	wide := make([]float64, len(x))
	for i, v := range x {
		wide[i] = float64(v)
	}
	return e.Predict64(wide)
}

// Name identifies the engine in benchmark output.
func (e *FLInt64Engine) Name() string { return "flint64" }
