package treeexec

import "flint/internal/rf"

// The dual-group SIMD walk attacks the gather-latency bound that keeps
// the 8-lane kernel (flat_simd.go) behind the scalar fused walk: with a
// single group, the two VPGATHERDQ node fetches and the VPGATHERDD rank
// fetch per level form one serial chain, and the out-of-order core has
// nothing else to issue while they are in flight. This walk keeps TWO
// independent 8-lane groups resident — issue group A's node gathers,
// then do group B's field-extract/compare/select while A's loads are in
// flight, and vice versa — so every gather round-trip overlaps a full
// level of independent ALU work (software pipelining in the style of
// the FPGA deep-forest accelerators that interleave tree walks to hide
// memory latency).
//
// The second half of the fix is lane compaction. A vector group walks
// to its deepest lane; with 8 lanes that is the expected maximum of 8
// chain lengths, and the tail levels run nearly empty. Instead of
// compacting in registers, the walk RETURNS to Go when occupancy drops
// below a threshold (minActive), and the streaming driver retires the
// finished lanes' votes and refills them from its (tree, row) work
// queue — a permute in scheduling space rather than a VPERMD, which
// also removes the group-shape restriction: each lane carries its own
// tree base and its own quantized-row offset, so one vector group can
// walk 16 different (tree, row) pairs at once.
//
// Lane protocol matches the 8-lane walk: cur[i] >= 0 is an active
// cursor relative to base[i], cur[i] < 0 holds ^class (or parks an
// empty lane at -1 = ^0, which the driver distinguishes by rowOf).

// simdWalk16 is the register-file state of the dual-group walk: group A
// is lanes 0..7, group B lanes 8..15. base[i] is lane i's tree arena
// base and qoff[i] its element offset into the 16-lane rank scratch
// (row index * numPruned) — per-lane, because compaction-refill means
// lanes of one group walk different trees and different rows. The
// layout is load-bearing for the assembly form: three contiguous
// 64-byte arrays, one YMM register pair each.
type simdWalk16 struct {
	cur  [16]int32
	base [16]int32
	qoff [16]int32
}

// fusedWalk16Go is the portable dual-group walk, and the semantic
// contract the assembly form must match exactly: at the top of every
// level, count active lanes and return when the count drops below
// minActive; otherwise step every active lane once. Stepping all
// active lanes exactly once per level (rather than looping a lane to
// its leaf) is what makes the asm and Go forms agree on *state* at
// return, not just on final classes — the driver resumes either form
// mid-walk after a refill.
func fusedWalk16Go(nodes []uint64, q []uint16, st *simdWalk16, minActive int32) {
	for {
		active := int32(0)
		for i := range st.cur {
			if st.cur[i] >= 0 {
				active++
			}
		}
		if active < minActive {
			return
		}
		for i := range st.cur {
			if st.cur[i] >= 0 {
				w := nodes[st.base[i]+st.cur[i]]
				st.cur[i] = int32(fusedStep(w, q[st.qoff[i]:]))
			}
		}
	}
}

// predictBlockCompactSIMD16 is the width-16 SIMD block loop: chunks of
// up to 16 rows quantize into the 16 rank lanes of s.q, then a single
// work queue of (tree, row) pairs streams through the dual-group walk.
// refill is the occupancy threshold: the walk returns when fewer than
// refill lanes remain active, and finished lanes vote and refill from
// the queue, so the group never walks to its deepest lane while work
// is pending. refill <= 0 selects the kernel default; refill == 1
// disables compaction (a group drains fully before the driver looks at
// it again) — both are calibrated candidates in the mode ladder.
func (e *FlatForestEngine) predictBlockCompactSIMD16(rows [][]float32, out []int32, s *flatScratch, refill int32) {
	if refill <= 0 {
		refill = defaultSIMDRefill
	}
	if refill > 16 {
		refill = 16
	}
	nq := int32(e.numPruned)
	nc := e.numClasses
	nodes := e.nodes64
	roots := e.roots
	for b := 0; b < len(rows); {
		k := len(rows) - b
		if k > 16 {
			k = 16
		}
		chunk := rows[b : b+k]
		h := k
		if h > 8 {
			h = 8
		}
		e.quantizeBlockSIMD(chunk[:h], s.q)
		if k > 8 {
			e.quantizeBlockSIMD(chunk[8:], s.q[8*int(nq):])
		}
		var stack [16][maxStackClasses]int32
		lanes := voteLanes16(&stack, s.votes, nc, k)

		// Work queue: (tree ti, row ri), tree-major so one tree's nodes
		// stay cache-resident across its k rows. Leaf-only trees vote
		// immediately and never occupy a lane.
		var st simdWalk16
		var rowOf [16]int32
		for i := range rowOf {
			// Every lane starts empty (not "walking row 0"): the first
			// pass of the fill loop below assigns real work.
			rowOf[i] = -1
			st.cur[i] = -1
		}
		ti, ri := 0, 0
		for {
			// Retire finished lanes, then refill every free lane from
			// the queue (or park it at -1 with rowOf -1).
			for i := 0; i < 16; i++ {
				if rowOf[i] >= 0 && st.cur[i] < 0 {
					lanes[rowOf[i]][^st.cur[i]]++
					rowOf[i] = -1
				}
				if rowOf[i] < 0 {
					for ti < len(roots) && roots[ti] < 0 {
						c := ^roots[ti]
						for j := 0; j < k; j++ {
							lanes[j][c]++
						}
						ti++
					}
					if ti < len(roots) {
						st.cur[i] = 0
						st.base[i] = roots[ti]
						st.qoff[i] = int32(ri) * nq
						rowOf[i] = int32(ri)
						ri++
						if ri == k {
							ri = 0
							ti++
						}
					} else {
						st.cur[i] = -1
						rowOf[i] = -1
					}
				}
			}
			na := int32(0)
			for i := 0; i < 16; i++ {
				if st.cur[i] >= 0 {
					na++
				}
			}
			if na == 0 {
				break
			}
			// Once the queue is dry (or the fill came up short on a
			// small forest) no refill can raise occupancy, so drain
			// fully — otherwise the walk would return immediately with
			// active < minActive and the driver would spin.
			ma := refill
			if ti >= len(roots) || na < ma {
				ma = 1
			}
			fusedWalk16(nodes, s.q, &st, ma)
		}
		for i := 0; i < k; i++ {
			out[b+i] = rf.Argmax(lanes[i])
		}
		b += k
	}
}

// predictBlockCompactSIMDQuant is the hybrid quantizer-only kernel:
// the vector 8-lane segment rank (quantizeBlockSIMD) replaces the
// scalar branchless quantizer — profitable because one feature's cut
// segment is shared across the whole group, the lockstep halving has
// no gathers on its critical path, and quantization cost scales with
// features rather than forest depth — while the tree walk itself stays
// the scalar fused cascade, which keeps winning wherever the full-walk
// SIMD kernel is gather-latency-bound.
func (e *FlatForestEngine) predictBlockCompactSIMDQuant(rows [][]float32, out []int32, s *flatScratch, width int) {
	e.predictBlockCompactFusedQ(rows, out, s, width, true)
}
