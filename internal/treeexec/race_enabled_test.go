//go:build race

package treeexec

// raceEnabled lets wall-clock-sensitive tests skip under the race
// detector, whose 5-20x slowdown makes real-time budget bounds
// meaningless.
const raceEnabled = true
