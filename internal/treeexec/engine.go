// Package treeexec provides interpreted random forest execution engines
// ("native trees" in the terminology of Asadi et al., which the paper's
// Section IV-A adopts): each tree is flattened into a contiguous node
// array and walked by a tight loop.
//
// All engines share the same traversal structure and differ only in the
// comparison kernel, which is exactly the variable the paper isolates:
//
//   - Float32Engine — hardware float comparison (the naive baseline).
//   - FLIntEngine — the FLInt comparison with the split sign resolved at
//     engine construction time (the paper's offline resolution,
//     Section IV-B), one integer compare per node.
//   - FLIntXorEngine — the general Theorem 1 operator at every node,
//     without offline sign knowledge (ablation A1).
//   - TotalOrderEngine — branchless per-comparison total-order mapping
//     (ablation A2).
//   - PrecodedEngine — the key-space precoding extension: the feature
//     vector is mapped to total-order key space once per inference and
//     every node costs one unsigned compare (ablation A2).
//   - Float64Engine / FLInt64Engine — double precision variants
//     (ablation A4).
//
// # Forest arena layout
//
// The per-tree engines above keep one heap slice per tree. The
// FlatForestEngine compiles the whole forest into a single contiguous
// node arena instead: all inner nodes of all trees live in one backing
// array of the same 16-byte nodes, and trees are addressed by per-tree
// root offsets. Leaves are not materialized — a child index c < 0
// encodes the leaf class as ^c (one's complement), so the traversal
// loop has no per-node leaf test and degenerates to load → compare →
// select until the index goes negative:
//
//	i := root
//	for i >= 0 { n := &arena[i]; i = choose(n.left, n.right) }
//	class := ^i
//
// Within each tree the arena preserves the source node order, so a
// cags.ReorderForest-grouped forest keeps its hot-path-preorder cache
// locality. Batch work should go through the row-blocked kernel
// (FlatForestEngine.PredictBatch or a persistent Batcher): blocks of B
// rows run back-to-back over the arena with per-worker scratch, keeping
// the forest's leaf-free hot set cache-resident across the block, and
// large arenas are walked 2, 4 or 8 rows at a time with register-
// resident cursors so the out-of-order core overlaps the independent
// node fetches. The crossover arena sizes are runtime-calibrated gates
// (Calibrate / CalibrateInterleave), not constants.
//
// # Compact SoA arena
//
// The FlatCompact variant re-encodes the same forest at 8 bytes per
// node: parallel uint16 key / uint16 feature / packed int32 child
// slices, with split values reduced exactly to per-feature total-order
// ranks and each row quantized once by binary search before the walk
// (flat_compact.go). Predictions are bit-identical to FlatFLInt while
// the arena footprint halves, so roughly twice the forest fits in the
// same cache level; forests exceeding the narrow encoding fall back to
// the FLInt arena (probe with Compactable).
//
// Engines are immutable after construction and safe for concurrent use;
// the Predict entry points allocate nothing on the hot path except when
// the per-call feature encoding requires a scratch buffer, which callers
// can provide via the *Buffered variants.
package treeexec

import (
	"fmt"

	"flint/internal/core"
	"flint/internal/ieee754"
	"flint/internal/rf"
)

// node is the flattened tree node shared by the 32-bit engines. Exactly
// 16 bytes, four per cache line with the default 64-byte lines the CAGS
// configuration assumes. For leaves (feature == rf.LeafFeature) the left
// field carries the class.
type node struct {
	feature int32
	key     int32 // float bits, FLInt key, or total-order key
	left    int32
	right   int32
}

// tree is a flattened tree: nodes[0] is the root.
type tree struct {
	nodes []node
}

// compile flattens an rf.Tree, encoding the split with enc.
func compile(t *rf.Tree, enc func(split float32) int32) (tree, error) {
	out := tree{nodes: make([]node, len(t.Nodes))}
	for i, n := range t.Nodes {
		if n.IsLeaf() {
			out.nodes[i] = node{feature: rf.LeafFeature, left: n.Class}
			continue
		}
		if !core.ValidFeature32(n.Split) {
			return tree{}, fmt.Errorf("treeexec: node %d has NaN split", i)
		}
		out.nodes[i] = node{
			feature: n.Feature,
			key:     enc(n.Split),
			left:    n.Left,
			right:   n.Right,
		}
	}
	return out, nil
}

// compileForest flattens every tree of a validated forest.
func compileForest(f *rf.Forest, enc func(split float32) int32) ([]tree, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	trees := make([]tree, len(f.Trees))
	for i := range f.Trees {
		t, err := compile(&f.Trees[i], enc)
		if err != nil {
			return nil, fmt.Errorf("treeexec: tree %d: %w", i, err)
		}
		trees[i] = t
	}
	return trees, nil
}

// maxStackClasses and voteSlice alias the shared stack-array vote-count
// fast path (rf.MaxStackVoteClasses / rf.VoteSlice) so the engines and
// the reference forest stay tuned together.
const maxStackClasses = rf.MaxStackVoteClasses

func voteSlice(stack *[maxStackClasses]int32, numClasses int) []int32 {
	return rf.VoteSlice(stack, numClasses)
}

// Float32Engine executes the forest with hardware float comparisons; it
// is the reproduction's "standard if-else tree" cost model in interpreted
// form and the baseline all normalized times refer to.
type Float32Engine struct {
	trees      []tree
	numClasses int
	numFeat    int
}

// NumFeatures returns the input dimensionality the engine was compiled
// for (the batch entries use it to reject malformed rows in the
// caller's goroutine).
func (e *Float32Engine) NumFeatures() int { return e.numFeat }

// NewFloat32 compiles a forest into a Float32Engine.
func NewFloat32(f *rf.Forest) (*Float32Engine, error) {
	trees, err := compileForest(f, func(s float32) int32 { return ieee754.SI32(s) })
	if err != nil {
		return nil, err
	}
	return &Float32Engine{trees: trees, numClasses: f.NumClasses, numFeat: f.NumFeatures}, nil
}

// PredictTree returns the class chosen by tree t for x.
func (e *Float32Engine) PredictTree(t int, x []float32) int32 {
	nodes := e.trees[t].nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.feature < 0 {
			return n.left
		}
		if x[n.feature] <= ieee754.FromSI32(n.key) {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Predict returns the majority-vote class for x.
func (e *Float32Engine) Predict(x []float32) int32 {
	var stack [maxStackClasses]int32
	counts := voteSlice(&stack, e.numClasses)
	for t := range e.trees {
		counts[e.PredictTree(t, x)]++
	}
	return rf.Argmax(counts)
}

// Name identifies the engine in benchmark output.
func (e *Float32Engine) Name() string { return "float32" }

// FLIntEngine executes the forest with the offline-resolved FLInt
// comparison: one signed compare for non-negative splits, one unsigned
// compare for negative splits, selected by the sign of the stored key.
type FLIntEngine struct {
	trees      []tree
	numClasses int
	numFeat    int
}

// NewFLInt compiles a forest into a FLIntEngine.
func NewFLInt(f *rf.Forest) (*FLIntEngine, error) {
	trees, err := compileForest(f, func(s float32) int32 { return core.MustEncodeSplit32(s).Key })
	if err != nil {
		return nil, err
	}
	return &FLIntEngine{trees: trees, numClasses: f.NumClasses, numFeat: f.NumFeatures}, nil
}

// NumFeatures returns the input dimensionality the engine was compiled
// for (Batch uses it to reject malformed rows in the caller's
// goroutine).
func (e *FLIntEngine) NumFeatures() int { return e.numFeat }

// PredictTreeEncoded returns tree t's class for a pre-encoded feature
// vector (core.EncodeFeatures32).
func (e *FLIntEngine) PredictTreeEncoded(t int, xi []int32) int32 {
	nodes := e.trees[t].nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.feature < 0 {
			return n.left
		}
		v := xi[n.feature]
		var le bool
		if n.key >= 0 {
			le = v <= n.key
		} else {
			le = uint32(v) >= uint32(n.key)
		}
		if le {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// PredictEncoded returns the majority-vote class for a pre-encoded
// feature vector.
func (e *FLIntEngine) PredictEncoded(xi []int32) int32 {
	var stack [maxStackClasses]int32
	counts := voteSlice(&stack, e.numClasses)
	for t := range e.trees {
		counts[e.PredictTreeEncoded(t, xi)]++
	}
	return rf.Argmax(counts)
}

// Predict encodes x (one reinterpretation pass, Listing 2's pointer cast)
// and classifies it.
func (e *FLIntEngine) Predict(x []float32) int32 {
	return e.PredictEncoded(core.EncodeFeatures32(make([]int32, 0, 64), x))
}

// PredictBuffered is Predict with a caller-provided encoding buffer,
// avoiding the per-call allocation for feature vectors wider than 64.
func (e *FLIntEngine) PredictBuffered(x []float32, buf []int32) int32 {
	return e.PredictEncoded(core.EncodeFeatures32(buf, x))
}

// Name identifies the engine in benchmark output.
func (e *FLIntEngine) Name() string { return "flint" }

// FLIntXorEngine evaluates every split with the general Theorem 1
// operator, paying the sign logic at runtime (ablation A1).
type FLIntXorEngine struct {
	inner FLIntEngine
}

// NewFLIntXor compiles a forest into a FLIntXorEngine.
func NewFLIntXor(f *rf.Forest) (*FLIntXorEngine, error) {
	e, err := NewFLInt(f)
	if err != nil {
		return nil, err
	}
	return &FLIntXorEngine{inner: *e}, nil
}

// NumFeatures returns the input dimensionality the engine was compiled
// for.
func (e *FLIntXorEngine) NumFeatures() int {
	return e.inner.NumFeatures()
}

// PredictTreeEncoded returns tree t's class for a pre-encoded vector.
func (e *FLIntXorEngine) PredictTreeEncoded(t int, xi []int32) int32 {
	nodes := e.inner.trees[t].nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.feature < 0 {
			return n.left
		}
		if core.GEBits32(n.key, xi[n.feature]) { // split >= x, i.e. x <= split
			i = n.left
		} else {
			i = n.right
		}
	}
}

// PredictEncoded returns the majority-vote class for a pre-encoded vector.
func (e *FLIntXorEngine) PredictEncoded(xi []int32) int32 {
	var stack [maxStackClasses]int32
	counts := voteSlice(&stack, e.inner.numClasses)
	for t := range e.inner.trees {
		counts[e.PredictTreeEncoded(t, xi)]++
	}
	return rf.Argmax(counts)
}

// Predict encodes x and classifies it.
func (e *FLIntXorEngine) Predict(x []float32) int32 {
	return e.PredictEncoded(core.EncodeFeatures32(make([]int32, 0, 64), x))
}

// Name identifies the engine in benchmark output.
func (e *FLIntXorEngine) Name() string { return "flint-xor" }

// TotalOrderEngine maps each loaded feature into total-order key space
// branchlessly at every comparison (ablation A2).
type TotalOrderEngine struct {
	trees      []tree
	numClasses int
	numFeat    int
}

// NumFeatures returns the input dimensionality the engine was compiled
// for.
func (e *TotalOrderEngine) NumFeatures() int { return e.numFeat }

// NewTotalOrder compiles a forest into a TotalOrderEngine.
func NewTotalOrder(f *rf.Forest) (*TotalOrderEngine, error) {
	trees, err := compileForest(f, func(s float32) int32 {
		return int32(core.PrecodeSplit32(s))
	})
	if err != nil {
		return nil, err
	}
	return &TotalOrderEngine{trees: trees, numClasses: f.NumClasses, numFeat: f.NumFeatures}, nil
}

// PredictTreeEncoded returns tree t's class for raw float bit patterns
// (core.EncodeFeatures32 output: plain reinterpretation, not precoded).
func (e *TotalOrderEngine) PredictTreeEncoded(t int, xi []int32) int32 {
	nodes := e.trees[t].nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.feature < 0 {
			return n.left
		}
		if ieee754.TotalOrderKey32(uint32(xi[n.feature])) <= uint32(n.key) {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// PredictEncoded returns the majority-vote class for raw bit patterns.
func (e *TotalOrderEngine) PredictEncoded(xi []int32) int32 {
	var stack [maxStackClasses]int32
	counts := voteSlice(&stack, e.numClasses)
	for t := range e.trees {
		counts[e.PredictTreeEncoded(t, xi)]++
	}
	return rf.Argmax(counts)
}

// Predict encodes x and classifies it.
func (e *TotalOrderEngine) Predict(x []float32) int32 {
	return e.PredictEncoded(core.EncodeFeatures32(make([]int32, 0, 64), x))
}

// Name identifies the engine in benchmark output.
func (e *TotalOrderEngine) Name() string { return "total-order" }

// PrecodedEngine pays one total-order transformation per feature vector
// and then evaluates every node with a single unsigned comparison — the
// amortized extension of DESIGN.md.
type PrecodedEngine struct {
	trees      []tree
	numClasses int
	numFeat    int
}

// NumFeatures returns the input dimensionality the engine was compiled
// for.
func (e *PrecodedEngine) NumFeatures() int { return e.numFeat }

// NewPrecoded compiles a forest into a PrecodedEngine.
func NewPrecoded(f *rf.Forest) (*PrecodedEngine, error) {
	trees, err := compileForest(f, func(s float32) int32 {
		return int32(core.PrecodeSplit32(s))
	})
	if err != nil {
		return nil, err
	}
	return &PrecodedEngine{trees: trees, numClasses: f.NumClasses, numFeat: f.NumFeatures}, nil
}

// PredictTreePrecoded returns tree t's class for a precoded vector
// (core.PrecodeFeatures32).
func (e *PrecodedEngine) PredictTreePrecoded(t int, keys []uint32) int32 {
	nodes := e.trees[t].nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.feature < 0 {
			return n.left
		}
		if keys[n.feature] <= uint32(n.key) {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// PredictPrecoded returns the majority-vote class for a precoded vector.
func (e *PrecodedEngine) PredictPrecoded(keys []uint32) int32 {
	var stack [maxStackClasses]int32
	counts := voteSlice(&stack, e.numClasses)
	for t := range e.trees {
		counts[e.PredictTreePrecoded(t, keys)]++
	}
	return rf.Argmax(counts)
}

// Predict precodes x and classifies it.
func (e *PrecodedEngine) Predict(x []float32) int32 {
	return e.PredictPrecoded(core.PrecodeFeatures32(make([]uint32, 0, 64), x))
}

// PredictBuffered is Predict with a caller-provided precoding buffer.
func (e *PrecodedEngine) PredictBuffered(x []float32, buf []uint32) int32 {
	return e.PredictPrecoded(core.PrecodeFeatures32(buf, x))
}

// Name identifies the engine in benchmark output.
func (e *PrecodedEngine) Name() string { return "precoded" }
