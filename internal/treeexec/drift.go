package treeexec

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"flint/internal/core"
	"flint/internal/ieee754"
)

// Drift-triggered recalibration closes the loop the adaptive serving
// runtime left manual: the (width, kernel) mode a Batcher serves with
// was timed on one traffic distribution, and when traffic moves the
// winner can move with it. The detector compares the distribution the
// engine was last calibrated on against the live reservoir — both
// reduced to per-feature histograms over the engine's own quantized
// rank space, the resolution at which a distribution shift can change
// walk shape at all — and when the population-stability distance
// crosses a threshold it re-times the mode on the drifted sample and
// installs the winner through the existing atomic (width, kernel)
// store.
//
// The serving path stays at zero allocations per op: Predict only
// compares the reservoir's row counter against the next check cadence
// (one atomic load) and, at most once per cadence window, posts a
// non-blocking wake to a dedicated watcher goroutine. Snapshots,
// histograms and the recalibration itself all run on the watcher.

// DriftConfig parameterizes a Batcher's drift detector. The zero value
// of each field selects its default, so DriftConfig{} is a sensible
// starting configuration. It is JSON-encodable and rides
// CalibrationRecord (SaveCalibration on a Batcher), so a redeployment
// restores the same detection policy alongside gates, mode and sample.
type DriftConfig struct {
	// CheckEvery is the served-row cadence: a distance check becomes due
	// each time this many further rows have been observed. Default 4096.
	CheckEvery uint64 `json:"check_every,omitempty"`
	// Threshold is the population-stability-index value above which a
	// check triggers recalibration. PSI folklore reads < 0.1 as stable
	// and > 0.25 as a significant shift; default 0.25.
	Threshold float64 `json:"threshold,omitempty"`
	// Cooldown is the minimum wall-clock gap between automatic
	// recalibrations; over-threshold checks inside the window are
	// suppressed (and counted — see DriftStats.Suppressed), so noisy
	// traffic cannot thrash calibration. Default 1 minute.
	Cooldown time.Duration `json:"cooldown_ns,omitempty"`
	// MinRows is the evidence floor: checks with fewer reservoir rows
	// than this never trigger (a near-empty reservoir is all variance).
	// Default 64, the stable timing-block size (minTimingRows).
	MinRows int `json:"min_rows,omitempty"`
	// Bins caps the per-feature histogram resolution; features with
	// fewer distinct splits use splits+1 bins. Default 16.
	Bins int `json:"bins,omitempty"`
	// Budget is the wall-clock budget handed to the triggered
	// recalibration (CalibrateInterleaveRows); <= 0 selects its default.
	Budget time.Duration `json:"budget_ns,omitempty"`
}

// DefaultDriftCheckEvery is the default served-row cadence between
// drift checks.
const DefaultDriftCheckEvery = 4096

// DefaultDriftThreshold is the default PSI trigger threshold — the
// conventional "significant population shift" reading of the index.
const DefaultDriftThreshold = 0.25

// DefaultDriftCooldown is the default minimum gap between automatic
// recalibrations.
const DefaultDriftCooldown = time.Minute

// DefaultDriftBins is the default per-feature histogram resolution.
const DefaultDriftBins = 16

// withDefaults resolves zero-value fields to their documented defaults.
func (c DriftConfig) withDefaults() DriftConfig {
	if c.CheckEvery == 0 {
		c.CheckEvery = DefaultDriftCheckEvery
	}
	if c.Threshold == 0 {
		c.Threshold = DefaultDriftThreshold
	}
	if c.Cooldown == 0 {
		c.Cooldown = DefaultDriftCooldown
	}
	if c.MinRows == 0 {
		c.MinRows = minTimingRows
	}
	if c.Bins == 0 {
		c.Bins = DefaultDriftBins
	}
	return c
}

// validate rejects configurations no deployment can mean: negative
// knobs and non-finite thresholds (a NaN threshold would disable
// triggering silently — every comparison is false).
func (c DriftConfig) validate() error {
	if c.Threshold < 0 || math.IsNaN(c.Threshold) || math.IsInf(c.Threshold, 0) {
		return fmt.Errorf("treeexec: drift threshold %v is not a finite non-negative value", c.Threshold)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("treeexec: negative drift cooldown %v", c.Cooldown)
	}
	if c.MinRows < 0 {
		return fmt.Errorf("treeexec: negative drift evidence floor %d", c.MinRows)
	}
	if c.Bins < 0 || c.Bins == 1 {
		return fmt.Errorf("treeexec: drift histogram needs >= 2 bins, got %d", c.Bins)
	}
	if c.Budget < 0 {
		return fmt.Errorf("treeexec: negative drift recalibration budget %v", c.Budget)
	}
	return nil
}

// DriftStats is a snapshot of a Batcher's drift detector, read with
// Batcher.DriftStats. Distance is the PSI measured by the most recent
// completed comparison (0 until a baseline and a live sample have both
// existed).
type DriftStats struct {
	Enabled      bool      // a detector is armed on this Batcher
	Threshold    float64   // resolved trigger threshold
	Distance     float64   // PSI at the last completed comparison
	Checks       uint64    // comparisons completed (including baseline adoption)
	Triggers     uint64    // automatic recalibrations fired
	Suppressed   uint64    // over-threshold checks swallowed by the cooldown
	BaselineRows int       // rows behind the current baseline histogram (0: none yet)
	LastCheck    time.Time // wall time of the last check (zero: none yet)
	LastTrigger  time.Time // wall time of the last trigger (zero: none yet)
	// TriggerDistance is the PSI measured by the check that last
	// triggered (zero: no trigger yet). Distance keeps moving after a
	// trigger — the baseline rebases, so the next check scores near 0 —
	// while this field preserves the excursion that fired.
	TriggerDistance float64
	Cooldown        time.Duration // resolved cooldown window
}

// driftQuantizer bins feature values over the engine's own split
// structure: per split-on feature, up to Bins-1 edges drawn evenly from
// the feature's sorted distinct split keys, so two samples land in the
// same bin exactly when no retained decision boundary separates them.
// Features the forest never reads carry no signal for walk shape and
// are not tracked.
type driftQuantizer struct {
	features []int32    // original input columns tracked
	edges    [][]uint32 // per tracked feature: sorted total-order bin edges
	cells    int        // total histogram cells: sum over features of len(edges)+1
}

func newDriftQuantizer(e *FlatForestEngine, bins int) *driftQuantizer {
	q := &driftQuantizer{}
	for f, fv := range e.splitValues() {
		if len(fv) == 0 {
			continue
		}
		n := len(fv)
		if n > bins-1 {
			n = bins - 1
		}
		edges := make([]uint32, n)
		for i := range edges {
			// Evenly spaced order statistics of the split table; the
			// stride keeps them distinct because fv is sorted distinct.
			edges[i] = core.PrecodeSplit32(fv[i*len(fv)/n])
		}
		q.features = append(q.features, int32(f))
		q.edges = append(q.edges, edges)
		q.cells += n + 1
	}
	return q
}

// histogram counts rows into a flattened per-feature bin vector
// (feature blocks concatenated in q.features order). A value's bin is
// the number of edges at or below its total-order key — the same
// "rank against a sorted cut segment" the compact kernels quantize by.
func (q *driftQuantizer) histogram(rows [][]float32) []float64 {
	h := make([]float64, q.cells)
	off := 0
	for fi, f := range q.features {
		edges := q.edges[fi]
		for _, row := range rows {
			key := ieee754.TotalOrderKey32(math.Float32bits(row[f]))
			lo, hi := 0, len(edges)
			for lo < hi {
				mid := lo + (hi-lo)/2
				if edges[mid] >= key {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			h[off+lo]++
		}
		off += len(edges) + 1
	}
	return h
}

// psi computes the population stability index between a baseline and a
// live histogram, feature block by feature block, and returns the mean
// over blocks. Empty cells are Laplace-smoothed (the conventional PSI
// guard: the index is infinite on any cell one side never populates).
// Identical distributions score exactly 0.
func (q *driftQuantizer) psi(base, live []float64) float64 {
	if q.cells == 0 || len(q.features) == 0 {
		return 0
	}
	total := 0.0
	off := 0
	for _, edges := range q.edges {
		k := len(edges) + 1
		var nb, nl float64
		for i := 0; i < k; i++ {
			nb += base[off+i]
			nl += live[off+i]
		}
		if nb > 0 && nl > 0 {
			for i := 0; i < k; i++ {
				p := (base[off+i] + 0.5) / (nb + 0.5*float64(k))
				l := (live[off+i] + 0.5) / (nl + 0.5*float64(k))
				total += (p - l) * math.Log(p/l)
			}
		}
		off += k
	}
	return total / float64(len(q.features))
}

// driftDetector is the armed state attached to a Batcher: the
// quantizer, the baseline histogram, the cadence counter the Predict
// path polls, and the watcher goroutine's channels.
type driftDetector struct {
	cfg   DriftConfig
	quant *driftQuantizer

	// next holds the reservoir seen-count at which the next check is
	// due. Predict compares one atomic load against it; the crossing
	// caller CASes it forward and wakes the watcher, so each cadence
	// window posts at most one check regardless of concurrency.
	next atomic.Uint64

	kick chan struct{} // capacity 1; non-blocking wake from Predict
	stop chan struct{} // closed by Batcher.Close
	done chan struct{} // closed when the watcher exits

	mu           sync.Mutex
	baseline     []float64 // histogram of the calibration-time sample
	baselineRows int
	distance     float64
	triggerDist  float64
	checks       uint64
	triggers     uint64
	suppressed   uint64
	lastCheck    time.Time
	lastTrigger  time.Time
}

// offer is the Predict-path hook: seen is the reservoir's cumulative
// row count. Allocation-free; at most one watcher wake per cadence
// window.
func (d *driftDetector) offer(seen uint64) {
	due := d.next.Load()
	if seen < due || !d.next.CompareAndSwap(due, seen+d.cfg.CheckEvery) {
		return
	}
	select {
	case d.kick <- struct{}{}:
	default: // a wake is already pending; the watcher will get to it
	}
}

// watch services check wakes until the Batcher closes. Close blocks on
// d.done, so this goroutine can never outlive its Batcher — a ServedModel
// drain (registry Swap, Close) inherits watcher termination by routing
// through Batcher.Close.
func (d *driftDetector) watch(b *Batcher) {
	defer close(d.done)
	for {
		select {
		case <-d.stop:
			return
		case <-d.kick:
			// select chooses randomly among ready cases: when a stop
			// races a pending wake, prefer exiting over burning a
			// recalibration pass on a pool that is shutting down.
			select {
			case <-d.stop:
				return
			default:
			}
			d.check(b)
		}
	}
}

// rebase installs rows as the calibration-time baseline. Called with
// the sample each (manual or automatic) recalibration timed, so the
// detector always measures drift against the distribution the current
// mode was chosen on.
func (d *driftDetector) rebase(rows [][]float32) {
	if len(rows) == 0 {
		return
	}
	h := d.quant.histogram(rows)
	d.mu.Lock()
	d.baseline = h
	d.baselineRows = len(rows)
	d.mu.Unlock()
}

// check runs one drift comparison against the current reservoir and
// triggers recalibration when warranted. It runs on the watcher
// goroutine (or synchronously via Batcher.CheckDrift), never on the
// serving path.
func (d *driftDetector) check(b *Batcher) {
	rows := b.sample.snapshot()
	now := time.Now()

	d.mu.Lock()
	d.checks++
	d.lastCheck = now
	if len(rows) < d.cfg.MinRows {
		d.mu.Unlock()
		return
	}
	if d.baseline == nil {
		// No calibration-time sample yet (armed before any traffic or
		// recalibration): adopt this first sufficient sample as the
		// baseline rather than comparing against nothing.
		d.mu.Unlock()
		d.rebase(rows)
		return
	}
	base := d.baseline
	d.mu.Unlock()

	dist := d.quant.psi(base, d.quant.histogram(rows))

	d.mu.Lock()
	d.distance = dist
	if dist <= d.cfg.Threshold {
		d.mu.Unlock()
		return
	}
	if !d.lastTrigger.IsZero() && now.Sub(d.lastTrigger) < d.cfg.Cooldown {
		d.suppressed++
		d.mu.Unlock()
		return
	}
	d.lastTrigger = now
	d.triggerDist = dist
	d.triggers++
	d.mu.Unlock()

	// The install is the existing atomic (width, kernel) mode store, so
	// Batcher workers racing it finish their block at the old mode.
	b.e.CalibrateInterleaveRows(rows, d.cfg.Budget)
	d.rebase(rows)
}

// snapshot reads the detector's counters consistently.
func (d *driftDetector) snapshot() DriftStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DriftStats{
		Enabled:         true,
		Threshold:       d.cfg.Threshold,
		Distance:        d.distance,
		Checks:          d.checks,
		Triggers:        d.triggers,
		Suppressed:      d.suppressed,
		BaselineRows:    d.baselineRows,
		LastCheck:       d.lastCheck,
		LastTrigger:     d.lastTrigger,
		TriggerDistance: d.triggerDist,
		Cooldown:        d.cfg.Cooldown,
	}
}

// EnableDriftDetection arms automatic drift-triggered recalibration on
// this Batcher. baseline supplies the calibration-time sample the live
// reservoir is compared against — pass the rows the engine's current
// mode was calibrated on (e.g. a persisted CalibrationRecord's Rows),
// or nil to adopt the current reservoir contents; when neither holds
// MinRows rows yet, the first sufficiently full check adopts its
// reservoir sample as the baseline instead of triggering.
//
// It requires reservoir sampling (a Batcher built with a non-negative
// capacity): the reservoir is the live distribution the detector
// measures. Arming an already-armed or closed Batcher is an error.
// Arm before or during serving; the serving path's only new cost is
// one atomic cadence compare per Predict call, preserving the
// zero-allocation steady state.
func (b *Batcher) EnableDriftDetection(cfg DriftConfig, baseline [][]float32) error {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	b.closeMu.Lock()
	defer b.closeMu.Unlock()
	if b.closed {
		return fmt.Errorf("treeexec: EnableDriftDetection on closed Batcher")
	}
	if b.sample == nil {
		return fmt.Errorf("treeexec: drift detection needs reservoir sampling, which this Batcher disabled at construction")
	}
	if b.drift.Load() != nil {
		return fmt.Errorf("treeexec: drift detection already enabled on this Batcher")
	}
	d := &driftDetector{
		cfg:   cfg,
		quant: newDriftQuantizer(b.e, cfg.Bins),
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	d.next.Store(b.sample.seen.Load() + cfg.CheckEvery)
	if baseline == nil {
		baseline = b.sample.snapshot()
	}
	good := baseline[:0:0]
	for _, row := range baseline {
		if len(row) == b.e.numFeatures {
			good = append(good, row)
		}
	}
	if len(good) >= cfg.MinRows {
		d.rebase(good)
	}
	b.drift.Store(d)
	go d.watch(b)
	return nil
}

// DriftStats reports the drift detector's current state; the zero
// DriftStats (Enabled false) when detection is not armed.
func (b *Batcher) DriftStats() DriftStats {
	d := b.drift.Load()
	if d == nil {
		return DriftStats{}
	}
	return d.snapshot()
}

// CheckDrift runs one drift comparison synchronously — the same check
// the served-row cadence schedules — and returns the resulting stats.
// Useful at natural control points (end of a traffic epoch, an admin
// endpoint) and in tests; a no-op returning zero stats when detection
// is not armed.
func (b *Batcher) CheckDrift() DriftStats {
	d := b.drift.Load()
	if d == nil {
		return DriftStats{}
	}
	d.check(b)
	return d.snapshot()
}
