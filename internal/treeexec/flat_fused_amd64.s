//go:build amd64 && !noasm

#include "textflag.h"

// Lane indices 0..7, multiplied by nq at entry to form each lane's
// offset into the contiguous quantized-rank scratch.
DATA laneidx<>+0(SB)/4, $0
DATA laneidx<>+4(SB)/4, $1
DATA laneidx<>+8(SB)/4, $2
DATA laneidx<>+12(SB)/4, $3
DATA laneidx<>+16(SB)/4, $4
DATA laneidx<>+20(SB)/4, $5
DATA laneidx<>+24(SB)/4, $6
DATA laneidx<>+28(SB)/4, $7
GLOBL laneidx<>(SB), RODATA|NOPTR, $32

// func fusedWalk8AVX2(nodes []uint64, base int32, q []uint16, nq int32, cur *[8]int32)
//
// Eight fused-walk cursors stepped per vector iteration until every
// lane holds a leaf (^class, negative). Per step, for the active lanes:
//
//	w    = nodes[base+cur]                  (VPGATHERDQ ×2)
//	key  = w & 0xffff; feat = (w>>16)&0xffff
//	qv   = q[lane*nq + feat]                (VPGATHERDD, scale 2)
//	b    = (key - qv) >> 31
//	cur  = int16(kids >> (b<<4))            (VPSRLVD + sign-extend)
//
// Inactive lanes are masked out of every gather (VPGATHER* suppresses
// masked element loads entirely, so a finished lane's ^class cursor is
// never used as an address) and excluded from the cursor blend. The
// rank gather loads 32 bits per 16-bit element; the caller pads the
// scratch so the last element's overread stays in bounds.
//
// Register plan — persistent: Y0 cur, Y1 lane*nq offsets, Y2 base,
// Y13 all-ones, Y14 0xffff. Scratch: Y3..Y12.
TEXT ·fusedWalk8AVX2(SB), NOSPLIT, $0-72
	MOVQ nodes_base+0(FP), DI
	MOVQ q_base+32(FP), SI
	MOVQ cur+64(FP), R8

	MOVL         nq+56(FP), AX
	MOVL         AX, X1
	VPBROADCASTD X1, Y1
	VMOVDQU      laneidx<>(SB), Y2
	VPMULLD      Y2, Y1, Y1            // Y1 = {0..7} * nq
	MOVL         base+24(FP), AX
	MOVL         AX, X2
	VPBROADCASTD X2, Y2

	VPCMPEQD Y13, Y13, Y13             // all ones (-1 dwords)
	VPSRLD   $16, Y13, Y14             // 0x0000ffff

	VMOVDQU (R8), Y0                   // cursors

walkloop:
	VPCMPGTD  Y13, Y0, Y3              // active: cur > -1
	VPMOVMSKB Y3, AX
	TESTL     AX, AX
	JZ        walkdone

	VPADDD Y2, Y0, Y4                  // node index = base + cur

	// Two 4-qword gathers of the fused node words. Masks are the
	// active-lane dwords sign-extended to qwords; gathers clobber
	// their mask, so each gets its own copy.
	VPMOVSXDQ    X3, Y5
	VEXTRACTI128 $1, Y3, X6
	VPMOVSXDQ    X6, Y6
	VPXOR        Y7, Y7, Y7
	VPXOR        Y8, Y8, Y8
	VPGATHERDQ   Y5, (DI)(X4*8), Y7    // words, lanes 0..3
	VEXTRACTI128 $1, Y4, X9
	VPGATHERDQ   Y6, (DI)(X9*8), Y8    // words, lanes 4..7

	// Compress the qword pairs: low dwords -> key|feat, high -> kids.
	// VSHUFPS interleaves as 0 1 4 5 / 2 3 6 7; VPERMQ restores lane
	// order.
	VSHUFPS $0x88, Y8, Y7, Y9
	VPERMQ  $0xD8, Y9, Y9              // Y9 = key | feat<<16 per lane
	VSHUFPS $0xDD, Y8, Y7, Y10
	VPERMQ  $0xD8, Y10, Y10            // Y10 = kids32 per lane

	VPAND  Y14, Y9, Y11                // key
	VPSRLD $16, Y9, Y12
	VPADDD Y1, Y12, Y12                // rank index = lane*nq + feat

	// Gather the 8 quantized ranks (16-bit elements, scale 2).
	VMOVDQA    Y3, Y5
	VPXOR      Y6, Y6, Y6
	VPGATHERDD Y5, (SI)(Y12*2), Y6
	VPAND      Y14, Y6, Y6             // qv

	VPSUBD Y6, Y11, Y11                // key - qv
	VPSRLD $31, Y11, Y11               // b: 1 iff qv > key
	VPSLLD $4, Y11, Y11                // shift = b * 16

	VPSRLVD Y11, Y10, Y4               // kids >> shift
	VPSLLD  $16, Y4, Y4
	VPSRAD  $16, Y4, Y4                // sign-extend the int16 child

	VPBLENDVB Y3, Y4, Y0, Y0           // step active lanes only
	JMP       walkloop

walkdone:
	VMOVDQU Y0, (R8)
	VZEROUPPER
	RET

// func fusedRank8AVX2(cuts []uint32, lo, n int32, keys *[8]uint32, ranks *[8]uint16)
//
// branchlessRank for 8 keys against one cut segment cuts[lo:lo+n],
// n >= 1. All lanes halve in lockstep — the segment length is shared,
// so half/n live in scalar registers while base diverges per lane:
//
//	m    = cuts[base+half-1] < key          (unsigned)
//	base += half & m; n -= half             (until n == 1)
//	rank = base - lo + (cuts[base] < key)
//
// Unsigned compares are VPCMPGTD after flipping sign bits on both
// sides. Results are < 65536 by construction, packed to 8 words.
TEXT ·fusedRank8AVX2(SB), NOSPLIT, $0-48
	MOVQ cuts_base+0(FP), DI
	MOVQ keys+32(FP), SI
	MOVQ ranks+40(FP), R8
	MOVL n+28(FP), CX

	VPCMPEQD Y13, Y13, Y13             // all ones
	VPSLLD   $31, Y13, Y15             // 0x80000000 sign-flip bias

	VMOVDQU      (SI), Y0
	VPXOR        Y15, Y0, Y0           // biased keys
	MOVL         lo+24(FP), AX
	MOVL         AX, X1
	VPBROADCASTD X1, Y1                // per-lane base, all start at lo

rankloop:
	CMPL CX, $1
	JLE  rankfinal

	MOVL CX, DX
	SHRL $1, DX                        // half = n >> 1
	MOVL DX, X2
	VPBROADCASTD X2, Y2

	VPADDD Y2, Y1, Y3
	VPADDD Y13, Y3, Y3                 // probe = base + half - 1

	VMOVDQA    Y13, Y5                 // every lane probes
	VPXOR      Y6, Y6, Y6
	VPGATHERDD Y5, (DI)(Y3*4), Y6
	VPXOR      Y15, Y6, Y6             // biased cuts[probe]

	VPCMPGTD Y6, Y0, Y7                // m: key > cuts[probe]
	VPAND    Y2, Y7, Y7                // half & m
	VPADDD   Y7, Y1, Y1                // base += half where advancing
	SUBL     DX, CX                    // n -= half
	JMP      rankloop

rankfinal:
	VMOVDQA    Y13, Y5
	VPXOR      Y6, Y6, Y6
	VPGATHERDD Y5, (DI)(Y1*4), Y6
	VPXOR      Y15, Y6, Y6
	VPCMPGTD   Y6, Y0, Y7              // -1 where cuts[base] < key

	MOVL         lo+24(FP), AX
	MOVL         AX, X8
	VPBROADCASTD X8, Y8
	VPSUBD       Y8, Y1, Y1            // base - lo
	VPSUBD       Y7, Y1, Y1            // + (cuts[base] < key)

	VPXOR     Y2, Y2, Y2
	VPACKUSDW Y2, Y1, Y1               // dwords -> words (per 128 lane)
	VPERMQ    $0x08, Y1, Y1            // gather the two word quads
	VMOVDQU   X1, (R8)
	VZEROUPPER
	RET

// func fusedWalk16AVX2(nodes []uint64, q []uint16, st *simdWalk16, minActive int32)
//
// Software-pipelined dual-group fused walk: two independent 8-lane
// groups A (st lanes 0..7) and B (lanes 8..15) step together, with the
// instruction stream interleaved so group B's field extraction, rank
// gather and child select issue while group A's node gathers are in
// flight, and vice versa — four independent VPGATHERDQ per level
// instead of two, doubling the work the out-of-order core can overlap
// with each gather round-trip.
//
// Unlike fusedWalk8AVX2, base and the rank offset are per-lane vectors
// (st.base, st.qoff): the streaming driver refills finished lanes with
// new (tree, row) pairs, so lanes of one group walk different trees.
// Per level, for the active lanes of each group:
//
//	w    = nodes[base+cur]                  (VPGATHERDQ ×2)
//	key  = w & 0xffff; feat = (w>>16)&0xffff
//	qv   = q[qoff + feat]                   (VPGATHERDD, scale 2)
//	b    = (key - qv) >> 31
//	cur  = int16(kids >> (b<<4))            (VPSRLVD + sign-extend)
//
// The walk returns when the total active-lane count across both groups
// drops below minActive (>= 1, clamped by the Go dispatch) so the
// driver can retire votes and refill — lane compaction in scheduling
// space. State at return matches fusedWalk16Go exactly: every level
// steps all active lanes once, so the two forms agree mid-walk.
//
// Register plan — persistent: Y0/Y1 curA/curB, Y2/Y3 baseA/baseB,
// Y4/Y5 qoffA/qoffB, Y13 all-ones, Y14 0xffff. Scratch: Y6..Y12, Y15;
// active masks are recomputed before each use rather than kept live,
// which is what makes the dual state fit the 16-register file.
TEXT ·fusedWalk16AVX2(SB), NOSPLIT, $0-60
	MOVQ nodes_base+0(FP), DI
	MOVQ q_base+24(FP), SI
	MOVQ st+48(FP), R8
	MOVL minActive+56(FP), R9

	VPCMPEQD Y13, Y13, Y13             // all ones (-1 dwords)
	VPSRLD   $16, Y13, Y14             // 0x0000ffff

	VMOVDQU (R8), Y0                   // curA
	VMOVDQU 32(R8), Y1                 // curB
	VMOVDQU 64(R8), Y2                 // baseA
	VMOVDQU 96(R8), Y3                 // baseB
	VMOVDQU 128(R8), Y4                // qoffA
	VMOVDQU 160(R8), Y5                // qoffB

walk16loop:
	// Occupancy check: 4 mask bits per active dword lane, both groups.
	VPCMPGTD  Y13, Y0, Y6              // activeA: cur > -1
	VPCMPGTD  Y13, Y1, Y7              // activeB
	VPMOVMSKB Y6, AX
	VPMOVMSKB Y7, BX
	POPCNTL   AX, AX
	POPCNTL   BX, BX
	ADDL      BX, AX
	SHRL      $2, AX                   // byte count -> lane count
	CMPL      AX, R9
	JL        walk16done

	// Group A node gathers (masks sign-extended per qword half; each
	// gather clobbers its mask, so each gets its own copy).
	VPADDD       Y2, Y0, Y8            // idxA = baseA + curA
	VPMOVSXDQ    X6, Y9
	VPXOR        Y11, Y11, Y11
	VPGATHERDQ   Y9, (DI)(X8*8), Y11   // A words, lanes 0..3
	VEXTRACTI128 $1, Y6, X10
	VPMOVSXDQ    X10, Y10
	VEXTRACTI128 $1, Y8, X9
	VPXOR        Y12, Y12, Y12
	VPGATHERDQ   Y10, (DI)(X9*8), Y12  // A words, lanes 4..7

	// Group B node gathers — independent of A's, issued immediately so
	// all four qword gathers are in flight together.
	VPADDD       Y3, Y1, Y8            // idxB = baseB + curB
	VPMOVSXDQ    X7, Y9
	VPXOR        Y15, Y15, Y15
	VPGATHERDQ   Y9, (DI)(X8*8), Y15   // B words, lanes 0..3
	VEXTRACTI128 $1, Y7, X10
	VPMOVSXDQ    X10, Y10
	VEXTRACTI128 $1, Y8, X9
	VPXOR        Y7, Y7, Y7
	VPGATHERDQ   Y10, (DI)(X9*8), Y7   // B words, lanes 4..7

	// A: compress word pairs, issue the rank gather. B's node gathers
	// are still in flight underneath this block.
	VSHUFPS    $0x88, Y12, Y11, Y8
	VPERMQ     $0xD8, Y8, Y8           // kfA = key | feat<<16
	VSHUFPS    $0xDD, Y12, Y11, Y9
	VPERMQ     $0xD8, Y9, Y9           // kidsA
	VPAND      Y14, Y8, Y10            // keyA
	VPSRLD     $16, Y8, Y8
	VPADDD     Y4, Y8, Y8              // rank index A = qoffA + featA
	VPCMPGTD   Y13, Y0, Y6             // activeA, fresh copy as mask
	VPXOR      Y11, Y11, Y11
	VPGATHERDD Y6, (SI)(Y8*2), Y11     // qvA (32-bit loads, scale 2)

	// B: compress and issue its rank gather while A's is in flight.
	VSHUFPS    $0x88, Y7, Y15, Y8
	VPERMQ     $0xD8, Y8, Y8           // kfB
	VSHUFPS    $0xDD, Y7, Y15, Y12
	VPERMQ     $0xD8, Y12, Y12         // kidsB
	VPAND      Y14, Y8, Y15            // keyB
	VPSRLD     $16, Y8, Y8
	VPADDD     Y5, Y8, Y8              // rank index B = qoffB + featB
	VPCMPGTD   Y13, Y1, Y6             // activeB, fresh copy as mask
	VPXOR      Y7, Y7, Y7
	VPGATHERDD Y6, (SI)(Y8*2), Y7      // qvB

	// A: child select + masked cursor blend.
	VPAND     Y14, Y11, Y11            // qvA
	VPSUBD    Y11, Y10, Y10            // keyA - qvA
	VPSRLD    $31, Y10, Y10            // b: 1 iff qvA > keyA
	VPSLLD    $4, Y10, Y10             // shift = b * 16
	VPSRLVD   Y10, Y9, Y9              // kidsA >> shift
	VPSLLD    $16, Y9, Y9
	VPSRAD    $16, Y9, Y9              // sign-extend the int16 child
	VPCMPGTD  Y13, Y0, Y6
	VPBLENDVB Y6, Y9, Y0, Y0           // step active A lanes only

	// B: child select + masked cursor blend.
	VPAND     Y14, Y7, Y7              // qvB
	VPSUBD    Y7, Y15, Y15             // keyB - qvB
	VPSRLD    $31, Y15, Y15
	VPSLLD    $4, Y15, Y15
	VPSRLVD   Y15, Y12, Y12            // kidsB >> shift
	VPSLLD    $16, Y12, Y12
	VPSRAD    $16, Y12, Y12
	VPCMPGTD  Y13, Y1, Y6
	VPBLENDVB Y6, Y12, Y1, Y1          // step active B lanes only
	JMP       walk16loop

walk16done:
	VMOVDQU Y0, (R8)
	VMOVDQU Y1, 32(R8)
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
