package treeexec

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestSaveLoadCalibrationRoundTrip persists an engine's calibration —
// a gate table with both measured and disabled (MaxInt) thresholds, a
// forced width, and sampled rows — and loads it into a second engine
// compiled from the same forest: gates and width must round-trip
// bit-identically, the rows must survive exactly (float32 JSON encoding
// is shortest-round-trip), and the loaded engine must report the
// persisted source.
func TestSaveLoadCalibrationRoundTrip(t *testing.T) {
	defer SetInterleaveGates(DefaultInterleaveGates())
	f, d := trainedForest(t, "magic", 6, 5)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	gates := InterleaveGates{
		Min2: 123456, Min4: 4 << 20, Min8: math.MaxInt,
		CompactMin2: 1 << 10, CompactMin4: math.MaxInt, CompactMin8: math.MaxInt,
		CompactFusedMin: 2 << 20,
	}
	SetInterleaveGates(gates)
	e.SetInterleave(4)

	rows := d.Features[:7]
	var buf bytes.Buffer
	if err := e.SaveCalibration(&buf, rows); err != nil {
		t.Fatal(err)
	}

	// A different process: defaults installed, fresh engine, same arena.
	SetInterleaveGates(DefaultInterleaveGates())
	e2, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := e2.LoadCalibration(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Gates != gates {
		t.Errorf("gates did not round-trip: %+v != %+v", rec.Gates, gates)
	}
	// Installing the table host-wide is the caller's explicit decision —
	// LoadCalibration must not clobber this process's gates on its own
	// (the record could carry another host's, or never-calibrated
	// default, thresholds).
	if CurrentInterleaveGates() == gates {
		t.Errorf("LoadCalibration installed the gate table implicitly")
	}
	SetInterleaveGates(rec.Gates)
	if CurrentInterleaveGates() != gates {
		t.Errorf("explicit install of the loaded gates failed")
	}
	if rec.Width != 4 || e2.Interleave() != 4 {
		t.Errorf("width = %d (engine %d), want 4", rec.Width, e2.Interleave())
	}
	if e2.CalibrationSource() != "persisted" {
		t.Errorf("calibration source = %q, want \"persisted\"", e2.CalibrationSource())
	}
	if len(rec.Rows) != len(rows) {
		t.Fatalf("%d rows round-tripped, want %d", len(rec.Rows), len(rows))
	}
	for i, r := range rec.Rows {
		for j, v := range r {
			if math.Float32bits(v) != math.Float32bits(rows[i][j]) {
				t.Fatalf("row %d[%d] = %x, want bit-identical %x",
					i, j, math.Float32bits(v), math.Float32bits(rows[i][j]))
			}
		}
	}
}

// TestLoadCalibrationRejects exercises every rejection path: arena
// fingerprint mismatches (different forest, different variant of the
// same forest), unsupported widths, negative gates and malformed JSON —
// none of which may install anything.
func TestLoadCalibrationRejects(t *testing.T) {
	defer SetInterleaveGates(DefaultInterleaveGates())
	f, _ := trainedForest(t, "magic", 6, 5)
	other, _ := trainedForest(t, "wine", 5, 4)

	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	if err := e.SaveCalibration(&rec, nil); err != nil {
		t.Fatal(err)
	}

	load := func(t *testing.T, target *FlatForestEngine, doc string) error {
		t.Helper()
		before := CurrentInterleaveGates()
		width := target.Interleave()
		_, err := target.LoadCalibration(strings.NewReader(doc))
		if err != nil {
			if CurrentInterleaveGates() != before {
				t.Errorf("rejected load still installed gates")
			}
			if target.Interleave() != width {
				t.Errorf("rejected load still changed the width")
			}
		}
		return err
	}

	oe, err := NewFlat(other, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if err := load(t, oe, rec.String()); err == nil {
		t.Error("record for another forest's arena accepted")
	}
	fe, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	if err := load(t, fe, rec.String()); err == nil {
		t.Error("record for another variant of the same forest accepted")
	}

	badWidth := strings.Replace(rec.String(), `"width": `+itoa(e.Interleave()), `"width": 3`, 1)
	if err := load(t, e, badWidth); err == nil {
		t.Error("unsupported width 3 accepted")
	}
	badGates := strings.Replace(rec.String(), `"min2": `, `"min2": -`, 1)
	if err := load(t, e, badGates); err == nil {
		t.Error("negative gate threshold accepted")
	}
	// A record with a missing gates field decodes as the all-zero table,
	// which would silently disable interleaving for every engine built
	// afterwards; it must be rejected like ReadGatesJSON rejects it.
	var dropped struct {
		Fingerprint ArenaFingerprint `json:"fingerprint"`
		Width       int              `json:"width"`
	}
	if err := json.Unmarshal([]byte(rec.String()), &dropped); err != nil {
		t.Fatal(err)
	}
	noGates, err := json.Marshal(dropped)
	if err != nil {
		t.Fatal(err)
	}
	if err := load(t, e, string(noGates)); err == nil {
		t.Error("record without a gate table accepted")
	}
	if err := load(t, e, "{broken"); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func itoa(v int) string {
	switch v {
	case 1:
		return "1"
	case 2:
		return "2"
	case 4:
		return "4"
	}
	return "8"
}

// TestCalibrationKernelRoundTrip covers the kernel half of the
// persisted mode: a fused record round-trips onto a fresh engine as the
// (width, kernel) pair, a record from before the kernel axis existed
// (no kernel field) loads as branchy, an unknown kernel name is
// rejected, and a fused record is rejected by every arena variant that
// has no fused kernel.
func TestCalibrationKernelRoundTrip(t *testing.T) {
	f, _ := trainedForest(t, "magic", 6, 5)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	e.SetInterleave(4)
	e.SetKernel(KernelFused)
	var buf bytes.Buffer
	if err := e.SaveCalibration(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kernel": "fused"`) {
		t.Fatalf("record does not carry the kernel: %s", buf.String())
	}

	e2, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := e2.LoadCalibration(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kernel != "fused" || e2.Kernel() != KernelFused || e2.Interleave() != 4 {
		t.Errorf("loaded mode = (x%d, %v) from record kernel %q, want (x4, fused)",
			e2.Interleave(), e2.Kernel(), rec.Kernel)
	}

	// A pre-kernel record: re-marshal without the field. Legacy
	// deployments only ever ran branchy, so that is what the absent
	// field must mean.
	var stripped struct {
		Fingerprint ArenaFingerprint `json:"fingerprint"`
		Gates       InterleaveGates  `json:"gates"`
		Width       int              `json:"width"`
	}
	if err := json.Unmarshal(buf.Bytes(), &stripped); err != nil {
		t.Fatal(err)
	}
	legacy, err := json.Marshal(stripped)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	e3.SetKernel(KernelFused) // must be overwritten by the load
	rec, err = e3.LoadCalibration(bytes.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kernel != "" || e3.Kernel() != KernelBranchy {
		t.Errorf("legacy record loaded kernel %v (field %q), want branchy", e3.Kernel(), rec.Kernel)
	}

	// A "simd" record: installs as simd where the vector ISA is native,
	// downgrades to branchy everywhere else — and the source says which
	// happened.
	simdRec := strings.Replace(buf.String(), `"kernel": "fused"`, `"kernel": "simd"`, 1)
	if _, err := e2.LoadCalibration(strings.NewReader(simdRec)); err != nil {
		t.Fatal(err)
	}
	if simdKernelAvailable() {
		if e2.Kernel() != KernelSIMD || e2.CalibrationSource() != "persisted" {
			t.Errorf("simd record on a native host loaded (%v, %q), want (simd, persisted)",
				e2.Kernel(), e2.CalibrationSource())
		}
	} else {
		if e2.Kernel() != KernelBranchy || e2.CalibrationSource() != "persisted-degraded" {
			t.Errorf("simd record without the ISA loaded (%v, %q), want (branchy, persisted-degraded)",
				e2.Kernel(), e2.CalibrationSource())
		}
	}

	bad := strings.Replace(buf.String(), `"kernel": "fused"`, `"kernel": "turbo"`, 1)
	before := e2.Kernel()
	if _, err := e2.LoadCalibration(strings.NewReader(bad)); err == nil {
		t.Error("unknown kernel name accepted")
	}
	if e2.Kernel() != before {
		t.Error("rejected load still changed the kernel")
	}

	// A fused record against a non-compact arena: the fingerprint check
	// already rejects cross-variant loads, so forge a matching flat
	// fingerprint to reach the kernel check.
	fe, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	var flatRec bytes.Buffer
	if err := fe.SaveCalibration(&flatRec, nil); err != nil {
		t.Fatal(err)
	}
	forged := strings.Replace(flatRec.String(), `"kernel": "branchy"`, `"kernel": "fused"`, 1)
	if _, err := fe.LoadCalibration(strings.NewReader(forged)); err == nil {
		t.Error("fused kernel accepted for a non-compact arena")
	}
}

// TestCalibrationSIMD16RoundTrip covers the width-16/refill axes of the
// persisted mode: a dual-group simd record round-trips the full (width,
// kernel, refill) tuple, downgrades to a scalar mode on hosts without
// the vector ISA, and malformed combinations — width 16 under a scalar
// kernel, a refill outside 0..16, a refill on a non-simd record — are
// rejected without installing anything.
func TestCalibrationSIMD16RoundTrip(t *testing.T) {
	f, _ := trainedForest(t, "magic", 6, 5)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	e.mode.Store(packModeRefill(16, KernelSIMD, 3))
	var buf bytes.Buffer
	if err := e.SaveCalibration(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"width": 16`) ||
		!strings.Contains(buf.String(), `"kernel": "simd"`) ||
		!strings.Contains(buf.String(), `"simd_refill": 3`) {
		t.Fatalf("record does not carry the full mode tuple: %s", buf.String())
	}

	e2, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := e2.LoadCalibration(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Width != 16 || rec.Kernel != "simd" || rec.SIMDRefill != 3 {
		t.Errorf("decoded record = (%d, %q, %d), want (16, simd, 3)", rec.Width, rec.Kernel, rec.SIMDRefill)
	}
	if simdKernelAvailable() {
		m := e2.mode.Load()
		if modeWidth(m) != 16 || modeKernel(m) != KernelSIMD || modeRefill(m) != 3 {
			t.Errorf("installed mode = (%d, %v, %d), want (16, simd, 3)",
				modeWidth(m), modeKernel(m), modeRefill(m))
		}
	} else {
		// No native ISA: the whole vector mode degrades to a scalar one —
		// branchy at width 8, refill cleared.
		m := e2.mode.Load()
		if modeWidth(m) != 8 || modeKernel(m) != KernelBranchy || modeRefill(m) != 0 {
			t.Errorf("degraded mode = (%d, %v, %d), want (8, branchy, 0)",
				modeWidth(m), modeKernel(m), modeRefill(m))
		}
		if e2.CalibrationSource() != "persisted-degraded" {
			t.Errorf("source = %q, want persisted-degraded", e2.CalibrationSource())
		}
	}

	// A simd-quant record degrades the same way (and at its scalar width).
	e.mode.Store(packMode(8, KernelSIMDQuant))
	var qbuf bytes.Buffer
	if err := e.SaveCalibration(&qbuf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qbuf.String(), `"kernel": "simd-quant"`) {
		t.Fatalf("record does not carry the simd-quant kernel: %s", qbuf.String())
	}
	if _, err := e2.LoadCalibration(bytes.NewReader(qbuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if simdKernelAvailable() {
		if e2.Kernel() != KernelSIMDQuant || e2.Interleave() != 8 {
			t.Errorf("simd-quant record loaded (%v, x%d), want (simd-quant, x8)", e2.Kernel(), e2.Interleave())
		}
	} else if e2.Kernel() != KernelBranchy {
		t.Errorf("simd-quant record without the ISA loaded %v, want branchy", e2.Kernel())
	}

	reject := func(t *testing.T, doc, what string) {
		t.Helper()
		fresh, err := NewFlat(f, FlatCompact)
		if err != nil {
			t.Fatal(err)
		}
		before := fresh.mode.Load()
		if _, err := fresh.LoadCalibration(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted", what)
		}
		if fresh.mode.Load() != before {
			t.Errorf("rejected %s still changed the mode", what)
		}
	}
	reject(t, strings.Replace(buf.String(), `"kernel": "simd"`, `"kernel": "fused"`, 1),
		"width-16 record under a scalar kernel")
	reject(t, strings.Replace(buf.String(), `"simd_refill": 3`, `"simd_refill": 17`, 1),
		"refill above 16")
	reject(t, strings.Replace(buf.String(), `"simd_refill": 3`, `"simd_refill": -1`, 1),
		"negative refill")
	fusedRefill := strings.Replace(buf.String(), `"width": 16`, `"width": 8`, 1)
	reject(t, strings.Replace(fusedRefill, `"kernel": "simd"`, `"kernel": "fused"`, 1),
		"refill on a non-simd record")
}

// TestSaveCalibrationFiltersRows pins the save-side row filter: rows of
// the wrong width and rows carrying NaN/Inf (unrepresentable in JSON)
// are dropped instead of failing the whole save.
func TestSaveCalibrationFiltersRows(t *testing.T) {
	f, d := trainedForest(t, "wine", 4, 3)
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	nan := append([]float32(nil), d.Features[0]...)
	nan[0] = float32(math.NaN())
	inf := append([]float32(nil), d.Features[1]...)
	inf[1] = float32(math.Inf(1))
	rows := [][]float32{d.Features[2], {1, 2}, nan, inf, d.Features[3]}

	var buf bytes.Buffer
	if err := e.SaveCalibration(&buf, rows); err != nil {
		t.Fatal(err)
	}
	rec, err := e.LoadCalibration(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Rows) != 2 {
		t.Fatalf("%d rows persisted, want 2 (malformed and non-finite dropped)", len(rec.Rows))
	}
}

// TestGatesJSONRoundTrip covers the host-wide gates-only persistence
// the CLI uses, including MaxInt (disabled-width) thresholds and the
// rejection of negative tables.
func TestGatesJSONRoundTrip(t *testing.T) {
	g := InterleaveGates{
		Min2: 1 << 20, Min4: math.MaxInt, Min8: math.MaxInt,
		CompactMin2: 256 << 10, CompactMin4: 4 << 20, CompactMin8: 16 << 20,
		CompactFusedMin: math.MaxInt, // measured, fused never won
	}
	var buf bytes.Buffer
	if err := WriteGatesJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGatesJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != g {
		t.Errorf("gates round trip = %+v, want %+v", back, g)
	}
	if _, err := ReadGatesJSON(strings.NewReader(`{"min2": -5}`)); err == nil {
		t.Error("negative gate table accepted")
	}
	if _, err := ReadGatesJSON(strings.NewReader("nope")); err == nil {
		t.Error("malformed gate table accepted")
	}
	// Wrong-file safety: another tool's JSON (unknown fields) or an
	// empty object (all-zero table, which would silently disable
	// interleaving everywhere) must be rejected, not installed.
	if _, err := ReadGatesJSON(strings.NewReader(`{"config": {"rows": 600}}`)); err == nil {
		t.Error("foreign JSON document accepted as a gate table")
	}
	if _, err := ReadGatesJSON(strings.NewReader(`{}`)); err == nil {
		t.Error("all-zero gate table accepted")
	}
}
