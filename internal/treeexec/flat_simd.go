package treeexec

import (
	"math"

	"flint/internal/ieee754"
	"flint/internal/rf"
)

// The SIMD kernel is the vector form of the fused walk: where the fused
// kernel executes 8 scalar branch-free steps per group per level, this
// kernel executes one 8-lane vector step — gather the 8 cursors' fused
// node words, extract key/feat/kids with vector shifts and masks,
// gather the 8 quantized ranks, and run the (key - q) >> 31 child
// select entirely in vector registers. The quantizer gets the same
// treatment: one feature's cut segment is binary-searched against 8
// rows' keys at a time, all lanes halving in lockstep because the
// segment bounds — and therefore the iteration count — are shared.
//
// The vector step itself lives behind two small primitives with
// per-architecture implementations:
//
//	fusedWalk8(nodes, base, q, nq, cur)  — step 8 cursors to their leaves
//	fusedRank8(cuts, lo, n, keys, ranks) — rank 8 keys in one cut segment
//
// On amd64 hosts with AVX2 (flat_fused_amd64.go/.s) these are Go
// assembly; everywhere else (flat_fused_noasm.go) they fall back to the
// portable lane-parallel forms below, which exist so the kernel stays
// runnable, testable and bit-identical on every platform even though
// calibration only ever volunteers it where the native ISA is present.
//
// Lane protocol: cur[i] >= 0 is an active cursor (node index relative
// to base), cur[i] < 0 is a finished lane holding ^class. Groups
// narrower than 8 start their unused lanes at -1, so the same walk
// serves every interleave width with no scalar drain path — an
// inactive lane's gathers are masked off and its cursor rides along
// unchanged.

// DetectedISA reports the vector ISA the SIMD kernel executes natively
// on this host: "avx2" on amd64 hosts with AVX2 (and without the noasm
// build tag), "" where only the portable fallback is available.
func DetectedISA() string { return detectedISA() }

// fusedWalk8Go is the portable 8-lane fused walk: every active lane is
// stepped once per pass until all lanes hold leaf classes. Lane i's
// quantized row is q[i*nq : (i+1)*nq] — the contiguous scratch layout
// the vector gathers index directly.
func fusedWalk8Go(nodes []uint64, base int32, q []uint16, nq int32, cur *[8]int32) {
	for {
		active := false
		for i := range cur {
			if cur[i] >= 0 {
				active = true
				lane := q[int32(i)*nq : (int32(i)+1)*nq]
				cur[i] = int32(fusedStep(nodes[base+cur[i]], lane))
			}
		}
		if !active {
			return
		}
	}
}

// fusedRank8Go is the portable 8-lane segment rank: each key is ranked
// against cuts[lo:lo+n] by the scalar branchless search. The vector
// form runs the identical halving sequence in lockstep, so per-lane
// results agree exactly.
func fusedRank8Go(cuts []uint32, lo, n int32, keys *[8]uint32, ranks *[8]uint16) {
	for i := range keys {
		ranks[i] = branchlessRank(cuts, lo, lo+n, keys[i])
	}
}

// quantizeBlockSIMD is quantizeBlockFused with the 8-lane segment rank:
// feature-major over the pruned features, ranking the whole group's
// keys against each feature's cut segment in one vector search. Lanes
// beyond the group are padded with lane 0's key — their searches run
// (the vector has no partial width) but their ranks are not written.
func (e *FlatForestEngine) quantizeBlockSIMD(rows [][]float32, dst []uint16) {
	cuts, cutLo := e.cuts, e.cutLo
	nq := e.numPruned
	n := len(rows)
	var keys [8]uint32
	var ranks [8]uint16
	for p, f := range e.prunedOrig {
		lo, hi := cutLo[p], cutLo[p+1]
		if hi == lo {
			// Empty segment: rank 0 for every row, and nothing for the
			// vector search to probe.
			for i := 0; i < n; i++ {
				dst[i*nq+p] = 0
			}
			continue
		}
		for i := 0; i < n; i++ {
			keys[i] = ieee754.TotalOrderKey32(math.Float32bits(rows[i][f]))
		}
		for i := n; i < 8; i++ {
			keys[i] = keys[0]
		}
		fusedRank8(cuts, lo, hi-lo, &keys, &ranks)
		for i := 0; i < n; i++ {
			dst[i*nq+p] = ranks[i]
		}
	}
}

// classifySIMDGroup walks one tree for a group of k quantized rows
// (lanes of q, k <= 8) and writes the k leaf classes into cls. Lanes
// k..7 start finished so the vector walk never touches their scratch.
func (e *FlatForestEngine) classifySIMDGroup(root int32, k int, q []uint16, cls *[8]int32) {
	if root < 0 {
		for i := 0; i < k; i++ {
			cls[i] = ^root
		}
		return
	}
	var cur [8]int32
	for i := k; i < 8; i++ {
		cur[i] = -1
	}
	fusedWalk8(e.nodes64, root, q, int32(e.numPruned), &cur)
	for i := 0; i < k; i++ {
		cls[i] = ^cur[i]
	}
}

// predictBlockCompactSIMD is the SIMD-kernel block loop. Unlike the
// scalar kernels' 8/4/2/1 cascade, one group shape serves every width:
// a group of k = min(width, remaining) rows quantizes and walks with
// lanes k..7 inactive, so remainders need no separate narrow kernels.
func (e *FlatForestEngine) predictBlockCompactSIMD(rows [][]float32, out []int32, s *flatScratch, width int) {
	nc := e.numClasses
	for b := 0; b < len(rows); {
		k := len(rows) - b
		if k > width {
			k = width
		}
		e.quantizeBlockSIMD(rows[b:b+k], s.q)
		var stack [8][maxStackClasses]int32
		lanes := voteLanes(&stack, s.votes, nc, k)
		var cls [8]int32
		for _, root := range e.roots {
			e.classifySIMDGroup(root, k, s.q, &cls)
			for i := 0; i < k; i++ {
				lanes[i][cls[i]]++
			}
		}
		for i := 0; i < k; i++ {
			out[b+i] = rf.Argmax(lanes[i])
		}
		b += k
	}
}
