package treeexec

import (
	"math"
	"math/rand"
	"testing"

	"flint/internal/cart"
	"flint/internal/core"
	"flint/internal/dataset"
	"flint/internal/rf"
)

// trainedForest trains a small forest on the named workload.
func trainedForest(t *testing.T, name string, depth, trees int) (*rf.Forest, *dataset.Dataset) {
	t.Helper()
	d, err := dataset.Generate(name, 400, 21)
	if err != nil {
		t.Fatal(err)
	}
	f, err := cart.TrainForest(d, cart.Config{NumTrees: trees, MaxDepth: depth, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return f, d
}

// allEngines builds every engine for a forest.
func allEngines(t *testing.T, f *rf.Forest) map[string]rf.Predictor {
	t.Helper()
	out := make(map[string]rf.Predictor)
	add := func(p rf.Predictor, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out[p.(interface{ Name() string }).Name()] = p
	}
	e1, err := NewFloat32(f)
	add(e1, err)
	e2, err := NewFLInt(f)
	add(e2, err)
	e3, err := NewFLIntXor(f)
	add(e3, err)
	e4, err := NewTotalOrder(f)
	add(e4, err)
	e5, err := NewPrecoded(f)
	add(e5, err)
	e6, err := NewFloat64(f)
	add(e6, err)
	e7, err := NewFLInt64(f)
	add(e7, err)
	e8, err := NewSoftFloat(f)
	add(e8, err)
	return out
}

// TestEnginesAgreeOnDatasets is experiment E8: the paper's
// accuracy-unchanged claim. Every engine must reproduce the reference
// prediction on every sample of every workload.
func TestEnginesAgreeOnDatasets(t *testing.T) {
	for _, name := range dataset.Names() {
		f, d := trainedForest(t, name, 10, 5)
		engines := allEngines(t, f)
		for i, x := range d.Features {
			want := f.Predict(x)
			for ename, e := range engines {
				if got := e.Predict(x); got != want {
					t.Fatalf("%s: engine %s predicts %d for row %d, reference says %d",
						name, ename, got, i, want)
				}
			}
		}
	}
}

// TestEnginesAgreeOnAdversarialInputs drives all engines with inputs that
// sit exactly on split boundaries, at infinities, negative zeros and
// denormals.
func TestEnginesAgreeOnAdversarialInputs(t *testing.T) {
	f, d := trainedForest(t, "eye", 8, 3)
	engines := allEngines(t, f)

	// Gather every split value and probe x = split (boundary), its
	// neighbors, negations, plus specials.
	var probes []float32
	for _, tr := range f.Trees {
		for _, n := range tr.Nodes {
			if n.IsLeaf() {
				continue
			}
			s := n.Split
			probes = append(probes, s,
				math.Nextafter32(s, float32(math.Inf(-1))),
				math.Nextafter32(s, float32(math.Inf(1))),
				-s)
		}
	}
	probes = append(probes,
		0, float32(math.Copysign(0, -1)),
		float32(math.Inf(1)), float32(math.Inf(-1)),
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		math.MaxFloat32, -math.MaxFloat32)

	nf := d.NumFeatures()
	rng := rand.New(rand.NewSource(4))
	x := make([]float32, nf)
	for trial := 0; trial < 300; trial++ {
		for j := range x {
			x[j] = probes[rng.Intn(len(probes))]
		}
		want := f.Predict(x)
		for ename, e := range engines {
			if got := e.Predict(x); got != want {
				t.Fatalf("engine %s diverges on adversarial input %v: got %d want %d",
					ename, x, got, want)
			}
		}
	}
}

// TestPerTreeAgreement checks individual trees, not just the vote.
func TestPerTreeAgreement(t *testing.T) {
	f, d := trainedForest(t, "magic", 8, 4)
	fe, err := NewFloat32(f)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := NewFLInt(f)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewPrecoded(f)
	if err != nil {
		t.Fatal(err)
	}
	var xi []int32
	var keys []uint32
	for _, x := range d.Features {
		xi = core.EncodeFeatures32(xi, x)
		keys = core.PrecodeFeatures32(keys, x)
		for ti := range f.Trees {
			want := f.Trees[ti].Predict(x)
			if got := fe.PredictTree(ti, x); got != want {
				t.Fatalf("float engine tree %d: got %d want %d", ti, got, want)
			}
			if got := fl.PredictTreeEncoded(ti, xi); got != want {
				t.Fatalf("flint engine tree %d: got %d want %d", ti, got, want)
			}
			if got := pe.PredictTreePrecoded(ti, keys); got != want {
				t.Fatalf("precoded engine tree %d: got %d want %d", ti, got, want)
			}
		}
	}
}

// TestRandomForestsProperty cross-checks the engines on randomly
// constructed (not trained) trees with extreme split values.
func TestRandomForestsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	splitPool := []float32{
		0, float32(math.Copysign(0, -1)), 1.5, -1.5,
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		math.MaxFloat32, -math.MaxFloat32, 3.25e-20, -7.5e12,
	}
	randTree := func(depth int) rf.Tree {
		var nodes []rf.Node
		var grow func(d int) int32
		grow = func(d int) int32 {
			me := int32(len(nodes))
			if d == 0 || rng.Float64() < 0.25 {
				nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(rng.Intn(3))})
				return me
			}
			nodes = append(nodes, rf.Node{
				Feature: int32(rng.Intn(4)),
				Split:   splitPool[rng.Intn(len(splitPool))],
			})
			l := grow(d - 1)
			r := grow(d - 1)
			nodes[me].Left = l
			nodes[me].Right = r
			return me
		}
		grow(depth)
		return rf.Tree{Nodes: nodes}
	}
	for trial := 0; trial < 50; trial++ {
		f := &rf.Forest{NumFeatures: 4, NumClasses: 3,
			Trees: []rf.Tree{randTree(5), randTree(5), randTree(5)}}
		engines := allEngines(t, f)
		x := make([]float32, 4)
		for probe := 0; probe < 100; probe++ {
			for j := range x {
				x[j] = splitPool[rng.Intn(len(splitPool))] * float32(rng.NormFloat64())
			}
			want := f.Predict(x)
			for ename, e := range engines {
				if got := e.Predict(x); got != want {
					t.Fatalf("trial %d: engine %s got %d want %d for %v", trial, ename, got, want, x)
				}
			}
		}
	}
}

func TestEngineRejectsInvalidForest(t *testing.T) {
	bad := &rf.Forest{NumFeatures: 1, NumClasses: 2, Trees: []rf.Tree{{Nodes: []rf.Node{
		{Feature: 0, Split: float32(math.NaN()), Left: 1, Right: 2},
		{Feature: rf.LeafFeature}, {Feature: rf.LeafFeature},
	}}}}
	if _, err := NewFloat32(bad); err == nil {
		t.Error("NaN split accepted by NewFloat32")
	}
	if _, err := NewFLInt(bad); err == nil {
		t.Error("NaN split accepted by NewFLInt")
	}
	if _, err := NewFloat64(bad); err == nil {
		t.Error("NaN split accepted by NewFloat64")
	}
	empty := &rf.Forest{NumFeatures: 1, NumClasses: 2}
	if _, err := NewPrecoded(empty); err == nil {
		t.Error("empty forest accepted")
	}
}

func TestBufferedPredictNoAlloc(t *testing.T) {
	f, d := trainedForest(t, "gas", 6, 2)
	fl, err := NewFLInt(f)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewPrecoded(f)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int32, 0, d.NumFeatures())
	kbuf := make([]uint32, 0, d.NumFeatures())
	x := d.Features[0]
	allocs := testing.AllocsPerRun(100, func() {
		fl.PredictBuffered(x, buf)
	})
	// One small allocation remains for the vote counter; the encoding
	// buffer must be reused.
	if allocs > 1 {
		t.Errorf("FLInt PredictBuffered allocates %.1f times per run", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		pe.PredictBuffered(x, kbuf)
	})
	if allocs > 1 {
		t.Errorf("Precoded PredictBuffered allocates %.1f times per run", allocs)
	}
}

func TestEngineNames(t *testing.T) {
	f, _ := trainedForest(t, "wine", 4, 2)
	engines := allEngines(t, f)
	want := []string{"float32", "flint", "flint-xor", "total-order", "precoded", "float64", "flint64", "softfloat"}
	for _, n := range want {
		if _, ok := engines[n]; !ok {
			t.Errorf("missing engine %q", n)
		}
	}
	if len(engines) != len(want) {
		t.Errorf("have %d engines, want %d", len(engines), len(want))
	}
}

func TestFloat64EngineOnWideInputs(t *testing.T) {
	// Double precision engines accept float64 vectors directly; values
	// that are not representable in float32 must still traverse
	// correctly relative to widened float32 splits.
	f, _ := trainedForest(t, "wine", 6, 2)
	fe, err := NewFloat64(f)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := NewFLInt64(f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	x := make([]float64, f.NumFeatures)
	for trial := 0; trial < 500; trial++ {
		for j := range x {
			x[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4))
		}
		// Reference: walk the rf tree with float64 comparisons.
		want := func() int32 {
			counts := make([]int32, f.NumClasses)
			for ti := range f.Trees {
				i := int32(0)
				for !f.Trees[ti].Nodes[i].IsLeaf() {
					n := f.Trees[ti].Nodes[i]
					if x[n.Feature] <= float64(n.Split) {
						i = n.Left
					} else {
						i = n.Right
					}
				}
				counts[f.Trees[ti].Nodes[i].Class]++
			}
			return rf.Argmax(counts)
		}()
		if got := fe.Predict64(x); got != want {
			t.Fatalf("Float64Engine got %d want %d", got, want)
		}
		if got := fl.Predict64(x); got != want {
			t.Fatalf("FLInt64Engine got %d want %d", got, want)
		}
	}
}
