package treeexec

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// servedModel builds a compact-arena ServedModel over a small trained
// forest, returning the model and the dataset it was trained on.
func servedModel(t *testing.T, name, workload string, depth, trees int) (*ServedModel, [][]float32) {
	t.Helper()
	f, d := trainedForest(t, workload, depth, trees)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	return NewServedModelSampled(name, e, 2, 16, 128, 1), d.Features
}

// TestServedModelLifecycle walks one model through the documented
// lifecycle — build, calibrate, serve, recalibrate, save, drain/close —
// pinning the error-based misuse contract the network front-end needs:
// malformed rows and post-retirement calls come back as errors in the
// caller's goroutine, never as panics or dropped work.
func TestServedModelLifecycle(t *testing.T) {
	m, rows := servedModel(t, "magic", "magic", 7, 6)
	m.Engine().CalibrateInterleaveRows(rows, 10*time.Millisecond)

	want := m.Engine().PredictBatch(rows, nil, 1, 0)
	got, err := m.Predict(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: ServedModel.Predict = %d, engine = %d", i, got[i], want[i])
		}
	}

	if _, err := m.Predict([][]float32{{1, 2}}, nil); err == nil {
		t.Fatal("Predict accepted a row narrower than the feature width")
	} else if !strings.Contains(err.Error(), "features") {
		t.Fatalf("row-width error = %v, want a feature-width complaint", err)
	}

	if w := m.Recalibrate(5 * time.Millisecond); w != m.Engine().Interleave() {
		t.Fatalf("Recalibrate returned %d but engine width is %d", w, m.Engine().Interleave())
	}

	var buf bytes.Buffer
	if err := m.SaveCalibration(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"model": "magic"`) {
		t.Fatalf("ServedModel.SaveCalibration did not stamp the model name:\n%s", buf.String())
	}

	st := m.Stats()
	if st.Name != "magic" || st.Rows == 0 || st.Batches == 0 || st.Retired {
		t.Fatalf("pre-close stats look wrong: %+v", st)
	}

	m.Close()
	m.Close() // idempotent
	if !m.Retired() {
		t.Fatal("Retired() = false after Close")
	}
	if _, err := m.Predict(rows[:1], nil); err != ErrModelRetired {
		t.Fatalf("Predict after Close = %v, want ErrModelRetired", err)
	}
}

// TestDriftWatcherTerminatesOnClose is the goroutine-leak test for the
// serving teardown: arm drift detection, serve traffic, close, and
// assert the watcher goroutine from EnableDriftDetection has exited —
// both via its done channel (the authoritative signal Close waits on)
// and via the process goroutine count settling back to its baseline.
func TestDriftWatcherTerminatesOnClose(t *testing.T) {
	before := runtime.NumGoroutine()

	m, rows := servedModel(t, "magic", "magic", 6, 5)
	if err := m.EnableDriftDetection(DriftConfig{CheckEvery: 64, MinRows: 16}, rows); err != nil {
		t.Fatal(err)
	}
	out := make([]int32, len(rows))
	for i := 0; i < 8; i++ { // cross the check cadence several times
		if _, err := m.Predict(rows, out); err != nil {
			t.Fatal(err)
		}
	}
	d := m.Batcher().drift.Load()
	if d == nil {
		t.Fatal("no drift detector armed")
	}
	m.Close()

	select {
	case <-d.done:
	default:
		t.Fatal("drift watcher still running after Close")
	}

	// The workers exit asynchronously after close(jobs); poll until the
	// goroutine count settles back to (at most) the pre-model baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before model, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRegistryRegisterValidation pins the registration contract: names
// must be path-safe and unique, models must be live.
func TestRegistryRegisterValidation(t *testing.T) {
	r := NewModelRegistry()
	if err := r.Register(nil); err == nil {
		t.Fatal("Register(nil) succeeded")
	}
	m, _ := servedModel(t, "a/b", "magic", 5, 3)
	defer m.b.Close()
	if err := r.Register(m); err == nil {
		t.Fatal("Register accepted a name with '/'")
	}
	ok, _ := servedModel(t, "magic", "magic", 5, 3)
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	dup, _ := servedModel(t, "magic", "magic", 5, 3)
	defer dup.b.Close()
	if err := r.Register(dup); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate Register = %v, want already-registered error", err)
	}
	if names := r.Names(); len(names) != 1 || names[0] != "magic" {
		t.Fatalf("Names = %v", names)
	}
	r.Close()
	if _, found := r.Get("magic"); found {
		t.Fatal("model still registered after registry Close")
	}
}

// TestRegistrySwapDrains pins Swap's teardown half: after the pointer
// flip the old model is retired, its in-flight work has completed, and
// its drift watcher has exited — while the registry answers identically
// for unchanged rows through the replacement.
func TestRegistrySwapDrains(t *testing.T) {
	f, d := trainedForest(t, "magic", 7, 6)
	build := func() *ServedModel {
		e, err := NewFlat(f, FlatCompact)
		if err != nil {
			t.Fatal(err)
		}
		return NewServedModelSampled("magic", e, 2, 16, 128, 1)
	}
	old := build()
	if err := old.EnableDriftDetection(DriftConfig{CheckEvery: 64, MinRows: 16}, d.Features); err != nil {
		t.Fatal(err)
	}
	r := NewModelRegistry()
	if err := r.Register(old); err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	before, err := r.Predict("magic", d.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	wd := old.Batcher().drift.Load()

	if err := r.Swap("magic", build()); err != nil {
		t.Fatal(err)
	}
	if !old.Retired() {
		t.Fatal("old model not retired after Swap")
	}
	select {
	case <-wd.done:
	default:
		t.Fatal("old model's drift watcher survived the Swap drain")
	}

	after, err := r.Predict("magic", d.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("row %d: answer changed across Swap: %d -> %d", i, before[i], after[i])
		}
	}

	// Swap error paths.
	if err := r.Swap("magic", nil); err == nil {
		t.Fatal("Swap to nil model succeeded")
	}
	wrong, _ := servedModel(t, "other", "magic", 5, 3)
	defer wrong.b.Close()
	if err := r.Swap("magic", wrong); err == nil {
		t.Fatal("Swap accepted a model with a different name")
	}
	missing, _ := servedModel(t, "ghost", "magic", 5, 3)
	defer missing.b.Close()
	if err := r.Swap("ghost", missing); err == nil {
		t.Fatal("Swap on an unregistered name succeeded")
	}
}

// TestRegistryPredictAcrossSwap is the registry half of the hot-swap
// guarantee (the HTTP half lives in internal/serve): concurrent
// registry.Predict callers ride through repeated Swaps with zero errors
// and bit-identical answers for unchanged rows. Run under -race in CI.
func TestRegistryPredictAcrossSwap(t *testing.T) {
	f, d := trainedForest(t, "magic", 7, 6)
	build := func() *ServedModel {
		e, err := NewFlat(f, FlatCompact)
		if err != nil {
			t.Fatal(err)
		}
		return NewServedModelSampled("magic", e, 2, 16, 128, 1)
	}
	r := NewModelRegistry()
	if err := r.Register(build()); err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	want, err := r.Predict("magic", d.Features, nil)
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var served atomic.Uint64
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]int32, len(d.Features))
			for !stop.Load() {
				got, err := r.Predict("magic", d.Features, out)
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				for i := range want {
					if got[i] != want[i] {
						select {
						case errs <- &UnknownModelError{Name: "answer drift"}:
						default:
						}
						return
					}
				}
				served.Add(1)
			}
		}()
	}
	for i := 0; i < 5; i++ {
		time.Sleep(10 * time.Millisecond)
		if err := r.Swap("magic", build()); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent Predict across Swap: %v", err)
	}
	if served.Load() == 0 {
		t.Fatal("no Predict calls completed during the swap storm")
	}
}

// TestRegistryCalibrationRoundTrip saves through the registry and
// warm-starts a replacement from the record: mode installed as
// persisted, reservoir seeded, drift re-armed.
func TestRegistryCalibrationRoundTrip(t *testing.T) {
	f, d := trainedForest(t, "magic", 7, 6)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	m := NewServedModelSampled("magic", e, 2, 16, 128, 1)
	r := NewModelRegistry()
	if err := r.Register(m); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := m.EnableDriftDetection(DriftConfig{CheckEvery: 256, MinRows: 16}, d.Features); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Predict("magic", d.Features, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.SaveCalibration("magic", &buf); err != nil {
		t.Fatal(err)
	}

	e2, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewServedModelSampled("magic", e2, 2, 16, 128, 1)
	if err := r.Swap("magic", m2); err != nil {
		t.Fatal(err)
	}
	rec, err := r.LoadCalibration("magic", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Model != "magic" {
		t.Fatalf("persisted record carries model %q, want %q", rec.Model, "magic")
	}
	if src := e2.CalibrationSource(); src != "persisted" {
		t.Fatalf("CalibrationSource after registry load = %q, want persisted", src)
	}
	if sampled, _ := m2.Batcher().SampleStats(); sampled == 0 {
		t.Fatal("registry load did not seed the reservoir")
	}
	if !m2.DriftStats().Enabled {
		t.Fatal("registry load did not re-arm drift detection")
	}
	if _, err := r.LoadCalibration("ghost", bytes.NewReader(nil)); err == nil {
		t.Fatal("LoadCalibration on unknown model succeeded")
	}
}

// TestRegistryCrossModelCalibrationMixup pins the satellite fix: a
// record that demonstrably belongs to a different registered model is
// rejected by name — whether it is stamped with that model's name or
// merely fingerprints its arena — instead of surfacing as a bare
// fingerprint mismatch (or, for coincidentally equal arenas, silently
// installing another model's mode).
func TestRegistryCrossModelCalibrationMixup(t *testing.T) {
	r := NewModelRegistry()
	defer r.Close()
	a, _ := servedModel(t, "alpha", "magic", 7, 6)
	b, _ := servedModel(t, "beta", "wine", 5, 4)
	if err := r.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(b); err != nil {
		t.Fatal(err)
	}
	if a.Engine().Fingerprint() == b.Engine().Fingerprint() {
		t.Fatal("test needs two models with distinct arena fingerprints")
	}

	// A record stamped for alpha must not load into beta.
	var stamped bytes.Buffer
	if err := r.SaveCalibration("alpha", &stamped); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadCalibration("beta", &stamped); err == nil {
		t.Fatal("beta accepted alpha's stamped record")
	} else if !strings.Contains(err.Error(), `"alpha"`) {
		t.Fatalf("mix-up error does not name the owning model: %v", err)
	}

	// An unstamped record (engine-level save) whose fingerprint matches
	// alpha's arena must be rejected on beta *by alpha's name*, not as
	// an anonymous fingerprint mismatch.
	var unstamped bytes.Buffer
	if err := a.Engine().SaveCalibration(&unstamped, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadCalibration("beta", &unstamped); err == nil {
		t.Fatal("beta accepted a record fingerprinting alpha's arena")
	} else if !strings.Contains(err.Error(), `registered model "alpha"`) {
		t.Fatalf("cross-model error does not identify the matching model: %v", err)
	}

	// The same record still loads fine into its rightful owner.
	unstamped.Reset()
	if err := r.SaveCalibration("alpha", &unstamped); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadCalibration("alpha", &unstamped); err != nil {
		t.Fatalf("alpha rejected its own record: %v", err)
	}
}
