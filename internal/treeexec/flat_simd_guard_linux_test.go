//go:build linux

package treeexec

import (
	"syscall"
	"testing"
	"unsafe"
)

// TestSIMDScratchOverreadPad asserts the +2-uint16 overread pad on the
// compact rank scratch with hardware, not arithmetic: the SIMD walks
// gather 32 bits per 16-bit rank, so the last lane's last element reads
// two bytes past the logical end — newScratch pads s.q to absorb it.
// This test rebuilds the scratch at the exact newScratch length flush
// against an unmapped guard page and runs every vector kernel over it;
// if a future resize silently drops the pad, the gather walks onto the
// guard page and the test dies with SIGSEGV instead of shipping a
// heap overread that only crashes when an allocation happens to end at
// a page boundary in production.
func TestSIMDScratchOverreadPad(t *testing.T) {
	f, d := trainedForest(t, "magic", 7, 6)
	ref, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", e.Variant())
	}
	s := e.newScratch()
	need := len(s.q) // the exact production size, pad included
	page := syscall.Getpagesize()
	dataBytes := ((2*need + page - 1) / page) * page
	mem, err := syscall.Mmap(-1, 0, dataBytes+page,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		t.Fatal(err)
	}
	defer syscall.Munmap(mem)
	if err := syscall.Mprotect(mem[dataBytes:], syscall.PROT_NONE); err != nil {
		t.Fatal(err)
	}
	// The scratch ends exactly where the guard page begins.
	buf := mem[dataBytes-2*need : dataBytes]
	s.q = unsafe.Slice((*uint16)(unsafe.Pointer(&buf[0])), need)

	rows := d.Features[:29] // full dual groups, a partial group, odd tail
	want := make([]int32, len(rows))
	for i, x := range rows {
		want[i] = ref.Predict(x)
	}
	out := make([]int32, len(rows))
	for _, tc := range []struct {
		width  int
		kernel Kernel
		refill int32
	}{
		{16, KernelSIMD, 1},
		{16, KernelSIMD, defaultSIMDRefill},
		{8, KernelSIMD, 0},
		{8, KernelSIMDQuant, 0},
	} {
		for i := range out {
			out[i] = -1
		}
		e.predictBlockMode(rows, out, s, tc.width, tc.kernel, tc.refill)
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("%v width %d refill %d row %d: got %d want %d against the guard page",
					tc.kernel, tc.width, tc.refill, i, out[i], want[i])
			}
		}
	}
}
