package treeexec

import (
	"sync"
	"testing"
)

// TestBatcherConcurrentPredict runs many Predict calls from independent
// goroutines against one pool: with per-call completion tokens the calls
// interleave block-by-block instead of serializing, and each must still
// fill exactly its own output slice.
func TestBatcherConcurrentPredict(t *testing.T) {
	f, d := trainedForest(t, "magic", 7, 6)
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int32, d.Len())
	for i, x := range d.Features {
		want[i] = f.Predict(x)
	}
	b := NewBatcher(e, 3, 4)
	defer b.Close()

	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each caller uses a distinct sub-batch and its own reused
			// output slice across iterations.
			lo := c * 7 % d.Len()
			rows := d.Features[lo:]
			var out []int32
			for iter := 0; iter < 25; iter++ {
				out = b.Predict(rows, out)
				for i := range rows {
					if out[i] != want[lo+i] {
						errs <- "diverged"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestBatcherScratchReuseAcrossBatchSizes grows and shrinks both the
// batch and the output slice between calls to one Batcher: per-worker
// scratch is sized by the engine, not the batch, so any sequence of
// shapes must predict correctly, and once the caller's output slice has
// capacity the steady state must stay allocation-free.
func TestBatcherScratchReuseAcrossBatchSizes(t *testing.T) {
	f, d := trainedForest(t, "sensorless", 6, 6)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", e.Variant())
	}
	e.SetInterleave(4)
	want := make([]int32, d.Len())
	for i, x := range d.Features {
		want[i] = f.Predict(x)
	}
	b := NewBatcher(e, 2, 8)
	defer b.Close()

	check := func(rows [][]float32, got []int32) {
		t.Helper()
		if len(got) != len(rows) {
			t.Fatalf("%d results for %d rows", len(got), len(rows))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("row %d: got %d want %d", i, got[i], want[i])
			}
		}
	}
	sizes := []int{d.Len(), 3, 177, 1, 64, d.Len(), 2, 91}
	// First pass with a nil slice each call (allocation allowed), then a
	// reuse pass over the same shapes with one slice at full capacity.
	for _, n := range sizes {
		check(d.Features[:n], b.Predict(d.Features[:n], nil))
	}
	out := make([]int32, 0, d.Len())
	for _, n := range sizes {
		out = b.Predict(d.Features[:n], out[:0])
		check(d.Features[:n], out)
	}
	if avg := testing.AllocsPerRun(10, func() {
		for _, n := range sizes {
			out = b.Predict(d.Features[:n], out[:0])
		}
	}); avg != 0 {
		t.Errorf("shape-changing steady state allocates %.1f objects per cycle, want 0", avg)
	}
}

// TestBatcherPredictAfterClosePanics pins the documented contract: any
// Predict after Close panics, whether or not the batch is empty. (The
// empty batch used to return before the closed check, so misuse only
// surfaced on the first non-empty call.)
func TestBatcherPredictAfterClosePanics(t *testing.T) {
	f, d := trainedForest(t, "wine", 4, 2)
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, 1, 0)
	// Empty batches are fine while the pool is open.
	if out := b.Predict(nil, nil); len(out) != 0 {
		t.Errorf("empty Predict before Close returned %v", out)
	}
	b.Close()
	b.Close() // double Close is tolerated
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s after Close did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("non-empty Predict", func() { b.Predict(d.Features[:1], nil) })
	mustPanic("empty Predict", func() { b.Predict(nil, nil) })
	mustPanic("empty non-nil Predict", func() { b.Predict([][]float32{}, make([]int32, 0, 4)) })
}

// TestMalformedRowsFailInCaller is the regression test for the serving-
// path crash: a row whose length is not NumFeatures used to index out
// of range inside a Batcher worker goroutine — an unrecoverable panic
// that killed the whole process. Every batch entry must now fail fast
// in the caller's goroutine: Batcher.Predict and PredictBatch with a
// recoverable panic, Batch and BatchFloat with an error. The Batcher
// must survive the rejected call and keep serving.
func TestMalformedRowsFailInCaller(t *testing.T) {
	f, d := trainedForest(t, "magic", 6, 5)
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	short := [][]float32{d.Features[0], d.Features[1][:3], d.Features[2]}
	long := [][]float32{append(append([]float32{}, d.Features[0]...), 7)}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s with a malformed row did not panic in the caller", name)
			}
		}()
		fn()
	}
	b := NewBatcher(e, 2, 4)
	defer b.Close()
	mustPanic("Batcher.Predict (short row)", func() { b.Predict(short, nil) })
	mustPanic("Batcher.Predict (long row)", func() { b.Predict(long, nil) })
	mustPanic("PredictBatch", func() { e.PredictBatch(short, nil, 2, 4) })

	// The rejected calls must not have poisoned the pool.
	out := b.Predict(d.Features[:8], nil)
	for i, x := range d.Features[:8] {
		if out[i] != f.Predict(x) {
			t.Fatalf("row %d diverges after a rejected batch", i)
		}
	}

	// The error-returning entries reject the same rows without panicking.
	if _, err := Batch(e, short, 2); err == nil {
		t.Error("Batch accepted a short row")
	}
	if _, err := BatchFloat(e, long, 2); err == nil {
		t.Error("BatchFloat accepted a long row")
	}
	perTree, err := NewFLInt(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Batch(perTree, short, 2); err == nil {
		t.Error("per-tree Batch accepted a short row")
	}
	if _, err := BatchFloat(f, short, 2); err == nil {
		t.Error("BatchFloat over *rf.Forest accepted a short row")
	}
	if _, err := Batch(perTree, d.Features[:4], 2); err != nil {
		t.Errorf("well-formed per-tree Batch errored: %v", err)
	}
	// Every per-tree engine exposes NumFeatures, so the guard covers the
	// whole ablation family, not just the FLInt engine.
	to, err := NewTotalOrder(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Batch(to, short, 2); err == nil {
		t.Error("total-order Batch accepted a short row")
	}
	f32, err := NewFloat32(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BatchFloat(f32, long, 2); err == nil {
		t.Error("float32 BatchFloat accepted a long row")
	}
}

// TestNilEngineBatchEntryPoints pins the pool-constructor and batch-
// method guards: a nil (or typed-nil) engine must fail fast in the
// caller's goroutine, where the panic is recoverable, instead of
// killing the process from inside a spawned worker.
func TestNilEngineBatchEntryPoints(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on nil engine did not panic in the caller", name)
			}
		}()
		fn()
	}
	mustPanic("NewBatcher", func() { NewBatcher(nil, 2, 8) })
	var e *FlatForestEngine
	mustPanic("typed-nil NewBatcher", func() { NewBatcher(e, 0, 0) })
	mustPanic("PredictBatch", func() { e.PredictBatch([][]float32{{1}}, nil, 1, 0) })
	mustPanic("empty PredictBatch", func() { e.PredictBatch(nil, nil, 1, 0) })
}
