//go:build amd64 && !noasm

package treeexec

// AVX2 feature detection, done once at init the same way
// golang.org/x/sys/cpu does it but without the dependency: CPUID for
// the AVX/AVX2 feature bits, XGETBV to confirm the OS actually saves
// the YMM register state on context switch (a kernel that doesn't
// would corrupt vector registers across preemption — the CPUID bits
// alone do not promise the ISA is usable).

// cpuid executes CPUID with the given leaf and subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveAVX = 1<<27 | 1<<28 // OSXSAVE (XGETBV usable) + AVX
	if ecx1&osxsaveAVX != osxsaveAVX {
		return false
	}
	if xlo, _ := xgetbv(); xlo&0x6 != 0x6 { // OS saves XMM and YMM state
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

func simdKernelAvailable() bool { return hasAVX2 }

func detectedISA() string {
	if hasAVX2 {
		return "avx2"
	}
	return ""
}

// fusedWalk8 and fusedRank8 branch on the detected ISA at runtime
// rather than trusting the build target: an amd64 binary can land on a
// pre-AVX2 host, where calling the assembly would be an illegal
// instruction. There the portable forms serve — SetKernel(KernelSIMD)
// stays safe everywhere, it just stops being fast.

func fusedWalk8(nodes []uint64, base int32, q []uint16, nq int32, cur *[8]int32) {
	if hasAVX2 {
		fusedWalk8AVX2(nodes, base, q, nq, cur)
		return
	}
	fusedWalk8Go(nodes, base, q, nq, cur)
}

func fusedRank8(cuts []uint32, lo, n int32, keys *[8]uint32, ranks *[8]uint16) {
	if n <= 0 {
		// branchlessRank's empty-segment answer, without the assembly's
		// unconditional final probe reading cuts[lo] out of bounds.
		*ranks = [8]uint16{}
		return
	}
	if hasAVX2 {
		fusedRank8AVX2(cuts, lo, n, keys, ranks)
		return
	}
	fusedRank8Go(cuts, lo, n, keys, ranks)
}

func fusedWalk16(nodes []uint64, q []uint16, st *simdWalk16, minActive int32) {
	// minActive < 1 would never terminate once every lane finishes
	// (0 < 0 fails the early-exit test); clamp before either form.
	if minActive < 1 {
		minActive = 1
	}
	if hasAVX2 {
		fusedWalk16AVX2(nodes, q, st, minActive)
		return
	}
	fusedWalk16Go(nodes, q, st, minActive)
}

//go:noescape
func fusedWalk8AVX2(nodes []uint64, base int32, q []uint16, nq int32, cur *[8]int32)

//go:noescape
func fusedWalk16AVX2(nodes []uint64, q []uint16, st *simdWalk16, minActive int32)

//go:noescape
func fusedRank8AVX2(cuts []uint32, lo, n int32, keys *[8]uint32, ranks *[8]uint16)
