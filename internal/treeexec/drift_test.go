package treeexec

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flint/internal/rf"
)

// TestReservoirSnapshotIsDeepCopy pins the snapshot contract the drift
// detector depends on: a snapshot shares no storage with the reservoir
// in either direction, even across later fill cycles.
func TestReservoirSnapshotIsDeepCopy(t *testing.T) {
	const capacity, features = 8, 3
	r := newRowReservoir(capacity, features, 1)
	row := func(v float32) []float32 { return []float32{v, v + 1, v + 2} }
	for i := 0; i < capacity; i++ {
		r.observe([][]float32{row(float32(i))})
	}
	snap := r.snapshot()
	if len(snap) != capacity {
		t.Fatalf("snapshot holds %d rows, want %d", len(snap), capacity)
	}
	// Mutating the snapshot must not reach the reservoir...
	for _, s := range snap {
		for j := range s {
			s[j] = -1000
		}
	}
	for i, s := range r.snapshot() {
		if s[0] == -1000 {
			t.Fatalf("slot %d aliases the earlier snapshot's storage", i)
		}
	}
	// ...and later admissions (many full replacement cycles) must not
	// reach a snapshot the caller is still holding.
	held := r.snapshot()
	want := make([][]float32, len(held))
	for i, s := range held {
		want[i] = append([]float32(nil), s...)
	}
	for i := 0; i < 100*capacity; i++ {
		r.observe([][]float32{row(float32(9000 + i))})
	}
	for i, s := range held {
		for j := range s {
			if s[j] != want[i][j] {
				t.Fatalf("held snapshot row %d mutated by later fill cycle: %v want %v", i, s, want[i])
			}
		}
	}
}

// driftedRows returns rows pushed far outside the per-feature split
// range the engine was trained on — every value lands in the top rank
// bin, the cheapest detectable distribution shift.
func driftedRows(rows [][]float32) [][]float32 {
	out := make([][]float32, len(rows))
	for i, r := range rows {
		s := make([]float32, len(r))
		for j, v := range r {
			s[j] = v*4 + 1e6
		}
		out[i] = s
	}
	return out
}

// TestDriftTriggerUnderConcurrentTraffic is the tentpole acceptance
// test for the detector (run under -race to pin its other half): with a
// baseline from the training distribution and live traffic shifted far
// off it, the cadence-scheduled check must fire Recalibrate
// automatically while concurrent Predict callers hammer the pool, and
// the installed mode must be sourced from the sampled rows.
func TestDriftTriggerUnderConcurrentTraffic(t *testing.T) {
	f, d := trainedForest(t, "magic", 7, 6)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcherSampled(e, 3, 16, 128, 1)
	defer b.Close()
	err = b.EnableDriftDetection(DriftConfig{
		CheckEvery: 256,
		Threshold:  0.2,
		Cooldown:   time.Millisecond,
		MinRows:    32,
		Budget:     5 * time.Millisecond,
	}, d.Features)
	if err != nil {
		t.Fatal(err)
	}
	drifted := driftedRows(d.Features)

	var stopFlag atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]int32, len(drifted))
			for !stopFlag.Load() {
				b.Predict(drifted, out)
			}
		}()
	}
	deadline := time.Now().Add(20 * time.Second)
	var st DriftStats
	for time.Now().Before(deadline) {
		st = b.DriftStats()
		if st.Triggers >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopFlag.Store(true)
	wg.Wait()
	if st.Triggers < 1 {
		t.Fatalf("drift never triggered recalibration: %+v", st)
	}
	// Distance keeps moving after the trigger (the rebased baseline
	// scores near 0 against continued drifted traffic); TriggerDistance
	// preserves the excursion that fired.
	if st.TriggerDistance <= 0.2 {
		t.Errorf("trigger recorded but trigger distance %v is not over the threshold", st.TriggerDistance)
	}
	if st.LastTrigger.IsZero() || st.LastCheck.IsZero() {
		t.Errorf("trigger metadata missing: %+v", st)
	}
	if src := e.CalibrationSource(); src != "rows" {
		t.Errorf("triggered recalibration left calibration source %q, want \"rows\"", src)
	}
	switch e.Interleave() {
	case 1, 2, 4, 8:
	default:
		t.Errorf("installed width %d is not a supported width", e.Interleave())
	}
	// The triggering sample became the new baseline, so the measured
	// drift against continued drifted traffic collapses.
	if st2 := b.CheckDrift(); st2.Distance > 0.2 {
		t.Errorf("baseline did not rebase after trigger: distance still %v", st2.Distance)
	}
}

// TestDriftStationaryTrafficNoTrigger pins the false-positive side: a
// baseline adopted from the live reservoir itself measures distance
// exactly 0, and stationary traffic never fires the trigger.
func TestDriftStationaryTrafficNoTrigger(t *testing.T) {
	f, d := trainedForest(t, "magic", 6, 5)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcherSampled(e, 2, 16, 128, 1)
	defer b.Close()
	out := make([]int32, len(d.Features))
	b.Predict(d.Features, out)
	// nil baseline: adopt the current reservoir snapshot. The first
	// check then compares the reservoir against itself — identical
	// distributions must score exactly 0.
	if err := b.EnableDriftDetection(DriftConfig{CheckEvery: 256, MinRows: 16}, nil); err != nil {
		t.Fatal(err)
	}
	st := b.CheckDrift()
	if st.Distance != 0 {
		t.Fatalf("identical distributions scored PSI %v, want exactly 0", st.Distance)
	}
	// Keep serving the same distribution: samples vary, the trigger
	// must not fire.
	for i := 0; i < 30; i++ {
		b.Predict(d.Features, out)
		b.CheckDrift()
	}
	st = b.DriftStats()
	if st.Triggers != 0 {
		t.Fatalf("stationary traffic fired %d triggers (distance %v)", st.Triggers, st.Distance)
	}
	if st.Distance > st.Threshold/2 {
		t.Errorf("stationary distance %v is uncomfortably close to the threshold %v", st.Distance, st.Threshold)
	}
	if st.Checks == 0 || st.LastCheck.IsZero() {
		t.Errorf("checks did not run: %+v", st)
	}
}

// TestDriftEvidenceFloor pins the tiny-reservoir edge: checks below the
// MinRows floor neither adopt a baseline nor trigger, and the first
// sufficient check adopts its sample as baseline instead of firing.
func TestDriftEvidenceFloor(t *testing.T) {
	f, d := trainedForest(t, "wine", 5, 4)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcherSampled(e, 1, 8, 64, 1)
	defer b.Close()
	if err := b.EnableDriftDetection(DriftConfig{MinRows: 32}, nil); err != nil {
		t.Fatal(err)
	}
	// Empty reservoir: a check runs but has no evidence.
	st := b.CheckDrift()
	if st.Checks != 1 || st.Triggers != 0 || st.BaselineRows != 0 {
		t.Fatalf("empty-reservoir check misbehaved: %+v", st)
	}
	// Below the floor: still nothing.
	out := make([]int32, 8)
	b.Predict(d.Features[:8], out)
	if st = b.CheckDrift(); st.Triggers != 0 || st.BaselineRows != 0 {
		t.Fatalf("below-floor check misbehaved: %+v", st)
	}
	// Over the floor: adopt, don't trigger — even though these rows
	// look nothing like the (nonexistent) baseline.
	b.Predict(driftedRows(d.Features[:64]), make([]int32, 64))
	if st = b.CheckDrift(); st.Triggers != 0 || st.BaselineRows < 32 {
		t.Fatalf("first sufficient check should adopt a baseline without triggering: %+v", st)
	}
}

// TestDriftSingleFeatureForest runs the whole detect -> recalibrate
// loop on a one-feature forest (one histogram block, two bins).
func TestDriftSingleFeatureForest(t *testing.T) {
	f := &rf.Forest{NumFeatures: 1, NumClasses: 2, Trees: []rf.Tree{{Nodes: []rf.Node{
		{Feature: 0, Split: 0.5, Left: 1, Right: 2, LeftFraction: 0.5},
		{Feature: rf.LeafFeature, Class: 0},
		{Feature: rf.LeafFeature, Class: 1},
	}}}}
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcherSampled(e, 1, 8, 64, 1)
	defer b.Close()
	low := make([][]float32, 64)
	high := make([][]float32, 64)
	for i := range low {
		low[i] = []float32{float32(i) / 200}    // all below the 0.5 split
		high[i] = []float32{2 + float32(i)/200} // all above it
	}
	err = b.EnableDriftDetection(DriftConfig{
		Threshold: 0.2, MinRows: 16, Cooldown: time.Nanosecond, Budget: time.Millisecond,
	}, low)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int32, 64)
	b.Predict(high, out)
	st := b.CheckDrift()
	if st.Triggers != 1 {
		t.Fatalf("single-feature drift did not trigger: %+v", st)
	}
	if st.Distance <= 0.2 {
		t.Errorf("distance %v not over threshold", st.Distance)
	}
}

// TestDriftCooldownSuppression pins the hysteresis: a second
// over-threshold excursion inside the cooldown window is counted as
// suppressed, not fired.
func TestDriftCooldownSuppression(t *testing.T) {
	f, d := trainedForest(t, "magic", 6, 5)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcherSampled(e, 1, 16, 128, 1)
	defer b.Close()
	err = b.EnableDriftDetection(DriftConfig{
		Threshold: 0.2, MinRows: 16, Cooldown: time.Hour, Budget: time.Millisecond,
	}, d.Features)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int32, len(d.Features))
	// First excursion: trigger fires, baseline rebases to the shifted
	// sample.
	b.Predict(driftedRows(d.Features), out)
	st := b.CheckDrift()
	if st.Triggers != 1 || st.Suppressed != 0 {
		t.Fatalf("first excursion: %+v, want exactly one trigger", st)
	}
	// Second excursion (back to the original distribution — drifted
	// again relative to the new baseline) lands inside the hour-long
	// cooldown: suppressed.
	for i := 0; i < 6; i++ {
		b.Predict(d.Features, out)
	}
	st = b.CheckDrift()
	if st.Triggers != 1 {
		t.Fatalf("cooldown did not hold: %d triggers", st.Triggers)
	}
	if st.Suppressed == 0 {
		t.Fatalf("over-threshold check inside cooldown was not counted as suppressed: %+v", st)
	}
	if st.Distance <= 0.2 {
		t.Errorf("second excursion distance %v should be over threshold for this test to mean anything", st.Distance)
	}
}

// TestDriftRequiresSampling pins the disabled-sampling edge: a Batcher
// built with a negative reservoir capacity has no live distribution to
// compare, so arming is an error (and Predict still works).
func TestDriftRequiresSampling(t *testing.T) {
	f, d := trainedForest(t, "wine", 4, 3)
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcherSampled(e, 1, 8, -1, 0)
	defer b.Close()
	if err := b.EnableDriftDetection(DriftConfig{}, nil); err == nil {
		t.Fatal("EnableDriftDetection succeeded on a sampling-disabled Batcher")
	} else if !strings.Contains(err.Error(), "sampling") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if st := b.DriftStats(); st.Enabled {
		t.Fatal("DriftStats claims an armed detector after a failed enable")
	}
	if st := b.CheckDrift(); st.Enabled || st.Checks != 0 {
		t.Fatal("CheckDrift did something on an unarmed Batcher")
	}
	b.Predict(d.Features[:4], make([]int32, 4))
}

// TestDriftConfigValidation rejects configurations that would disable
// detection silently, and double-arming.
func TestDriftConfigValidation(t *testing.T) {
	f, _ := trainedForest(t, "wine", 4, 3)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, 1, 8)
	defer b.Close()
	for _, cfg := range []DriftConfig{
		{Threshold: -1},
		{Cooldown: -time.Second},
		{MinRows: -5},
		{Bins: 1},
		{Bins: -2},
		{Budget: -time.Second},
	} {
		if err := b.EnableDriftDetection(cfg, nil); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
	if err := b.EnableDriftDetection(DriftConfig{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.EnableDriftDetection(DriftConfig{}, nil); err == nil {
		t.Fatal("second EnableDriftDetection succeeded")
	}
}

// TestDriftPredictZeroAlloc asserts the acceptance criterion that the
// steady-state Predict path stays at 0 allocs/op with drift checking
// armed: the cadence compare is one atomic load, and the check itself
// runs on the watcher goroutine only when due (pushed out of this
// measurement window by a large cadence).
func TestDriftPredictZeroAlloc(t *testing.T) {
	f, d := trainedForest(t, "magic", 6, 5)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcherSampled(e, 2, 8, 32, 1)
	defer b.Close()
	if err := b.EnableDriftDetection(DriftConfig{CheckEvery: 1 << 40}, d.Features); err != nil {
		t.Fatal(err)
	}
	out := make([]int32, d.Len())
	b.Predict(d.Features, out) // warm the token pool
	if avg := testing.AllocsPerRun(20, func() {
		out = b.Predict(d.Features, out[:0])
	}); avg != 0 {
		t.Errorf("drift-armed Predict steady state allocates %.1f objects per call, want 0", avg)
	}
}

// TestDriftConfigPersistRoundTrip pins the persistence ride-along: a
// Batcher save carries the resolved drift policy, a fresh engine loads
// it back validated, and a corrupted policy is rejected.
func TestDriftConfigPersistRoundTrip(t *testing.T) {
	f, d := trainedForest(t, "magic", 6, 5)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcherSampled(e, 1, 8, 64, 1)
	defer b.Close()
	b.Predict(d.Features, make([]int32, len(d.Features)))
	cfg := DriftConfig{CheckEvery: 512, Threshold: 0.3, Cooldown: 2 * time.Minute, MinRows: 48, Bins: 8}
	if err := b.EnableDriftDetection(cfg, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.SaveCalibration(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := e2.LoadCalibration(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Drift == nil {
		t.Fatal("record carries no drift config")
	}
	want := cfg.withDefaults()
	if *rec.Drift != want {
		t.Fatalf("drift config round trip: got %+v want %+v", *rec.Drift, want)
	}
	if len(rec.Rows) == 0 {
		t.Fatal("Batcher.SaveCalibration persisted no sample rows")
	}
	// A redeployment re-arms straight from the record.
	b2 := NewBatcherSampled(e2, 1, 8, 64, 1)
	defer b2.Close()
	b2.SeedSample(rec.Rows)
	if err := b2.EnableDriftDetection(*rec.Drift, rec.Rows); err != nil {
		t.Fatal(err)
	}
	if st := b2.DriftStats(); !st.Enabled || st.BaselineRows == 0 {
		t.Fatalf("re-armed detector has no baseline: %+v", st)
	}
	// Corrupted policy: a negative cooldown must fail the load.
	bad := bytes.Replace(buf.Bytes(), []byte(`"cooldown_ns": 120000000000`), []byte(`"cooldown_ns": -1`), 1)
	if !bytes.Contains(buf.Bytes(), []byte(`"cooldown_ns": 120000000000`)) {
		t.Fatal("fixture drifted: cooldown field not found in persisted JSON")
	}
	if _, err := e2.LoadCalibration(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted drift config loaded without error")
	}
	// An engine-level save (no Batcher) still carries no drift field and
	// loads with Drift nil.
	buf.Reset()
	if err := e.SaveCalibration(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if rec, err := e2.LoadCalibration(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	} else if rec.Drift != nil {
		t.Fatal("engine-level record unexpectedly carries a drift config")
	}
}
