package treeexec

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"flint/internal/cags"
	"flint/internal/core"
	"flint/internal/dataset"
	"flint/internal/rf"
)

// TestCompactArenaStructure pins the compact encoding down on a hand-
// built forest: tree bases in roots, packed int16 child halves with
// ^class leaves, per-feature cut tables and rank keys.
func TestCompactArenaStructure(t *testing.T) {
	f := &rf.Forest{NumFeatures: 2, NumClasses: 3, Trees: []rf.Tree{
		{Nodes: []rf.Node{
			{Feature: 0, Split: 1.5, Left: 1, Right: 2},
			{Feature: rf.LeafFeature, Class: 1},
			{Feature: 1, Split: -2, Left: 3, Right: 4},
			{Feature: rf.LeafFeature, Class: 0},
			{Feature: rf.LeafFeature, Class: 2},
		}},
		{Nodes: []rf.Node{{Feature: rf.LeafFeature, Class: 2}}}, // leaf-only tree
	}}
	if ok, reason := Compactable(f); !ok {
		t.Fatalf("Compactable = false: %s", reason)
	}
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("variant = %v, want FlatCompact", e.Variant())
	}
	if got := len(e.kids); got != 2 {
		t.Fatalf("compact arena holds %d nodes, want 2", got)
	}
	if e.roots[0] != 0 {
		t.Errorf("tree 0 base = %d, want 0", e.roots[0])
	}
	if e.roots[1] != ^int32(2) {
		t.Errorf("leaf-only tree root = %d, want %d", e.roots[1], ^int32(2))
	}
	// Node 0: feature 0, rank 0, left = leaf class 1 (^1), right = rel 1.
	if e.feats16[0] != 0 || e.keys16[0] != 0 {
		t.Errorf("node 0 = (f%d, k%d), want (f0, k0)", e.feats16[0], e.keys16[0])
	}
	if e.kids[0] != packKids(^int32(1), 1) {
		t.Errorf("node 0 kids = %#x, want %#x", e.kids[0], packKids(^int32(1), 1))
	}
	// Node 1: feature 1, rank 0, both children leaves (classes 0 and 2).
	if e.feats16[1] != 1 || e.keys16[1] != 0 {
		t.Errorf("node 1 = (f%d, k%d), want (f1, k0)", e.feats16[1], e.keys16[1])
	}
	if e.kids[1] != packKids(^int32(0), ^int32(2)) {
		t.Errorf("node 1 kids = %#x, want %#x", e.kids[1], packKids(^int32(0), ^int32(2)))
	}
	// One cut per feature; both features are split on, so the pruned
	// index space is the identity over both columns.
	if len(e.cuts) != 2 || e.cutLo[0] != 0 || e.cutLo[1] != 1 || e.cutLo[2] != 2 {
		t.Errorf("cut tables = %v / %v, want one cut per feature", e.cuts, e.cutLo)
	}
	if e.numPruned != 2 || len(e.prunedOrig) != 2 || e.prunedOrig[0] != 0 || e.prunedOrig[1] != 1 {
		t.Errorf("pruned mapping = %d/%v, want identity over 2 features", e.numPruned, e.prunedOrig)
	}
	if got := e.PrunedFeatures(); got != 2 {
		t.Errorf("PrunedFeatures = %d, want 2", got)
	}
	// 8 bytes per node, plus the cut tables and the pruned-index map.
	if got, want := e.ArenaBytes(), 2*2+2*2+4*2+4*2+4*3+4*2; got != want {
		t.Errorf("ArenaBytes = %d, want %d", got, want)
	}
	for _, x := range [][]float32{{0, 0}, {2, -3}, {2, 5}, {-1, -2}, {1.5, -2}} {
		if got, want := e.Predict(x), f.Predict(x); got != want {
			t.Errorf("Predict(%v) = %d, want %d", x, got, want)
		}
	}
}

// TestCompactBitIdenticalAllWorkloads is the tentpole differential test:
// on every bundled workload, the compact arena must match the FLInt
// arena prediction-for-prediction through the single-row paths and the
// batch kernel at every interleave width.
func TestCompactBitIdenticalAllWorkloads(t *testing.T) {
	for _, ds := range dataset.Names() {
		ds := ds
		t.Run(ds, func(t *testing.T) {
			f, d := trainedForest(t, ds, 8, 6)
			grouped, err := cags.ReorderForest(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, forest := range []*rf.Forest{f, grouped} {
				ref, err := NewFlat(forest, FlatFLInt)
				if err != nil {
					t.Fatal(err)
				}
				e, err := NewFlat(forest, FlatCompact)
				if err != nil {
					t.Fatal(err)
				}
				if e.Variant() != FlatCompact {
					t.Fatalf("fell back to %v on a compactable forest", e.Variant())
				}
				want := make([]int32, d.Len())
				for i, x := range d.Features {
					want[i] = ref.Predict(x)
					if got := e.Predict(x); got != want[i] {
						t.Fatalf("row %d: single-row got %d want %d", i, got, want[i])
					}
					if got := e.PredictEncoded(core.EncodeFeatures32(nil, x)); got != want[i] {
						t.Fatalf("row %d: encoded got %d want %d", i, got, want[i])
					}
					if got := e.PredictPrecoded(core.PrecodeFeatures32(nil, x)); got != want[i] {
						t.Fatalf("row %d: precoded got %d want %d", i, got, want[i])
					}
				}
				for _, width := range []int{1, 2, 4, 8} {
					e.SetInterleave(width)
					got := e.PredictBatch(d.Features, nil, 2, 13)
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("width %d row %d: batch got %d want %d", width, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestCompactAdversarialRandomForests cross-checks the compact arena
// against the FLInt arena on randomly grown trees over the extreme
// split-value pool (signed zeros, subnormals, extremes), where the
// total-order rank encoding has to reproduce FLInt's -0.0 rewrite
// semantics exactly.
func TestCompactAdversarialRandomForests(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	splitPool := []float32{
		0, float32(math.Copysign(0, -1)), 1.5, -1.5,
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		math.MaxFloat32, -math.MaxFloat32, 3.25e-20, -7.5e12,
	}
	randTree := func(depth int) rf.Tree {
		var nodes []rf.Node
		var grow func(d int) int32
		grow = func(d int) int32 {
			me := int32(len(nodes))
			if d == 0 || rng.Float64() < 0.3 {
				nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(rng.Intn(3))})
				return me
			}
			nodes = append(nodes, rf.Node{
				Feature:      int32(rng.Intn(4)),
				Split:        splitPool[rng.Intn(len(splitPool))],
				LeftFraction: rng.Float64(),
			})
			l := grow(d - 1)
			r := grow(d - 1)
			nodes[me].Left = l
			nodes[me].Right = r
			return me
		}
		grow(depth)
		return rf.Tree{Nodes: nodes}
	}
	for trial := 0; trial < 30; trial++ {
		f := &rf.Forest{NumFeatures: 4, NumClasses: 3,
			Trees: []rf.Tree{randTree(6), randTree(6), randTree(6)}}
		ref, err := NewFlat(f, FlatFLInt)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewFlat(f, FlatCompact)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float32, 4)
		rows := make([][]float32, 0, 64)
		for probe := 0; probe < 64; probe++ {
			for j := range x {
				// Mix pool values verbatim (exercising exact-tie ranks)
				// with scaled perturbations.
				if rng.Intn(2) == 0 {
					x[j] = splitPool[rng.Intn(len(splitPool))]
				} else {
					x[j] = splitPool[rng.Intn(len(splitPool))] * float32(rng.NormFloat64())
				}
			}
			row := append([]float32(nil), x...)
			rows = append(rows, row)
			if got, want := e.Predict(row), ref.Predict(row); got != want {
				t.Fatalf("trial %d: compact got %d want %d for %v", trial, got, want, row)
			}
		}
		for _, width := range []int{2, 4, 8} {
			e.SetInterleave(width)
			got := e.PredictBatch(rows, nil, 1, 16)
			for i := range rows {
				if want := ref.Predict(rows[i]); got[i] != want {
					t.Fatalf("trial %d width %d row %d: got %d want %d", trial, width, i, got[i], want)
				}
			}
		}
	}
}

// featureChainTree builds a right-spine chain of n inner nodes over n
// distinct features baseFeat, baseFeat+1, ..., one split each.
func featureChainTree(n int, baseFeat int32) rf.Tree {
	nodes := make([]rf.Node, 0, 2*n+1)
	for k := 0; k < n; k++ {
		me := int32(len(nodes))
		nodes = append(nodes, rf.Node{Feature: baseFeat + int32(k), Split: 0.5, Left: me + 1, Right: me + 2})
		nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(k % 2)})
	}
	nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: 1})
	return rf.Tree{Nodes: nodes}
}

// TestCompactPrunedFeaturesDifferential drives the pruned-index
// indirection over a forest whose split-on features leave gaps: 40
// input columns, splits only on a scattered handful, so prunedOrig is
// a non-identity map and every quantizer path (float rows, encoded
// bits, precoded keys, all interleave widths) has to translate through
// it. Predictions must stay bit-identical to the FLInt arena.
func TestCompactPrunedFeaturesDifferential(t *testing.T) {
	const numFeatures = 40
	splitFeats := []int32{3, 7, 19, 20, 38} // gaps on both sides
	rng := rand.New(rand.NewSource(77))
	randTree := func(depth int) rf.Tree {
		var nodes []rf.Node
		var grow func(d int) int32
		grow = func(d int) int32 {
			me := int32(len(nodes))
			if d == 0 || rng.Float64() < 0.25 {
				nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(rng.Intn(3))})
				return me
			}
			nodes = append(nodes, rf.Node{
				Feature: splitFeats[rng.Intn(len(splitFeats))],
				Split:   float32(rng.NormFloat64()),
			})
			l := grow(d - 1)
			r := grow(d - 1)
			nodes[me].Left = l
			nodes[me].Right = r
			return me
		}
		grow(depth)
		return rf.Tree{Nodes: nodes}
	}
	f := &rf.Forest{NumFeatures: numFeatures, NumClasses: 3,
		Trees: []rf.Tree{randTree(7), randTree(7), randTree(7), randTree(7)}}
	ref, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", e.Variant())
	}
	if e.PrunedFeatures() != len(splitFeats) {
		t.Fatalf("PrunedFeatures = %d, want %d", e.PrunedFeatures(), len(splitFeats))
	}
	for p, want := range splitFeats {
		if e.prunedOrig[p] != want {
			t.Fatalf("prunedOrig = %v, want %v", e.prunedOrig, splitFeats)
		}
	}
	rows := make([][]float32, 96)
	for i := range rows {
		r := make([]float32, numFeatures)
		for j := range r {
			r[j] = float32(rng.NormFloat64())
		}
		rows[i] = r
	}
	want := make([]int32, len(rows))
	for i, x := range rows {
		want[i] = ref.Predict(x)
		if got := e.Predict(x); got != want[i] {
			t.Fatalf("row %d: single-row got %d want %d", i, got, want[i])
		}
		if got := e.PredictEncoded(core.EncodeFeatures32(nil, x)); got != want[i] {
			t.Fatalf("row %d: encoded got %d want %d", i, got, want[i])
		}
		if got := e.PredictPrecoded(core.PrecodeFeatures32(nil, x)); got != want[i] {
			t.Fatalf("row %d: precoded got %d want %d", i, got, want[i])
		}
	}
	for _, width := range []int{1, 2, 4, 8} {
		e.SetInterleave(width)
		got := e.PredictBatch(rows, nil, 2, 11)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("width %d row %d: batch got %d want %d", width, i, got[i], want[i])
			}
		}
	}
}

// chainTree builds a right-spine chain of n inner nodes on feature 0
// whose split values are base, base+1, ... — n distinct values per tree.
func chainTree(n int, base float32) rf.Tree {
	nodes := make([]rf.Node, 0, 2*n+1)
	for k := 0; k < n; k++ {
		me := int32(len(nodes))
		left := me + 1
		right := me + 2
		nodes = append(nodes, rf.Node{Feature: 0, Split: base + float32(k), Left: left, Right: right})
		nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(k % 2)})
	}
	nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: 2})
	return rf.Tree{Nodes: nodes}
}

// TestCompactFallbackTooManyCuts drives the distinct-split-count past
// 2^16 on one feature (spread over several trees so no other limit
// trips first) and checks the probe's reason plus NewFlat's graceful
// fallback to the 32-bit arena with identical predictions.
func TestCompactFallbackTooManyCuts(t *testing.T) {
	const perTree = 22000
	f := &rf.Forest{NumFeatures: 1, NumClasses: 3, Trees: []rf.Tree{
		chainTree(perTree, 0),
		chainTree(perTree, perTree),
		chainTree(perTree, 2*perTree),
	}}
	ok, reason := Compactable(f)
	if ok {
		t.Fatal("Compactable = true for 66000 distinct splits on one feature")
	}
	if !strings.Contains(reason, "distinct split values") {
		t.Fatalf("reason = %q, want the distinct-split limit", reason)
	}
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if e.Variant() != FlatFLInt {
		t.Fatalf("fallback variant = %v, want FlatFLInt", e.Variant())
	}
	ref, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float32{-1, 0, 3.5, 21999.5, 22000, 60000, 7e4} {
		x := []float32{v}
		if got, want := e.Predict(x), ref.Predict(x); got != want {
			t.Errorf("Predict(%v) = %d, want %d", v, got, want)
		}
	}
}

// TestCompactFallbackReasons covers the remaining encoding limits: per-
// tree inner-node count, class count and feature count.
func TestCompactFallbackReasons(t *testing.T) {
	big := &rf.Forest{NumFeatures: 1, NumClasses: 3, Trees: []rf.Tree{
		chainTree(maxCompactTreeNodes+1, 0),
	}}
	if ok, reason := Compactable(big); ok || !strings.Contains(reason, "inner nodes") {
		t.Errorf("per-tree limit: ok=%v reason=%q", ok, reason)
	}
	if e, err := NewFlat(big, FlatCompact); err != nil || e.Variant() != FlatFLInt {
		t.Errorf("per-tree fallback: variant=%v err=%v", e.Variant(), err)
	}

	classes := &rf.Forest{NumFeatures: 1, NumClasses: maxCompactClasses + 1, Trees: []rf.Tree{
		{Nodes: []rf.Node{{Feature: rf.LeafFeature, Class: 0}}},
	}}
	if ok, reason := Compactable(classes); ok || !strings.Contains(reason, "classes") {
		t.Errorf("class limit: ok=%v reason=%q", ok, reason)
	}

	// Input dimensionality alone no longer trips the feature limit: the
	// arena stores pruned indices, so a wide input splitting on one
	// column compacts fine.
	wide := &rf.Forest{NumFeatures: maxCompactFeatures + 1, NumClasses: 2, Trees: []rf.Tree{
		{Nodes: []rf.Node{
			{Feature: 0, Split: 1, Left: 1, Right: 2},
			{Feature: rf.LeafFeature, Class: 0},
			{Feature: rf.LeafFeature, Class: 1},
		}},
	}}
	if ok, reason := Compactable(wide); !ok {
		t.Errorf("wide sparse-split forest rejected: %q", reason)
	}
	if e, err := NewFlat(wide, FlatCompact); err != nil || e.Variant() != FlatCompact {
		t.Errorf("wide sparse-split forest: variant=%v err=%v", e.Variant(), err)
	} else if e.PrunedFeatures() != 1 {
		t.Errorf("wide sparse-split forest: PrunedFeatures=%d, want 1", e.PrunedFeatures())
	}

	// What does trip it is the number of features actually split on.
	const splitOn = maxCompactFeatures + 1
	perTree := (splitOn + 2) / 3
	featTrees := make([]rf.Tree, 0, 3)
	for b := 0; b < splitOn; b += perTree {
		n := perTree
		if b+n > splitOn {
			n = splitOn - b
		}
		featTrees = append(featTrees, featureChainTree(n, int32(b)))
	}
	features := &rf.Forest{NumFeatures: splitOn, NumClasses: 2, Trees: featTrees}
	if ok, reason := Compactable(features); ok || !strings.Contains(reason, "features") {
		t.Errorf("pruned feature limit: ok=%v reason=%q", ok, reason)
	}

	invalid := &rf.Forest{NumFeatures: 1, NumClasses: 2}
	if ok, reason := Compactable(invalid); ok || !strings.Contains(reason, "invalid forest") {
		t.Errorf("invalid forest: ok=%v reason=%q", ok, reason)
	}
}

// TestCompactZeroAllocSteadyState asserts the compact kernel's
// acceptance criterion: steady-state Batcher prediction over the
// compact arena allocates nothing at any interleave width, on both a
// <=8-class workload (stack votes) and an 11-class one (scratch votes).
func TestCompactZeroAllocSteadyState(t *testing.T) {
	for _, ds := range []string{"magic", "sensorless"} {
		ds := ds
		t.Run(ds, func(t *testing.T) {
			f, d := trainedForest(t, ds, 6, 8)
			e, err := NewFlat(f, FlatCompact)
			if err != nil {
				t.Fatal(err)
			}
			if e.Variant() != FlatCompact {
				t.Fatalf("fell back to %v", e.Variant())
			}
			for _, width := range []int{1, 2, 4, 8} {
				e.SetInterleave(width)
				b := NewBatcher(e, 2, 7)
				out := make([]int32, d.Len())
				b.Predict(d.Features, out) // warm up
				if avg := testing.AllocsPerRun(20, func() {
					b.Predict(d.Features, out)
				}); avg != 0 {
					t.Errorf("width=%d: compact Batcher.Predict allocates %.1f objects per batch, want 0", width, avg)
				}
				b.Close()
			}
			if f.NumFeatures <= maxStackQuantizedFeatures && f.NumClasses <= maxStackClasses {
				xi := core.EncodeFeatures32(nil, d.Features[0])
				if avg := testing.AllocsPerRun(100, func() {
					e.PredictEncoded(xi)
				}); avg != 0 {
					t.Errorf("compact PredictEncoded allocates %.1f objects, want 0", avg)
				}
			}
		})
	}
}

// TestInterleaveGatesAndCalibration exercises the runtime gate
// machinery: width selection from gates, the engine self-calibration
// pass and the host-wide Calibrate ladder (with a tiny budget — the
// test asserts structure, not the measured crossovers).
func TestInterleaveGatesAndCalibration(t *testing.T) {
	defer SetInterleaveGates(DefaultInterleaveGates())

	g := InterleaveGates{Min2: 100, Min4: 1000, Min8: 10000}
	for _, tc := range []struct{ bytes, want int }{
		{0, 1}, {99, 1}, {100, 2}, {999, 2}, {1000, 4}, {10000, 8}, {1 << 30, 8},
	} {
		if got := g.widthFor(FlatFLInt, tc.bytes); got != tc.want {
			t.Errorf("widthFor(FlatFLInt, %d) = %d, want %d", tc.bytes, got, tc.want)
		}
		// An all-zero compact set falls back to the AoS thresholds.
		if got := g.widthFor(FlatCompact, tc.bytes); got != tc.want {
			t.Errorf("legacy widthFor(FlatCompact, %d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
	g.CompactMin2, g.CompactMin4, g.CompactMin8 = 200, 2000, 20000
	for _, tc := range []struct{ bytes, want int }{
		{100, 1}, {200, 2}, {1999, 2}, {2000, 4}, {20000, 8},
	} {
		if got := g.widthFor(FlatCompact, tc.bytes); got != tc.want {
			t.Errorf("widthFor(FlatCompact, %d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}

	// Engines pick their width from the installed gates at construction.
	f, d := trainedForest(t, "wine", 6, 4)
	SetInterleaveGates(InterleaveGates{Min2: 1, Min4: math.MaxInt, Min8: math.MaxInt})
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	if e.Interleave() != 2 {
		t.Errorf("gated width = %d, want 2", e.Interleave())
	}

	// Self-calibration adopts a supported width and keeps predictions
	// intact.
	w := e.CalibrateInterleave(8 * time.Millisecond)
	if w != 1 && w != 2 && w != 4 && w != 8 {
		t.Fatalf("CalibrateInterleave chose %d", w)
	}
	if e.Interleave() != w {
		t.Errorf("Interleave() = %d after calibration to %d", e.Interleave(), w)
	}
	got := e.PredictBatch(d.Features, nil, 1, 0)
	for i, x := range d.Features {
		if want := f.Predict(x); got[i] != want {
			t.Fatalf("row %d diverges after calibration", i)
		}
	}

	// The compact kernel calibrates too; non-interleaving variants are
	// a no-op.
	ce, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if w := ce.CalibrateInterleave(8 * time.Millisecond); w != ce.Interleave() {
		t.Errorf("compact calibration: returned %d, engine at %d", w, ce.Interleave())
	}
	pe, err := NewFlat(f, FlatPrecoded)
	if err != nil {
		t.Fatal(err)
	}
	if w := pe.CalibrateInterleave(time.Millisecond); w != pe.Interleave() {
		t.Errorf("precoded calibration changed width to %d", w)
	}

	// The host-wide ladder: monotone gates made of ladder sizes or
	// MaxInt, installed for later constructions — one set per
	// interleaving arena layout.
	gates := Calibrate(40 * time.Millisecond)
	if gates != CurrentInterleaveGates() {
		t.Errorf("Calibrate did not install its result: %+v vs %+v", gates, CurrentInterleaveGates())
	}
	if gates.Min2 > gates.Min4 || gates.Min4 > gates.Min8 {
		t.Errorf("AoS gates not monotone: %+v", gates)
	}
	if gates.CompactMin2 > gates.CompactMin4 || gates.CompactMin4 > gates.CompactMin8 {
		t.Errorf("compact gates not monotone: %+v", gates)
	}
}

// TestCompactLargeClassCount sends the compact kernel through the
// scratch-vote path with a synthetic many-class forest, covering the
// int16 ^class halves away from the tiny class ids of the workloads.
func TestCompactLargeClassCount(t *testing.T) {
	const classes = 3000
	rng := rand.New(rand.NewSource(9))
	trees := make([]rf.Tree, 5)
	for ti := range trees {
		var nodes []rf.Node
		var grow func(d int) int32
		grow = func(d int) int32 {
			me := int32(len(nodes))
			if d == 0 {
				nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(rng.Intn(classes))})
				return me
			}
			nodes = append(nodes, rf.Node{Feature: int32(rng.Intn(3)), Split: float32(rng.NormFloat64())})
			l := grow(d - 1)
			r := grow(d - 1)
			nodes[me].Left = l
			nodes[me].Right = r
			return me
		}
		grow(6)
		trees[ti] = rf.Tree{Nodes: nodes}
	}
	f := &rf.Forest{NumFeatures: 3, NumClasses: classes, Trees: trees}
	ref, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", e.Variant())
	}
	rows := make([][]float32, 64)
	for i := range rows {
		rows[i] = []float32{float32(rng.NormFloat64()), float32(rng.NormFloat64()), float32(rng.NormFloat64())}
	}
	for _, width := range []int{1, 2, 4, 8} {
		e.SetInterleave(width)
		got := e.PredictBatch(rows, nil, 1, 8)
		for i := range rows {
			if want := ref.Predict(rows[i]); got[i] != want {
				t.Fatalf("width %d row %d: got %d want %d", width, i, got[i], want)
			}
		}
	}
}
