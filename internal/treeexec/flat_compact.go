package treeexec

import (
	"fmt"
	"math"
	"sort"

	"flint/internal/core"
	"flint/internal/ieee754"
	"flint/internal/rf"
)

// The compact structure-of-arrays arena (FlatCompact) stores every inner
// node in 8 bytes across three parallel slices:
//
//	keys16[i] uint16 — the split as a per-feature total-order rank
//	feats16[i] uint16 — the pruned feature index (dense renumbering of
//	                    the features the forest actually splits on)
//	kids[i]   int32  — packed child/leaf word: low half left, high half right
//
// The same three fields are additionally mirrored fused into one word
// per node, nodes64[i] = key16 | feat16<<16 | kids32<<32, so the
// branch-free kernel (flat_fused.go) resolves a whole walk step from a
// single load; a walk reads one encoding or the other, never both.
//
// The split key is not the float bit pattern but its *rank* among the
// feature's distinct split values across the whole forest, taken in
// FLInt total order (-0.0 rewritten to +0.0 first, exactly like the
// FLInt and precoded encoders). Ranking is exact, not lossy: at
// inference time each feature value x is mapped once per row to
//
//	q(x) = #{distinct split keys on this feature strictly below key(x)}
//
// by binary search over the per-feature cut table built at compile time,
// and then x <= s  <=>  q(x) <= rank(s) holds for every non-NaN x — the
// same predicate the 32-bit FLInt arena evaluates, so predictions are
// bit-identical. (Proof: with cuts c_0 < c_1 < ... and k = key(x), if
// k <= c_j then every cut below k is below c_j, so q <= j; if k > c_j
// then c_j itself is below k, so q >= j+1.)
//
// Each half of the kids word is an int16: a non-negative value is the
// child's tree-relative node index (the walk keeps the tree's arena base
// in a register), a negative value is ^class — the same leaf-free
// encoding as the 16-byte arena, narrowed. This is what bounds the
// encoding: per-tree inner-node counts, class ids, feature indices and
// per-feature distinct-split counts must all fit their fields, which
// Compactable probes and NewFlat falls back on.

// Compact encoding field limits. Each names the widest forest the 8-byte
// node can express; Compactable reports which one a forest exceeds.
const (
	// maxCompactTreeNodes bounds inner nodes per tree: child indices are
	// tree-relative int16 halves of the kids word.
	maxCompactTreeNodes = 1 << 15
	// maxCompactClasses bounds leaf classes: a leaf is ^class in an
	// int16 half, so class <= 32767.
	maxCompactClasses = 1 << 15
	// maxCompactFeatures bounds the number of features the forest
	// actually splits on: feats16 stores *pruned* feature indices (the
	// dense renumbering of split-on features), so the input
	// dimensionality itself is unbounded — only the split-on count must
	// fit the uint16 slice.
	maxCompactFeatures = 1 << 16
	// maxCompactCuts bounds distinct split values per feature: node keys
	// are ranks in [0, cuts) and quantized inputs are counts in
	// [0, cuts], both stored as uint16.
	maxCompactCuts = 1<<16 - 1
)

// Compactable reports whether a forest fits the compact SoA arena's
// 8-byte node encoding; when it does not, reason names the first limit
// exceeded. NewFlat with FlatCompact consults the same limits and falls
// back to the 32-bit FLInt arena, so callers that need to know *which*
// representation they got should probe first (or check Variant()).
func Compactable(f *rf.Forest) (bool, string) {
	if err := f.Validate(); err != nil {
		return false, fmt.Sprintf("invalid forest: %v", err)
	}
	cuts, reason := compactProbe(f)
	return cuts != nil, reason
}

// compactProbe checks the compact limits on an already-validated forest
// and, when they all hold, returns the per-feature cut tables so the
// builder does not collect them a second time. On failure it returns a
// nil table and the reason.
func compactProbe(f *rf.Forest) ([][]uint32, string) {
	if f.NumClasses > maxCompactClasses {
		return nil, fmt.Sprintf("%d classes exceed the int16 ^class leaf encoding (max %d)",
			f.NumClasses, maxCompactClasses)
	}
	for ti := range f.Trees {
		if inner := len(f.Trees[ti].Nodes) - f.Trees[ti].NumLeaves(); inner > maxCompactTreeNodes {
			return nil, fmt.Sprintf("tree %d has %d inner nodes, exceeding the int16 tree-relative child index (max %d)",
				ti, inner, maxCompactTreeNodes)
		}
	}
	cuts := collectCuts(f)
	pruned := 0
	for fi := range cuts {
		if len(cuts[fi]) > maxCompactCuts {
			return nil, fmt.Sprintf("feature %d has %d distinct split values, exceeding the uint16 total-order rank (max %d)",
				fi, len(cuts[fi]), maxCompactCuts)
		}
		if len(cuts[fi]) > 0 {
			pruned++
		}
	}
	// The arena stores pruned feature indices, so only features the
	// forest actually splits on count against the uint16 bound; a
	// million-dimensional input with a few thousand split-on features
	// still compacts.
	if pruned > maxCompactFeatures {
		return nil, fmt.Sprintf("forest splits on %d features, exceeding the uint16 pruned feature index (max %d)",
			pruned, maxCompactFeatures)
	}
	return cuts, ""
}

// collectCuts gathers the sorted distinct total-order keys of every
// feature's split values across the forest — the precoding table the
// rank encoding and the per-row quantization share.
func collectCuts(f *rf.Forest) [][]uint32 {
	cuts := make([][]uint32, f.NumFeatures)
	for ti := range f.Trees {
		for _, n := range f.Trees[ti].Nodes {
			if n.IsLeaf() {
				continue
			}
			cuts[n.Feature] = append(cuts[n.Feature], core.PrecodeSplit32(n.Split))
		}
	}
	for fi := range cuts {
		c := cuts[fi]
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		// Dedupe in place.
		w := 0
		for i, v := range c {
			if i == 0 || v != c[w-1] {
				c[w] = v
				w++
			}
		}
		cuts[fi] = c[:w]
	}
	return cuts
}

// buildCompact fills e with the compact SoA arena for f, reusing the
// cut tables the probe already collected. The caller has verified the
// forest against the compact limits.
//
// The cut tables are emitted *feature-pruned*: only features the forest
// actually splits on get a table, renumbered densely, and feats16
// stores the pruned index. Per-row quantization therefore costs one
// binary search per split-on feature rather than per input column — on
// wide sparse-split workloads (gas splits on a fraction of its 128
// features) that is most of the per-row overhead.
func (e *FlatForestEngine) buildCompact(f *rf.Forest, cuts [][]uint32) error {
	inner := 0
	for i := range f.Trees {
		inner += len(f.Trees[i].Nodes) - f.Trees[i].NumLeaves()
	}
	if inner > math.MaxInt32 {
		return fmt.Errorf("treeexec: forest has %d inner nodes, arena indices overflow int32", inner)
	}
	// prunedIdx maps original feature -> dense pruned index (or -1); the
	// engine keeps only the inverse (prunedOrig), which is all the
	// quantizers iterate.
	prunedIdx := make([]int32, f.NumFeatures)
	e.prunedOrig = make([]int32, 0, len(cuts))
	for fi, c := range cuts {
		if len(c) == 0 {
			prunedIdx[fi] = -1
			continue
		}
		prunedIdx[fi] = int32(len(e.prunedOrig))
		e.prunedOrig = append(e.prunedOrig, int32(fi))
	}
	e.numPruned = len(e.prunedOrig)
	e.cutLo = make([]int32, e.numPruned+1)
	total := 0
	for p, fi := range e.prunedOrig {
		e.cutLo[p] = int32(total)
		total += len(cuts[fi])
	}
	e.cutLo[e.numPruned] = int32(total)
	e.cuts = make([]uint32, 0, total)
	for _, fi := range e.prunedOrig {
		e.cuts = append(e.cuts, cuts[fi]...)
	}

	e.keys16 = make([]uint16, 0, inner)
	e.feats16 = make([]uint16, 0, inner)
	e.kids = make([]int32, 0, inner)
	e.nodes64 = make([]uint64, 0, inner)
	e.roots = make([]int32, len(f.Trees))

	var remap []int32 // tree-relative: inner index or ^class
	for ti := range f.Trees {
		src := f.Trees[ti].Nodes
		if cap(remap) < len(src) {
			remap = make([]int32, len(src))
		}
		remap = remap[:len(src)]
		next := int32(0)
		for i, n := range src {
			if n.IsLeaf() {
				remap[i] = ^n.Class
				continue
			}
			if !core.ValidFeature32(n.Split) {
				return fmt.Errorf("treeexec: tree %d node %d has NaN split", ti, i)
			}
			remap[i] = next
			next++
		}
		base := int32(len(e.kids))
		if remap[0] < 0 {
			e.roots[ti] = remap[0] // leaf-only tree: ^class
		} else {
			e.roots[ti] = base // root is the tree's first inner node
		}
		for _, n := range src {
			if n.IsLeaf() {
				continue
			}
			fc := cuts[n.Feature]
			key := core.PrecodeSplit32(n.Split)
			rank := sort.Search(len(fc), func(i int) bool { return fc[i] >= key })
			kids := packKids(remap[n.Left], remap[n.Right])
			e.keys16 = append(e.keys16, uint16(rank))
			e.feats16 = append(e.feats16, uint16(prunedIdx[n.Feature]))
			e.kids = append(e.kids, kids)
			e.nodes64 = append(e.nodes64, packNode64(uint16(rank), uint16(prunedIdx[n.Feature]), kids))
		}
	}
	return nil
}

// packKids packs two tree-relative child descriptors (inner index >= 0
// or ^class < 0) into one int32 word: left in the low half, right in the
// high half.
func packKids(left, right int32) int32 {
	return int32(uint32(uint16(int16(left))) | uint32(uint16(int16(right)))<<16)
}

// quantizeBits maps one row of raw float bit patterns (EncodeFeatures32
// output) into the arena's pruned rank space: dst[p] is the number of
// distinct split keys strictly below the row's value on pruned feature
// p, for the numPruned features the forest splits on — input columns no
// node reads are never searched. One pass per row, amortized over every
// node visit of the forest walk — the compact analog of the precoded
// variant's key transformation.
func (e *FlatForestEngine) quantizeBits(dst []uint16, xi []int32) {
	cuts, cutLo := e.cuts, e.cutLo
	for p, f := range e.prunedOrig {
		key := ieee754.TotalOrderKey32(uint32(xi[f]))
		lo, hi := cutLo[p], cutLo[p+1]
		// Binary search for the first cut >= key; the count of cuts
		// below key is that index. Overflow-safe midpoint: offsets can
		// approach MaxInt32 on maximal forests.
		for lo < hi {
			mid := lo + (hi-lo)/2
			if cuts[mid] >= key {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		dst[p] = uint16(lo - cutLo[p])
	}
}

// quantizeBlock quantizes a group of up to 8 float rows at once into
// consecutive numPruned-wide lanes of dst (row i fills
// dst[i*numPruned : (i+1)*numPruned]). The loop is feature-major: one
// pruned feature's cut-table segment is binary-searched for every row
// of the group while it is cache-hot, so the per-row quantization cost
// of the interleaved batch kernel amortizes across the group instead of
// re-fetching each feature's cuts per row.
func (e *FlatForestEngine) quantizeBlock(rows [][]float32, dst []uint16) {
	cuts, cutLo := e.cuts, e.cutLo
	nq := e.numPruned
	for p, f := range e.prunedOrig {
		lo0, hi0 := cutLo[p], cutLo[p+1]
		for i, x := range rows {
			key := ieee754.TotalOrderKey32(math.Float32bits(x[f]))
			lo, hi := lo0, hi0
			for lo < hi {
				mid := lo + (hi-lo)/2
				if cuts[mid] >= key {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			dst[i*nq+p] = uint16(lo - lo0)
		}
	}
}

// quantizeKeys is quantizeBits for inputs already in total-order key
// space (core.PrecodeFeatures32 output), letting PredictPrecoded serve
// the compact variant exactly.
func (e *FlatForestEngine) quantizeKeys(dst []uint16, keys []uint32) {
	cuts, cutLo := e.cuts, e.cutLo
	for p, f := range e.prunedOrig {
		key := keys[f]
		lo, hi := cutLo[p], cutLo[p+1]
		for lo < hi {
			mid := lo + (hi-lo)/2
			if cuts[mid] >= key {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		dst[p] = uint16(lo - cutLo[p])
	}
}

// classifyCompact walks one tree of the compact arena for one quantized
// row. root is the tree's arena base (or ^class for leaf-only trees);
// the cursor is the tree-relative node index carried in the kids halves.
func (e *FlatForestEngine) classifyCompact(q []uint16, root int32) int32 {
	if root < 0 {
		return ^root
	}
	keys, feats, kids := e.keys16, e.feats16, e.kids
	base := int(root)
	rel := 0
	for rel >= 0 {
		i := base + rel
		w := kids[i]
		if q[feats[i]] <= keys[i] {
			rel = int(int16(w))
		} else {
			rel = int(int16(w >> 16))
		}
	}
	return int32(^rel)
}

// classify2Compact walks one tree for two quantized rows with
// register-resident cursors, overlapping the two chains' node fetches
// exactly like classify2FLInt does on the 16-byte arena.
func (e *FlatForestEngine) classify2Compact(q0, q1 []uint16, root int32) (int32, int32) {
	if root < 0 {
		return ^root, ^root
	}
	keys, feats, kids := e.keys16, e.feats16, e.kids
	base := int(root)
	r0, r1 := 0, 0
	for r0 >= 0 && r1 >= 0 {
		i0, i1 := base+r0, base+r1
		w0, w1 := kids[i0], kids[i1]
		if q0[feats[i0]] <= keys[i0] {
			r0 = int(int16(w0))
		} else {
			r0 = int(int16(w0 >> 16))
		}
		if q1[feats[i1]] <= keys[i1] {
			r1 = int(int16(w1))
		} else {
			r1 = int(int16(w1 >> 16))
		}
	}
	if r0 >= 0 {
		return e.finishCompact(q0, base, r0), int32(^r1)
	}
	if r1 >= 0 {
		return int32(^r0), e.finishCompact(q1, base, r1)
	}
	return int32(^r0), int32(^r1)
}

// classify4Compact is the 4-way interleaved compact walk.
func (e *FlatForestEngine) classify4Compact(q0, q1, q2, q3 []uint16, root int32) (int32, int32, int32, int32) {
	if root < 0 {
		c := ^root
		return c, c, c, c
	}
	keys, feats, kids := e.keys16, e.feats16, e.kids
	base := int(root)
	r0, r1, r2, r3 := 0, 0, 0, 0
	for r0 >= 0 && r1 >= 0 && r2 >= 0 && r3 >= 0 {
		i0, i1, i2, i3 := base+r0, base+r1, base+r2, base+r3
		w0, w1, w2, w3 := kids[i0], kids[i1], kids[i2], kids[i3]
		if q0[feats[i0]] <= keys[i0] {
			r0 = int(int16(w0))
		} else {
			r0 = int(int16(w0 >> 16))
		}
		if q1[feats[i1]] <= keys[i1] {
			r1 = int(int16(w1))
		} else {
			r1 = int(int16(w1 >> 16))
		}
		if q2[feats[i2]] <= keys[i2] {
			r2 = int(int16(w2))
		} else {
			r2 = int(int16(w2 >> 16))
		}
		if q3[feats[i3]] <= keys[i3] {
			r3 = int(int16(w3))
		} else {
			r3 = int(int16(w3 >> 16))
		}
	}
	return e.finishCompact(q0, base, r0), e.finishCompact(q1, base, r1),
		e.finishCompact(q2, base, r2), e.finishCompact(q3, base, r3)
}

// classify8Compact is the 8-way interleaved compact walk. Classes are
// written into out to keep the signature manageable.
func (e *FlatForestEngine) classify8Compact(q *[8][]uint16, root int32, out *[8]int32) {
	if root < 0 {
		for i := range out {
			out[i] = ^root
		}
		return
	}
	keys, feats, kids := e.keys16, e.feats16, e.kids
	base := int(root)
	r0, r1, r2, r3 := 0, 0, 0, 0
	r4, r5, r6, r7 := 0, 0, 0, 0
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	q4, q5, q6, q7 := q[4], q[5], q[6], q[7]
	for r0 >= 0 && r1 >= 0 && r2 >= 0 && r3 >= 0 && r4 >= 0 && r5 >= 0 && r6 >= 0 && r7 >= 0 {
		i0, i1, i2, i3 := base+r0, base+r1, base+r2, base+r3
		i4, i5, i6, i7 := base+r4, base+r5, base+r6, base+r7
		w0, w1, w2, w3 := kids[i0], kids[i1], kids[i2], kids[i3]
		w4, w5, w6, w7 := kids[i4], kids[i5], kids[i6], kids[i7]
		if q0[feats[i0]] <= keys[i0] {
			r0 = int(int16(w0))
		} else {
			r0 = int(int16(w0 >> 16))
		}
		if q1[feats[i1]] <= keys[i1] {
			r1 = int(int16(w1))
		} else {
			r1 = int(int16(w1 >> 16))
		}
		if q2[feats[i2]] <= keys[i2] {
			r2 = int(int16(w2))
		} else {
			r2 = int(int16(w2 >> 16))
		}
		if q3[feats[i3]] <= keys[i3] {
			r3 = int(int16(w3))
		} else {
			r3 = int(int16(w3 >> 16))
		}
		if q4[feats[i4]] <= keys[i4] {
			r4 = int(int16(w4))
		} else {
			r4 = int(int16(w4 >> 16))
		}
		if q5[feats[i5]] <= keys[i5] {
			r5 = int(int16(w5))
		} else {
			r5 = int(int16(w5 >> 16))
		}
		if q6[feats[i6]] <= keys[i6] {
			r6 = int(int16(w6))
		} else {
			r6 = int(int16(w6 >> 16))
		}
		if q7[feats[i7]] <= keys[i7] {
			r7 = int(int16(w7))
		} else {
			r7 = int(int16(w7 >> 16))
		}
	}
	out[0] = e.finishCompact(q0, base, r0)
	out[1] = e.finishCompact(q1, base, r1)
	out[2] = e.finishCompact(q2, base, r2)
	out[3] = e.finishCompact(q3, base, r3)
	out[4] = e.finishCompact(q4, base, r4)
	out[5] = e.finishCompact(q5, base, r5)
	out[6] = e.finishCompact(q6, base, r6)
	out[7] = e.finishCompact(q7, base, r7)
}

// finishCompact completes one chain after the interleaved loop exits
// with this cursor still on an inner node.
func (e *FlatForestEngine) finishCompact(q []uint16, base, rel int) int32 {
	if rel < 0 {
		return int32(^rel)
	}
	keys, feats, kids := e.keys16, e.feats16, e.kids
	for rel >= 0 {
		i := base + rel
		w := kids[i]
		if q[feats[i]] <= keys[i] {
			rel = int(int16(w))
		} else {
			rel = int(int16(w >> 16))
		}
	}
	return int32(^rel)
}

// predictBlockCompact classifies one block of rows over the compact
// arena, quantizing groups of width rows at a time into s.q
// (feature-major, so each pruned feature's cut segment amortizes across
// the group — see quantizeBlock) and walking them with the matching
// interleaved kernel. Lane strides are numPruned, not numFeatures: the
// walk only ever consults ranks of split-on features.
func (e *FlatForestEngine) predictBlockCompact(rows [][]float32, out []int32, s *flatScratch, width int) {
	nq := e.numPruned
	nc := e.numClasses
	b := 0
	if width >= 8 {
		var q8 [8][]uint16
		for i := range q8 {
			q8[i] = s.q[i*nq : (i+1)*nq]
		}
		var cls [8]int32
		for ; b+8 <= len(rows); b += 8 {
			e.quantizeBlock(rows[b:b+8], s.q)
			var stack [8][maxStackClasses]int32
			lanes := voteLanes(&stack, s.votes, nc, 8)
			for _, root := range e.roots {
				e.classify8Compact(&q8, root, &cls)
				lanes[0][cls[0]]++
				lanes[1][cls[1]]++
				lanes[2][cls[2]]++
				lanes[3][cls[3]]++
				lanes[4][cls[4]]++
				lanes[5][cls[5]]++
				lanes[6][cls[6]]++
				lanes[7][cls[7]]++
			}
			for i := 0; i < 8; i++ {
				out[b+i] = rf.Argmax(lanes[i])
			}
		}
	}
	if width >= 4 {
		q0, q1 := s.q[0*nq:1*nq], s.q[1*nq:2*nq]
		q2, q3 := s.q[2*nq:3*nq], s.q[3*nq:4*nq]
		for ; b+4 <= len(rows); b += 4 {
			e.quantizeBlock(rows[b:b+4], s.q)
			var stack [8][maxStackClasses]int32
			lanes := voteLanes(&stack, s.votes, nc, 4)
			for _, root := range e.roots {
				c0, c1, c2, c3 := e.classify4Compact(q0, q1, q2, q3, root)
				lanes[0][c0]++
				lanes[1][c1]++
				lanes[2][c2]++
				lanes[3][c3]++
			}
			out[b] = rf.Argmax(lanes[0])
			out[b+1] = rf.Argmax(lanes[1])
			out[b+2] = rf.Argmax(lanes[2])
			out[b+3] = rf.Argmax(lanes[3])
		}
	}
	if width >= 2 {
		q0, q1 := s.q[0*nq:1*nq], s.q[1*nq:2*nq]
		for ; b+2 <= len(rows); b += 2 {
			e.quantizeBlock(rows[b:b+2], s.q)
			var stack [8][maxStackClasses]int32
			lanes := voteLanes(&stack, s.votes, nc, 2)
			for _, root := range e.roots {
				c0, c1 := e.classify2Compact(q0, q1, root)
				lanes[0][c0]++
				lanes[1][c1]++
			}
			out[b] = rf.Argmax(lanes[0])
			out[b+1] = rf.Argmax(lanes[1])
		}
	}
	q := s.q[:nq]
	for ; b < len(rows); b++ {
		e.quantizeBlock(rows[b:b+1], q)
		var stack [8][maxStackClasses]int32
		lanes := voteLanes(&stack, s.votes, nc, 1)
		for _, root := range e.roots {
			lanes[0][e.classifyCompact(q, root)]++
		}
		out[b] = rf.Argmax(lanes[0])
	}
}
