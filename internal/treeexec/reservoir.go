package treeexec

import (
	"sync"
	"sync/atomic"
)

// rowReservoir maintains a fixed-capacity uniform random sample of the
// rows a Batcher serves, so recalibration (and calibration persistence)
// can replay measured production traffic instead of synthetic rows.
//
// The sampling scheme is Vitter's Algorithm R over a stride-decimated
// view of the served stream: each stream position is "considered" with
// independent probability 1/stride — decided by a stateless hash of the
// position itself, so concurrent callers share no cursor and nothing
// can stall or double-count — the first capacity considered rows fill
// the reservoir, and each later considered row t replaces a uniformly
// random slot with probability capacity/t. Decimation keeps the Predict
// path cheap: one atomic add per call reserves the position range, the
// per-row cost is a few arithmetic ops, and the mutex plus the row copy
// are paid only on the (~1/stride) considered rows. The hash decision
// (rather than fixed stride multiples) matters: a fixed phase aliases
// with batch-aligned traffic — e.g. 256-row request batches under
// stride 32 would only ever consider within-batch offsets 0,32,...,224,
// so rows whose content correlates with batch position (tail-appended
// outliers, say) would never be sampled.
//
// All row storage is pre-allocated at construction (capacity x features
// float32 slots), and admission copies into a slot in place, so sampling
// never allocates and the Batcher's zero-allocs-per-op steady state
// survives with sampling enabled.
type rowReservoir struct {
	capacity int
	features int
	stride   uint64

	// seen counts every row offered on the Predict path. One atomic add
	// per Predict call reserves the call's position range, so concurrent
	// callers own disjoint ranges and never consider a position twice.
	seen atomic.Uint64

	mu         sync.Mutex
	data       []float32 // capacity contiguous feature-vector slots
	filled     int       // slots holding a sampled row
	considered uint64    // Algorithm R's stream index t
	rng        uint64    // xorshift64 state, guarded by mu
}

func newRowReservoir(capacity, features int, stride uint64) *rowReservoir {
	if stride == 0 {
		stride = 1
	}
	return &rowReservoir{
		capacity: capacity,
		features: features,
		stride:   stride,
		data:     make([]float32, capacity*features),
		rng:      0x9E3779B97F4A7C15,
	}
}

// nextRand advances the xorshift64 state; callers hold mu.
func (r *rowReservoir) nextRand() uint64 {
	x := r.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	return x
}

// splitmix64 is a stateless position hash (the SplitMix64 finalizer):
// it turns a stream position into the independent considered/skip
// decision, so the fast path touches no shared mutable randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// observe offers a batch of rows (already validated to the reservoir's
// feature width). Nil receivers and empty batches are no-ops, so the
// caller needs no sampling-enabled branch. Each position is considered
// independently (hash residue test), so the per-row cost is a handful
// of integer ops — negligible against the forest walk each row pays.
func (r *rowReservoir) observe(rows [][]float32) {
	if r == nil || len(rows) == 0 {
		return
	}
	end := r.seen.Add(uint64(len(rows)))
	start := end - uint64(len(rows))
	for pos := start; pos < end; pos++ {
		if splitmix64(pos)%r.stride == 0 {
			r.admit(rows[pos-start])
		}
	}
}

// admit runs one Algorithm R step for a considered row, copying it into
// its slot when selected.
func (r *rowReservoir) admit(row []float32) {
	r.mu.Lock()
	r.considered++
	slot := -1
	if r.filled < r.capacity {
		slot = r.filled
		r.filled++
	} else if j := r.nextRand() % r.considered; j < uint64(r.capacity) {
		slot = int(j)
	}
	if slot >= 0 {
		copy(r.data[slot*r.features:(slot+1)*r.features], row)
	}
	r.mu.Unlock()
}

// snapshot returns a deep copy of the sampled rows: fresh backing
// storage, nothing aliased to the reservoir's slots. That copy is a
// contract, not an implementation detail — the drift detector holds a
// snapshot as its baseline for arbitrarily many later fill cycles, and
// persistence serializes one asynchronously — so a returned row can
// never be mutated by subsequent admissions (and, symmetrically,
// callers writing into a snapshot cannot corrupt the sample). Pinned by
// TestReservoirSnapshotIsDeepCopy. It allocates; callers are off the
// serving path (recalibration, drift checks, persistence).
func (r *rowReservoir) snapshot() [][]float32 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled == 0 {
		return nil
	}
	backing := make([]float32, r.filled*r.features)
	copy(backing, r.data[:r.filled*r.features])
	rows := make([][]float32, r.filled)
	for i := range rows {
		rows[i] = backing[i*r.features : (i+1)*r.features]
	}
	return rows
}

// stats returns the current fill level and the total rows observed.
func (r *rowReservoir) stats() (sampled int, seen uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	sampled = r.filled
	r.mu.Unlock()
	return sampled, r.seen.Load()
}

// seedRows pre-populates the reservoir with rows of the right width
// (e.g. the persisted sample of a previous deployment), running each
// through the same Algorithm R step as live traffic so a seed larger
// than the capacity still yields a uniform sample. Returns how many rows
// were accepted into the considered stream.
func (r *rowReservoir) seedRows(rows [][]float32) int {
	if r == nil {
		return 0
	}
	n := 0
	for _, row := range rows {
		if len(row) != r.features {
			continue
		}
		r.admit(row)
		n++
	}
	return n
}
