//go:build !race

package treeexec

const raceEnabled = false
