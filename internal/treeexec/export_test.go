package treeexec

import (
	"strings"
	"testing"

	"flint/internal/core"
	"flint/internal/ieee754"
	"flint/internal/rf"
)

// exportFixture is the hand-built forest from TestCompactArenaStructure:
// two features, three classes, one real tree plus a leaf-only tree.
func exportFixture() *rf.Forest {
	return &rf.Forest{NumFeatures: 2, NumClasses: 3, Trees: []rf.Tree{
		{Nodes: []rf.Node{
			{Feature: 0, Split: 1.5, Left: 1, Right: 2},
			{Feature: rf.LeafFeature, Class: 1},
			{Feature: 1, Split: -2, Left: 3, Right: 4},
			{Feature: rf.LeafFeature, Class: 0},
			{Feature: rf.LeafFeature, Class: 2},
		}},
		{Nodes: []rf.Node{{Feature: rf.LeafFeature, Class: 2}}},
	}}
}

func TestExportCompactRequiresCompactVariant(t *testing.T) {
	f := exportFixture()
	for _, v := range []FlatVariant{FlatFLInt, FlatFloat32, FlatPrecoded} {
		e, err := NewFlat(f, v)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.ExportCompact(); err == nil {
			t.Errorf("ExportCompact on %v: want error, got nil", v)
		} else if !strings.Contains(err.Error(), v.String()) {
			t.Errorf("ExportCompact error %q does not name the variant %v", err, v)
		}
	}
}

func TestExportCompactTables(t *testing.T) {
	f := exportFixture()
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.ExportCompact()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFeatures != 2 || m.NumClasses != 3 {
		t.Errorf("dims = (%d, %d), want (2, 3)", m.NumFeatures, m.NumClasses)
	}
	if m.NumPruned() != 2 || m.NumTrees() != 2 {
		t.Errorf("NumPruned/NumTrees = %d/%d, want 2/2", m.NumPruned(), m.NumTrees())
	}
	if len(m.Nodes64) != 2 || m.Nodes64[0] != e.nodes64[0] || m.Nodes64[1] != e.nodes64[1] {
		t.Errorf("Nodes64 = %#x, want the engine's fused words %#x", m.Nodes64, e.nodes64)
	}
	if m.Roots[0] != 0 || m.Roots[1] != ^int32(2) {
		t.Errorf("Roots = %v, want [0 %d]", m.Roots, ^int32(2))
	}
	if len(m.Cuts) != 2 || len(m.CutLo) != 3 || len(m.PrunedOrig) != 2 {
		t.Errorf("cut tables = %v / %v / %v, want one cut per feature over 2 pruned columns",
			m.Cuts, m.CutLo, m.PrunedOrig)
	}
	// 2 nodes * 8 + 2 cuts * 4 + 3 offsets * 4 + 2 pruned * 4 + 2 roots * 4.
	if got, want := m.TableBytes(), 16+8+12+8+8; got != want {
		t.Errorf("TableBytes = %d, want %d", got, want)
	}

	// The export is a snapshot: corrupting it must not reach the arena.
	before := e.Predict([]float32{2, 5})
	m.Nodes64[0] = 0
	m.Cuts[0] = 0xffffffff
	m.Roots[0] = ^int32(0)
	if got := e.Predict([]float32{2, 5}); got != before {
		t.Fatalf("mutating the exported model changed the engine: %d -> %d", before, got)
	}
}

// replayModel is an independent realization of the CompactModel contract
// documented on the type: quantize via binary search over the cut
// tables, walk via the shift-select step, majority vote. It shares no
// code with the fused kernel, so agreement here means the exported
// tables plus the documented semantics are sufficient to reproduce the
// engine — exactly what an emitter relies on.
func replayModel(m *CompactModel, xi []int32) int32 {
	q := make([]uint16, m.NumPruned())
	for p := range q {
		key := ieee754.TotalOrderKey32(uint32(xi[m.PrunedOrig[p]]))
		lo, hi := int(m.CutLo[p]), int(m.CutLo[p+1])
		n := 0
		for lo < hi { // count cuts strictly below key
			mid := (lo + hi) / 2
			if m.Cuts[mid] < key {
				n = mid - int(m.CutLo[p]) + 1
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		q[p] = uint16(n)
	}
	counts := make([]int32, m.NumClasses)
	for _, root := range m.Roots {
		rel := 0
		if root >= 0 {
			base := int(root)
			for rel >= 0 {
				w := m.Nodes64[base+rel]
				b := (uint32(uint16(w)) - uint32(q[uint16(w>>16)])) >> 31
				rel = int(int16(uint32(w>>32) >> (b << 4)))
			}
			counts[^rel]++
		} else {
			counts[^root]++
		}
	}
	best := int32(0)
	for c := 1; c < len(counts); c++ {
		if counts[c] > counts[best] {
			best = int32(c)
		}
	}
	return best
}

func TestExportCompactReplayMatchesEngine(t *testing.T) {
	f, d := trainedForest(t, "magic", 8, 6)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("fell back to %v on a compactable forest", e.Variant())
	}
	m, err := e.ExportCompact()
	if err != nil {
		t.Fatal(err)
	}
	var enc []int32
	for i, x := range d.Features {
		enc = core.EncodeFeatures32(enc, x)
		want := e.PredictEncoded(enc)
		if got := replayModel(m, enc); got != want {
			t.Fatalf("row %d: replayed model got %d, engine got %d", i, got, want)
		}
	}
}
