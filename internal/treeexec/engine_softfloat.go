package treeexec

import (
	"flint/internal/core"
	"flint/internal/rf"
	"flint/internal/softfloat"
)

// SoftFloatEngine executes the forest with software IEEE comparisons,
// modeling a naive float-based tree on a device without a floating point
// unit — the paper's embedded motivation (experiment E9). Feature vectors
// and splits are carried as raw bit patterns, as an FPU-less target would
// hold them in integer registers, and every node comparison calls the
// soft-float LE routine.
type SoftFloatEngine struct {
	trees      []tree
	numClasses int
	numFeat    int
}

// NumFeatures returns the input dimensionality the engine was compiled
// for.
func (e *SoftFloatEngine) NumFeatures() int { return e.numFeat }

// NewSoftFloat compiles a forest into a SoftFloatEngine.
func NewSoftFloat(f *rf.Forest) (*SoftFloatEngine, error) {
	trees, err := compileForest(f, func(s float32) int32 {
		return int32(mustBits(s))
	})
	if err != nil {
		return nil, err
	}
	return &SoftFloatEngine{trees: trees, numClasses: f.NumClasses, numFeat: f.NumFeatures}, nil
}

func mustBits(s float32) uint32 {
	// compileForest already rejected NaN splits.
	return uint32(core.MustEncodeSplit32(s).Key)
}

// PredictTreeEncoded returns tree t's class for raw float bit patterns
// (core.EncodeFeatures32 output).
func (e *SoftFloatEngine) PredictTreeEncoded(t int, xi []int32) int32 {
	nodes := e.trees[t].nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.feature < 0 {
			return n.left
		}
		if softfloat.LE32(uint32(xi[n.feature]), uint32(n.key)) {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// PredictEncoded returns the majority-vote class for raw bit patterns.
func (e *SoftFloatEngine) PredictEncoded(xi []int32) int32 {
	var stack [maxStackClasses]int32
	counts := voteSlice(&stack, e.numClasses)
	for t := range e.trees {
		counts[e.PredictTreeEncoded(t, xi)]++
	}
	return rf.Argmax(counts)
}

// Predict reinterprets x and classifies it.
func (e *SoftFloatEngine) Predict(x []float32) int32 {
	return e.PredictEncoded(core.EncodeFeatures32(make([]int32, 0, 64), x))
}

// Name identifies the engine in benchmark output.
func (e *SoftFloatEngine) Name() string { return "softfloat" }
