package treeexec

import (
	"sync"
	"testing"
	"time"
)

// TestReservoirFillAndReplace drives Algorithm R directly: the first
// capacity considered rows fill the reservoir in order, later rows
// replace uniformly, and a long stream leaves the sample drawing from
// its whole range rather than pinning to the prefix.
func TestReservoirFillAndReplace(t *testing.T) {
	const capacity, features = 16, 2
	r := newRowReservoir(capacity, features, 1)
	row := func(i int) []float32 { return []float32{float32(i), float32(-i)} }

	for i := 0; i < capacity; i++ {
		r.observe([][]float32{row(i)})
	}
	if sampled, seen := r.stats(); sampled != capacity || seen != capacity {
		t.Fatalf("after fill: sampled %d seen %d, want %d/%d", sampled, seen, capacity, capacity)
	}
	for i, s := range r.snapshot() {
		if s[0] != float32(i) {
			t.Fatalf("fill stage out of order: slot %d holds %v", i, s)
		}
	}

	const stream = 100 * capacity
	for i := capacity; i < stream; i++ {
		r.observe([][]float32{row(i)})
	}
	snap := r.snapshot()
	if len(snap) != capacity {
		t.Fatalf("snapshot holds %d rows, want %d", len(snap), capacity)
	}
	late := 0
	for _, s := range snap {
		if s[1] != -s[0] {
			t.Fatalf("row torn or miscopied: %v", s)
		}
		if int(s[0]) >= stream/2 {
			late++
		}
	}
	// A uniform sample of [0, stream) lands ~half its rows in the upper
	// half; a reservoir stuck on its prefix would have none there.
	if late == 0 || late == capacity {
		t.Errorf("sample is not spread over the stream: %d/%d rows from the upper half", late, capacity)
	}
}

// TestReservoirStride pins the jittered decimation: the considered rate
// averages ~1/stride regardless of how the stream is cut into batches,
// and — the anti-aliasing property — considered positions are not
// locked to fixed within-batch offsets even when the batch size is a
// multiple of the stride (the scenario where a fixed-phase scheme would
// permanently skip most offsets).
func TestReservoirStride(t *testing.T) {
	const stride, batchRows, total = 32, 256, 16384
	r := newRowReservoir(total, 1, stride) // capacity >= considered: keep every considered row
	pos := 0
	for pos < total {
		batch := make([][]float32, batchRows)
		for i := range batch {
			batch[i] = []float32{float32(pos)}
			pos++
		}
		r.observe(batch)
	}
	sampled, seen := r.stats()
	if seen != total {
		t.Fatalf("seen %d, want %d", seen, total)
	}
	// Each position is considered independently with probability
	// 1/stride (geometric gaps, mean stride); with ~512 expected
	// considered rows the rate is concentrated near total/stride.
	if sampled < total/stride/2 || sampled > total/stride*2 {
		t.Fatalf("considered %d rows of %d at stride %d, want ~%d", sampled, total, stride, total/stride)
	}
	offsets := map[int]bool{}
	for _, row := range r.snapshot() {
		offsets[int(row[0])%stride] = true
	}
	// A fixed-phase scheme under stride-aligned batches would pin every
	// considered position to offset 0 mod stride forever.
	if len(offsets) < 4 {
		t.Errorf("considered positions cover only offsets %v mod %d — stride phase aliases with the batch size", offsets, stride)
	}
}

// TestReservoirConcurrentLiveness is the regression test for the
// cursor-based decimation's stall: two callers with interleaved
// position ranges could abandon the cursor in a range nobody would ever
// revisit, freezing sampling forever. The stateless per-position
// decision cannot stall: sampling must keep admitting rows no matter
// how ranges interleave across goroutines.
func TestReservoirConcurrentLiveness(t *testing.T) {
	const stride, rounds, batchRows = 8, 200, 64
	r := newRowReservoir(rounds*batchRows, 1, stride)
	batch := make([][]float32, batchRows)
	for i := range batch {
		batch[i] = []float32{1}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r.observe(batch)
			}
		}()
	}
	wg.Wait()
	sampled, seen := r.stats()
	if seen != 4*rounds*batchRows {
		t.Fatalf("seen %d, want %d", seen, 4*rounds*batchRows)
	}
	want := int(seen) / stride
	if sampled < want/2 || sampled > want*2 {
		t.Errorf("concurrent sampling admitted %d rows of %d served, want ~%d — decimation stalled or overshot", sampled, seen, want)
	}
}

// TestBatcherSamplingZeroAlloc asserts the tentpole's hot-path
// constraint: with reservoir sampling enabled (stride 1, so every row
// is considered — the worst case), the Batcher steady state still
// allocates nothing per Predict call.
func TestBatcherSamplingZeroAlloc(t *testing.T) {
	f, d := trainedForest(t, "magic", 6, 5)
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcherSampled(e, 2, 8, 32, 1)
	defer b.Close()
	out := make([]int32, d.Len())
	b.Predict(d.Features, out) // warm the token pool
	if avg := testing.AllocsPerRun(20, func() {
		out = b.Predict(d.Features, out[:0])
	}); avg != 0 {
		t.Errorf("sampling Predict steady state allocates %.1f objects per call, want 0", avg)
	}
	if sampled, seen := b.SampleStats(); sampled == 0 || seen == 0 {
		t.Errorf("reservoir did not sample: %d rows of %d seen", sampled, seen)
	}
}

// TestBatcherRecalibrateUnderTraffic recalibrates repeatedly while
// Predict callers hammer the pool: the winning (width, kernel) pair
// must install atomically (run under -race to pin the data-race half
// of the contract — on this compact engine each pass times both the
// branchy and fused kernels and may flip between them mid-traffic),
// predictions must stay correct throughout, and the adopted width must
// be a supported one sourced from the reservoir's rows.
func TestBatcherRecalibrateUnderTraffic(t *testing.T) {
	f, d := trainedForest(t, "magic", 7, 6)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int32, d.Len())
	for i, x := range d.Features {
		want[i] = f.Predict(x)
	}
	b := NewBatcherSampled(e, 2, 4, 64, 1)
	defer b.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out []int32
			for {
				select {
				case <-stop:
					return
				default:
				}
				out = b.Predict(d.Features, out)
				for i := range out {
					if out[i] != want[i] {
						errs <- "prediction diverged during recalibration"
						return
					}
				}
			}
		}()
	}
	// Let the reservoir accumulate before the first recalibration —
	// otherwise all three passes may beat the first Predict and fall
	// back to synthetic rows.
	for sampled, _ := b.SampleStats(); sampled == 0; sampled, _ = b.SampleStats() {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		w := b.Recalibrate(4 * time.Millisecond)
		if w != 1 && w != 2 && w != 4 && w != 8 {
			t.Errorf("Recalibrate chose unsupported width %d", w)
		}
		if w != e.Interleave() {
			t.Errorf("Recalibrate returned %d but engine holds %d", w, e.Interleave())
		}
		if k := e.Kernel(); k != KernelBranchy && k != KernelFused {
			t.Errorf("Recalibrate installed unsupported kernel %d", k)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if src := e.CalibrationSource(); src != "rows" {
		t.Errorf("calibration source = %q after reservoir recalibration, want \"rows\"", src)
	}
}

// TestBatcherSeedSampleWarmStart seeds a fresh Batcher's reservoir with
// persisted rows: Recalibrate must then run on real rows (source
// "rows") before any traffic has been served.
func TestBatcherSeedSampleWarmStart(t *testing.T) {
	f, d := trainedForest(t, "wine", 5, 4)
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, 1, 0)
	defer b.Close()
	seed := append([][]float32{{1, 2}}, d.Features[:10]...) // one malformed row
	if n := b.SeedSample(seed); n != 10 {
		t.Fatalf("SeedSample accepted %d rows, want 10", n)
	}
	if sampled, _ := b.SampleStats(); sampled != 10 {
		t.Fatalf("reservoir holds %d rows after seeding, want 10", sampled)
	}
	b.Recalibrate(2 * time.Millisecond)
	if src := e.CalibrationSource(); src != "rows" {
		t.Errorf("calibration source = %q after seeded recalibration, want \"rows\"", src)
	}
}

// TestBatcherSamplingDisabled covers the opt-out: a negative capacity
// builds no reservoir, the sampling accessors degrade gracefully, and
// Recalibrate falls back to synthetic rows.
func TestBatcherSamplingDisabled(t *testing.T) {
	f, d := trainedForest(t, "wine", 5, 4)
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcherSampled(e, 1, 0, -1, 0)
	defer b.Close()
	b.Predict(d.Features, nil)
	if sampled, seen := b.SampleStats(); sampled != 0 || seen != 0 {
		t.Errorf("disabled sampling recorded %d/%d rows", sampled, seen)
	}
	if snap := b.SampleSnapshot(); snap != nil {
		t.Errorf("disabled sampling snapshot = %v, want nil", snap)
	}
	if n := b.SeedSample(d.Features); n != 0 {
		t.Errorf("disabled sampling accepted %d seed rows", n)
	}
	if w := b.Recalibrate(2 * time.Millisecond); w != 1 && w != 2 && w != 4 && w != 8 {
		t.Errorf("Recalibrate without a reservoir chose %d", w)
	}
	if src := e.CalibrationSource(); src != "synthetic" {
		t.Errorf("calibration source = %q without a reservoir, want \"synthetic\"", src)
	}
}
