package treeexec

import (
	"math"
	"math/rand"
	"testing"

	"flint/internal/cags"
	"flint/internal/core"
	"flint/internal/rf"
)

var flatVariants = []FlatVariant{FlatFLInt, FlatFloat32, FlatPrecoded, FlatCompact}

// TestFlatArenaStructure checks the compiled arena invariants: inner
// nodes only, contiguous per-tree segments, negative indices decoding to
// classes, leaf-only trees folded into the root slot.
func TestFlatArenaStructure(t *testing.T) {
	f := &rf.Forest{NumFeatures: 2, NumClasses: 3, Trees: []rf.Tree{
		{Nodes: []rf.Node{
			{Feature: 0, Split: 1.5, Left: 1, Right: 2},
			{Feature: rf.LeafFeature, Class: 1},
			{Feature: 1, Split: -2, Left: 3, Right: 4},
			{Feature: rf.LeafFeature, Class: 0},
			{Feature: rf.LeafFeature, Class: 2},
		}},
		{Nodes: []rf.Node{{Feature: rf.LeafFeature, Class: 2}}}, // leaf-only tree
	}}
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(e.arena), 2; got != want {
		t.Fatalf("arena holds %d nodes, want %d inner nodes", got, want)
	}
	if e.roots[0] != 0 {
		t.Errorf("tree 0 root = %d, want 0", e.roots[0])
	}
	if e.roots[1] != ^int32(2) {
		t.Errorf("leaf-only tree root = %d, want %d", e.roots[1], ^int32(2))
	}
	// Root's left child is the class-1 leaf, right child is arena node 1.
	if e.arena[0].left != ^int32(1) || e.arena[0].right != 1 {
		t.Errorf("root children = (%d,%d), want (%d,1)", e.arena[0].left, e.arena[0].right, ^int32(1))
	}
	// Both trees must predict like the reference forest.
	for _, x := range [][]float32{{0, 0}, {2, -3}, {2, 5}, {-1, -2}} {
		if got, want := e.Predict(x), f.Predict(x); got != want {
			t.Errorf("Predict(%v) = %d, want %d", x, got, want)
		}
	}
}

// TestFlatMatchesPerTreeEngines is the differential test on trained
// workloads: every variant of the flat engine, compiled from the
// original and the CAGS-reordered layout, must agree with the per-tree
// FLInt and float engines row by row.
func TestFlatMatchesPerTreeEngines(t *testing.T) {
	for _, ds := range []string{"magic", "wine", "eye"} {
		f, d := trainedForest(t, ds, 7, 5)
		grouped, err := cags.ReorderForest(f)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewFLInt(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, forest := range []*rf.Forest{f, grouped} {
			for _, v := range flatVariants {
				e, err := NewFlat(forest, v)
				if err != nil {
					t.Fatal(err)
				}
				for i, x := range d.Features {
					want := ref.Predict(x)
					if got := e.Predict(x); got != want {
						t.Fatalf("%s/%s row %d: got %d want %d", ds, e.Name(), i, got, want)
					}
					xi := core.EncodeFeatures32(nil, x)
					if got := e.PredictEncoded(xi); got != want {
						t.Fatalf("%s/%s row %d (encoded): got %d want %d", ds, e.Name(), i, got, want)
					}
				}
			}
		}
	}
}

// TestFlatRandomForests cross-checks the arena engine on randomly
// constructed trees with extreme split values (the same adversarial pool
// the per-tree engines are tested with).
func TestFlatRandomForests(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	splitPool := []float32{
		0, float32(math.Copysign(0, -1)), 1.5, -1.5,
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		math.MaxFloat32, -math.MaxFloat32, 3.25e-20, -7.5e12,
	}
	randTree := func(depth int) rf.Tree {
		var nodes []rf.Node
		var grow func(d int) int32
		grow = func(d int) int32 {
			me := int32(len(nodes))
			if d == 0 || rng.Float64() < 0.3 {
				nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(rng.Intn(3))})
				return me
			}
			nodes = append(nodes, rf.Node{
				Feature:      int32(rng.Intn(4)),
				Split:        splitPool[rng.Intn(len(splitPool))],
				LeftFraction: rng.Float64(),
			})
			l := grow(d - 1)
			r := grow(d - 1)
			nodes[me].Left = l
			nodes[me].Right = r
			return me
		}
		grow(depth)
		return rf.Tree{Nodes: nodes}
	}
	for trial := 0; trial < 30; trial++ {
		f := &rf.Forest{NumFeatures: 4, NumClasses: 3,
			Trees: []rf.Tree{randTree(5), randTree(5), randTree(5)}}
		grouped, err := cags.ReorderForest(f)
		if err != nil {
			t.Fatal(err)
		}
		var engines []*FlatForestEngine
		for _, forest := range []*rf.Forest{f, grouped} {
			for _, v := range flatVariants {
				e, err := NewFlat(forest, v)
				if err != nil {
					t.Fatal(err)
				}
				engines = append(engines, e)
			}
		}
		x := make([]float32, 4)
		for probe := 0; probe < 60; probe++ {
			for j := range x {
				x[j] = splitPool[rng.Intn(len(splitPool))] * float32(rng.NormFloat64())
			}
			want := f.Predict(x)
			for _, e := range engines {
				if got := e.Predict(x); got != want {
					t.Fatalf("trial %d: %s got %d want %d for %v", trial, e.Name(), got, want, x)
				}
			}
		}
	}
}

// TestFlatBatchPaths checks that every batch entry point — the blocked
// PredictBatch at several worker counts and block sizes, the persistent
// Batcher, and the rerouted Batch/BatchFloat — matches row-by-row
// prediction.
func TestFlatBatchPaths(t *testing.T) {
	f, d := trainedForest(t, "sensorless", 6, 6)
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int32, d.Len())
	for i, x := range d.Features {
		want[i] = f.Predict(x)
	}
	check := func(name string, got []int32) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d got %d want %d", name, i, got[i], want[i])
			}
		}
	}
	// Exercise every block-kernel path: the per-row walk and the 2/4/8-
	// way interleaved walks, forced regardless of this small arena's
	// calibrated width.
	for _, width := range []int{1, 2, 4, 8} {
		if got := e.SetInterleave(width); got != width {
			t.Fatalf("SetInterleave(%d) adopted %d", width, got)
		}
		for _, workers := range []int{0, 1, 2, 5} {
			for _, block := range []int{0, 1, 3, 64, 1 << 20} {
				check("PredictBatch", e.PredictBatch(d.Features, nil, workers, block))
			}
		}
	}
	e.SetInterleave(8) // keep the widest walk under test below
	// Output slice reuse.
	out := make([]int32, 0, d.Len())
	check("PredictBatch/reuse", e.PredictBatch(d.Features, out, 2, 8))

	b := NewBatcher(e, 3, 8)
	defer b.Close()
	out = b.Predict(d.Features, out)
	check("Batcher", out)
	check("Batcher/again", b.Predict(d.Features, out))
	if got := b.Predict(nil, nil); len(got) != 0 {
		t.Errorf("empty batch returned %d rows", len(got))
	}

	rerouted, err := Batch(e, d.Features, 4)
	if err != nil {
		t.Fatal(err)
	}
	check("Batch/reroute", rerouted)
	reroutedF, err := BatchFloat(e, d.Features, 4)
	if err != nil {
		t.Fatal(err)
	}
	check("BatchFloat/reroute", reroutedF)
}

// TestFlatPrecodedBatch exercises the precoded variant through the
// blocked kernel, whose scratch path differs from the bit-pattern one.
func TestFlatPrecodedBatch(t *testing.T) {
	f, d := trainedForest(t, "gas", 6, 4)
	e, err := NewFlat(f, FlatPrecoded)
	if err != nil {
		t.Fatal(err)
	}
	got := e.PredictBatch(d.Features, nil, 2, 8)
	for i, x := range d.Features {
		if want := f.Predict(x); got[i] != want {
			t.Fatalf("row %d: got %d want %d", i, got[i], want)
		}
		keys := core.PrecodeFeatures32(nil, x)
		if single := e.PredictPrecoded(keys); single != got[i] {
			t.Fatalf("row %d: PredictPrecoded %d != batch %d", i, single, got[i])
		}
	}
}

// TestFlatZeroAllocSteadyState asserts the acceptance criterion
// directly: steady-state batch prediction through a persistent Batcher
// with a reused output slice performs zero allocations, as do the
// single-row encoded paths with <= 8 classes.
func TestFlatZeroAllocSteadyState(t *testing.T) {
	t.Run("magic", func(t *testing.T) { testFlatZeroAlloc(t, "magic") })
	// Sensorless has 11 classes, forcing the scratch-votes fallback of
	// the block kernel past the 8-class stack fast path.
	t.Run("sensorless", func(t *testing.T) { testFlatZeroAlloc(t, "sensorless") })
}

func testFlatZeroAlloc(t *testing.T, ds string) {
	f, d := trainedForest(t, ds, 6, 8)
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{1, 2, 4, 8} {
		e.SetInterleave(width)
		// Odd block size: every interleaved block has leftover rows,
		// which must not fall back to an allocating path.
		b := NewBatcher(e, 2, 7)
		out := make([]int32, d.Len())
		b.Predict(d.Features, out) // warm up
		if avg := testing.AllocsPerRun(20, func() {
			b.Predict(d.Features, out)
		}); avg != 0 {
			t.Errorf("width=%d: Batcher.Predict allocates %.1f objects per batch, want 0", width, avg)
		}
		b.Close()
	}

	// The single-row stack-array fast path only covers <= 8 classes.
	if f.NumClasses > maxStackClasses {
		return
	}
	xi := core.EncodeFeatures32(nil, d.Features[0])
	if avg := testing.AllocsPerRun(100, func() {
		e.PredictEncoded(xi)
	}); avg != 0 {
		t.Errorf("flat PredictEncoded allocates %.1f objects, want 0", avg)
	}
	fl, err := NewFLInt(f)
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		fl.PredictEncoded(xi)
	}); avg != 0 {
		t.Errorf("per-tree PredictEncoded allocates %.1f objects, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		f.Predict(d.Features[0])
	}); avg != 0 {
		t.Errorf("rf.Forest.Predict allocates %.1f objects, want 0", avg)
	}
}

// TestFlatRejectsInvalid mirrors the per-tree engines' constructor
// checks.
func TestFlatRejectsInvalid(t *testing.T) {
	bad := &rf.Forest{NumFeatures: 1, NumClasses: 2, Trees: []rf.Tree{{Nodes: []rf.Node{
		{Feature: 0, Split: float32(math.NaN()), Left: 1, Right: 2},
		{Feature: rf.LeafFeature}, {Feature: rf.LeafFeature},
	}}}}
	if _, err := NewFlat(bad, FlatFLInt); err == nil {
		t.Error("NaN split accepted")
	}
	empty := &rf.Forest{NumFeatures: 1, NumClasses: 2}
	if _, err := NewFlat(empty, FlatFLInt); err == nil {
		t.Error("empty forest accepted")
	}
	ok := &rf.Forest{NumFeatures: 1, NumClasses: 2, Trees: []rf.Tree{
		{Nodes: []rf.Node{{Feature: rf.LeafFeature, Class: 1}}},
	}}
	if _, err := NewFlat(ok, FlatVariant(99)); err == nil {
		t.Error("unknown variant accepted")
	}
}
