package treeexec

import (
	"testing"
)

func TestBatchMatchesSequential(t *testing.T) {
	f, d := trainedForest(t, "magic", 8, 5)
	fl, err := NewFLInt(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Batch(fl, d.Features, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != d.Len() {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, x := range d.Features {
			if got[i] != f.Predict(x) {
				t.Fatalf("workers=%d: row %d diverges", workers, i)
			}
		}
	}
}

func TestBatchFloatMatchesSequential(t *testing.T) {
	f, d := trainedForest(t, "wine", 6, 4)
	fe, err := NewFloat32(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BatchFloat(fe, d.Features, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range d.Features {
		if got[i] != f.Predict(x) {
			t.Fatalf("row %d diverges", i)
		}
	}
}

func TestBatchEdgeCases(t *testing.T) {
	f, _ := trainedForest(t, "wine", 4, 2)
	fl, err := NewFLInt(f)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Batch(fl, nil, 4)
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v %v", out, err)
	}
	if _, err := Batch(nil, nil, 1); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := BatchFloat(nil, nil, 1); err == nil {
		t.Error("nil float engine accepted")
	}
	// Soft-float engine satisfies BatchPredictor too.
	soft, err := NewSoftFloat(f)
	if err != nil {
		t.Fatal(err)
	}
	var _ BatchPredictor = soft
	var _ BatchPredictor = fl
}
