package treeexec

import (
	"testing"

	"flint/internal/rf"
)

func TestBatchMatchesSequential(t *testing.T) {
	f, d := trainedForest(t, "magic", 8, 5)
	fl, err := NewFLInt(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Batch(fl, d.Features, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != d.Len() {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, x := range d.Features {
			if got[i] != f.Predict(x) {
				t.Fatalf("workers=%d: row %d diverges", workers, i)
			}
		}
	}
}

func TestBatchFloatMatchesSequential(t *testing.T) {
	f, d := trainedForest(t, "wine", 6, 4)
	fe, err := NewFloat32(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BatchFloat(fe, d.Features, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range d.Features {
		if got[i] != f.Predict(x) {
			t.Fatalf("row %d diverges", i)
		}
	}
}

func TestBatchEdgeCases(t *testing.T) {
	f, _ := trainedForest(t, "wine", 4, 2)
	fl, err := NewFLInt(f)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Batch(fl, nil, 4)
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v %v", out, err)
	}
	if _, err := Batch(nil, nil, 1); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := BatchFloat(nil, nil, 1); err == nil {
		t.Error("nil float engine accepted")
	}
	// Typed nils hide from the plain interface nil check.
	if _, err := BatchFloat((*Float32Engine)(nil), nil, 1); err == nil {
		t.Error("typed-nil float engine accepted")
	}
	if _, err := BatchFloat((*FlatForestEngine)(nil), nil, 1); err == nil {
		t.Error("typed-nil flat engine accepted by BatchFloat")
	}
	if _, err := Batch((*FlatForestEngine)(nil), nil, 1); err == nil {
		t.Error("typed-nil flat engine accepted by Batch")
	}
	// Soft-float engine satisfies BatchPredictor too.
	soft, err := NewSoftFloat(f)
	if err != nil {
		t.Fatal(err)
	}
	var _ BatchPredictor = soft
	var _ BatchPredictor = fl
}

func TestBatchRejectsTypedNilPredictor(t *testing.T) {
	// Any pointer-typed rf.Predictor, not just the engine types the
	// reroute switch names, must be rejected instead of panicking in a
	// worker goroutine.
	if _, err := BatchFloat((*rf.Forest)(nil), [][]float32{{0}}, 2); err == nil {
		t.Error("typed-nil rf.Forest accepted by BatchFloat")
	}
}
