package treeexec

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Calibration persistence closes the serving lifecycle: a deployment
// samples its traffic (Batcher reservoir), recalibrates on it
// (Batcher.Recalibrate), and persists the result (SaveCalibration) so
// the next process — or the same one after a restart — warm-starts from
// measured gates, width and traffic (LoadCalibration + SeedSample)
// instead of re-paying the synthetic calibration ladder on rows that
// only approximate the served distribution.

// ArenaFingerprint identifies the compiled arena a calibration record
// was measured on: the comparison variant, the inner-node count and the
// input dimensionality (plus the class count, which pins the vote
// shape). LoadCalibration rejects a record whose fingerprint does not
// match the loading engine — a width measured on one arena is
// meaningless on another.
type ArenaFingerprint struct {
	Variant  string `json:"variant"`
	Nodes    int    `json:"nodes"`
	Features int    `json:"features"`
	Classes  int    `json:"classes"`
}

// Fingerprint returns this engine's arena fingerprint.
func (e *FlatForestEngine) Fingerprint() ArenaFingerprint {
	return ArenaFingerprint{
		Variant:  e.variant.String(),
		Nodes:    e.ArenaNodes(),
		Features: e.numFeatures,
		Classes:  e.numClasses,
	}
}

// CalibrationRecord is the persisted calibration state of one engine:
// the arena fingerprint it was measured on, the host-wide interleave
// gate table, the engine's chosen width and walk kernel, and optionally
// a sample of the traffic that mode was measured against (a
// Batcher.SampleSnapshot), so the next deployment can seed its
// reservoir with real rows. Kernel is "branchy", "fused", "simd-quant"
// or "simd"; records written before the kernel axis existed carry no
// field and load as branchy — the only kernel those deployments ever
// ran. A "simd" or "simd-quant" record loaded on a host without the
// vector ISA installs as branchy instead (see LoadCalibration).
// SIMDRefill is the dual-group walk's calibrated lane-compaction
// threshold; it accompanies width-16 simd records (0 — the field's
// absence — means the kernel default) and records from before the
// refill axis load unchanged.
// Records written by a Batcher with drift detection armed additionally
// carry the detection policy (Drift), so the redeployment that seeds
// its reservoir from Rows can re-arm the same detector with
// EnableDriftDetection(*rec.Drift, rec.Rows); records from before the
// drift axis existed (or from engines persisted without a Batcher)
// carry no field and load with Drift nil.
// Records saved through a ModelRegistry additionally carry the model
// name they belong to (Model), so a registry load can reject a record
// that was saved for a different registered model even when the two
// arenas happen to share a fingerprint; engine- and Batcher-level saves
// leave the field empty and load anywhere the fingerprint matches.
type CalibrationRecord struct {
	Model       string           `json:"model,omitempty"`
	Fingerprint ArenaFingerprint `json:"fingerprint"`
	Gates       InterleaveGates  `json:"gates"`
	Width       int              `json:"width"`
	Kernel      string           `json:"kernel,omitempty"`
	SIMDRefill  int              `json:"simd_refill,omitempty"`
	Rows        [][]float32      `json:"rows,omitempty"`
	Drift       *DriftConfig     `json:"drift,omitempty"`
}

// finiteRow reports whether every value in the row is representable in
// JSON (no NaN or infinity).
func finiteRow(row []float32) bool {
	for _, v := range row {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

// SaveCalibration writes the engine's calibration state as an indented
// JSON CalibrationRecord: fingerprint, the current host-wide gate table
// (CurrentInterleaveGates), the engine's current interleave width, and
// the given sample rows — pass a Batcher.SampleSnapshot to persist
// measured traffic, or nil to persist gates and width alone. Rows whose
// length is not the engine's feature width, or that contain non-finite
// values (JSON cannot carry NaN or infinities), are skipped.
func (e *FlatForestEngine) SaveCalibration(w io.Writer, rows [][]float32) error {
	rec := e.calibrationRecord(rows)
	return encodeCalibrationRecord(w, &rec)
}

// encodeCalibrationRecord writes a record in the indented-JSON form all
// three save paths (engine, Batcher, ServedModel) share.
func encodeCalibrationRecord(w io.Writer, rec *CalibrationRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}

// calibrationRecord builds the engine's persistable state; the filtered
// row handling is shared between engine- and Batcher-level saves.
func (e *FlatForestEngine) calibrationRecord(rows [][]float32) CalibrationRecord {
	m := e.mode.Load() // one load, so width/kernel/refill are a consistent tuple
	rec := CalibrationRecord{
		Fingerprint: e.Fingerprint(),
		Gates:       CurrentInterleaveGates(),
		Width:       modeWidth(m),
		Kernel:      modeKernel(m).String(),
		SIMDRefill:  int(modeRefill(m)),
	}
	for _, r := range rows {
		if len(r) == e.numFeatures && finiteRow(r) {
			rec.Rows = append(rec.Rows, r)
		}
	}
	return rec
}

// SaveCalibration persists the Batcher's full serving state: the
// engine's calibration record, the reservoir's current traffic sample,
// and — when drift detection is armed — the detection policy, so the
// next deployment can LoadCalibration, SeedSample(rec.Rows) and
// EnableDriftDetection(*rec.Drift, rec.Rows) to resume the whole
// adaptive loop where this one left off.
func (b *Batcher) SaveCalibration(w io.Writer) error {
	rec := b.servingRecord()
	return encodeCalibrationRecord(w, &rec)
}

// servingRecord assembles the Batcher's full persistable serving state
// (engine calibration + traffic sample + drift policy); shared between
// the Batcher-level save and the registry-level save, which stamps the
// owning model's name on top.
func (b *Batcher) servingRecord() CalibrationRecord {
	rec := b.e.calibrationRecord(b.SampleSnapshot())
	if d := b.drift.Load(); d != nil {
		cfg := d.cfg // the resolved configuration, defaults applied
		rec.Drift = &cfg
	}
	return rec
}

// validGates reports whether a persisted gate table is structurally
// sane: no negative thresholds (math.MaxInt — "width disabled" — is
// valid).
func validGates(g InterleaveGates) bool {
	for _, v := range []int{g.Min2, g.Min4, g.Min8, g.CompactMin2, g.CompactMin4, g.CompactMin8,
		g.CompactFusedMin, g.CompactSIMDQuantMin, g.CompactSIMDMin, g.CompactSIMD16Min} {
		if v < 0 {
			return false
		}
	}
	return true
}

// LoadCalibration reads a CalibrationRecord written by SaveCalibration,
// validates it against this engine's arena fingerprint, and installs
// the persisted width and walk kernel on the engine (as one atomic
// pair, so loading while a Batcher serves is safe). The record is returned so the caller can
// seed a Batcher's reservoir with its Rows (Batcher.SeedSample) and —
// when the record was measured on this same hardware — install its
// gate table host-wide with SetInterleaveGates(rec.Gates). That last
// step is deliberately left to the caller: installing automatically
// would let a record carrying another host's (or the never-calibrated
// default) table silently clobber gates this process already measured.
//
// A record measured on a different arena (mismatched fingerprint), an
// unsupported width, or a malformed gate table is rejected without
// installing anything.
func (e *FlatForestEngine) LoadCalibration(r io.Reader) (*CalibrationRecord, error) {
	rec, err := decodeCalibrationRecord(r)
	if err != nil {
		return nil, err
	}
	if err := e.installCalibration(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// decodeCalibrationRecord reads a CalibrationRecord without validating
// it against any engine — the registry load path decodes first so it
// can route the record's fingerprint check across every registered
// model before installing anything.
func decodeCalibrationRecord(r io.Reader) (*CalibrationRecord, error) {
	var rec CalibrationRecord
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return nil, fmt.Errorf("treeexec: malformed calibration record: %w", err)
	}
	return &rec, nil
}

// installCalibration validates a decoded record against this engine's
// arena and installs its (width, kernel) mode — the second half of
// LoadCalibration.
func (e *FlatForestEngine) installCalibration(rec *CalibrationRecord) error {
	if got, want := rec.Fingerprint, e.Fingerprint(); got != want {
		return fmt.Errorf("treeexec: calibration fingerprint %+v does not match engine arena %+v", got, want)
	}
	switch rec.Width {
	case 1, 2, 4, 8, 16:
	default:
		return fmt.Errorf("treeexec: persisted interleave width %d is not a supported width (1, 2, 4, 8, 16)", rec.Width)
	}
	kernel, err := ParseKernel(rec.Kernel) // "" (a pre-kernel record) parses as branchy
	if err != nil {
		return fmt.Errorf("treeexec: persisted record: %w", err)
	}
	if kernel != KernelBranchy && e.variant != FlatCompact {
		return fmt.Errorf("treeexec: persisted %v kernel is only valid for the compact arena, engine is %v", kernel, e.variant)
	}
	if rec.Width == 16 && kernel != KernelSIMD {
		return fmt.Errorf("treeexec: persisted width 16 is only valid with the simd kernel, record has %q", rec.Kernel)
	}
	if rec.SIMDRefill < 0 || rec.SIMDRefill > 16 {
		return fmt.Errorf("treeexec: persisted simd_refill %d out of range (0..16)", rec.SIMDRefill)
	}
	if rec.SIMDRefill != 0 && kernel != KernelSIMD {
		return fmt.Errorf("treeexec: persisted simd_refill only accompanies the simd kernel, record has %q", rec.Kernel)
	}
	if !validGates(rec.Gates) {
		return fmt.Errorf("treeexec: persisted gate table has negative thresholds: %+v", rec.Gates)
	}
	if (rec.Gates == InterleaveGates{}) {
		// A missing or zeroed gates field would, if ever installed,
		// disable interleaving for every engine built afterwards; no
		// SaveCalibration output ever carries one (disabled widths
		// persist as math.MaxInt, not 0).
		return fmt.Errorf("treeexec: persisted record carries no gate table")
	}
	if rec.Drift != nil {
		if err := rec.Drift.validate(); err != nil {
			return fmt.Errorf("treeexec: persisted drift config: %w", err)
		}
	}
	source := int32(calibSourcePersisted)
	width, refill := rec.Width, int32(rec.SIMDRefill)
	if (kernel == KernelSIMD || kernel == KernelSIMDQuant) && !simdKernelAvailable() {
		// The record was measured on a host whose vector ISA this one
		// lacks. Installing a vector kernel anyway would serve through
		// the portable fallback — correct, but slower than the scalar
		// kernels the calibration ladder rejected in its favor on the
		// other machine. Downgrade to branchy (the kernel every host
		// runs natively) at a scalar width and surface the downgrade
		// via CalibrationSource.
		kernel = KernelBranchy
		refill = 0
		if width == 16 {
			width = 8
		}
		source = calibSourceDegraded
	}
	e.mode.Store(packModeRefill(width, kernel, refill))
	e.calibSource.Store(source)
	return nil
}

// WriteGatesJSON persists a host-wide gate table alone (no engine
// fingerprint) — the form command-line tools use to carry Calibrate
// results across process runs on the same machine.
func WriteGatesJSON(w io.Writer, g InterleaveGates) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&g)
}

// ReadGatesJSON reads a gate table written by WriteGatesJSON, rejecting
// structurally invalid tables. The caller decides whether to install it
// (SetInterleaveGates). Decoding is strict — unknown fields and the
// all-zero table are rejected — so pointing a tool's gates flag at some
// other JSON document errors out instead of silently installing a
// zero-value table that disables interleaving process-wide (Calibrate
// never emits zeros: a disabled width is math.MaxInt, not 0).
func ReadGatesJSON(r io.Reader) (InterleaveGates, error) {
	var g InterleaveGates
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return InterleaveGates{}, fmt.Errorf("treeexec: malformed gate table: %w", err)
	}
	if !validGates(g) {
		return InterleaveGates{}, fmt.Errorf("treeexec: gate table has negative thresholds: %+v", g)
	}
	if (g == InterleaveGates{}) {
		return InterleaveGates{}, fmt.Errorf("treeexec: gate table is all zeros — not a WriteGatesJSON document")
	}
	return g, nil
}
