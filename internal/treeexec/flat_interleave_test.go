package treeexec

import (
	"math"
	"testing"
	"time"

	"flint/internal/core"
)

// TestSetInterleaveRounding pins the knob's contract: any requested
// width rounds down to the nearest supported cursor count, with a floor
// of 1.
func TestSetInterleaveRounding(t *testing.T) {
	f, _ := trainedForest(t, "wine", 4, 3)
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 4},
		{5, 4}, {7, 4}, {8, 8}, {9, 8}, {1 << 20, 8},
	} {
		if got := e.SetInterleave(tc.in); got != tc.want {
			t.Errorf("SetInterleave(%d) = %d, want %d", tc.in, got, tc.want)
		}
		if e.Interleave() != tc.want {
			t.Errorf("Interleave() = %d after SetInterleave(%d)", e.Interleave(), tc.in)
		}
	}
}

// TestWidthForBoundaries exercises the gate table exactly at each
// threshold and with disabled (math.MaxInt) gates, for both gate sets.
func TestWidthForBoundaries(t *testing.T) {
	g := InterleaveGates{
		Min2: 1 << 10, Min4: 1 << 20, Min8: 1 << 30,
		CompactMin2: 1 << 11, CompactMin4: 1 << 21, CompactMin8: 1 << 31,
	}
	for _, tc := range []struct {
		v           FlatVariant
		bytes, want int
	}{
		{FlatFLInt, 1<<10 - 1, 1}, {FlatFLInt, 1 << 10, 2},
		{FlatFLInt, 1<<20 - 1, 2}, {FlatFLInt, 1 << 20, 4},
		{FlatFLInt, 1<<30 - 1, 4}, {FlatFLInt, 1 << 30, 8},
		{FlatCompact, 1 << 10, 1}, {FlatCompact, 1 << 11, 2},
		{FlatCompact, 1 << 21, 4}, {FlatCompact, 1 << 31, 8},
		// The non-compact AoS variants all read the AoS set.
		{FlatFloat32, 1 << 10, 2}, {FlatPrecoded, 1 << 20, 4},
	} {
		if got := g.widthFor(tc.v, tc.bytes); got != tc.want {
			t.Errorf("widthFor(%v, %d) = %d, want %d", tc.v, tc.bytes, got, tc.want)
		}
	}

	disabled := InterleaveGates{
		Min2: math.MaxInt, Min4: math.MaxInt, Min8: math.MaxInt,
		CompactMin2: math.MaxInt, CompactMin4: math.MaxInt, CompactMin8: math.MaxInt,
	}
	for _, v := range []FlatVariant{FlatFLInt, FlatCompact} {
		if got := disabled.widthFor(v, 1<<40); got != 1 {
			t.Errorf("disabled gates: widthFor(%v) = %d, want 1", v, got)
		}
	}

	// Partially disabled: only the 4-way step enabled.
	partial := InterleaveGates{Min2: math.MaxInt, Min4: 1 << 20, Min8: math.MaxInt}
	if got := partial.widthFor(FlatFLInt, 1<<25); got != 4 {
		t.Errorf("partial gates: widthFor = %d, want 4", got)
	}
}

// TestGatesFromLadder pins the monotone-threshold derivation: narrow
// wins at larger sizes are smoothed away, and each threshold is the
// smallest ladder size preferring at least that width.
func TestGatesFromLadder(t *testing.T) {
	sizes := []int{1, 2, 4, 8}
	m2, m4, m8 := gatesFromLadder(sizes, []int{1, 2, 1, 8})
	if m2 != 2 || m4 != 8 || m8 != 8 {
		t.Errorf("gatesFromLadder = %d/%d/%d, want 2/8/8", m2, m4, m8)
	}
	m2, m4, m8 = gatesFromLadder(sizes, []int{1, 1, 1, 1})
	if m2 != math.MaxInt || m4 != math.MaxInt || m8 != math.MaxInt {
		t.Errorf("all-narrow ladder = %d/%d/%d, want all MaxInt", m2, m4, m8)
	}
	m2, m4, m8 = gatesFromLadder(sizes, []int{8, 1, 1, 1})
	if m2 != 1 || m4 != 1 || m8 != 1 {
		t.Errorf("wide-first ladder = %d/%d/%d, want 1/1/1 after smoothing", m2, m4, m8)
	}
}

// TestCalibrateGatesMonotone asserts that every gate set Calibrate
// derives is monotone non-decreasing over the width ladder and made of
// ladder sizes or MaxInt.
func TestCalibrateGatesMonotone(t *testing.T) {
	defer SetInterleaveGates(DefaultInterleaveGates())
	g := Calibrate(60 * time.Millisecond)
	valid := map[int]bool{256 << 10: true, 1 << 20: true, 4 << 20: true, 16 << 20: true, math.MaxInt: true}
	for _, v := range []int{g.Min2, g.Min4, g.Min8, g.CompactMin2, g.CompactMin4, g.CompactMin8} {
		if !valid[v] {
			t.Errorf("gate %d is not a ladder size or MaxInt", v)
		}
	}
	if g.Min2 > g.Min4 || g.Min4 > g.Min8 {
		t.Errorf("AoS gates not monotone: %+v", g)
	}
	if g.CompactMin2 > g.CompactMin4 || g.CompactMin4 > g.CompactMin8 {
		t.Errorf("compact gates not monotone: %+v", g)
	}
}

// TestRepresentativeRowsExerciseBothBranches is the regression test for
// the PR 2 calibration bug: syntheticRows cleared the exponent bits, so
// every calibration input was a near-zero subnormal, every cursor of a
// trained engine walked the same one-sided path, and the measured
// interleave widths came from degenerate traversals. Representative
// rows are drawn from the engine's own split values (and their float
// neighbors), so trained walks must branch both ways and quantized
// ranks must spread over the rank range instead of pinning at 0 or max.
func TestRepresentativeRowsExerciseBothBranches(t *testing.T) {
	f, _ := trainedForest(t, "magic", 8, 8)

	// FLInt arena: count left and right picks over every tree walk.
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	rows := e.representativeRows(64, 0x1234)
	if len(rows) != 64 {
		t.Fatalf("representativeRows returned %d rows", len(rows))
	}
	var lefts, rights int
	for _, r := range rows {
		xi := core.EncodeFeatures32(nil, r)
		for _, root := range e.roots {
			i := root
			for i >= 0 {
				n := &e.arena[i]
				v := xi[n.feature]
				var le bool
				if n.key >= 0 {
					le = v <= n.key
				} else {
					le = uint32(v) >= uint32(n.key)
				}
				if le {
					lefts++
					i = n.left
				} else {
					rights++
					i = n.right
				}
			}
		}
	}
	if lefts == 0 || rights == 0 {
		t.Fatalf("calibration walks are one-sided: %d lefts, %d rights", lefts, rights)
	}
	// Not merely non-zero: neither direction should be a rounding error.
	total := lefts + rights
	if lefts*10 < total || rights*10 < total {
		t.Errorf("calibration walks are lopsided: %d lefts vs %d rights", lefts, rights)
	}

	// Compact arena: quantized ranks of the synthesized rows must spread
	// per feature, not pin at 0 or the top of the rank range.
	ce, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", ce.Variant())
	}
	crows := ce.representativeRows(64, 0x5678)
	q := make([]uint16, ce.numPruned)
	minR := make([]int, ce.numPruned)
	maxR := make([]int, ce.numPruned)
	for p := range minR {
		minR[p] = math.MaxInt
		maxR[p] = -1
	}
	for _, r := range crows {
		ce.quantizeBlock([][]float32{r}, q)
		for p, rank := range q {
			if int(rank) < minR[p] {
				minR[p] = int(rank)
			}
			if int(rank) > maxR[p] {
				maxR[p] = int(rank)
			}
		}
	}
	for p := range minR {
		cuts := int(ce.cutLo[p+1] - ce.cutLo[p])
		if cuts < 2 {
			continue // a single cut admits only ranks {0, 1}
		}
		if minR[p] == maxR[p] {
			t.Errorf("pruned feature %d (%d cuts): all 64 rows quantize to rank %d", p, cuts, minR[p])
		}
	}
}

// TestCalibrateInterleaveRows covers the caller-supplied-sample entry:
// adopted widths are supported, predictions survive, malformed rows are
// ignored, and non-interleaving variants are a no-op.
func TestCalibrateInterleaveRows(t *testing.T) {
	f, d := trainedForest(t, "magic", 6, 5)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int32, d.Len())
	for i, x := range d.Features {
		want[i] = f.Predict(x)
	}

	w := e.CalibrateInterleaveRows(d.Features, 8*time.Millisecond)
	if w != 1 && w != 2 && w != 4 && w != 8 {
		t.Fatalf("CalibrateInterleaveRows chose %d", w)
	}
	if e.Interleave() != w {
		t.Errorf("Interleave() = %d after calibration to %d", e.Interleave(), w)
	}
	got := e.PredictBatch(d.Features, nil, 1, 0)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d diverges after row calibration", i)
		}
	}

	// Rows of the wrong width are ignored; an all-malformed sample falls
	// back to the synthesized representative rows instead of panicking.
	mixed := [][]float32{{1, 2}, d.Features[0], {}, d.Features[1]}
	if w := e.CalibrateInterleaveRows(mixed, 4*time.Millisecond); w != 1 && w != 2 && w != 4 && w != 8 {
		t.Errorf("mixed-sample calibration chose %d", w)
	}
	if w := e.CalibrateInterleaveRows([][]float32{{1}, {2, 3, 4}}, 4*time.Millisecond); w != 1 && w != 2 && w != 4 && w != 8 {
		t.Errorf("malformed-sample calibration chose %d", w)
	}

	pe, err := NewFlat(f, FlatPrecoded)
	if err != nil {
		t.Fatal(err)
	}
	before := pe.Interleave()
	if w := pe.CalibrateInterleaveRows(d.Features, time.Millisecond); w != before {
		t.Errorf("precoded row calibration changed width to %d", w)
	}
}

// TestReplicateRows pins the tiny-sample fix: fewer valid rows than a
// timing block used to run the 2/4/8-way kernels on their
// non-interleaved remainder paths, making the selected width pure timer
// noise. Small samples are cycled up to the minimum block; larger
// samples and the empty sample pass through untouched.
func TestReplicateRows(t *testing.T) {
	rows := [][]float32{{1}, {2}, {3}}
	got := replicateRows(rows, minTimingRows)
	if len(got) != minTimingRows {
		t.Fatalf("replicated to %d rows, want %d", len(got), minTimingRows)
	}
	for i, r := range got {
		if &r[0] != &rows[i%3][0] {
			t.Fatalf("row %d is not a cycled alias of the sample", i)
		}
	}
	if got := replicateRows(nil, minTimingRows); got != nil {
		t.Errorf("empty sample replicated to %d rows", len(got))
	}
	big := make([][]float32, minTimingRows+5)
	if got := replicateRows(big, minTimingRows); len(got) != len(big) {
		t.Errorf("large sample resized to %d rows", len(got))
	}
}

// TestCapRows pins the huge-sample decimation: a sample past the
// timing bound is reduced to evenly spaced rows (preserving its
// distribution), while samples within the bound pass through intact.
func TestCapRows(t *testing.T) {
	big := make([][]float32, 10*maxTimingRows)
	for i := range big {
		big[i] = []float32{float32(i)}
	}
	got := capRows(big, maxTimingRows)
	if len(got) != maxTimingRows {
		t.Fatalf("capped to %d rows, want %d", len(got), maxTimingRows)
	}
	for i, r := range got {
		if want := float32(i * len(big) / maxTimingRows); r[0] != want {
			t.Fatalf("capped row %d = %v, want evenly spaced %v", i, r[0], want)
		}
	}
	if got := capRows(big[:maxTimingRows], maxTimingRows); len(got) != maxTimingRows {
		t.Errorf("in-bound sample resized to %d rows", len(got))
	}
}

// TestCalibrateTinySample feeds fewer rows than the widest kernel's
// group: calibration must still time real interleaved walks (via
// replication) and adopt a supported width with intact predictions.
func TestCalibrateTinySample(t *testing.T) {
	f, d := trainedForest(t, "magic", 6, 5)
	for _, v := range []FlatVariant{FlatFLInt, FlatCompact} {
		e, err := NewFlat(f, v)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 3, 7} {
			if w := e.CalibrateInterleaveRows(d.Features[:n], 4*time.Millisecond); w != 1 && w != 2 && w != 4 && w != 8 {
				t.Fatalf("%v: %d-row calibration chose %d", v, n, w)
			}
			if src := e.CalibrationSource(); src != "rows" {
				t.Errorf("%v: %d-row calibration source = %q, want \"rows\"", v, n, src)
			}
		}
		got := e.PredictBatch(d.Features, nil, 1, 0)
		for i, x := range d.Features {
			if got[i] != f.Predict(x) {
				t.Fatalf("%v row %d diverges after tiny-sample calibration", v, i)
			}
		}
	}
}

// TestCalibrateBudgetBound pins the warm-up accounting fix: the
// untimed warm-up run per width used to let a calibration pass far
// exceed its budget on expensive arenas. With the warm-up counted
// against each width's slice, the whole pass must stay within ~2x the
// requested budget.
func TestCalibrateBudgetBound(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock budget bounds are meaningless under the race detector's slowdown")
	}
	f, d := trainedForest(t, "magic", 7, 6)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 40 * time.Millisecond
	start := time.Now()
	e.CalibrateInterleaveRows(d.Features, budget)
	if elapsed := time.Since(start); elapsed > 2*budget {
		t.Errorf("calibration spent %v against a %v budget (> 2x)", elapsed, budget)
	}

	// A sample far larger than the timing block must not scale the cost:
	// it is decimated to the bounded block, so the budget still holds.
	huge := make([][]float32, 0, 50*maxTimingRows)
	for len(huge) < cap(huge) {
		huge = append(huge, d.Features[len(huge)%len(d.Features)])
	}
	start = time.Now()
	e.CalibrateInterleaveRows(huge, budget)
	if elapsed := time.Since(start); elapsed > 2*budget {
		t.Errorf("huge-sample calibration spent %v against a %v budget (> 2x)", elapsed, budget)
	}
	if src := e.CalibrationSource(); src != "rows" {
		t.Errorf("huge-sample calibration source = %q, want \"rows\"", src)
	}
}

// TestCalibrateTinyBudgetBound pins the other end of the budget
// contract: when a single block pass over a big arena exceeds the whole
// budget, calibration must stop after that first pass (keeping the
// incumbent) instead of still warming up every width — the total is
// bounded by budget plus roughly one pass, not four.
func TestCalibrateTinyBudgetBound(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock budget bounds are meaningless under the race detector's slowdown")
	}
	e := syntheticFLIntEngine(16 << 20)
	rows := e.representativeRows(maxTimingRows, 0x7777)
	out := make([]int32, len(rows))
	s := e.newScratch()
	start := time.Now()
	e.predictBlockWidth(rows, out, s, 1, KernelBranchy)
	onePass := time.Since(start)

	budget := onePass / 8 // guaranteed smaller than any single pass
	if budget <= 0 {
		budget = 1
	}
	incumbent := e.Interleave()
	start = time.Now()
	w := e.CalibrateInterleaveRows(rows, budget)
	elapsed := time.Since(start)
	if w != incumbent {
		t.Errorf("starved calibration changed the width to %d", w)
	}
	if src := e.CalibrationSource(); src != "default" {
		t.Errorf("starved calibration claimed source %q without measuring anything", src)
	}
	// Generous noise allowance: three passes would exceed it, the
	// permitted single pass (plus sample prep) stays well under.
	if elapsed > budget+3*onePass {
		t.Errorf("starved calibration spent %v (budget %v, one pass %v)", elapsed, budget, onePass)
	}
}

// TestCalibrationSourceTransitions walks the source label through its
// lifecycle: construction-time default, synthetic self-calibration,
// then sampled rows.
func TestCalibrationSourceTransitions(t *testing.T) {
	f, d := trainedForest(t, "wine", 5, 4)
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	if src := e.CalibrationSource(); src != "default" {
		t.Errorf("fresh engine source = %q, want \"default\"", src)
	}
	e.CalibrateInterleave(2 * time.Millisecond)
	if src := e.CalibrationSource(); src != "synthetic" {
		t.Errorf("self-calibrated source = %q, want \"synthetic\"", src)
	}
	e.CalibrateInterleaveRows(d.Features, 2*time.Millisecond)
	if src := e.CalibrationSource(); src != "rows" {
		t.Errorf("row-calibrated source = %q, want \"rows\"", src)
	}
	// A forced width is an operator decision, not measurement — the
	// stale "rows" evidence must not survive the override.
	e.SetInterleave(1)
	if src := e.CalibrationSource(); src != "manual" {
		t.Errorf("forced-width source = %q, want \"manual\"", src)
	}
}

// TestSyntheticCompactEngineConsistent guards the Calibrate ladder's
// compact half: the synthetic SoA arena must be structurally sound —
// identical predictions at every interleave width and under all three
// walk kernels, since the ladder times the fused and SIMD kernels on
// it too.
func TestSyntheticCompactEngineConsistent(t *testing.T) {
	e := syntheticCompactEngine(64 << 10)
	rows := e.representativeRows(48, 0x42)
	s := e.newScratch()
	want := make([]int32, len(rows))
	e.predictBlockWidth(rows, want, s, 1, KernelBranchy)
	got := make([]int32, len(rows))
	for _, k := range []Kernel{KernelBranchy, KernelFused, KernelSIMD} {
		for _, w := range []int{1, 2, 4, 8} {
			e.predictBlockWidth(rows, got, s, w, k)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v width %d row %d: got %d want %d", k, w, i, got[i], want[i])
				}
			}
		}
	}
}
