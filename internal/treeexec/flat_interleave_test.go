package treeexec

import (
	"math"
	"testing"
	"time"

	"flint/internal/core"
)

// TestSetInterleaveRounding pins the knob's contract: any requested
// width rounds down to the nearest supported cursor count, with a floor
// of 1.
func TestSetInterleaveRounding(t *testing.T) {
	f, _ := trainedForest(t, "wine", 4, 3)
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 4},
		{5, 4}, {7, 4}, {8, 8}, {9, 8}, {1 << 20, 8},
	} {
		if got := e.SetInterleave(tc.in); got != tc.want {
			t.Errorf("SetInterleave(%d) = %d, want %d", tc.in, got, tc.want)
		}
		if e.Interleave() != tc.want {
			t.Errorf("Interleave() = %d after SetInterleave(%d)", e.Interleave(), tc.in)
		}
	}
}

// TestWidthForBoundaries exercises the gate table exactly at each
// threshold and with disabled (math.MaxInt) gates, for both gate sets.
func TestWidthForBoundaries(t *testing.T) {
	g := InterleaveGates{
		Min2: 1 << 10, Min4: 1 << 20, Min8: 1 << 30,
		CompactMin2: 1 << 11, CompactMin4: 1 << 21, CompactMin8: 1 << 31,
	}
	for _, tc := range []struct {
		v           FlatVariant
		bytes, want int
	}{
		{FlatFLInt, 1<<10 - 1, 1}, {FlatFLInt, 1 << 10, 2},
		{FlatFLInt, 1<<20 - 1, 2}, {FlatFLInt, 1 << 20, 4},
		{FlatFLInt, 1<<30 - 1, 4}, {FlatFLInt, 1 << 30, 8},
		{FlatCompact, 1 << 10, 1}, {FlatCompact, 1 << 11, 2},
		{FlatCompact, 1 << 21, 4}, {FlatCompact, 1 << 31, 8},
		// The non-compact AoS variants all read the AoS set.
		{FlatFloat32, 1 << 10, 2}, {FlatPrecoded, 1 << 20, 4},
	} {
		if got := g.widthFor(tc.v, tc.bytes); got != tc.want {
			t.Errorf("widthFor(%v, %d) = %d, want %d", tc.v, tc.bytes, got, tc.want)
		}
	}

	disabled := InterleaveGates{
		Min2: math.MaxInt, Min4: math.MaxInt, Min8: math.MaxInt,
		CompactMin2: math.MaxInt, CompactMin4: math.MaxInt, CompactMin8: math.MaxInt,
	}
	for _, v := range []FlatVariant{FlatFLInt, FlatCompact} {
		if got := disabled.widthFor(v, 1<<40); got != 1 {
			t.Errorf("disabled gates: widthFor(%v) = %d, want 1", v, got)
		}
	}

	// Partially disabled: only the 4-way step enabled.
	partial := InterleaveGates{Min2: math.MaxInt, Min4: 1 << 20, Min8: math.MaxInt}
	if got := partial.widthFor(FlatFLInt, 1<<25); got != 4 {
		t.Errorf("partial gates: widthFor = %d, want 4", got)
	}
}

// TestGatesFromLadder pins the monotone-threshold derivation: narrow
// wins at larger sizes are smoothed away, and each threshold is the
// smallest ladder size preferring at least that width.
func TestGatesFromLadder(t *testing.T) {
	sizes := []int{1, 2, 4, 8}
	m2, m4, m8 := gatesFromLadder(sizes, []int{1, 2, 1, 8})
	if m2 != 2 || m4 != 8 || m8 != 8 {
		t.Errorf("gatesFromLadder = %d/%d/%d, want 2/8/8", m2, m4, m8)
	}
	m2, m4, m8 = gatesFromLadder(sizes, []int{1, 1, 1, 1})
	if m2 != math.MaxInt || m4 != math.MaxInt || m8 != math.MaxInt {
		t.Errorf("all-narrow ladder = %d/%d/%d, want all MaxInt", m2, m4, m8)
	}
	m2, m4, m8 = gatesFromLadder(sizes, []int{8, 1, 1, 1})
	if m2 != 1 || m4 != 1 || m8 != 1 {
		t.Errorf("wide-first ladder = %d/%d/%d, want 1/1/1 after smoothing", m2, m4, m8)
	}
}

// TestCalibrateGatesMonotone asserts that every gate set Calibrate
// derives is monotone non-decreasing over the width ladder and made of
// ladder sizes or MaxInt.
func TestCalibrateGatesMonotone(t *testing.T) {
	defer SetInterleaveGates(DefaultInterleaveGates())
	g := Calibrate(60 * time.Millisecond)
	valid := map[int]bool{256 << 10: true, 1 << 20: true, 4 << 20: true, 16 << 20: true, math.MaxInt: true}
	for _, v := range []int{g.Min2, g.Min4, g.Min8, g.CompactMin2, g.CompactMin4, g.CompactMin8} {
		if !valid[v] {
			t.Errorf("gate %d is not a ladder size or MaxInt", v)
		}
	}
	if g.Min2 > g.Min4 || g.Min4 > g.Min8 {
		t.Errorf("AoS gates not monotone: %+v", g)
	}
	if g.CompactMin2 > g.CompactMin4 || g.CompactMin4 > g.CompactMin8 {
		t.Errorf("compact gates not monotone: %+v", g)
	}
}

// TestRepresentativeRowsExerciseBothBranches is the regression test for
// the PR 2 calibration bug: syntheticRows cleared the exponent bits, so
// every calibration input was a near-zero subnormal, every cursor of a
// trained engine walked the same one-sided path, and the measured
// interleave widths came from degenerate traversals. Representative
// rows are drawn from the engine's own split values (and their float
// neighbors), so trained walks must branch both ways and quantized
// ranks must spread over the rank range instead of pinning at 0 or max.
func TestRepresentativeRowsExerciseBothBranches(t *testing.T) {
	f, _ := trainedForest(t, "magic", 8, 8)

	// FLInt arena: count left and right picks over every tree walk.
	e, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	rows := e.representativeRows(64, 0x1234)
	if len(rows) != 64 {
		t.Fatalf("representativeRows returned %d rows", len(rows))
	}
	var lefts, rights int
	for _, r := range rows {
		xi := core.EncodeFeatures32(nil, r)
		for _, root := range e.roots {
			i := root
			for i >= 0 {
				n := &e.arena[i]
				v := xi[n.feature]
				var le bool
				if n.key >= 0 {
					le = v <= n.key
				} else {
					le = uint32(v) >= uint32(n.key)
				}
				if le {
					lefts++
					i = n.left
				} else {
					rights++
					i = n.right
				}
			}
		}
	}
	if lefts == 0 || rights == 0 {
		t.Fatalf("calibration walks are one-sided: %d lefts, %d rights", lefts, rights)
	}
	// Not merely non-zero: neither direction should be a rounding error.
	total := lefts + rights
	if lefts*10 < total || rights*10 < total {
		t.Errorf("calibration walks are lopsided: %d lefts vs %d rights", lefts, rights)
	}

	// Compact arena: quantized ranks of the synthesized rows must spread
	// per feature, not pin at 0 or the top of the rank range.
	ce, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", ce.Variant())
	}
	crows := ce.representativeRows(64, 0x5678)
	q := make([]uint16, ce.numPruned)
	minR := make([]int, ce.numPruned)
	maxR := make([]int, ce.numPruned)
	for p := range minR {
		minR[p] = math.MaxInt
		maxR[p] = -1
	}
	for _, r := range crows {
		ce.quantizeBlock([][]float32{r}, q)
		for p, rank := range q {
			if int(rank) < minR[p] {
				minR[p] = int(rank)
			}
			if int(rank) > maxR[p] {
				maxR[p] = int(rank)
			}
		}
	}
	for p := range minR {
		cuts := int(ce.cutLo[p+1] - ce.cutLo[p])
		if cuts < 2 {
			continue // a single cut admits only ranks {0, 1}
		}
		if minR[p] == maxR[p] {
			t.Errorf("pruned feature %d (%d cuts): all 64 rows quantize to rank %d", p, cuts, minR[p])
		}
	}
}

// TestCalibrateInterleaveRows covers the caller-supplied-sample entry:
// adopted widths are supported, predictions survive, malformed rows are
// ignored, and non-interleaving variants are a no-op.
func TestCalibrateInterleaveRows(t *testing.T) {
	f, d := trainedForest(t, "magic", 6, 5)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int32, d.Len())
	for i, x := range d.Features {
		want[i] = f.Predict(x)
	}

	w := e.CalibrateInterleaveRows(d.Features, 8*time.Millisecond)
	if w != 1 && w != 2 && w != 4 && w != 8 {
		t.Fatalf("CalibrateInterleaveRows chose %d", w)
	}
	if e.Interleave() != w {
		t.Errorf("Interleave() = %d after calibration to %d", e.Interleave(), w)
	}
	got := e.PredictBatch(d.Features, nil, 1, 0)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d diverges after row calibration", i)
		}
	}

	// Rows of the wrong width are ignored; an all-malformed sample falls
	// back to the synthesized representative rows instead of panicking.
	mixed := [][]float32{{1, 2}, d.Features[0], {}, d.Features[1]}
	if w := e.CalibrateInterleaveRows(mixed, 4*time.Millisecond); w != 1 && w != 2 && w != 4 && w != 8 {
		t.Errorf("mixed-sample calibration chose %d", w)
	}
	if w := e.CalibrateInterleaveRows([][]float32{{1}, {2, 3, 4}}, 4*time.Millisecond); w != 1 && w != 2 && w != 4 && w != 8 {
		t.Errorf("malformed-sample calibration chose %d", w)
	}

	pe, err := NewFlat(f, FlatPrecoded)
	if err != nil {
		t.Fatal(err)
	}
	before := pe.Interleave()
	if w := pe.CalibrateInterleaveRows(d.Features, time.Millisecond); w != before {
		t.Errorf("precoded row calibration changed width to %d", w)
	}
}

// TestSyntheticCompactEngineConsistent guards the Calibrate ladder's
// compact half: the synthetic SoA arena must be structurally sound —
// identical predictions at every interleave width.
func TestSyntheticCompactEngineConsistent(t *testing.T) {
	e := syntheticCompactEngine(64 << 10)
	rows := e.representativeRows(48, 0x42)
	e.interleave = 1
	s := e.newScratch()
	want := make([]int32, len(rows))
	e.predictBlock(rows, want, s)
	got := make([]int32, len(rows))
	for _, w := range []int{2, 4, 8} {
		e.interleave = w
		e.predictBlock(rows, got, s)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("width %d row %d: got %d want %d", w, i, got[i], want[i])
			}
		}
	}
}
