package treeexec

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ServedModel owns the complete per-model serving state that PRs 1–7
// grew as loose parts wired together at call sites: the compiled arena
// engine, the Batcher worker pool that drives it, the traffic reservoir
// and drift detector living inside that Batcher, and the calibration
// record that persists them. Its lifecycle is
//
//	build       — compile the forest into an engine, construct the
//	              model (NewServedModel / NewServedModelSampled)
//	calibrate   — CalibrateInterleaveRows on training/expected traffic,
//	  or load    — or WarmStart from a persisted CalibrationRecord
//	serve       — Predict from any number of goroutines
//	recalibrate — Recalibrate on sampled traffic, by hand or via an
//	              armed drift detector (EnableDriftDetection)
//	save        — SaveCalibration so the next deployment warm-starts
//	drain/close — Close retires the model, waits out in-flight
//	              predictions, and stops the worker pool and the drift
//	              watcher goroutine
//
// A ServedModel is what a ModelRegistry swaps atomically: Predict
// publishes itself through an inflight counter before checking the
// retired flag, and Close raises the flag before draining the counter —
// the same two-sided protocol (one atomic publication against one
// atomic retirement, both sequentially consistent) that the engine's
// single-atomic (width, kernel) mode install uses one level down, so a
// swap can flip the registry pointer and know that every caller either
// completed against the old model or observed ErrModelRetired and
// retried against the new one. Nothing is ever dropped mid-flight.
type ServedModel struct {
	name string
	e    *FlatForestEngine
	b    *Batcher

	// inflight counts Predict calls between publication and completion;
	// retired, once set, turns every new publication away. Predict
	// increments inflight before loading retired; Close stores retired
	// before polling inflight. Both are seq-cst, so the pair can never
	// agree to proceed: at least one side sees the other.
	inflight atomic.Int64
	retired  atomic.Bool

	rows    atomic.Uint64 // total rows served through Predict
	batches atomic.Uint64 // total Predict calls served
}

// ErrModelRetired is returned by ServedModel.Predict once Close (or a
// registry Swap, which closes the old model) has retired the model. A
// caller holding a *ServedModel directly should re-fetch from the
// registry and retry; ModelRegistry.Predict does exactly that.
var ErrModelRetired = errors.New("treeexec: model retired")

// UnknownModelError is returned by registry operations naming a model
// that is not (or no longer) registered.
type UnknownModelError struct{ Name string }

func (e *UnknownModelError) Error() string {
	return fmt.Sprintf("treeexec: no model %q registered", e.Name)
}

// NewServedModel builds a ServedModel around an engine with a
// default-sampled Batcher (NewBatcher semantics: reservoir sampling on
// at DefaultReservoirRows/DefaultSampleStride). A nil engine panics, as
// NewBatcher does.
func NewServedModel(name string, e *FlatForestEngine, workers, block int) *ServedModel {
	return NewServedModelSampled(name, e, workers, block, 0, 0)
}

// NewServedModelSampled is NewServedModel with explicit reservoir
// parameters (NewBatcherSampled semantics: negative capacity disables
// sampling, zero selects the defaults).
func NewServedModelSampled(name string, e *FlatForestEngine, workers, block, capacity, stride int) *ServedModel {
	return &ServedModel{
		name: name,
		e:    e,
		b:    NewBatcherSampled(e, workers, block, capacity, stride),
	}
}

// Name returns the model's serving name — the registry key and the
// {model} path element of the HTTP front-end.
func (m *ServedModel) Name() string { return m.name }

// Engine returns the model's arena engine.
func (m *ServedModel) Engine() *FlatForestEngine { return m.e }

// Batcher returns the model's worker pool, for callers that need the
// sampling/drift surface directly. Closing it out from under the model
// is a misuse; use Close.
func (m *ServedModel) Batcher() *Batcher { return m.b }

// Retired reports whether the model has been closed (or swapped out).
func (m *ServedModel) Retired() bool { return m.retired.Load() }

// Predict classifies rows through the model's Batcher, writing into out
// when it has capacity. Unlike Batcher.Predict it reports misuse as
// errors rather than panics — a network front-end turns these into
// status codes, not process deaths: ErrModelRetired once the model has
// been closed or swapped out, or a row-width error for malformed input.
// Concurrent calls are safe; a call that published itself before
// retirement always completes.
func (m *ServedModel) Predict(rows [][]float32, out []int32) ([]int32, error) {
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	if m.retired.Load() {
		return nil, ErrModelRetired
	}
	if err := rowWidthError(m.e.numFeatures, rows); err != nil {
		return nil, err
	}
	res := m.b.Predict(rows, out)
	m.rows.Add(uint64(len(rows)))
	m.batches.Add(1)
	return res, nil
}

// Recalibrate re-times the engine's (width, kernel) mode on the
// reservoir's sampled traffic; see Batcher.Recalibrate.
func (m *ServedModel) Recalibrate(budget time.Duration) int { return m.b.Recalibrate(budget) }

// EnableDriftDetection arms the model's drift detector; see
// Batcher.EnableDriftDetection. The watcher goroutine it starts is
// owned by the model: Close (and therefore a registry Swap draining
// this model) terminates it.
func (m *ServedModel) EnableDriftDetection(cfg DriftConfig, baseline [][]float32) error {
	return m.b.EnableDriftDetection(cfg, baseline)
}

// DriftStats reports the drift detector's state; see Batcher.DriftStats.
func (m *ServedModel) DriftStats() DriftStats { return m.b.DriftStats() }

// SeedSample pre-populates the traffic reservoir; see Batcher.SeedSample.
func (m *ServedModel) SeedSample(rows [][]float32) int { return m.b.SeedSample(rows) }

// SaveCalibration persists the model's serving state as a
// CalibrationRecord stamped with the model's name, so a registry load
// can later reject the record against any other model even when arenas
// coincide. The record otherwise matches Batcher.SaveCalibration.
func (m *ServedModel) SaveCalibration(w io.Writer) error {
	rec := m.b.servingRecord()
	rec.Model = m.name
	return encodeCalibrationRecord(w, &rec)
}

// WarmStart resumes a previous deployment's serving state from a
// decoded CalibrationRecord: the record's (width, kernel) mode is
// validated against the engine and installed, the reservoir is seeded
// with the record's sampled rows, and — when the record carries a drift
// policy and no detector is armed yet — the detector is re-armed with
// the record's rows as its baseline. This is the "calibrate-or-load"
// lifecycle step in one call.
func (m *ServedModel) WarmStart(rec *CalibrationRecord) error {
	if rec == nil {
		return errors.New("treeexec: WarmStart on nil calibration record")
	}
	if rec.Model != "" && rec.Model != m.name {
		return fmt.Errorf("treeexec: calibration record was saved for model %q, not %q", rec.Model, m.name)
	}
	if err := m.e.installCalibration(rec); err != nil {
		return err
	}
	m.b.SeedSample(rec.Rows)
	if rec.Drift != nil && !m.b.DriftStats().Enabled {
		if err := m.b.EnableDriftDetection(*rec.Drift, rec.Rows); err != nil {
			return err
		}
	}
	return nil
}

// Close retires the model and drains it: new Predict calls fail with
// ErrModelRetired, in-flight ones complete, then the Batcher's worker
// pool — and with it the drift-watcher goroutine, if one is armed —
// shuts down. Safe to call more than once; every call returns only
// after the drain is complete.
func (m *ServedModel) Close() {
	m.retired.Store(true)
	for m.inflight.Load() != 0 {
		time.Sleep(50 * time.Microsecond)
	}
	m.b.Close()
}

// ModelStats is a point-in-time snapshot of one served model, shaped
// for the serving front-end's status endpoints.
type ModelStats struct {
	Name        string  `json:"name"`
	Variant     string  `json:"variant"`
	ArenaNodes  int     `json:"arena_nodes"`
	ArenaBytes  int     `json:"arena_bytes"`
	NumFeatures int     `json:"num_features"`
	NumClasses  int     `json:"num_classes"`
	Width       int     `json:"width"`
	Kernel      string  `json:"kernel"`
	CalibSource string  `json:"calibration_source"`
	Rows        uint64  `json:"rows"`
	Batches     uint64  `json:"batches"`
	SampleRows  int     `json:"sample_rows"`
	SampleSeen  uint64  `json:"sample_seen"`
	Drift       bool    `json:"drift"`
	DriftDist   float64 `json:"drift_distance"`
	DriftTrigs  uint64  `json:"drift_triggers"`
	Retired     bool    `json:"retired"`
}

// Stats snapshots the model's serving counters and engine mode.
func (m *ServedModel) Stats() ModelStats {
	sampled, seen := m.b.SampleStats()
	d := m.b.DriftStats()
	return ModelStats{
		Name:        m.name,
		Variant:     m.e.variant.String(),
		ArenaNodes:  m.e.ArenaNodes(),
		ArenaBytes:  m.e.ArenaBytes(),
		NumFeatures: m.e.numFeatures,
		NumClasses:  m.e.numClasses,
		Width:       m.e.Interleave(),
		Kernel:      m.e.Kernel().String(),
		CalibSource: m.e.CalibrationSource(),
		Rows:        m.rows.Load(),
		Batches:     m.batches.Load(),
		SampleRows:  sampled,
		SampleSeen:  seen,
		Drift:       d.Enabled,
		DriftDist:   d.Distance,
		DriftTrigs:  d.Triggers,
		Retired:     m.retired.Load(),
	}
}

// ModelRegistry serves a set of ServedModels by name and hot-swaps them
// without dropping traffic. Each name maps to an atomic pointer slot;
// Swap builds nothing itself — the caller constructs the replacement
// off-line (train, compile, calibrate or WarmStart) — and then flips
// the slot's pointer and drains the old model, reusing the engine's
// single-atomic-mode-install pattern one level up: readers that raced
// the flip either complete against the old model (its drain waits for
// them) or see ErrModelRetired and retry against the new pointer.
type ModelRegistry struct {
	mu    sync.RWMutex
	slots map[string]*atomic.Pointer[ServedModel]
}

// NewModelRegistry returns an empty registry.
func NewModelRegistry() *ModelRegistry {
	return &ModelRegistry{slots: make(map[string]*atomic.Pointer[ServedModel])}
}

// validModelName rejects names that cannot round-trip through the HTTP
// front-end's /v1/models/{name} path element.
func validModelName(name string) error {
	if name == "" {
		return errors.New("treeexec: empty model name")
	}
	for _, r := range name {
		switch r {
		case '/', ':', ' ', '\t', '\n', '\r':
			return fmt.Errorf("treeexec: model name %q contains %q; names must be path-safe", name, r)
		}
	}
	return nil
}

// Register adds a model under its own name. It fails on an invalid
// name, a name already registered, or a model already retired.
func (r *ModelRegistry) Register(m *ServedModel) error {
	if m == nil {
		return errors.New("treeexec: Register on nil model")
	}
	if err := validModelName(m.name); err != nil {
		return err
	}
	if m.retired.Load() {
		return fmt.Errorf("treeexec: model %q is already retired", m.name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.slots[m.name]; ok {
		return fmt.Errorf("treeexec: model %q already registered (use Swap to replace it)", m.name)
	}
	slot := new(atomic.Pointer[ServedModel])
	slot.Store(m)
	r.slots[m.name] = slot
	return nil
}

// Get returns the current model for name, or false when none is
// registered.
func (r *ModelRegistry) Get(name string) (*ServedModel, bool) {
	r.mu.RLock()
	slot, ok := r.slots[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return slot.Load(), true
}

// Names returns the registered model names, sorted.
func (r *ModelRegistry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.slots))
	for n := range r.slots {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Stats snapshots every registered model, sorted by name.
func (r *ModelRegistry) Stats() []ModelStats {
	names := r.Names()
	stats := make([]ModelStats, 0, len(names))
	for _, n := range names {
		if m, ok := r.Get(n); ok {
			stats = append(stats, m.Stats())
		}
	}
	return stats
}

// Swap replaces the model registered under name with nm: the slot's
// pointer flips first (new traffic lands on nm immediately), then the
// old model drains — its in-flight Predict calls complete, its worker
// pool and drift watcher stop — before Swap returns. nm must carry the
// same name and must not be retired; the replacement is expected to
// have been built and calibrated off-line before the call.
func (r *ModelRegistry) Swap(name string, nm *ServedModel) error {
	if nm == nil {
		return errors.New("treeexec: Swap to nil model (use Remove to unregister)")
	}
	if nm.name != name {
		return fmt.Errorf("treeexec: Swap(%q) with a model named %q", name, nm.name)
	}
	if nm.retired.Load() {
		return fmt.Errorf("treeexec: Swap(%q) with an already-retired model", name)
	}
	r.mu.RLock()
	slot, ok := r.slots[name]
	r.mu.RUnlock()
	if !ok {
		return &UnknownModelError{Name: name}
	}
	old := slot.Swap(nm)
	if old != nil && old != nm {
		old.Close()
	}
	return nil
}

// Remove unregisters name and drains its model.
func (r *ModelRegistry) Remove(name string) error {
	r.mu.Lock()
	slot, ok := r.slots[name]
	if ok {
		delete(r.slots, name)
	}
	r.mu.Unlock()
	if !ok {
		return &UnknownModelError{Name: name}
	}
	if m := slot.Load(); m != nil {
		m.Close()
	}
	return nil
}

// Close unregisters and drains every model.
func (r *ModelRegistry) Close() {
	r.mu.Lock()
	slots := r.slots
	r.slots = make(map[string]*atomic.Pointer[ServedModel])
	r.mu.Unlock()
	for _, slot := range slots {
		if m := slot.Load(); m != nil {
			m.Close()
		}
	}
}

// Predict classifies rows through the model currently registered under
// name. A concurrent Swap can retire the fetched model between the
// lookup and the call; Predict absorbs that race by re-fetching and
// retrying on ErrModelRetired, so callers see zero dropped requests
// across a hot swap — only answers from either the old or the new
// model.
func (r *ModelRegistry) Predict(name string, rows [][]float32, out []int32) ([]int32, error) {
	for {
		m, ok := r.Get(name)
		if !ok {
			return nil, &UnknownModelError{Name: name}
		}
		res, err := m.Predict(rows, out)
		if err == ErrModelRetired {
			continue // the slot already points at the replacement
		}
		return res, err
	}
}

// SaveCalibration persists the named model's serving state, stamped
// with the model name (see ServedModel.SaveCalibration).
func (r *ModelRegistry) SaveCalibration(name string, w io.Writer) error {
	m, ok := r.Get(name)
	if !ok {
		return &UnknownModelError{Name: name}
	}
	return m.SaveCalibration(w)
}

// LoadCalibration warm-starts the named model from a persisted record:
// decode, route the record to the model, validate, install, seed, and
// (when the record carries a drift policy) re-arm detection — see
// ServedModel.WarmStart. Beyond the engine-level fingerprint check it
// rejects records that demonstrably belong to a *different* registered
// model: a record stamped with another model's name, or an unstamped
// record whose arena fingerprint matches another registered model but
// not this one — the cross-model mix-up a fleet of similar forests
// makes easy.
func (r *ModelRegistry) LoadCalibration(name string, rd io.Reader) (*CalibrationRecord, error) {
	m, ok := r.Get(name)
	if !ok {
		return nil, &UnknownModelError{Name: name}
	}
	rec, err := decodeCalibrationRecord(rd)
	if err != nil {
		return nil, err
	}
	if rec.Model != "" && rec.Model != name {
		return nil, fmt.Errorf("treeexec: calibration record was saved for model %q, not %q", rec.Model, name)
	}
	if rec.Fingerprint != m.e.Fingerprint() {
		if other := r.fingerprintOwner(rec.Fingerprint, name); other != "" {
			return nil, fmt.Errorf("treeexec: calibration record's arena fingerprint matches registered model %q, not %q", other, name)
		}
	}
	if err := m.WarmStart(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// fingerprintOwner returns the name of a registered model other than
// skip whose engine matches fp, or "".
func (r *ModelRegistry) fingerprintOwner(fp ArenaFingerprint, skip string) string {
	for _, n := range r.Names() {
		if n == skip {
			continue
		}
		if m, ok := r.Get(n); ok && m.e.Fingerprint() == fp {
			return n
		}
	}
	return ""
}
