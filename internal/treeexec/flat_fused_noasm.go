//go:build !amd64 || noasm

package treeexec

// Portable build: no native vector ISA. The SIMD kernel remains fully
// functional through the Go lane-parallel forms — pinning it with
// SetKernel works and produces bit-identical predictions — but
// simdKernelAvailable reports false, so calibration never competes it
// and persisted simd records downgrade on load.

func simdKernelAvailable() bool { return false }

func detectedISA() string { return "" }

func fusedWalk8(nodes []uint64, base int32, q []uint16, nq int32, cur *[8]int32) {
	fusedWalk8Go(nodes, base, q, nq, cur)
}

func fusedRank8(cuts []uint32, lo, n int32, keys *[8]uint32, ranks *[8]uint16) {
	fusedRank8Go(cuts, lo, n, keys, ranks)
}

func fusedWalk16(nodes []uint64, q []uint16, st *simdWalk16, minActive int32) {
	// Same clamp as the amd64 dispatch: minActive < 1 never terminates.
	if minActive < 1 {
		minActive = 1
	}
	fusedWalk16Go(nodes, q, st, minActive)
}
