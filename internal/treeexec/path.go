package treeexec

import (
	"math"

	"flint/internal/core"
	"flint/internal/ieee754"
	"flint/internal/rf"
)

// Decision-path tracing: the same forest walk every kernel runs, but
// recording each inner-node decision instead of only the terminal
// class. The robustness tooling (internal/robust) is built on it — an
// attacker perturbing a row needs to know which thresholds the row's
// walk actually touched and in which direction it crossed them — and it
// doubles as an explainability surface: the full evidence trail behind
// one prediction.
//
// Tracing deliberately reuses each variant's exact comparison predicate
// (FLInt sign-resolved compare, hardware float compare, total-order
// key compare, quantized rank compare), so the traced direction at
// every node is the decision the serving kernels take — not a float
// re-derivation that could disagree in the -0.0/NaN corners. All batch
// kernels (branchy, fused, simd, at every interleave width) are
// bit-identical to the single-row walk by construction and by test, so
// a path traced here is the path any serving configuration walked.

// PathStep records one inner-node decision of a forest walk: the node
// visited, the input column it examined, the split threshold it
// compared against, and the direction the walk took. The FLInt
// comparison convention applies: a row goes left exactly when
// x[Feature] <= Threshold in float total order, so Right reports the
// strict "greater" outcome.
//
// Threshold is the split decoded from the arena back into float space;
// the decoding is exact (arena keys are bijective images of the trained
// split values), so core.PrecodeSplit32(Threshold) reproduces the key
// the kernel compared against. Rank is the threshold's index in the
// feature's sorted distinct cut table — the quantized-rank space the
// compact kernels walk in — and is 0 for the AoS variants, which keep
// no cut tables.
type PathStep struct {
	Tree      int     // tree index within the forest
	Node      int32   // absolute arena index of the inner node
	Feature   int32   // original input column the node examines
	Threshold float32 // split value; x <= Threshold walks left
	Rank      uint16  // split rank in the feature's cut table (compact only)
	Right     bool    // true when the walk took the strict-greater child
}

// DecisionPath walks every tree of the forest for one row, appending
// each inner-node decision to buf (which may be nil; pass the returned
// slice back in to amortize its allocation across rows) and returning
// the steps together with the majority-vote class. The class is
// bit-consistent with Predict for every (kernel, width) serving mode:
// the trace drives the same per-variant comparison the kernels execute,
// and those are bit-identical across kernels by contract.
//
// Leaf-only trees contribute a vote but no steps. The per-row cost is
// one full forest walk plus a step append per inner node visited; keep
// it off the serving hot path and use Predict/PredictBatch there.
func (e *FlatForestEngine) DecisionPath(x []float32, buf []PathStep) ([]PathStep, int32) {
	buf = buf[:0]
	var stack [maxStackClasses]int32
	counts := voteSlice(&stack, e.numClasses)

	if e.variant == FlatCompact {
		var qstack [maxStackQuantizedFeatures]uint16
		var q []uint16
		if e.numPruned <= maxStackQuantizedFeatures {
			q = qstack[:e.numPruned]
		} else {
			q = make([]uint16, e.numPruned)
		}
		e.quantizeRow(q, x)
		for ti, root := range e.roots {
			var class int32
			buf, class = e.traceCompact(q, ti, root, buf)
			counts[class]++
		}
		return buf, rf.Argmax(counts)
	}

	// All AoS variants compare in spaces that are monotone images of
	// the float total order, so one precoded key vector drives every
	// predicate below exactly (see the per-variant le computation).
	var kstack [maxStackQuantizedFeatures]uint32
	var keys []uint32
	if e.numFeatures <= maxStackQuantizedFeatures {
		keys = core.PrecodeFeatures32(kstack[:0:e.numFeatures], x)
	} else {
		keys = core.PrecodeFeatures32(nil, x)
	}
	for ti, root := range e.roots {
		var class int32
		buf, class = e.traceAoS(keys, ti, root, buf)
		counts[class]++
	}
	return buf, rf.Argmax(counts)
}

// quantizeRow maps one float row into the compact arena's pruned rank
// space — quantizeBits without the pre-encoded bit-pattern detour.
func (e *FlatForestEngine) quantizeRow(dst []uint16, x []float32) {
	cuts, cutLo := e.cuts, e.cutLo
	for p, f := range e.prunedOrig {
		key := ieee754.TotalOrderKey32(math.Float32bits(x[f]))
		lo, hi := cutLo[p], cutLo[p+1]
		for lo < hi {
			mid := lo + (hi-lo)/2
			if cuts[mid] >= key {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		dst[p] = uint16(lo - cutLo[p])
	}
}

// traceCompact is classifyCompact with step recording: the identical
// rank-space predicate, plus the threshold decoded from the cut table
// the rank indexes.
func (e *FlatForestEngine) traceCompact(q []uint16, ti int, root int32, buf []PathStep) ([]PathStep, int32) {
	if root < 0 {
		return buf, ^root
	}
	keys, feats, kids := e.keys16, e.feats16, e.kids
	base := int(root)
	rel := 0
	for rel >= 0 {
		i := base + rel
		w := kids[i]
		p := feats[i]
		rank := keys[i]
		le := q[p] <= rank
		buf = append(buf, PathStep{
			Tree:      ti,
			Node:      int32(i),
			Feature:   e.prunedOrig[p],
			Threshold: math.Float32frombits(ieee754.FromTotalOrderKey32(e.cuts[e.cutLo[p]+int32(rank)])),
			Rank:      rank,
			Right:     !le,
		})
		if le {
			rel = int(int16(w))
		} else {
			rel = int(int16(w >> 16))
		}
	}
	return buf, int32(^rel)
}

// traceAoS walks one AoS-arena tree over precoded total-order keys,
// recording each decision. For every AoS variant the stored key is a
// monotone bijection of the split's total-order key, so the single
// uint32 compare here takes exactly the branch the variant's own
// predicate takes (the cross-variant agreement the engine test suite
// pins), while the threshold decodes per the variant's key space.
func (e *FlatForestEngine) traceAoS(keys []uint32, ti int, root int32, buf []PathStep) ([]PathStep, int32) {
	arena := e.arena
	i := root
	for i >= 0 {
		n := &arena[i]
		var threshold float32
		switch e.variant {
		case FlatPrecoded:
			threshold = math.Float32frombits(ieee754.FromTotalOrderKey32(uint32(n.key)))
		default: // FlatFLInt and FlatFloat32 store SI(bits(split))
			threshold = ieee754.FromSI32(n.key)
		}
		le := keys[n.feature] <= core.PrecodeSplit32(threshold)
		buf = append(buf, PathStep{
			Tree:      ti,
			Node:      i,
			Feature:   n.feature,
			Threshold: threshold,
			Right:     !le,
		})
		if le {
			i = n.left
		} else {
			i = n.right
		}
	}
	return buf, ^i
}
