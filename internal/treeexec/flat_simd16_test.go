package treeexec

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"flint/internal/dataset"
)

// Differential coverage for the width-16 dual-group walk and the hybrid
// simd-quant kernel (flat_simd16.go). Like the 8-lane suite these run
// identically under the AVX2 assembly and the portable forms.

// TestSIMD16BitIdenticalAllWorkloads pins the dual-group streaming walk
// against the FLInt arena on every bundled workload, at every refill
// threshold class (kernel default, compaction off, aggressive) and with
// 13-row batches so chunks of 16, partial chunks and the queue-dry
// drain path are all exercised.
func TestSIMD16BitIdenticalAllWorkloads(t *testing.T) {
	for _, ds := range dataset.Names() {
		ds := ds
		t.Run(ds, func(t *testing.T) {
			f, d := trainedForest(t, ds, 8, 6)
			ref, err := NewFlat(f, FlatFLInt)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewFlat(f, FlatCompact)
			if err != nil {
				t.Fatal(err)
			}
			if e.Variant() != FlatCompact {
				t.Fatalf("fell back to %v", e.Variant())
			}
			want := make([]int32, d.Len())
			for i, x := range d.Features {
				want[i] = ref.Predict(x)
			}
			e.SetKernel(KernelSIMD)
			if w := e.SetInterleave(16); w != 16 {
				t.Fatalf("SetInterleave(16) = %d on the compact arena", w)
			}
			if e.Interleave() != 16 || e.Kernel() != KernelSIMD {
				t.Fatalf("installed mode = (%d, %v), want (16, simd)", e.Interleave(), e.Kernel())
			}
			got := e.PredictBatch(d.Features, nil, 2, 13)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("row %d: simd16 batch got %d want %d", i, got[i], want[i])
				}
			}
			// Every compaction threshold class through the explicit-mode
			// path: scheduling changes, answers must not.
			s := e.newScratch()
			out := make([]int32, d.Len())
			for _, refill := range []int32{0, 1, 3, defaultSIMDRefill, 16} {
				for i := range out {
					out[i] = -1
				}
				e.predictBlockMode(d.Features, out, s, 16, KernelSIMD, refill)
				for i := range out {
					if out[i] != want[i] {
						t.Fatalf("refill %d row %d: got %d want %d", refill, i, out[i], want[i])
					}
				}
			}
		})
	}
}

// TestSIMDQuantBitIdenticalAllWorkloads pins the hybrid kernel — vector
// quantizer, scalar fused walk — on every workload at every width,
// including the single-row serving paths under an installed simd-quant
// mode.
func TestSIMDQuantBitIdenticalAllWorkloads(t *testing.T) {
	for _, ds := range dataset.Names() {
		ds := ds
		t.Run(ds, func(t *testing.T) {
			f, d := trainedForest(t, ds, 8, 6)
			ref, err := NewFlat(f, FlatFLInt)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewFlat(f, FlatCompact)
			if err != nil {
				t.Fatal(err)
			}
			if e.Variant() != FlatCompact {
				t.Fatalf("fell back to %v", e.Variant())
			}
			e.SetKernel(KernelSIMDQuant)
			want := make([]int32, d.Len())
			for i, x := range d.Features {
				want[i] = ref.Predict(x)
				if got := e.Predict(x); got != want[i] {
					t.Fatalf("row %d: simd-quant single-row got %d want %d", i, got, want[i])
				}
			}
			for _, width := range []int{1, 2, 4, 8} {
				e.SetInterleave(width)
				if e.Kernel() != KernelSIMDQuant {
					t.Fatalf("SetInterleave(%d) dropped the simd-quant kernel", width)
				}
				got := e.PredictBatch(d.Features, nil, 2, 13)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("width %d row %d: simd-quant batch got %d want %d", width, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestSIMD16PartialGroups drives the streaming driver at every batch
// length 1..16 plus sizes that leave partial trailing chunks, so every
// lane-fill shape — full dual group, one group plus a partial, single
// partial group — hits the refill and drain logic.
func TestSIMD16PartialGroups(t *testing.T) {
	f, d := trainedForest(t, "magic", 7, 7)
	ref, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", e.Variant())
	}
	s := e.newScratch()
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 23, 31, 33} {
		rows := d.Features[:n]
		want := make([]int32, n)
		for i, x := range rows {
			want[i] = ref.Predict(x)
		}
		for _, refill := range []int32{1, defaultSIMDRefill} {
			out := make([]int32, n)
			e.predictBlockMode(rows, out, s, 16, KernelSIMD, refill)
			for i := range out {
				if out[i] != want[i] {
					t.Fatalf("n=%d refill=%d row %d: got %d want %d", n, refill, i, out[i], want[i])
				}
			}
		}
	}
}

// TestFusedWalk16MatchesGo pins the dispatched dual-group walk against
// the portable form at the STATE level: with per-lane trees, per-lane
// row offsets, pre-finished and parked lanes, and every occupancy
// threshold, both forms must hold identical cursors when the walk
// returns — the streaming driver resumes a group mid-walk after each
// refill, so final-class agreement alone would not be enough.
func TestFusedWalk16MatchesGo(t *testing.T) {
	e := syntheticCompactEngine(64 << 10)
	rows := e.representativeRows(64, 0x2719)
	nq := e.numPruned
	q := make([]uint16, 16*nq+2)
	rng := rand.New(rand.NewSource(41))
	var inner []int32
	for _, root := range e.roots {
		if root >= 0 {
			inner = append(inner, root)
		}
	}
	if len(inner) == 0 {
		t.Fatal("synthetic forest has no inner trees")
	}
	for at := 0; at+16 <= len(rows); at += 16 {
		e.quantizeBlockSIMD(rows[at:at+8], q)
		e.quantizeBlockSIMD(rows[at+8:at+16], q[8*nq:])
		for _, minActive := range []int32{1, 4, defaultSIMDRefill, 12, 16} {
			var st simdWalk16
			for i := range st.cur {
				st.base[i] = inner[rng.Intn(len(inner))]
				st.qoff[i] = int32(rng.Intn(16)) * int32(nq)
				switch rng.Intn(5) {
				case 0:
					st.cur[i] = ^int32(rng.Intn(3)) // pre-finished lane
				case 1:
					st.cur[i] = -1 // parked lane
				}
			}
			stGo := st
			fusedWalk16(e.nodes64, q, &st, minActive)
			fusedWalk16Go(e.nodes64, q, &stGo, minActive)
			if st != stGo {
				t.Fatalf("minActive %d: dispatched state %+v, portable %+v", minActive, st, stGo)
			}
			active := 0
			for i := range st.cur {
				if st.cur[i] >= 0 {
					active++
				}
			}
			if int32(active) >= minActive {
				t.Fatalf("minActive %d: walk returned with %d lanes still active", minActive, active)
			}
		}
	}
}

// TestSIMD16ZeroAllocSteadyState pins the zero-alloc steady state for
// both new paths: the width-16 dual-group walk and the simd-quant
// hybrid, through the full Batcher serving stack.
func TestSIMD16ZeroAllocSteadyState(t *testing.T) {
	f, d := trainedForest(t, "magic", 6, 8)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", e.Variant())
	}
	for _, tc := range []struct {
		kernel Kernel
		width  int
	}{
		{KernelSIMD, 16},
		{KernelSIMDQuant, 8},
		{KernelSIMDQuant, 4},
	} {
		e.SetKernel(tc.kernel)
		e.SetInterleave(tc.width)
		b := NewBatcher(e, 2, 7)
		out := make([]int32, d.Len())
		b.Predict(d.Features, out) // warm up
		if avg := testing.AllocsPerRun(20, func() {
			b.Predict(d.Features, out)
		}); avg != 0 {
			t.Errorf("%v width=%d: Batcher.Predict allocates %.1f objects per batch, want 0",
				tc.kernel, tc.width, avg)
		}
		b.Close()
	}
}

// TestModeTransitionsUnderLiveTraffic cycles the installed (width,
// kernel, refill) mode through every kernel family — x8 simd, x16 simd,
// x4 fused, x8 simd-quant — while three goroutines Predict, asserting
// bit-identical answers throughout. Run under -race (CI does) this pins
// that the whole tuple installs atomically: a torn width/kernel pair
// would either race or mis-answer.
func TestModeTransitionsUnderLiveTraffic(t *testing.T) {
	f, d := trainedForest(t, "sensorless", 6, 6)
	ref, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", e.Variant())
	}
	want := make([]int32, d.Len())
	for i, x := range d.Features {
		want[i] = ref.Predict(x)
	}
	b := NewBatcher(e, 3, 13)
	defer b.Close()

	stop := make(chan struct{})
	errc := make(chan error, 3)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]int32, d.Len())
			for {
				select {
				case <-stop:
					return
				default:
				}
				b.Predict(d.Features, out)
				for i := range out {
					if out[i] != want[i] {
						select {
						case errc <- fmt.Errorf("mode transition mismatch at row %d: got %d want %d", i, out[i], want[i]):
						default:
						}
						return
					}
				}
			}
		}()
	}
	for cycle := 0; cycle < 30; cycle++ {
		for _, m := range []struct {
			width  int
			kernel Kernel
		}{
			{8, KernelSIMD},
			{16, KernelSIMD},
			{4, KernelFused},
			{8, KernelSIMDQuant},
		} {
			e.SetKernel(m.kernel)
			e.SetInterleave(m.width)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
