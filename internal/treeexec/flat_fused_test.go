package treeexec

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"flint/internal/core"
	"flint/internal/dataset"
	"flint/internal/rf"
)

// TestFusedNodeMirror pins the nodes64 encoding: every compact node's
// fused word must be exactly its three parallel-slice fields packed as
// key16 | feat16<<16 | kids32<<32, on a trained forest and on the
// synthetic calibration arena.
func TestFusedNodeMirror(t *testing.T) {
	f, _ := trainedForest(t, "magic", 6, 6)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", e.Variant())
	}
	for _, eng := range []*FlatForestEngine{e, syntheticCompactEngine(64 << 10)} {
		if len(eng.nodes64) != len(eng.kids) {
			t.Fatalf("nodes64 holds %d words for %d nodes", len(eng.nodes64), len(eng.kids))
		}
		for i := range eng.kids {
			want := uint64(eng.keys16[i]) | uint64(eng.feats16[i])<<16 | uint64(uint32(eng.kids[i]))<<32
			if eng.nodes64[i] != want {
				t.Fatalf("node %d fused word = %#x, want %#x", i, eng.nodes64[i], want)
			}
		}
	}
}

// TestBranchlessRankMatchesBranchy drives the branchless binary search
// against the branchy one over random cut tables, covering the edges
// rank arithmetic gets wrong first: keys below every cut, above every
// cut, exact hits, immediate neighbors of hits, and empty/1-element
// segments.
func TestBranchlessRankMatchesBranchy(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	branchy := func(cuts []uint32, lo, hi int32, key uint32) uint16 {
		l, h := lo, hi
		for l < h {
			mid := l + (h-l)/2
			if cuts[mid] >= key {
				h = mid
			} else {
				l = mid + 1
			}
		}
		return uint16(l - lo)
	}
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40) // including 0- and 1-element tables
		cuts := make([]uint32, 0, n)
		v := uint32(rng.Intn(10))
		for len(cuts) < n {
			cuts = append(cuts, v)
			v += 1 + uint32(rng.Intn(1<<20))
		}
		probes := []uint32{0, 1, math.MaxUint32, math.MaxUint32 - 1}
		for _, c := range cuts {
			probes = append(probes, c, c-1, c+1)
		}
		for i := 0; i < 20; i++ {
			probes = append(probes, rng.Uint32())
		}
		for _, key := range probes {
			got := branchlessRank(cuts, 0, int32(len(cuts)), key)
			want := branchy(cuts, 0, int32(len(cuts)), key)
			if got != want {
				t.Fatalf("trial %d: rank(%d over %v) = %d, want %d", trial, key, cuts, got, want)
			}
		}
	}
}

// TestFusedBitIdenticalAllWorkloads is the tentpole acceptance test:
// on every bundled workload the fused kernel must match the FLInt arena
// prediction-for-prediction — single-row encoded and precoded paths
// under an installed fused kernel, and the batch kernel at every
// interleave width.
func TestFusedBitIdenticalAllWorkloads(t *testing.T) {
	for _, ds := range dataset.Names() {
		ds := ds
		t.Run(ds, func(t *testing.T) {
			f, d := trainedForest(t, ds, 8, 6)
			ref, err := NewFlat(f, FlatFLInt)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewFlat(f, FlatCompact)
			if err != nil {
				t.Fatal(err)
			}
			if e.Variant() != FlatCompact {
				t.Fatalf("fell back to %v", e.Variant())
			}
			e.SetKernel(KernelFused)
			want := make([]int32, d.Len())
			for i, x := range d.Features {
				want[i] = ref.Predict(x)
				if got := e.Predict(x); got != want[i] {
					t.Fatalf("row %d: fused single-row got %d want %d", i, got, want[i])
				}
				if got := e.PredictEncoded(core.EncodeFeatures32(nil, x)); got != want[i] {
					t.Fatalf("row %d: fused encoded got %d want %d", i, got, want[i])
				}
				if got := e.PredictPrecoded(core.PrecodeFeatures32(nil, x)); got != want[i] {
					t.Fatalf("row %d: fused precoded got %d want %d", i, got, want[i])
				}
			}
			for _, width := range []int{1, 2, 4, 8} {
				e.SetInterleave(width)
				if e.Kernel() != KernelFused {
					t.Fatalf("SetInterleave(%d) dropped the fused kernel", width)
				}
				got := e.PredictBatch(d.Features, nil, 2, 13)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("width %d row %d: fused batch got %d want %d", width, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestFusedAdversarialRandomForests cross-checks the fused kernel on
// randomly grown trees over the extreme split-value pool (signed zeros,
// subnormals, extremes) at every width — the same gauntlet the branchy
// compact kernel passes, now through the shift-select step and the
// branchless quantizer.
func TestFusedAdversarialRandomForests(t *testing.T) {
	rng := rand.New(rand.NewSource(654))
	splitPool := []float32{
		0, float32(math.Copysign(0, -1)), 1.5, -1.5,
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		math.MaxFloat32, -math.MaxFloat32, 3.25e-20, -7.5e12,
	}
	randTree := func(depth int) rf.Tree {
		var nodes []rf.Node
		var grow func(d int) int32
		grow = func(d int) int32 {
			me := int32(len(nodes))
			if d == 0 || rng.Float64() < 0.3 {
				nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(rng.Intn(3))})
				return me
			}
			nodes = append(nodes, rf.Node{
				Feature: int32(rng.Intn(4)),
				Split:   splitPool[rng.Intn(len(splitPool))],
			})
			l := grow(d - 1)
			r := grow(d - 1)
			nodes[me].Left = l
			nodes[me].Right = r
			return me
		}
		grow(depth)
		return rf.Tree{Nodes: nodes}
	}
	for trial := 0; trial < 20; trial++ {
		f := &rf.Forest{NumFeatures: 4, NumClasses: 3,
			Trees: []rf.Tree{randTree(6), randTree(6), randTree(6)}}
		ref, err := NewFlat(f, FlatFLInt)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewFlat(f, FlatCompact)
		if err != nil {
			t.Fatal(err)
		}
		e.SetKernel(KernelFused)
		rows := make([][]float32, 0, 64)
		for probe := 0; probe < 64; probe++ {
			x := make([]float32, 4)
			for j := range x {
				if rng.Intn(2) == 0 {
					x[j] = splitPool[rng.Intn(len(splitPool))]
				} else {
					x[j] = splitPool[rng.Intn(len(splitPool))] * float32(rng.NormFloat64())
				}
			}
			rows = append(rows, x)
		}
		for _, width := range []int{1, 2, 4, 8} {
			e.SetInterleave(width)
			got := e.PredictBatch(rows, nil, 1, 16)
			for i := range rows {
				if want := ref.Predict(rows[i]); got[i] != want {
					t.Fatalf("trial %d width %d row %d: fused got %d want %d for %v",
						trial, width, i, got[i], want, rows[i])
				}
			}
		}
	}
}

// TestCompactPrecodedDifferentialBothKernels covers quantizeKeys and
// PredictPrecoded on the compact variant directly (they were only
// exercised incidentally before): for every workload, the precoded path
// must match the float path row for row under both kernels, and the
// batch kernel must agree at every width. A feature-pruned forest
// (prunedOrig non-identity) rides along via the wide sparse-split
// construction below.
func TestCompactPrecodedDifferentialBothKernels(t *testing.T) {
	for _, ds := range dataset.Names() {
		ds := ds
		t.Run(ds, func(t *testing.T) {
			f, d := trainedForest(t, ds, 6, 5)
			float, err := NewFlat(f, FlatFloat32)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewFlat(f, FlatCompact)
			if err != nil {
				t.Fatal(err)
			}
			if e.Variant() != FlatCompact {
				t.Fatalf("fell back to %v", e.Variant())
			}
			for _, k := range []Kernel{KernelBranchy, KernelFused, KernelSIMD} {
				e.SetKernel(k)
				for i, x := range d.Features {
					want := float.Predict(x)
					if got := e.PredictPrecoded(core.PrecodeFeatures32(nil, x)); got != want {
						t.Fatalf("%v row %d: precoded got %d, float path wants %d", k, i, got, want)
					}
				}
				for _, width := range []int{1, 2, 4, 8} {
					e.SetInterleave(width)
					got := e.PredictBatch(d.Features, nil, 1, 16)
					for i, x := range d.Features {
						if want := float.Predict(x); got[i] != want {
							t.Fatalf("%v width %d row %d: batch got %d, float path wants %d", k, width, i, got[i], want)
						}
					}
				}
			}
		})
	}
	// The pruned-gap shape: splits on a scattered handful of 30 columns,
	// so quantizeKeys translates through a non-identity prunedOrig.
	rng := rand.New(rand.NewSource(31))
	splitFeats := []int32{2, 11, 28}
	var nodes []rf.Node
	var grow func(d int) int32
	grow = func(d int) int32 {
		me := int32(len(nodes))
		if d == 0 || rng.Float64() < 0.25 {
			nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(rng.Intn(3))})
			return me
		}
		nodes = append(nodes, rf.Node{
			Feature: splitFeats[rng.Intn(len(splitFeats))],
			Split:   float32(rng.NormFloat64()),
		})
		l := grow(d - 1)
		r := grow(d - 1)
		nodes[me].Left = l
		nodes[me].Right = r
		return me
	}
	grow(7)
	f := &rf.Forest{NumFeatures: 30, NumClasses: 3, Trees: []rf.Tree{{Nodes: nodes}}}
	float, err := NewFlat(f, FlatFloat32)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kernel{KernelBranchy, KernelFused, KernelSIMD} {
		e.SetKernel(k)
		for i := 0; i < 64; i++ {
			x := make([]float32, 30)
			for j := range x {
				x[j] = float32(rng.NormFloat64())
			}
			want := float.Predict(x)
			if got := e.PredictPrecoded(core.PrecodeFeatures32(nil, x)); got != want {
				t.Fatalf("%v pruned row %d: precoded got %d, float path wants %d", k, i, got, want)
			}
		}
	}
}

// skewTree returns a right-spine chain of depth inner nodes on feature
// feat: a row exits at depth min(floor(value)+1, depth) for values in
// [0, depth), at depth 1 for negative values, and walks the whole chain
// for values past the last split — so rows control exactly how deep
// each lane survives.
func skewTree(depth int, feat int32) rf.Tree {
	nodes := make([]rf.Node, 0, 2*depth+1)
	for k := 0; k < depth; k++ {
		me := int32(len(nodes))
		nodes = append(nodes, rf.Node{Feature: feat, Split: float32(k), Left: me + 1, Right: me + 2})
		nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(k % 3)})
	}
	nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: 2})
	return rf.Tree{Nodes: nodes}
}

// TestSkewedDepthFinishDrains pins the finishCompact/finishCompactFused
// drains of the 2/4/8-way walks: an adversarial chain forest where each
// lane of an interleaved group leafs at a controlled depth — one lane
// surviving to depth 48 while the rest exit immediately, rotated
// through every lane position, plus staircase and uniform patterns —
// must stay bit-identical to the FLInt arena under both kernels.
func TestSkewedDepthFinishDrains(t *testing.T) {
	const depth = 48
	f := &rf.Forest{NumFeatures: 2, NumClasses: 3, Trees: []rf.Tree{
		skewTree(depth, 0),
		skewTree(depth, 1),
	}}
	ref, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", e.Variant())
	}
	depthVal := func(d int) float32 {
		// A value leafing at depth d+1 on the chain; d >= depth walks
		// the whole spine.
		if d >= depth {
			return depth + 1
		}
		return float32(d) + 0.5
	}
	var rows [][]float32
	// One deep lane rotated through every position of a group of 8,
	// shallow everywhere else — each rotation pins a different drain.
	for pos := 0; pos < 8; pos++ {
		for lane := 0; lane < 8; lane++ {
			d0, d1 := 0, 0
			if lane == pos {
				d0, d1 = depth, depth/2
			}
			rows = append(rows, []float32{depthVal(d0), depthVal(d1)})
		}
	}
	// Staircases (every lane a different depth, ascending and
	// descending across the two features) and uniform extremes.
	for lane := 0; lane < 8; lane++ {
		rows = append(rows, []float32{depthVal(lane * 6), depthVal((7 - lane) * 6)})
	}
	for lane := 0; lane < 8; lane++ {
		rows = append(rows, []float32{depthVal(depth), depthVal(depth)})
	}
	for lane := 0; lane < 8; lane++ {
		rows = append(rows, []float32{-1, -1})
	}
	want := make([]int32, len(rows))
	for i, x := range rows {
		want[i] = ref.Predict(x)
	}
	for _, k := range []Kernel{KernelBranchy, KernelFused, KernelSIMDQuant, KernelSIMD} {
		e.SetKernel(k)
		widths := []int{2, 4, 8}
		if k == KernelSIMD {
			// The dual-group walk's refill scheduling is exactly what a
			// skewed-depth forest stresses: one lane pinning the group.
			widths = append(widths, 16)
		}
		for _, width := range widths {
			e.SetInterleave(width)
			got := e.PredictBatch(rows, nil, 1, 8)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v width %d row %d: got %d want %d (lanes %v)", k, width, i, got[i], want[i], rows[i])
				}
			}
		}
	}
}

// TestFusedZeroAllocSteadyState extends the zero-alloc acceptance
// criterion to the fused kernel: steady-state Batcher prediction with
// the fused kernel installed allocates nothing at any interleave width.
func TestFusedZeroAllocSteadyState(t *testing.T) {
	f, d := trainedForest(t, "magic", 6, 8)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", e.Variant())
	}
	e.SetKernel(KernelFused)
	for _, width := range []int{1, 2, 4, 8} {
		e.SetInterleave(width)
		b := NewBatcher(e, 2, 7)
		out := make([]int32, d.Len())
		b.Predict(d.Features, out) // warm up
		if avg := testing.AllocsPerRun(20, func() {
			b.Predict(d.Features, out)
		}); avg != 0 {
			t.Errorf("width=%d: fused Batcher.Predict allocates %.1f objects per batch, want 0", width, avg)
		}
		b.Close()
	}
}

// TestSetKernelSemantics pins the knob's contract: non-compact engines
// have no fused kernel (the call is a no-op), SetInterleave preserves
// the kernel, SetKernel preserves the width and marks the source
// manual, and a pinned kernel survives calibration — under the pin,
// calibration times widths but never flips the kernel.
func TestSetKernelSemantics(t *testing.T) {
	f, d := trainedForest(t, "wine", 5, 4)
	flat, err := NewFlat(f, FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	if got := flat.SetKernel(KernelFused); got != KernelBranchy {
		t.Errorf("SetKernel on FlatFLInt adopted %v, want branchy no-op", got)
	}
	if flat.Kernel() != KernelBranchy {
		t.Errorf("FlatFLInt kernel = %v after no-op", flat.Kernel())
	}

	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kernel() != KernelBranchy {
		t.Fatalf("fresh compact engine kernel = %v, want branchy (zero CompactFusedMin)", e.Kernel())
	}
	e.SetInterleave(4)
	if got := e.SetKernel(KernelFused); got != KernelFused {
		t.Fatalf("SetKernel(fused) adopted %v", got)
	}
	if e.Interleave() != 4 {
		t.Errorf("SetKernel changed the width to %d", e.Interleave())
	}
	if src := e.CalibrationSource(); src != "manual" {
		t.Errorf("source = %q after SetKernel, want \"manual\"", src)
	}
	e.SetInterleave(2)
	if e.Kernel() != KernelFused {
		t.Errorf("SetInterleave dropped the kernel to %v", e.Kernel())
	}
	for _, k := range []Kernel{KernelFused, KernelBranchy} {
		e.SetKernel(k)
		e.CalibrateInterleaveRows(d.Features, 4*time.Millisecond)
		if e.Kernel() != k {
			t.Errorf("calibration flipped the pinned kernel %v to %v", k, e.Kernel())
		}
	}
	// KernelAuto clears the pin without touching the installed kernel;
	// the next calibration is free to choose either.
	e.SetKernel(KernelFused)
	if got := e.SetKernel(KernelAuto); got != KernelFused {
		t.Errorf("SetKernel(auto) returned %v, want the untouched fused kernel", got)
	}
	if e.kernelPin.Load() != 0 {
		t.Error("SetKernel(auto) left the pin set")
	}
	e.CalibrateInterleaveRows(d.Features, 4*time.Millisecond)
	if k := e.Kernel(); k != KernelBranchy && k != KernelFused {
		t.Errorf("unpinned calibration installed %v", k)
	}
}

// TestKernelForBoundaries covers the gate-side kernel selection: the
// CompactFusedMin byte threshold applies to compact arenas only, and
// the zero (legacy) and MaxInt (fused-never-won) values both keep the
// branchy kernel.
func TestKernelForBoundaries(t *testing.T) {
	g := InterleaveGates{CompactFusedMin: 1000}
	for _, tc := range []struct {
		bytes int
		want  Kernel
	}{{0, KernelBranchy}, {999, KernelBranchy}, {1000, KernelFused}, {1 << 30, KernelFused}} {
		if got := g.kernelFor(FlatCompact, tc.bytes); got != tc.want {
			t.Errorf("kernelFor(FlatCompact, %d) = %v, want %v", tc.bytes, got, tc.want)
		}
		if got := g.kernelFor(FlatFLInt, tc.bytes); got != KernelBranchy {
			t.Errorf("kernelFor(FlatFLInt, %d) = %v, want branchy", tc.bytes, got)
		}
	}
	for _, min := range []int{0, math.MaxInt} {
		g := InterleaveGates{CompactFusedMin: min}
		if got := g.kernelFor(FlatCompact, 1<<30); got != KernelBranchy {
			t.Errorf("kernelFor with CompactFusedMin=%d = %v, want branchy", min, got)
		}
	}
	// Engines read the threshold at construction.
	defer SetInterleaveGates(DefaultInterleaveGates())
	f, _ := trainedForest(t, "wine", 5, 4)
	SetInterleaveGates(InterleaveGates{Min2: math.MaxInt, Min4: math.MaxInt, Min8: math.MaxInt,
		CompactMin2: math.MaxInt, CompactMin4: math.MaxInt, CompactMin8: math.MaxInt, CompactFusedMin: 1})
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kernel() != KernelFused {
		t.Errorf("construction-time kernel = %v under a 1-byte fused gate, want fused", e.Kernel())
	}
}

// TestKernelGatesFromLadder checks the monotone two-threshold
// derivation: a less aggressive kernel winning above a more aggressive
// one is noise and must not split either region, and each gate is the
// smallest ladder size at or above which its kernel (or a more
// aggressive one) won.
func TestKernelGatesFromLadder(t *testing.T) {
	sizes := []int{10, 20, 40, 80}
	for _, tc := range []struct {
		bestAt                         []Kernel
		wantFused, wantQuant, wantSIMD int
	}{
		{[]Kernel{KernelBranchy, KernelBranchy, KernelBranchy, KernelBranchy}, math.MaxInt, math.MaxInt, math.MaxInt},
		{[]Kernel{KernelFused, KernelFused, KernelFused, KernelFused}, 10, math.MaxInt, math.MaxInt},
		{[]Kernel{KernelBranchy, KernelBranchy, KernelFused, KernelFused}, 40, math.MaxInt, math.MaxInt},
		{[]Kernel{KernelBranchy, KernelFused, KernelBranchy, KernelFused}, 20, math.MaxInt, math.MaxInt}, // noise forced monotone
		{[]Kernel{KernelSIMD, KernelSIMD, KernelSIMD, KernelSIMD}, 10, 10, 10},
		{[]Kernel{KernelBranchy, KernelFused, KernelSIMD, KernelSIMD}, 20, 40, 40},
		{[]Kernel{KernelBranchy, KernelSIMD, KernelFused, KernelSIMD}, 20, 20, 20}, // fused dip is noise
		{[]Kernel{KernelFused, KernelBranchy, KernelSIMD, KernelBranchy}, 10, 40, 40},
		// The hybrid sits between fused and simd in aggressiveness: a
		// simd-quant win opens the quant gate but not the simd gate.
		{[]Kernel{KernelSIMDQuant, KernelSIMDQuant, KernelSIMDQuant, KernelSIMDQuant}, 10, 10, math.MaxInt},
		{[]Kernel{KernelBranchy, KernelFused, KernelSIMDQuant, KernelSIMD}, 20, 40, 80},
		{[]Kernel{KernelBranchy, KernelSIMDQuant, KernelFused, KernelSIMD}, 20, 20, 80}, // fused dip is noise
	} {
		gotFused, gotQuant, gotSIMD := kernelGatesFromLadder(sizes, append([]Kernel(nil), tc.bestAt...))
		if gotFused != tc.wantFused || gotQuant != tc.wantQuant || gotSIMD != tc.wantSIMD {
			t.Errorf("kernelGatesFromLadder(%v) = (%d, %d, %d), want (%d, %d, %d)",
				tc.bestAt, gotFused, gotQuant, gotSIMD, tc.wantFused, tc.wantQuant, tc.wantSIMD)
		}
	}
}

// TestParseKernel pins the name mapping, including the legacy empty
// string.
func TestParseKernel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kernel
		ok   bool
	}{
		{"", KernelBranchy, true},
		{"branchy", KernelBranchy, true},
		{"fused", KernelFused, true},
		{"simd-quant", KernelSIMDQuant, true},
		{"simd", KernelSIMD, true},
		{"avx2", KernelBranchy, false},
	} {
		got, err := ParseKernel(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseKernel(%q) = (%v, %v), want (%v, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if KernelBranchy.String() != "branchy" || KernelFused.String() != "fused" ||
		KernelSIMDQuant.String() != "simd-quant" || KernelSIMD.String() != "simd" {
		t.Errorf("kernel names = %q/%q/%q/%q", KernelBranchy.String(), KernelFused.String(),
			KernelSIMDQuant.String(), KernelSIMD.String())
	}
}
