package treeexec

import (
	"math"

	"flint/internal/ieee754"
	"flint/internal/rf"
)

// The fused kernel is the branch-free form of the compact walk. The
// branchy kernel (flat_compact.go) executes, per cursor per level, one
// data-dependent branch (`if q[feats[i]] <= keys[i]`) plus three
// separate slice loads (keys16, feats16, kids). On deep forests those
// branches are close to 50/50 — a trained split divides its reachable
// inputs — so the predictor mispredicts near half of them and each
// mispredict flushes the pipeline. FLInt's core move is converting a
// control dependency (the float-compare branch structure) into integer
// data flow; this kernel applies the same conversion to the *child
// select*:
//
//	w := nodes64[base+rel]                               // one load: key | feat | kids
//	b := (uint32(uint16(w)) - uint32(q[uint16(w>>16)])) >> 31
//	rel = int(int16(uint32(w>>32) >> (b << 4)))          // shift-select the child half
//
// b is 1 exactly when q > key (the uint32 subtraction of two
// zero-extended uint16s underflows, setting bit 31), so the shift picks
// the right child's int16 half without a conditional: lanes never
// diverge in code, only in data. The walk's sole branch is the loop
// exit (`rel >= 0`), which mispredicts once per chain instead of once
// per level. The price is a longer serial dependency per step — the
// select now sits on the load's critical path — which is why neither
// kernel dominates: calibration times both and the gates/mode decide.
//
// The quantizers get the same treatment: quantizeBlockFused and
// quantizeKeysFused run a branchless binary search (fixed iteration
// count, arithmetic select of the half to keep) over the same cut
// tables, producing identical ranks.

// packNode64 fuses one compact node into a single word: the split rank
// in the low 16 bits, the pruned feature index in the next 16, and the
// packed kids word (packKids) in the high 32.
func packNode64(rank, feat uint16, kids int32) uint64 {
	return uint64(rank) | uint64(feat)<<16 | uint64(uint32(kids))<<32
}

// fusedStep resolves one walk step from a fused node word: branch-free
// child select as derived above. It must mirror the branchy step
// exactly: q[feat] <= key picks the low (left) half, otherwise the
// high (right) half.
func fusedStep(w uint64, q []uint16) int {
	b := (uint32(uint16(w)) - uint32(q[uint16(w>>16)])) >> 31
	return int(int16(uint32(w>>32) >> (b << 4)))
}

// classifyCompactFused walks one tree of the compact arena for one
// quantized row using the fused branch-free step.
func (e *FlatForestEngine) classifyCompactFused(q []uint16, root int32) int32 {
	if root < 0 {
		return ^root
	}
	nodes := e.nodes64
	base := int(root)
	rel := 0
	for rel >= 0 {
		rel = fusedStep(nodes[base+rel], q)
	}
	return int32(^rel)
}

// classify2CompactFused walks one tree for two quantized rows with
// register-resident cursors, each stepped branch-free.
func (e *FlatForestEngine) classify2CompactFused(q0, q1 []uint16, root int32) (int32, int32) {
	if root < 0 {
		return ^root, ^root
	}
	nodes := e.nodes64
	base := int(root)
	r0, r1 := 0, 0
	for r0 >= 0 && r1 >= 0 {
		w0, w1 := nodes[base+r0], nodes[base+r1]
		r0 = fusedStep(w0, q0)
		r1 = fusedStep(w1, q1)
	}
	if r0 >= 0 {
		return e.finishCompactFused(q0, base, r0), int32(^r1)
	}
	if r1 >= 0 {
		return int32(^r0), e.finishCompactFused(q1, base, r1)
	}
	return int32(^r0), int32(^r1)
}

// classify4CompactFused is the 4-way interleaved fused walk.
func (e *FlatForestEngine) classify4CompactFused(q0, q1, q2, q3 []uint16, root int32) (int32, int32, int32, int32) {
	if root < 0 {
		c := ^root
		return c, c, c, c
	}
	nodes := e.nodes64
	base := int(root)
	r0, r1, r2, r3 := 0, 0, 0, 0
	for r0 >= 0 && r1 >= 0 && r2 >= 0 && r3 >= 0 {
		w0, w1, w2, w3 := nodes[base+r0], nodes[base+r1], nodes[base+r2], nodes[base+r3]
		r0 = fusedStep(w0, q0)
		r1 = fusedStep(w1, q1)
		r2 = fusedStep(w2, q2)
		r3 = fusedStep(w3, q3)
	}
	return e.finishCompactFused(q0, base, r0), e.finishCompactFused(q1, base, r1),
		e.finishCompactFused(q2, base, r2), e.finishCompactFused(q3, base, r3)
}

// classify8CompactFused is the 8-way interleaved fused walk. Classes
// are written into out to keep the signature manageable.
func (e *FlatForestEngine) classify8CompactFused(q *[8][]uint16, root int32, out *[8]int32) {
	if root < 0 {
		for i := range out {
			out[i] = ^root
		}
		return
	}
	nodes := e.nodes64
	base := int(root)
	r0, r1, r2, r3 := 0, 0, 0, 0
	r4, r5, r6, r7 := 0, 0, 0, 0
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	q4, q5, q6, q7 := q[4], q[5], q[6], q[7]
	for r0 >= 0 && r1 >= 0 && r2 >= 0 && r3 >= 0 && r4 >= 0 && r5 >= 0 && r6 >= 0 && r7 >= 0 {
		w0, w1, w2, w3 := nodes[base+r0], nodes[base+r1], nodes[base+r2], nodes[base+r3]
		w4, w5, w6, w7 := nodes[base+r4], nodes[base+r5], nodes[base+r6], nodes[base+r7]
		r0 = fusedStep(w0, q0)
		r1 = fusedStep(w1, q1)
		r2 = fusedStep(w2, q2)
		r3 = fusedStep(w3, q3)
		r4 = fusedStep(w4, q4)
		r5 = fusedStep(w5, q5)
		r6 = fusedStep(w6, q6)
		r7 = fusedStep(w7, q7)
	}
	out[0] = e.finishCompactFused(q0, base, r0)
	out[1] = e.finishCompactFused(q1, base, r1)
	out[2] = e.finishCompactFused(q2, base, r2)
	out[3] = e.finishCompactFused(q3, base, r3)
	out[4] = e.finishCompactFused(q4, base, r4)
	out[5] = e.finishCompactFused(q5, base, r5)
	out[6] = e.finishCompactFused(q6, base, r6)
	out[7] = e.finishCompactFused(q7, base, r7)
}

// finishCompactFused completes one chain after the interleaved fused
// loop exits with this cursor still on an inner node.
func (e *FlatForestEngine) finishCompactFused(q []uint16, base, rel int) int32 {
	if rel < 0 {
		return int32(^rel)
	}
	nodes := e.nodes64
	for rel >= 0 {
		rel = fusedStep(nodes[base+rel], q)
	}
	return int32(^rel)
}

// branchlessRank counts the cuts in cuts[lo:hi] strictly below key —
// the same rank the branchy binary search in quantizeBits produces —
// without a data-dependent branch: each halving keeps the upper half by
// adding half*m where m in {0, 1} is computed arithmetically from the
// probe (the uint64 subtraction of two zero-extended uint32 keys
// underflows, setting bit 63, exactly when the probe is below key). The
// iteration count depends only on the segment length, so a whole
// quantization pass runs the same instruction stream for every row.
func branchlessRank(cuts []uint32, lo, hi int32, key uint32) uint16 {
	base := int(lo)
	n := int(hi - lo)
	if n == 0 {
		return 0
	}
	for n > 1 {
		half := n >> 1
		// m = 1 when cuts[base+half-1] < key: at least base+half cuts
		// are below key, keep the upper half.
		m := int((uint64(cuts[base+half-1]) - uint64(key)) >> 63)
		base += half * m
		n -= half
	}
	return uint16(base - int(lo) + int((uint64(cuts[base])-uint64(key))>>63))
}

// quantizeBlockFused is quantizeBlock with the branchless search: it
// quantizes a group of up to 8 float rows feature-major into
// consecutive numPruned-wide lanes of dst, each rank computed by
// branchlessRank so the group's searches retire without mispredicts.
func (e *FlatForestEngine) quantizeBlockFused(rows [][]float32, dst []uint16) {
	cuts, cutLo := e.cuts, e.cutLo
	nq := e.numPruned
	for p, f := range e.prunedOrig {
		lo, hi := cutLo[p], cutLo[p+1]
		for i, x := range rows {
			key := ieee754.TotalOrderKey32(math.Float32bits(x[f]))
			dst[i*nq+p] = branchlessRank(cuts, lo, hi, key)
		}
	}
}

// quantizeKeysFused is quantizeKeys with the branchless search, for
// inputs already in total-order key space (core.PrecodeFeatures32
// output).
func (e *FlatForestEngine) quantizeKeysFused(dst []uint16, keys []uint32) {
	cuts, cutLo := e.cuts, e.cutLo
	for p, f := range e.prunedOrig {
		dst[p] = branchlessRank(cuts, cutLo[p], cutLo[p+1], keys[f])
	}
}

// predictBlockCompactFused is predictBlockCompact on the fused kernel:
// identical group structure and scratch layout, with the branchless
// quantizer and the branch-free interleaved walks.
func (e *FlatForestEngine) predictBlockCompactFused(rows [][]float32, out []int32, s *flatScratch, width int) {
	e.predictBlockCompactFusedQ(rows, out, s, width, false)
}

// predictBlockCompactFusedQ is the fused block loop with a selectable
// quantizer: simdQ false runs the scalar branchless search per (row,
// feature); simdQ true ranks each feature's whole group in one 8-lane
// vector search (the KernelSIMDQuant hybrid — see flat_simd16.go).
// Both produce identical ranks, so the walks downstream are untouched.
func (e *FlatForestEngine) predictBlockCompactFusedQ(rows [][]float32, out []int32, s *flatScratch, width int, simdQ bool) {
	nq := e.numPruned
	nc := e.numClasses
	b := 0
	if width >= 8 {
		var q8 [8][]uint16
		for i := range q8 {
			q8[i] = s.q[i*nq : (i+1)*nq]
		}
		var cls [8]int32
		for ; b+8 <= len(rows); b += 8 {
			if simdQ {
				e.quantizeBlockSIMD(rows[b:b+8], s.q)
			} else {
				e.quantizeBlockFused(rows[b:b+8], s.q)
			}
			var stack [8][maxStackClasses]int32
			lanes := voteLanes(&stack, s.votes, nc, 8)
			for _, root := range e.roots {
				e.classify8CompactFused(&q8, root, &cls)
				lanes[0][cls[0]]++
				lanes[1][cls[1]]++
				lanes[2][cls[2]]++
				lanes[3][cls[3]]++
				lanes[4][cls[4]]++
				lanes[5][cls[5]]++
				lanes[6][cls[6]]++
				lanes[7][cls[7]]++
			}
			for i := 0; i < 8; i++ {
				out[b+i] = rf.Argmax(lanes[i])
			}
		}
	}
	if width >= 4 {
		q0, q1 := s.q[0*nq:1*nq], s.q[1*nq:2*nq]
		q2, q3 := s.q[2*nq:3*nq], s.q[3*nq:4*nq]
		for ; b+4 <= len(rows); b += 4 {
			if simdQ {
				e.quantizeBlockSIMD(rows[b:b+4], s.q)
			} else {
				e.quantizeBlockFused(rows[b:b+4], s.q)
			}
			var stack [8][maxStackClasses]int32
			lanes := voteLanes(&stack, s.votes, nc, 4)
			for _, root := range e.roots {
				c0, c1, c2, c3 := e.classify4CompactFused(q0, q1, q2, q3, root)
				lanes[0][c0]++
				lanes[1][c1]++
				lanes[2][c2]++
				lanes[3][c3]++
			}
			out[b] = rf.Argmax(lanes[0])
			out[b+1] = rf.Argmax(lanes[1])
			out[b+2] = rf.Argmax(lanes[2])
			out[b+3] = rf.Argmax(lanes[3])
		}
	}
	if width >= 2 {
		q0, q1 := s.q[0*nq:1*nq], s.q[1*nq:2*nq]
		for ; b+2 <= len(rows); b += 2 {
			if simdQ {
				e.quantizeBlockSIMD(rows[b:b+2], s.q)
			} else {
				e.quantizeBlockFused(rows[b:b+2], s.q)
			}
			var stack [8][maxStackClasses]int32
			lanes := voteLanes(&stack, s.votes, nc, 2)
			for _, root := range e.roots {
				c0, c1 := e.classify2CompactFused(q0, q1, root)
				lanes[0][c0]++
				lanes[1][c1]++
			}
			out[b] = rf.Argmax(lanes[0])
			out[b+1] = rf.Argmax(lanes[1])
		}
	}
	q := s.q[:nq]
	for ; b < len(rows); b++ {
		if simdQ {
			e.quantizeBlockSIMD(rows[b:b+1], q)
		} else {
			e.quantizeBlockFused(rows[b:b+1], q)
		}
		var stack [8][maxStackClasses]int32
		lanes := voteLanes(&stack, s.votes, nc, 1)
		for _, root := range e.roots {
			lanes[0][e.classifyCompactFused(q, root)]++
		}
		out[b] = rf.Argmax(lanes[0])
	}
}
