package treeexec

import "fmt"

// CompactModel is the compact fused arena as an emittable value: the
// exact tables the branchy/fused/SIMD kernels walk (see flat_compact.go
// for the representation and the rank-quantization proof), detached from
// the engine so code generators and serializers consume the *same* build
// product the interpreter executes instead of re-deriving it from
// rf.Forest. An emitter that reproduces the three steps below over these
// tables is bit-identical to FlatCompact.PredictEncoded by construction:
//
//  1. quantize: for each pruned feature p, map the input's raw bit
//     pattern through the float total-order transform
//     (ieee754.TotalOrderKey32) and count the cuts in
//     Cuts[CutLo[p]:CutLo[p+1]] strictly below it — a binary search.
//  2. walk: from each root (an absolute Nodes64 index, or ^class for a
//     leaf-only tree), step rel = int16(uint32(w>>32) >> (b<<4)) where
//     w = Nodes64[root+rel] and b = (uint16(w) - q[uint16(w>>16)]) >> 31
//     in 32-bit arithmetic, until rel goes negative; the class is ^rel.
//  3. vote: majority over trees, ties to the lowest class index.
//
// Every slice is a copy: callers may retain and mutate a CompactModel
// freely without corrupting the serving arena it was exported from.
type CompactModel struct {
	// NumFeatures is the input dimensionality; NumClasses the number of
	// prediction classes (leaf payloads are in [0, NumClasses)).
	NumFeatures int
	NumClasses  int
	// PrunedOrig maps the dense pruned feature index (what node words
	// and quantized lanes use) back to the original input column. Its
	// length is the pruned feature count — the per-row quantization cost.
	PrunedOrig []int32
	// CutLo holds len(PrunedOrig)+1 offsets into Cuts: pruned feature
	// p's sorted distinct split keys are Cuts[CutLo[p]:CutLo[p+1]],
	// each a float32 total-order key. Every pruned feature has at least
	// one cut (that is what made it split-on).
	CutLo []int32
	Cuts  []uint32
	// Nodes64 is the fused node array: key16 | feat16<<16 | kids32<<32
	// per inner node, trees contiguous (see packNode64). Child halves of
	// the kids word are tree-relative int16s, negative = ^class leaf.
	Nodes64 []uint64
	// Roots holds each tree's entry: the absolute Nodes64 index of its
	// first inner node, or ^class for a leaf-only tree.
	Roots []int32
}

// ExportCompact returns the engine's compact arena as a CompactModel.
// It errors for every non-compact variant — including a FlatCompact
// request that fell back to the FLInt arena (probe Compactable, or
// check Variant(), to learn which representation a build produced).
func (e *FlatForestEngine) ExportCompact() (*CompactModel, error) {
	if e.variant != FlatCompact {
		return nil, fmt.Errorf("treeexec: ExportCompact on a %s engine (the compact arena is required; probe Compactable before building)", e.variant)
	}
	m := &CompactModel{
		NumFeatures: e.numFeatures,
		NumClasses:  e.numClasses,
		PrunedOrig:  append([]int32(nil), e.prunedOrig...),
		CutLo:       append([]int32(nil), e.cutLo...),
		Cuts:        append([]uint32(nil), e.cuts...),
		Nodes64:     append([]uint64(nil), e.nodes64...),
		Roots:       append([]int32(nil), e.roots...),
	}
	return m, nil
}

// NumPruned returns the number of features the forest splits on — the
// length of the pruned feature map.
func (m *CompactModel) NumPruned() int { return len(m.PrunedOrig) }

// NumTrees returns the ensemble size.
func (m *CompactModel) NumTrees() int { return len(m.Roots) }

// TableBytes returns the total size of the model's static tables as an
// emitter lays them out: 8 bytes per fused node, 4 per cut key, 4 per
// CutLo offset, 4 per pruned-map entry and 4 per root. This is the
// data-memory cost of the table-driven realization — the quantity that
// stays constant while if-else code size grows with depth — and the
// number examples and benches report next to generated code size.
func (m *CompactModel) TableBytes() int {
	return 8*len(m.Nodes64) + 4*len(m.Cuts) + 4*len(m.CutLo) +
		4*len(m.PrunedOrig) + 4*len(m.Roots)
}
