package treeexec

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"flint/internal/core"
	"flint/internal/ieee754"
	"flint/internal/rf"
)

// The batch kernel walks W independent rows through each tree with W
// register-resident cursors, so the out-of-order core overlaps their
// node fetches (W-way memory-level parallelism). The payoff depends on
// the arena's cache footprint: small arenas are IPC-bound and prefer the
// plain per-row loop, large arenas are fetch-latency-bound and prefer
// wider interleave. The crossover points are host properties (load-queue
// depth, cache sizes) *and* arena-layout properties (the compact SoA
// arena packs twice the nodes per cache line but pays a per-group
// quantization pass, so its crossovers sit elsewhere than the 16-byte
// AoS arena's), so they are gates measured at runtime rather than
// constants — one gate set per interleaving arena layout: see Calibrate
// and CalibrateInterleave.

// interleaveWidths are the supported scalar cursor counts, in ascending
// order. The SIMD kernel additionally supports width 16 on the compact
// arena — two 8-lane vector groups walked software-pipelined (see
// fusedWalk16 and simdWidth16).
var interleaveWidths = [4]int{1, 2, 4, 8}

// simdWidth16 is the dual-group SIMD width: 16 rows per group as two
// 8-lane halves whose independent gather chains the walk interleaves,
// so the out-of-order core overlaps four node gathers per level instead
// of two. Only the SIMD kernel walks it; the scalar kernels treat a
// width of 16 as 8 (their cascades cap at the 8-way walk).
const simdWidth16 = 16

// Kernel selects how the compact batch kernel resolves each node's
// child: the branchy kernel executes one data-dependent branch per
// cursor per level (three slice loads per node), the fused kernel loads
// the node as a single pre-packed uint64 word and computes the child
// with shifts — a data dependency instead of a control dependency, so a
// deep walk mispredicts once per chain (the loop exit) rather than once
// per level — the SIMD-quant kernel vectorizes only the quantizer (each
// feature's cut segment is shared across the group, so the 8-lane
// binary search needs no gathers on its critical path) and walks
// scalar-fused, and the SIMD kernel executes the full fused step for
// eight lanes per instruction in vector registers (AVX2 gathers; see
// flat_fused_amd64.s and the portable forms in flat_simd.go). All
// kernels produce bit-identical predictions; which one is faster is a
// host property (mispredict penalty vs. dependent-chain latency vs.
// gather throughput) that calibration measures alongside the interleave
// width. Only the compact SoA arena has fused, SIMD-quant and SIMD
// forms; other variants always run branchy. The constants are ordered
// by how aggressively each kernel converts control flow into data
// flow — kernelGatesFromLadder relies on that order when forcing a
// measured ladder monotone.
type Kernel int32

const (
	// KernelBranchy is the per-level compare-and-branch walk over the
	// parallel keys16/feats16/kids slices.
	KernelBranchy Kernel = iota
	// KernelFused is the branch-free walk over the packed nodes64 words
	// (compact arenas only), with branchless binary-search quantization.
	KernelFused
	// KernelSIMDQuant is the hybrid kernel: 8-lane vector quantization
	// (the one stage of the compact pipeline with no gather on its
	// critical path — the cut segment is shared, so all lanes halve in
	// lockstep) feeding the scalar fused walk. It captures the vector
	// win where the SIMD walk stays gather-latency-bound (compact arenas
	// only).
	KernelSIMDQuant
	// KernelSIMD is the full vector form of the fused walk: one AVX2
	// gather step advances all cursors of an interleaved group at once
	// (compact arenas only), 8 lanes per group — or two pipelined 8-lane
	// groups at width 16, with finished lanes compacted out and refilled
	// from the pending block. Calibration offers it only on hosts whose
	// ISA runs it natively (SIMDAvailable); everywhere else a portable
	// lane-parallel fallback keeps it runnable — and therefore
	// testable — but never competitive.
	KernelSIMD
	// KernelAuto is not a kernel an engine can run: passing it to
	// SetKernel clears a previous pin, so subsequent calibration passes
	// compete every kernel again. The installed kernel is unchanged.
	KernelAuto Kernel = -1
)

// String names the kernel in benchmark and persistence output.
func (k Kernel) String() string {
	switch k {
	case KernelFused:
		return "fused"
	case KernelSIMDQuant:
		return "simd-quant"
	case KernelSIMD:
		return "simd"
	}
	return "branchy"
}

// ParseKernel maps a kernel name from a flag or persisted record back
// to the constant; the empty string is the legacy (pre-kernel) spelling
// of branchy. Kernel values persist and parse by name, never by number,
// so the constants above can be reordered (as the simd-quant insertion
// did) without invalidating saved records.
func ParseKernel(name string) (Kernel, error) {
	switch name {
	case "", "branchy":
		return KernelBranchy, nil
	case "fused":
		return KernelFused, nil
	case "simd-quant":
		return KernelSIMDQuant, nil
	case "simd":
		return KernelSIMD, nil
	}
	return KernelBranchy, fmt.Errorf("treeexec: unknown kernel %q (branchy|fused|simd-quant|simd)", name)
}

// The engine's width, kernel and (for the width-16 SIMD walk) the lane
// compaction threshold travel together in one atomic int32 ("mode") so
// recalibration installs the tuple as a single unit: a Batcher worker
// racing the store sees either the old tuple or the new one, never a
// half-installed mix of a width measured under one kernel with the
// other kernel.

// packMode packs an interleave width (low byte) and a kernel (next
// byte) into one mode word, with the default compaction policy.
func packMode(width int, k Kernel) int32 { return packModeRefill(width, k, 0) }

// packModeRefill additionally encodes the width-16 SIMD walk's lane
// compaction threshold (third byte): the minimum live-lane count below
// which the walk returns to compact finished lanes out and refill them
// from the pending block. Zero selects the kernel default
// (defaultSIMDRefill); 1 disables early compaction (the walk drains to
// its deepest lane, refilling only fully finished groups). Meaningless
// for other kernels and widths, which ignore it.
func packModeRefill(width int, k Kernel, refill int32) int32 {
	return int32(width) | int32(k)<<8 | refill<<16
}

// modeWidth extracts the interleave width from a mode word.
func modeWidth(m int32) int { return int(m & 0xff) }

// modeKernel extracts the kernel from a mode word.
func modeKernel(m int32) Kernel { return Kernel((m >> 8) & 0xff) }

// modeRefill extracts the width-16 lane compaction threshold from a
// mode word (0 = kernel default).
func modeRefill(m int32) int32 { return (m >> 16) & 0xff }

// defaultSIMDRefill is the uncalibrated lane compaction threshold for
// the width-16 SIMD walk: return to refill once fewer than 6 of the 16
// lanes are still walking. High enough that a skewed-depth group stops
// paying full vector steps for a handful of stragglers, low enough that
// well-balanced groups rarely pay the refill round trip; calibration
// times compaction on (this value) against off (threshold 1) and
// installs the measured winner.
const defaultSIMDRefill = 6

// InterleaveGates holds the arena byte-size thresholds from which each
// wider interleaved walk wins on this host, one set per interleaving
// arena layout. A threshold of math.MaxInt disables that width. The zero
// value is not meaningful; use DefaultInterleaveGates or Calibrate.
// The json tags fix the persistence schema (CalibrationRecord, gate
// files, BENCH_batch.json) explicitly, consistent with the lowercase
// field names of the surrounding documents, so a future rename of the
// Go fields cannot silently break previously persisted records.
type InterleaveGates struct {
	// Min2/Min4/Min8 are the smallest arena footprints (bytes) at which
	// the 2-, 4- and 8-way walks outperform the next narrower one on the
	// 16-byte AoS arenas (FlatFLInt).
	Min2 int `json:"min2"`
	Min4 int `json:"min4"`
	Min8 int `json:"min8"`
	// CompactMin2/CompactMin4/CompactMin8 are the same crossovers for
	// the 8-byte compact SoA arena, whose quantization overhead and
	// denser node packing shift them relative to the AoS set. When all
	// three are zero (a gate table from before the compact set existed),
	// widthFor falls back to the AoS thresholds.
	CompactMin2 int `json:"compact_min2"`
	CompactMin4 int `json:"compact_min4"`
	CompactMin8 int `json:"compact_min8"`
	// CompactFusedMin is the smallest compact arena footprint (bytes) at
	// which the fused branch-free kernel outperforms the branchy one on
	// this host. Zero — the value in every gate table from before the
	// fused kernel existed, and the uncalibrated default — selects the
	// branchy kernel everywhere; math.MaxInt records a measurement where
	// fused never won. Like the width gates it only seeds engines at
	// construction: per-engine calibration times every kernel on the
	// actual arena.
	CompactFusedMin int `json:"compact_fused_min,omitempty"`
	// CompactSIMDMin is the same crossover for the 8-lane SIMD kernel:
	// the smallest compact arena footprint from which it beats both
	// scalar kernels on this host. Zero (every pre-SIMD table) and
	// math.MaxInt (measured, never won) both keep the scalar choice. The
	// threshold only applies on hosts whose ISA runs the kernel natively
	// (SIMDAvailable) — a gate table measured on an AVX2 box and carried
	// to a host without it must not install the emulated fallback.
	CompactSIMDMin int `json:"compact_simd_min,omitempty"`
	// CompactSIMDQuantMin is the crossover for the hybrid SIMD-quant
	// kernel (vector quantization, scalar fused walk): the smallest
	// compact arena footprint from which it beats both scalar kernels.
	// Same zero/MaxInt and ISA-gating semantics as CompactSIMDMin; when
	// both SIMD thresholds pass, the full SIMD kernel wins (it is the
	// more aggressive conversion and the ladder forces the order).
	CompactSIMDQuantMin int `json:"compact_simdquant_min,omitempty"`
	// CompactSIMD16Min is the footprint from which the SIMD kernel's
	// dual-group width-16 walk beats its single-group width-8 form —
	// meaningful only where CompactSIMDMin already selected the SIMD
	// kernel. Same zero/MaxInt semantics.
	CompactSIMD16Min int `json:"compact_simd16_min,omitempty"`
}

// DefaultInterleaveGates are the static thresholds used until Calibrate
// measures the host: 2-way past the ~1MB L2 comfort zone (the PR 1
// pairMinArenaNodes point), 4-way past ~4MB, 8-way past ~16MB. They are
// conservative transcriptions of one x86 VM's measurements; the compact
// set reuses them until a measurement says otherwise (on the dev host
// the compact arena's crossovers sat near the same byte footprints —
// half the nodes per byte, but each fetch serves two 8-byte nodes per
// line).
func DefaultInterleaveGates() InterleaveGates {
	return InterleaveGates{
		Min2: pairMinArenaNodes * 16, // the old node gate, in bytes
		Min4: 4 << 20,
		Min8: 16 << 20,

		CompactMin2: pairMinArenaNodes * 16,
		CompactMin4: 4 << 20,
		CompactMin8: 16 << 20,
	}
}

// calibratedGates is the host-wide gate table installed by Calibrate;
// nil selects DefaultInterleaveGates. Engines read it once at
// construction.
var calibratedGates atomic.Pointer[InterleaveGates]

// CurrentInterleaveGates returns the gate table new engines will use:
// the last Calibrate result, or the static defaults.
func CurrentInterleaveGates() InterleaveGates {
	if g := calibratedGates.Load(); g != nil {
		return *g
	}
	return DefaultInterleaveGates()
}

// SetInterleaveGates installs a gate table for subsequently constructed
// engines (Calibrate calls this with measured values; tests and
// deployments with known-good numbers may call it directly).
func SetInterleaveGates(g InterleaveGates) {
	calibratedGates.Store(&g)
}

// widthFor selects the interleave width for an arena footprint,
// dispatching on the arena layout: the compact SoA arena reads its own
// gate set (unless that set is entirely zero — a legacy table — in
// which case the AoS thresholds apply), every other variant reads the
// AoS set.
func (g InterleaveGates) widthFor(v FlatVariant, arenaBytes int) int {
	m2, m4, m8 := g.Min2, g.Min4, g.Min8
	if v == FlatCompact && (g.CompactMin2 != 0 || g.CompactMin4 != 0 || g.CompactMin8 != 0) {
		m2, m4, m8 = g.CompactMin2, g.CompactMin4, g.CompactMin8
	}
	switch {
	case m8 > 0 && arenaBytes >= m8:
		return 8
	case m4 > 0 && arenaBytes >= m4:
		return 4
	case m2 > 0 && arenaBytes >= m2:
		return 2
	}
	return 1
}

// kernelFor selects the construction-time kernel for an arena
// footprint: SIMD once a compact arena crosses the measured
// CompactSIMDMin threshold on a host whose ISA runs it, the hybrid
// SIMD-quant kernel past CompactSIMDQuantMin (same ISA gate), fused
// past CompactFusedMin, branchy everywhere else (including every
// non-compact variant, which has none of the other forms, and every
// legacy gate table, whose zero thresholds disable them all).
func (g InterleaveGates) kernelFor(v FlatVariant, arenaBytes int) Kernel {
	if v != FlatCompact {
		return KernelBranchy
	}
	if simdKernelAvailable() {
		if g.CompactSIMDMin > 0 && arenaBytes >= g.CompactSIMDMin {
			return KernelSIMD
		}
		if g.CompactSIMDQuantMin > 0 && arenaBytes >= g.CompactSIMDQuantMin {
			return KernelSIMDQuant
		}
	}
	if g.CompactFusedMin > 0 && arenaBytes >= g.CompactFusedMin {
		return KernelFused
	}
	return KernelBranchy
}

// modeFor resolves the full construction-time (width, kernel) pair:
// widthFor's scalar ladder, widened to the dual-group 16 when the SIMD
// kernel is selected and the footprint crosses CompactSIMD16Min. The
// compaction threshold is left at the kernel default — it is installed
// explicitly only by a per-engine calibration pass that measured it.
func (g InterleaveGates) modeFor(v FlatVariant, arenaBytes int) (int, Kernel) {
	w := g.widthFor(v, arenaBytes)
	k := g.kernelFor(v, arenaBytes)
	if k == KernelSIMD && g.CompactSIMD16Min > 0 && arenaBytes >= g.CompactSIMD16Min {
		w = simdWidth16
	}
	return w, k
}

// ArenaBytes returns the engine's walked node footprint: 16 bytes per
// node for the AoS arenas, 8 bytes per node plus the pruned per-feature
// cut tables for the compact SoA arena. This is the quantity the
// interleave gates are measured against — the bytes one walk actually
// touches — so the compact arena's fused-kernel mirror (nodes64, the
// same 8 bytes per node re-packed into one word; a walk reads either
// encoding, never both) is not counted, though it does double the
// resident node storage.
func (e *FlatForestEngine) ArenaBytes() int {
	if e.variant == FlatCompact {
		return 2*len(e.keys16) + 2*len(e.feats16) + 4*len(e.kids) +
			4*len(e.cuts) + 4*len(e.cutLo) + 4*len(e.prunedOrig)
	}
	return 16 * len(e.arena)
}

// ArenaNodes returns the number of inner nodes stored in the arena.
func (e *FlatForestEngine) ArenaNodes() int {
	if e.variant == FlatCompact {
		return len(e.kids)
	}
	return len(e.arena)
}

// Interleave returns the batch kernel's current cursor count (1, 2, 4
// or 8).
func (e *FlatForestEngine) Interleave() int { return modeWidth(e.mode.Load()) }

// Kernel returns the compact batch kernel's current child-select
// strategy (always KernelBranchy for non-compact variants).
func (e *FlatForestEngine) Kernel() Kernel { return modeKernel(e.mode.Load()) }

// SetInterleave forces the batch kernel's cursor count, bypassing the
// calibrated gates; the requested width is rounded down to the nearest
// supported one (1, 2, 4, 8 — and 16 on the compact arena, where the
// SIMD kernel walks two pipelined 8-lane groups; the scalar kernels run
// a forced 16 as their 8-way cascade) and returned. Only the FLInt and
// compact kernels interleave; other variants ignore the setting. The
// width is installed atomically and the current kernel and compaction
// threshold are preserved, so calling while Batcher workers are in
// flight is safe (in-flight blocks finish at the old width).
func (e *FlatForestEngine) SetInterleave(width int) int {
	w := 1
	for _, c := range interleaveWidths {
		if width >= c {
			w = c
		}
	}
	if e.variant == FlatCompact && width >= simdWidth16 {
		w = simdWidth16
	}
	for {
		old := e.mode.Load()
		if e.mode.CompareAndSwap(old, packModeRefill(w, modeKernel(old), modeRefill(old))) {
			break
		}
	}
	// A forced width is an operator decision, not measurement; without
	// this the engine would keep reporting whatever evidence backed the
	// previous width.
	e.calibSource.Store(calibSourceManual)
	return w
}

// SetKernel forces the compact walk kernel and pins it: subsequent
// calibration passes (CalibrateInterleave and friends) time interleave
// widths under the pinned kernel only, instead of competing all — the
// contract an A/B measurement needs. The current width is preserved and
// the pair is installed atomically. KernelAuto clears the pin without
// touching the installed kernel, handing the choice back to the next
// calibration pass. Non-compact variants have only the branchy kernel;
// for them the call is a no-op returning KernelBranchy. Pinning
// KernelSIMD works on every host — on ISAs without the native kernel it
// runs the portable lane-parallel fallback (the A/B and differential-
// test contract) — but calibration never volunteers it there.
func (e *FlatForestEngine) SetKernel(k Kernel) Kernel {
	if e.variant != FlatCompact {
		return KernelBranchy
	}
	if k == KernelAuto {
		e.kernelPin.Store(0)
		return e.Kernel()
	}
	if k != KernelFused && k != KernelSIMDQuant && k != KernelSIMD {
		k = KernelBranchy
	}
	e.kernelPin.Store(int32(k) + 1)
	for {
		old := e.mode.Load()
		// The compaction threshold is a SIMD-walk property; a forced
		// kernel change resets it to the kernel default rather than
		// carrying a value measured under another kernel.
		if e.mode.CompareAndSwap(old, packMode(modeWidth(old), k)) {
			break
		}
	}
	e.calibSource.Store(calibSourceManual)
	return k
}

// candidateKernels returns the kernels calibration competes for this
// engine: the pinned one after SetKernel, every runnable kernel for an
// unpinned compact arena (the two SIMD kernels join the slate only
// where the ISA runs them natively — timing the emulated fallback would
// just burn budget), branchy alone for everything else.
func (e *FlatForestEngine) candidateKernels() []Kernel {
	if pin := e.kernelPin.Load(); pin != 0 {
		return []Kernel{Kernel(pin - 1)}
	}
	if e.variant == FlatCompact {
		if simdKernelAvailable() {
			return []Kernel{KernelBranchy, KernelFused, KernelSIMDQuant, KernelSIMD}
		}
		return []Kernel{KernelBranchy, KernelFused}
	}
	return []Kernel{KernelBranchy}
}

// modeCandidates expands candidateKernels into the full candidate list
// one calibration pass times: every scalar width per kernel, and — for
// the SIMD kernel — the dual-group width 16 twice, with lane compaction
// off (threshold 1: a group drains to its deepest lane before
// refilling) and on (the default threshold: finished lanes are
// compacted out and refilled mid-walk). The compaction threshold is a
// measured dimension like any other, so hosts where the refill round
// trip costs more than the straggler steps it saves never install it.
func (e *FlatForestEngine) modeCandidates() []int32 {
	var cands []int32
	for _, k := range e.candidateKernels() {
		for _, w := range interleaveWidths {
			cands = append(cands, packMode(w, k))
		}
		if k == KernelSIMD && e.variant == FlatCompact {
			cands = append(cands,
				packModeRefill(simdWidth16, KernelSIMD, 1),
				packModeRefill(simdWidth16, KernelSIMD, defaultSIMDRefill))
		}
	}
	return cands
}

// Calibration sources for CalibrationSource: where the engine's current
// interleave width came from.
const (
	calibSourceDefault   int32 = iota // construction-time gate table
	calibSourceSynthetic              // rows synthesized from the split tables
	calibSourceRows                   // caller-supplied sampled rows
	calibSourcePersisted              // LoadCalibration record
	calibSourceManual                 // SetInterleave override
	calibSourceDegraded               // LoadCalibration record whose kernel this host cannot run
)

// CalibrationSource names where the engine's current interleave width
// came from: "default" (the construction-time gate table), "synthetic"
// (rows synthesized from the engine's own split tables), "rows"
// (caller-supplied sampled traffic, e.g. a Batcher reservoir),
// "persisted" (a LoadCalibration record), "persisted-degraded" (a
// record whose kernel this host's ISA cannot run natively — the width
// was installed but the kernel was downgraded, so the mode has lost its
// measurement evidence and deserves a recalibration pass) or "manual"
// (a SetInterleave override). Benchmark reports record it so a recorded
// width can be traced to its evidence — or to the lack of it.
func (e *FlatForestEngine) CalibrationSource() string {
	switch e.calibSource.Load() {
	case calibSourceSynthetic:
		return "synthetic"
	case calibSourceRows:
		return "rows"
	case calibSourcePersisted:
		return "persisted"
	case calibSourceManual:
		return "manual"
	case calibSourceDegraded:
		return "persisted-degraded"
	}
	return "default"
}

// CalibrateInterleave times this engine's own batch kernel at every
// supported interleave width and adopts the fastest, returning it. The
// timing rows are synthesized from the engine's own split tables (see
// CalibrateInterleaveRows for feeding sampled production rows instead),
// and the whole pass costs roughly budget wall time (budget <= 0
// selects 40ms). This is the on-demand, per-engine half of the
// calibration story; Calibrate measures host-wide gates for engines not
// yet built.
func (e *FlatForestEngine) CalibrateInterleave(budget time.Duration) int {
	return e.CalibrateInterleaveRows(nil, budget)
}

// CalibrateInterleaveRows is CalibrateInterleave over caller-supplied
// sample rows — typically rows drawn from production traffic, whose
// branch patterns (and therefore fetch-latency exposure) the synthetic
// rows can only approximate. Rows whose length is not NumFeatures are
// ignored; when none remain (or rows is nil) the engine falls back to
// rows synthesized from its own split tables, so every calibration
// input spans the arena's actual comparison range and trained walks
// branch both ways. The sample is resized to a bounded timing block
// (tiny samples replicated up to 64 rows, huge ones decimated evenly
// down to 256) so every width is timed on its real kernel and the pass
// stays within budget regardless of sample size. Only the FLInt and
// compact kernels interleave; other variants return the current width
// unchanged.
func (e *FlatForestEngine) CalibrateInterleaveRows(rows [][]float32, budget time.Duration) int {
	w, _ := e.CalibrateInterleaveRowsLadder(rows, budget)
	return w
}

// ModeTiming is one calibration-ladder candidate's measured throughput:
// the (width, kernel) pair — plus, for the width-16 SIMD walk, the lane
// compaction threshold — and the rows/s it sustained on the timing
// block. Benchmark reports record the full ladder so losing kernels'
// trajectories stay visible across hosts and PRs instead of
// disappearing behind the winner's gate.
type ModeTiming struct {
	Width      int     `json:"width"`
	Kernel     string  `json:"kernel"`
	Refill     int     `json:"refill,omitempty"`
	RowsPerSec float64 `json:"rows_per_sec"`
	Winner     bool    `json:"winner,omitempty"`
}

// CalibrateInterleaveRowsLadder is CalibrateInterleaveRows returning,
// alongside the installed width, the per-candidate timing ladder the
// decision was made from — every (width, kernel) pair that completed a
// measured run, not just the winner. An empty ladder means the budget
// was too small to measure anything and the incumbent mode was kept.
func (e *FlatForestEngine) CalibrateInterleaveRowsLadder(rows [][]float32, budget time.Duration) (int, []ModeTiming) {
	if e.variant != FlatFLInt && e.variant != FlatCompact {
		return modeWidth(e.mode.Load()), nil
	}
	if budget <= 0 {
		budget = 40 * time.Millisecond
	}
	var sample [][]float32
	for _, r := range rows {
		if len(r) == e.numFeatures {
			sample = append(sample, r)
		}
	}
	source := calibSourceRows
	if len(sample) == 0 {
		sample = e.representativeRows(minTimingRows, 0x9E3779B9)
		source = calibSourceSynthetic
	}
	// A handful of valid rows (e.g. 1–7 from a barely-filled reservoir)
	// would time the 2/4/8-way kernels on their non-interleaved remainder
	// paths, making the selected width pure timer noise; replicate the
	// sample up to a minimum timing block so every width runs its real
	// kernel. Conversely a huge sample (a whole training set) would make
	// every warm-up pass walk all of it and blow the budget before a
	// single width is measured; decimate evenly down to a bounded block,
	// which preserves the sample's distribution.
	sample = capRows(replicateRows(sample, minTimingRows), maxTimingRows)
	mode, measured, ladder := e.timeModes(sample, budget)
	// One store installs the (width, kernel, compaction) tuple as a
	// unit: an in-flight Batcher worker never observes a width measured
	// under one kernel paired with the other.
	e.mode.Store(mode)
	if measured {
		// A budget too small to time even one width returns the
		// incumbent; recording a source for it would claim evidence
		// that was never gathered.
		e.calibSource.Store(source)
	}
	return modeWidth(mode), ladder
}

// minTimingRows is the smallest row block timeWidths may run: big enough
// that the widest (8-way) kernel spends its time in the interleaved walk
// rather than the remainder cascade.
const minTimingRows = 64

// maxTimingRows bounds the timing block so one predictBlock pass stays
// well under any reasonable per-width budget slice.
const maxTimingRows = 256

// replicateRows cycles sample up to at least min rows (reusing the row
// slice headers — the timing loop only reads them); samples already that
// large are returned unchanged.
func replicateRows(sample [][]float32, min int) [][]float32 {
	if len(sample) == 0 || len(sample) >= min {
		return sample
	}
	out := make([][]float32, 0, min)
	for i := 0; len(out) < min; i++ {
		out = append(out, sample[i%len(sample)])
	}
	return out
}

// capRows decimates sample down to at most max rows by taking evenly
// spaced elements (reusing the row slice headers); samples within the
// bound are returned unchanged.
func capRows(sample [][]float32, max int) [][]float32 {
	if len(sample) <= max {
		return sample
	}
	out := make([][]float32, max)
	for i := range out {
		out[i] = sample[i*len(sample)/max]
	}
	return out
}

// timeModes times the block kernel over rows at every candidate mode —
// each supported interleave width under each competing kernel, plus the
// width-16 SIMD walk's compaction-on/off pair — spending roughly budget
// wall time in total, and returns the fastest mode word (on an exact
// tie the first-measured candidate wins; the incumbent mode is returned
// only when nothing was measured), whether any candidate actually
// completed a measured run (false means the result is just the
// incumbent and no timing evidence exists), and the full per-candidate
// ladder. It never touches the engine's live mode field — every
// candidate runs through predictBlockMode — so timing is safe while
// Batcher workers serve concurrently. The warm-up run of each candidate
// is counted against that candidate's budget slice (it used to be
// untimed, so the real cost of a calibration pass could far exceed the
// caller's budget on arenas where a single block walk is expensive),
// and once the whole budget is spent no further candidate even warms
// up, so the total wall time is bounded by budget plus at most one
// block pass. A candidate whose slice the warm-up alone exhausts does
// not compete: its only sample is cache-cold, and candidates time in
// ascending width order, so cold samples systematically favor the later
// (wider) walks — an undersized budget keeps the incumbent instead of
// installing a mode chosen by cache state.
func (e *FlatForestEngine) timeModes(rows [][]float32, budget time.Duration) (mode int32, measured bool, ladder []ModeTiming) {
	out := make([]int32, len(rows))
	s := e.newScratch()
	cands := e.modeCandidates()
	per := budget / time.Duration(len(cands))
	best, bestNs := e.mode.Load(), math.MaxFloat64
	bestLadder := -1
	tstart := time.Now()
	for _, c := range cands {
		if time.Since(tstart) >= budget {
			break
		}
		w, k, refill := modeWidth(c), modeKernel(c), modeRefill(c)
		start := time.Now()
		e.predictBlockMode(rows, out, s, w, k, refill) // warm up, counted
		warm := time.Since(start)
		var runs int
		mstart := time.Now()
		for time.Since(mstart) < per-warm {
			e.predictBlockMode(rows, out, s, w, k, refill)
			runs++
		}
		if runs == 0 {
			continue
		}
		measured = true
		ns := float64(time.Since(mstart).Nanoseconds()) / float64(runs)
		ladder = append(ladder, ModeTiming{
			Width:      w,
			Kernel:     k.String(),
			Refill:     int(refill),
			RowsPerSec: float64(len(rows)) / (ns / 1e9),
		})
		if ns < bestNs {
			best, bestNs = c, ns
			bestLadder = len(ladder) - 1
		}
	}
	if bestLadder >= 0 {
		ladder[bestLadder].Winner = true
	}
	return best, measured, ladder
}

// Calibrate measures the interleave crossover points on this host, one
// gate set per interleaving arena layout: for a ladder of synthetic
// arena sizes it times the FLInt and compact batch kernels at widths
// 1/2/4/8 on rows spanning each arena's own split range, picks the
// fastest width per (layout, size), derives monotone byte thresholds,
// installs them for subsequently constructed engines
// (SetInterleaveGates) and returns them. The whole pass costs roughly
// budget wall time (budget <= 0 selects 200ms); call it once at process
// start, or whenever the deployment moves to different hardware.
func Calibrate(budget time.Duration) InterleaveGates {
	if budget <= 0 {
		budget = 200 * time.Millisecond
	}
	// Depth-9 synthetic trees stacked to the ladder's target footprints,
	// bracketing the L2/L3/DRAM regimes where the crossovers live.
	sizes := []int{256 << 10, 1 << 20, 4 << 20, 16 << 20}
	// The FLInt ladder times one candidate per width; the compact ladder
	// times each width under every competing kernel — two on scalar-only
	// hosts, four where the SIMD kernels are native, plus the width-16
	// walk's compaction-on/off pair. Split the budget so every candidate
	// gets an equal slice — an even per-engine split would shrink each
	// compact candidate's slice and raise the odds that budget
	// starvation skips fused or SIMD at exactly the sizes where they win
	// (a skipped candidate never competes, and the MaxInt gate that
	// falls out would persist as "never won").
	flintCands := len(interleaveWidths)
	compactCands := 2 * len(interleaveWidths)
	if simdKernelAvailable() {
		compactCands = 4*len(interleaveWidths) + 2
	}
	perCand := budget / time.Duration(len(sizes)*(flintCands+compactCands))
	flintBest := make([]int, len(sizes))
	compactBest := make([]int, len(sizes))
	compactKernel := make([]Kernel, len(sizes))
	compact16 := make([]bool, len(sizes))
	for si, bytes := range sizes {
		fe := syntheticFLIntEngine(bytes)
		fm, _, _ := fe.timeModes(fe.representativeRows(64, uint32(0xB5297A4D+si)), perCand*time.Duration(flintCands))
		flintBest[si] = modeWidth(fm)
		ce := syntheticCompactEngine(bytes)
		cm, _, _ := ce.timeModes(ce.representativeRows(64, uint32(0x68E31DA4+si)), perCand*time.Duration(compactCands))
		compactKernel[si] = modeKernel(cm)
		w := modeWidth(cm)
		compact16[si] = compactKernel[si] == KernelSIMD && w == simdWidth16
		if w > 8 {
			// The width gate ladder is the scalar 1/2/4/8 set; a width-16
			// SIMD win implies the 8-way crossover and carries its own
			// gate (CompactSIMD16Min).
			w = 8
		}
		compactBest[si] = w
	}
	g := InterleaveGates{}
	g.Min2, g.Min4, g.Min8 = gatesFromLadder(sizes, flintBest)
	g.CompactMin2, g.CompactMin4, g.CompactMin8 = gatesFromLadder(sizes, compactBest)
	g.CompactFusedMin, g.CompactSIMDQuantMin, g.CompactSIMDMin = kernelGatesFromLadder(sizes, compactKernel)
	g.CompactSIMD16Min = simd16GateFromLadder(sizes, compact16)
	SetInterleaveGates(g)
	return g
}

// kernelGatesFromLadder turns per-size winning kernels into the byte
// thresholds from which the fused, SIMD-quant and SIMD kernels win:
// kernels are first forced monotone over the size ladder in branchy <
// fused < simd-quant < simd order (a less aggressive kernel winning
// above a more aggressive one is measurement noise — each step up the
// order hides more stall time behind data flow, an advantage that only
// grows with walk depth and fetch latency), then each threshold is the
// smallest size preferring at least that kernel, or math.MaxInt when no
// size did. The SIMD thresholds are derived even on hosts where only
// two kernels competed: with no size ever won by a vector kernel they
// land on MaxInt, the recorded form of "never won".
func kernelGatesFromLadder(sizes []int, bestAt []Kernel) (fusedMin, quantMin, simdMin int) {
	for i := 1; i < len(bestAt); i++ {
		if bestAt[i] < bestAt[i-1] {
			bestAt[i] = bestAt[i-1]
		}
	}
	fusedMin, quantMin, simdMin = math.MaxInt, math.MaxInt, math.MaxInt
	for i := len(sizes) - 1; i >= 0; i-- {
		if bestAt[i] >= KernelFused {
			fusedMin = sizes[i]
		}
		if bestAt[i] >= KernelSIMDQuant {
			quantMin = sizes[i]
		}
		if bestAt[i] >= KernelSIMD {
			simdMin = sizes[i]
		}
	}
	return fusedMin, quantMin, simdMin
}

// simd16GateFromLadder turns per-size "the width-16 SIMD walk won"
// flags into the CompactSIMD16Min byte threshold, monotone-forced the
// same way as the other gates: once the dual-group walk wins at some
// footprint it is assumed to keep winning above it (the gather-latency
// exposure it hides only grows), so the threshold is the smallest
// winning size, or math.MaxInt when none was.
func simd16GateFromLadder(sizes []int, was16 []bool) int {
	for i := 1; i < len(was16); i++ {
		if was16[i-1] {
			was16[i] = true
		}
	}
	for i, b := range was16 {
		if b {
			return sizes[i]
		}
	}
	return math.MaxInt
}

// gatesFromLadder turns per-size fastest widths into monotone byte
// thresholds: widths are first forced non-decreasing over the size
// ladder (a narrow win at a larger size is measurement noise), then each
// threshold is the smallest size preferring at least that width, or
// math.MaxInt when no size did.
func gatesFromLadder(sizes []int, bestAt []int) (min2, min4, min8 int) {
	for i := 1; i < len(bestAt); i++ {
		if bestAt[i] < bestAt[i-1] {
			bestAt[i] = bestAt[i-1]
		}
	}
	min2, min4, min8 = math.MaxInt, math.MaxInt, math.MaxInt
	for i := len(sizes) - 1; i >= 0; i-- {
		if bestAt[i] >= 2 {
			min2 = sizes[i]
		}
		if bestAt[i] >= 4 {
			min4 = sizes[i]
		}
		if bestAt[i] >= 8 {
			min8 = sizes[i]
		}
	}
	return min2, min4, min8
}

// xorshift32 is the deterministic generator all calibration synthesis
// shares; seed must be non-zero.
func xorshift32(seed uint32) func() uint32 {
	rng := seed | 1
	return func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng
	}
}

// syntheticSplit maps one generator draw to a split value uniform in
// (-1, 1), the range the synthetic engines and their calibration rows
// share.
func syntheticSplit(u uint32) float32 {
	f := float32(u>>8) * (1.0 / (1 << 24)) // [0, 1)
	if u&1 == 1 {
		f = -f
	}
	return f
}

// syntheticFLIntEngine builds a calibration-only FLInt arena of roughly
// the requested byte footprint out of random perfect trees, without
// training: topology only needs to be plausible for the walk's memory
// behavior, not meaningful, but split values are drawn from a bounded
// range so representativeRows can exercise both branch directions.
func syntheticFLIntEngine(arenaBytes int) *FlatForestEngine {
	const depth = 9
	const perTree = 1<<depth - 1 // inner nodes per perfect tree
	const numFeatures = 16
	trees := arenaBytes / (16 * perTree)
	if trees < 1 {
		trees = 1
	}
	e := &FlatForestEngine{
		arena:       make([]node, 0, trees*perTree),
		roots:       make([]int32, trees),
		variant:     FlatFLInt,
		numClasses:  4,
		numFeatures: numFeatures,
	}
	e.mode.Store(packMode(1, KernelBranchy))
	next := xorshift32(0x2545F491)
	for t := 0; t < trees; t++ {
		base := int32(len(e.arena))
		e.roots[t] = base
		for i := 0; i < perTree; i++ {
			// Heap order: node i's children are 2i+1 and 2i+2; the last
			// level's children are leaves.
			var left, right int32
			if 2*i+1 < perTree {
				left, right = base+int32(2*i+1), base+int32(2*i+2)
			} else {
				left, right = ^int32(next()%4), ^int32(next()%4)
			}
			e.arena = append(e.arena, node{
				feature: int32(next() % numFeatures),
				key:     core.MustEncodeSplit32(syntheticSplit(next())).Key,
				left:    left,
				right:   right,
			})
		}
	}
	return e
}

// syntheticCompactEngine is syntheticFLIntEngine for the 8-byte compact
// SoA arena: perfect trees over random ranks into per-feature cut
// tables drawn from the same bounded split range.
func syntheticCompactEngine(arenaBytes int) *FlatForestEngine {
	const depth = 9
	const perTree = 1<<depth - 1
	const numFeatures = 16
	const cutsPerFeature = 256
	trees := arenaBytes / (8 * perTree)
	if trees < 1 {
		trees = 1
	}
	e := &FlatForestEngine{
		roots:       make([]int32, trees),
		variant:     FlatCompact,
		numClasses:  4,
		numFeatures: numFeatures,
		numPruned:   numFeatures,
	}
	e.mode.Store(packMode(1, KernelBranchy))
	next := xorshift32(0x9E3779B1)
	e.prunedOrig = make([]int32, numFeatures)
	e.cutLo = make([]int32, numFeatures+1)
	e.cuts = make([]uint32, 0, numFeatures*cutsPerFeature)
	for f := 0; f < numFeatures; f++ {
		e.prunedOrig[f] = int32(f)
		e.cutLo[f] = int32(len(e.cuts))
		fc := make([]uint32, 0, cutsPerFeature)
		for len(fc) < cutsPerFeature {
			fc = append(fc, core.PrecodeSplit32(syntheticSplit(next())))
		}
		sort.Slice(fc, func(i, j int) bool { return fc[i] < fc[j] })
		w := 0
		for i, v := range fc {
			if i == 0 || v != fc[w-1] {
				fc[w] = v
				w++
			}
		}
		e.cuts = append(e.cuts, fc[:w]...)
	}
	e.cutLo[numFeatures] = int32(len(e.cuts))

	e.keys16 = make([]uint16, 0, trees*perTree)
	e.feats16 = make([]uint16, 0, trees*perTree)
	e.kids = make([]int32, 0, trees*perTree)
	e.nodes64 = make([]uint64, 0, trees*perTree)
	for t := 0; t < trees; t++ {
		e.roots[t] = int32(len(e.kids))
		for i := 0; i < perTree; i++ {
			var left, right int32
			if 2*i+1 < perTree {
				left, right = int32(2*i+1), int32(2*i+2) // tree-relative
			} else {
				left, right = ^int32(next()%4), ^int32(next()%4)
			}
			f := next() % numFeatures
			nc := e.cutLo[f+1] - e.cutLo[f]
			kids := packKids(left, right)
			rank := uint16(next() % uint32(nc))
			e.feats16 = append(e.feats16, uint16(f))
			e.keys16 = append(e.keys16, rank)
			e.kids = append(e.kids, kids)
			e.nodes64 = append(e.nodes64, packNode64(rank, uint16(f), kids))
		}
	}
	return e
}

// splitValues returns, per original feature, the engine's distinct
// split values decoded from the arena back into float space, sorted in
// FLInt total order. Features the forest never splits on get an empty
// slice.
func (e *FlatForestEngine) splitValues() [][]float32 {
	vals := make([][]float32, e.numFeatures)
	if e.variant == FlatCompact {
		for p, f := range e.prunedOrig {
			lo, hi := e.cutLo[p], e.cutLo[p+1]
			fv := make([]float32, 0, hi-lo)
			for _, k := range e.cuts[lo:hi] {
				fv = append(fv, math.Float32frombits(ieee754.FromTotalOrderKey32(k)))
			}
			vals[f] = fv // cut tables are already sorted and distinct
		}
		return vals
	}
	for i := range e.arena {
		n := &e.arena[i]
		var v float32
		if e.variant == FlatPrecoded {
			v = math.Float32frombits(ieee754.FromTotalOrderKey32(uint32(n.key)))
		} else {
			// FlatFLInt and FlatFloat32 both store SI(bits(split)).
			v = ieee754.FromSI32(n.key)
		}
		vals[n.feature] = append(vals[n.feature], v)
	}
	for f := range vals {
		fv := vals[f]
		sort.Slice(fv, func(i, j int) bool {
			return core.PrecodeSplit32(fv[i]) < core.PrecodeSplit32(fv[j])
		})
		w := 0
		for i, v := range fv {
			if i == 0 || core.PrecodeSplit32(v) != core.PrecodeSplit32(fv[w-1]) {
				fv[w] = v
				w++
			}
		}
		vals[f] = fv[:w]
	}
	return vals
}

// representativeRows synthesizes n calibration rows spanning the
// engine's own comparison range: each feature value is one of the
// feature's decoded split values — sometimes the split itself
// (exercising the <= tie), sometimes its immediate float neighbor on
// either side — so a trained arena's walks branch both ways and the
// timed traversals resemble production fetch patterns. (The PR 2
// synthesis cleared the exponent bits, so every row was a near-zero
// subnormal that compared below essentially every trained split and
// every cursor walked the same one-sided path.) Features the forest
// never splits on stay zero: no node reads them.
func (e *FlatForestEngine) representativeRows(n int, seed uint32) [][]float32 {
	vals := e.splitValues()
	next := xorshift32(seed)
	rows := make([][]float32, n)
	for i := range rows {
		r := make([]float32, e.numFeatures)
		for f := range r {
			fv := vals[f]
			if len(fv) == 0 {
				continue
			}
			c := fv[next()%uint32(len(fv))]
			switch next() % 3 {
			case 0:
				r[f] = c
			case 1:
				r[f] = math.Nextafter32(c, float32(math.Inf(-1)))
			default:
				r[f] = math.Nextafter32(c, float32(math.Inf(+1)))
			}
		}
		rows[i] = r
	}
	return rows
}

// voteLanes returns k zeroed vote-count views (k <= 8) for one
// interleaved group: stack-array backed when the class count fits the
// fast path, scratch-backed (and re-zeroed, only the k lanes actually
// used) otherwise. The returned array of slice headers lives in the
// caller's frame, so the block kernel stays allocation-free either way.
func voteLanes(stack *[8][maxStackClasses]int32, scratch []int32, nc, k int) [8][]int32 {
	var lanes [8][]int32
	if nc <= maxStackClasses {
		for i := 0; i < k; i++ {
			lanes[i] = stack[i][:nc]
		}
		return lanes
	}
	for i := 0; i < k; i++ {
		v := scratch[i*nc : (i+1)*nc]
		for j := range v {
			v[j] = 0
		}
		lanes[i] = v
	}
	return lanes
}

// voteLanes16 is voteLanes for the dual-group SIMD walk's 16 lanes
// (k <= 16), with the same stack-or-scratch split; the scratch vote
// buffer is sized for 16 lanes at construction.
func voteLanes16(stack *[16][maxStackClasses]int32, scratch []int32, nc, k int) [16][]int32 {
	var lanes [16][]int32
	if nc <= maxStackClasses {
		for i := 0; i < k; i++ {
			lanes[i] = stack[i][:nc]
		}
		return lanes
	}
	for i := 0; i < k; i++ {
		v := scratch[i*nc : (i+1)*nc]
		for j := range v {
			v[j] = 0
		}
		lanes[i] = v
	}
	return lanes
}

// classify4FLInt walks one tree for four rows with register-resident
// cursors (4-way memory-level parallelism); rows whose chains outlive
// the others finish in the single-cursor loop.
func (e *FlatForestEngine) classify4FLInt(x0, x1, x2, x3 []int32, root int32) (int32, int32, int32, int32) {
	arena := e.arena
	i0, i1, i2, i3 := root, root, root, root
	for i0 >= 0 && i1 >= 0 && i2 >= 0 && i3 >= 0 {
		n0, n1, n2, n3 := &arena[i0], &arena[i1], &arena[i2], &arena[i3]
		v0, v1, v2, v3 := x0[n0.feature], x1[n1.feature], x2[n2.feature], x3[n3.feature]
		var le0, le1, le2, le3 bool
		if n0.key >= 0 {
			le0 = v0 <= n0.key
		} else {
			le0 = uint32(v0) >= uint32(n0.key)
		}
		if n1.key >= 0 {
			le1 = v1 <= n1.key
		} else {
			le1 = uint32(v1) >= uint32(n1.key)
		}
		if n2.key >= 0 {
			le2 = v2 <= n2.key
		} else {
			le2 = uint32(v2) >= uint32(n2.key)
		}
		if n3.key >= 0 {
			le3 = v3 <= n3.key
		} else {
			le3 = uint32(v3) >= uint32(n3.key)
		}
		if le0 {
			i0 = n0.left
		} else {
			i0 = n0.right
		}
		if le1 {
			i1 = n1.left
		} else {
			i1 = n1.right
		}
		if le2 {
			i2 = n2.left
		} else {
			i2 = n2.right
		}
		if le3 {
			i3 = n3.left
		} else {
			i3 = n3.right
		}
	}
	return e.finishFLInt(x0, i0), e.finishFLInt(x1, i1), e.finishFLInt(x2, i2), e.finishFLInt(x3, i3)
}

// classify8FLInt walks one tree for eight rows at once; classes are
// written into out to keep the signature manageable.
func (e *FlatForestEngine) classify8FLInt(x *[8][]int32, root int32, out *[8]int32) {
	arena := e.arena
	x0, x1, x2, x3 := x[0], x[1], x[2], x[3]
	x4, x5, x6, x7 := x[4], x[5], x[6], x[7]
	i0, i1, i2, i3 := root, root, root, root
	i4, i5, i6, i7 := root, root, root, root
	for i0 >= 0 && i1 >= 0 && i2 >= 0 && i3 >= 0 && i4 >= 0 && i5 >= 0 && i6 >= 0 && i7 >= 0 {
		n0, n1, n2, n3 := &arena[i0], &arena[i1], &arena[i2], &arena[i3]
		n4, n5, n6, n7 := &arena[i4], &arena[i5], &arena[i6], &arena[i7]
		v0, v1, v2, v3 := x0[n0.feature], x1[n1.feature], x2[n2.feature], x3[n3.feature]
		v4, v5, v6, v7 := x4[n4.feature], x5[n5.feature], x6[n6.feature], x7[n7.feature]
		var le0, le1, le2, le3, le4, le5, le6, le7 bool
		if n0.key >= 0 {
			le0 = v0 <= n0.key
		} else {
			le0 = uint32(v0) >= uint32(n0.key)
		}
		if n1.key >= 0 {
			le1 = v1 <= n1.key
		} else {
			le1 = uint32(v1) >= uint32(n1.key)
		}
		if n2.key >= 0 {
			le2 = v2 <= n2.key
		} else {
			le2 = uint32(v2) >= uint32(n2.key)
		}
		if n3.key >= 0 {
			le3 = v3 <= n3.key
		} else {
			le3 = uint32(v3) >= uint32(n3.key)
		}
		if n4.key >= 0 {
			le4 = v4 <= n4.key
		} else {
			le4 = uint32(v4) >= uint32(n4.key)
		}
		if n5.key >= 0 {
			le5 = v5 <= n5.key
		} else {
			le5 = uint32(v5) >= uint32(n5.key)
		}
		if n6.key >= 0 {
			le6 = v6 <= n6.key
		} else {
			le6 = uint32(v6) >= uint32(n6.key)
		}
		if n7.key >= 0 {
			le7 = v7 <= n7.key
		} else {
			le7 = uint32(v7) >= uint32(n7.key)
		}
		if le0 {
			i0 = n0.left
		} else {
			i0 = n0.right
		}
		if le1 {
			i1 = n1.left
		} else {
			i1 = n1.right
		}
		if le2 {
			i2 = n2.left
		} else {
			i2 = n2.right
		}
		if le3 {
			i3 = n3.left
		} else {
			i3 = n3.right
		}
		if le4 {
			i4 = n4.left
		} else {
			i4 = n4.right
		}
		if le5 {
			i5 = n5.left
		} else {
			i5 = n5.right
		}
		if le6 {
			i6 = n6.left
		} else {
			i6 = n6.right
		}
		if le7 {
			i7 = n7.left
		} else {
			i7 = n7.right
		}
	}
	out[0] = e.finishFLInt(x0, i0)
	out[1] = e.finishFLInt(x1, i1)
	out[2] = e.finishFLInt(x2, i2)
	out[3] = e.finishFLInt(x3, i3)
	out[4] = e.finishFLInt(x4, i4)
	out[5] = e.finishFLInt(x5, i5)
	out[6] = e.finishFLInt(x6, i6)
	out[7] = e.finishFLInt(x7, i7)
}

// finishFLInt completes one FLInt chain after an interleaved loop exits.
func (e *FlatForestEngine) finishFLInt(xi []int32, i int32) int32 {
	if i < 0 {
		return ^i
	}
	return e.classifyFLInt(xi, i)
}

// predictBlockFLIntWide classifies one block with the interleaved FLInt
// kernel at the given width, cascading 8 -> 4 -> 2 over the remainder so
// every row but at most one runs interleaved.
func (e *FlatForestEngine) predictBlockFLIntWide(rows [][]float32, out []int32, s *flatScratch, width int) {
	nf := e.numFeatures
	nc := e.numClasses
	b := 0
	if width >= 8 {
		var x8 [8][]int32
		var cls [8]int32
		for ; b+8 <= len(rows); b += 8 {
			for i := 0; i < 8; i++ {
				x8[i] = core.EncodeFeatures32(s.enc[i*nf:i*nf:(i+1)*nf], rows[b+i])
			}
			var stack [8][maxStackClasses]int32
			lanes := voteLanes(&stack, s.votes, nc, 8)
			for _, root := range e.roots {
				e.classify8FLInt(&x8, root, &cls)
				lanes[0][cls[0]]++
				lanes[1][cls[1]]++
				lanes[2][cls[2]]++
				lanes[3][cls[3]]++
				lanes[4][cls[4]]++
				lanes[5][cls[5]]++
				lanes[6][cls[6]]++
				lanes[7][cls[7]]++
			}
			for i := 0; i < 8; i++ {
				out[b+i] = rf.Argmax(lanes[i])
			}
		}
	}
	if width >= 4 {
		for ; b+4 <= len(rows); b += 4 {
			e0 := core.EncodeFeatures32(s.enc[0:0:nf], rows[b])
			e1 := core.EncodeFeatures32(s.enc[nf:nf:2*nf], rows[b+1])
			e2 := core.EncodeFeatures32(s.enc[2*nf:2*nf:3*nf], rows[b+2])
			e3 := core.EncodeFeatures32(s.enc[3*nf:3*nf:4*nf], rows[b+3])
			var stack [8][maxStackClasses]int32
			lanes := voteLanes(&stack, s.votes, nc, 4)
			for _, root := range e.roots {
				c0, c1, c2, c3 := e.classify4FLInt(e0, e1, e2, e3, root)
				lanes[0][c0]++
				lanes[1][c1]++
				lanes[2][c2]++
				lanes[3][c3]++
			}
			out[b] = rf.Argmax(lanes[0])
			out[b+1] = rf.Argmax(lanes[1])
			out[b+2] = rf.Argmax(lanes[2])
			out[b+3] = rf.Argmax(lanes[3])
		}
	}
	for ; b+2 <= len(rows); b += 2 {
		e0 := core.EncodeFeatures32(s.enc[0:0:nf], rows[b])
		e1 := core.EncodeFeatures32(s.enc[nf:nf:2*nf], rows[b+1])
		var stack [8][maxStackClasses]int32
		lanes := voteLanes(&stack, s.votes, nc, 2)
		for _, root := range e.roots {
			c0, c1 := e.classify2FLInt(e0, e1, root)
			lanes[0][c0]++
			lanes[1][c1]++
		}
		out[b] = rf.Argmax(lanes[0])
		out[b+1] = rf.Argmax(lanes[1])
	}
	if b < len(rows) {
		out[b] = e.predictOneInto(core.EncodeFeatures32(s.enc[0:0:nf], rows[b]), s)
	}
}
