package treeexec

import (
	"math"
	"sync/atomic"
	"time"

	"flint/internal/core"
	"flint/internal/rf"
)

// The batch kernel walks W independent rows through each tree with W
// register-resident cursors, so the out-of-order core overlaps their
// node fetches (W-way memory-level parallelism). The payoff depends on
// the arena's cache footprint: small arenas are IPC-bound and prefer the
// plain per-row loop, large arenas are fetch-latency-bound and prefer
// wider interleave. The crossover points are host properties (load-queue
// depth, cache sizes), so they are gates measured at runtime rather
// than constants: see Calibrate and CalibrateInterleave.

// interleaveWidths are the supported cursor counts, in ascending order.
var interleaveWidths = [4]int{1, 2, 4, 8}

// InterleaveGates holds the arena byte-size thresholds from which each
// wider interleaved walk wins on this host. A threshold of math.MaxInt
// disables that width. The zero value is not meaningful; use
// DefaultInterleaveGates or Calibrate.
type InterleaveGates struct {
	// Min2/Min4/Min8 are the smallest arena footprints (bytes) at which
	// the 2-, 4- and 8-way walks outperform the next narrower one.
	Min2, Min4, Min8 int
}

// DefaultInterleaveGates are the static thresholds used until Calibrate
// measures the host: 2-way past the ~1MB L2 comfort zone (the PR 1
// pairMinArenaNodes point), 4-way past ~4MB, 8-way past ~16MB. They are
// conservative transcriptions of one x86 VM's measurements.
func DefaultInterleaveGates() InterleaveGates {
	return InterleaveGates{
		Min2: pairMinArenaNodes * 16, // the old node gate, in bytes
		Min4: 4 << 20,
		Min8: 16 << 20,
	}
}

// calibratedGates is the host-wide gate table installed by Calibrate;
// nil selects DefaultInterleaveGates. Engines read it once at
// construction.
var calibratedGates atomic.Pointer[InterleaveGates]

// CurrentInterleaveGates returns the gate table new engines will use:
// the last Calibrate result, or the static defaults.
func CurrentInterleaveGates() InterleaveGates {
	if g := calibratedGates.Load(); g != nil {
		return *g
	}
	return DefaultInterleaveGates()
}

// SetInterleaveGates installs a gate table for subsequently constructed
// engines (Calibrate calls this with measured values; tests and
// deployments with known-good numbers may call it directly).
func SetInterleaveGates(g InterleaveGates) {
	calibratedGates.Store(&g)
}

// widthFor selects the interleave width for an arena footprint.
func (g InterleaveGates) widthFor(arenaBytes int) int {
	switch {
	case g.Min8 > 0 && arenaBytes >= g.Min8:
		return 8
	case g.Min4 > 0 && arenaBytes >= g.Min4:
		return 4
	case g.Min2 > 0 && arenaBytes >= g.Min2:
		return 2
	}
	return 1
}

// ArenaBytes returns the engine's node storage footprint: 16 bytes per
// node for the AoS arenas, 8 bytes per node plus the per-feature cut
// tables for the compact SoA arena. This is the quantity the interleave
// gates are measured against.
func (e *FlatForestEngine) ArenaBytes() int {
	if e.variant == FlatCompact {
		return 2*len(e.keys16) + 2*len(e.feats16) + 4*len(e.kids) + 4*len(e.cuts) + 4*len(e.cutLo)
	}
	return 16 * len(e.arena)
}

// ArenaNodes returns the number of inner nodes stored in the arena.
func (e *FlatForestEngine) ArenaNodes() int {
	if e.variant == FlatCompact {
		return len(e.kids)
	}
	return len(e.arena)
}

// Interleave returns the batch kernel's current cursor count (1, 2, 4
// or 8).
func (e *FlatForestEngine) Interleave() int { return e.interleave }

// SetInterleave forces the batch kernel's cursor count, bypassing the
// calibrated gates; the requested width is rounded down to the nearest
// supported one (1, 2, 4, 8) and returned. Only the FLInt and compact
// kernels interleave; other variants ignore the setting.
func (e *FlatForestEngine) SetInterleave(width int) int {
	w := 1
	for _, c := range interleaveWidths {
		if width >= c {
			w = c
		}
	}
	e.interleave = w
	return w
}

// CalibrateInterleave times this engine's own batch kernel at every
// supported interleave width on synthetic rows and adopts the fastest,
// returning it. The whole pass costs roughly budget wall time (budget
// <= 0 selects 40ms). This is the on-demand, per-engine half of the
// calibration story; Calibrate measures host-wide gates for engines not
// yet built.
func (e *FlatForestEngine) CalibrateInterleave(budget time.Duration) int {
	if e.variant != FlatFLInt && e.variant != FlatCompact {
		return e.interleave
	}
	if budget <= 0 {
		budget = 40 * time.Millisecond
	}
	rows := syntheticRows(e.numFeatures, 64, 0x9E3779B9)
	out := make([]int32, len(rows))
	s := e.newScratch()
	prev := e.interleave
	per := budget / time.Duration(len(interleaveWidths))
	best, bestNs := prev, math.MaxFloat64
	for _, w := range interleaveWidths {
		e.interleave = w
		e.predictBlock(rows, out, s) // warm up
		var runs int
		start := time.Now()
		for time.Since(start) < per {
			e.predictBlock(rows, out, s)
			runs++
		}
		if runs == 0 {
			continue
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(runs)
		if ns < bestNs {
			best, bestNs = w, ns
		}
	}
	e.interleave = best
	return best
}

// Calibrate measures the interleave crossover points on this host: for
// a ladder of synthetic arena sizes it times the FLInt batch kernel at
// widths 1/2/4/8, picks the fastest width per size, derives monotone
// byte thresholds, installs them for subsequently constructed engines
// (SetInterleaveGates) and returns them. The whole pass costs roughly
// budget wall time (budget <= 0 selects 200ms); call it once at process
// start, or whenever the deployment moves to different hardware.
func Calibrate(budget time.Duration) InterleaveGates {
	if budget <= 0 {
		budget = 200 * time.Millisecond
	}
	// Depth-9 synthetic trees (511 inner nodes, 8KB each in the AoS
	// arena) stacked to the ladder's target footprints, bracketing the
	// L2/L3/DRAM regimes where the crossovers live.
	sizes := []int{256 << 10, 1 << 20, 4 << 20, 16 << 20}
	per := budget / time.Duration(len(sizes)*len(interleaveWidths))
	bestAt := make([]int, len(sizes))
	for si, bytes := range sizes {
		e := syntheticFLIntEngine(bytes)
		rows := syntheticRows(e.numFeatures, 64, uint32(0xB5297A4D+si))
		out := make([]int32, len(rows))
		s := e.newScratch()
		best, bestNs := 1, math.MaxFloat64
		for _, w := range interleaveWidths {
			e.interleave = w
			e.predictBlock(rows, out, s)
			var runs int
			start := time.Now()
			for time.Since(start) < per {
				e.predictBlock(rows, out, s)
				runs++
			}
			if runs == 0 {
				continue
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(runs)
			if ns < bestNs {
				best, bestNs = w, ns
			}
		}
		bestAt[si] = best
	}
	// Enforce monotone non-decreasing widths over the size ladder (a
	// narrow win at a larger size is measurement noise), then read off
	// the smallest size preferring each width.
	for i := 1; i < len(bestAt); i++ {
		if bestAt[i] < bestAt[i-1] {
			bestAt[i] = bestAt[i-1]
		}
	}
	g := InterleaveGates{Min2: math.MaxInt, Min4: math.MaxInt, Min8: math.MaxInt}
	for i := len(sizes) - 1; i >= 0; i-- {
		if bestAt[i] >= 2 {
			g.Min2 = sizes[i]
		}
		if bestAt[i] >= 4 {
			g.Min4 = sizes[i]
		}
		if bestAt[i] >= 8 {
			g.Min8 = sizes[i]
		}
	}
	SetInterleaveGates(g)
	return g
}

// syntheticFLIntEngine builds a calibration-only FLInt arena of roughly
// the requested byte footprint out of random perfect trees, without
// training: topology and split values only need to be plausible for the
// walk's memory behavior, not meaningful.
func syntheticFLIntEngine(arenaBytes int) *FlatForestEngine {
	const depth = 9
	const perTree = 1<<depth - 1 // inner nodes per perfect tree
	const numFeatures = 16
	trees := arenaBytes / (16 * perTree)
	if trees < 1 {
		trees = 1
	}
	e := &FlatForestEngine{
		arena:       make([]node, 0, trees*perTree),
		roots:       make([]int32, trees),
		variant:     FlatFLInt,
		numClasses:  4,
		numFeatures: numFeatures,
		interleave:  1,
	}
	rng := uint32(0x2545F491)
	next := func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng
	}
	for t := 0; t < trees; t++ {
		base := int32(len(e.arena))
		e.roots[t] = base
		for i := 0; i < perTree; i++ {
			// Heap order: node i's children are 2i+1 and 2i+2; the last
			// level's children are leaves.
			var left, right int32
			if 2*i+1 < perTree {
				left, right = base+int32(2*i+1), base+int32(2*i+2)
			} else {
				left, right = ^int32(next()%4), ^int32(next()%4)
			}
			key := int32(next() &^ 0x7F80_0000) // finite: clear the NaN/Inf exponent
			e.arena = append(e.arena, node{
				feature: int32(next() % numFeatures),
				key:     key,
				left:    left,
				right:   right,
			})
		}
	}
	return e
}

// syntheticRows generates deterministic pseudo-random finite float rows
// for calibration runs.
func syntheticRows(numFeatures, n int, seed uint32) [][]float32 {
	rng := seed | 1
	next := func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng
	}
	rows := make([][]float32, n)
	for i := range rows {
		r := make([]float32, numFeatures)
		for j := range r {
			b := next() &^ 0x7F80_0000 // finite
			r[j] = math.Float32frombits(b)
		}
		rows[i] = r
	}
	return rows
}

// voteLanes returns k zeroed vote-count views (k <= 8) for one
// interleaved group: stack-array backed when the class count fits the
// fast path, scratch-backed (and re-zeroed, only the k lanes actually
// used) otherwise. The returned array of slice headers lives in the
// caller's frame, so the block kernel stays allocation-free either way.
func voteLanes(stack *[8][maxStackClasses]int32, scratch []int32, nc, k int) [8][]int32 {
	var lanes [8][]int32
	if nc <= maxStackClasses {
		for i := 0; i < k; i++ {
			lanes[i] = stack[i][:nc]
		}
		return lanes
	}
	for i := 0; i < k; i++ {
		v := scratch[i*nc : (i+1)*nc]
		for j := range v {
			v[j] = 0
		}
		lanes[i] = v
	}
	return lanes
}

// classify4FLInt walks one tree for four rows with register-resident
// cursors (4-way memory-level parallelism); rows whose chains outlive
// the others finish in the single-cursor loop.
func (e *FlatForestEngine) classify4FLInt(x0, x1, x2, x3 []int32, root int32) (int32, int32, int32, int32) {
	arena := e.arena
	i0, i1, i2, i3 := root, root, root, root
	for i0 >= 0 && i1 >= 0 && i2 >= 0 && i3 >= 0 {
		n0, n1, n2, n3 := &arena[i0], &arena[i1], &arena[i2], &arena[i3]
		v0, v1, v2, v3 := x0[n0.feature], x1[n1.feature], x2[n2.feature], x3[n3.feature]
		var le0, le1, le2, le3 bool
		if n0.key >= 0 {
			le0 = v0 <= n0.key
		} else {
			le0 = uint32(v0) >= uint32(n0.key)
		}
		if n1.key >= 0 {
			le1 = v1 <= n1.key
		} else {
			le1 = uint32(v1) >= uint32(n1.key)
		}
		if n2.key >= 0 {
			le2 = v2 <= n2.key
		} else {
			le2 = uint32(v2) >= uint32(n2.key)
		}
		if n3.key >= 0 {
			le3 = v3 <= n3.key
		} else {
			le3 = uint32(v3) >= uint32(n3.key)
		}
		if le0 {
			i0 = n0.left
		} else {
			i0 = n0.right
		}
		if le1 {
			i1 = n1.left
		} else {
			i1 = n1.right
		}
		if le2 {
			i2 = n2.left
		} else {
			i2 = n2.right
		}
		if le3 {
			i3 = n3.left
		} else {
			i3 = n3.right
		}
	}
	return e.finishFLInt(x0, i0), e.finishFLInt(x1, i1), e.finishFLInt(x2, i2), e.finishFLInt(x3, i3)
}

// classify8FLInt walks one tree for eight rows at once; classes are
// written into out to keep the signature manageable.
func (e *FlatForestEngine) classify8FLInt(x *[8][]int32, root int32, out *[8]int32) {
	arena := e.arena
	x0, x1, x2, x3 := x[0], x[1], x[2], x[3]
	x4, x5, x6, x7 := x[4], x[5], x[6], x[7]
	i0, i1, i2, i3 := root, root, root, root
	i4, i5, i6, i7 := root, root, root, root
	for i0 >= 0 && i1 >= 0 && i2 >= 0 && i3 >= 0 && i4 >= 0 && i5 >= 0 && i6 >= 0 && i7 >= 0 {
		n0, n1, n2, n3 := &arena[i0], &arena[i1], &arena[i2], &arena[i3]
		n4, n5, n6, n7 := &arena[i4], &arena[i5], &arena[i6], &arena[i7]
		v0, v1, v2, v3 := x0[n0.feature], x1[n1.feature], x2[n2.feature], x3[n3.feature]
		v4, v5, v6, v7 := x4[n4.feature], x5[n5.feature], x6[n6.feature], x7[n7.feature]
		var le0, le1, le2, le3, le4, le5, le6, le7 bool
		if n0.key >= 0 {
			le0 = v0 <= n0.key
		} else {
			le0 = uint32(v0) >= uint32(n0.key)
		}
		if n1.key >= 0 {
			le1 = v1 <= n1.key
		} else {
			le1 = uint32(v1) >= uint32(n1.key)
		}
		if n2.key >= 0 {
			le2 = v2 <= n2.key
		} else {
			le2 = uint32(v2) >= uint32(n2.key)
		}
		if n3.key >= 0 {
			le3 = v3 <= n3.key
		} else {
			le3 = uint32(v3) >= uint32(n3.key)
		}
		if n4.key >= 0 {
			le4 = v4 <= n4.key
		} else {
			le4 = uint32(v4) >= uint32(n4.key)
		}
		if n5.key >= 0 {
			le5 = v5 <= n5.key
		} else {
			le5 = uint32(v5) >= uint32(n5.key)
		}
		if n6.key >= 0 {
			le6 = v6 <= n6.key
		} else {
			le6 = uint32(v6) >= uint32(n6.key)
		}
		if n7.key >= 0 {
			le7 = v7 <= n7.key
		} else {
			le7 = uint32(v7) >= uint32(n7.key)
		}
		if le0 {
			i0 = n0.left
		} else {
			i0 = n0.right
		}
		if le1 {
			i1 = n1.left
		} else {
			i1 = n1.right
		}
		if le2 {
			i2 = n2.left
		} else {
			i2 = n2.right
		}
		if le3 {
			i3 = n3.left
		} else {
			i3 = n3.right
		}
		if le4 {
			i4 = n4.left
		} else {
			i4 = n4.right
		}
		if le5 {
			i5 = n5.left
		} else {
			i5 = n5.right
		}
		if le6 {
			i6 = n6.left
		} else {
			i6 = n6.right
		}
		if le7 {
			i7 = n7.left
		} else {
			i7 = n7.right
		}
	}
	out[0] = e.finishFLInt(x0, i0)
	out[1] = e.finishFLInt(x1, i1)
	out[2] = e.finishFLInt(x2, i2)
	out[3] = e.finishFLInt(x3, i3)
	out[4] = e.finishFLInt(x4, i4)
	out[5] = e.finishFLInt(x5, i5)
	out[6] = e.finishFLInt(x6, i6)
	out[7] = e.finishFLInt(x7, i7)
}

// finishFLInt completes one FLInt chain after an interleaved loop exits.
func (e *FlatForestEngine) finishFLInt(xi []int32, i int32) int32 {
	if i < 0 {
		return ^i
	}
	return e.classifyFLInt(xi, i)
}

// predictBlockFLIntWide classifies one block with the interleaved FLInt
// kernel at the engine's calibrated width, cascading 8 -> 4 -> 2 over
// the remainder so every row but at most one runs interleaved.
func (e *FlatForestEngine) predictBlockFLIntWide(rows [][]float32, out []int32, s *flatScratch) {
	nf := e.numFeatures
	nc := e.numClasses
	width := e.interleave
	b := 0
	if width >= 8 {
		var x8 [8][]int32
		var cls [8]int32
		for ; b+8 <= len(rows); b += 8 {
			for i := 0; i < 8; i++ {
				x8[i] = core.EncodeFeatures32(s.enc[i*nf:i*nf:(i+1)*nf], rows[b+i])
			}
			var stack [8][maxStackClasses]int32
			lanes := voteLanes(&stack, s.votes, nc, 8)
			for _, root := range e.roots {
				e.classify8FLInt(&x8, root, &cls)
				lanes[0][cls[0]]++
				lanes[1][cls[1]]++
				lanes[2][cls[2]]++
				lanes[3][cls[3]]++
				lanes[4][cls[4]]++
				lanes[5][cls[5]]++
				lanes[6][cls[6]]++
				lanes[7][cls[7]]++
			}
			for i := 0; i < 8; i++ {
				out[b+i] = rf.Argmax(lanes[i])
			}
		}
	}
	if width >= 4 {
		for ; b+4 <= len(rows); b += 4 {
			e0 := core.EncodeFeatures32(s.enc[0:0:nf], rows[b])
			e1 := core.EncodeFeatures32(s.enc[nf:nf:2*nf], rows[b+1])
			e2 := core.EncodeFeatures32(s.enc[2*nf:2*nf:3*nf], rows[b+2])
			e3 := core.EncodeFeatures32(s.enc[3*nf:3*nf:4*nf], rows[b+3])
			var stack [8][maxStackClasses]int32
			lanes := voteLanes(&stack, s.votes, nc, 4)
			for _, root := range e.roots {
				c0, c1, c2, c3 := e.classify4FLInt(e0, e1, e2, e3, root)
				lanes[0][c0]++
				lanes[1][c1]++
				lanes[2][c2]++
				lanes[3][c3]++
			}
			out[b] = rf.Argmax(lanes[0])
			out[b+1] = rf.Argmax(lanes[1])
			out[b+2] = rf.Argmax(lanes[2])
			out[b+3] = rf.Argmax(lanes[3])
		}
	}
	for ; b+2 <= len(rows); b += 2 {
		e0 := core.EncodeFeatures32(s.enc[0:0:nf], rows[b])
		e1 := core.EncodeFeatures32(s.enc[nf:nf:2*nf], rows[b+1])
		var stack [8][maxStackClasses]int32
		lanes := voteLanes(&stack, s.votes, nc, 2)
		for _, root := range e.roots {
			c0, c1 := e.classify2FLInt(e0, e1, root)
			lanes[0][c0]++
			lanes[1][c1]++
		}
		out[b] = rf.Argmax(lanes[0])
		out[b+1] = rf.Argmax(lanes[1])
	}
	if b < len(rows) {
		out[b] = e.predictOneInto(core.EncodeFeatures32(s.enc[0:0:nf], rows[b]), s)
	}
}
