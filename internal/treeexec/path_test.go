package treeexec

import (
	"math"
	"math/rand"
	"testing"

	"flint/internal/core"
	"flint/internal/dataset"
	"flint/internal/rf"
)

// replayPath re-walks the source forest following the traced steps,
// verifying at every node that the step's feature and threshold are the
// trained split (exact bits, modulo the documented -0.0 -> +0.0
// rewrite) and that the recorded direction is the float-semantics
// decision; it returns the majority class of the leaves the replay
// lands on. This pins DecisionPath to the model, independently of any
// engine kernel.
func replayPath(t *testing.T, f *rf.Forest, x []float32, steps []PathStep, numClasses int) int32 {
	t.Helper()
	counts := make([]int32, numClasses)
	cursor := 0
	for ti := range f.Trees {
		nodes := f.Trees[ti].Nodes
		ni := int32(0)
		for !nodes[ni].IsLeaf() {
			if cursor >= len(steps) {
				t.Fatalf("tree %d: path ends mid-walk at node %d", ti, ni)
			}
			s := steps[cursor]
			cursor++
			n := &nodes[ni]
			if s.Tree != ti || s.Feature != n.Feature {
				t.Fatalf("tree %d node %d: step %+v does not match source node %+v", ti, ni, s, n)
			}
			want := n.Split
			if want == 0 {
				want = 0 // engines rewrite -0.0 splits to +0.0
			}
			if math.Float32bits(s.Threshold) != math.Float32bits(want) {
				t.Fatalf("tree %d node %d: threshold %v (bits %#x) does not decode the trained split %v (bits %#x)",
					ti, ni, s.Threshold, math.Float32bits(s.Threshold), want, math.Float32bits(want))
			}
			le := x[n.Feature] <= want
			if s.Right == le {
				t.Fatalf("tree %d node %d: direction Right=%v disagrees with %v <= %v", ti, ni, s.Right, x[n.Feature], want)
			}
			if le {
				ni = n.Left
			} else {
				ni = n.Right
			}
		}
		counts[nodes[ni].Class]++
	}
	if cursor != len(steps) {
		t.Fatalf("path has %d extra steps past the last tree", len(steps)-cursor)
	}
	return rf.Argmax(counts)
}

// TestDecisionPathBitConsistentAllWorkloads is the tentpole acceptance
// test for the tracing half: on every bundled workload and every arena
// variant, the traced path must replay exactly on the source forest and
// its class must match Predict — and, for the compact arena, match the
// batch kernels (branchy, fused, simd) at every interleave width.
func TestDecisionPathBitConsistentAllWorkloads(t *testing.T) {
	for _, ds := range dataset.Names() {
		ds := ds
		t.Run(ds, func(t *testing.T) {
			f, d := trainedForest(t, ds, 8, 6)
			rows := d.Features
			if len(rows) > 160 {
				rows = rows[:160]
			}
			for _, v := range []FlatVariant{FlatFLInt, FlatFloat32, FlatPrecoded, FlatCompact} {
				e, err := NewFlat(f, v)
				if err != nil {
					t.Fatal(err)
				}
				var buf []PathStep
				want := make([]int32, len(rows))
				for i, x := range rows {
					var got int32
					buf, got = e.DecisionPath(x, buf)
					want[i] = e.Predict(x)
					if got != want[i] {
						t.Fatalf("%v row %d: DecisionPath class %d, Predict %d", v, i, got, want[i])
					}
					if replayed := replayPath(t, f, x, buf, e.NumClasses()); replayed != got {
						t.Fatalf("%v row %d: replayed class %d, traced class %d", v, i, replayed, got)
					}
					if e.Variant() == FlatCompact {
						for _, s := range buf {
							p := -1
							for pi, orig := range e.prunedOrig {
								if orig == s.Feature {
									p = pi
								}
							}
							if p < 0 {
								t.Fatalf("step feature %d is not a pruned feature", s.Feature)
							}
							if k := core.PrecodeSplit32(s.Threshold); e.cuts[e.cutLo[p]+int32(s.Rank)] != k {
								t.Fatalf("step rank %d does not index threshold %v in feature %d's cut table", s.Rank, s.Threshold, s.Feature)
							}
						}
					}
				}
				if e.Variant() != FlatCompact {
					continue
				}
				out := make([]int32, len(rows))
				for _, k := range []Kernel{KernelBranchy, KernelFused, KernelSIMD} {
					e.SetKernel(k)
					for _, width := range []int{1, 2, 4, 8} {
						e.SetInterleave(width)
						e.PredictBatch(rows, out, 2, 16)
						for i := range rows {
							if out[i] != want[i] {
								t.Fatalf("kernel %v width %d row %d: batch class %d, traced class %d", k, width, i, out[i], want[i])
							}
						}
					}
				}
			}
		})
	}
}

// TestDecisionPathAdversarialRandomForests drives the tracer over
// randomly grown trees on the extreme split-value pool (signed zeros,
// subnormals, extremes) — the corner inputs where a float re-derivation
// of the walk would first disagree with the kernels' integer
// predicates.
func TestDecisionPathAdversarialRandomForests(t *testing.T) {
	rng := rand.New(rand.NewSource(7331))
	splitPool := []float32{
		0, float32(math.Copysign(0, -1)), 1.5, -1.5,
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		math.MaxFloat32, -math.MaxFloat32, 3.25e-20, -7.5e12,
	}
	randTree := func(depth int) rf.Tree {
		var nodes []rf.Node
		var grow func(d int) int32
		grow = func(d int) int32 {
			me := int32(len(nodes))
			if d == 0 || rng.Float64() < 0.3 {
				nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(rng.Intn(3))})
				return me
			}
			nodes = append(nodes, rf.Node{
				Feature:      int32(rng.Intn(4)),
				Split:        splitPool[rng.Intn(len(splitPool))],
				LeftFraction: rng.Float64(),
			})
			l := grow(d - 1)
			r := grow(d - 1)
			nodes[me].Left = l
			nodes[me].Right = r
			return me
		}
		grow(depth)
		return rf.Tree{Nodes: nodes}
	}
	for trial := 0; trial < 20; trial++ {
		f := &rf.Forest{NumFeatures: 4, NumClasses: 3,
			Trees: []rf.Tree{randTree(6), randTree(6), randTree(6)}}
		for _, v := range []FlatVariant{FlatFLInt, FlatFloat32, FlatPrecoded, FlatCompact} {
			e, err := NewFlat(f, v)
			if err != nil {
				t.Fatal(err)
			}
			var buf []PathStep
			x := make([]float32, 4)
			for probe := 0; probe < 48; probe++ {
				for j := range x {
					if rng.Intn(2) == 0 {
						x[j] = splitPool[rng.Intn(len(splitPool))]
					} else {
						x[j] = splitPool[rng.Intn(len(splitPool))] * float32(rng.NormFloat64())
					}
				}
				var got int32
				buf, got = e.DecisionPath(x, buf)
				if want := e.Predict(x); got != want {
					t.Fatalf("trial %d %v: DecisionPath class %d, Predict %d for %v", trial, v, got, want, x)
				}
			}
		}
	}
}

// TestDecisionPathLeafOnlyTrees pins the degenerate shape: a forest of
// single-leaf trees votes but traces no steps.
func TestDecisionPathLeafOnlyTrees(t *testing.T) {
	f := &rf.Forest{NumFeatures: 2, NumClasses: 3, Trees: []rf.Tree{
		{Nodes: []rf.Node{{Feature: rf.LeafFeature, Class: 2}}},
		{Nodes: []rf.Node{{Feature: rf.LeafFeature, Class: 2}}},
		{Nodes: []rf.Node{{Feature: rf.LeafFeature, Class: 1}}},
	}}
	for _, v := range []FlatVariant{FlatFLInt, FlatCompact} {
		e, err := NewFlat(f, v)
		if err != nil {
			t.Fatal(err)
		}
		steps, class := e.DecisionPath([]float32{3, 4}, nil)
		if len(steps) != 0 || class != 2 {
			t.Fatalf("%v: got %d steps, class %d; want 0 steps, class 2", v, len(steps), class)
		}
	}
}
