package treeexec

import (
	"math"
	"math/rand"
	"testing"

	"flint/internal/core"
	"flint/internal/dataset"
	"flint/internal/rf"
)

// These tests run the same way under the default build (where
// fusedWalk8/fusedRank8 dispatch to the AVX2 assembly when the host has
// it) and under -tags noasm or on non-amd64 (where they are the
// portable Go forms) — the differential contract is identical, only the
// instructions differ.

// TestDetectedISA pins the availability/name coupling: a host that
// reports the SIMD kernel available must name its ISA, and one that
// does not must report none.
func TestDetectedISA(t *testing.T) {
	if simdKernelAvailable() {
		if DetectedISA() != "avx2" {
			t.Errorf("SIMD kernel available but DetectedISA() = %q, want \"avx2\"", DetectedISA())
		}
	} else if DetectedISA() != "" {
		t.Errorf("SIMD kernel unavailable but DetectedISA() = %q, want \"\"", DetectedISA())
	}
}

// TestSIMDBitIdenticalAllWorkloads is the tentpole acceptance test for
// the vector kernel: on every bundled workload the SIMD kernel must
// match the FLInt arena prediction-for-prediction — the single-row
// paths under an installed simd mode (which serve through the scalar
// fused step), and the vector batch kernel at every interleave width,
// with 13-row batches so every group shape including partial lanes is
// exercised.
func TestSIMDBitIdenticalAllWorkloads(t *testing.T) {
	for _, ds := range dataset.Names() {
		ds := ds
		t.Run(ds, func(t *testing.T) {
			f, d := trainedForest(t, ds, 8, 6)
			ref, err := NewFlat(f, FlatFLInt)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewFlat(f, FlatCompact)
			if err != nil {
				t.Fatal(err)
			}
			if e.Variant() != FlatCompact {
				t.Fatalf("fell back to %v", e.Variant())
			}
			e.SetKernel(KernelSIMD)
			want := make([]int32, d.Len())
			for i, x := range d.Features {
				want[i] = ref.Predict(x)
				if got := e.Predict(x); got != want[i] {
					t.Fatalf("row %d: simd single-row got %d want %d", i, got, want[i])
				}
				if got := e.PredictEncoded(core.EncodeFeatures32(nil, x)); got != want[i] {
					t.Fatalf("row %d: simd encoded got %d want %d", i, got, want[i])
				}
				if got := e.PredictPrecoded(core.PrecodeFeatures32(nil, x)); got != want[i] {
					t.Fatalf("row %d: simd precoded got %d want %d", i, got, want[i])
				}
			}
			for _, width := range []int{1, 2, 4, 8} {
				e.SetInterleave(width)
				if e.Kernel() != KernelSIMD {
					t.Fatalf("SetInterleave(%d) dropped the simd kernel", width)
				}
				got := e.PredictBatch(d.Features, nil, 2, 13)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("width %d row %d: simd batch got %d want %d", width, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestSIMDAdversarialRandomForests cross-checks the vector kernel on
// randomly grown trees over the extreme split-value pool (signed zeros,
// subnormals, extremes) at every width — the same gauntlet both scalar
// kernels pass, now through the gathered vector step and the lockstep
// vector quantizer.
func TestSIMDAdversarialRandomForests(t *testing.T) {
	rng := rand.New(rand.NewSource(913))
	splitPool := []float32{
		0, float32(math.Copysign(0, -1)), 1.5, -1.5,
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		math.MaxFloat32, -math.MaxFloat32, 3.25e-20, -7.5e12,
	}
	randTree := func(depth int) rf.Tree {
		var nodes []rf.Node
		var grow func(d int) int32
		grow = func(d int) int32 {
			me := int32(len(nodes))
			if d == 0 || rng.Float64() < 0.3 {
				nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(rng.Intn(3))})
				return me
			}
			nodes = append(nodes, rf.Node{
				Feature: int32(rng.Intn(4)),
				Split:   splitPool[rng.Intn(len(splitPool))],
			})
			l := grow(d - 1)
			r := grow(d - 1)
			nodes[me].Left = l
			nodes[me].Right = r
			return me
		}
		grow(depth)
		return rf.Tree{Nodes: nodes}
	}
	for trial := 0; trial < 20; trial++ {
		f := &rf.Forest{NumFeatures: 4, NumClasses: 3,
			Trees: []rf.Tree{randTree(6), randTree(6), randTree(6)}}
		ref, err := NewFlat(f, FlatFLInt)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewFlat(f, FlatCompact)
		if err != nil {
			t.Fatal(err)
		}
		e.SetKernel(KernelSIMD)
		rows := make([][]float32, 0, 64)
		for probe := 0; probe < 64; probe++ {
			x := make([]float32, 4)
			for j := range x {
				if rng.Intn(2) == 0 {
					x[j] = splitPool[rng.Intn(len(splitPool))]
				} else {
					x[j] = splitPool[rng.Intn(len(splitPool))] * float32(rng.NormFloat64())
				}
			}
			rows = append(rows, x)
		}
		for _, k := range []Kernel{KernelSIMD, KernelSIMDQuant} {
			e.SetKernel(k)
			widths := []int{1, 2, 4, 8}
			if k == KernelSIMD {
				widths = append(widths, 16)
			}
			for _, width := range widths {
				e.SetInterleave(width)
				got := e.PredictBatch(rows, nil, 1, 16)
				for i := range rows {
					if want := ref.Predict(rows[i]); got[i] != want {
						t.Fatalf("trial %d kernel %v width %d row %d: got %d want %d for %v",
							trial, k, width, i, got[i], want, rows[i])
					}
				}
			}
		}
	}
}

// TestFusedRank8MatchesBranchlessRank is the vector-quantizer property
// test: 8-lane segment ranks must agree with branchlessRank over random
// multi-segment cut tables probed at non-zero offsets (as cutLo slicing
// does), including wraparound probes (c-1 of a zero cut, MaxUint32
// edges) and 1-cut segments. Both the dispatched form and the portable
// form are checked against the scalar reference.
func TestFusedRank8MatchesBranchlessRank(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 60; trial++ {
		pre := rng.Intn(10)
		n := 1 + rng.Intn(30) // segments of 1..30 cuts, incl. single-cut
		post := rng.Intn(10)
		total := pre + n + post
		cuts := make([]uint32, 0, total)
		v := uint32(rng.Intn(5))
		for len(cuts) < total {
			cuts = append(cuts, v)
			v += 1 + uint32(rng.Intn(1<<25))
		}
		lo := int32(pre)
		probes := []uint32{0, 1, math.MaxUint32, math.MaxUint32 - 1}
		for _, c := range cuts[pre : pre+n] {
			probes = append(probes, c, c-1, c+1)
		}
		for i := 0; i < 16; i++ {
			probes = append(probes, rng.Uint32())
		}
		for len(probes)%8 != 0 {
			probes = append(probes, probes[0])
		}
		var keys [8]uint32
		var got, gotGo [8]uint16
		for at := 0; at < len(probes); at += 8 {
			copy(keys[:], probes[at:at+8])
			fusedRank8(cuts, lo, int32(n), &keys, &got)
			fusedRank8Go(cuts, lo, int32(n), &keys, &gotGo)
			for i := range keys {
				want := branchlessRank(cuts, lo, lo+int32(n), keys[i])
				if got[i] != want || gotGo[i] != want {
					t.Fatalf("trial %d key %d over cuts[%d:%d] of %v: dispatched %d, portable %d, want %d",
						trial, keys[i], lo, lo+int32(n), cuts, got[i], gotGo[i], want)
				}
			}
		}
	}
	// The empty segment through the wrapper: rank 0 everywhere, with no
	// probe into the table.
	cuts := []uint32{5, 10}
	keys := [8]uint32{0, 1, 6, 11, math.MaxUint32, 5, 10, 7}
	ranks := [8]uint16{9, 9, 9, 9, 9, 9, 9, 9}
	fusedRank8(cuts, 1, 0, &keys, &ranks)
	if ranks != [8]uint16{} {
		t.Errorf("empty segment ranks = %v, want zeros", ranks)
	}
}

// TestFusedWalk8MatchesGo pins the dispatched walk against the portable
// form directly, including the lane protocol the engine relies on:
// lanes starting at -1 (or any ^class) are inactive and must ride
// through the walk untouched, never used as gather addresses.
func TestFusedWalk8MatchesGo(t *testing.T) {
	e := syntheticCompactEngine(64 << 10)
	rows := e.representativeRows(64, 0x99)
	nq := e.numPruned
	q := make([]uint16, 8*nq+2)
	rng := rand.New(rand.NewSource(11))
	for at := 0; at+8 <= len(rows); at += 8 {
		e.quantizeBlockFused(rows[at:at+8], q)
		for _, root := range e.roots {
			if root < 0 {
				continue
			}
			var cur [8]int32
			for i := range cur {
				if rng.Intn(4) == 0 {
					cur[i] = ^int32(rng.Intn(3)) // pre-finished lane
				}
			}
			curGo := cur
			fusedWalk8(e.nodes64, root, q, int32(nq), &cur)
			fusedWalk8Go(e.nodes64, root, q, int32(nq), &curGo)
			if cur != curGo {
				t.Fatalf("root %d: dispatched walk %v, portable %v", root, cur, curGo)
			}
			for i := range cur {
				if cur[i] >= 0 {
					t.Fatalf("root %d lane %d: walk left an active cursor %d", root, i, cur[i])
				}
			}
		}
	}
}

// TestSIMDZeroAllocSteadyState extends the zero-alloc acceptance
// criterion to the SIMD kernel: steady-state Batcher prediction with
// the vector kernel installed allocates nothing at any interleave
// width.
func TestSIMDZeroAllocSteadyState(t *testing.T) {
	f, d := trainedForest(t, "magic", 6, 8)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", e.Variant())
	}
	e.SetKernel(KernelSIMD)
	for _, width := range []int{1, 2, 4, 8} {
		e.SetInterleave(width)
		b := NewBatcher(e, 2, 7)
		out := make([]int32, d.Len())
		b.Predict(d.Features, out) // warm up
		if avg := testing.AllocsPerRun(20, func() {
			b.Predict(d.Features, out)
		}); avg != 0 {
			t.Errorf("width=%d: simd Batcher.Predict allocates %.1f objects per batch, want 0", width, avg)
		}
		b.Close()
	}
}

// TestKernelForSIMDGate pins the three-kernel gate ladder: the SIMD
// gate outranks the fused gate on hosts with the native ISA and is
// inert everywhere else, and the zero/MaxInt conventions keep the
// kernel off.
func TestKernelForSIMDGate(t *testing.T) {
	native := simdKernelAvailable()
	simdOr := func(fallback Kernel) Kernel {
		if native {
			return KernelSIMD
		}
		return fallback
	}
	g := InterleaveGates{CompactFusedMin: 1000, CompactSIMDMin: 4000}
	for _, tc := range []struct {
		bytes int
		want  Kernel
	}{
		{0, KernelBranchy},
		{999, KernelBranchy},
		{1000, KernelFused},
		{3999, KernelFused},
		{4000, simdOr(KernelFused)},
		{1 << 30, simdOr(KernelFused)},
	} {
		if got := g.kernelFor(FlatCompact, tc.bytes); got != tc.want {
			t.Errorf("kernelFor(FlatCompact, %d) = %v, want %v", tc.bytes, got, tc.want)
		}
		if got := g.kernelFor(FlatFLInt, tc.bytes); got != KernelBranchy {
			t.Errorf("kernelFor(FlatFLInt, %d) = %v, want branchy", tc.bytes, got)
		}
	}
	// A SIMD gate below the fused gate still selects SIMD (the more
	// aggressive kernel wins the overlap)...
	g = InterleaveGates{CompactFusedMin: 4000, CompactSIMDMin: 1000}
	if got := g.kernelFor(FlatCompact, 2000); got != simdOr(KernelBranchy) {
		t.Errorf("kernelFor with inverted gates = %v, want %v", got, simdOr(KernelBranchy))
	}
	// ...and zero or MaxInt keep it off regardless of arena size.
	for _, min := range []int{0, math.MaxInt} {
		g := InterleaveGates{CompactFusedMin: math.MaxInt, CompactSIMDMin: min}
		if got := g.kernelFor(FlatCompact, 1<<30); got != KernelBranchy {
			t.Errorf("kernelFor with CompactSIMDMin=%d = %v, want branchy", min, got)
		}
	}
}

// TestSIMDGroupPartialLanes drives classifySIMDGroup at every group
// width k against the scalar fused classifier, pinning that inactive
// lanes neither contribute nor interfere.
func TestSIMDGroupPartialLanes(t *testing.T) {
	f, d := trainedForest(t, "wine", 6, 5)
	e, err := NewFlat(f, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != FlatCompact {
		t.Fatalf("fell back to %v", e.Variant())
	}
	nq := e.numPruned
	q := make([]uint16, 8*nq+2)
	for k := 1; k <= 8; k++ {
		rows := d.Features[:k]
		e.quantizeBlockSIMD(rows, q)
		var cls [8]int32
		for _, root := range e.roots {
			e.classifySIMDGroup(root, k, q, &cls)
			for i := 0; i < k; i++ {
				var lane [64]uint16
				qi := lane[:nq]
				e.quantizeBlockFused(rows[i:i+1], qi)
				if want := e.classifyCompactFused(qi, root); cls[i] != want {
					t.Fatalf("k=%d lane %d root %d: got class %d want %d", k, i, root, cls[i], want)
				}
			}
		}
	}
}
