package treeexec

import (
	"fmt"
	"runtime"
	"sync"

	"flint/internal/core"
)

// BatchPredictor is the subset of engine behaviour batch execution
// needs: a classification of one pre-encoded feature vector. The FLInt,
// XOR and soft-float engines implement it over reinterpreted int32
// vectors.
type BatchPredictor interface {
	PredictEncoded(xi []int32) int32
}

// Batch classifies many rows concurrently with up to workers goroutines
// (0 selects GOMAXPROCS). Feature vectors are reinterpreted once per row
// inside the worker, reusing a per-worker buffer, so the amortized cost
// matches the paper's pointer-cast semantics. The result slice is
// indexed like rows.
//
// Engines are immutable after construction, which is what makes this
// safe; the batch-oriented related work the paper cites (QuickScorer,
// Hummingbird) motivates offering a batched entry point alongside
// single-row Predict.
func Batch(e BatchPredictor, rows [][]float32, workers int) ([]int32, error) {
	if e == nil {
		return nil, fmt.Errorf("treeexec: nil engine")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rows) {
		workers = len(rows)
	}
	out := make([]int32, len(rows))
	if len(rows) == 0 {
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (len(rows) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var buf []int32
			for i := lo; i < hi; i++ {
				buf = core.EncodeFeatures32(buf, rows[i])
				out[i] = e.PredictEncoded(buf)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// BatchFloat is Batch for engines that consume float vectors directly
// (the naive baseline).
func BatchFloat(e *Float32Engine, rows [][]float32, workers int) ([]int32, error) {
	if e == nil {
		return nil, fmt.Errorf("treeexec: nil engine")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rows) {
		workers = len(rows)
	}
	out := make([]int32, len(rows))
	if len(rows) == 0 {
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (len(rows) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = e.Predict(rows[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}
