package treeexec

import (
	"fmt"
	"reflect"
	"sync"

	"flint/internal/core"
	"flint/internal/rf"
)

// isNilEngine reports whether an engine interface is nil or wraps a
// typed nil pointer. Every engine is a pointer type, so a typed nil
// would otherwise pass the plain interface nil check and panic inside a
// worker goroutine, where the caller cannot recover it.
func isNilEngine(e any) bool {
	if e == nil {
		return true
	}
	v := reflect.ValueOf(e)
	return v.Kind() == reflect.Ptr && v.IsNil()
}

// BatchPredictor is the subset of engine behaviour batch execution
// needs: a classification of one pre-encoded feature vector. The FLInt,
// XOR and soft-float engines implement it over reinterpreted int32
// vectors.
type BatchPredictor interface {
	PredictEncoded(xi []int32) int32
}

// rowWidthError is the single row-length validator every batch entry
// funnels through (wrapped as an error by Batch/BatchFloat, as a
// caller-goroutine panic by Batcher.Predict/PredictBatch): one loop to
// keep in sync for one invariant.
func rowWidthError(nf int, rows [][]float32) error {
	for i, r := range rows {
		if len(r) != nf {
			return fmt.Errorf("row %d has %d features, engine expects %d", i, len(r), nf)
		}
	}
	return nil
}

// checkRowWidths validates every row against the engine's feature width
// in the caller's goroutine, before any worker is spawned. A short row
// used to index out of range inside a worker goroutine, where no caller
// can recover the panic, killing the whole process. The width is probed
// from the engine (a NumFeatures method — every treeexec engine has one
// — or the *rf.Forest field); only a caller-supplied custom predictor
// exposing neither skips validation and keeps its own behavior.
func checkRowWidths(e any, rows [][]float32) error {
	nf := 0
	switch v := e.(type) {
	case interface{ NumFeatures() int }:
		nf = v.NumFeatures()
	case *rf.Forest:
		nf = v.NumFeatures
	}
	if nf <= 0 {
		return nil
	}
	if err := rowWidthError(nf, rows); err != nil {
		return fmt.Errorf("treeexec: %w", err)
	}
	return nil
}

// Batch classifies many rows concurrently with up to workers goroutines;
// zero or negative workers selects GOMAXPROCS, and the count is capped
// at the number of rows (the same clamping as FlatForestEngine.
// PredictBatch and NewBatcher). Feature vectors are reinterpreted once
// per row inside the worker, reusing a per-worker buffer, so the
// amortized cost matches the paper's pointer-cast semantics. The result
// slice is indexed like rows. Rows whose length does not match the
// engine's feature width (when the engine exposes one) are rejected
// with an error before any worker is spawned.
//
// Engines are immutable after construction, which is what makes this
// safe; the batch-oriented related work the paper cites (QuickScorer,
// Hummingbird) motivates offering a batched entry point alongside
// single-row Predict.
func Batch(e BatchPredictor, rows [][]float32, workers int) ([]int32, error) {
	if isNilEngine(e) {
		return nil, fmt.Errorf("treeexec: nil engine")
	}
	if err := checkRowWidths(e, rows); err != nil {
		return nil, err
	}
	// The arena engine has a blocked kernel that amortizes node fetches
	// across rows; route it there instead of the row-at-a-time loop.
	if fe, ok := e.(*FlatForestEngine); ok {
		return fe.PredictBatch(rows, nil, workers, 0), nil
	}
	out := make([]int32, len(rows))
	if len(rows) == 0 {
		return out, nil
	}
	workers = normWorkers(workers, len(rows))
	var wg sync.WaitGroup
	chunk := (len(rows) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var buf []int32
			for i := lo; i < hi; i++ {
				buf = core.EncodeFeatures32(buf, rows[i])
				out[i] = e.PredictEncoded(buf)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// BatchFloat is Batch for engines that consume float vectors directly
// (the naive baseline, or any rf.Predictor); workers is clamped exactly
// like Batch. Flat arena engines are routed onto the blocked kernel.
func BatchFloat(e rf.Predictor, rows [][]float32, workers int) ([]int32, error) {
	if isNilEngine(e) {
		return nil, fmt.Errorf("treeexec: nil engine")
	}
	if err := checkRowWidths(e, rows); err != nil {
		return nil, err
	}
	if fe, ok := e.(*FlatForestEngine); ok {
		return fe.PredictBatch(rows, nil, workers, 0), nil
	}
	out := make([]int32, len(rows))
	if len(rows) == 0 {
		return out, nil
	}
	workers = normWorkers(workers, len(rows))
	var wg sync.WaitGroup
	chunk := (len(rows) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = e.Predict(rows[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}
