package asmsim

import (
	"bytes"
	"math"
	"testing"

	"flint/internal/cart"
	"flint/internal/codegen"
	"flint/internal/dataset"
	"flint/internal/isa"
	"flint/internal/rf"
)

// buildProgram generates and parses ARMv8 assembly for a forest.
func buildProgram(t *testing.T, f *rf.Forest, variant codegen.Variant, flavor codegen.Flavor, cags bool) *isa.Program {
	t.Helper()
	var buf bytes.Buffer
	err := codegen.Forest(&buf, f, codegen.Options{
		Language: codegen.LangARMv8, Variant: variant, Flavor: flavor, CAGS: cags,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := isa.Parse(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func bitsOf(x []float32) []uint32 {
	out := make([]uint32, len(x))
	for i, v := range x {
		out[i] = math.Float32bits(v)
	}
	return out
}

func trainSim(t *testing.T, name string, depth, trees int) (*rf.Forest, *dataset.Dataset) {
	t.Helper()
	d, err := dataset.Generate(name, 300, 77)
	if err != nil {
		t.Fatal(err)
	}
	f, err := cart.TrainForest(d, cart.Config{NumTrees: trees, MaxDepth: depth, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	return f, d
}

// TestSimulatedPredictionsMatchReference is the semantic core: every
// variant/flavor/CAGS combination of the generated assembly, executed on
// the simulator, must reproduce the Go reference predictions on every
// machine profile.
func TestSimulatedPredictionsMatchReference(t *testing.T) {
	f, d := trainSim(t, "eye", 8, 3)
	machines := Machines()
	for _, variant := range []codegen.Variant{codegen.VariantFloat, codegen.VariantFLInt} {
		for _, flavor := range []codegen.Flavor{codegen.FlavorHand, codegen.FlavorCC} {
			for _, cags := range []bool{false, true} {
				prog := buildProgram(t, f, variant, flavor, cags)
				sim, err := New(prog, machines[0])
				if err != nil {
					t.Fatal(err)
				}
				for i, x := range d.Features {
					want := f.Predict(x)
					got, _, err := sim.RunForest("forest", len(f.Trees), f.NumClasses, bitsOf(x))
					if err != nil {
						t.Fatalf("%v/%v/cags=%v row %d: %v", variant, flavor, cags, i, err)
					}
					if got != want {
						t.Fatalf("%v/%v/cags=%v row %d: got %d want %d", variant, flavor, cags, i, got, want)
					}
				}
			}
		}
	}
	// Machine profiles must not change semantics, only cycles.
	prog := buildProgram(t, f, codegen.VariantFLInt, codegen.FlavorHand, false)
	for _, m := range machines {
		sim, err := New(prog, m)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range d.Features {
			got, _, err := sim.RunForest("forest", len(f.Trees), f.NumClasses, bitsOf(x))
			if err != nil {
				t.Fatal(err)
			}
			if got != f.Predict(x) {
				t.Fatalf("machine %s changes semantics at row %d", m.Name, i)
			}
		}
	}
}

// runWorkload executes the whole dataset and returns total cycles.
func runWorkload(t *testing.T, sim *Simulator, f *rf.Forest, d *dataset.Dataset) uint64 {
	t.Helper()
	var total uint64
	for _, x := range d.Features {
		_, cycles, err := sim.RunForest("forest", len(f.Trees), f.NumClasses, bitsOf(x))
		if err != nil {
			t.Fatal(err)
		}
		total += cycles
	}
	return total
}

// TestFLIntFasterThanFloat reproduces the central claim on every FPU
// machine profile: the FLInt variant needs fewer cycles than the
// compiled-style float variant.
func TestFLIntFasterThanFloat(t *testing.T) {
	f, d := trainSim(t, "magic", 10, 3)
	floatProg := buildProgram(t, f, codegen.VariantFloat, codegen.FlavorCC, false)
	flintProg := buildProgram(t, f, codegen.VariantFLInt, codegen.FlavorHand, false)
	for _, m := range Machines() {
		fs, err := New(floatProg, m)
		if err != nil {
			t.Fatal(err)
		}
		is, err := New(flintProg, m)
		if err != nil {
			t.Fatal(err)
		}
		floatCycles := runWorkload(t, fs, f, d)
		flintCycles := runWorkload(t, is, f, d)
		if flintCycles >= floatCycles {
			t.Errorf("%s: FLInt (%d cycles) not faster than float (%d cycles)",
				m.Name, flintCycles, floatCycles)
		}
		ratio := float64(flintCycles) / float64(floatCycles)
		t.Logf("%s: normalized FLInt time %.3f", m.Name, ratio)
		if m.Name == "embedded-nofpu" && ratio > 0.5 {
			t.Errorf("embedded-nofpu: expected dramatic soft-float win, got %.3f", ratio)
		}
	}
}

// TestCAGSReducesTakenBranches checks the swap mechanism: with CAGS the
// hot path is the fall-through, so fewer taken branches occur.
func TestCAGSReducesTakenBranches(t *testing.T) {
	f, d := trainSim(t, "gas", 10, 3)
	m, _ := MachineByName("x86-server")
	plain, err := New(buildProgram(t, f, codegen.VariantFLInt, codegen.FlavorHand, false), m)
	if err != nil {
		t.Fatal(err)
	}
	swapped, err := New(buildProgram(t, f, codegen.VariantFLInt, codegen.FlavorHand, true), m)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, plain, f, d)
	runWorkload(t, swapped, f, d)
	p, s := plain.Stats(), swapped.Stats()
	if p.Branches == 0 || s.Branches == 0 {
		t.Fatal("no branches executed")
	}
	plainRate := float64(p.Taken) / float64(p.Branches)
	swapRate := float64(s.Taken) / float64(s.Branches)
	if swapRate >= plainRate {
		t.Errorf("CAGS did not reduce taken-branch rate: %.3f -> %.3f", plainRate, swapRate)
	}
}

// TestCCFlavorTouchesDataCache checks the Figure 4 mechanism: the
// compiled-C flavor loads split constants from data memory, the hand
// flavor keeps them in the instruction stream.
func TestCCFlavorTouchesDataCache(t *testing.T) {
	f, d := trainSim(t, "magic", 8, 2)
	m, _ := MachineByName("x86-server")
	hand, err := New(buildProgram(t, f, codegen.VariantFLInt, codegen.FlavorHand, false), m)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := New(buildProgram(t, f, codegen.VariantFLInt, codegen.FlavorCC, false), m)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, hand, f, d)
	runWorkload(t, cc, f, d)
	if hand.Stats().Loads >= cc.Stats().Loads {
		t.Errorf("cc flavor should issue more loads: hand=%d cc=%d",
			hand.Stats().Loads, cc.Stats().Loads)
	}
}

// TestStatsAndReset exercises counter bookkeeping.
func TestStatsAndReset(t *testing.T) {
	f, d := trainSim(t, "wine", 4, 1)
	m, _ := MachineByName("x86-desktop")
	sim, err := New(buildProgram(t, f, codegen.VariantFLInt, codegen.FlavorHand, false), m)
	if err != nil {
		t.Fatal(err)
	}
	_, cycles, err := sim.RunForest("forest", 1, f.NumClasses, bitsOf(d.Features[0]))
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Error("zero cycles charged")
	}
	st := sim.Stats()
	if st.Instructions == 0 || st.Cycles != cycles {
		t.Errorf("stats inconsistent: %+v vs cycles %d", st, cycles)
	}
	sim.Reset()
	if sim.Stats() != (Stats{}) {
		t.Error("Reset did not clear stats")
	}
}

// TestColdVsWarmCaches: the first run after Reset pays compulsory cache
// misses; repeated runs on the same input must be cheaper.
func TestColdVsWarmCaches(t *testing.T) {
	f, d := trainSim(t, "gas", 8, 2)
	m, _ := MachineByName("embedded-nofpu") // small caches, big penalties
	sim, err := New(buildProgram(t, f, codegen.VariantFLInt, codegen.FlavorHand, false), m)
	if err != nil {
		t.Fatal(err)
	}
	x := bitsOf(d.Features[0])
	_, cold, err := sim.RunForest("forest", len(f.Trees), f.NumClasses, x)
	if err != nil {
		t.Fatal(err)
	}
	_, warm, err := sim.RunForest("forest", len(f.Trees), f.NumClasses, x)
	if err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Errorf("warm run (%d cycles) not cheaper than cold run (%d cycles)", warm, cold)
	}
}

func TestRunErrors(t *testing.T) {
	f, _ := trainSim(t, "wine", 3, 1)
	m, _ := MachineByName("x86-server")
	sim, err := New(buildProgram(t, f, codegen.VariantFLInt, codegen.FlavorHand, false), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.Run("missing_func", make([]uint32, f.NumFeatures)); err == nil {
		t.Error("unknown function accepted")
	}
	if _, _, err := sim.Run("forest_tree0", nil); err == nil {
		t.Error("empty feature memory accepted")
	}
	if _, err := New(&isa.Program{}, m); err == nil {
		t.Error("empty program accepted")
	}
	bad := m
	bad.BytesPerInstr = 0
	prog := buildProgram(t, f, codegen.VariantFLInt, codegen.FlavorHand, false)
	if _, err := New(prog, bad); err == nil {
		t.Error("BytesPerInstr=0 accepted")
	}
}

func TestNaNFeatureRejectedByFcmp(t *testing.T) {
	f, _ := trainSim(t, "wine", 3, 1)
	m, _ := MachineByName("x86-server")
	sim, err := New(buildProgram(t, f, codegen.VariantFloat, codegen.FlavorCC, false), m)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]uint32, f.NumFeatures)
	for i := range x {
		x[i] = 0x7FC00000 // NaN everywhere: the first fcmp must fail
	}
	if _, _, err := sim.Run("forest_tree0", x); err == nil {
		t.Error("NaN feature must be rejected by fcmp")
	}
}

func TestMachineProfiles(t *testing.T) {
	ms := Machines()
	if len(ms) != 5 {
		t.Fatalf("have %d machines, want 5", len(ms))
	}
	if len(TableI()) != 4 {
		t.Fatal("TableI must return 4 machines")
	}
	names := map[string]bool{}
	for _, m := range ms {
		if names[m.Name] {
			t.Errorf("duplicate machine name %s", m.Name)
		}
		names[m.Name] = true
		if m.Name != "embedded-nofpu" && !m.HasFPU {
			t.Errorf("%s should have an FPU", m.Name)
		}
	}
	if _, ok := MachineByName("x86-server"); !ok {
		t.Error("MachineByName(x86-server) failed")
	}
	if _, ok := MachineByName("pdp11"); ok {
		t.Error("MachineByName invented a machine")
	}
	if (CacheGeometry{}).Lines() != 0 {
		t.Error("zero geometry must have zero lines")
	}
}
