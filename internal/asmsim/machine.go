// Package asmsim executes the ARMv8-subset assembly produced by the
// flint code generator on a parameterized micro-architectural cost model.
//
// It is the reproduction's stand-in for the four physical evaluation
// machines of the paper's Table I (X86 server, X86 desktop, ARMv8
// server, ARMv8 desktop), which are not available in this environment.
// All machine profiles execute the same ARMv8-subset code; they differ in
// the cost parameters that drive the paper's observed effects —
// instruction latencies, floating point compare latency, cache geometry
// and miss penalties, and branch misprediction cost. A fifth profile
// models an FPU-less embedded device where every float comparison pays a
// software floating point trap, the paper's Section I motivation.
//
// The simulator is a cost model, not a cycle-accurate replica: it claims
// fidelity for the *mechanisms* the paper attributes its results to
// (instruction count, constant-materialization style, data vs instruction
// stream constants, branch fall-through locality), not for absolute
// cycle counts. DESIGN.md documents this substitution.
package asmsim

// Machine parameterizes the cost model.
type Machine struct {
	// Name identifies the profile in benchmark output.
	Name string
	// Description ties the profile to the Table I machine it stands for.
	Description string

	// IntOpCycles is the cost of simple integer/move ALU operations
	// (movz, movk, eor, mov, cmp).
	IntOpCycles uint64
	// LoadCycles is the L1-hit load-to-use latency (ldrsw, ldr).
	LoadCycles uint64
	// FPCompareCycles is the fcmp latency including the flag transfer
	// (the paper's "overheads to use the floating point unit").
	FPCompareCycles uint64
	// FPMoveCycles is the GP-to-FP register move latency (fmov).
	FPMoveCycles uint64
	// BranchCycles is the base cost of a branch instruction.
	BranchCycles uint64
	// TakenPenalty is the front-end fetch-redirect cost of a taken
	// branch even when correctly predicted; fall-through branches avoid
	// it, which is the mechanism behind CAGS branch swapping.
	TakenPenalty uint64
	// MispredictPenalty is added when the 2-bit predictor guesses wrong.
	MispredictPenalty uint64

	// HasFPU selects hardware float comparison. Without an FPU, every
	// fcmp/fmov is charged SoftFloatCycles, modeling a call into
	// compiler soft-float routines (package softfloat).
	HasFPU          bool
	SoftFloatCycles uint64

	// ICache and DCache describe direct-mapped first-level caches.
	ICache CacheGeometry
	DCache CacheGeometry
	// ICacheMissPenalty and DCacheMissPenalty are charged per miss.
	ICacheMissPenalty uint64
	DCacheMissPenalty uint64

	// BytesPerInstr positions instructions in the I-cache. ARMv8
	// instructions are 4 bytes.
	BytesPerInstr uint64
}

// CacheGeometry describes a direct-mapped cache.
type CacheGeometry struct {
	// SizeBytes is the total capacity. Zero disables the cache (every
	// access hits).
	SizeBytes uint64
	// LineBytes is the line size.
	LineBytes uint64
}

// Lines returns the number of lines.
func (g CacheGeometry) Lines() uint64 {
	if g.SizeBytes == 0 || g.LineBytes == 0 {
		return 0
	}
	return g.SizeBytes / g.LineBytes
}

// Machines returns the evaluation profiles standing in for the paper's
// Table I, in the paper's order, plus the FPU-less embedded profile.
// The parameters are public-datasheet-scale approximations; see the
// package comment for the fidelity claim.
func Machines() []Machine {
	return []Machine{
		{
			Name:        "x86-server",
			Description: "stands in for 2x AMD EPYC 7742 (Table I)",
			IntOpCycles: 1, LoadCycles: 4,
			FPCompareCycles: 5, FPMoveCycles: 3,
			BranchCycles: 1, TakenPenalty: 2, MispredictPenalty: 18,
			HasFPU:            true,
			ICache:            CacheGeometry{SizeBytes: 32 << 10, LineBytes: 64},
			DCache:            CacheGeometry{SizeBytes: 32 << 10, LineBytes: 64},
			ICacheMissPenalty: 14, DCacheMissPenalty: 14,
			BytesPerInstr: 4,
		},
		{
			Name:        "x86-desktop",
			Description: "stands in for Intel Core i7-10700 (Table I)",
			IntOpCycles: 1, LoadCycles: 5,
			FPCompareCycles: 4, FPMoveCycles: 2,
			BranchCycles: 1, TakenPenalty: 2, MispredictPenalty: 16,
			HasFPU:            true,
			ICache:            CacheGeometry{SizeBytes: 32 << 10, LineBytes: 64},
			DCache:            CacheGeometry{SizeBytes: 32 << 10, LineBytes: 64},
			ICacheMissPenalty: 12, DCacheMissPenalty: 12,
			BytesPerInstr: 4,
		},
		{
			Name:        "armv8-server",
			Description: "stands in for 2x Cavium ThunderX2 99xx (Table I)",
			IntOpCycles: 1, LoadCycles: 4,
			FPCompareCycles: 7, FPMoveCycles: 4,
			BranchCycles: 1, TakenPenalty: 3, MispredictPenalty: 11,
			HasFPU:            true,
			ICache:            CacheGeometry{SizeBytes: 32 << 10, LineBytes: 64},
			DCache:            CacheGeometry{SizeBytes: 32 << 10, LineBytes: 64},
			ICacheMissPenalty: 16, DCacheMissPenalty: 16,
			BytesPerInstr: 4,
		},
		{
			Name:        "armv8-desktop",
			Description: "stands in for Apple Mac Mini M1 (Table I)",
			IntOpCycles: 1, LoadCycles: 3,
			FPCompareCycles: 6, FPMoveCycles: 5,
			BranchCycles: 1, TakenPenalty: 1, MispredictPenalty: 13,
			HasFPU:            true,
			ICache:            CacheGeometry{SizeBytes: 192 << 10, LineBytes: 64},
			DCache:            CacheGeometry{SizeBytes: 128 << 10, LineBytes: 64},
			ICacheMissPenalty: 13, DCacheMissPenalty: 13,
			BytesPerInstr: 4,
		},
		{
			Name:        "embedded-nofpu",
			Description: "FPU-less microcontroller-class device (Section I motivation)",
			IntOpCycles: 1, LoadCycles: 2,
			FPCompareCycles: 1, FPMoveCycles: 1, // unused without FPU
			BranchCycles: 1, TakenPenalty: 2, MispredictPenalty: 3,
			HasFPU: false, SoftFloatCycles: 45,
			ICache:            CacheGeometry{SizeBytes: 8 << 10, LineBytes: 32},
			DCache:            CacheGeometry{SizeBytes: 4 << 10, LineBytes: 32},
			ICacheMissPenalty: 20, DCacheMissPenalty: 20,
			BytesPerInstr: 4,
		},
	}
}

// MachineByName returns the named profile.
func MachineByName(name string) (Machine, bool) {
	for _, m := range Machines() {
		if m.Name == name {
			return m, true
		}
	}
	return Machine{}, false
}

// TableI returns the four profiles corresponding to the paper's Table I
// (without the embedded profile).
func TableI() []Machine { return Machines()[:4] }
