package asmsim

import (
	"fmt"
	"math"

	"flint/internal/isa"
)

// Stats aggregates execution counters across Run calls.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Branches     uint64
	Taken        uint64
	Mispredicts  uint64
	ICacheMisses uint64
	DCacheMisses uint64
	FPCompares   uint64
	SoftFloatOps uint64
}

// Simulator executes a parsed program on a Machine's cost model. Cache
// and branch predictor state persists across Run calls (warm execution,
// like the paper's repeated-inference measurements) until Reset.
type Simulator struct {
	prog *isa.Program
	m    Machine

	// Direct-mapped cache tag arrays; -1 means invalid.
	itags []int64
	dtags []int64
	// 2-bit branch predictor counters indexed by instruction address.
	bpred map[int]uint8

	stats Stats

	// literalBase places literal pools in the data address space, above
	// the feature vector region.
	literalBase uint64
	// litAddrs assigns each distinct literal constant an address.
	litAddrs map[uint64]uint64
}

// comparison flags, abstracted from NZCV.
type flags int

const (
	flagLess flags = iota
	flagEqual
	flagGreater
)

// New creates a simulator for prog on machine m.
func New(prog *isa.Program, m Machine) (*Simulator, error) {
	if prog == nil || len(prog.Instrs) == 0 {
		return nil, fmt.Errorf("asmsim: empty program")
	}
	if m.BytesPerInstr == 0 {
		return nil, fmt.Errorf("asmsim: machine %q has BytesPerInstr = 0", m.Name)
	}
	s := &Simulator{
		prog:        prog,
		m:           m,
		bpred:       make(map[int]uint8),
		litAddrs:    make(map[uint64]uint64),
		literalBase: 1 << 20, // far above any feature vector
	}
	s.Reset()
	return s, nil
}

// Reset clears cache and predictor state.
func (s *Simulator) Reset() {
	mk := func(g CacheGeometry) []int64 {
		n := g.Lines()
		t := make([]int64, n)
		for i := range t {
			t[i] = -1
		}
		return t
	}
	s.itags = mk(s.m.ICache)
	s.dtags = mk(s.m.DCache)
	s.bpred = make(map[int]uint8)
	s.stats = Stats{}
}

// Stats returns the counters accumulated since the last Reset.
func (s *Simulator) Stats() Stats { return s.stats }

// access performs a direct-mapped cache lookup, updating tags, and
// reports whether it missed.
func access(tags []int64, g CacheGeometry, addr uint64) bool {
	if len(tags) == 0 {
		return false // cache disabled: always hit
	}
	line := addr / g.LineBytes
	idx := line % uint64(len(tags))
	if tags[idx] == int64(line) {
		return false
	}
	tags[idx] = int64(line)
	return true
}

// predict consults and updates the 2-bit saturating counter for the
// branch at address pc, returning the predicted direction before update.
func (s *Simulator) predict(pc int, taken bool) bool {
	c := s.bpred[pc] // initialized weakly not-taken (01)
	if _, ok := s.bpred[pc]; !ok {
		c = 1
	}
	predicted := c >= 2
	if taken && c < 3 {
		c++
	}
	if !taken && c > 0 {
		c--
	}
	s.bpred[pc] = c
	return predicted
}

// Run executes the named function with the given feature words (raw
// float32 bit patterns, the memory x0 points to) and returns the class in
// w0 along with the cycles charged for this call.
func (s *Simulator) Run(fn string, features []uint32) (int32, uint64, error) {
	entry, ok := s.prog.Funcs[fn]
	if !ok {
		return 0, 0, fmt.Errorf("asmsim: unknown function %q", fn)
	}
	var x [32]uint64 // general purpose registers
	var v [32]uint32 // FP registers (binary32 patterns)
	var fl flags
	start := s.stats.Cycles
	pc := entry

	for steps := 0; ; steps++ {
		if pc < 0 || pc >= len(s.prog.Instrs) {
			return 0, 0, fmt.Errorf("asmsim: pc %d out of range in %q", pc, fn)
		}
		if steps > 10_000_000 {
			return 0, 0, fmt.Errorf("asmsim: runaway execution in %q", fn)
		}
		in := &s.prog.Instrs[pc]
		s.stats.Instructions++
		if access(s.itags, s.m.ICache, uint64(pc)*s.m.BytesPerInstr) {
			s.stats.ICacheMisses++
			s.stats.Cycles += s.m.ICacheMissPenalty
		}

		switch in.Op {
		case isa.OpLdrFeature, isa.OpLdrFeatureF:
			off := in.Imm
			if off%4 != 0 || int(off/4) >= len(features) {
				return 0, 0, fmt.Errorf("asmsim: feature load at offset %d out of range (have %d features)", off, len(features))
			}
			word := features[off/4]
			s.stats.Loads++
			s.stats.Cycles += s.m.LoadCycles
			if access(s.dtags, s.m.DCache, off) {
				s.stats.DCacheMisses++
				s.stats.Cycles += s.m.DCacheMissPenalty
			}
			if in.Op == isa.OpLdrFeature {
				x[in.Rd] = uint64(int64(int32(word))) // ldrsw sign-extends
			} else {
				v[in.Rd] = word
				if !s.m.HasFPU {
					s.stats.SoftFloatOps++
					s.stats.Cycles += s.m.SoftFloatCycles / 8 // unpacking share
				}
			}
			pc++

		case isa.OpLdrLit, isa.OpLdrLitF:
			addr, ok := s.litAddrs[in.Imm]
			if !ok {
				addr = s.literalBase + uint64(len(s.litAddrs))*4
				s.litAddrs[in.Imm] = addr
			}
			s.stats.Loads++
			s.stats.Cycles += s.m.LoadCycles
			if access(s.dtags, s.m.DCache, addr) {
				s.stats.DCacheMisses++
				s.stats.Cycles += s.m.DCacheMissPenalty
			}
			if in.Op == isa.OpLdrLit {
				x[in.Rd] = in.Imm & 0xFFFF_FFFF
			} else {
				v[in.Rd] = uint32(in.Imm)
			}
			pc++

		case isa.OpMovz:
			x[in.Rd] = in.Imm & 0xFFFF
			s.stats.Cycles += s.m.IntOpCycles
			pc++

		case isa.OpMovk:
			x[in.Rd] = (x[in.Rd] & 0xFFFF) | (in.Imm&0xFFFF)<<16
			s.stats.Cycles += s.m.IntOpCycles
			pc++

		case isa.OpFmov:
			v[in.Rd] = uint32(x[in.Rn])
			if s.m.HasFPU {
				s.stats.Cycles += s.m.FPMoveCycles
			} else {
				s.stats.SoftFloatOps++
				s.stats.Cycles += s.m.SoftFloatCycles / 8
			}
			pc++

		case isa.OpEor:
			x[in.Rd] = x[in.Rn] ^ in.Imm
			s.stats.Cycles += s.m.IntOpCycles
			pc++

		case isa.OpCmp:
			a, b := int32(uint32(x[in.Rn])), int32(uint32(x[in.Rm]))
			switch {
			case a < b:
				fl = flagLess
			case a > b:
				fl = flagGreater
			default:
				fl = flagEqual
			}
			s.stats.Cycles += s.m.IntOpCycles
			pc++

		case isa.OpFcmp:
			a := math.Float32frombits(v[in.Rn])
			b := math.Float32frombits(v[in.Rm])
			if a != a || b != b {
				return 0, 0, fmt.Errorf("asmsim: NaN reached fcmp (outside FLInt domain)")
			}
			switch {
			case a < b:
				fl = flagLess
			case a > b:
				fl = flagGreater
			default:
				fl = flagEqual
			}
			s.stats.FPCompares++
			if s.m.HasFPU {
				s.stats.Cycles += s.m.FPCompareCycles
			} else {
				s.stats.SoftFloatOps++
				s.stats.Cycles += s.m.SoftFloatCycles
			}
			pc++

		case isa.OpBgt, isa.OpBle:
			taken := false
			if in.Op == isa.OpBgt {
				taken = fl == flagGreater
			} else {
				taken = fl != flagGreater
			}
			predicted := s.predict(pc, taken)
			s.stats.Branches++
			s.stats.Cycles += s.m.BranchCycles
			if predicted != taken {
				s.stats.Mispredicts++
				s.stats.Cycles += s.m.MispredictPenalty
			}
			if taken {
				s.stats.Taken++
				s.stats.Cycles += s.m.TakenPenalty
				pc = in.Target
			} else {
				pc++
			}

		case isa.OpMovImm:
			x[in.Rd] = in.Imm
			s.stats.Cycles += s.m.IntOpCycles
			pc++

		case isa.OpRet:
			s.stats.Cycles += s.m.BranchCycles
			return int32(uint32(x[0])), s.stats.Cycles - start, nil

		default:
			return 0, 0, fmt.Errorf("asmsim: unhandled op %v", in.Op)
		}
	}
}

// RunForest executes every function of the program (one per tree) on the
// feature vector and majority-votes the results, mirroring the C
// predict wrapper. Functions are executed in name-sorted entry order.
func (s *Simulator) RunForest(prefix string, numTrees, numClasses int, features []uint32) (int32, uint64, error) {
	votes := make([]int32, numClasses)
	var total uint64
	for t := 0; t < numTrees; t++ {
		cls, cycles, err := s.Run(fmt.Sprintf("%s_tree%d", prefix, t), features)
		if err != nil {
			return 0, 0, err
		}
		if cls < 0 || int(cls) >= numClasses {
			return 0, 0, fmt.Errorf("asmsim: tree %d returned class %d out of range", t, cls)
		}
		votes[cls]++
		total += cycles
	}
	best := int32(0)
	for c := int32(1); c < int32(numClasses); c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best, total, nil
}
