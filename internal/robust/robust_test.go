package robust

import (
	"math"
	"testing"

	"flint/internal/cart"
	"flint/internal/core"
	"flint/internal/dataset"
	"flint/internal/ieee754"
	"flint/internal/rf"
	"flint/internal/treeexec"
)

func trainedEngine(t *testing.T, name string, depth, trees int, v treeexec.FlatVariant) (*treeexec.FlatForestEngine, *rf.Forest, *dataset.Dataset) {
	t.Helper()
	d, err := dataset.Generate(name, 400, 21)
	if err != nil {
		t.Fatal(err)
	}
	f, err := cart.TrainForest(d, cart.Config{NumTrees: trees, MaxDepth: depth, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e, err := treeexec.NewFlat(f, v)
	if err != nil {
		t.Fatal(err)
	}
	return e, f, d
}

// splitSet collects every trained split value (post -0.0 rewrite) and
// its immediate total-order successor, keyed by feature — the only
// values a minimal attack is allowed to move a feature to.
func splitSet(f *rf.Forest) map[int32]map[uint32]bool {
	set := make(map[int32]map[uint32]bool)
	for _, tr := range f.Trees {
		for _, n := range tr.Nodes {
			if n.IsLeaf() {
				continue
			}
			if set[n.Feature] == nil {
				set[n.Feature] = make(map[uint32]bool)
			}
			k := core.PrecodeSplit32(n.Split)
			set[n.Feature][ieee754.FromTotalOrderKey32(k)] = true
			set[n.Feature][ieee754.FromTotalOrderKey32(k+1)] = true
		}
	}
	return set
}

// TestPerturbFlipsWithMinimalCrossings attacks trained forests on both
// arena layouts and pins the attack's two invariants: a success really
// flips the engine's prediction, and every feature it touched landed
// exactly on a trained threshold or that threshold's immediate float
// successor — nothing coarser counts as a minimal crossing.
func TestPerturbFlipsWithMinimalCrossings(t *testing.T) {
	for _, v := range []treeexec.FlatVariant{treeexec.FlatCompact, treeexec.FlatFLInt} {
		e, f, d := trainedEngine(t, "magic", 8, 9, v)
		rows := d.Features[:120]
		cfg := Config{Scale: featureSpread(e.NumFeatures(), rows)}
		allowed := splitSet(f)
		flips := 0
		for i, x := range rows {
			res := Perturb(e, x, cfg)
			if len(res.Row) != len(x) {
				t.Fatalf("row %d: perturbed width %d, want %d", i, len(res.Row), len(x))
			}
			y0, y := e.Predict(x), e.Predict(res.Row)
			if res.Flipped != (y != y0) {
				t.Fatalf("row %d: Flipped=%v but predictions %d vs %d", i, res.Flipped, y0, y)
			}
			changed := 0
			for j := range x {
				if res.Row[j] == x[j] {
					continue
				}
				changed++
				bits := math.Float32bits(res.Row[j])
				if !allowed[int32(j)][bits] {
					t.Fatalf("row %d feature %d: perturbed to %v (bits %#x), not a threshold or its successor",
						i, j, res.Row[j], bits)
				}
			}
			if res.Flipped {
				flips++
				if changed == 0 || res.Steps == 0 || res.Cost <= 0 {
					t.Fatalf("row %d: flip with no recorded perturbation: %+v", i, res)
				}
			}
			if changed > res.Steps {
				t.Fatalf("row %d: %d features changed by %d steps", i, changed, res.Steps)
			}
		}
		// CART splits sit inside the data distribution; a path-guided
		// attack should flip most rows of a 9-tree forest.
		if flips < len(rows)/4 {
			t.Errorf("%v: attack flipped only %d/%d rows", v, flips, len(rows))
		}
	}
}

// TestPerturbRespectsBudget pins the budget cap: every reported cost
// stays within it, and a zero-ish budget flips almost nothing that a
// generous one flips.
func TestPerturbRespectsBudget(t *testing.T) {
	e, _, d := trainedEngine(t, "sensorless", 8, 9, treeexec.FlatCompact)
	rows := d.Features[:100]
	scale := featureSpread(e.NumFeatures(), rows)
	const budget = 0.05
	tight, loose := 0, 0
	for _, x := range rows {
		res := Perturb(e, x, Config{Budget: budget, Scale: scale})
		if res.Cost > budget+1e-9 {
			t.Fatalf("cost %v exceeds budget %v", res.Cost, budget)
		}
		if res.Flipped {
			tight++
		}
		if Perturb(e, x, Config{Scale: scale}).Flipped {
			loose++
		}
	}
	if tight > loose {
		t.Fatalf("tight budget flipped %d rows, unbounded only %d", tight, loose)
	}
}

// TestAuditCurve pins the report shape: flip rate is monotone
// non-decreasing in budget, bounded by the any-cost flip fraction, and
// the unbounded tail of the ladder matches Flipped.
func TestAuditCurve(t *testing.T) {
	e, _, d := trainedEngine(t, "magic", 8, 9, treeexec.FlatCompact)
	rows := d.Features[:120]
	rep := Audit(e, rows, []float64{0.001, 0.05, 0.5, 1000}, Config{})
	if rep.Rows != len(rows) {
		t.Fatalf("report rows %d, want %d", rep.Rows, len(rows))
	}
	prev := -1.0
	for i, fr := range rep.FlipRate {
		if fr < prev {
			t.Fatalf("flip rate not monotone at budget %v: %v after %v", rep.Budgets[i], fr, prev)
		}
		if fr > float64(rep.Flipped)/float64(rep.Rows) {
			t.Fatalf("flip rate %v at budget %v exceeds total flip fraction", fr, rep.Budgets[i])
		}
		prev = fr
	}
	if got := rep.FlipRate[len(rep.FlipRate)-1]; got != float64(rep.Flipped)/float64(rep.Rows) {
		t.Fatalf("unbounded-budget flip rate %v does not match Flipped %d/%d", got, rep.Flipped, rep.Rows)
	}
	if rep.Flipped == 0 {
		t.Fatal("audit flipped nothing; the curve is vacuous")
	}
	if rep.MeanCost <= 0 || rep.MeanSteps <= 0 {
		t.Fatalf("degenerate means: %+v", rep)
	}
}

// TestAdversarialRowsServeBitConsistently generates the worst-case
// workload and pins the property the bench family depends on: rows
// sitting exactly on (or one float past) thresholds are classified
// identically by every kernel at every width — tie handling under
// attack is where a quantization or comparison bug would surface
// first.
func TestAdversarialRowsServeBitConsistently(t *testing.T) {
	e, f, d := trainedEngine(t, "magic", 8, 9, treeexec.FlatCompact)
	if e.Variant() != treeexec.FlatCompact {
		t.Fatalf("fell back to %v", e.Variant())
	}
	adv := AdversarialRows(e, d.Features[:96], Config{})
	if len(adv) != 96 {
		t.Fatalf("got %d adversarial rows, want 96", len(adv))
	}
	ref, err := treeexec.NewFlat(f, treeexec.FlatFLInt)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int32, len(adv))
	for i, x := range adv {
		want[i] = ref.Predict(x)
	}
	out := make([]int32, len(adv))
	for _, k := range []treeexec.Kernel{treeexec.KernelBranchy, treeexec.KernelFused, treeexec.KernelSIMDQuant, treeexec.KernelSIMD} {
		e.SetKernel(k)
		widths := []int{1, 2, 4, 8}
		if k == treeexec.KernelSIMD {
			// The dual-group streaming walk exists only under simd.
			widths = append(widths, 16)
		}
		for _, width := range widths {
			e.SetInterleave(width)
			e.PredictBatch(adv, out, 2, 16)
			for i := range adv {
				if out[i] != want[i] {
					t.Fatalf("kernel %v width %d: adversarial row %d got %d want %d", k, width, i, out[i], want[i])
				}
			}
		}
	}
}
