// Package robust audits a compiled forest's decision-boundary
// robustness by attacking it: walk a row's decision path (the
// treeexec.DecisionPath trace), find the thresholds the walk brushed
// closest against, and nudge features just past them until the
// forest's majority vote flips. The perturbations are minimal in the
// strongest sense the engine admits — a leftward crossing moves a
// value onto the threshold itself, a rightward crossing moves it to
// the threshold's immediate float successor in FLInt total order
// (ieee754.FromTotalOrderKey32 of key+1), the smallest representable
// value on the other side of the comparison.
//
// Two products come out: per-workload RobustnessReports (flip rate as
// a function of perturbation budget — how much of the served
// distribution sits within epsilon of a decision boundary), and
// adversarial row sets that serve as principled worst-case benchmark
// workloads: every row walks to the far side of some threshold it was
// nearest to, the traffic shape branch predictors and calibrated
// (width, kernel) modes handle worst.
//
// The greedy path-guided search follows the random-forest-attack
// construction: repeatedly flip the cheapest unvisited decision on the
// current path, re-trace, and stop at a prediction flip or when the
// budget or iteration cap is exhausted.
package robust

import (
	"math"
	"sort"

	"flint/internal/core"
	"flint/internal/ieee754"
	"flint/internal/treeexec"
)

// Config parameterizes the attack. The zero value selects the
// defaults.
type Config struct {
	// MaxIter caps the flip-retrace iterations per row (each iteration
	// perturbs one path node). Default 100.
	MaxIter int
	// Budget caps the total perturbation: the sum over features of
	// |adv - orig| / scale may not exceed it (candidate crossings that
	// would are skipped). <= 0 means unbounded — the attack reports the
	// cost it needed, and Report buckets rows by it afterwards.
	Budget float64
	// Scale normalizes per-feature perturbation cost (cost of moving
	// feature f by delta is |delta| / Scale[f]). Nil scales every
	// feature by 1; Audit fills it with the observed per-feature value
	// range of the audited rows, making budgets read as fractions of
	// the data's spread.
	Scale []float32
}

// DefaultMaxIter caps attack iterations per row.
const DefaultMaxIter = 100

// Result is the attack outcome for one row.
type Result struct {
	Row     []float32 // the perturbed row (a copy; equals the input when no step applied)
	Flipped bool      // the forest's prediction changed
	Cost    float64   // normalized L1 distance from the original row
	Steps   int       // path decisions perturbed
}

// Perturb attacks one row: it returns a minimally perturbed copy whose
// prediction differs from the original's when the search succeeds
// within the iteration and budget caps. The input row is not modified.
func Perturb(e *treeexec.FlatForestEngine, x []float32, cfg Config) Result {
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = DefaultMaxIter
	}
	scale := func(f int32) float64 {
		if cfg.Scale == nil || cfg.Scale[f] == 0 {
			return 1
		}
		return float64(cfg.Scale[f])
	}
	orig := x
	cur := append([]float32(nil), x...)
	y0 := e.Predict(cur)
	res := Result{Row: cur}
	visited := make(map[[2]int32]bool)
	var buf []treeexec.PathStep
	for iter := 0; iter < cfg.MaxIter; iter++ {
		var y int32
		buf, y = e.DecisionPath(cur, buf)
		if y != y0 {
			res.Flipped = true
			return res
		}
		// Pick the cheapest unvisited crossing on the current path.
		bestMove := math.Inf(1)
		bestCost := 0.0
		var bestFeat int32
		var bestVal float32
		var bestKey [2]int32
		found := false
		for _, s := range buf {
			k := [2]int32{int32(s.Tree), s.Node}
			if visited[k] {
				continue
			}
			target, ok := crossing(s)
			if !ok {
				continue
			}
			f := s.Feature
			move := math.Abs(float64(target)-float64(cur[f])) / scale(f)
			cost := res.Cost -
				math.Abs(float64(cur[f])-float64(orig[f]))/scale(f) +
				math.Abs(float64(target)-float64(orig[f]))/scale(f)
			if cfg.Budget > 0 && cost > cfg.Budget {
				continue
			}
			if move < bestMove {
				bestMove, bestCost, bestFeat, bestVal, bestKey, found = move, cost, f, target, k, true
			}
		}
		if !found {
			return res
		}
		visited[bestKey] = true
		cur[bestFeat] = bestVal
		res.Cost = bestCost
		res.Steps++
	}
	if y := e.Predict(cur); y != y0 {
		res.Flipped = true
	}
	return res
}

// crossing returns the nearest value on the other side of a path
// step's comparison: the threshold itself for a rightward walk (x <= t
// then holds, with equality), or the threshold's immediate total-order
// successor for a leftward walk (the smallest float with key(v) >
// key(t)). Thresholds whose successor is not finite (a split at
// +MaxFloat32) admit no finite crossing.
func crossing(s treeexec.PathStep) (float32, bool) {
	if s.Right {
		return s.Threshold, true
	}
	v := math.Float32frombits(ieee754.FromTotalOrderKey32(core.PrecodeSplit32(s.Threshold) + 1))
	if f64 := float64(v); math.IsInf(f64, 0) || math.IsNaN(f64) {
		return 0, false
	}
	return v, true
}

// Report is a robustness audit over a row set: how the attack's flip
// rate grows with the allowed perturbation budget. FlipRate[i] is the
// fraction of rows whose prediction the attack flipped at normalized
// cost <= Budgets[i]; Flipped counts flips at any cost.
type Report struct {
	Rows      int       `json:"rows"`
	Flipped   int       `json:"flipped"`
	Budgets   []float64 `json:"budgets"`
	FlipRate  []float64 `json:"flip_rate"`
	MeanCost  float64   `json:"mean_cost,omitempty"`  // mean cost over flipped rows
	MeanSteps float64   `json:"mean_steps,omitempty"` // mean perturbed decisions over flipped rows
}

// DefaultBudgets is the budget ladder Audit reports against when the
// caller supplies none: fractions of the per-feature data spread.
var DefaultBudgets = []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5}

// Audit attacks every row and reports the flip-rate curve over the
// budget ladder. When cfg.Scale is nil, costs are normalized by the
// observed per-feature value range of rows, so a budget of 0.1 reads
// as "perturbations totalling a tenth of the data's spread". The audit
// is embarrassingly parallel over rows but runs sequentially: it is an
// offline reporting pass, not a serving path.
func Audit(e *treeexec.FlatForestEngine, rows [][]float32, budgets []float64, cfg Config) Report {
	if budgets == nil {
		budgets = DefaultBudgets
	}
	if cfg.Scale == nil {
		cfg.Scale = featureSpread(e.NumFeatures(), rows)
	}
	r := Report{
		Rows:     len(rows),
		Budgets:  append([]float64(nil), budgets...),
		FlipRate: make([]float64, len(budgets)),
	}
	sort.Float64s(r.Budgets)
	var costs []float64
	for _, x := range rows {
		res := Perturb(e, x, cfg)
		if !res.Flipped {
			continue
		}
		r.Flipped++
		r.MeanCost += res.Cost
		r.MeanSteps += float64(res.Steps)
		costs = append(costs, res.Cost)
	}
	if r.Flipped > 0 {
		r.MeanCost /= float64(r.Flipped)
		r.MeanSteps /= float64(r.Flipped)
	}
	if r.Rows > 0 {
		sort.Float64s(costs)
		for i, b := range r.Budgets {
			r.FlipRate[i] = float64(sort.SearchFloat64s(costs, math.Nextafter(b, math.Inf(1)))) / float64(r.Rows)
		}
	}
	return r
}

// AdversarialRows attacks every row and returns the perturbed copies —
// flipped rows where the attack succeeded, best-effort boundary-hugging
// perturbations where it ran out of iterations. The result is a
// worst-case serving workload: each row sits exactly on (or one float
// past) thresholds its original walked nearest, the inputs on which
// tie-handling must be exact and branch history is least predictable.
func AdversarialRows(e *treeexec.FlatForestEngine, rows [][]float32, cfg Config) [][]float32 {
	if cfg.Scale == nil {
		cfg.Scale = featureSpread(e.NumFeatures(), rows)
	}
	out := make([][]float32, len(rows))
	for i, x := range rows {
		out[i] = Perturb(e, x, cfg).Row
	}
	return out
}

// featureSpread returns each feature's observed value range over rows
// (1 where a feature is constant, so normalization never divides by
// zero).
func featureSpread(features int, rows [][]float32) []float32 {
	spread := make([]float32, features)
	if len(rows) == 0 {
		for f := range spread {
			spread[f] = 1
		}
		return spread
	}
	lo := append([]float32(nil), rows[0]...)
	hi := append([]float32(nil), rows[0]...)
	for _, r := range rows[1:] {
		for f, v := range r {
			if v < lo[f] {
				lo[f] = v
			}
			if v > hi[f] {
				hi[f] = v
			}
		}
	}
	for f := range spread {
		spread[f] = hi[f] - lo[f]
		if spread[f] <= 0 || math.IsNaN(float64(spread[f])) || math.IsInf(float64(spread[f]), 0) {
			spread[f] = 1
		}
	}
	return spread
}
