// Package cags implements the cache-aware grouping and swapping
// optimization for decision trees (Chen et al., "Efficient realization of
// decision trees for real-time inference", TECS 2022 — reference [6] of
// the FLInt paper, building on Buschjäger et al.'s tree framing [5]).
//
// CAGS uses empirical branch probabilities collected during training
// (rf.Node.LeftFraction) in two ways:
//
//   - Swapping: the more probable branch of every node becomes the
//     fall-through of the generated if-else code, so the hot path runs
//     straight down. SwapPlan computes the per-node decision for the
//     code generators.
//   - Grouping: tree nodes are laid out in memory so the likely
//     root-to-leaf paths are contiguous and share cache lines.
//     ReorderTree permutes the node array into hot-path preorder, the
//     layout the interpreted engines and the simulator traverse.
//
// The package also provides ExpectedLinesTouched, the cache-line cost
// model that quantifies what grouping buys; the ablation benchmarks and
// the asmsim machine model both consume it.
package cags

import (
	"fmt"

	"flint/internal/rf"
)

// Config describes the memory geometry grouping optimizes for.
type Config struct {
	// CacheLineBytes is the line size of the targeted cache. Default 64.
	CacheLineBytes int
	// NodeBytes is the size of one flattened tree node. Default 16,
	// matching treeexec's 32-bit node layout.
	NodeBytes int
}

// DefaultConfig matches the treeexec node layout on common hardware.
var DefaultConfig = Config{CacheLineBytes: 64, NodeBytes: 16}

func (c Config) withDefaults() (Config, error) {
	if c.CacheLineBytes == 0 {
		c.CacheLineBytes = DefaultConfig.CacheLineBytes
	}
	if c.NodeBytes == 0 {
		c.NodeBytes = DefaultConfig.NodeBytes
	}
	if c.CacheLineBytes < c.NodeBytes || c.CacheLineBytes%c.NodeBytes != 0 {
		return c, fmt.Errorf("cags: cache line %dB must be a positive multiple of node size %dB",
			c.CacheLineBytes, c.NodeBytes)
	}
	return c, nil
}

// HotPathOrder returns the hot-path preorder permutation of the tree's
// node indices: position k of the result is the old index of the node
// that grouping places k-th, so every node is followed immediately by
// its more probable child. ReorderTree applies this permutation; the
// flat-arena compiler in treeexec honors any layout produced from it.
func HotPathOrder(t *rf.Tree) ([]int32, error) {
	if err := t.Validate(0, 0); err != nil {
		return nil, err
	}
	order := make([]int32, 0, len(t.Nodes))
	var visit func(i int32)
	visit = func(i int32) {
		order = append(order, i)
		n := &t.Nodes[i]
		if n.IsLeaf() {
			return
		}
		first, second := n.Left, n.Right
		if n.LeftFraction < 0.5 {
			first, second = second, first
		}
		visit(first)
		visit(second)
	}
	visit(0)
	return order, nil
}

// ReorderTree returns a semantically identical tree whose node array is
// permuted into hot-path preorder: every node is followed immediately by
// its more probable child, so the likely root-to-leaf path occupies
// consecutive nodes and therefore a minimal number of cache lines.
// Left/right child semantics are unchanged — only indices move.
func ReorderTree(t *rf.Tree) (*rf.Tree, error) {
	order, err := HotPathOrder(t)
	if err != nil {
		return nil, err
	}

	remap := make([]int32, len(t.Nodes)) // old index -> new index
	for newIdx, oldIdx := range order {
		remap[oldIdx] = int32(newIdx)
	}
	out := &rf.Tree{Nodes: make([]rf.Node, len(t.Nodes))}
	for newIdx, oldIdx := range order {
		n := t.Nodes[oldIdx]
		if !n.IsLeaf() {
			n.Left = remap[n.Left]
			n.Right = remap[n.Right]
		}
		out.Nodes[newIdx] = n
	}
	return out, nil
}

// ReorderForest applies ReorderTree to every tree of the forest.
func ReorderForest(f *rf.Forest) (*rf.Forest, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	out := &rf.Forest{
		NumFeatures: f.NumFeatures,
		NumClasses:  f.NumClasses,
		Trees:       make([]rf.Tree, len(f.Trees)),
	}
	for i := range f.Trees {
		t, err := ReorderTree(&f.Trees[i])
		if err != nil {
			return nil, fmt.Errorf("cags: tree %d: %w", i, err)
		}
		out.Trees[i] = *t
	}
	return out, nil
}

// SwapPlan returns, for every node of the tree, whether generated if-else
// code should emit the right subtree in the if-body (i.e. swap the
// branches and invert the condition) so the more probable branch is the
// fall-through. Leaves are always false.
func SwapPlan(t *rf.Tree) []bool {
	plan := make([]bool, len(t.Nodes))
	for i, n := range t.Nodes {
		if !n.IsLeaf() {
			plan[i] = n.LeftFraction < 0.5
		}
	}
	return plan
}

// ExpectedLinesTouched returns the expected number of distinct cache
// lines a single inference touches in the tree's node array, weighting
// every root-to-leaf path by its empirical probability. Nodes without
// collected statistics contribute a 0.5/0.5 split.
func ExpectedLinesTouched(t *rf.Tree, cfg Config) (float64, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return 0, err
	}
	if err := t.Validate(0, 0); err != nil {
		return 0, err
	}
	perLine := cfg.CacheLineBytes / cfg.NodeBytes
	var walk func(i int32, visited []int32, p float64) float64
	walk = func(i int32, visited []int32, p float64) float64 {
		line := i / int32(perLine)
		cost := 0.0
		seen := false
		for _, l := range visited {
			if l == line {
				seen = true
				break
			}
		}
		if !seen {
			cost = p
			visited = append(visited, line)
		}
		n := &t.Nodes[i]
		if n.IsLeaf() {
			return cost
		}
		pl := n.LeftFraction
		if pl == 0 { // unknown statistics
			pl = 0.5
		}
		return cost +
			walk(n.Left, visited, p*pl) +
			walk(n.Right, visited, p*(1-pl))
	}
	return walk(0, make([]int32, 0, 64), 1), nil
}

// ForestExpectedLinesTouched sums ExpectedLinesTouched over all trees:
// the expected per-inference line footprint of the whole ensemble.
func ForestExpectedLinesTouched(f *rf.Forest, cfg Config) (float64, error) {
	total := 0.0
	for i := range f.Trees {
		v, err := ExpectedLinesTouched(&f.Trees[i], cfg)
		if err != nil {
			return 0, fmt.Errorf("cags: tree %d: %w", i, err)
		}
		total += v
	}
	return total, nil
}
