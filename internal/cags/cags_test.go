package cags

import (
	"math"
	"testing"

	"flint/internal/cart"
	"flint/internal/dataset"
	"flint/internal/rf"
	"flint/internal/treeexec"
)

func trained(t *testing.T, name string, depth, trees int) (*rf.Forest, *dataset.Dataset) {
	t.Helper()
	d, err := dataset.Generate(name, 500, 31)
	if err != nil {
		t.Fatal(err)
	}
	f, err := cart.TrainForest(d, cart.Config{NumTrees: trees, MaxDepth: depth, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return f, d
}

func TestReorderPreservesSemantics(t *testing.T) {
	for _, name := range dataset.Names() {
		f, d := trained(t, name, 10, 3)
		g, err := ReorderForest(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: reordered forest invalid: %v", name, err)
		}
		for i, x := range d.Features {
			if f.Predict(x) != g.Predict(x) {
				t.Fatalf("%s: reordered forest diverges at row %d", name, i)
			}
		}
	}
}

func TestReorderPreservesSemanticsUnderAllEngines(t *testing.T) {
	f, d := trained(t, "magic", 8, 3)
	g, err := ReorderForest(f)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := treeexec.NewFloat32(g)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := treeexec.NewFLInt(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range d.Features {
		want := f.Predict(x)
		if fe.Predict(x) != want || fl.Predict(x) != want {
			t.Fatalf("engine on reordered forest diverges at row %d", i)
		}
	}
}

func TestReorderPlacesHotChildAdjacent(t *testing.T) {
	f, _ := trained(t, "gas", 8, 2)
	g, err := ReorderForest(f)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range g.Trees {
		for i, n := range g.Trees[ti].Nodes {
			if n.IsLeaf() {
				continue
			}
			hot := n.Left
			if n.LeftFraction < 0.5 {
				hot = n.Right
			}
			if hot != int32(i+1) {
				t.Fatalf("tree %d node %d: hot child at %d, want %d", ti, i, hot, i+1)
			}
		}
	}
}

func TestReorderKeepsNodeMultiset(t *testing.T) {
	f, _ := trained(t, "wine", 6, 2)
	g, err := ReorderForest(f)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range f.Trees {
		if len(f.Trees[ti].Nodes) != len(g.Trees[ti].Nodes) {
			t.Fatalf("tree %d changed size", ti)
		}
		count := func(tr rf.Tree) (leaves int, splitSum float64) {
			for _, n := range tr.Nodes {
				if n.IsLeaf() {
					leaves++
				} else {
					splitSum += float64(n.Split)
				}
			}
			return leaves, splitSum
		}
		l1, s1 := count(f.Trees[ti])
		l2, s2 := count(g.Trees[ti])
		if l1 != l2 || math.Abs(s1-s2) > 1e-6*math.Abs(s1) {
			t.Fatalf("tree %d node multiset changed", ti)
		}
	}
}

func TestExpectedLinesTouchedImproves(t *testing.T) {
	f, _ := trained(t, "gas", 12, 3)
	before, err := ForestExpectedLinesTouched(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ReorderForest(f)
	if err != nil {
		t.Fatal(err)
	}
	after, err := ForestExpectedLinesTouched(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if after > before+1e-9 {
		t.Errorf("grouping increased expected lines: %.3f -> %.3f", before, after)
	}
	if after >= before {
		t.Logf("warning: no strict improvement (%.3f -> %.3f)", before, after)
	}
}

func TestExpectedLinesTouchedSmallTree(t *testing.T) {
	// A 3-node tree fits one cache line entirely: expected lines = 1.
	tree := &rf.Tree{Nodes: []rf.Node{
		{Feature: 0, Split: 0, Left: 1, Right: 2, LeftFraction: 0.7},
		{Feature: rf.LeafFeature, Class: 0},
		{Feature: rf.LeafFeature, Class: 1},
	}}
	got, err := ExpectedLinesTouched(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("3-node tree expected lines = %v, want 1", got)
	}
	// With 16-byte lines every node is its own line: root + one child = 2.
	got, err = ExpectedLinesTouched(tree, Config{CacheLineBytes: 16, NodeBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("per-node lines = %v, want 2", got)
	}
}

func TestExpectedLinesUsesProbabilities(t *testing.T) {
	// Right-leaning chain: nodes 0-3 share cache line 0 (4 nodes per
	// 64-byte line), node 4 sits on line 1 and is only reached by taking
	// the cold (p=0.1) branch twice.
	tree := &rf.Tree{Nodes: []rf.Node{
		{Feature: 0, Split: 0, Left: 1, Right: 2, LeftFraction: 0.9}, // line 0
		{Feature: rf.LeafFeature, Class: 0},                          // line 0
		{Feature: 0, Split: 1, Left: 3, Right: 4, LeftFraction: 0.9}, // line 0
		{Feature: rf.LeafFeature, Class: 0},                          // line 0
		{Feature: rf.LeafFeature, Class: 1},                          // line 1
	}}
	got, err := ExpectedLinesTouched(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 0.1*0.1 // line 0 always; line 1 with p = 0.1 * 0.1
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("expected lines = %v, want %v", got, want)
	}
}

func TestSwapPlan(t *testing.T) {
	tree := &rf.Tree{Nodes: []rf.Node{
		{Feature: 0, Split: 0, Left: 1, Right: 2, LeftFraction: 0.3},
		{Feature: 1, Split: 0, Left: 3, Right: 4, LeftFraction: 0.8},
		{Feature: rf.LeafFeature, Class: 0},
		{Feature: rf.LeafFeature, Class: 1},
		{Feature: rf.LeafFeature, Class: 0},
	}}
	plan := SwapPlan(tree)
	if !plan[0] {
		t.Error("node 0 (left 30%) must swap")
	}
	if plan[1] {
		t.Error("node 1 (left 80%) must not swap")
	}
	if plan[2] || plan[3] || plan[4] {
		t.Error("leaves must not swap")
	}
}

func TestConfigValidation(t *testing.T) {
	tree := &rf.Tree{Nodes: []rf.Node{{Feature: rf.LeafFeature}}}
	if _, err := ExpectedLinesTouched(tree, Config{CacheLineBytes: 10, NodeBytes: 16}); err == nil {
		t.Error("line smaller than node accepted")
	}
	if _, err := ExpectedLinesTouched(tree, Config{CacheLineBytes: 40, NodeBytes: 16}); err == nil {
		t.Error("non-multiple line size accepted")
	}
	bad := &rf.Tree{}
	if _, err := ReorderTree(bad); err == nil {
		t.Error("empty tree accepted by ReorderTree")
	}
	badForest := &rf.Forest{NumFeatures: 1, NumClasses: 2, Trees: []rf.Tree{*bad}}
	if _, err := ReorderForest(badForest); err == nil {
		t.Error("invalid forest accepted by ReorderForest")
	}
	if _, err := ForestExpectedLinesTouched(badForest, Config{}); err == nil {
		t.Error("invalid forest accepted by ForestExpectedLinesTouched")
	}
}

func TestHotPathOrderIsPermutation(t *testing.T) {
	tree := &rf.Tree{Nodes: []rf.Node{
		{Feature: 0, Split: 1, Left: 1, Right: 2, LeftFraction: 0.2},
		{Feature: rf.LeafFeature, Class: 0},
		{Feature: 1, Split: 2, Left: 3, Right: 4, LeftFraction: 0.9},
		{Feature: rf.LeafFeature, Class: 1},
		{Feature: rf.LeafFeature, Class: 0},
	}}
	order, err := HotPathOrder(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(tree.Nodes) {
		t.Fatalf("order has %d entries, want %d", len(order), len(tree.Nodes))
	}
	seen := make([]bool, len(tree.Nodes))
	for _, idx := range order {
		if idx < 0 || int(idx) >= len(tree.Nodes) || seen[idx] {
			t.Fatalf("order %v is not a permutation", order)
		}
		seen[idx] = true
	}
	// Root first, then its more probable child (right, LeftFraction 0.2),
	// whose own more probable child is its left leaf.
	want := []int32{0, 2, 3, 4, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if _, err := HotPathOrder(&rf.Tree{}); err == nil {
		t.Error("empty tree accepted by HotPathOrder")
	}
}
