package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"flint/internal/ieee754"
)

func TestEncodeSplit32RejectsNaN(t *testing.T) {
	if _, err := EncodeSplit32(float32(math.NaN())); err == nil {
		t.Error("EncodeSplit32(NaN) must fail")
	}
	if _, err := EncodeSplit64(math.NaN()); err == nil {
		t.Error("EncodeSplit64(NaN) must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEncodeSplit32(NaN) must panic")
		}
	}()
	MustEncodeSplit32(float32(math.NaN()))
}

func TestMustEncodeSplit64PanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncodeSplit64(NaN) must panic")
		}
	}()
	MustEncodeSplit64(math.NaN())
}

func TestEncodeSplitNegZeroRewrite(t *testing.T) {
	negZero := float32(math.Copysign(0, -1))
	p := MustEncodeSplit32(negZero)
	if p.Key != 0 {
		t.Errorf("-0.0 split must be rewritten to +0.0, got key %#x", uint32(p.Key))
	}
	if math.Signbit(float64(p.Value())) {
		t.Error("Split32.Value() after rewrite must be +0.0")
	}
	p64 := MustEncodeSplit64(math.Copysign(0, -1))
	if p64.Key != 0 {
		t.Errorf("-0.0 split must be rewritten to +0.0, got key %#x", uint64(p64.Key))
	}
}

func TestSplitValueRoundTrip(t *testing.T) {
	for _, s := range specials32 {
		p := MustEncodeSplit32(s)
		got := p.Value()
		if s == 0 {
			if got != 0 || math.Signbit(float64(got)) {
				t.Errorf("Value() after encoding %v = %v", s, got)
			}
			continue
		}
		if got != s {
			t.Errorf("Value() round trip: %v -> %v", s, got)
		}
	}
}

// TestSplitLEMatchesIEEE is the central theorem for tree inference: after
// the -0.0 rewrite, the single-comparison predicate agrees with IEEE
// hardware `<=` for EVERY non-NaN feature value, -0.0 included.
func TestSplitLEMatchesIEEE32(t *testing.T) {
	for _, s := range specials32 {
		p := MustEncodeSplit32(s)
		for _, x := range specials32 {
			want := x <= s
			xb := ieee754.SI32(x)
			if got := p.LE(xb); got != want {
				t.Errorf("Split(%v).LE(%v) = %v, hardware says %v", s, x, got, want)
			}
			if got := p.GT(xb); got != !want {
				t.Errorf("Split(%v).GT(%v) = %v, hardware says %v", s, x, got, !want)
			}
			if got := p.LEPaper(xb); got != want {
				t.Errorf("Split(%v).LEPaper(%v) = %v, hardware says %v", s, x, got, want)
			}
			if got := p.LEXor(xb); got != want {
				t.Errorf("Split(%v).LEXor(%v) = %v, hardware says %v", s, x, got, want)
			}
		}
	}
}

func TestSplitLEMatchesIEEE64(t *testing.T) {
	for _, s := range specials64 {
		p := MustEncodeSplit64(s)
		for _, x := range specials64 {
			want := x <= s
			xb := ieee754.SI64(x)
			if got := p.LE(xb); got != want {
				t.Errorf("Split(%v).LE(%v) = %v, hardware says %v", s, x, got, want)
			}
			if got := p.GT(xb); got != !want {
				t.Errorf("Split(%v).GT(%v) = %v", s, x, got)
			}
			if got := p.LEPaper(xb); got != want {
				t.Errorf("Split(%v).LEPaper(%v) = %v", s, x, got)
			}
			if got := p.LEXor(xb); got != want {
				t.Errorf("Split(%v).LEXor(%v) = %v", s, x, got)
			}
		}
	}
}

func TestSplitLEQuick32(t *testing.T) {
	err := quick.Check(func(s, x float32) bool {
		if s != s || x != x {
			return true
		}
		p := MustEncodeSplit32(s)
		want := x <= s
		xb := ieee754.SI32(x)
		return p.LE(xb) == want && p.LEPaper(xb) == want && p.LEXor(xb) == want
	}, &quick.Config{MaxCount: 50000})
	if err != nil {
		t.Error(err)
	}
}

func TestSplitLEQuick64(t *testing.T) {
	err := quick.Check(func(s, x float64) bool {
		if s != s || x != x {
			return true
		}
		p := MustEncodeSplit64(s)
		want := x <= s
		xb := ieee754.SI64(x)
		return p.LE(xb) == want && p.LEPaper(xb) == want && p.LEXor(xb) == want
	}, &quick.Config{MaxCount: 50000})
	if err != nil {
		t.Error(err)
	}
}

// TestSplitLEAdjacentValues exercises the boundaries around each split:
// the predecessor, the split itself and the successor in float order must
// evaluate to true, true, false.
func TestSplitLEAdjacentValues(t *testing.T) {
	for _, s := range specials32 {
		if s != s || math.IsInf(float64(s), 0) {
			continue
		}
		p := MustEncodeSplit32(s)
		prev := math.Nextafter32(s, float32(math.Inf(-1)))
		next := math.Nextafter32(s, float32(math.Inf(1)))
		if !p.LE(ieee754.SI32(prev)) {
			t.Errorf("LE(pred(%v)) = false", s)
		}
		if !p.LE(ieee754.SI32(s)) {
			t.Errorf("LE(%v) = false", s)
		}
		if p.LE(ieee754.SI32(next)) {
			t.Errorf("LE(succ(%v)) = true", s)
		}
	}
}

func TestSplitNegative(t *testing.T) {
	if MustEncodeSplit32(1.5).Negative() || !MustEncodeSplit32(-1.5).Negative() {
		t.Error("Split32.Negative broken")
	}
	if MustEncodeSplit32(0).Negative() {
		t.Error("+0 split must not be negative")
	}
	if MustEncodeSplit32(float32(math.Copysign(0, -1))).Negative() {
		t.Error("-0 split must be rewritten and not negative")
	}
	if MustEncodeSplit64(1.5).Negative() || !MustEncodeSplit64(-1.5).Negative() {
		t.Error("Split64.Negative broken")
	}
}

// TestCHexPaperConstants checks the exact immediates printed in the
// paper's Listings 2 and 4.
func TestCHexPaperConstants(t *testing.T) {
	// The decimal literals in the listings are rounded displays; the hex
	// immediates are the ground truth, so build the splits from those.
	cases := []struct {
		bits   uint32 // split value as stored by training
		approx float32
		want   string
	}{
		{0x41213087, 10.074347, "0x41213087"},    // Listing 2, line 1
		{0x413f986e, 11.974715, "0x413f986e"},    // Listing 2, line 2
		{0x4622fa08, 10430.507324, "0x4622fa08"}, // Listing 2, line 3
		{0xC03BDDDE, -2.935417, "0x403bddde"},    // Listing 4: sign-flipped immediate
	}
	for _, c := range cases {
		v := math.Float32frombits(c.bits)
		if got := MustEncodeSplit32(v).CHex(); got != c.want {
			t.Errorf("CHex(%v) = %s, want %s", v, got, c.want)
		}
		if math.Abs(float64(v-c.approx)) > 1e-3 {
			t.Errorf("listing constant %#x decodes to %v, far from printed %v", c.bits, v, c.approx)
		}
	}
	got := MustEncodeSplit64(-2.5).CHex()
	if !strings.HasPrefix(got, "0x") || len(got) != 18 {
		t.Errorf("Split64.CHex() = %q, want 16 hex digits", got)
	}
	if MustEncodeSplit64(-2.5).CHex() != MustEncodeSplit64(2.5).CHex() {
		t.Error("Split64.CHex must strip the sign bit for negative splits")
	}
}

func TestEncodeFeatures32(t *testing.T) {
	src := []float32{1.5, -2.5, 0, float32(math.Inf(1))}
	got := EncodeFeatures32(nil, src)
	if len(got) != len(src) {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range src {
		if got[i] != ieee754.SI32(v) {
			t.Errorf("EncodeFeatures32[%d] = %#x", i, uint32(got[i]))
		}
	}
	// Reuse path must not allocate a new slice.
	buf := make([]int32, 0, 16)
	out := EncodeFeatures32(buf, src)
	if cap(out) != 16 {
		t.Error("EncodeFeatures32 must reuse provided capacity")
	}
}

func TestEncodeFeatures64(t *testing.T) {
	src := []float64{1.5, -2.5, 0}
	got := EncodeFeatures64(nil, src)
	for i, v := range src {
		if got[i] != ieee754.SI64(v) {
			t.Errorf("EncodeFeatures64[%d] = %#x", i, uint64(got[i]))
		}
	}
	buf := make([]int64, 1)
	out := EncodeFeatures64(buf, src)
	if len(out) != 3 {
		t.Error("EncodeFeatures64 must grow undersized buffers")
	}
}

// TestPrecodeAgainstLE verifies the key-space precoding extension against
// the canonical split predicate on random values.
func TestPrecodeAgainstLE(t *testing.T) {
	err := quick.Check(func(s, x float32) bool {
		if s != s || x != x {
			return true
		}
		key := PrecodeSplit32(s)
		feat := PrecodeFeatures32(nil, []float32{x})[0]
		return (feat <= key) == (x <= s)
	}, &quick.Config{MaxCount: 50000})
	if err != nil {
		t.Error(err)
	}
	for _, s := range specials32 {
		for _, x := range specials32 {
			key := PrecodeSplit32(s)
			feat := PrecodeFeatures32(nil, []float32{x})[0]
			if (feat <= key) != (x <= s) {
				t.Errorf("precode disagrees at s=%v x=%v", s, x)
			}
		}
	}
}

func TestPrecodeFeatures32Reuse(t *testing.T) {
	buf := make([]uint32, 0, 8)
	out := PrecodeFeatures32(buf, []float32{1, 2, 3})
	if cap(out) != 8 || len(out) != 3 {
		t.Error("PrecodeFeatures32 must reuse provided capacity")
	}
}
