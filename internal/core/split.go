package core

import (
	"fmt"
	"math"

	"flint/internal/ieee754"
)

// Split32 is a decision tree split value encoded for FLInt comparison at
// inference time. The encoding happens once, offline, exactly like the
// paper's code-generation step (Section IV-B): the split's sign is known
// at encoding time, a -0.0 split is rewritten to +0.0, and the stored key
// is the signed integer interpretation of the split's bit pattern.
//
// With the sign resolved offline, the predicate x <= s needs one integer
// comparison per evaluation:
//
//   - s >= +0.0: every negative x has SI(x) < 0 <= SI(s), and for
//     non-negative x Lemma 3 applies, so x <= s  <=>  SI(x) <= Key as
//     signed integers.
//   - s < 0: x <= s requires the sign bit of x to be set and |x| >= |s|,
//     which is exactly UI(x) >= UI(s) as unsigned integers — the sign bit
//     of the key makes UI(s) >= 2^31, so the unsigned comparison can only
//     succeed for x with the sign bit set.
//
// The two cases are distinguished by the sign of Key itself, so a Split32
// is a single int32 word.
type Split32 struct {
	// Key is SI(bits(s)) after the -0.0 rewrite. Key >= 0 iff s >= +0.0.
	Key int32
}

// Split64 is Split32 for binary64 split values.
type Split64 struct {
	// Key is SI(bits(s)) after the -0.0 rewrite.
	Key int64
}

// EncodeSplit32 encodes a float32 split value for FLInt evaluation. It
// returns an error for NaN, which cannot occur as a trained split value
// and is outside the operator's domain.
func EncodeSplit32(s float32) (Split32, error) {
	if s != s {
		return Split32{}, fmt.Errorf("core: cannot encode NaN split value")
	}
	if s == 0 {
		s = 0 // rewrite -0.0 to +0.0 (Section IV-B)
	}
	return Split32{Key: ieee754.SI32(s)}, nil
}

// MustEncodeSplit32 is EncodeSplit32 for split values already known to be
// valid; it panics on NaN.
func MustEncodeSplit32(s float32) Split32 {
	p, err := EncodeSplit32(s)
	if err != nil {
		panic(err)
	}
	return p
}

// EncodeSplit64 encodes a float64 split value for FLInt evaluation.
func EncodeSplit64(s float64) (Split64, error) {
	if s != s {
		return Split64{}, fmt.Errorf("core: cannot encode NaN split value")
	}
	if s == 0 {
		s = 0
	}
	return Split64{Key: ieee754.SI64(s)}, nil
}

// MustEncodeSplit64 is EncodeSplit64 panicking on NaN.
func MustEncodeSplit64(s float64) Split64 {
	p, err := EncodeSplit64(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Value returns the float32 split value the predicate was encoded from
// (with -0.0 already rewritten to +0.0).
func (p Split32) Value() float32 { return ieee754.FromSI32(p.Key) }

// Value returns the float64 split value the predicate was encoded from.
func (p Split64) Value() float64 { return ieee754.FromSI64(p.Key) }

// LE reports x <= s for the feature bit pattern x (the reinterpreted
// float32, Listing 2 of the paper), using a single integer comparison.
// Results agree with IEEE hardware comparison for every non-NaN x.
func (p Split32) LE(x int32) bool {
	if p.Key >= 0 {
		return x <= p.Key
	}
	return uint32(x) >= uint32(p.Key)
}

// LE reports x <= s for a binary64 feature bit pattern.
func (p Split64) LE(x int64) bool {
	if p.Key >= 0 {
		return x <= p.Key
	}
	return uint64(x) >= uint64(p.Key)
}

// GT reports x > s, the else-branch of an if-else tree node.
func (p Split32) GT(x int32) bool { return !p.LE(x) }

// GT reports x > s for a binary64 feature bit pattern.
func (p Split64) GT(x int64) bool { return !p.LE(x) }

// LEPaper evaluates x <= s in the literal shape of the paper's generated
// C code: Listing 2 for non-negative splits and Listing 4 (sign-bit flip
// via XOR, exchanged operands) for negative splits. It is semantically
// identical to LE and exists so tests and ablation benchmarks can compare
// the two instruction sequences.
func (p Split32) LEPaper(x int32) bool {
	if p.Key >= 0 {
		return x <= p.Key // Listing 2
	}
	return p.Key^signMask32 <= x^signMask32 // Listing 4
}

// LEPaper is Split32.LEPaper for binary64 patterns.
func (p Split64) LEPaper(x int64) bool {
	if p.Key >= 0 {
		return x <= p.Key
	}
	return p.Key^signMask64 <= x^signMask64
}

// LEXor evaluates x <= s with the general Theorem 1 operator, ignoring
// the offline sign knowledge. Provided for the compare-form ablation
// (DESIGN.md, A1).
func (p Split32) LEXor(x int32) bool { return GEBits32(p.Key, x) }

// LEXor is Split32.LEXor for binary64 patterns.
func (p Split64) LEXor(x int64) bool { return GEBits64(p.Key, x) }

// Negative reports whether the encoded split value is negative, i.e.
// whether code generation must emit the sign-flipped comparison
// (Listing 4 / the eor instruction in Listing 5).
func (p Split32) Negative() bool { return p.Key < 0 }

// Negative reports whether the encoded split value is negative.
func (p Split64) Negative() bool { return p.Key < 0 }

// CHex returns the split constant as the C hexadecimal immediate the
// paper's listings embed, e.g. "0x41213087" for 10.074347. For negative
// splits it returns the sign-flipped (positive) constant used by
// Listing 4.
func (p Split32) CHex() string {
	k := p.Key
	if k < 0 {
		k ^= signMask32
	}
	return fmt.Sprintf("0x%08x", uint32(k))
}

// CHex returns the 64-bit immediate in C hexadecimal form.
func (p Split64) CHex() string {
	k := p.Key
	if k < 0 {
		k ^= signMask64
	}
	return fmt.Sprintf("0x%016x", uint64(k))
}

// EncodeFeatures32 reinterprets a float32 feature vector as the int32
// slice the FLInt engines consume: the `(int*)(pX)` cast of Listing 2.
// The result is written into dst if it has sufficient capacity.
func EncodeFeatures32(dst []int32, src []float32) []int32 {
	if cap(dst) < len(src) {
		dst = make([]int32, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = ieee754.SI32(v)
	}
	return dst
}

// EncodeFeatures64 is EncodeFeatures32 for float64 feature vectors.
func EncodeFeatures64(dst []int64, src []float64) []int64 {
	if cap(dst) < len(src) {
		dst = make([]int64, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = ieee754.SI64(v)
	}
	return dst
}

// PrecodeFeatures32 maps a float32 feature vector into total-order key
// space once per inference, so that every subsequent node comparison is a
// single unsigned compare regardless of the split sign. This amortized
// transformation is the key-space precoding extension described in
// DESIGN.md (ablation A2); pair it with PrecodeSplit32 keys.
func PrecodeFeatures32(dst []uint32, src []float32) []uint32 {
	if cap(dst) < len(src) {
		dst = make([]uint32, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = ieee754.TotalOrderKey32(math.Float32bits(v))
	}
	return dst
}

// PrecodeSplit32 returns the total-order key of a split value for use
// against PrecodeFeatures32 output: x <= s  <=>  key(x) <= PrecodeSplit32(s).
// A -0.0 split is rewritten to +0.0 first.
func PrecodeSplit32(s float32) uint32 {
	if s == 0 {
		s = 0
	}
	return ieee754.TotalOrderKey32(math.Float32bits(s))
}
