// Package core implements FLInt, a full-precision floating point
// comparison computed with only two's-complement integer and logic
// operations (Hakert, Chen, Chen: "FLInt: Exploiting Floating Point
// Enabled Integer Arithmetic for Efficient Random Forest Inference",
// DATE 2024).
//
// The package offers three families of operations:
//
//   - General comparisons on raw IEEE 754 bit patterns reinterpreted as
//     signed integers: the Theorem 1 XOR form (GEBits32 and friends), the
//     Theorem 2 swap form (GEBits32Swap), and a branchless total-order
//     form (GEBits32TotalOrder). All three are exact for every non-NaN
//     pattern, including denormals, ±Inf and ±0.
//   - Float-typed convenience wrappers (GE32, LE64, Compare32, ...).
//   - Offline split encoding for decision trees (EncodeSplit32/64): the
//     split constant's sign is resolved at encoding time, as the paper's
//     Section IV does during code generation, so each inference-time
//     comparison is a single integer compare.
//
// # Semantics and domain
//
// FLInt orders -0.0 below +0.0 (Section III-A of the paper), whereas IEEE
// 754 defines -0.0 == +0.0. The general bit-pattern operations therefore
// diverge from hardware float comparison exactly when -0.0 is compared
// against +0.0, and nowhere else. Split encoding rewrites a -0.0 split
// value to +0.0 (Section IV-B), after which the split predicates agree
// with IEEE semantics for every non-NaN input, -0.0 features included.
//
// NaN is outside the operator's domain: random forest inference never
// produces or consumes NaN (Section III). When handed NaN bit patterns
// the operations return values consistent with the total order of the bit
// patterns, which differs from IEEE's unordered semantics. Callers that
// cannot rule out NaN must reject it first (see ValidFeature32/64).
package core

import "flint/internal/ieee754"

// Sign masks for the two supported widths: the weight of the most
// significant bit in Definition 2 of the paper.
const (
	signMask32 = int32(-1) << 31
	signMask64 = int64(-1) << 63
)

// GEBits32 reports FP(x) >= FP(y) for binary32 bit patterns x and y,
// using only signed integer and logic operations. This is Theorem 1 of
// the paper: (SI(x) >= SI(y)) XOR (SI(x) < 0 AND SI(y) < 0 AND
// SI(x) != SI(y)).
func GEBits32(x, y int32) bool {
	u := x >= y
	v := x < 0 && y < 0 && x != y
	return u != v // XOR
}

// GEBits64 is GEBits32 for binary64 bit patterns.
func GEBits64(x, y int64) bool {
	u := x >= y
	v := x < 0 && y < 0 && x != y
	return u != v
}

// GEBits32Swap reports FP(x) >= FP(y) using the Theorem 2 form: when x is
// negative, both operands are multiplied by -1 (a sign-bit flip) and
// exchanged, so that the remaining comparison always has at least one
// non-negative operand and Corollary 1's second case applies.
func GEBits32Swap(x, y int32) bool {
	if x < 0 {
		return y^signMask32 >= x^signMask32
	}
	return x >= y
}

// GEBits64Swap is GEBits32Swap for binary64 bit patterns.
func GEBits64Swap(x, y int64) bool {
	if x < 0 {
		return y^signMask64 >= x^signMask64
	}
	return x >= y
}

// GEBits32TotalOrder reports FP(x) >= FP(y) by mapping both patterns into
// a branchlessly computed totally-ordered unsigned key space. The paper
// avoids this per-comparison transformation by resolving signs offline;
// the form is provided for the engine-form ablation (DESIGN.md, A2).
func GEBits32TotalOrder(x, y int32) bool {
	return ieee754.TotalOrderKey32(uint32(x)) >= ieee754.TotalOrderKey32(uint32(y))
}

// GEBits64TotalOrder is GEBits32TotalOrder for binary64 bit patterns.
func GEBits64TotalOrder(x, y int64) bool {
	return ieee754.TotalOrderKey64(uint64(x)) >= ieee754.TotalOrderKey64(uint64(y))
}

// GTBits32 reports FP(x) > FP(y); the strict relation is the negation of
// GEBits32 with exchanged operands (Section IV-A).
func GTBits32(x, y int32) bool { return !GEBits32(y, x) }

// GTBits64 is GTBits32 for binary64 bit patterns.
func GTBits64(x, y int64) bool { return !GEBits64(y, x) }

// LEBits32 reports FP(x) <= FP(y).
func LEBits32(x, y int32) bool { return GEBits32(y, x) }

// LEBits64 is LEBits32 for binary64 bit patterns.
func LEBits64(x, y int64) bool { return GEBits64(y, x) }

// LTBits32 reports FP(x) < FP(y).
func LTBits32(x, y int32) bool { return !GEBits32(x, y) }

// LTBits64 is LTBits32 for binary64 bit patterns.
func LTBits64(x, y int64) bool { return !GEBits64(x, y) }

// CompareBits32 returns -1, 0 or +1 ordering FP(x) against FP(y) in the
// paper's total order (-0 < +0), computed with integer operations only.
func CompareBits32(x, y int32) int {
	if x == y {
		return 0
	}
	if GEBits32(x, y) {
		return 1
	}
	return -1
}

// CompareBits64 is CompareBits32 for binary64 bit patterns.
func CompareBits64(x, y int64) int {
	if x == y {
		return 0
	}
	if GEBits64(x, y) {
		return 1
	}
	return -1
}

// GE32 reports x >= y computed with integer operations on the operands'
// bit patterns. Results match hardware float comparison for all non-NaN
// operands except the pair (-0.0, +0.0); see the package comment.
func GE32(x, y float32) bool { return GEBits32(ieee754.SI32(x), ieee754.SI32(y)) }

// GE64 is GE32 for float64.
func GE64(x, y float64) bool { return GEBits64(ieee754.SI64(x), ieee754.SI64(y)) }

// GT32 reports x > y via integer operations.
func GT32(x, y float32) bool { return GTBits32(ieee754.SI32(x), ieee754.SI32(y)) }

// GT64 is GT32 for float64.
func GT64(x, y float64) bool { return GTBits64(ieee754.SI64(x), ieee754.SI64(y)) }

// LE32 reports x <= y via integer operations.
func LE32(x, y float32) bool { return LEBits32(ieee754.SI32(x), ieee754.SI32(y)) }

// LE64 is LE32 for float64.
func LE64(x, y float64) bool { return LEBits64(ieee754.SI64(x), ieee754.SI64(y)) }

// LT32 reports x < y via integer operations.
func LT32(x, y float32) bool { return LTBits32(ieee754.SI32(x), ieee754.SI32(y)) }

// LT64 is LT32 for float64.
func LT64(x, y float64) bool { return LTBits64(ieee754.SI64(x), ieee754.SI64(y)) }

// Compare32 orders x against y (-1, 0, +1) in the paper's total order.
func Compare32(x, y float32) int { return CompareBits32(ieee754.SI32(x), ieee754.SI32(y)) }

// Compare64 is Compare32 for float64.
func Compare64(x, y float64) int { return CompareBits64(ieee754.SI64(x), ieee754.SI64(y)) }

// ValidFeature32 reports whether x is inside the FLInt domain, i.e. not
// NaN. Infinities and denormals are in the domain.
func ValidFeature32(x float32) bool { return x == x }

// ValidFeature64 is ValidFeature32 for float64.
func ValidFeature64(x float64) bool { return x == x }
