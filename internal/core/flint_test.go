package core

import (
	"math"
	"testing"
	"testing/quick"

	"flint/internal/ieee754"
)

// specials32 covers every class and boundary of binary32, including the
// constants from the paper's Listings 2 and 4.
var specials32 = []float32{
	0, float32(math.Copysign(0, -1)),
	1, -1, 0.5, -0.5, 1.5, -1.5, 2, -2,
	math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
	math.MaxFloat32, -math.MaxFloat32,
	float32(math.Inf(1)), float32(math.Inf(-1)),
	1.1754942e-38, -1.1754942e-38, // largest denormals
	1.1754944e-38, -1.1754944e-38, // smallest normals
	10.074347, 11.974715, 10430.507324, -2.935417, // paper listings
	3.1415926, -3.1415926, 1e-20, -1e-20, 1e20, -1e20,
}

var specials64 = []float64{
	0, math.Copysign(0, -1),
	1, -1, 0.5, -0.5, math.Pi, -math.Pi,
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.MaxFloat64, -math.MaxFloat64,
	math.Inf(1), math.Inf(-1),
	2.2250738585072009e-308, -2.2250738585072009e-308, // largest denormals
	2.2250738585072014e-308, -2.2250738585072014e-308, // smallest normals
	10.074347, -2.935417, 1e-300, -1e-300, 1e300, -1e300,
}

// isNegZeroPosZeroPair reports whether {x,y} = {-0.0,+0.0}, the only
// non-NaN pair where FLInt's total order diverges from IEEE.
func isNegZeroPosZeroPair32(x, y float32) bool {
	return x == 0 && y == 0 && math.Signbit(float64(x)) != math.Signbit(float64(y))
}

func isNegZeroPosZeroPair64(x, y float64) bool {
	return x == 0 && y == 0 && math.Signbit(x) != math.Signbit(y)
}

func TestGE32AgainstHardware(t *testing.T) {
	for _, x := range specials32 {
		for _, y := range specials32 {
			got := GE32(x, y)
			if isNegZeroPosZeroPair32(x, y) {
				// Paper semantics: -0 < +0.
				want := !math.Signbit(float64(x))
				if got != want {
					t.Errorf("GE32(%v,%v) = %v under paper zero semantics", x, y, got)
				}
				continue
			}
			if want := x >= y; got != want {
				t.Errorf("GE32(%v,%v) = %v, hardware says %v", x, y, got, want)
			}
		}
	}
}

func TestGE64AgainstHardware(t *testing.T) {
	for _, x := range specials64 {
		for _, y := range specials64 {
			got := GE64(x, y)
			if isNegZeroPosZeroPair64(x, y) {
				want := !math.Signbit(x)
				if got != want {
					t.Errorf("GE64(%v,%v) = %v under paper zero semantics", x, y, got)
				}
				continue
			}
			if want := x >= y; got != want {
				t.Errorf("GE64(%v,%v) = %v, hardware says %v", x, y, got, want)
			}
		}
	}
}

func TestGEQuick32(t *testing.T) {
	err := quick.Check(func(x, y float32) bool {
		if x != x || y != y || isNegZeroPosZeroPair32(x, y) {
			return true
		}
		return GE32(x, y) == (x >= y)
	}, &quick.Config{MaxCount: 20000})
	if err != nil {
		t.Error(err)
	}
}

func TestGEQuick64(t *testing.T) {
	err := quick.Check(func(x, y float64) bool {
		if x != x || y != y || isNegZeroPosZeroPair64(x, y) {
			return true
		}
		return GE64(x, y) == (x >= y)
	}, &quick.Config{MaxCount: 20000})
	if err != nil {
		t.Error(err)
	}
}

// TestGEAgainstExactInterpretation checks Theorem 1 against the exact
// big.Float interpretation with the paper's -0 < +0 semantics, over raw
// bit patterns (not just round-trippable floats).
func TestGEAgainstExactInterpretation(t *testing.T) {
	f := ieee754.Binary32
	patterns := []uint32{
		0x0000_0000, 0x8000_0000, 0x0000_0001, 0x8000_0001,
		0x007F_FFFF, 0x807F_FFFF, 0x0080_0000, 0x8080_0000,
		0x3F80_0000, 0xBF80_0000, 0x7F7F_FFFF, 0xFF7F_FFFF,
		0x7F80_0000, 0xFF80_0000, 0x4121_3087, 0xC03B_DDDE,
		0x1234_5678, 0x9234_5678, 0x7000_0001, 0xF000_0001,
	}
	for _, x := range patterns {
		for _, y := range patterns {
			want := f.CompareFP(uint64(x), uint64(y)) >= 0
			if got := GEBits32(int32(x), int32(y)); got != want {
				t.Errorf("GEBits32(%#x,%#x) = %v, exact interpretation says %v", x, y, got, want)
			}
		}
	}
}

// TestFormsAgree verifies the Theorem 1 XOR form, the Theorem 2 swap form
// and the total-order form are equivalent on all non-NaN patterns
// (ablation A1's correctness precondition).
func TestFormsAgree32(t *testing.T) {
	check := func(x, y int32) bool {
		if ieee754.Binary32.IsNaN(uint64(uint32(x))) || ieee754.Binary32.IsNaN(uint64(uint32(y))) {
			return true
		}
		a := GEBits32(x, y)
		return a == GEBits32Swap(x, y) && a == GEBits32TotalOrder(x, y)
	}
	for _, x := range specials32 {
		for _, y := range specials32 {
			if !check(ieee754.SI32(x), ieee754.SI32(y)) {
				t.Errorf("forms disagree at (%v,%v)", x, y)
			}
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestFormsAgree64(t *testing.T) {
	check := func(x, y int64) bool {
		if ieee754.Binary64.IsNaN(uint64(x)) || ieee754.Binary64.IsNaN(uint64(y)) {
			return true
		}
		a := GEBits64(x, y)
		return a == GEBits64Swap(x, y) && a == GEBits64TotalOrder(x, y)
	}
	for _, x := range specials64 {
		for _, y := range specials64 {
			if !check(ieee754.SI64(x), ieee754.SI64(y)) {
				t.Errorf("forms disagree at (%v,%v)", x, y)
			}
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestDerivedRelations32(t *testing.T) {
	for _, x := range specials32 {
		for _, y := range specials32 {
			if x != x || y != y || isNegZeroPosZeroPair32(x, y) {
				continue
			}
			if GT32(x, y) != (x > y) {
				t.Errorf("GT32(%v,%v) != hardware", x, y)
			}
			if LE32(x, y) != (x <= y) {
				t.Errorf("LE32(%v,%v) != hardware", x, y)
			}
			if LT32(x, y) != (x < y) {
				t.Errorf("LT32(%v,%v) != hardware", x, y)
			}
		}
	}
}

func TestDerivedRelations64(t *testing.T) {
	for _, x := range specials64 {
		for _, y := range specials64 {
			if x != x || y != y || isNegZeroPosZeroPair64(x, y) {
				continue
			}
			if GT64(x, y) != (x > y) {
				t.Errorf("GT64(%v,%v) != hardware", x, y)
			}
			if LE64(x, y) != (x <= y) {
				t.Errorf("LE64(%v,%v) != hardware", x, y)
			}
			if LT64(x, y) != (x < y) {
				t.Errorf("LT64(%v,%v) != hardware", x, y)
			}
		}
	}
}

func TestCompare(t *testing.T) {
	if Compare32(1, 2) != -1 || Compare32(2, 1) != 1 || Compare32(2, 2) != 0 {
		t.Error("Compare32 ordering broken")
	}
	if Compare64(-1, -2) != 1 || Compare64(-2, -1) != -1 || Compare64(-2, -2) != 0 {
		t.Error("Compare64 ordering broken")
	}
	// Paper zero semantics: -0 < +0.
	negZero := float32(math.Copysign(0, -1))
	if Compare32(negZero, 0) != -1 || Compare32(0, negZero) != 1 {
		t.Error("Compare32 zero semantics broken")
	}
	if CompareBits32(ieee754.SI32(5), ieee754.SI32(5)) != 0 {
		t.Error("CompareBits32 equality broken")
	}
	if CompareBits64(ieee754.SI64(5), ieee754.SI64(5)) != 0 {
		t.Error("CompareBits64 equality broken")
	}
}

// TestNaNDivergenceDocumented pins down the out-of-domain behaviour the
// package comment documents: for NaN inputs FLInt follows the bit-pattern
// order rather than IEEE's all-comparisons-false rule.
func TestNaNDivergenceDocumented(t *testing.T) {
	nan := float32(math.NaN())
	if !ValidFeature32(1.5) || ValidFeature32(nan) {
		t.Error("ValidFeature32 broken")
	}
	if !ValidFeature64(1.5) || ValidFeature64(math.NaN()) {
		t.Error("ValidFeature64 broken")
	}
	// IEEE: any comparison with NaN is false. FLInt: positive-pattern NaN
	// has a huge SI, so GE32(NaN, x) is true for finite x — a divergence,
	// confined to NaN.
	if nan >= 1 {
		t.Fatal("hardware NaN comparison should be false")
	}
	if !GE32(nan, 1) {
		t.Error("expected documented divergence: GE32(+NaN, 1) under bit order is true")
	}
}

func TestValidFeatureInfinity(t *testing.T) {
	// Infinities are in-domain (Section III-A) and order as extremes.
	inf := float32(math.Inf(1))
	if !ValidFeature32(inf) || !ValidFeature32(-inf) {
		t.Error("infinities must be in the FLInt domain")
	}
	if !GE32(inf, math.MaxFloat32) || GE32(-inf, -math.MaxFloat32) {
		t.Error("infinity ordering broken")
	}
}
