// Package dataset provides the evaluation workloads for the FLInt
// reproduction: deterministic synthetic stand-ins for the five UCI
// datasets of the paper's Section V-A (EEG Eye State, Gas Sensor Array
// Drift, MAGIC Gamma Telescope, Sensorless Drive Diagnosis, Wine
// Quality), plus CSV input/output and train/test splitting.
//
// The UCI archives cannot be redistributed or downloaded in this offline
// build, so each generator synthesizes data with the same feature count,
// class count, nominal size and the qualitative feature character of its
// namesake (correlated EEG channels, drifting gas sensor responses,
// long-tailed shower parameters, harmonic drive currents, ordinal wine
// physicochemistry). What the paper's experiments measure — tree
// traversal cost as a function of tree shape — depends on exactly these
// properties, not on the original bytes; see DESIGN.md for the
// substitution argument.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is an in-memory classification dataset with float32 features,
// the datatype whose comparison cost the paper studies.
type Dataset struct {
	// Name identifies the workload, e.g. "magic".
	Name string
	// Features holds one row per sample.
	Features [][]float32
	// Labels holds the class of each row, in [0, NumClasses).
	Labels []int32
	// NumClasses is the number of distinct classes.
	NumClasses int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Features) }

// NumFeatures returns the dimensionality of the feature vectors.
func (d *Dataset) NumFeatures() int {
	if len(d.Features) == 0 {
		return 0
	}
	return len(d.Features[0])
}

// Validate checks shape invariants: consistent row widths, matching label
// count, labels in range and no NaN features (NaN is outside the FLInt
// domain; see package core).
func (d *Dataset) Validate() error {
	if len(d.Features) != len(d.Labels) {
		return fmt.Errorf("dataset %s: %d rows but %d labels", d.Name, len(d.Features), len(d.Labels))
	}
	if d.NumClasses <= 0 {
		return fmt.Errorf("dataset %s: NumClasses = %d", d.Name, d.NumClasses)
	}
	w := d.NumFeatures()
	for i, row := range d.Features {
		if len(row) != w {
			return fmt.Errorf("dataset %s: row %d has width %d, want %d", d.Name, i, len(row), w)
		}
		for j, v := range row {
			if v != v {
				return fmt.Errorf("dataset %s: row %d feature %d is NaN", d.Name, i, j)
			}
		}
	}
	for i, y := range d.Labels {
		if y < 0 || int(y) >= d.NumClasses {
			return fmt.Errorf("dataset %s: label %d = %d out of range [0,%d)", d.Name, i, y, d.NumClasses)
		}
	}
	return nil
}

// Split partitions the dataset into train and test subsets with the given
// training fraction, after a deterministic seeded shuffle. The paper uses
// a 75/25 split (Section V-A).
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset) {
	n := d.Len()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	cut := int(float64(n) * trainFrac)
	if cut < 0 {
		cut = 0
	}
	if cut > n {
		cut = n
	}
	mk := func(idx []int, suffix string) *Dataset {
		out := &Dataset{
			Name:       d.Name + suffix,
			Features:   make([][]float32, len(idx)),
			Labels:     make([]int32, len(idx)),
			NumClasses: d.NumClasses,
		}
		for i, p := range idx {
			out.Features[i] = d.Features[p]
			out.Labels[i] = d.Labels[p]
		}
		return out
	}
	return mk(perm[:cut], "-train"), mk(perm[cut:], "-test")
}

// Spec describes one of the paper's workloads.
type Spec struct {
	// Name is the short identifier used throughout the paper ("eye",
	// "gas", "magic", "sensorless", "wine").
	Name string
	// NumFeatures and NumClasses match the UCI original.
	NumFeatures int
	NumClasses  int
	// FullRows is the nominal size of the UCI original.
	FullRows int
	// gen synthesizes rows.
	gen func(rng *rand.Rand, rows int) (*Dataset, error)
}

// Specs lists the five workloads in the paper's order.
var Specs = []Spec{
	{Name: "eye", NumFeatures: 14, NumClasses: 2, FullRows: 14980, gen: genEye},
	{Name: "gas", NumFeatures: 128, NumClasses: 6, FullRows: 13910, gen: genGas},
	{Name: "magic", NumFeatures: 10, NumClasses: 2, FullRows: 19020, gen: genMagic},
	{Name: "sensorless", NumFeatures: 48, NumClasses: 11, FullRows: 58509, gen: genSensorless},
	{Name: "wine", NumFeatures: 11, NumClasses: 7, FullRows: 6497, gen: genWine},
}

// Names returns the workload names in the paper's order.
func Names() []string {
	out := make([]string, len(Specs))
	for i, s := range Specs {
		out[i] = s.Name
	}
	return out
}

// LookupSpec returns the spec for a workload name.
func LookupSpec(name string) (Spec, error) {
	for _, s := range Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown workload %q (have %v)", name, Names())
}

// Generate synthesizes rows samples of the named workload. rows <= 0
// requests the full UCI-equivalent size. The same (name, rows, seed)
// triple always produces identical data.
func Generate(name string, rows int, seed int64) (*Dataset, error) {
	spec, err := LookupSpec(name)
	if err != nil {
		return nil, err
	}
	if rows <= 0 {
		rows = spec.FullRows
	}
	rng := rand.New(rand.NewSource(seed ^ int64(len(name))<<32))
	d, err := spec.gen(rng, rows)
	if err != nil {
		return nil, err
	}
	d.Name = name
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// newDataset allocates the backing arrays for rows samples.
func newDataset(name string, rows, features, classes int) *Dataset {
	d := &Dataset{
		Name:       name,
		Features:   make([][]float32, rows),
		Labels:     make([]int32, rows),
		NumClasses: classes,
	}
	backing := make([]float32, rows*features)
	for i := range d.Features {
		d.Features[i] = backing[i*features : (i+1)*features : (i+1)*features]
	}
	return d
}

// genEye mimics the EEG Eye State dataset: 14 electrode channels sampled
// from a continuous recording. Channels have a common per-sample brain
// activity component plus channel-specific AR(1)-correlated noise; the
// eye-open state shifts a subset of frontal channels. Values are centered
// around zero so both signs occur, exercising the negative-split path
// (Listing 4 of the paper).
func genEye(rng *rand.Rand, rows int) (*Dataset, error) {
	const nf = 14
	d := newDataset("eye", rows, nf, 2)
	state := make([]float64, nf) // AR(1) state per channel
	open := false
	for i := 0; i < rows; i++ {
		// The eye state flips in bursts, like a real recording.
		if rng.Float64() < 0.02 {
			open = !open
		}
		common := rng.NormFloat64() * 8
		for c := 0; c < nf; c++ {
			state[c] = 0.7*state[c] + 0.3*rng.NormFloat64()*20
			v := common + state[c]
			if open && c < 6 {
				v += 12 + 2*float64(c) // frontal channels react to eye state
			}
			if !open && c >= 10 {
				v -= 9
			}
			// Occasional electrode artifact spikes, as in the UCI data.
			if rng.Float64() < 0.001 {
				v *= 25
			}
			d.Features[i][c] = float32(v)
		}
		if open {
			d.Labels[i] = 1
		}
	}
	return d, nil
}

// genGas mimics the Gas Sensor Array Drift dataset: 128 features from 16
// chemical sensors x 8 response statistics, 6 gas classes, with a slow
// multiplicative drift over acquisition batches that moves the class
// clusters — the property that gives the original dataset its name.
func genGas(rng *rand.Rand, rows int) (*Dataset, error) {
	const nf, nc = 128, 6
	d := newDataset("gas", rows, nf, nc)
	// Per-class per-feature response means, fixed for the generator run,
	// plus a class-independent per-feature drift direction: as sensors
	// age, responses both scale (multiplicative gain drift) and shift
	// (baseline drift). The shift moves every class past thresholds a
	// model learned on early rows, which is exactly how drift degrades
	// classifiers on the UCI original — while within-batch separability
	// is unaffected.
	means := make([][]float64, nc)
	for c := range means {
		means[c] = make([]float64, nf)
		for f := range means[c] {
			means[c][f] = rng.NormFloat64() * 12
		}
	}
	shift := make([]float64, nf)
	for f := range shift {
		shift[f] = rng.NormFloat64() * 80
	}
	for i := 0; i < rows; i++ {
		c := rng.Intn(nc)
		p := float64(i) / float64(rows) // acquisition progress
		gain := 1 + 0.4*p
		for f := 0; f < nf; f++ {
			noise := rng.NormFloat64() * 8
			if rng.Float64() < 0.01 {
				noise *= 10 // heavy tail: sensor glitches
			}
			d.Features[i][f] = float32(means[c][f]*gain + shift[f]*p + noise)
		}
		d.Labels[i] = int32(c)
	}
	return d, nil
}

// genMagic mimics the MAGIC Gamma Telescope dataset: 10 Hillas parameters
// of Cherenkov shower images, gamma vs hadron. Lengths/sizes are
// long-tailed (lognormal), angles are bounded, and the hadron class has
// broader, shifted distributions.
func genMagic(rng *rand.Rand, rows int) (*Dataset, error) {
	const nf = 10
	d := newDataset("magic", rows, nf, 2)
	for i := 0; i < rows; i++ {
		gamma := rng.Float64() < 0.65 // UCI class balance
		scale, spread := 1.0, 1.0
		if !gamma {
			scale, spread = 1.45, 1.6
		}
		ln := func(mu, sigma float64) float32 {
			return float32(math.Exp(mu + sigma*rng.NormFloat64()))
		}
		length := ln(math.Log(30*scale), 0.5*spread)
		width := ln(math.Log(12*scale), 0.5*spread)
		size := ln(math.Log(2000*scale), 0.8)
		d.Features[i][0] = length
		d.Features[i][1] = width
		d.Features[i][2] = size
		d.Features[i][3] = float32(0.1 + 0.8*rng.Float64())                  // conc
		d.Features[i][4] = float32(0.05 + 0.5*rng.Float64())                 // conc1
		d.Features[i][5] = float32(rng.NormFloat64() * 50 * spread)          // asym: signed
		d.Features[i][6] = float32(rng.NormFloat64() * 30 * spread)          // m3long: signed
		d.Features[i][7] = float32(rng.NormFloat64() * 20)                   // m3trans: signed
		d.Features[i][8] = float32(rng.Float64() * 90 / scale)               // alpha
		d.Features[i][9] = float32(100 + 200*rng.Float64() + float64(width)) // dist
		if gamma {
			d.Labels[i] = 0
		} else {
			d.Labels[i] = 1
		}
	}
	return d, nil
}

// genSensorless mimics the Sensorless Drive Diagnosis dataset: 48
// features derived from motor phase currents, 11 fault classes. Each
// class imprints a distinct harmonic signature; features are small,
// centered and partially negative, like the EMD-derived UCI original.
func genSensorless(rng *rand.Rand, rows int) (*Dataset, error) {
	const nf, nc = 48, 11
	d := newDataset("sensorless", rows, nf, nc)
	// Deterministic per-class harmonic signatures: fault class c imprints
	// amplitude sin(h + 0.55c) on harmonic band h, like the per-band EMD
	// statistics of the UCI original.
	signature := func(c, f int) float64 {
		h := float64(f%12 + 1)
		sig := math.Sin(h*0.9+float64(c)*0.55) * (1 + 0.08*float64(c))
		sig += 0.3 * math.Cos(2*h-float64(c))
		return sig * 1e-2 * (1 + float64(f/12)) // band scaling
	}
	for i := 0; i < rows; i++ {
		c := rng.Intn(nc)
		gain := 1 + 0.1*rng.NormFloat64() // load-dependent current gain
		for f := 0; f < nf; f++ {
			d.Features[i][f] = float32(signature(c, f)*gain + rng.NormFloat64()*4e-3)
		}
		d.Labels[i] = int32(c)
	}
	return d, nil
}

// genWine mimics the combined Wine Quality dataset: 11 physicochemical
// features, quality grades 3..9 mapped to classes 0..6. Feature means
// move monotonically with quality and features are correlated (alcohol up,
// volatile acidity down), matching the ordinal structure of the original.
func genWine(rng *rand.Rand, rows int) (*Dataset, error) {
	const nf, nc = 11, 7
	d := newDataset("wine", rows, nf, nc)
	for i := 0; i < rows; i++ {
		// Quality is roughly normal around grade 5-6 as in UCI.
		q := int(math.Round(2.8 + 2.2*rng.Float64() + 1.1*rng.NormFloat64()))
		if q < 0 {
			q = 0
		}
		if q > 6 {
			q = 6
		}
		fq := float64(q)
		set := func(j int, mu, sigma float64) {
			d.Features[i][j] = float32(mu + sigma*rng.NormFloat64())
		}
		set(0, 7.2+0.1*fq, 1.2)    // fixed acidity
		set(1, 0.55-0.05*fq, 0.15) // volatile acidity: down with quality
		set(2, 0.25+0.02*fq, 0.12) // citric acid
		set(3, 5.0-0.2*fq, 4.0)    // residual sugar (long-ish tail)
		set(4, 0.06-0.003*fq, 0.03)
		set(5, 30+1.5*fq, 15) // free SO2
		set(6, 115-2*fq, 50)  // total SO2
		set(7, 0.996-0.0004*fq, 0.002)
		set(8, 3.2+0.01*fq, 0.15) // pH
		set(9, 0.53+0.02*fq, 0.14)
		set(10, 9.4+0.45*fq, 0.9) // alcohol: strongly up with quality
		d.Labels[i] = int32(q)
	}
	return d, nil
}
