package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset with a header row (f0..fN-1,label), one
// sample per row, features in shortest round-trippable float32 notation.
func WriteCSV(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	nf := d.NumFeatures()
	header := make([]string, nf+1)
	for i := 0; i < nf; i++ {
		header[i] = "f" + strconv.Itoa(i)
	}
	header[nf] = "label"
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	rec := make([]string, nf+1)
	for i, row := range d.Features {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(float64(v), 'g', -1, 32)
		}
		rec[nf] = strconv.Itoa(int(d.Labels[i]))
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV. The class count is taken
// as max(label)+1 unless numClasses > 0 forces a larger space.
func ReadCSV(r io.Reader, name string, numClasses int) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) < 2 || header[len(header)-1] != "label" {
		return nil, fmt.Errorf("dataset: CSV header must end with %q, got %v", "label", header)
	}
	nf := len(header) - 1
	d := &Dataset{Name: name, NumClasses: numClasses}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if len(rec) != nf+1 {
			return nil, fmt.Errorf("dataset: CSV line %d has %d fields, want %d", line, len(rec), nf+1)
		}
		row := make([]float32, nf)
		for j := 0; j < nf; j++ {
			v, err := strconv.ParseFloat(rec[j], 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d field %d: %w", line, j, err)
			}
			row[j] = float32(v)
		}
		label, err := strconv.Atoi(rec[nf])
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d label: %w", line, err)
		}
		if label >= d.NumClasses {
			d.NumClasses = label + 1
		}
		d.Features = append(d.Features, row)
		d.Labels = append(d.Labels, int32(label))
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
