package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSpecsMatchPaper(t *testing.T) {
	// Feature/class counts of the UCI originals cited in Section V-A.
	want := map[string][3]int{
		"eye":        {14, 2, 14980},
		"gas":        {128, 6, 13910},
		"magic":      {10, 2, 19020},
		"sensorless": {48, 11, 58509},
		"wine":       {11, 7, 6497},
	}
	if len(Specs) != len(want) {
		t.Fatalf("have %d specs, want %d", len(Specs), len(want))
	}
	for _, s := range Specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected spec %q", s.Name)
			continue
		}
		if s.NumFeatures != w[0] || s.NumClasses != w[1] || s.FullRows != w[2] {
			t.Errorf("%s: got (%d,%d,%d), want %v", s.Name, s.NumFeatures, s.NumClasses, s.FullRows, w)
		}
	}
}

func TestGenerateAllWorkloads(t *testing.T) {
	for _, name := range Names() {
		d, err := Generate(name, 500, 42)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		spec, _ := LookupSpec(name)
		if d.Len() != 500 {
			t.Errorf("%s: %d rows", name, d.Len())
		}
		if d.NumFeatures() != spec.NumFeatures {
			t.Errorf("%s: %d features, want %d", name, d.NumFeatures(), spec.NumFeatures)
		}
		if d.NumClasses != spec.NumClasses {
			t.Errorf("%s: %d classes, want %d", name, d.NumClasses, spec.NumClasses)
		}
		// Every class should actually occur in a 500-row sample.
		seen := make(map[int32]bool)
		for _, y := range d.Labels {
			seen[y] = true
		}
		if len(seen) != spec.NumClasses {
			t.Errorf("%s: only %d/%d classes present", name, len(seen), spec.NumClasses)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("magic", 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("magic", 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Features {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("labels diverge at row %d", i)
		}
		for j := range a.Features[i] {
			if a.Features[i][j] != b.Features[i][j] {
				t.Fatalf("features diverge at row %d col %d", i, j)
			}
		}
	}
	c, err := Generate("magic", 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Features {
		for j := range a.Features[i] {
			if a.Features[i][j] != c.Features[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGenerateFullSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation in -short mode")
	}
	d, err := Generate("wine", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 6497 {
		t.Errorf("full wine has %d rows, want 6497", d.Len())
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("iris", 10, 0); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := LookupSpec("iris"); err == nil {
		t.Error("LookupSpec(iris) should fail")
	}
}

// TestNegativeSplitsPossible ensures the workloads exercise the paper's
// negative-split code path (Listing 4): datasets must contain negative
// feature values.
func TestNegativeSplitsPossible(t *testing.T) {
	for _, name := range []string{"eye", "gas", "magic", "sensorless"} {
		d, err := Generate(name, 300, 3)
		if err != nil {
			t.Fatal(err)
		}
		neg := false
		for _, row := range d.Features {
			for _, v := range row {
				if v < 0 {
					neg = true
				}
			}
		}
		if !neg {
			t.Errorf("%s: no negative feature values; Listing-4 path untested", name)
		}
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// A trivial nearest-centroid rule must beat chance clearly on each
	// workload, otherwise trees would degenerate to single leaves and the
	// depth sweep of Figure 3 would be meaningless.
	for _, name := range Names() {
		d, err := Generate(name, 600, 11)
		if err != nil {
			t.Fatal(err)
		}
		train, test := d.Split(0.75, 1)
		nf := d.NumFeatures()
		// Standardize features so large-scale columns do not dominate the
		// Euclidean distance (the centroid rule is scale-sensitive; trees
		// are not).
		mean := make([]float64, nf)
		std := make([]float64, nf)
		for _, row := range train.Features {
			for j, v := range row {
				mean[j] += float64(v)
			}
		}
		for j := range mean {
			mean[j] /= float64(train.Len())
		}
		for _, row := range train.Features {
			for j, v := range row {
				diff := float64(v) - mean[j]
				std[j] += diff * diff
			}
		}
		for j := range std {
			std[j] = math.Sqrt(std[j]/float64(train.Len())) + 1e-12
		}
		norm := func(row []float32, j int) float64 {
			return (float64(row[j]) - mean[j]) / std[j]
		}
		cent := make([][]float64, d.NumClasses)
		count := make([]int, d.NumClasses)
		for i := range cent {
			cent[i] = make([]float64, nf)
		}
		for i, row := range train.Features {
			c := train.Labels[i]
			count[c]++
			for j := range row {
				cent[c][j] += norm(row, j)
			}
		}
		for c := range cent {
			if count[c] == 0 {
				continue
			}
			for j := range cent[c] {
				cent[c][j] /= float64(count[c])
			}
		}
		correct := 0
		for i, row := range test.Features {
			best, bestD := int32(0), math.Inf(1)
			for c := range cent {
				dist := 0.0
				for j := range row {
					diff := norm(row, j) - cent[c][j]
					dist += diff * diff
				}
				if dist < bestD {
					best, bestD = int32(c), dist
				}
			}
			if best == test.Labels[i] {
				correct++
			}
		}
		acc := float64(correct) / float64(test.Len())
		chance := 1.0 / float64(d.NumClasses)
		if acc < chance+0.10 {
			t.Errorf("%s: nearest-centroid accuracy %.3f barely above chance %.3f", name, acc, chance)
		}
	}
}

func TestSplit(t *testing.T) {
	d, err := Generate("wine", 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	train, test := d.Split(0.75, 99)
	if train.Len() != 300 || test.Len() != 100 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	if train.NumClasses != d.NumClasses || test.NumClasses != d.NumClasses {
		t.Error("split lost NumClasses")
	}
	// Deterministic for equal seeds, different for different seeds.
	train2, _ := d.Split(0.75, 99)
	if &train.Features[0][0] != &train2.Features[0][0] {
		// Rows are shared slices; same seed must pick the same rows.
		for i := range train.Features {
			if train.Labels[i] != train2.Labels[i] {
				t.Fatal("same-seed split differs")
			}
		}
	}
	// Degenerate fractions clamp instead of panicking.
	all, none := d.Split(2.0, 1)
	if all.Len() != 400 || none.Len() != 0 {
		t.Error("fraction > 1 must clamp")
	}
	none2, all2 := d.Split(-1, 1)
	if none2.Len() != 0 || all2.Len() != 400 {
		t.Error("fraction < 0 must clamp")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d, _ := Generate("magic", 50, 1)
	if err := d.Validate(); err != nil {
		t.Fatalf("fresh dataset invalid: %v", err)
	}
	d.Features[3][2] = float32(math.NaN())
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "NaN") {
		t.Errorf("NaN not caught: %v", err)
	}
	d, _ = Generate("magic", 50, 1)
	d.Labels[0] = 99
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("label range not caught: %v", err)
	}
	d, _ = Generate("magic", 50, 1)
	d.Features[1] = d.Features[1][:3]
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "width") {
		t.Errorf("ragged rows not caught: %v", err)
	}
	d, _ = Generate("magic", 50, 1)
	d.Labels = d.Labels[:10]
	if err := d.Validate(); err == nil {
		t.Error("label count mismatch not caught")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d, err := Generate("eye", 120, 17)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "eye", d.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.NumFeatures() != d.NumFeatures() || got.NumClasses != d.NumClasses {
		t.Fatalf("shape mismatch after round trip: %d x %d (%d classes)",
			got.Len(), got.NumFeatures(), got.NumClasses)
	}
	for i := range d.Features {
		if d.Labels[i] != got.Labels[i] {
			t.Fatalf("label %d changed", i)
		}
		for j := range d.Features[i] {
			if d.Features[i][j] != got.Features[i][j] {
				t.Fatalf("feature (%d,%d) changed: %v -> %v", i, j, d.Features[i][j], got.Features[i][j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                      // no header
		"f0,f1\n1,2\n",          // header does not end in label
		"f0,label\n1\n",         // short row
		"f0,label\nxyz,0\n",     // bad float
		"f0,label\n1.5,three\n", // bad label
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), "bad", 0); err == nil {
			t.Errorf("case %d: malformed CSV accepted", i)
		}
	}
	// Class count inferred from labels when not forced.
	d, err := ReadCSV(strings.NewReader("f0,label\n1.5,0\n2.5,4\n"), "ok", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumClasses != 5 {
		t.Errorf("inferred NumClasses = %d, want 5", d.NumClasses)
	}
}

func TestEmptyDatasetAccessors(t *testing.T) {
	d := &Dataset{Name: "empty", NumClasses: 1}
	if d.Len() != 0 || d.NumFeatures() != 0 {
		t.Error("empty dataset accessors broken")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("empty dataset should validate: %v", err)
	}
}
