package codegen

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestCDoubleFLIntOutput(t *testing.T) {
	out := generate(t, paperForest(), Options{Language: LangC, Variant: VariantFLInt, Double: true})
	for _, want := range []string{
		"static int forest_tree0(const double *pX)",
		"(*(((const long long*)(pX))+3)) <= ((long long)(",
		"^ ((long long)0x8000000000000000ull)", // negative split
		"int forest_predict(const double *pX)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("C double FLInt output missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "const int*") {
		t.Error("double variant must not cast to int*")
	}
}

func TestCDoubleFloatOutput(t *testing.T) {
	out := generate(t, paperForest(), Options{Language: LangC, Variant: VariantFloat, Double: true})
	if !strings.Contains(out, "const double *pX") {
		t.Errorf("missing double signature\n%s", out)
	}
	// The widened constant has full float64 round-trip precision.
	if !strings.Contains(out, "10.074347496032715") {
		t.Errorf("missing exactly-widened double literal\n%s", out)
	}
	if strings.Contains(out, "(float)") {
		t.Error("double variant must not contain float casts")
	}
}

func TestGoDoubleOutput(t *testing.T) {
	out := generate(t, paperForest(), Options{Language: LangGo, Variant: VariantFLInt, Double: true})
	for _, want := range []string{
		"func forest_tree0(x []int64) int32 {",
		"if uint64(x[125]) >= 0xc", // negative split via unsigned 64-bit form
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Go double FLInt output missing %q\n%s", want, out)
		}
	}
	outF := generate(t, paperForest(), Options{Language: LangGo, Variant: VariantFloat, Double: true})
	if !strings.Contains(outF, "func forest_tree0(x []float64) int32 {") {
		t.Errorf("Go double float output wrong\n%s", outF)
	}
	if !strings.Contains(outF, "10.074347496032715") {
		t.Errorf("Go double float literal not widened\n%s", outF)
	}
}

func TestDoubleRejectedForAsm(t *testing.T) {
	var buf bytes.Buffer
	for _, lang := range []Language{LangARMv8, LangX86} {
		err := Forest(&buf, paperForest(), Options{Language: lang, Double: true})
		if err == nil {
			t.Errorf("%v: double accepted for assembly", lang)
		}
	}
}

// TestGeneratedCDoubleMatchesReference compiles the double realizations
// with gcc and checks them against the Go reference over widened inputs.
func TestGeneratedCDoubleMatchesReference(t *testing.T) {
	gcc := gccPath(t)
	f, d := trainIntegrationForest(t)

	var src bytes.Buffer
	src.WriteString("#include <stdio.h>\n\n")
	for _, im := range []struct {
		prefix  string
		variant Variant
	}{{"dnaive", VariantFloat}, {"dflint", VariantFLInt}} {
		if err := Forest(&src, f, Options{
			Language: LangC, Variant: im.variant, Double: true, Prefix: im.prefix,
		}); err != nil {
			t.Fatal(err)
		}
		src.WriteString("\n")
	}
	fmt.Fprintf(&src, "static const unsigned long long data[%d][%d] = {\n",
		len(d.Features), len(d.Features[0]))
	for _, row := range d.Features {
		src.WriteString("\t{")
		for j, v := range row {
			if j > 0 {
				src.WriteString(", ")
			}
			fmt.Fprintf(&src, "0x%016xull", math.Float64bits(float64(v)))
		}
		src.WriteString("},\n")
	}
	src.WriteString(`};

int main(void) {
	for (int i = 0; i < sizeof(data)/sizeof(data[0]); i++) {
		const double *x = (const double *)data[i];
		printf("%d %d\n", dnaive_predict(x), dflint_predict(x));
	}
	return 0;
}
`)
	dir := t.TempDir()
	cPath := filepath.Join(dir, "double.c")
	binPath := filepath.Join(dir, "double")
	if err := os.WriteFile(cPath, src.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(gcc, "-O2", "-o", binPath, cPath).CombinedOutput(); err != nil {
		t.Fatalf("gcc failed: %v\n%s", err, out)
	}
	out, err := exec.Command(binPath).Output()
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(out))
	row := 0
	for sc.Scan() {
		want := fmt.Sprint(f.Predict(d.Features[row]))
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 || fields[0] != want || fields[1] != want {
			t.Fatalf("row %d: got %q, reference %s", row, sc.Text(), want)
		}
		row++
	}
	if row != len(d.Features) {
		t.Fatalf("printed %d rows, want %d", row, len(d.Features))
	}
}
