// Package codegen turns trained random forests into source code, the
// arch-forest role in the FLInt paper's toolchain (Section IV): if-else
// trees in C (Listings 1-4) and Go, and direct assembly for ARMv8
// (Listing 5) and x86-64.
//
// Every language supports two comparison variants:
//
//   - VariantFloat — ordinary float comparisons against float literals
//     (the naive baseline).
//   - VariantFLInt — integer comparisons against the offline-encoded
//     immediates of package core; negative split values emit the
//     sign-flipped form of Listing 4 (C), the single unsigned comparison
//     (Go), or an explicit eor/xor of the sign bit (assembly).
//
// The CAGS option applies the swapping half of Chen et al.'s
// optimization: the more probable branch of every node is emitted as the
// fall-through path (package cags computes the plan). The assembly
// emitters additionally distinguish two constant-materialization
// flavors, FlavorHand (movz/movk immediates, the paper's hand-written
// style) and FlavorCC (literal-pool loads, the style compilers emit for
// float constants) — the mechanism behind the paper's Figure 4
// C-vs-assembly comparison.
package codegen

import (
	"fmt"
	"io"

	"flint/internal/cags"
	"flint/internal/rf"
)

// Language selects the output language.
type Language int

// Supported output languages.
const (
	LangC Language = iota
	LangGo
	LangARMv8
	LangX86
)

// String returns the lower-case language name.
func (l Language) String() string {
	switch l {
	case LangC:
		return "c"
	case LangGo:
		return "go"
	case LangARMv8:
		return "armv8"
	case LangX86:
		return "x86-64"
	}
	return fmt.Sprintf("Language(%d)", int(l))
}

// Mode selects the realization shape of the emitted forest.
type Mode int

// Emission modes.
const (
	// ModeIfElse compiles every tree into nested branches — the paper's
	// Listings 1-4 shapes. Code size grows with node count; each node
	// costs one comparison against an inline constant.
	ModeIfElse Mode = iota
	// ModeTable emits the quantized compact fused arena (the runtime's
	// FlatCompact representation, PRs 2/5) as static data walked by a
	// fixed loop: per-feature sorted cut tables, one uint64 word per
	// node, a branchless binary-search quantizer and the
	// (key - q[f]) >> 31 shift-select step. Integer-only end to end —
	// no float compares, no FPU — and code size is constant per forest:
	// the model lives in data memory. Supported for LangC and LangGo;
	// requires the forest to fit the compact encoding (probe
	// treeexec.Compactable), otherwise Forest returns a
	// *NotCompactableError.
	ModeTable
)

// String returns the lower-case mode name.
func (m Mode) String() string {
	switch m {
	case ModeIfElse:
		return "ifelse"
	case ModeTable:
		return "table"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// NotCompactableError reports that ModeTable was requested for a forest
// that exceeds the compact arena's narrow encoding (too many nodes,
// classes, features or distinct cuts per feature). Reason carries the
// specific limit, phrased by treeexec.Compactable.
type NotCompactableError struct {
	Reason string
}

func (e *NotCompactableError) Error() string {
	return "codegen: forest does not fit the table encoding: " + e.Reason
}

// Variant selects the comparison implementation.
type Variant int

// Supported comparison variants.
const (
	VariantFloat Variant = iota
	VariantFLInt
)

// String returns the lower-case variant name.
func (v Variant) String() string {
	switch v {
	case VariantFloat:
		return "float"
	case VariantFLInt:
		return "flint"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Flavor selects how the assembly emitters materialize split constants.
type Flavor int

// Assembly constant-materialization flavors.
const (
	// FlavorHand builds constants in the instruction stream with
	// movz/movk (ARMv8) or immediate operands (x86-64): the paper's
	// direct assembly implementation.
	FlavorHand Flavor = iota
	// FlavorCC loads constants from a per-function literal pool in data
	// memory, as compiled C does; the load costs a data-cache access.
	FlavorCC
)

// String returns the lower-case flavor name.
func (f Flavor) String() string {
	switch f {
	case FlavorHand:
		return "hand"
	case FlavorCC:
		return "cc"
	}
	return fmt.Sprintf("Flavor(%d)", int(f))
}

// Options configures code generation.
type Options struct {
	// Language is the output language. Default LangC.
	Language Language
	// Mode is the realization shape. Default ModeIfElse (branchy trees);
	// ModeTable emits the integer-only quantized table form instead.
	Mode Mode
	// Variant is the comparison implementation. Default VariantFloat.
	// Ignored by ModeTable, which is inherently integer-only.
	Variant Variant
	// CAGS emits the more probable branch of every node as the
	// fall-through path (branch swapping).
	CAGS bool
	// Flavor selects constant materialization for the assembly
	// languages; ignored elsewhere.
	Flavor Flavor
	// Double emits double precision trees (Section IV-C): the feature
	// vector is float64/double and split constants widen exactly from
	// their trained float32 values. Supported by LangC and LangGo.
	Double bool
	// Native emits the native-tree realization (node arrays walked by a
	// loop, Asadi et al. / Section IV-A) instead of nested if-else
	// blocks. Supported by LangC; CAGS swapping does not apply (the
	// grouping half is carried by the node order of the input forest).
	Native bool
	// Prefix names the emitted functions: <Prefix>_tree<N> and
	// <Prefix>_predict. Default "forest".
	Prefix string
	// GoPackage is the package clause for LangGo output. Default
	// "generated".
	GoPackage string
	// GoRegister, when set for LangGo, additionally emits an init
	// function that registers the predictor under this name in the
	// enclosing package's registry (see internal/generated).
	GoRegister string
}

func (o Options) withDefaults() Options {
	if o.Prefix == "" {
		o.Prefix = "forest"
	}
	if o.GoPackage == "" {
		o.GoPackage = "generated"
	}
	return o
}

// Forest writes the complete translation unit for a forest: one predict
// function per tree plus a majority-vote entry point (for C and Go; the
// assembly emitters write per-tree routines and a vote stub is not
// needed because the simulator tallies votes itself).
func Forest(w io.Writer, f *rf.Forest, opts Options) error {
	opts = opts.withDefaults()
	if err := f.Validate(); err != nil {
		return err
	}
	if opts.Mode == ModeTable {
		return emitTable(w, f, opts)
	}
	plans := make([][]bool, len(f.Trees))
	for i := range f.Trees {
		if opts.CAGS {
			plans[i] = cags.SwapPlan(&f.Trees[i])
		} else {
			plans[i] = make([]bool, len(f.Trees[i].Nodes))
		}
	}
	if opts.Native && opts.Language != LangC {
		return fmt.Errorf("codegen: native trees are supported for c only")
	}
	if opts.Native && opts.CAGS {
		return fmt.Errorf("codegen: CAGS swapping does not apply to native trees; reorder the forest instead (package cags)")
	}
	switch opts.Language {
	case LangC:
		if opts.Native {
			return emitCNative(w, f, opts)
		}
		return emitC(w, f, plans, opts)
	case LangGo:
		return emitGo(w, f, plans, opts)
	case LangARMv8, LangX86:
		if opts.Double {
			return fmt.Errorf("codegen: double precision is supported for c and go only")
		}
		if opts.Language == LangARMv8 {
			return emitARM(w, f, plans, opts)
		}
		return emitX86(w, f, plans, opts)
	}
	return fmt.Errorf("codegen: unknown language %v", opts.Language)
}

// countersized writer helps emitters track errors without checking every
// Fprintf call.
type emitter struct {
	w   io.Writer
	err error
}

func (e *emitter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
