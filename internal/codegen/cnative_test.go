package codegen

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestCNativeOutputShapes(t *testing.T) {
	out := generate(t, paperForest(), Options{Language: LangC, Variant: VariantFLInt, Native: true})
	for _, want := range []string{
		"typedef struct { int feature; int split; int left; int right; } forest_node_t;",
		"static const forest_node_t forest_nodes0[9]",
		"{3, (int)0x41213087, 1, 6},",
		"{125, (int)0xc03bddde, 7, 8},", // raw key, sign resolved in the loop
		"if (n->feature < 0) return n->left;",
		"int le = (k >= 0) ? (x <= k) : ((unsigned)x >= (unsigned)k);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("native FLInt output missing %q\n%s", want, out)
		}
	}
	outF := generate(t, paperForest(), Options{Language: LangC, Variant: VariantFloat, Native: true})
	for _, want := range []string{
		"typedef struct { int feature; float split; int left; int right; } forest_node_t;",
		"i = (pX[n->feature] <= n->split) ? n->left : n->right;",
	} {
		if !strings.Contains(outF, want) {
			t.Errorf("native float output missing %q\n%s", want, outF)
		}
	}
	outD := generate(t, paperForest(), Options{Language: LangC, Variant: VariantFLInt, Native: true, Double: true})
	if !strings.Contains(outD, "long long split") ||
		!strings.Contains(outD, "(unsigned long long)x >= (unsigned long long)k") {
		t.Errorf("native double output wrong\n%s", outD)
	}
}

func TestCNativeOptionValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Forest(&buf, paperForest(), Options{Language: LangGo, Native: true}); err == nil {
		t.Error("native trees accepted for Go")
	}
	if err := Forest(&buf, paperForest(), Options{Language: LangC, Native: true, CAGS: true}); err == nil {
		t.Error("native trees with CAGS swapping accepted")
	}
}

// TestGeneratedCNativeMatchesReference compiles the native-tree
// realizations (float and FLInt) with gcc and checks predictions.
func TestGeneratedCNativeMatchesReference(t *testing.T) {
	gcc := gccPath(t)
	f, d := trainIntegrationForest(t)

	var src bytes.Buffer
	src.WriteString("#include <stdio.h>\n\n")
	for _, im := range []struct {
		prefix  string
		variant Variant
	}{{"nfloat", VariantFloat}, {"nflint", VariantFLInt}} {
		if err := Forest(&src, f, Options{
			Language: LangC, Variant: im.variant, Native: true, Prefix: im.prefix,
		}); err != nil {
			t.Fatal(err)
		}
		src.WriteString("\n")
	}
	writeRowsAsCBits(&src, d.Features)
	src.WriteString(`
int main(void) {
	for (int i = 0; i < sizeof(data)/sizeof(data[0]); i++) {
		const float *x = (const float *)data[i];
		printf("%d %d\n", nfloat_predict(x), nflint_predict(x));
	}
	return 0;
}
`)
	dir := t.TempDir()
	cPath := filepath.Join(dir, "native.c")
	binPath := filepath.Join(dir, "native")
	if err := os.WriteFile(cPath, src.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(gcc, "-O2", "-o", binPath, cPath).CombinedOutput(); err != nil {
		t.Fatalf("gcc failed: %v\n%s", err, out)
	}
	out, err := exec.Command(binPath).Output()
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(out))
	row := 0
	for sc.Scan() {
		want := fmt.Sprint(f.Predict(d.Features[row]))
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 || fields[0] != want || fields[1] != want {
			t.Fatalf("row %d: got %q, reference %s", row, sc.Text(), want)
		}
		row++
	}
	if row != d.Len() {
		t.Fatalf("printed %d rows, want %d", row, d.Len())
	}
}
