package codegen

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"flint/internal/rf"
)

// paperTree reconstructs the tree fragment of Listings 1-4: three nested
// positive splits (with the listings' exact bit patterns) and one
// negative split.
func paperTree() rf.Tree {
	f32 := math.Float32frombits
	return rf.Tree{Nodes: []rf.Node{
		{Feature: 3, Split: f32(0x41213087), Left: 1, Right: 6, LeftFraction: 0.7},  // 10.074347
		{Feature: 83, Split: f32(0x413f986e), Left: 2, Right: 5, LeftFraction: 0.4}, // 11.974715
		{Feature: 24, Split: f32(0x4622fa08), Left: 3, Right: 4, LeftFraction: 0.9}, // 10430.507324
		{Feature: rf.LeafFeature, Class: 0},
		{Feature: rf.LeafFeature, Class: 1},
		{Feature: rf.LeafFeature, Class: 2},
		{Feature: 125, Split: f32(0xC03BDDDE), Left: 7, Right: 8, LeftFraction: 0.2}, // -2.935417
		{Feature: rf.LeafFeature, Class: 3},
		{Feature: rf.LeafFeature, Class: 0},
	}}
}

func paperForest() *rf.Forest {
	return &rf.Forest{NumFeatures: 126, NumClasses: 4, Trees: []rf.Tree{paperTree()}}
}

func generate(t *testing.T, f *rf.Forest, opts Options) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Forest(&buf, f, opts); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCFLIntMatchesListings(t *testing.T) {
	out := generate(t, paperForest(), Options{Language: LangC, Variant: VariantFLInt})
	// Listing 2 immediates, in the listing's nesting order.
	for _, want := range []string{
		"(*(((const int*)(pX))+3)) <= ((int)(0x41213087))",
		"(*(((const int*)(pX))+83)) <= ((int)(0x413f986e))",
		"(*(((const int*)(pX))+24)) <= ((int)(0x4622fa08))",
		// Listing 4: flipped constant on the left, feature xor sign bit.
		"((int)(0x403bddde)) <= ((*(((const int*)(pX))+125)) ^ ((int)0x80000000u))",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("C FLInt output missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "float)1") {
		t.Error("FLInt variant must not contain float literals")
	}
}

func TestCFloatMatchesListing1(t *testing.T) {
	out := generate(t, paperForest(), Options{Language: LangC, Variant: VariantFloat})
	// Literals are round-trip exact, hence one digit longer than the
	// paper's 6-decimal display of the same bit patterns.
	for _, want := range []string{
		"if (pX[3] <= (float)10.0743475",
		"if (pX[83] <= (float)11.974714",
		"if (pX[24] <= (float)10430.508",
		"if (pX[125] <= (float)-2.9354167",
		"return 2;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("C float output missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "0x41213087") {
		t.Error("float variant must not contain FLInt immediates")
	}
}

func TestCCAGSSwapsHotBranch(t *testing.T) {
	out := generate(t, paperForest(), Options{Language: LangC, Variant: VariantFLInt, CAGS: true})
	// Node 1 has LeftFraction 0.4 < 0.5, so its condition inverts to `>`.
	if !strings.Contains(out, "(*(((const int*)(pX))+83)) > ((int)(0x413f986e))") {
		t.Errorf("CAGS must invert node 1's comparison\n%s", out)
	}
	// Node 0 has LeftFraction 0.7, stays `<=`.
	if !strings.Contains(out, "(*(((const int*)(pX))+3)) <= ((int)(0x41213087))") {
		t.Errorf("CAGS must keep node 0's comparison\n%s", out)
	}
}

func TestGoFLIntOutput(t *testing.T) {
	out := generate(t, paperForest(), Options{
		Language: LangGo, Variant: VariantFLInt, Prefix: "paper", GoRegister: "paper",
	})
	for _, want := range []string{
		"package generated",
		"func paper_tree0(x []int32) int32 {",
		"if x[3] <= 0x41213087 {",
		"if uint32(x[125]) >= 0xc03bddde {", // negative split: unsigned form
		"func paper_predict(x []int32) int32 {",
		`register("paper", Entry{NumFeatures: 126, NumClasses: 4, FLInt: paper_predict})`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Go FLInt output missing %q\n%s", want, out)
		}
	}
}

func TestGoFloatOutput(t *testing.T) {
	out := generate(t, paperForest(), Options{Language: LangGo, Variant: VariantFloat})
	for _, want := range []string{
		"func forest_tree0(x []float32) int32 {",
		"if x[3] <= 10.0743475 {",
		"if x[125] <= -2.9354167 {",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Go float output missing %q\n%s", want, out)
		}
	}
}

func TestARMFLIntMatchesListing5(t *testing.T) {
	out := generate(t, paperForest(), Options{Language: LangARMv8, Variant: VariantFLInt})
	// Listing 5: ldrsw from feature offset 12 (= 3*4), movz/movk of the
	// split constant halves, cmp, conditional branch.
	for _, want := range []string{
		"ldrsw x1, [x0, #12]",
		"movz w2, #0x3087",
		"movk w2, #0x4121, lsl #16",
		"cmp w1, w2",
		"b.gt .L",
		"ldrsw x1, [x0, #332]", // feature 83
		"movz w2, #0x986e",
		"movk w2, #0x413f, lsl #16",
		// Negative split: sign-bit flip and exchanged comparison.
		"eor x1, x1, #0x80000000",
		"movz w2, #0xddde",
		"movk w2, #0x403b, lsl #16",
		"cmp w2, w1",
		"mov w0, #3",
		"ret",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ARM output missing %q\n%s", want, out)
		}
	}
}

func TestARMFlavorCC(t *testing.T) {
	out := generate(t, paperForest(), Options{Language: LangARMv8, Variant: VariantFLInt, Flavor: FlavorCC})
	if !strings.Contains(out, "ldr w2, =0x41213087") {
		t.Errorf("cc flavor must load constants from the literal pool\n%s", out)
	}
	if strings.Contains(out, "movz") {
		t.Error("cc flavor must not materialize immediates with movz")
	}
	outF := generate(t, paperForest(), Options{Language: LangARMv8, Variant: VariantFloat, Flavor: FlavorCC})
	for _, want := range []string{"ldr s0, [x0, #12]", "ldr s1, =0x41213087", "fcmp s0, s1"} {
		if !strings.Contains(outF, want) {
			t.Errorf("ARM float/cc output missing %q\n%s", want, outF)
		}
	}
}

func TestARMFloatHand(t *testing.T) {
	out := generate(t, paperForest(), Options{Language: LangARMv8, Variant: VariantFloat, Flavor: FlavorHand})
	for _, want := range []string{"movz w2, #0x3087", "fmov s1, w2", "fcmp s0, s1"} {
		if !strings.Contains(out, want) {
			t.Errorf("ARM float/hand output missing %q\n%s", want, out)
		}
	}
}

func TestX86FLIntOutput(t *testing.T) {
	out := generate(t, paperForest(), Options{Language: LangX86, Variant: VariantFLInt})
	for _, want := range []string{
		"mov eax, dword ptr [rdi + 12]",
		"cmp eax, 0x41213087",
		"jg .L",
		"xor eax, 0x80000000", // negative split
		"cmp eax, 0x403bddde",
		"jl .L",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("x86 output missing %q\n%s", want, out)
		}
	}
}

func TestX86FloatCCUsesLiteralPool(t *testing.T) {
	out := generate(t, paperForest(), Options{Language: LangX86, Variant: VariantFloat, Flavor: FlavorCC})
	for _, want := range []string{
		"movss xmm0, dword ptr [rdi + 12]",
		"ucomiss xmm0, dword ptr [rip + .LC",
		".long 0x41213087",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("x86 float/cc output missing %q\n%s", want, out)
		}
	}
}

func TestForestRejectsInvalid(t *testing.T) {
	bad := &rf.Forest{NumFeatures: 1, NumClasses: 2}
	var buf bytes.Buffer
	if err := Forest(&buf, bad, Options{}); err == nil {
		t.Error("invalid forest accepted")
	}
	if err := Forest(&buf, paperForest(), Options{Language: Language(99)}); err == nil {
		t.Error("unknown language accepted")
	}
}

func TestEnumStrings(t *testing.T) {
	if LangC.String() != "c" || LangGo.String() != "go" ||
		LangARMv8.String() != "armv8" || LangX86.String() != "x86-64" {
		t.Error("Language.String broken")
	}
	if VariantFloat.String() != "float" || VariantFLInt.String() != "flint" {
		t.Error("Variant.String broken")
	}
	if FlavorHand.String() != "hand" || FlavorCC.String() != "cc" {
		t.Error("Flavor.String broken")
	}
	if Language(9).String() == "" || Variant(9).String() == "" || Flavor(9).String() == "" {
		t.Error("out-of-range enum String must not be empty")
	}
}
