package codegen

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"flint/internal/cart"
	"flint/internal/core"
	"flint/internal/dataset"
	"flint/internal/rf"
	"flint/internal/treeexec"
)

// compactReference builds the FlatCompact engine the table emitters
// export from and returns its per-row predictions — the exact values
// the emitted C and Go must reproduce bit for bit.
func compactReference(t *testing.T, f *rf.Forest, rows [][]float32) []int32 {
	t.Helper()
	e, err := treeexec.NewFlat(f, treeexec.FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variant() != treeexec.FlatCompact {
		t.Fatalf("reference engine fell back to %v", e.Variant())
	}
	want := make([]int32, len(rows))
	var enc []int32
	for i, x := range rows {
		enc = core.EncodeFeatures32(enc, x)
		want[i] = e.PredictEncoded(enc)
	}
	return want
}

// trainWorkloadForest trains a moderately deep forest on one of the
// bundled workloads.
func trainWorkloadForest(t *testing.T, name string) (*rf.Forest, [][]float32) {
	t.Helper()
	d, err := dataset.Generate(name, 200, 21)
	if err != nil {
		t.Fatal(err)
	}
	f, err := cart.TrainForest(d, cart.Config{NumTrees: 6, MaxDepth: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return f, d.Features
}

// adversarialTableForests grows random extreme-value forests (signed
// zeros, subnormals, float extremes, negative splits, leaf-only trees)
// plus probe rows mixing pool values verbatim with scaled
// perturbations — the regime where the total-order rank encoding and
// its emitted reproductions have to agree on exact ties.
func adversarialTableForests(n int) ([]*rf.Forest, [][][]float32) {
	rng := rand.New(rand.NewSource(99))
	splitPool := []float32{
		0, float32(math.Copysign(0, -1)), 1.5, -1.5,
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		math.MaxFloat32, -math.MaxFloat32, 3.25e-20, -7.5e12,
	}
	randTree := func(depth int) rf.Tree {
		var nodes []rf.Node
		var grow func(d int) int32
		grow = func(d int) int32 {
			me := int32(len(nodes))
			if d == 0 || rng.Float64() < 0.3 {
				nodes = append(nodes, rf.Node{Feature: rf.LeafFeature, Class: int32(rng.Intn(3))})
				return me
			}
			nodes = append(nodes, rf.Node{
				Feature: int32(rng.Intn(4)),
				Split:   splitPool[rng.Intn(len(splitPool))],
			})
			l := grow(d - 1)
			r := grow(d - 1)
			nodes[me].Left = l
			nodes[me].Right = r
			return me
		}
		grow(depth)
		return rf.Tree{Nodes: nodes}
	}
	var forests []*rf.Forest
	var rowSets [][][]float32
	for trial := 0; trial < n; trial++ {
		f := &rf.Forest{NumFeatures: 4, NumClasses: 3,
			Trees: []rf.Tree{randTree(6), randTree(6), randTree(6)}}
		if trial == 0 {
			// Force the degenerate shape: every tree a bare leaf, so the
			// emitted tables are empty (padded in C) and prediction is a
			// constant vote.
			leaf := rf.Tree{Nodes: []rf.Node{{Feature: rf.LeafFeature, Class: 2}}}
			f.Trees = []rf.Tree{leaf, leaf, {Nodes: []rf.Node{{Feature: rf.LeafFeature, Class: 1}}}}
		}
		rows := make([][]float32, 48)
		for i := range rows {
			row := make([]float32, 4)
			for j := range row {
				if rng.Intn(2) == 0 {
					row[j] = splitPool[rng.Intn(len(splitPool))]
				} else {
					row[j] = splitPool[rng.Intn(len(splitPool))] * float32(rng.NormFloat64())
				}
			}
			rows[i] = row
		}
		forests = append(forests, f)
		rowSets = append(rowSets, rows)
	}
	return forests, rowSets
}

// compileAndRunC writes src to a temp dir, compiles it at -O2 and
// returns the binary's stdout lines.
func compileAndRunC(t *testing.T, gcc string, src []byte) []string {
	t.Helper()
	dir := t.TempDir()
	cPath := filepath.Join(dir, "table.c")
	binPath := filepath.Join(dir, "table")
	if err := os.WriteFile(cPath, src, 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(gcc, "-O2", "-o", binPath, cPath).CombinedOutput(); err != nil {
		t.Fatalf("gcc failed: %v\n%s", err, out)
	}
	out, err := exec.Command(binPath).Output()
	if err != nil {
		t.Fatalf("compiled table program failed: %v", err)
	}
	var lines []string
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		lines = append(lines, strings.TrimSpace(sc.Text()))
	}
	return lines
}

// TestTableCDifferentialWorkloads pins the emitted table-driven C
// bit-identical to FlatCompact.PredictEncoded on every bundled
// workload — the ModeTable acceptance criterion.
func TestTableCDifferentialWorkloads(t *testing.T) {
	gcc := gccPath(t)
	for _, ds := range dataset.Names() {
		ds := ds
		t.Run(ds, func(t *testing.T) {
			f, rows := trainWorkloadForest(t, ds)
			want := compactReference(t, f, rows)

			var src bytes.Buffer
			src.WriteString("#include <stdio.h>\n\n")
			if err := Forest(&src, f, Options{Mode: ModeTable, Language: LangC}); err != nil {
				t.Fatal(err)
			}
			writeRowsAsCBits(&src, rows)
			src.WriteString(`
int main(void) {
	for (int i = 0; i < sizeof(data)/sizeof(data[0]); i++)
		printf("%d\n", forest_predict((const float *)data[i]));
	return 0;
}
`)
			lines := compileAndRunC(t, gcc, src.Bytes())
			if len(lines) != len(rows) {
				t.Fatalf("compiled table program printed %d rows, want %d", len(lines), len(rows))
			}
			for i, line := range lines {
				if line != fmt.Sprint(want[i]) {
					t.Fatalf("row %d: table C predicts %s, FlatCompact says %d", i, line, want[i])
				}
			}
		})
	}
}

// TestTableCDifferentialAdversarial cross-checks the emitted C on
// random extreme-value forests (one translation unit, one prefix per
// forest) including the all-leaf degenerate shape.
func TestTableCDifferentialAdversarial(t *testing.T) {
	gcc := gccPath(t)
	forests, rowSets := adversarialTableForests(8)

	var src bytes.Buffer
	src.WriteString("#include <stdio.h>\n\n")
	for i, f := range forests {
		if err := Forest(&src, f, Options{
			Mode: ModeTable, Language: LangC, Prefix: fmt.Sprintf("adv%d", i),
		}); err != nil {
			t.Fatal(err)
		}
		src.WriteString("\n")
		fmt.Fprintf(&src, "static const unsigned int rows%d[%d][%d] = {\n", i, len(rowSets[i]), 4)
		for _, row := range rowSets[i] {
			src.WriteString("\t{")
			for j, v := range row {
				if j > 0 {
					src.WriteString(", ")
				}
				fmt.Fprintf(&src, "0x%08xu", math.Float32bits(v))
			}
			src.WriteString("},\n")
		}
		src.WriteString("};\n\n")
	}
	src.WriteString("int main(void) {\n")
	for i := range forests {
		fmt.Fprintf(&src, "\tfor (int i = 0; i < %d; i++) printf(\"%%d\\n\", adv%d_predict((const float *)rows%d[i]));\n",
			len(rowSets[i]), i, i)
	}
	src.WriteString("\treturn 0;\n}\n")

	lines := compileAndRunC(t, gcc, src.Bytes())
	k := 0
	for i, f := range forests {
		want := compactReference(t, f, rowSets[i])
		for r := range rowSets[i] {
			if k >= len(lines) {
				t.Fatalf("compiled program printed only %d lines", len(lines))
			}
			if lines[k] != fmt.Sprint(want[r]) {
				t.Fatalf("forest %d row %d: table C predicts %s, FlatCompact says %d (row %v)",
					i, r, lines[k], want[r], rowSets[i][r])
			}
			k++
		}
	}
	if k != len(lines) {
		t.Fatalf("compiled program printed %d extra lines", len(lines)-k)
	}
}

// goToolPath returns the go tool, skipping when unavailable (the
// generated-Go semantics are still pinned by the golden and structure
// tests; this differential compiles and executes the emitted source).
func goToolPath(t *testing.T) string {
	t.Helper()
	p, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	return p
}

// writeRowsAsGoBits renders rows as a [][]int32 of raw float32 bit
// patterns — the input convention of the emitted table predictor.
func writeRowsAsGoBits(buf *bytes.Buffer, name string, rows [][]float32) {
	fmt.Fprintf(buf, "var %s = [][]int32{\n", name)
	for _, row := range rows {
		buf.WriteString("\t{")
		for j, v := range row {
			if j > 0 {
				buf.WriteString(", ")
			}
			fmt.Fprintf(buf, "%d", int32(math.Float32bits(v)))
		}
		buf.WriteString("},\n")
	}
	buf.WriteString("}\n")
}

// runGoFiles runs `go run` over the given sources and returns stdout
// lines.
func runGoFiles(t *testing.T, goTool string, files ...string) []string {
	t.Helper()
	args := append([]string{"run"}, files...)
	cmd := exec.Command(goTool, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run failed: %v\n%s", err, stderr.String())
	}
	var lines []string
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		lines = append(lines, strings.TrimSpace(sc.Text()))
	}
	return lines
}

// TestTableGoDifferential compiles and runs the emitted table-driven Go
// for every bundled workload plus the adversarial forests in two `go
// run` invocations, pinning the output bit-identical to
// FlatCompact.PredictEncoded.
func TestTableGoDifferential(t *testing.T) {
	goTool := goToolPath(t)
	dir := t.TempDir()

	// One program for the five workloads: a generated file per dataset
	// (distinct prefixes) plus a driver printing predictions in order.
	var files []string
	var driver bytes.Buffer
	driver.WriteString("package main\n\nimport \"fmt\"\n\n")
	var wants [][]int32
	names := dataset.Names()
	for i, ds := range names {
		f, rows := trainWorkloadForest(t, ds)
		wants = append(wants, compactReference(t, f, rows))
		var gen bytes.Buffer
		if err := Forest(&gen, f, Options{
			Mode: ModeTable, Language: LangGo, GoPackage: "main", Prefix: ds,
		}); err != nil {
			t.Fatal(err)
		}
		genPath := filepath.Join(dir, fmt.Sprintf("gen%d.go", i))
		if err := os.WriteFile(genPath, gen.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		files = append(files, genPath)
		writeRowsAsGoBits(&driver, "rows_"+ds, rows)
	}
	driver.WriteString("\nfunc main() {\n")
	for _, ds := range names {
		fmt.Fprintf(&driver, "\tfor _, r := range rows_%s {\n\t\tfmt.Println(%s_predict(r))\n\t}\n", ds, ds)
	}
	driver.WriteString("}\n")
	driverPath := filepath.Join(dir, "main.go")
	if err := os.WriteFile(driverPath, driver.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	lines := runGoFiles(t, goTool, append([]string{driverPath}, files...)...)
	k := 0
	for i, ds := range names {
		for r, want := range wants[i] {
			if k >= len(lines) {
				t.Fatalf("go program printed only %d lines", len(lines))
			}
			if lines[k] != fmt.Sprint(want) {
				t.Fatalf("%s row %d: table Go predicts %s, FlatCompact says %d", ds, r, lines[k], want)
			}
			k++
		}
	}
	if k != len(lines) {
		t.Fatalf("go program printed %d extra lines", len(lines)-k)
	}
}

// TestTableGoDifferentialAdversarial runs the emitted Go over the
// extreme-value forests (including the all-leaf degenerate shape).
func TestTableGoDifferentialAdversarial(t *testing.T) {
	goTool := goToolPath(t)
	dir := t.TempDir()
	forests, rowSets := adversarialTableForests(8)

	var files []string
	var driver bytes.Buffer
	driver.WriteString("package main\n\nimport \"fmt\"\n\n")
	for i, f := range forests {
		var gen bytes.Buffer
		if err := Forest(&gen, f, Options{
			Mode: ModeTable, Language: LangGo, GoPackage: "main", Prefix: fmt.Sprintf("adv%d", i),
		}); err != nil {
			t.Fatal(err)
		}
		genPath := filepath.Join(dir, fmt.Sprintf("gen%d.go", i))
		if err := os.WriteFile(genPath, gen.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		files = append(files, genPath)
		writeRowsAsGoBits(&driver, fmt.Sprintf("rows%d", i), rowSets[i])
	}
	driver.WriteString("\nfunc main() {\n")
	for i := range forests {
		fmt.Fprintf(&driver, "\tfor _, r := range rows%d {\n\t\tfmt.Println(adv%d_predict(r))\n\t}\n", i, i)
	}
	driver.WriteString("}\n")
	driverPath := filepath.Join(dir, "main.go")
	if err := os.WriteFile(driverPath, driver.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	lines := runGoFiles(t, goTool, append([]string{driverPath}, files...)...)
	k := 0
	for i, f := range forests {
		want := compactReference(t, f, rowSets[i])
		for r := range rowSets[i] {
			if k >= len(lines) {
				t.Fatalf("go program printed only %d lines", len(lines))
			}
			if lines[k] != fmt.Sprint(want[r]) {
				t.Fatalf("forest %d row %d: table Go predicts %s, FlatCompact says %d",
					i, r, lines[k], want[r])
			}
			k++
		}
	}
	if k != len(lines) {
		t.Fatalf("go program printed %d extra lines", len(lines)-k)
	}
}
