package codegen

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"flint/internal/cart"
	"flint/internal/cctool"
	"flint/internal/dataset"
	"flint/internal/rf"
)

// gccPath returns the C compiler, skipping the test when none is
// installed (the generated-code semantics are still covered by the golden
// tests and the asmsim executor). Detection and the skip wording live in
// internal/cctool so the cc bench backend and every compiled-code test
// agree on both.
func gccPath(t *testing.T) string {
	t.Helper()
	p, ok := cctool.Path()
	if !ok {
		t.Skip(cctool.SkipMessage)
	}
	return p
}

// trainIntegrationForest trains a small forest with both positive and
// negative splits.
func trainIntegrationForest(t *testing.T) (*rf.Forest, *dataset.Dataset) {
	t.Helper()
	d, err := dataset.Generate("eye", 300, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, err := cart.TrainForest(d, cart.Config{NumTrees: 3, MaxDepth: 8, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	neg := false
	for _, tr := range f.Trees {
		for _, n := range tr.Nodes {
			if !n.IsLeaf() && n.Split < 0 {
				neg = true
			}
		}
	}
	if !neg {
		t.Fatal("integration forest has no negative splits; Listing-4 path untested")
	}
	return f, d
}

// writeRowsAsCBits renders the feature matrix as a C array of uint32 bit
// patterns, so the compiled program sees bit-exact inputs.
func writeRowsAsCBits(buf *bytes.Buffer, rows [][]float32) {
	fmt.Fprintf(buf, "static const unsigned int data[%d][%d] = {\n", len(rows), len(rows[0]))
	for _, row := range rows {
		buf.WriteString("\t{")
		for j, v := range row {
			if j > 0 {
				buf.WriteString(", ")
			}
			fmt.Fprintf(buf, "0x%08xu", math.Float32bits(v))
		}
		buf.WriteString("},\n")
	}
	buf.WriteString("};\n")
}

// TestGeneratedCMatchesReference compiles the four C implementations the
// paper benchmarks (naive, CAGS, FLInt, CAGS+FLInt) with gcc and verifies
// that every one reproduces the Go reference predictions bit for bit —
// the paper's "model accuracy unchanged" claim on real compiled code.
func TestGeneratedCMatchesReference(t *testing.T) {
	gcc := gccPath(t)
	f, d := trainIntegrationForest(t)

	type impl struct {
		prefix  string
		variant Variant
		cags    bool
	}
	impls := []impl{
		{"naive", VariantFloat, false},
		{"cags", VariantFloat, true},
		{"flint", VariantFLInt, false},
		{"cagsflint", VariantFLInt, true},
	}

	var src bytes.Buffer
	src.WriteString("#include <stdio.h>\n\n")
	for _, im := range impls {
		if err := Forest(&src, f, Options{
			Language: LangC, Variant: im.variant, CAGS: im.cags, Prefix: im.prefix,
		}); err != nil {
			t.Fatal(err)
		}
		src.WriteString("\n")
	}
	writeRowsAsCBits(&src, d.Features)
	src.WriteString(`
int main(void) {
	for (int i = 0; i < sizeof(data)/sizeof(data[0]); i++) {
		const float *x = (const float *)data[i];
		printf("%d %d %d %d\n",
			naive_predict(x), cags_predict(x),
			flint_predict(x), cagsflint_predict(x));
	}
	return 0;
}
`)
	dir := t.TempDir()
	cPath := filepath.Join(dir, "forest.c")
	binPath := filepath.Join(dir, "forest")
	if err := os.WriteFile(cPath, src.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(gcc, "-O2", "-o", binPath, cPath).CombinedOutput(); err != nil {
		t.Fatalf("gcc failed: %v\n%s", err, out)
	}
	out, err := exec.Command(binPath).Output()
	if err != nil {
		t.Fatalf("compiled forest failed: %v", err)
	}

	sc := bufio.NewScanner(bytes.NewReader(out))
	row := 0
	for sc.Scan() {
		want := f.Predict(d.Features[row])
		fields := strings.Fields(sc.Text())
		if len(fields) != 4 {
			t.Fatalf("row %d: unexpected output %q", row, sc.Text())
		}
		for i, im := range impls {
			if fields[i] != fmt.Sprint(want) {
				t.Fatalf("row %d: %s predicts %s, reference says %d", row, im.prefix, fields[i], want)
			}
		}
		row++
	}
	if row != d.Len() {
		t.Fatalf("compiled forest printed %d rows, want %d", row, d.Len())
	}
}

// TestGeneratedX86AsmMatchesReference assembles the generated x86-64
// routines with gcc (both variants, both constant flavors) and verifies
// per-tree agreement with the Go reference on the host CPU.
func TestGeneratedX86AsmMatchesReference(t *testing.T) {
	gcc := gccPath(t)
	var probe bytes.Buffer
	fmt.Fprintln(&probe, "int main(void){return 0;}")
	dir := t.TempDir()
	probePath := filepath.Join(dir, "probe.c")
	if err := os.WriteFile(probePath, probe.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(gcc, "-dumpmachine").CombinedOutput(); err != nil ||
		!strings.Contains(string(out), "x86_64") {
		t.Skipf("not an x86_64 toolchain: %s", out)
	}

	f, d := trainIntegrationForest(t)
	type impl struct {
		prefix  string
		variant Variant
		flavor  Flavor
	}
	impls := []impl{
		{"ffh", VariantFloat, FlavorHand},
		{"ffc", VariantFloat, FlavorCC},
		{"fih", VariantFLInt, FlavorHand},
		{"fic", VariantFLInt, FlavorCC},
	}

	var asm bytes.Buffer
	for _, im := range impls {
		if err := Forest(&asm, f, Options{
			Language: LangX86, Variant: im.variant, Flavor: im.flavor, Prefix: im.prefix,
		}); err != nil {
			t.Fatal(err)
		}
		asm.WriteString("\n")
	}

	var driver bytes.Buffer
	driver.WriteString("#include <stdio.h>\n")
	for _, im := range impls {
		for ti := range f.Trees {
			fmt.Fprintf(&driver, "extern int %s_tree%d(const float*);\n", im.prefix, ti)
		}
	}
	writeRowsAsCBits(&driver, d.Features)
	driver.WriteString("int main(void) {\n")
	driver.WriteString("\tfor (int i = 0; i < sizeof(data)/sizeof(data[0]); i++) {\n")
	driver.WriteString("\t\tconst float *x = (const float *)data[i];\n")
	var formats, args []string
	for _, im := range impls {
		for ti := range f.Trees {
			formats = append(formats, "%d")
			args = append(args, fmt.Sprintf("%s_tree%d(x)", im.prefix, ti))
		}
	}
	fmt.Fprintf(&driver, "\t\tprintf(\"%s\\n\", %s);\n", strings.Join(formats, " "), strings.Join(args, ", "))
	driver.WriteString("\t}\n\treturn 0;\n}\n")

	asmPath := filepath.Join(dir, "trees.s")
	drvPath := filepath.Join(dir, "driver.c")
	binPath := filepath.Join(dir, "trees")
	if err := os.WriteFile(asmPath, asm.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(drvPath, driver.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(gcc, "-o", binPath, drvPath, asmPath).CombinedOutput(); err != nil {
		t.Fatalf("gcc failed: %v\n%s", err, out)
	}
	out, err := exec.Command(binPath).Output()
	if err != nil {
		t.Fatalf("assembled trees failed: %v", err)
	}

	sc := bufio.NewScanner(bytes.NewReader(out))
	row := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != len(impls)*len(f.Trees) {
			t.Fatalf("row %d: got %d fields", row, len(fields))
		}
		k := 0
		for _, im := range impls {
			for ti := range f.Trees {
				want := f.Trees[ti].Predict(d.Features[row])
				if fields[k] != fmt.Sprint(want) {
					t.Fatalf("row %d: %s tree %d predicts %s, reference says %d",
						row, im.prefix, ti, fields[k], want)
				}
				k++
			}
		}
		row++
	}
	if row != d.Len() {
		t.Fatalf("printed %d rows, want %d", row, d.Len())
	}
}
