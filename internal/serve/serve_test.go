package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flint/internal/cart"
	"flint/internal/dataset"
	"flint/internal/treeexec"
)

// testModel trains a small forest on the named workload and wraps it as
// a calibrated ServedModel plus the rows it was trained on.
func testModel(t *testing.T, name, workload string) (*treeexec.ServedModel, [][]float32) {
	t.Helper()
	d, err := dataset.Generate(workload, 400, 21)
	if err != nil {
		t.Fatal(err)
	}
	f, err := cart.TrainForest(d, cart.Config{NumTrees: 5, MaxDepth: 7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e, err := treeexec.NewFlat(f, treeexec.FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	e.CalibrateInterleaveRows(d.Features, 5*time.Millisecond)
	return treeexec.NewServedModelSampled(name, e, 2, 32, 128, 1), d.Features
}

// postPredict fires one predict request and decodes the response.
func postPredict(t *testing.T, url, model string, body any) (int, predictResponse, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/models/"+model+":predict", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var pr predictResponse
	_ = json.Unmarshal(raw, &pr)
	return resp.StatusCode, pr, string(raw)
}

// TestServePredictSingleAndBatch pins the wire contract: single rows
// and batches answer exactly what the in-process engine answers, and
// malformed requests map to the right status codes.
func TestServePredictSingleAndBatch(t *testing.T) {
	m, rows := testModel(t, "magic", "magic")
	reg := treeexec.NewModelRegistry()
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	s := New(reg, Config{MaxDelay: 500 * time.Microsecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want := m.Engine().PredictBatch(rows, nil, 1, 0)

	// Single row, canonical :predict action form.
	code, pr, raw := postPredict(t, ts.URL, "magic", predictRequest{Row: rows[0]})
	if code != http.StatusOK || len(pr.Classes) != 1 || pr.Classes[0] != want[0] {
		t.Fatalf("single-row predict: code %d, %+v (%s), want class %d", code, pr, raw, want[0])
	}

	// Batch of rows, bare-name form.
	code, pr, raw = postPredict(t, ts.URL, "magic", predictRequest{Rows: rows[:64]})
	if code != http.StatusOK || len(pr.Classes) != 64 {
		t.Fatalf("batch predict: code %d (%s)", code, raw)
	}
	for i, c := range pr.Classes {
		if c != want[i] {
			t.Fatalf("batch row %d: HTTP answer %d, engine %d", i, c, want[i])
		}
	}

	// Error mapping.
	if code, _, raw = postPredict(t, ts.URL, "ghost", predictRequest{Row: rows[0]}); code != http.StatusNotFound {
		t.Fatalf("unknown model: code %d (%s), want 404", code, raw)
	}
	if code, _, raw = postPredict(t, ts.URL, "magic", predictRequest{Row: []float32{1}}); code != http.StatusBadRequest {
		t.Fatalf("narrow row: code %d (%s), want 400", code, raw)
	}
	if code, _, raw = postPredict(t, ts.URL, "magic", predictRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty request: code %d (%s), want 400", code, raw)
	}
	if code, _, raw = postPredict(t, ts.URL, "magic", predictRequest{Row: rows[0], Rows: rows[:2]}); code != http.StatusBadRequest {
		t.Fatalf("row+rows request: code %d (%s), want 400", code, raw)
	}
	resp, err := http.Post(ts.URL+"/v1/models/magic:predict", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: code %d, want 400", resp.StatusCode)
	}
}

// TestServeStatusAndMetrics exercises the observability surface after
// real traffic: per-model counters on /v1/models and the Prometheus
// text form on /metrics.
func TestServeStatusAndMetrics(t *testing.T) {
	m, rows := testModel(t, "magic", "magic")
	reg := treeexec.NewModelRegistry()
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	s := New(reg, Config{MaxDelay: 200 * time.Microsecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 10; i++ {
		if code, _, raw := postPredict(t, ts.URL, "magic", predictRequest{Rows: rows[:16]}); code != http.StatusOK {
			t.Fatalf("warm-up predict %d: code %d (%s)", i, code, raw)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Models []ModelStatus `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Models) != 1 {
		t.Fatalf("GET /v1/models returned %d models, want 1", len(list.Models))
	}
	st := list.Models[0]
	if st.Name != "magic" || st.Requests != 10 || st.CoalescedRows != 160 || st.CoalescedBatches == 0 {
		t.Fatalf("status counters wrong: %+v", st)
	}
	if st.CoalesceFill <= 0 || st.LatencyP99Ms <= 0 {
		t.Fatalf("derived metrics missing: fill %v p99 %v", st.CoalesceFill, st.LatencyP99Ms)
	}

	// Single-model endpoint agrees.
	resp, err = http.Get(ts.URL + "/v1/models/magic")
	if err != nil {
		t.Fatal(err)
	}
	var one ModelStatus
	if err := json.NewDecoder(resp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if one.Name != "magic" || one.Requests != 10 {
		t.Fatalf("GET /v1/models/magic = %+v", one)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		`flint_requests_total{model="magic"} 10`,
		`flint_rows_total{model="magic"} 160`,
		`flint_latency_ms{model="magic",quantile="0.99"}`,
		`flint_drift_distance{model="magic"}`,
		"# TYPE flint_batches_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestServeCoalescesAcrossRequests pins the cross-request batching
// claim: many concurrent single-row requests land in fewer coalesced
// registry batches than requests.
func TestServeCoalescesAcrossRequests(t *testing.T) {
	m, rows := testModel(t, "magic", "magic")
	reg := treeexec.NewModelRegistry()
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	// A generous budget so slow CI schedulers still gather.
	s := New(reg, Config{MaxDelay: 20 * time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 64
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			code, _, raw := postPredict(t, ts.URL, "magic", predictRequest{Row: rows[i]})
			if code != http.StatusOK {
				errc <- fmt.Errorf("request %d: code %d (%s)", i, code, raw)
				return
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	st := s.Status()[0]
	if st.CoalescedBatches >= n {
		t.Fatalf("no cross-request coalescing: %d requests became %d batches", n, st.CoalescedBatches)
	}
	t.Logf("%d single-row requests coalesced into %d batches (fill %.1f rows/batch)",
		n, st.CoalescedBatches, st.CoalesceFill)
}

// TestServeAdmissionControl pins the 429 path deterministically: the
// lane is installed with its dispatcher deliberately not running, so
// the one-slot queue genuinely wedges — the first request parks in the
// queue, the second is rejected immediately with 429 instead of
// queueing into unbounded latency. Starting the dispatcher afterwards
// releases the parked request with a real answer.
func TestServeAdmissionControl(t *testing.T) {
	m, rows := testModel(t, "magic", "magic")
	reg := treeexec.NewModelRegistry()
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	s := New(reg, Config{MaxQueue: 1, MaxDelay: time.Millisecond})
	defer s.Close()
	// Install the lane by hand, dispatcher not yet started.
	l := newLane("magic", s.cfg.MaxQueue)
	s.mu.Lock()
	s.lanes["magic"] = l
	s.mu.Unlock()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	parked := make(chan int, 1)
	go func() {
		code, _, _ := postPredict(t, ts.URL, "magic", predictRequest{Row: rows[0]})
		parked <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(l.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	code, _, raw := postPredict(t, ts.URL, "magic", predictRequest{Row: rows[1]})
	if code != http.StatusTooManyRequests {
		t.Fatalf("second request on a full queue: code %d (%s), want 429", code, raw)
	}
	if got := s.Status()[0].Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	go l.run(s) // release the parked request
	if code := <-parked; code != http.StatusOK {
		t.Fatalf("parked request finished with %d once the dispatcher ran, want 200", code)
	}
}

// TestServeCloseFailsPending pins the shutdown contract: Close drains
// the lanes, parked requests fail with 503 instead of hanging, and new
// requests are turned away.
func TestServeCloseFailsPending(t *testing.T) {
	m, rows := testModel(t, "magic", "magic")
	reg := treeexec.NewModelRegistry()
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	s := New(reg, Config{MaxDelay: time.Hour}) // park the dispatcher in gather
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	codes := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func() {
			code, _, _ := postPredict(t, ts.URL, "magic", predictRequest{Row: rows[0]})
			codes <- code
		}()
	}
	// Wait until the requests are inside the lane, then shut down.
	deadline := time.Now().Add(5 * time.Second)
	for s.Status()[0].Requests < 4 {
		if time.Now().After(deadline) {
			t.Fatal("requests never reached the lane")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	for i := 0; i < 4; i++ {
		// The first gathered request rides the shutdown batch to a real
		// answer; later ones fail 503. Either way nobody hangs.
		if c := <-codes; c != http.StatusOK && c != http.StatusServiceUnavailable {
			t.Fatalf("post-Close status %d, want 200 or 503", c)
		}
	}
	if code, _, _ := postPredict(t, ts.URL, "magic", predictRequest{Row: rows[0]}); code != http.StatusServiceUnavailable {
		t.Fatalf("predict after Close: %d, want 503", code)
	}
}

// TestServeReloadHook pins POST /v1/reload: wired hook fires, missing
// hook reports 501.
func TestServeReloadHook(t *testing.T) {
	m, _ := testModel(t, "magic", "magic")
	reg := treeexec.NewModelRegistry()
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	s := New(reg, Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without hook: %d, want 501", resp.StatusCode)
	}
	fired := 0
	s.SetReload(func() error { fired++; return nil })
	resp, err = http.Post(ts.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || fired != 1 {
		t.Fatalf("reload with hook: %d (fired %d): %s", resp.StatusCode, fired, raw)
	}
	if !strings.Contains(string(raw), `"magic"`) {
		t.Fatalf("reload response does not list models: %s", raw)
	}
}
