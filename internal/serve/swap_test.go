package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flint/internal/cart"
	"flint/internal/dataset"
	"flint/internal/treeexec"
)

// TestHotSwapUnderLiveHTTPTraffic is the tentpole acceptance test (run
// under -race in CI): repeated registry Swaps fire while concurrent
// HTTP clients stream coalesced single-row and batch predicts, and
// every request must complete — zero drops, zero non-200s — with
// answers bit-identical to the pre-swap reference for unchanged rows.
// The lane's registry.Predict retry on ErrModelRetired plus the old
// model's publish-before-retire drain is exactly what makes this hold.
func TestHotSwapUnderLiveHTTPTraffic(t *testing.T) {
	d, err := dataset.Generate("magic", 400, 21)
	if err != nil {
		t.Fatal(err)
	}
	f, err := cart.TrainForest(d, cart.Config{NumTrees: 6, MaxDepth: 7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	build := func() *treeexec.ServedModel {
		e, err := treeexec.NewFlat(f, treeexec.FlatCompact)
		if err != nil {
			t.Fatal(err)
		}
		e.CalibrateInterleaveRows(d.Features, 2*time.Millisecond)
		return treeexec.NewServedModelSampled("magic", e, 2, 32, 128, 1)
	}

	reg := treeexec.NewModelRegistry()
	first := build()
	if err := reg.Register(first); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	want := first.Engine().PredictBatch(d.Features, nil, 1, 0)

	s := New(reg, Config{MaxDelay: 300 * time.Microsecond, MaxQueue: 4096})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	var stop atomic.Bool
	var completed atomic.Uint64
	errc := make(chan error, 16)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g * 7
			for !stop.Load() {
				var body predictRequest
				lo := i % len(d.Features)
				var expect []int32
				if g%2 == 0 { // single-row clients
					body.Row = d.Features[lo]
					expect = want[lo : lo+1]
				} else { // batch clients
					hi := lo + 16
					if hi > len(d.Features) {
						hi = len(d.Features)
					}
					body.Rows = d.Features[lo:hi]
					expect = want[lo:hi]
				}
				i++
				buf, _ := json.Marshal(body)
				resp, err := client.Post(ts.URL+"/v1/models/magic:predict", "application/json", bytes.NewReader(buf))
				if err != nil {
					fail("worker %d: %v", g, err)
					return
				}
				var pr predictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil {
					fail("worker %d: decode: %v", g, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					fail("worker %d: status %d (a dropped request)", g, resp.StatusCode)
					return
				}
				if len(pr.Classes) != len(expect) {
					fail("worker %d: %d classes, want %d", g, len(pr.Classes), len(expect))
					return
				}
				for j := range expect {
					if pr.Classes[j] != expect[j] {
						fail("worker %d: answer changed across swap: row %d got %d want %d", g, lo+j, pr.Classes[j], expect[j])
						return
					}
				}
				completed.Add(1)
			}
		}(g)
	}

	// Fire hot swaps under the live load.
	const swaps = 5
	for i := 0; i < swaps; i++ {
		time.Sleep(20 * time.Millisecond)
		if err := reg.Swap("magic", build()); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if completed.Load() == 0 {
		t.Fatal("no requests completed during the swap storm")
	}
	st := s.Status()[0]
	if st.Rejected != 0 || st.Errors != 0 {
		t.Fatalf("dropped work under swap: %d rejected, %d errored (of %d requests)", st.Rejected, st.Errors, st.Requests)
	}
	t.Logf("%d HTTP requests (%d rows in %d coalesced batches) rode through %d hot swaps",
		completed.Load(), st.CoalescedRows, st.CoalescedBatches, swaps)
}
