// Package serve is the network front-end over a treeexec.ModelRegistry:
// an HTTP/JSON server that accepts single rows and row batches from many
// concurrent connections and coalesces them into Batcher-sized blocks —
// cross-request batching under a configurable latency budget — so the
// arena kernels see the block shapes they were calibrated for even when
// every client sends one row at a time.
//
// Endpoints:
//
//	POST /v1/models/{name}:predict  classify a row or batch of rows
//	GET  /v1/models                 status of every registered model
//	GET  /v1/models/{name}          status of one model
//	POST /v1/reload                 trigger the configured reload hook
//	GET  /metrics                   Prometheus-style text metrics
//	GET  /healthz                   liveness
//
// Each model gets an independent coalescing lane with bounded admission:
// requests beyond the queue bound are rejected immediately with 429
// rather than queued into unbounded latency. A registry hot swap
// (ModelRegistry.Swap) under live traffic is invisible here — the lane
// predicts through the registry, which retries retired models against
// the freshly flipped pointer, so no request is dropped mid-swap.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"flint/internal/treeexec"
)

// Config tunes the front-end; the zero value is serviceable.
type Config struct {
	// MaxBatchRows caps how many rows one coalesced predict carries.
	// Default 256 — two of the Batcher's default 128-row blocks.
	MaxBatchRows int
	// MaxDelay is the coalescing latency budget: once a lane holds a
	// request, it gathers more for at most this long before predicting.
	// Default 2ms. Lower trades throughput for latency.
	MaxDelay time.Duration
	// MaxQueue bounds each model's pending-request queue; requests
	// arriving beyond it are rejected with 429 (admission control).
	// Default 1024.
	MaxQueue int
}

func (c Config) withDefaults() Config {
	if c.MaxBatchRows <= 0 {
		c.MaxBatchRows = 256
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	return c
}

// ErrServerClosed is the error pending requests observe when the server
// shuts down underneath them; it surfaces as 503.
var ErrServerClosed = errors.New("serve: server closed")

// Server coalesces HTTP predict requests into registry Predict calls.
// Create with New, mount Handler on an http.Server, Close to drain.
type Server struct {
	reg *treeexec.ModelRegistry
	cfg Config

	mu     sync.Mutex
	lanes  map[string]*lane
	closed bool

	reload func() error // optional hot-reload hook (POST /v1/reload)
}

// New builds a Server over a registry. The registry stays owned by the
// caller — models registered or swapped after New are served without
// any further wiring.
func New(reg *treeexec.ModelRegistry, cfg Config) *Server {
	if reg == nil {
		panic("serve: New on nil registry")
	}
	return &Server{
		reg:   reg,
		cfg:   cfg.withDefaults(),
		lanes: make(map[string]*lane),
	}
}

// SetReload installs the hook POST /v1/reload triggers — typically the
// same manifest-rebuild-and-Swap path a SIGHUP takes in cmd/flintserve.
func (s *Server) SetReload(fn func() error) { s.reload = fn }

// Registry returns the registry the server fronts.
func (s *Server) Registry() *treeexec.ModelRegistry { return s.reg }

// Close stops every coalescing lane: queued requests fail with 503 and
// new ones are rejected. The registry and its models are left running —
// they belong to the caller.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lanes := make([]*lane, 0, len(s.lanes))
	for _, l := range s.lanes {
		lanes = append(lanes, l)
	}
	s.mu.Unlock()
	for _, l := range lanes {
		close(l.stop)
		<-l.done
	}
}

// lane returns (creating on first use) the named model's coalescing
// lane, or nil once the server is closed.
func (s *Server) lane(name string) *lane {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	l, ok := s.lanes[name]
	if !ok {
		l = newLane(name, s.cfg.MaxQueue)
		s.lanes[name] = l
		go l.run(s)
	}
	return l
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/models", s.handleList)
	mux.HandleFunc("GET /v1/models/{model}", s.handleModel)
	mux.HandleFunc("POST /v1/models/{model}", s.handlePredict)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	return mux
}

// modelPath extracts the model name from the {model} path element,
// accepting both "name" and the canonical "name:predict" action form.
func modelPath(r *http.Request) string {
	name := r.PathValue("model")
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name = name[:i]
	}
	return name
}

type predictRequest struct {
	// Row carries a single row; Rows a batch. Exactly one must be set.
	Row  []float32   `json:"row,omitempty"`
	Rows [][]float32 `json:"rows,omitempty"`
}

type predictResponse struct {
	Model   string  `json:"model"`
	Classes []int32 `json:"classes"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds a predict request body; at 4 bytes per feature a
// 32 MiB body is far beyond any sane coalescing batch.
const maxBodyBytes = 32 << 20

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	name := modelPath(r)
	m, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no model %q registered", name)
		return
	}

	var req predictRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	rows := req.Rows
	if req.Row != nil {
		if rows != nil {
			writeError(w, http.StatusBadRequest, `request carries both "row" and "rows"`)
			return
		}
		rows = [][]float32{req.Row}
	}
	if len(rows) == 0 {
		writeError(w, http.StatusBadRequest, `request carries no rows (set "row" or "rows")`)
		return
	}
	nf := m.Engine().NumFeatures()
	for i, row := range rows {
		if len(row) != nf {
			writeError(w, http.StatusBadRequest, "row %d has %d features, model %q expects %d", i, len(row), name, nf)
			return
		}
	}

	l := s.lane(name)
	if l == nil {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	start := time.Now()
	p := &pending{rows: rows, done: make(chan struct{})}
	l.requests.Add(1)
	if !l.enqueue(p) {
		l.rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, "model %q predict queue is full (%d pending)", name, s.cfg.MaxQueue)
		return
	}

	select {
	case <-p.done:
	case <-l.done:
		// The lane exited; it may still have served p on its way out.
		select {
		case <-p.done:
		default:
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
	}
	l.lat.observe(time.Since(start))
	if p.err != nil {
		l.errors.Add(1)
		var unknown *treeexec.UnknownModelError
		switch {
		case errors.As(p.err, &unknown):
			writeError(w, http.StatusNotFound, "%v", p.err)
		case errors.Is(p.err, ErrServerClosed):
			writeError(w, http.StatusServiceUnavailable, "%v", p.err)
		default:
			writeError(w, http.StatusInternalServerError, "%v", p.err)
		}
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{Model: name, Classes: p.classes})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Models []ModelStatus `json:"models"`
	}{Models: s.Status()})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	name := modelPath(r)
	for _, st := range s.Status() {
		if st.Name == name {
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	writeError(w, http.StatusNotFound, "no model %q registered", name)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.reload == nil {
		writeError(w, http.StatusNotImplemented, "no reload hook configured")
		return
	}
	if err := s.reload(); err != nil {
		writeError(w, http.StatusInternalServerError, "reload failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Reloaded []string `json:"reloaded"`
	}{Reloaded: s.reg.Names()})
}
