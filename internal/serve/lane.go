package serve

import (
	"sync/atomic"
	"time"
)

// pending is one predict request parked in a lane: the rows it brought,
// and the result the dispatcher scatters back before closing done.
type pending struct {
	rows    [][]float32
	classes []int32
	err     error
	done    chan struct{}
}

// lane is one model's coalescing pipeline: handlers enqueue pending
// requests into a bounded queue (admission control), and a single
// dispatcher goroutine gathers them — up to the configured row cap,
// waiting at most the latency budget — into one registry Predict per
// batch. The cross-request batching restores the block shapes the
// arena kernels were calibrated for even under single-row clients.
type lane struct {
	name  string
	queue chan *pending
	stop  chan struct{} // closed by Server.Close
	done  chan struct{} // closed when the dispatcher exits

	requests atomic.Uint64 // predict requests admitted to this lane's handler
	rejected atomic.Uint64 // requests turned away with 429
	errors   atomic.Uint64 // requests completed with an error
	rows     atomic.Uint64 // rows predicted
	batches  atomic.Uint64 // coalesced registry Predict calls
	lat      latencyRing   // request latency sample (enqueue to response)
}

func newLane(name string, maxQueue int) *lane {
	return &lane{
		name:  name,
		queue: make(chan *pending, maxQueue),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// enqueue admits p to the lane, reporting false when the queue is full
// (the admission-control rejection) or the lane is stopping.
func (l *lane) enqueue(p *pending) bool {
	select {
	case l.queue <- p:
		return true
	case <-l.stop:
		return false
	default:
		return false
	}
}

// run is the dispatcher: gather, predict, scatter, repeat.
func (l *lane) run(s *Server) {
	defer close(l.done)
	maxRows := s.cfg.MaxBatchRows
	timer := time.NewTimer(s.cfg.MaxDelay)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var first *pending
		select {
		case first = <-l.queue:
		case <-l.stop:
			l.failQueued()
			return
		}
		batch := append(make([]*pending, 0, 8), first)
		rows := len(first.rows)
		timer.Reset(s.cfg.MaxDelay)
	gather:
		for rows < maxRows {
			select {
			case p := <-l.queue:
				batch = append(batch, p)
				rows += len(p.rows)
			case <-timer.C:
				break gather
			case <-l.stop:
				// Serve what was gathered; the next loop iteration
				// observes stop and fails whatever remains queued.
				break gather
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		l.serve(s, batch, rows)
	}
}

// serve concatenates the batch's rows, predicts once through the
// registry (which rides out hot swaps by retrying retired models), and
// scatters answers back to each pending request. The concatenation and
// output slices are per-batch allocations — the network layer trades
// the Batcher's zero-alloc discipline for cross-request amortization.
func (l *lane) serve(s *Server, batch []*pending, rows int) {
	all := make([][]float32, 0, rows)
	for _, p := range batch {
		all = append(all, p.rows...)
	}
	res, err := s.reg.Predict(l.name, all, make([]int32, len(all)))
	l.batches.Add(1)
	l.rows.Add(uint64(len(all)))
	off := 0
	for _, p := range batch {
		if err != nil {
			p.err = err
		} else {
			p.classes = res[off : off+len(p.rows)]
		}
		off += len(p.rows)
		close(p.done)
	}
}

// failQueued drains requests still parked at shutdown, failing each so
// no handler blocks forever on a dispatcher that has exited.
func (l *lane) failQueued() {
	for {
		select {
		case p := <-l.queue:
			p.err = ErrServerClosed
			close(p.done)
		default:
			return
		}
	}
}
