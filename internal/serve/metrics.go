package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"flint/internal/treeexec"
)

// latencyRingSize bounds the latency sample each lane keeps: large
// enough for stable tail quantiles, small enough to sort on demand off
// the hot path.
const latencyRingSize = 2048

// latencyRing is a fixed-size ring of recent request latencies;
// quantiles are computed over whatever the ring currently holds, so
// p50/p99 track the live traffic rather than the process lifetime.
type latencyRing struct {
	mu  sync.Mutex
	buf [latencyRingSize]time.Duration
	n   uint64 // total observations; buf[n % size] is the next slot
}

func (r *latencyRing) observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.n%latencyRingSize] = d
	r.n++
	r.mu.Unlock()
}

// quantiles returns the requested quantiles (0..1) over the ring's
// current contents, or nil when nothing has been observed.
func (r *latencyRing) quantiles(qs ...float64) []time.Duration {
	r.mu.Lock()
	n := r.n
	if n > latencyRingSize {
		n = latencyRingSize
	}
	sample := append([]time.Duration(nil), r.buf[:n]...)
	r.mu.Unlock()
	if len(sample) == 0 {
		return nil
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(sample)-1))
		out[i] = sample[idx]
	}
	return out
}

// ModelStatus is one model's combined registry and front-end state, as
// served on GET /v1/models.
type ModelStatus struct {
	treeexec.ModelStats
	Requests         uint64  `json:"requests"`
	Rejected         uint64  `json:"rejected"`
	Errors           uint64  `json:"errors"`
	CoalescedBatches uint64  `json:"coalesced_batches"`
	CoalescedRows    uint64  `json:"coalesced_rows"`
	CoalesceFill     float64 `json:"coalesce_rows_per_batch"`
	QueueDepth       int     `json:"queue_depth"`
	LatencyP50Ms     float64 `json:"latency_p50_ms"`
	LatencyP99Ms     float64 `json:"latency_p99_ms"`
}

// Status snapshots every registered model plus its lane counters,
// sorted by name. Models without traffic yet report zero lane state.
func (s *Server) Status() []ModelStatus {
	stats := s.reg.Stats()
	out := make([]ModelStatus, 0, len(stats))
	s.mu.Lock()
	lanes := make(map[string]*lane, len(s.lanes))
	for n, l := range s.lanes {
		lanes[n] = l
	}
	s.mu.Unlock()
	for _, st := range stats {
		ms := ModelStatus{ModelStats: st}
		if l, ok := lanes[st.Name]; ok {
			ms.Requests = l.requests.Load()
			ms.Rejected = l.rejected.Load()
			ms.Errors = l.errors.Load()
			ms.CoalescedBatches = l.batches.Load()
			ms.CoalescedRows = l.rows.Load()
			if ms.CoalescedBatches > 0 {
				ms.CoalesceFill = float64(ms.CoalescedRows) / float64(ms.CoalescedBatches)
			}
			ms.QueueDepth = len(l.queue)
			if q := l.lat.quantiles(0.50, 0.99); q != nil {
				ms.LatencyP50Ms = float64(q[0]) / float64(time.Millisecond)
				ms.LatencyP99Ms = float64(q[1]) / float64(time.Millisecond)
			}
		}
		out = append(out, ms)
	}
	return out
}

// handleMetrics renders Status in the Prometheus text exposition
// format — hand-rolled, since the repo deliberately has no dependency
// on a client library.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	type row struct {
		metric string
		help   string
		typ    string
		lines  []string
	}
	statuses := s.Status()
	line := func(metric, name string, v any, extra ...string) string {
		labels := fmt.Sprintf("model=%q", name)
		for _, e := range extra {
			labels += "," + e
		}
		return fmt.Sprintf("%s{%s} %v", metric, labels, v)
	}
	rows := []row{
		{"flint_requests_total", "Predict requests admitted per model.", "counter", nil},
		{"flint_rejected_total", "Predict requests rejected by admission control (429).", "counter", nil},
		{"flint_errors_total", "Predict requests completed with an error.", "counter", nil},
		{"flint_rows_total", "Rows classified per model.", "counter", nil},
		{"flint_batches_total", "Coalesced predict batches per model.", "counter", nil},
		{"flint_coalesce_rows_per_batch", "Mean rows per coalesced batch.", "gauge", nil},
		{"flint_queue_depth", "Requests currently queued per model.", "gauge", nil},
		{"flint_latency_ms", "Request latency quantiles over recent traffic.", "gauge", nil},
		{"flint_drift_distance", "Last measured drift distance (PSI) per model.", "gauge", nil},
		{"flint_drift_triggers_total", "Drift-triggered recalibrations per model.", "counter", nil},
		{"flint_arena_bytes", "Arena footprint per model.", "gauge", nil},
	}
	for _, st := range statuses {
		rows[0].lines = append(rows[0].lines, line("flint_requests_total", st.Name, st.Requests))
		rows[1].lines = append(rows[1].lines, line("flint_rejected_total", st.Name, st.Rejected))
		rows[2].lines = append(rows[2].lines, line("flint_errors_total", st.Name, st.Errors))
		rows[3].lines = append(rows[3].lines, line("flint_rows_total", st.Name, st.CoalescedRows))
		rows[4].lines = append(rows[4].lines, line("flint_batches_total", st.Name, st.CoalescedBatches))
		rows[5].lines = append(rows[5].lines, line("flint_coalesce_rows_per_batch", st.Name, st.CoalesceFill))
		rows[6].lines = append(rows[6].lines, line("flint_queue_depth", st.Name, st.QueueDepth))
		rows[7].lines = append(rows[7].lines,
			line("flint_latency_ms", st.Name, st.LatencyP50Ms, `quantile="0.5"`),
			line("flint_latency_ms", st.Name, st.LatencyP99Ms, `quantile="0.99"`))
		rows[8].lines = append(rows[8].lines, line("flint_drift_distance", st.Name, st.DriftDist))
		rows[9].lines = append(rows[9].lines, line("flint_drift_triggers_total", st.Name, st.DriftTrigs))
		rows[10].lines = append(rows[10].lines, line("flint_arena_bytes", st.Name, st.ArenaBytes))
	}
	for _, m := range rows {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.metric, m.help, m.metric, m.typ)
		for _, l := range m.lines {
			fmt.Fprintln(w, l)
		}
	}
}
