// Package rf defines the random forest model used throughout this
// repository: axis-aligned binary decision trees over float32 feature
// vectors, aggregated by majority vote (Section IV-A of the FLInt paper).
//
// A tree is a flat slice of nodes with explicit child indices, the neutral
// storage form from which every execution strategy is derived: the
// interpreted engines in package treeexec, the cache-aware layouts in
// package cags and the code generators in package codegen. The reference
// Predict implementations in this package use ordinary hardware float
// comparisons and serve as the semantic baseline every other engine is
// tested against.
package rf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// LeafFeature marks a node as a leaf: inner nodes carry the index of the
// feature their split examines, leaves carry LeafFeature.
const LeafFeature int32 = -1

// Node is one decision tree node. For inner nodes, inference compares
// feature Feature of the input against Split with <=: true descends to
// Left, false to Right (Section IV-A). For leaves only Class is
// meaningful.
type Node struct {
	// Feature is the feature index FI(n), or LeafFeature for leaves.
	Feature int32 `json:"feature"`
	// Split is the split value SP(n) learned by training. Always a
	// finite float32 for valid models.
	Split float32 `json:"split"`
	// Left and Right are the child indices LC(n) and RC(n) within the
	// tree's node slice.
	Left  int32 `json:"left"`
	Right int32 `json:"right"`
	// Class is the prediction value PR(n) of a leaf.
	Class int32 `json:"class"`
	// LeftFraction is the empirical probability, measured on the
	// training set, that inference takes the left branch. It drives the
	// cache-aware swapping and grouping of package cags. Zero for
	// leaves and for models without collected statistics.
	LeftFraction float64 `json:"left_fraction,omitempty"`
}

// IsLeaf reports whether the node is a leaf.
func (n Node) IsLeaf() bool { return n.Feature == LeafFeature }

// Tree is a single decision tree. Nodes[0] is the root n0.
type Tree struct {
	Nodes []Node `json:"nodes"`
}

// Predict runs reference inference with hardware float comparisons and
// returns the class of the reached leaf.
func (t *Tree) Predict(x []float32) int32 {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			return n.Class
		}
		if x[n.Feature] <= n.Split {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Depth returns the number of edges on the longest root-to-leaf path.
// A single-leaf tree has depth 0.
func (t *Tree) Depth() int {
	if len(t.Nodes) == 0 {
		return 0
	}
	var walk func(i int32) int
	walk = func(i int32) int {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			return 0
		}
		l, r := walk(n.Left), walk(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// NumLeaves returns the number of leaf nodes.
func (t *Tree) NumLeaves() int {
	c := 0
	for _, n := range t.Nodes {
		if n.IsLeaf() {
			c++
		}
	}
	return c
}

// Validate checks structural invariants: the tree is non-empty, every
// child index is in range, every non-root node is referenced exactly once
// (so the graph is a tree rooted at node 0), feature indices are within
// [0, numFeatures), split values are not NaN, and leaf classes lie within
// [0, numClasses). Pass numFeatures or numClasses <= 0 to skip the
// corresponding range check.
func (t *Tree) Validate(numFeatures, numClasses int) error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("rf: empty tree")
	}
	refs := make([]int, len(t.Nodes))
	for i, n := range t.Nodes {
		if n.IsLeaf() {
			if numClasses > 0 && (n.Class < 0 || int(n.Class) >= numClasses) {
				return fmt.Errorf("rf: node %d: leaf class %d out of range [0,%d)", i, n.Class, numClasses)
			}
			continue
		}
		if n.Feature < 0 || (numFeatures > 0 && int(n.Feature) >= numFeatures) {
			return fmt.Errorf("rf: node %d: feature %d out of range [0,%d)", i, n.Feature, numFeatures)
		}
		if math.IsNaN(float64(n.Split)) {
			return fmt.Errorf("rf: node %d: NaN split value", i)
		}
		if n.LeftFraction < 0 || n.LeftFraction > 1 {
			return fmt.Errorf("rf: node %d: left fraction %v out of [0,1]", i, n.LeftFraction)
		}
		for _, c := range [2]int32{n.Left, n.Right} {
			if c <= 0 || int(c) >= len(t.Nodes) {
				return fmt.Errorf("rf: node %d: child index %d out of range (0,%d)", i, c, len(t.Nodes))
			}
			refs[c]++
		}
	}
	if refs[0] != 0 {
		return fmt.Errorf("rf: root node is referenced as a child")
	}
	for i := 1; i < len(refs); i++ {
		if refs[i] != 1 {
			return fmt.Errorf("rf: node %d referenced %d times, want exactly 1", i, refs[i])
		}
	}
	return nil
}

// Forest is an ensemble of decision trees over a fixed feature space.
type Forest struct {
	// NumFeatures is the dimensionality of input feature vectors.
	NumFeatures int `json:"num_features"`
	// NumClasses is the number of distinct prediction classes.
	NumClasses int `json:"num_classes"`
	// Trees are the ensemble members.
	Trees []Tree `json:"trees"`
}

// Predictor is anything that classifies a float32 feature vector; the
// reference Forest, every treeexec engine and the asmsim-backed runners
// implement it.
type Predictor interface {
	Predict(x []float32) int32
}

// MaxStackVoteClasses is the widest class count served by the stack-
// array vote-count fast path shared by Forest.Predict and the treeexec
// engines: tallies for up to 8 classes — which covers all five paper
// workloads — avoid a per-prediction heap slice.
const MaxStackVoteClasses = 8

// VoteSlice returns a zeroed tally of numClasses counts backed by stack
// when it fits; stack must be freshly zeroed (a var declaration). The
// function is small enough to inline, so the fast path does not escape.
func VoteSlice(stack *[MaxStackVoteClasses]int32, numClasses int) []int32 {
	if numClasses <= MaxStackVoteClasses {
		return stack[:numClasses]
	}
	return make([]int32, numClasses)
}

// Predict returns the majority-vote class over all trees; ties break
// toward the lowest class index, making the result deterministic.
func (f *Forest) Predict(x []float32) int32 {
	var stack [MaxStackVoteClasses]int32
	votes := VoteSlice(&stack, f.NumClasses)
	for i := range f.Trees {
		votes[f.Trees[i].Predict(x)]++
	}
	return Argmax(votes)
}

// PredictVotes fills dst (length NumClasses) with per-class vote counts.
func (f *Forest) PredictVotes(x []float32, dst []int32) []int32 {
	if cap(dst) < f.NumClasses {
		dst = make([]int32, f.NumClasses)
	}
	dst = dst[:f.NumClasses]
	for i := range dst {
		dst[i] = 0
	}
	for i := range f.Trees {
		dst[f.Trees[i].Predict(x)]++
	}
	return dst
}

// Argmax returns the index of the largest element, breaking ties toward
// the lowest index. It panics on an empty slice.
func Argmax(v []int32) int32 {
	best := int32(0)
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = int32(i)
		}
	}
	return best
}

// NumNodes returns the total node count across all trees.
func (f *Forest) NumNodes() int {
	n := 0
	for i := range f.Trees {
		n += len(f.Trees[i].Nodes)
	}
	return n
}

// MaxDepth returns the largest tree depth in the ensemble.
func (f *Forest) MaxDepth() int {
	d := 0
	for i := range f.Trees {
		if td := f.Trees[i].Depth(); td > d {
			d = td
		}
	}
	return d
}

// Validate checks the forest's structural invariants and every tree's.
func (f *Forest) Validate() error {
	if f.NumFeatures <= 0 {
		return fmt.Errorf("rf: NumFeatures = %d, want > 0", f.NumFeatures)
	}
	if f.NumClasses <= 0 {
		return fmt.Errorf("rf: NumClasses = %d, want > 0", f.NumClasses)
	}
	if len(f.Trees) == 0 {
		return fmt.Errorf("rf: forest has no trees")
	}
	for i := range f.Trees {
		if err := f.Trees[i].Validate(f.NumFeatures, f.NumClasses); err != nil {
			return fmt.Errorf("rf: tree %d: %w", i, err)
		}
	}
	return nil
}

// WriteJSON serializes the forest as indented JSON.
func (f *Forest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadJSON deserializes a forest written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Forest, error) {
	var f Forest
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("rf: decoding forest: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Accuracy returns the fraction of rows in X whose prediction matches y.
func Accuracy(p Predictor, x [][]float32, y []int32) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i := range x {
		if p.Predict(x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}
